"""Engine codegen: one generated generator runs a whole column's chunks.

The engine for a column *signature* - the tuple of per-instance
``(mode, lru, traced, shift, smask, wmask)`` elements from
:func:`repro.lockstep.state.build_slot` - is a Python generator
rendered and ``exec``-compiled once per signature (source-keyed cache,
like the jit/memfast tiers). Unlike a per-segment walker, it owns the
entire chunk machinery: per-instance window budgets (the serial
``System.run`` energy formula), the shared event walk, the
``ReplayCore.run_chunk`` epilogue arithmetic, and the per-chunk
capacitor accounting (drain, trace harvest, outage detection), all
against per-instance *locals* mirrored from the slot lists - so the
steady state runs with no attribute traffic and no Python-level calls
besides the designs' own slow paths.

Per instance and per event kind it emits exactly what ``run_chunk``
would execute: ``call`` instances issue the bound handler call, while
``base``/``wb``/``wl`` instances inline the *full* memfast probe - MRU
line first, then the set scan, statement for statement the handler
:mod:`repro.memfast.handlers` installs - and on a true miss call the
*bracketed slow path* directly, skipping the handler's redundant
re-probe. ``wl`` stores inline both fast cases of the WL-Cache handler
(same-dirty-line hit and the below-waterline clean->dirty insert,
DirtyQueue bookkeeping included). The signature carries each
instance's cache geometry so set/tag/word indices are baked as
literals and computed once per *geometry class* per event, shared by
every instance with that geometry. I-cache residency is not kept as
per-instance sets while in column: a line is resident iff its previous
occurrence (:func:`repro.lockstep.state.event_prev`) is at or past the
instance's flush epoch, so one shared comparison against the
column-wide maximum epoch skips most fetch events outright.

Protocol: ``gen = make_engine(sig, events, ne, po, evf, cell, slots,
pname)`` binds the read-only slot entries to locals and parks;
``gen.send(None)`` runs rounds (walk to the smallest live target -
close/account - reopen) until something needs the scheduler and yields
a list of episodes:

* ``("halt", j)`` - instance ``j`` retired its last instruction and its
  chunk accounting is done; the scheduler runs halt finalization.
* ``("outage", j)`` - the chunk accounting drained ``j``'s capacitor to
  its backup level; the scheduler runs the outage lifecycle and
  republishes the slot mirrors it changed.
* ``("err", j, exc)`` - ``j``'s chunk close raised (budget exhaustion,
  capacitor drained): terminal for ``j``, exactly as serial.
* ``("fault", j, exc)`` - a handler call raised mid-walk at event
  ``cell[0]`` with instance ``j`` faulting **before any of its state
  changed** (bail-before-mutate), instances ``< j`` having fully
  applied the event and instances ``> j`` not having seen it. The
  scheduler diverts ``j``, applies the event to the trailing instances
  out of line, and advances ``cell[0]`` past it.
* ``("bail",)`` - the walk reached the forced-bail limit ``cell[1]``;
  the scheduler must evict the flagged instances and raise the limit.
* an empty list - a sync tick (``cell[3]`` set): a boundary passed
  while evicted solos may want to rejoin.

Before every yield the engine writes all mutable mirrors back to the
slots (and the capacitor energy back to the capacitor object); after
every resume it re-reads everything, so the scheduler is free to flip
alive flags, rewind cores, or rejoin instances between rounds - the
compiled engine is never rebuilt for a composition change. Window
opens happen in the resume refresh (any instance whose target sits at
the cursor: the first resume, post-outage reopens, rejoins) and inline
after each close; dead instances park their target at the ``_INF``
sentinel so the per-round close scan is a single compare. ``cell`` is
the shared scratch: ``[ei, bail_limit, cursor, sync_mode, chunks,
rounds]`` (``ei``/``cursor``/counters are published at each yield).

Every memory call's timestamp is that instance's now formula
``_cum{j}[_i] - _cm{j} + _dy{j} + _of{j}`` - the audited contract
(:mod:`repro.lint.codegen_audit`, rule A008), matching ``ReplayCore``'s
``cum[i] - c_mem + dyn + offset`` bit for bit.
"""

from __future__ import annotations

from bisect import bisect_right

from repro.core.dirty_queue import DQEntry
from repro.cpu.core import _ILINE_SHIFT
from repro.errors import EnergyError, ExecutionError
from repro.lockstep.state import (S_ACC, S_CAP, S_CIMISS, S_CLT, S_CMEM,
                                  S_CORE, S_CSEEN, S_CT, S_CUM, S_CYC,
                                  S_DYN, S_FL, S_IR, S_KON, S_LC, S_LF,
                                  S_LIM, S_LIR, S_LNV, S_LOAD, S_MFE,
                                  S_MFEW, S_MFH, S_MFHW, S_MISSES, S_MRU,
                                  S_NVM, S_OFFSET, S_P, S_PEND, S_PF,
                                  S_SETS, S_SLD, S_SM, S_SSM, S_STATS,
                                  S_STORE, S_SY, S_SYS, S_T, S_TG,
                                  S_TRACE, S_TSF, S_W)

_U32 = 0xFFFFFFFF

#: the per-instance now formula the audit re-derives (rule A008)
_NOW_FORMULA = "_cum{j}[_i] - _cm{j} + _dy{j} + _of{j}"

#: signature -> rendered source (kept for the audit; rebaking a
#: signature must reproduce its retained source exactly)
_SIG_SOURCES: dict[tuple, str] = {}

#: source -> compiled code object
_CODE_CACHE: dict[str, object] = {}

_ENGINE_STATS = {"renders": 0, "builds": 0, "loads": 0}

#: exec globals for the generated engines: the serial loop's exception
#: types (raised with the serial paths' exact messages), the I-line
#: geometry for post-flush fetch synthesis, the dead-instance target
#: sentinel, and the DirtyQueue entry class the inlined WL-Cache
#: insert constructs (the same class the memfast handler binds)
_NS_BINDS = {"EnergyError": EnergyError, "ExecutionError": ExecutionError,
             "_ILS": _ILINE_SHIFT, "_INF": 1 << 62, "_DQE": DQEntry,
             "_bis": bisect_right}

#: constant slot entries every mode unpacks to locals
_COMMON_BINDS = (("_ld", S_LOAD), ("_st", S_STORE), ("_sm", S_SM),
                 ("_cum", S_CUM), ("_cm", S_CMEM), ("_ci", S_CIMISS),
                 ("_cap", S_CAP), ("_nvm", S_NVM), ("_sys", S_SYS),
                 ("_core", S_CORE))
_PROBE_BINDS = (("_mru", S_MRU), ("_acc", S_ACC), ("_sets", S_SETS),
                ("_sld", S_SLD), ("_ssm", S_SSM), ("_fe", S_MFE),
                ("_fh", S_MFH), ("_few", S_MFEW), ("_fhw", S_MFHW))
_WL_BINDS = (("_pd", S_PEND),)

#: (local prefix, slot index) for every mutable mirror: the contiguous
#: S_W..S_CLT block, re-read by one slice unpack after each resume and
#: written back by one slice assignment before each yield
_MIRRORS = (("_w", S_W), ("_tg", S_TG), ("_p", S_P), ("_ir", S_IR),
            ("_cy", S_CYC), ("_cs", S_CSEEN), ("_t", S_T), ("_fl", S_FL),
            ("_sy", S_SY), ("_pf", S_PF), ("_tf", S_TSF),
            ("_lir", S_LIR), ("_lf", S_LF), ("_lim", S_LIM),
            ("_lc", S_LC), ("_lnv", S_LNV), ("_ct", S_CT),
            ("_cl", S_CLT))

assert [idx for _nm, idx in _MIRRORS] == list(range(S_W, S_CLT + 1)), \
    "mirror block must stay contiguous for the slice sync"


def _stamp(j: int, pad: str) -> list[str]:
    """The deferred LRU stamp, exactly as the memfast handler emits."""
    return [f"{pad}_acc{j}[4] = _ts = _acc{j}[4] + 1",
            f"{pad}_li.use_stamp = _ts"]


def _geo_classes(sig: tuple) -> tuple[list[tuple], list[int | None]]:
    """Distinct probe geometries and each instance's class id."""
    classes: dict[tuple, int] = {}
    geo_of: list[int | None] = []
    for el in sig:
        if el[0] == "call":
            geo_of.append(None)
        else:
            geo_of.append(classes.setdefault(el[3:6], len(classes)))
    return list(classes), geo_of


def _emit_fetch(j: int, pad: str, out: list[str]) -> None:
    """Per-instance line event: resident iff the previous occurrence is
    inside this instance's flush epoch, or the line is its post-flush
    synthesized fetch (set semantics via the shared prev array)."""
    out += [f"{pad}if _w{j} and _pv < _fl{j} and _line != _sy{j}:",
            f"{pad}    _ms{j} += 1",
            f"{pad}    _dy{j} += _ci{j}"]


def _load_hit(j: int, lru: int, pad: str) -> list[str]:
    out = _stamp(j, pad) if lru else []
    out += [f"{pad}_acc{j}[0] += 1",
            f"{pad}_acc{j}[2] += _fe{j}",
            f"{pad}_dy{j} += _fh{j}"]
    return out


def _emit_load(j: int, mode: str, lru: int, c: int | None, pad: str,
               out: list[str]) -> None:
    now = _NOW_FORMULA.format(j=j)
    out.append(f"{pad}if _w{j}:")
    p = pad + "    "
    if mode == "call":
        out += [f"{p}_fj = {j}",
                f"{p}_v, _l = _ld{j}(_a, {now})",
                f"{p}_dy{j} += _l"]
        return
    # the handler's full probe: MRU hit, then the set scan (promoting
    # the hit line to MRU), then the bracketed slow path directly
    out += [f"{p}_li = _mru{j}[_ix{c}]",
            f"{p}if _li.tag == _ln{c}:"]
    out += _load_hit(j, lru, p + "    ")
    out += [f"{p}else:",
            f"{p}    for _li in _sets{j}[_ix{c}]:",
            f"{p}        if _li.tag == _ln{c}:",
            f"{p}            _mru{j}[_ix{c}] = _li"]
    out += _load_hit(j, lru, p + "            ")
    out += [f"{p}            break",
            f"{p}    else:",
            f"{p}        _fj = {j}",
            f"{p}        _v, _l = _sld{j}(_a, {now})",
            f"{p}        _dy{j} += _l"]


def _store_hit(j: int, mode: str, lru: int, c: int, masked: bool,
               dirty: bool, pad: str) -> list[str]:
    """One fast store-hit body (the handler's, on engine locals).
    ``dirty`` selects WL-Cache's same-dirty-line case (no transition);
    ``wb`` always marks dirty, matching the plain write-back handler."""
    out = _stamp(j, pad) if lru else []
    out += [f"{pad}_acc{j}[1] += 1",
            f"{pad}_acc{j}[3] += _few{j}",
            f"{pad}_d = _li.data"]
    if masked:
        out.append(f"{pad}_d[_wi{c}] = (_d[_wi{c}] & ~_mask)"
                   f" | (_bits & _mask)")
    else:
        out.append(f"{pad}_d[_wi{c}] = _val & {_U32}")
    if mode == "wb" or (mode == "wl" and not dirty):
        out.append(f"{pad}_li.dirty = True")
    if mode == "wl" and not dirty:
        # the inlined DirtyQueue insert, statement for statement the
        # WL handler's (provably no stall below the waterline)
        out += [f"{pad}_dq{j}._seq += 1",
                f"{pad}_q = _DQE(_ln{c}, _dq{j}._seq)",
                f"{pad}for _qe in _dqe{j}:",
                f"{pad}    if _qe.lineno == _ln{c}:",
                f"{pad}        _dq{j}.duplicate_inserts += 1",
                f"{pad}        break",
                f"{pad}_dqe{j}.append(_q)",
                f"{pad}_dq{j}.inserts += 1",
                f"{pad}_acc{j}[3] += _dqj{j}",
                f"{pad}_occ = len(_dqe{j})",
                f"{pad}if _occ > _wlc{j}.dirty_highwater:",
                f"{pad}    _wlc{j}.dirty_highwater = _occ"]
    out.append(f"{pad}_dy{j} += _fhw{j}")
    return out


def _emit_store(j: int, mode: str, lru: int, c: int | None, masked: bool,
                pad: str, out: list[str]) -> None:
    now = _NOW_FORMULA.format(j=j)
    out.append(f"{pad}if _w{j}:")
    p = pad + "    "
    if mode in ("call", "base"):
        # the bound handler *is* the (bracketed) slow path here
        slow = (f"_sm{j}(_a, _bits, _mask, {now})" if masked
                else f"_st{j}(_a, _val, {now})")
        out += [f"{p}_fj = {j}",
                f"{p}_dy{j} += {slow}"]
        return
    # wb/wl: full probe inline; a true miss (or a WL guard failure)
    # calls the bracketed slow store_masked with exactly the arguments
    # the handler's bail would pass (full-word stores bail with the
    # FULL mask, the class store delegator's own calling convention)
    slow = (f"_ssm{j}(_a, _bits, _mask, _now{j})" if masked
            else f"_ssm{j}(_a, _val, {_U32}, _now{j})")
    out.append(f"{p}_now{j} = {now}")
    if mode == "wl":
        out += [f"{p}if _pd{j} and _pd{j}[0].ack <= _now{j}:",
                f"{p}    _fj = {j}",
                f"{p}    _dy{j} += {slow}",
                f"{p}else:"]
        p = p + "    "
    out += [f"{p}_li = _mru{j}[_ix{c}]",
            f"{p}if _li.tag != _ln{c}:",
            f"{p}    for _li in _sets{j}[_ix{c}]:",
            f"{p}        if _li.tag == _ln{c}:",
            f"{p}            _mru{j}[_ix{c}] = _li",
            f"{p}            break",
            f"{p}    else:",
            f"{p}        _li = None"]
    if mode == "wb":
        out += [f"{p}if _li is None:",
                f"{p}    _fj = {j}",
                f"{p}    _dy{j} += {slow}",
                f"{p}else:"]
        out += _store_hit(j, mode, lru, c, masked, False, p + "    ")
        return
    out += [f"{p}if _li is None:",
            f"{p}    _fj = {j}",
            f"{p}    _dy{j} += {slow}",
            f"{p}elif _li.dirty:"]
    out += _store_hit(j, mode, lru, c, masked, True, p + "    ")
    out += [f"{p}elif len(_dqe{j}) >= _wlc{j}.waterline:",
            f"{p}    _fj = {j}",
            f"{p}    _dy{j} += {slow}",
            f"{p}else:"]
    out += _store_hit(j, mode, lru, c, masked, False, p + "    ")


def _emit_open(j: int, traced: int, pad: str, out: list[str]) -> None:
    """Open the next chunk window: the serial budget formula, the
    ``run_chunk`` prologue (offset recompute, pending-fetch synthesis),
    and the new target. Mirrors ``_p{j}``/``_cy{j}`` stay at the chunk
    entry values until the close - they double as the open-window
    snapshot an eviction rewinds to."""
    if traced:
        # min(cki, max(2, int(x))) with the calls unrolled
        out += [f"{pad}_bi = int((_en{j} - _sys{j}._e_backup_level)"
                f" / _wnj{j})",
                f"{pad}if _bi < 2:",
                f"{pad}    _bi = 2",
                f"{pad}if _bi > _cki{j}:",
                f"{pad}    _bi = _cki{j}"]
    else:
        out.append(f"{pad}_bi = 65536")
    out += [f"{pad}_tgt = _p{j} + _bi",
            f"{pad}if _tgt > _ntot{j}:",
            f"{pad}    _tgt = _ntot{j}",
            f"{pad}if _cy{j} != _cs{j}:",
            f"{pad}    _of{j} = _cy{j} - ((_cum{j}[_p{j} - 1] "
            f"if _p{j} else 0) + _dy{j})",
            f"{pad}if _pf{j}:",
            # pending refetch: set only right after a flush, where the
            # core was synced (its ._p is current) and the residency
            # epoch is empty - the synthesized fetch always misses
            f"{pad}    _pf{j} = 0",
            f"{pad}    _evx = events[_ei] if _ei < ne else None",
            f"{pad}    if _evx is None or _evx[0] != _p{j} "
            f"or _evx[1] != 0:",
            f"{pad}        _sy{j} = _core{j}.pc >> _ILS",
            f"{pad}        _tf{j} += 1",
            f"{pad}        _ms{j} += 1",
            f"{pad}        _dy{j} += _ci{j}",
            f"{pad}_tg{j} = _tgt",
            f"{pad}_tgs[{j}] = _tgt"]


def _emit_close(j: int, mode: str, traced: int, out: list[str]) -> None:
    """The ``run_chunk`` epilogue plus the ``System.run`` post-chunk
    accounting, all on locals; ends in a halt/outage episode or an
    inline reopen. Wrapped in its own try so a serial-parity raise
    (budget exhaustion, capacitor drain) is terminal for this instance
    only. Dead instances hold ``_tg == _INF``, so the guard is a single
    compare."""
    pad = "            "
    out += [f"{pad}if _tg{j} == _b:",
            f"{pad}    try:",
            f"{pad}        _nck += 1",
            f"{pad}        _tgt = _tg{j}",
            # _tgt >= 1 always: targets are entry + max(2, ...) clamped
            # to n_total, and empty streams never enter a column
            f"{pad}        _nc = _cum{j}[_tgt - 1] + _dy{j} + _of{j}",
            f"{pad}        _dc = _nc - _cy{j}",
            f"{pad}        _cy{j} = _nc",
            f"{pad}        _cs{j} = _nc",
            # instret == position at every boundary (both advance by
            # the retired count), so the close assigns rather than adds
            f"{pad}        _ir{j} = _tgt",
            f"{pad}        if _tgt > _mxi{j}:",
            f"{pad}            raise ExecutionError(",
            f"{pad}                pname + ': exceeded instruction "
            f"budget')",
            f"{pad}        _fnow = evf[_ei] + _tf{j}",
            f"{pad}        _dcp = ((_tgt - _lir{j}) * _knj{j}",
            f"{pad}                + (_fnow - _lf{j}) * _fnj{j}",
            f"{pad}                + (_ms{j} - _lim{j}) * _mnj{j}",
            f"{pad}                + _clw{j} * _dc)",
            f"{pad}        _p{j} = _tgt",
            f"{pad}        _dlc = _dlw{j} * _dc",
            f"{pad}        _cl{j} += _dlc"]
    if mode == "call":
        out.append(f"{pad}        _cnow = (_sta{j}.cache_read_energy_nj"
                   f" + _sta{j}.cache_write_energy_nj)")
    else:
        # the memfast accumulator keeps the energies as absolutes, so
        # the chunk-end flush can stay deferred to protocol points
        out.append(f"{pad}        _cnow = _acc{j}[2] + _acc{j}[3]")
    out += [f"{pad}        _nnow = (_nvm{j}.energy_read_nj"
            f" + _nvm{j}.energy_write_nj)",
            f"{pad}        _dca = _cnow - _lc{j}",
            f"{pad}        _dnv = _nnow - _lnv{j}",
            f"{pad}        _ct{j} += _dcp",
            f"{pad}        _lir{j} = _tgt",
            f"{pad}        _lf{j} = _fnow",
            f"{pad}        _lim{j} = _ms{j}",
            f"{pad}        _lc{j} = _cnow",
            f"{pad}        _lnv{j} = _nnow"]
    if traced:
        out += [f"{pad}        _nd = _dcp + _dlc + _dca + _dnv",
                f"{pad}        if _nd < 0.0:",
                f"{pad}            raise EnergyError(",
                f"{pad}                f'cannot consume negative "
                f"energy {{_nd}}')",
                f"{pad}        _en{j} -= _nd",
                f"{pad}        if _en{j} < 0.0:",
                f"{pad}            raise EnergyError('capacitor fully "
                f"drained: reserve was undersized')",
                # PowerTrace.energy_nj inlined statement-for-statement:
                # lazy extension stays the bound _extend (seeded-RNG
                # traces append segments in place), _seek's inner
                # _ensure is a guaranteed no-op after the t1 ensure,
                # the cursor fast paths and the bisect fallback update
                # _idx exactly as the method does, and the summation
                # accumulates per-segment products in the same order -
                # so the float result is bit-identical. The reversed /
                # empty-interval guards drop: _te > _t{j} always (a
                # chunk retires >= 2 instructions of >= 1 cycle each).
                f"{pad}        _te = _t{j} + _dc",
                f"{pad}        _tt = _t{j}",
                f"{pad}        _tsg = _tst{j}",
                f"{pad}        if _te >= _tsg[-1]:",
                f"{pad}            _tex{j}(_te)",
                f"{pad}        _n = len(_tsg)",
                f"{pad}        _si = _tr{j}._idx",
                f"{pad}        if (_si < _n and _tsg[_si] <= _tt and"
                f" (_si + 1 == _n or _tt < _tsg[_si + 1])):",
                f"{pad}            pass",
                f"{pad}        elif (_si + 1 < _n and _tsg[_si + 1] <= _tt"
                f" and (_si + 2 == _n or _tt < _tsg[_si + 2])):",
                f"{pad}            _si += 1",
                f"{pad}            _tr{j}._idx = _si",
                f"{pad}        else:",
                f"{pad}            _si = _bis(_tsg, _tt) - 1",
                f"{pad}            _tr{j}._idx = _si",
                f"{pad}        _tpv = _tpw{j}",
                f"{pad}        _hv = 0.0",
                f"{pad}        while True:",
                f"{pad}            _se = _tsg[_si + 1] if _si + 1 < _n"
                f" else _te",
                f"{pad}            if _se > _te:",
                f"{pad}                _se = _te",
                f"{pad}            _hv += _tpv[_si] * (_se - _tt)",
                f"{pad}            if _se >= _te:",
                f"{pad}                break",
                f"{pad}            _tt = _se",
                f"{pad}            _si += 1",
                f"{pad}        if _hv < 0.0:",
                f"{pad}            raise EnergyError(",
                f"{pad}                f'cannot harvest negative "
                f"energy {{_hv}}')",
                f"{pad}        _en{j} += _hv",
                f"{pad}        if _en{j} > _emx{j}:",
                f"{pad}            _en{j} = _emx{j}",
                f"{pad}        _t{j} = _te"]
    else:
        out.append(f"{pad}        _t{j} += _dc")
    out += [f"{pad}        if _tgt == _ntot{j}:",
            f"{pad}            _w{j} = 0",
            f"{pad}            _nal -= 1",
            f"{pad}            _tg{j} = _INF",
            f"{pad}            _tgs[{j}] = _INF",
            f"{pad}            _ep.append(('halt', {j}))"]
    if traced:
        out += [f"{pad}        elif _en{j} <= _sys{j}._e_backup_level:",
                # leave the target at the cursor: the scheduler runs
                # the outage lifecycle, then the refresh reopens
                f"{pad}            _ep.append(('outage', {j}))"]
    out.append(f"{pad}        else:")
    open_body: list[str] = []
    _emit_open(j, traced, pad + "            ", open_body)
    out += open_body
    out += [f"{pad}    except Exception as _e:",
            f"{pad}        _w{j} = 0",
            f"{pad}        _nal -= 1",
            f"{pad}        _tg{j} = _INF",
            f"{pad}        _tgs[{j}] = _INF",
            f"{pad}        _ep.append(('err', {j}, _e))"]


def render_engine_source(sig: tuple) -> str:
    """The engine source for a column signature (pure function of the
    signature - the audit rebakes it and compares)."""
    n = len(sig)
    geos, geo_of = _geo_classes(sig)
    store_cs = sorted({geo_of[j] for j, el in enumerate(sig)
                       if el[0] in ("wb", "wl")})
    load_cs = sorted({c for c in geo_of if c is not None})
    out = ["def _make_engine(events, ne, po, evf, cell, slots, pname):"]
    for j, el in enumerate(sig):
        mode, traced = el[0], el[2]
        out.append(f"    _s{j} = slots[{j}]")
        binds = _COMMON_BINDS
        if mode != "call":
            binds = binds + _PROBE_BINDS
        if mode == "wl":
            binds = binds + _WL_BINDS
        for name, idx in binds:
            out.append(f"    {name}{j} = _s{j}[{idx}]")
        if mode == "wl":
            out += [f"    _wlc{j} = _sys{j}.design",
                    f"    _dq{j} = _wlc{j}.dq",
                    f"    _dqe{j} = _dq{j}.entries",
                    f"    _dqj{j} = _wlc{j}.dq_access_energy_nj"]
        out.append(f"    (_knj{j}, _fnj{j}, _mnj{j}, _clw{j}, _dlw{j},"
                   f" _wnj{j}, _cki{j}, _mxi{j}, _emx{j}, _ntot{j})"
                   f" = _s{j}[{S_KON}]")
        if traced:
            out += [f"    _tr{j} = _s{j}[{S_TRACE}]",
                    f"    _tst{j} = _tr{j}.starts",
                    f"    _tpw{j} = _tr{j}.powers",
                    f"    _tex{j} = _tr{j}._extend"]
    unpack = ", ".join(f"{name}{{j}}" for name, _idx in _MIRRORS)
    out += ["    _ep = []",
            f"    _tgs = [0] * {n}",
            "    yield None",
            "    while True:",
            "        _ei = cell[0]",
            "        _blim = cell[1]",
            "        _cur = cell[2]",
            "        _syn = cell[3]",
            "        _nal = 0",
            "        _flm = -1"]
    # resume refresh: one slice unpack per instance, plus the window
    # opens for anyone parked at the cursor (first resume, post-outage
    # reopens, rejoins); steady-state closes reopen inline
    for j, el in enumerate(sig):
        mode, traced = el[0], el[2]
        out += ["        (" + unpack.format(j=j) + ") = "
                f"_s{j}[{S_W}:{S_CLT + 1}]",
                f"        _ac{j} = _w{j}",
                f"        if _w{j}:",
                f"            _nal += 1",
                f"            _dy{j} = _s{j}[{S_DYN}]",
                f"            _of{j} = _s{j}[{S_OFFSET}]",
                f"            _ms{j} = _s{j}[{S_MISSES}]",
                f"            _en{j} = _cap{j}._e_nj",
                f"            if _fl{j} > _flm:",
                f"                _flm = _fl{j}"]
        if mode == "call":
            out.append(f"            _sta{j} = _s{j}[{S_STATS}]")
        out.append(f"            if _tg{j} == _cur:")
        _emit_open(j, traced, "                ", out)
        out += [f"        else:",
                f"            _tg{j} = _INF",
                f"            _tgs[{j}] = _INF"]
    out += ["        if not _nal:",
            "            return",
            "        _we = ne if _blim > ne else _blim",
            "        _nck = 0",
            "        _nrd = 0",
            "        _fj = -1",
            "        while True:",
            "            _nrd += 1",
            "            _b = min(_tgs)",
            "            try:",
            "                while _ei < _we:",
            "                    _ev = events[_ei]",
            "                    _i = _ev[0]",
            "                    if _i >= _b:",
            "                        break",
            "                    _k = _ev[1]",
            "                    if _k == 0:",
            "                        _pv = po[_ei]",
            "                        if _pv < _flm:",
            "                            _line = _ev[2]"]
    for j in range(n):
        _emit_fetch(j, "                            ", out)
    out += ["                    elif _k == 1:",
            "                        _a = _ev[2]"]
    for c in load_cs:
        shift, smask, _wmask = geos[c]
        out += [f"                        _ln{c} = _a >> {shift}",
                f"                        _ix{c} = _ln{c} & {smask}"]
    for j, el in enumerate(sig):
        _emit_load(j, el[0], el[1], geo_of[j],
                   "                        ", out)
    out += ["                    elif _k == 2:",
            "                        _a = _ev[2]",
            "                        _val = _ev[3]"]
    for c in store_cs:
        shift, smask, wmask = geos[c]
        out += [f"                        _ln{c} = _a >> {shift}",
                f"                        _ix{c} = _ln{c} & {smask}",
                f"                        _wi{c} = (_a >> 2) & {wmask}"]
    for j, el in enumerate(sig):
        _emit_store(j, el[0], el[1], geo_of[j], False,
                    "                        ", out)
    out += ["                    else:",
            "                        _a = _ev[2]",
            "                        _bits = _ev[3]",
            "                        _mask = _ev[4]"]
    for c in store_cs:
        shift, smask, wmask = geos[c]
        out += [f"                        _ln{c} = _a >> {shift}",
                f"                        _ix{c} = _ln{c} & {smask}",
                f"                        _wi{c} = (_a >> 2) & {wmask}"]
    for j, el in enumerate(sig):
        _emit_store(j, el[0], el[1], geo_of[j], True,
                    "                        ", out)
    out += ["                    _ei += 1",
            "            except Exception as _e:",
            "                _ep.append(('fault', _fj, _e))",
            "                break",
            "            if _ei >= _blim:",
            "                _ep.append(('bail',))",
            "                break"]
    for j, el in enumerate(sig):
        _emit_close(j, el[0], el[2], out)
    out += ["            _cur = _b",
            "            if _ep or _syn:",
            "                break",
            "            if not _nal:",
            "                break",
            "        cell[0] = _ei",
            "        cell[2] = _cur",
            "        cell[4] += _nck",
            "        cell[5] += _nrd"]
    for j in range(n):
        out += [f"        if _ac{j}:",
                f"            _s{j}[{S_W}:{S_CLT + 1}] = ("
                + unpack.format(j=j) + ")",
                f"            _s{j}[{S_DYN}] = _dy{j}",
                f"            _s{j}[{S_OFFSET}] = _of{j}",
                f"            _s{j}[{S_MISSES}] = _ms{j}",
                f"            _cap{j}._e_nj = _en{j}"]
    out += ["        yield _ep",
            "        _ep = []",
            ""]
    return "\n".join(out)


def engine_source(sig: tuple) -> str:
    """The (cached) retained source for a signature.

    When the persistent store is enabled (:mod:`repro.store`) a miss
    first tries the persisted source for this signature - a *load*
    rather than a render - and a fresh render is persisted for the next
    process. Loaded sources enter the A009 audit ledger."""
    src = _SIG_SOURCES.get(sig)
    if src is None:
        from repro.store.sources import (load_source, lockstep_fingerprint,
                                         save_source)

        key = ("lockstep-engine", lockstep_fingerprint(), sig)
        src = load_source(key,
                          f"lockstep:{'/'.join(str(el[0]) for el in sig)}",
                          lambda: render_engine_source(sig))
        if src is None:
            src = render_engine_source(sig)
            _ENGINE_STATS["renders"] += 1
            save_source(key, src)
        else:
            _ENGINE_STATS["loads"] += 1
        _SIG_SOURCES[sig] = src
    return src


def make_engine(sig: tuple, events: list, ne: int, po, evf, cell: list,
                slots: list, pname: str):
    """A primed engine generator for this column composition.

    The returned generator is already parked at its protocol yield:
    call ``send(None)`` to run rounds until the first episode list.
    """
    src = engine_source(sig)
    code = _CODE_CACHE.get(src)
    if code is None:
        code = _CODE_CACHE[src] = compile(src, "<lockstep>", "exec")
    ns: dict = dict(_NS_BINDS)
    exec(code, ns)
    gen = ns["_make_engine"](events, ne, po, evf, cell, slots, pname)
    next(gen)  # run the constant binds, park at the protocol yield
    _ENGINE_STATS["builds"] += 1
    return gen


def engine_sources() -> dict[tuple, str]:
    """Signature -> retained source, for the codegen audit."""
    return dict(_SIG_SOURCES)


def engine_cache_stats() -> dict:
    """Codegen counters (tests/benchmarks)."""
    return {"signatures": len(_SIG_SOURCES), **_ENGINE_STATS}


def clear_engines() -> None:
    """Drop generated engines and reset counters (tests/benchmarks)."""
    _SIG_SOURCES.clear()
    _CODE_CACHE.clear()
    for k in _ENGINE_STATS:
        _ENGINE_STATS[k] = 0
