"""Per-instance lockstep state: slot lists and stream-side prefix data.

Each column instance carries one plain-list *slot* (structure-of-arrays
discipline, no numpy). The generated engine (:mod:`repro.lockstep.
codegen`) binds the read-only entries - handlers, prefix sums, memfast
geometry, the instance's capacitor / nvm / trace / system objects and
the hoisted energy constants - to locals once per column composition,
and mirrors every genuinely mutable scalar (dynamic cycles, chunk
offset, counters, energy, wall time, accounting baselines) into locals
for the duration of a run. The slot is the hand-off surface: the engine
writes all mirrors back before every yield and re-reads them after
every resume, so the scheduler can run lifecycle blocks, evict, or
rejoin instances between engine rounds with plain list indexing.

The slot also fixes the *signature* the engine is specialized on: the
memory-call shape per instance (``call`` for designs without the
memfast tier, ``base`` for fast loads + slow-path stores, ``wb``/``wl``
for the two fast store-hit shapes), the LRU flag - mirroring exactly
the probe variants :mod:`repro.jit.blocks` inlines in memfast mode -
and whether the instance runs under a power trace (which selects the
serial budget formula and the capacitor accounting block).
"""

from __future__ import annotations

from array import array

from repro.batch.stream import GuestStream

# -- slot indices (keep in sync with codegen's unpack order) -----------
S_LOAD = 0     # bound design.load (memfast handler when attached)
S_STORE = 1    # bound design.store
S_SM = 2       # bound design.store_masked
S_DYN = 3      # accumulated per-instance dynamic cycles (mirror)
S_OFFSET = 4   # external-cycle absorber, constant within a chunk
S_IC = 5       # I-cache residency set (the core's own set object)
S_MISSES = 6   # cumulative I-cache miss counter (mirror)
S_CUM = 7      # this cost family's static cycle prefix sum
S_CMEM = 8     # mem_issue cost (now-formula constant)
S_CIMISS = 9   # I-cache miss penalty
S_MRU = 10     # memfast: per-set MRU line list
S_ACC = 11     # memfast: deferred-stats accumulator
S_MFS = 12     # memfast: line shift
S_MFM = 13     # memfast: set mask
S_MFW = 14     # memfast: word mask
S_MFE = 15     # memfast: read hit energy (nJ)
S_MFH = 16     # memfast: read hit cycles
S_MFEW = 17    # memfast: write hit energy (nJ)
S_MFHW = 18    # memfast: write hit cycles
S_PEND = 19    # memfast: WL-Cache ACK deque (None otherwise)
# -- engine mirrors (synced at every yield, re-read on resume) ---------
S_W = 20       # alive flag: 1 in-column, 0 solo / finished
S_TG = 21      # open-window target instruction index
S_P = 22       # stream position at the open window (chunk entry)
S_IR = 23      # instret at the open window (chunk entry)
S_CYC = 24     # core cycle at the open window (chunk entry)
S_CSEEN = 25   # core._cycle_seen mirror (offset-recompute gate)
S_T = 26       # wall-clock time (ns)
S_FL = 27      # I-cache flush event index (residency epoch start)
S_SY = 28      # post-flush synthesized fetch line (-1: none)
S_PF = 29      # pending-refetch flag (1 right after a flush)
S_TSF = 30     # total synthesized fetches (event-count correction)
S_LIR = 31     # accounting baseline: last_instret
S_LF = 32      # accounting baseline: last_fetch
S_LIM = 33     # accounting baseline: last_imiss
S_LC = 34      # accounting baseline: last_cache (nJ)
S_LNV = 35     # accounting baseline: last_nvm (nJ)
S_CT = 36      # compute_total accumulator (nJ)
S_CLT = 37     # cache_leak_total accumulator (nJ)
# -- bound objects and hoisted constants -------------------------------
S_CAP = 38     # the instance's Capacitor (energy mirrored to a local)
S_NVM = 39     # the design's NVM backend (energy counter reads)
S_STATS = 40   # design.stats (republished by the scheduler at outage)
S_SYS = 41     # the System (per-chunk _e_backup_level reads)
S_TRACE = 42   # the PowerTrace, or None
S_CORE = 43    # the ReplayCore (synth-fetch pc recovery only)
S_KON = 44     # hoisted constants tuple, see build_slot
S_SETS = 45    # memfast: SetAssocArray.sets (full inline probe)
S_SLD = 46     # memfast: bracketed slow load (direct miss binding)
S_SSM = 47     # memfast: bracketed slow store_masked
N_SLOTS = 48

_SHAPE_MODE = {"wl": "wl", "wb": "wb", None: "base"}


def build_slot(system, stream: GuestStream) -> tuple[list, tuple]:
    """The engine slot for one built replay instance, plus its
    ``(mode, lru, traced, shift, smask, wmask)`` signature element
    (geometry ``None`` for ``call`` instances).

    Must run after :func:`repro.memfast.attach_memfast`: the handler
    bindings taken here are exactly the ones ``ReplayCore.run_chunk``
    would bind lazily, so the column and the per-instance slow path
    issue byte-for-byte the same calls.
    """
    core = system.core
    design = system.design
    em = system.config.energy
    sl: list = [None] * N_SLOTS
    sl[S_LOAD] = design.load
    sl[S_STORE] = design.store
    sl[S_SM] = design.store_masked
    sl[S_DYN] = 0
    sl[S_OFFSET] = 0
    sl[S_IC] = core.ic_lines
    sl[S_MISSES] = 0
    sl[S_CUM] = stream.cum_cycles
    sl[S_CMEM] = stream.c_mem
    sl[S_CIMISS] = core._c_imiss
    sl[S_W] = 1
    sl[S_TG] = 0
    sl[S_P] = 0
    sl[S_IR] = 0
    sl[S_CYC] = 0
    sl[S_CSEEN] = 0
    sl[S_T] = 0
    sl[S_FL] = 0
    sl[S_SY] = -1
    sl[S_PF] = 1 if core._pending_fetch else 0
    sl[S_TSF] = 0
    sl[S_LIR] = 0
    sl[S_LF] = 0
    sl[S_LIM] = 0
    sl[S_LC] = 0.0
    sl[S_LNV] = 0.0
    sl[S_CT] = 0.0
    sl[S_CLT] = 0.0
    sl[S_CAP] = system.capacitor
    sl[S_NVM] = design.nvm
    sl[S_STATS] = design.stats
    sl[S_SYS] = system
    sl[S_TRACE] = system.trace
    sl[S_CORE] = core
    sl[S_KON] = (em.compute_nj, em.ifetch_nj, em.ifetch_miss_nj,
                 em.core_leakage_w, design.leakage_w(),
                 em.worst_instr_nj, system.config.chunk_instrs,
                 system.config.max_instructions,
                 system.capacitor._e_max, stream.n_total)
    traced = 0 if system.trace is None else 1
    state = getattr(design, "_memfast_state", None)
    if state is None:
        return sl, ("call", 0, traced, None, None, None)
    (mru, acc, shift, smask, wmask, e_read, hit_read, lru, e_write,
     hit_write, pending) = state.jit_bindings()
    sl[S_MRU] = mru
    sl[S_ACC] = acc
    sl[S_MFS] = shift
    sl[S_MFM] = smask
    sl[S_MFW] = wmask
    sl[S_MFE] = e_read
    sl[S_MFH] = hit_read
    sl[S_MFEW] = e_write
    sl[S_MFHW] = hit_write
    sl[S_PEND] = pending
    sl[S_SETS] = design.array.sets
    sl[S_SLD] = state.slow_load
    sl[S_SSM] = state.slow_sm
    # the signature carries the cache geometry so the engine can bake
    # it as literals and share the set/tag computation across every
    # instance with the same geometry (one class per distinct triple)
    return sl, (_SHAPE_MODE[state.store_shape], lru, traced,
                shift, smask, wmask)


def event_counts(stream: GuestStream) -> tuple:
    """``(fetches, loads, stores)`` prefix-count arrays over the shared
    skeleton's event list, each of length ``n_events + 1``.

    ``counts[kind][ei]`` is the number of events of that kind among
    ``events[:ei]``, so a chunk's fetch/load/store counter deltas - the
    per-event ``+= 1`` bookkeeping ``ReplayCore.run_chunk`` performs -
    collapse into two lookups at the chunk boundary. Loads and stores
    are instance-independent (every instance consumes every event);
    I-cache *misses* depend on per-instance residency and stay a real
    counter in the engine. Cached on the skeleton, so every cost family
    and every column over the same recording shares one expansion.
    """
    skel = stream.skel
    counts = skel.ev_counts
    if counts is not None:
        return counts
    evf = array("q", [0])
    evl = array("q", [0])
    evs = array("q", [0])
    af, al, as_ = evf.append, evl.append, evs.append
    f = l = s = 0
    for ev in skel.events:
        k = ev[1]
        if k == 0:
            f += 1
        elif k == 1:
            l += 1
        else:
            s += 1
        af(f)
        al(l)
        as_(s)
    counts = (evf, evl, evs)
    skel.ev_counts = counts
    return counts


def event_prev(stream: GuestStream):
    """Previous-occurrence index per event over the shared skeleton.

    For a line event at index ``ei``, ``prev[ei]`` is the index of the
    previous line event fetching the *same* line (``-1`` if none); for
    other event kinds it is ``-1``. Because an instance's residency set
    only grows between flushes, a line is resident at event ``ei`` iff
    ``prev[ei] >= flush_ei`` (or the line is the instance's post-flush
    synthesized fetch). The column fast path compares ``prev[ei]``
    against the *maximum* flush index over live instances once per
    fetch event - when it clears that bar the line is resident for
    every instance and the whole column skips the event. Cached on the
    skeleton (fetch events are the majority of a stream, so this single
    shared array replaces most of the per-instance event work).
    """
    skel = stream.skel
    prev = skel.ev_prev
    if prev is not None:
        return prev
    prev = array("q", bytes())
    ap = prev.append
    last: dict[int, int] = {}
    for idx, ev in enumerate(skel.events):
        if ev[1] == 0:
            line = ev[2]
            ap(last.get(line, -1))
            last[line] = idx
        else:
            ap(-1)
    skel.ev_prev = prev
    return prev
