"""Lockstep multi-instance replay: one walker advances the sweep column.

The batch tier (:mod:`repro.batch`) records a kernel once and replays it
per sweep point, but each point still walks the shared event stream
through its own ``ReplayCore`` loop - the event decode, the position
bookkeeping, and the loop machinery are repeated N times. This package
removes that repetition: points sharing a :class:`~repro.batch.stream.
StreamSkeleton` are planned into a *column* and advanced together by one
generated walker (:mod:`repro.lockstep.codegen`) that decodes every
event once and issues each instance's memory call with its own cost
bindings, with per-instance state held in parallel slot lists
(:mod:`repro.lockstep.state`). Chunk budgets, capacitor accounting,
outages, and adaptation stay per instance and bit-identical to serial -
the scheduler (:mod:`repro.lockstep.scheduler`) replicates the exact
``System.run`` / ``ReplayCore.run_chunk`` arithmetic at every chunk
boundary and evicts any diverging instance to the per-instance replay
path at an exact event index.

Enable with ``SimConfig(lockstep=True)``, ``--lockstep`` on the CLI, or
``REPRO_LOCKSTEP=1`` in the environment (sweep pool workers re-export
it, like the other tier switches). Lockstep composes on top of the
batch tier and inherits its eligibility rules.
"""

from __future__ import annotations

import os

#: ``REPRO_LOCKSTEP=1`` enables lockstep replay for every batched grid
#: in this process (pool workers re-export it, like REPRO_BATCH).
ENV_VAR = "REPRO_LOCKSTEP"


def lockstep_enabled() -> bool:
    """True when ``REPRO_LOCKSTEP`` requests lockstep replay globally."""
    return os.environ.get(ENV_VAR, "").strip() not in ("", "0")


__all__ = ["ENV_VAR", "lockstep_enabled"]
