"""Lockstep scheduler: episode-driven column driver over a shared stream.

A *column* is a set of batched sweep instances replaying the same
:class:`~repro.batch.stream.StreamSkeleton` (across cost families - the
skeleton is cost-independent). One generated engine
(:mod:`repro.lockstep.codegen`) advances the whole column - windows,
walk, chunk epilogues, capacitor accounting - and yields *episodes*
whenever an instance needs the cold lifecycle machinery:

* **halt** - the instance retired its last instruction; the scheduler
  syncs its ``ReplayCore`` from the slot mirrors, flushes the memfast
  accumulators, and runs halt finalization + result assembly.
* **outage** - the chunk accounting drained the capacitor to the backup
  level; the scheduler syncs the core and runs the outage lifecycle
  (checkpoint, recharge, reboot, adaptation) on the same ``System``
  object the serial path drives, then republishes the slot mirrors the
  reboot changed (wall time, baselines, flush epoch, cycle).
* **eviction** - an instance that diverges (a :class:`LockstepBail`
  from a wrapped handler, a forced bail from the test seam) leaves the
  column at an exact event index: its core is rewound to the open
  window's state (events already applied stay applied - the position
  fields are set so ``run_chunk`` finishes exactly the interrupted
  chunk, and the residency set is reconstructed from the flush epoch),
  and it continues on the ordinary per-instance replay path.
* **rejoin** - an evicted instance whose solo chunks land it exactly on
  the column's cursor at a boundary re-enters the column there; the
  engine's alive flags make membership changes free (no recompile).
* **fault isolation** - a non-bail exception is terminal for its
  instance only (boxed like the serial path would box it); the event it
  faulted on is applied out of line to the instances behind it in the
  column and the walk resumes one event later.

Everything here is driven through the same ``System`` objects the
serial path runs - ``_begin`` / ``_outage_reboot`` / ``_halt_finalize``
/ ``_finish`` are the single source of truth for lifecycle arithmetic -
so every ``RunResult`` field is bit-identical to serial execution.
"""

from __future__ import annotations

import traceback

from repro.batch.engine import build_replay_system
from repro.cpu.core import ARCH_REGS
from repro.lockstep.codegen import make_engine
from repro.lockstep.state import (S_CIMISS, S_CLT, S_CMEM, S_CSEEN, S_CT,
                                  S_CUM, S_CYC, S_DYN, S_FL, S_IR, S_LC,
                                  S_LF, S_LIM, S_LIR, S_LNV, S_LOAD,
                                  S_MISSES, S_OFFSET, S_P, S_PF, S_SM,
                                  S_STATS, S_STORE, S_SY, S_T, S_TG,
                                  S_TSF, S_W, build_slot, event_counts,
                                  event_prev)
from repro.sim.results import EnergyBreakdown, RunResult


class LockstepBail(Exception):
    """Evict the raising instance from its column to the per-instance
    replay path (it may rejoin at a later chunk boundary). Raised by
    test seams or design wrappers; never by the stock designs."""


#: test seam: ``BAIL_HOOK(task) -> event index | None`` forces the
#: instance out of the column exactly when the cursor reaches that
#: event (0 = before the first event).
BAIL_HOOK = None

#: test seam: ``PREP_HOOK(task, system)`` runs after each instance's
#: system is built, *before* the engine binds its handlers - the place
#: to wrap ``design.load``/``store`` for fault injection.
PREP_HOOK = None

_STATS = {"columns": 0, "instances": 0, "segments": 0, "evictions": 0,
          "rejoins": 0, "faults": 0, "solo_chunks": 0,
          "column_chunks": 0}

#: shared-cell layout (see codegen): the event cursor, the forced-bail
#: event limit, the instruction cursor (last closed boundary), the
#: sync-mode flag, and the chunk/round counters
C_EI, C_BLIM, C_CUR, C_SYNC, C_CHUNKS, C_ROUNDS = range(6)


def lockstep_stats() -> dict:
    """Scheduler counters (tests/benchmarks)."""
    return dict(_STATS)


def clear_lockstep_stats() -> None:
    for k in _STATS:
        _STATS[k] = 0


def _apply_event(sl, po, ei: int, ev) -> None:
    """Apply one stream event to one instance through its slot - the
    ``ReplayCore.run_chunk`` event body with residency decided by the
    shared previous-occurrence array. Used off the engine fast path
    (fault recovery for the instances behind a faulting one)."""
    k = ev[1]
    dyn = sl[S_DYN]
    if k == 0:
        if po[ei] < sl[S_FL] and ev[2] != sl[S_SY]:
            sl[S_MISSES] += 1
            sl[S_DYN] = dyn + sl[S_CIMISS]
        return
    now = sl[S_CUM][ev[0]] - sl[S_CMEM] + dyn + sl[S_OFFSET]
    if k == 1:
        _v, lat = sl[S_LOAD](ev[2], now)
        sl[S_DYN] = dyn + lat
    elif k == 2:
        sl[S_DYN] = dyn + sl[S_STORE](ev[2], ev[3], now)
    else:
        sl[S_DYN] = dyn + sl[S_SM](ev[2], ev[3], ev[4], now)


class _Inst:
    """One sweep point's full lifecycle state inside a column."""

    __slots__ = (
        "task", "config", "system", "core", "design", "stats", "nvm",
        "trace", "cap", "mf", "sl", "sig", "res", "bd",
        # hoisted accounting constants (the serial loop's local binds,
        # used by the solo path; the engine carries them in the slot)
        "core_leak_w", "design_leak_w", "compute_nj", "ifetch_nj",
        "ifetch_miss_nj", "worst_instr_nj", "chunk_instrs",
        "max_instructions",
        # accounting accumulators (the serial loop's baselines; live in
        # the slot mirrors while in-column, here while solo)
        "last_instret", "last_fetch", "last_imiss", "last_cache",
        "last_nvm", "compute_total", "cache_leak_total", "t", "period",
        "no_progress",
        # divergence bookkeeping
        "pending_target", "bail_ei", "outcome", "done",
    )


def _build_inst(program, task, config, stream) -> _Inst:
    """Build one replay instance and run its pre-loop lifecycle,
    mirroring ``_replay_task`` + the ``System.run`` prologue exactly."""
    system = build_replay_system(program, task, config, stream)
    if PREP_HOOK is not None:
        PREP_HOOK(task, system)
    inst = _Inst()
    inst.task = task
    inst.config = config
    inst.system = system
    inst.core = system.core
    design = inst.design = system.design
    inst.stats = design.stats
    inst.nvm = design.nvm
    trace = inst.trace = system.trace
    inst.cap = system.capacitor
    inst.mf = getattr(design, "_memfast_state", None)
    inst.sl, inst.sig = build_slot(system, stream)
    em = config.energy
    inst.core_leak_w = em.core_leakage_w
    inst.design_leak_w = design.leakage_w()
    inst.compute_nj = em.compute_nj
    inst.ifetch_nj = em.ifetch_nj
    inst.ifetch_miss_nj = em.ifetch_miss_nj
    inst.worst_instr_nj = em.worst_instr_nj
    inst.chunk_instrs = config.chunk_instrs
    inst.max_instructions = config.max_instructions
    inst.res = RunResult(program=program.name, design=design.name,
                         trace=trace.name if trace else "no-failure")
    inst.bd = EnergyBreakdown()
    inst.last_instret = 0
    inst.last_fetch = 0
    inst.last_imiss = 0
    inst.last_cache = 0.0
    inst.last_nvm = 0.0
    inst.compute_total = 0.0
    inst.cache_leak_total = 0.0
    inst.t = system._begin(inst.res)
    inst.sl[S_T] = inst.t
    inst.period = system._new_period()
    inst.no_progress = 0
    inst.pending_target = None
    inst.bail_ei = BAIL_HOOK(task) if BAIL_HOOK is not None else None
    inst.outcome = None
    inst.done = False
    return inst


class _Column:
    """One lockstep column plus its evicted solo satellites."""

    def __init__(self, program, entries):
        self.program = program
        skel = entries[0][2].skel
        self.events = skel.events
        self.ne = skel.n_events
        self.evf, self.evl, self.evs = event_counts(entries[0][2])
        self.po = event_prev(entries[0][2])
        self.cell = [0, self.ne + 1, 0, 0, 0, 0]
        self.insts: list[_Inst] = []    # every instance, entry order
        self.members: list[_Inst] = []  # built instances, engine order
        self.solos: list[_Inst] = []    # evicted from the column
        for task, config, stream in entries:
            try:
                inst = _build_inst(program, task, config, stream)
            except Exception as exc:
                inst = _Inst()
                inst.task = task
                inst.outcome = ("err", exc, traceback.format_exc())
                inst.done = True
                self.insts.append(inst)
                continue
            self.insts.append(inst)
            self.members.append(inst)
            if inst.core.halted:  # empty stream: serial-shape solo run
                inst.sl[S_W] = 0
                self.solos.append(inst)
        self._update_blim()

    def _update_blim(self) -> None:
        """The engine stops the walk at the smallest pending forced-bail
        event index (clamped to the stream end so late bails still fire
        at the final boundary)."""
        pend = [min(i.bail_ei, self.ne) for i in self.members
                if i.bail_ei is not None and i.sl[S_W]]
        self.cell[C_BLIM] = min(pend) if pend else self.ne + 1

    # -- core synchronization ------------------------------------------
    def _sync_core(self, inst: _Inst) -> None:
        """Publish an instance's slot mirrors to its ``ReplayCore`` -
        the state the core would hold had it replayed alone. At a
        boundary (halt/outage) the mirrors hold the closed chunk; mid-
        walk (eviction) they hold the open window, so position/cycle
        rewind to the chunk entry while the counters cover the events
        already applied - ``run_chunk`` then finishes exactly the
        interrupted window."""
        sl = inst.sl
        core = inst.core
        ei = self.cell[C_EI]
        core._p = sl[S_P]
        core._ei = ei
        core._dyn = sl[S_DYN]
        core._offset = sl[S_OFFSET]
        # entry cycle restored *and* marked seen: run_chunk must not
        # recompute the offset (the slot value is authoritative)
        core.cycle = sl[S_CYC]
        core._cycle_seen = sl[S_CYC]
        core.instret = sl[S_IR]
        core.ic_fetches = self.evf[ei] + sl[S_TSF]
        core.ic_misses = sl[S_MISSES]
        core.n_loads = self.evl[ei]
        core.n_stores = self.evs[ei]
        p = sl[S_P]
        core.n_branches = core.stream.cum_branches[p - 1] if p else 0
        core._pending_fetch = bool(sl[S_PF])
        core._flush_ei = sl[S_FL]
        core._synth_line = sl[S_SY]

    # -- episode handlers ----------------------------------------------
    def _finish_inst(self, j: int) -> None:
        """Halt episode: the chunk accounting is done; run the halt
        lifecycle and assemble the result."""
        inst = self.members[j]
        sl = inst.sl
        self._sync_core(inst)
        core = inst.core
        core.halted = True
        core.regs[:ARCH_REGS] = core.stream.final_regs
        try:
            if inst.mf is not None:
                inst.mf.flush()  # drain the deferred counters
            t = inst.system._halt_finalize(sl[S_T])
            res = inst.system._finish(inst.res, inst.bd, t, inst.period,
                                      sl[S_CT], sl[S_CLT])
        except Exception as exc:
            self._fail_member(j, exc)
            return
        inst.outcome = ("ok", res)
        inst.done = True

    def _outage(self, j: int) -> None:
        """Outage episode: run the power-failure lifecycle on the
        instance's own ``System`` and republish the mirrors the reboot
        changed (the engine re-reads them on resume)."""
        inst = self.members[j]
        sl = inst.sl
        self._sync_core(inst)
        try:
            (t, inst.period, inst.no_progress, lc,
             lnv) = inst.system._outage_reboot(
                inst.res, inst.bd, sl[S_T], inst.period,
                inst.no_progress)
        except Exception as exc:
            self._fail_member(j, exc)
            return
        core = inst.core
        sl[S_T] = t
        sl[S_LC] = lc
        sl[S_LNV] = lnv
        inst.stats = inst.design.stats
        sl[S_STATS] = inst.stats
        sl[S_CYC] = core.cycle  # restore/on_boot cycles: the next open
        sl[S_CSEEN] = core._cycle_seen  # ...recomputes the offset
        sl[S_PF] = 1 if core._pending_fetch else 0
        sl[S_FL] = core._flush_ei
        sl[S_SY] = core._synth_line

    def _fail_member(self, j: int, exc: Exception) -> None:
        """Terminal fault: box the error exactly as the serial path's
        ``_outcome`` would and drop the instance."""
        inst = self.members[j]
        inst.sl[S_W] = 0
        inst.outcome = ("err", exc,
                        "".join(traceback.format_exception(exc)))
        inst.done = True

    def _evict(self, inst: _Inst) -> None:
        """Rewind the instance's core to its open window and hand it to
        the per-instance replay path. Events already applied stay
        applied: position/counter fields are set so ``run_chunk``
        resumes mid-chunk and finishes the window exactly, and the
        residency set is reconstructed from the flush epoch."""
        sl = inst.sl
        self._sync_core(inst)
        core = inst.core
        ic = core.ic_lines
        ic.clear()
        events = self.events
        for idx in range(sl[S_FL], self.cell[C_EI]):
            ev = events[idx]
            if ev[1] == 0:
                ic.add(ev[2])
        if sl[S_SY] >= 0:
            ic.add(sl[S_SY])
        inst.pending_target = sl[S_TG]
        inst.t = sl[S_T]
        inst.last_instret = sl[S_LIR]
        inst.last_fetch = sl[S_LF]
        inst.last_imiss = sl[S_LIM]
        inst.last_cache = sl[S_LC]
        inst.last_nvm = sl[S_LNV]
        inst.compute_total = sl[S_CT]
        inst.cache_leak_total = sl[S_CLT]
        inst.stats = inst.design.stats
        sl[S_W] = 0
        self.solos.append(inst)
        _STATS["evictions"] += 1

    def _fault(self, j: int, exc: Exception) -> None:
        """Mid-walk fault at event ``cell[ei]``: divert the faulting
        instance, apply the event out of line to the instances behind
        it, and resume the walk one event later."""
        _STATS["faults"] += 1
        ei = self.cell[C_EI]
        if j < 0:
            raise exc  # not attributable to one instance
        if isinstance(exc, LockstepBail):
            self._evict(self.members[j])
        else:
            self._fail_member(j, exc)
        ev = self.events[ei]
        for j2 in range(j + 1, len(self.members)):
            sl2 = self.members[j2].sl
            if not sl2[S_W]:
                continue
            try:
                _apply_event(sl2, self.po, ei, ev)
            except Exception as exc2:
                if isinstance(exc2, LockstepBail):
                    self._evict(self.members[j2])
                else:
                    self._fail_member(j2, exc2)
        self.cell[C_EI] = ei + 1

    def _bails(self) -> None:
        """Bail episode: the walk reached the forced-bail limit; evict
        the flagged instances there and raise the limit."""
        ei = self.cell[C_EI]
        for inst in self.members:
            if (inst.bail_ei is not None and inst.sl is not None
                    and inst.sl[S_W] and min(inst.bail_ei, self.ne) <= ei):
                inst.bail_ei = None
                self._evict(inst)
        self._update_blim()

    def _handle(self, episodes: list) -> None:
        for ep in episodes:
            kind = ep[0]
            if kind == "halt":
                self._finish_inst(ep[1])
            elif kind == "outage":
                self._outage(ep[1])
            elif kind == "err":
                self._fail_member(ep[1], ep[2])
            elif kind == "fault":
                self._fault(ep[1], ep[2])
            else:
                self._bails()
        if self.solos:
            self._advance_solos()
        # sync mode: yield at every boundary while a live solo could
        # still rejoin a live column
        live = any(m.sl[S_W] for m in self.members)
        pending = any(not i.done for i in self.solos)
        self.cell[C_SYNC] = 1 if (live and pending) else 0

    # -- the solo path --------------------------------------------------
    def _solo_chunk(self, inst: _Inst) -> None:
        """One chunk on the ordinary replay path: finish a pending
        (interrupted) window first, then natural serial budgets."""
        core = inst.core
        if inst.pending_target is not None:
            budget = inst.pending_target - core._p
            inst.pending_target = None
        elif inst.trace is None:
            budget = 65536
        else:
            headroom = inst.cap.energy - inst.system._e_backup_level
            budget = min(inst.chunk_instrs,
                         max(2, int(headroom / inst.worst_instr_nj)))
        _n, dcycles = core.run_chunk(budget)
        _STATS["solo_chunks"] += 1
        self._account(inst, dcycles)

    def _account(self, inst: _Inst, dcycles: int) -> None:
        """The ``System.run`` post-chunk block for a solo instance (the
        engine inlines the same arithmetic for column instances)."""
        core = inst.core
        system = inst.system
        trace = inst.trace
        instret = core.instret
        if instret > inst.max_instructions:
            from repro.errors import ExecutionError
            raise ExecutionError(
                f"{self.program.name}: exceeded instruction budget")
        stats = inst.stats
        d_compute = ((instret - inst.last_instret) * inst.compute_nj
                     + (core.ic_fetches - inst.last_fetch)
                     * inst.ifetch_nj
                     + (core.ic_misses - inst.last_imiss)
                     * inst.ifetch_miss_nj
                     + inst.core_leak_w * dcycles)
        d_leak_cache = inst.design_leak_w * dcycles
        inst.cache_leak_total += d_leak_cache
        cache_now = (stats.cache_read_energy_nj
                     + stats.cache_write_energy_nj)
        nvm = inst.nvm
        nvm_now = nvm.energy_read_nj + nvm.energy_write_nj
        d_cache = cache_now - inst.last_cache
        d_nvm = nvm_now - inst.last_nvm
        inst.compute_total += d_compute
        inst.last_instret = instret
        inst.last_fetch = core.ic_fetches
        inst.last_imiss = core.ic_misses
        inst.last_cache = cache_now
        inst.last_nvm = nvm_now
        cap = inst.cap
        if trace is not None:
            cap.consume(d_compute + d_leak_cache + d_cache + d_nvm)
            cap.harvest(trace.energy_nj(inst.t, inst.t + dcycles))
        inst.t += dcycles
        if core.halted:
            inst.t = system._halt_finalize(inst.t)
            res = system._finish(inst.res, inst.bd, inst.t, inst.period,
                                 inst.compute_total,
                                 inst.cache_leak_total)
            inst.outcome = ("ok", res)
            inst.done = True
            return
        if trace is not None and cap.energy <= system._e_backup_level:
            (inst.t, inst.period, inst.no_progress, inst.last_cache,
             inst.last_nvm) = system._outage_reboot(
                inst.res, inst.bd, inst.t, inst.period,
                inst.no_progress)
            inst.stats = inst.design.stats

    def _advance_solos(self) -> None:
        """Run solos up to the column cursor; rejoin exact landings."""
        cursor = self.cell[C_CUR]
        ei = self.cell[C_EI]
        live = any(m.sl[S_W] for m in self.members)
        rejoin = []
        for inst in self.solos:
            if inst.done:
                continue
            try:
                while not inst.done and inst.core._p < cursor:
                    self._solo_chunk(inst)
            except Exception as exc:
                inst.outcome = ("err", exc, traceback.format_exc())
                inst.done = True
                continue
            if not inst.done and live and inst.core._p == cursor:
                rejoin.append(inst)
        for inst in rejoin:
            core = inst.core
            assert core._ei == ei, "rejoin cursor mismatch"
            self.solos.remove(inst)
            sl = inst.sl
            sl[S_TG] = cursor
            sl[S_P] = core._p
            sl[S_IR] = core.instret
            sl[S_DYN] = core._dyn
            sl[S_OFFSET] = core._offset
            sl[S_MISSES] = core.ic_misses
            sl[S_CYC] = core.cycle
            sl[S_CSEEN] = core._cycle_seen
            sl[S_T] = inst.t
            sl[S_FL] = core._flush_ei
            sl[S_SY] = core._synth_line
            sl[S_PF] = 1 if core._pending_fetch else 0
            sl[S_TSF] = core.ic_fetches - self.evf[ei]
            sl[S_LIR] = inst.last_instret
            sl[S_LF] = inst.last_fetch
            sl[S_LIM] = inst.last_imiss
            sl[S_LC] = inst.last_cache
            sl[S_LNV] = inst.last_nvm
            sl[S_CT] = inst.compute_total
            sl[S_CLT] = inst.cache_leak_total
            sl[S_STATS] = inst.stats
            sl[S_W] = 1
            inst.pending_target = None
            _STATS["rejoins"] += 1

    # -- driver ---------------------------------------------------------
    def run(self) -> None:
        _STATS["columns"] += 1
        _STATS["instances"] += sum(1 for m in self.members
                                   if m.sl[S_W])
        if any(m.sl[S_W] for m in self.members):
            sig = tuple(m.sig for m in self.members)
            gen = make_engine(sig, self.events, self.ne, self.po,
                              self.evf, self.cell,
                              [m.sl for m in self.members],
                              self.program.name)
            try:
                while True:
                    self._handle(gen.send(None))
            except StopIteration:
                pass
            _STATS["column_chunks"] += self.cell[C_CHUNKS]
            _STATS["segments"] += self.cell[C_ROUNDS]
        for inst in self.solos:
            if inst.done:
                continue
            try:
                while not inst.done:
                    self._solo_chunk(inst)
            except Exception as exc:
                inst.outcome = ("err", exc, traceback.format_exc())
                inst.done = True


def run_column(program, entries) -> list[tuple]:
    """Run one column over ``entries`` (``(task, config, stream)``
    triples sharing a skeleton) and return ``(task, outcome)`` pairs in
    entry order, outcomes boxed like the batch engine's ``_outcome``."""
    col = _Column(program, entries)
    col.run()
    out = []
    for inst in col.insts:
        assert inst.done, "lockstep instance ended without an outcome"
        out.append((inst.task, inst.outcome))
    return out
