"""repro.mem - NVM main memory and the set-associative cache substrate."""

from repro.mem.memsys import FlushReport, MemStats, NoCacheNVP
from repro.mem.nvm import NVMainMemory, NVMTimings
from repro.mem.setassoc import (FIFO, LRU, CacheGeometry, CacheLine,
                                SetAssocArray)

__all__ = [
    "CacheGeometry",
    "CacheLine",
    "FIFO",
    "FlushReport",
    "LRU",
    "MemStats",
    "NVMTimings",
    "NVMainMemory",
    "NoCacheNVP",
    "SetAssocArray",
]
