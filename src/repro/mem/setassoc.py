"""Set-associative cache array: geometry, lines, replacement policies.

The array holds real data words (value-accurate simulation). Replacement is
LRU or FIFO, selected per the paper's sensitivity study (§6.5): LRU tracks a
use stamp on every access, FIFO only a fill stamp - the energy model charges
LRU bookkeeping extra energy per access, which is exactly the effect the
paper measures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

LRU = "lru"
FIFO = "fifo"
REPLACEMENT_POLICIES = (LRU, FIFO)


@dataclass(frozen=True)
class CacheGeometry:
    """Size/associativity/line geometry with derived index math.

    Addresses are byte addresses; lines are aligned power-of-two sized.
    """

    size_bytes: int = 8192
    assoc: int = 2
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if self.line_bytes < 4 or self.line_bytes & (self.line_bytes - 1):
            raise ConfigError("line_bytes must be a power of two >= 4")
        if self.assoc < 1:
            raise ConfigError("assoc must be >= 1")
        if (self.size_bytes % (self.line_bytes * self.assoc)) != 0:
            raise ConfigError(
                "size_bytes must be a multiple of line_bytes * assoc")
        n_sets = self.size_bytes // (self.line_bytes * self.assoc)
        if n_sets & (n_sets - 1):
            raise ConfigError("number of sets must be a power of two")

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.assoc)

    @property
    def n_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def words_per_line(self) -> int:
        return self.line_bytes // 4

    @property
    def line_shift(self) -> int:
        return self.line_bytes.bit_length() - 1

    @property
    def set_mask(self) -> int:
        return self.n_sets - 1


class CacheLine:
    """One cache line with data payload and replacement metadata.

    Invariant: an invalid line always carries ``tag == -1`` (enforced by
    ``__init__``/``invalidate``), so tag comparison alone decides a hit -
    the hot lookup paths rely on this and skip the ``valid`` check.
    """

    __slots__ = ("tag", "valid", "dirty", "data", "use_stamp", "fill_stamp")

    def __init__(self, words_per_line: int):
        self.tag = -1
        self.valid = False
        self.dirty = False
        self.data = [0] * words_per_line
        self.use_stamp = 0
        self.fill_stamp = 0

    def invalidate(self) -> None:
        self.valid = False
        self.dirty = False
        self.tag = -1


class SetAssocArray:
    """The raw array; policy-free except for victim selection.

    Designs drive it through :meth:`find`, :meth:`victim`, and direct line
    mutation; the array never touches backing memory itself.
    """

    def __init__(self, geometry: CacheGeometry, replacement: str = LRU):
        if replacement not in REPLACEMENT_POLICIES:
            raise ConfigError(f"unknown replacement policy {replacement!r}")
        self.geometry = geometry
        self.replacement = replacement
        wpl = geometry.words_per_line
        self.sets: list[list[CacheLine]] = [
            [CacheLine(wpl) for _ in range(geometry.assoc)]
            for _ in range(geometry.n_sets)
        ]
        self._stamp = 0
        # hoisted geometry/policy for the hot path
        self.line_shift = geometry.line_shift
        self.set_mask = geometry.set_mask
        self.words_per_line = wpl
        self._lru = replacement == LRU
        # MRU-way cache: the line that last hit (or was installed) per set.
        # Purely a lookup accelerator - a hit is still decided by the tag
        # check, and lines mutate in place, so a stale pointer just misses
        # into the normal set probe. Never rebound (the fast-path tier
        # binds the list object itself).
        self.mru: list[CacheLine] = [cset[0] for cset in self.sets]

    def find(self, addr: int) -> CacheLine | None:
        """Return the valid line holding ``addr``, updating LRU stamps."""
        lineno = addr >> self.line_shift
        si = lineno & self.set_mask
        line = self.mru[si]
        if line.tag != lineno:
            for line in self.sets[si]:
                if line.tag == lineno:  # invalid lines hold tag -1: no hit
                    self.mru[si] = line
                    break
            else:
                return None
        if self._lru:
            self._stamp += 1
            line.use_stamp = self._stamp
        return line

    def peek(self, addr: int) -> CacheLine | None:
        """Like :meth:`find` but with no replacement-state side effects."""
        lineno = addr >> self.line_shift
        for line in self.sets[lineno & self.set_mask]:
            if line.tag == lineno:
                return line
        return None

    def victim(self, addr: int) -> CacheLine:
        """Choose the line to fill for ``addr`` (invalid first, else policy)."""
        cset = self.sets[(addr >> self.line_shift) & self.set_mask]
        best = None
        best_key = 0
        lru = self._lru
        for line in cset:
            if not line.valid:
                return line
            key = line.use_stamp if lru else line.fill_stamp
            if best is None or key < best_key:
                best = line
                best_key = key
        return best

    def install(self, addr: int, data: list[int]) -> CacheLine:
        """Fill the victim line for ``addr`` with ``data`` (caller must have
        handled the old contents); returns the line."""
        line = self.victim(addr)
        lineno = addr >> self.line_shift
        line.tag = lineno
        line.valid = True
        line.dirty = False
        line.data = list(data)
        self._stamp += 1
        line.use_stamp = self._stamp
        line.fill_stamp = self._stamp
        self.mru[lineno & self.set_mask] = line
        return line

    def line_addr(self, line: CacheLine) -> int:
        """Byte address of the first word of a valid line."""
        return line.tag << self.line_shift

    def invalidate_all(self) -> None:
        for cset in self.sets:
            for line in cset:
                line.invalidate()

    def dirty_lines(self) -> list[CacheLine]:
        return [l for cset in self.sets for l in cset if l.valid and l.dirty]

    def valid_lines(self) -> list[CacheLine]:
        return [l for cset in self.sets for l in cset if l.valid]
