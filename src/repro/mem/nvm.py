"""Non-volatile main memory (ReRAM) model.

Holds the persistent word array (the ground truth the crash-consistency
checker inspects), and charges the Table-2 ReRAM latencies and per-access
energies. Latency is folded into two effective numbers - ``read_ns`` and
``write_ns`` per word access, and per-line burst costs for cache refills -
derived from the paper's tCK/tBURST/tRCD/tCL/tWR parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

_U32 = 0xFFFFFFFF


@dataclass(frozen=True)
class NVMTimings:
    """Effective NVM access costs in core cycles (1 cycle = 1 ns at 1 GHz).

    Derived from Table 2 (tRCD=18, tCL=15, tBURST=7.5, tWR=150 ns):
    a word read pays activation+CAS (~33 ns rounded), a word write pays the
    write-recovery-dominated cost (~150 ns by default scaled down to keep
    Python-scale runs tractable - the read:write ratio is what matters),
    and line transfers add per-word burst beats.
    """

    read_word: int = 30
    write_word: int = 30
    burst_word: int = 3  # extra per additional word in a line transfer
    read_energy_nj: float = 1.2
    write_energy_nj: float = 4.0
    #: Per-word energy of a burst (line) transfer relative to a random
    #: word access - the activation cost amortizes across the burst.
    burst_energy_factor: float = 0.35

    def __post_init__(self) -> None:
        if min(self.read_word, self.write_word, self.burst_word) < 0:
            raise ConfigError("NVM timings must be >= 0")
        if min(self.read_energy_nj, self.write_energy_nj) < 0:
            raise ConfigError("NVM energies must be >= 0")

    def line_read(self, words: int) -> int:
        """Cycles to read a ``words``-word line (one activation + burst)."""
        return self.read_word + self.burst_word * (words - 1)

    def line_write(self, words: int) -> int:
        """Cycles to write a ``words``-word line."""
        return self.write_word + self.burst_word * (words - 1)


class NVMainMemory:
    """Word-addressable persistent memory with access accounting.

    All cache designs share one instance per simulation; its ``words`` list
    is the state that must match the failure-free oracle at the end of a
    crashy run.
    """

    def __init__(self, words: list[int], timings: NVMTimings | None = None):
        self.words = words
        self.timings = timings or NVMTimings()
        self.reads = 0  # word-read accesses
        self.writes = 0  # word-write accesses (write traffic)
        self.energy_read_nj = 0.0
        self.energy_write_nj = 0.0

    # -- word granularity ------------------------------------------------
    def read_word(self, addr: int) -> tuple[int, int]:
        """Read the u32 at byte address ``addr``; returns (value, cycles)."""
        self.reads += 1
        self.energy_read_nj += self.timings.read_energy_nj
        return (self.words[addr >> 2], self.timings.read_word)

    def write_word(self, addr: int, value: int) -> int:
        """Write a u32; returns cycles."""
        self.words[addr >> 2] = value & _U32
        self.writes += 1
        self.energy_write_nj += self.timings.write_energy_nj
        return self.timings.write_word

    def write_word_masked(self, addr: int, bits: int, mask: int) -> int:
        widx = addr >> 2
        self.words[widx] = (self.words[widx] & ~mask) | (bits & mask)
        self.writes += 1
        self.energy_write_nj += self.timings.write_energy_nj
        return self.timings.write_word

    # -- line granularity (cache refills / write-backs) -------------------
    def read_line(self, addr: int, nwords: int) -> tuple[list[int], int]:
        """Read an aligned line; returns (words, cycles)."""
        widx = addr >> 2
        self.reads += nwords
        self.energy_read_nj += (self.timings.read_energy_nj * nwords
                                * self.timings.burst_energy_factor)
        return (self.words[widx:widx + nwords], self.timings.line_read(nwords))

    def write_line(self, addr: int, data: list[int]) -> int:
        """Write an aligned line; returns cycles."""
        widx = addr >> 2
        self.words[widx:widx + len(data)] = data
        self.writes += len(data)
        self.energy_write_nj += (self.timings.write_energy_nj * len(data)
                                 * self.timings.burst_energy_factor)
        return self.timings.line_write(len(data))

    # ---------------------------------------------------------------------
    @property
    def total_energy_nj(self) -> float:
        return self.energy_read_nj + self.energy_write_nj

    def reset_stats(self) -> None:
        self.reads = 0
        self.writes = 0
        self.energy_read_nj = 0.0
        self.energy_write_nj = 0.0
