"""Memory-system protocol, statistics, and the cache-less NVP design.

Every data-memory design (the five cache schemes plus the plain NVP) exposes
the same duck-typed interface consumed by :class:`~repro.cpu.core.InOrderCore`
and :class:`~repro.sim.system.System`:

``load(addr, now) -> (value, cycles)``
    Word-aligned read; ``now`` is the core's absolute cycle counter.
``store(addr, value, now) -> cycles`` / ``store_masked(addr, bits, mask, now)``
    Word / sub-word writes.
``reserve_lines() -> int``
    How many cache-line NVM writes the design must reserve JIT-checkpoint
    energy for (0 when the design needs no cache backup).
``flush_for_checkpoint(now) -> FlushReport``
    Persist whatever must survive an imminent power failure.
``on_power_loss()``
    Drop volatile state (called after the checkpoint completes).
``on_boot(first) -> cycles``
    Re-establish cache state at (re)boot; returns restore cycles.
``finalize(now) -> cycles``
    Drain/flush at program completion so NVM holds the final image.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mem.nvm import NVMainMemory


@dataclass
class FlushReport:
    """What a checkpoint flush did (paid for from the reserved energy).

    ``extra_energy_nj`` covers flush energy that does not show up in the
    main NVM's accumulators (e.g. NVSRAM's SRAM-to-shadow line copies).
    """

    lines_flushed: int = 0
    words_flushed: int = 0
    cycles: int = 0
    extra_energy_nj: float = 0.0


@dataclass
class MemStats:
    """Counters shared by all designs; energy in nanojoules."""

    loads: int = 0
    stores: int = 0
    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0
    dirty_evictions: int = 0
    store_stall_cycles: int = 0
    async_writebacks: int = 0
    cache_read_energy_nj: float = 0.0
    cache_write_energy_nj: float = 0.0
    extra: dict = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        acc = self.loads + self.stores
        hits = self.read_hits + self.write_hits
        return hits / acc if acc else 0.0

    @property
    def cache_energy_nj(self) -> float:
        return self.cache_read_energy_nj + self.cache_write_energy_nj


class NoCacheNVP:
    """Figure 1(a): plain NVP - every access goes straight to NVM.

    Trivially crash consistent (NVM always current); used as the
    cache-less reference point and in examples.
    """

    name = "NoCache"
    volatile_cache = False

    def __init__(self, nvm: NVMainMemory):
        self.nvm = nvm
        self.stats = MemStats()

    def load(self, addr: int, now: int) -> tuple[int, int]:
        self.stats.loads += 1
        return self.nvm.read_word(addr)

    def store(self, addr: int, value: int, now: int) -> int:
        self.stats.stores += 1
        return self.nvm.write_word(addr, value)

    def store_masked(self, addr: int, bits: int, mask: int, now: int) -> int:
        self.stats.stores += 1
        return self.nvm.write_word_masked(addr, bits, mask)

    def reserve_lines(self) -> int:
        return 0

    def checkpoint_line_energy_nj(self) -> float:
        return 0.0

    def reserve_extra_energy_nj(self) -> float:
        return 0.0

    def flush_for_checkpoint(self, now: int) -> FlushReport:
        return FlushReport()

    def on_power_loss(self) -> None:
        pass

    def on_boot(self, first: bool) -> int:
        return 0

    def finalize(self, now: int) -> int:
        return 0

    def leakage_w(self) -> float:
        return 0.0
