"""Attaching the fast hit-path tier to a memory system.

The tier is the same *instance-attribute shadowing* the trace recorder,
invariant checker, and JIT use - zero overhead when off, and a strict
pecking order when observability is in play:

* :func:`attach_memfast` **refuses** (returns ``None``) when the trace
  recorder has wrapped ``core.run_chunk`` or anything has shadowed the
  design's ``load``/``store``/``store_masked`` (recorder or invariant
  checker): those wrappers must see every call, so they always win.
* :func:`detach_memfast` restores the pristine design methods - and
  detaches a live JIT with it, because compiled code binds the fast
  handlers directly and would otherwise keep calling them.
* :meth:`~repro.obs.recorder.attach_trace` detaches the fast path
  before instrumenting, mirroring how it already detaches the JIT.
* The batch tier (:mod:`repro.batch`) slots in *above* jit+memfast and
  *below* the recorder/checker: its engine never batches instrumented
  runs, its :class:`~repro.batch.replay.ReplayCore` carries a
  ``_replay`` marker that makes ``attach_jit`` stand down, and memfast
  is the one tier it composes with - each replay instance attaches the
  fast handlers to its own design (``attach_memfast`` works unchanged
  because a fresh ``ReplayCore`` has nothing shadowing ``run_chunk``),
  and :func:`finish_memfast` wraps ``ReplayCore.run_chunk`` like any
  other.

Deferred-stats discipline (the heart of bit-exactness): the handlers
batch the hit counters, hit energies, and the LRU stamp in
``MemfastState.acc`` and *every* code path that could read or write
those fields outside the handlers is bracketed with ``flush()`` /
``resync()``:

* every slow-path bail (miss, stall, waterline, ACK due) - the class
  method runs against fully synced stats, then the accumulator re-reads
  them;
* ``flush_for_checkpoint`` / ``on_boot`` / ``finalize`` - the
  checkpoint protocol both reads and adds energies;
* chunk end - :func:`finish_memfast` wraps ``core.run_chunk`` (around
  the interpreter *or* the JIT dispatcher) so the per-chunk capacitor
  accounting in ``System.run`` always reads exact values.

``flush`` adds the integer hit deltas to both stat fields they cover
(exact, order-free) and writes the float slots back as absolute
values; since each float slot accumulates from the synced value in
slow-path order, the flushed result is bit-identical to never having
deferred at all.
"""

from __future__ import annotations

import os

from repro.caches.base import CachedMemorySystem
from repro.caches.nvcache import NVCacheWB
from repro.caches.nvsram import NVSRAMIdeal
from repro.core.dirty_queue import DQEntry
from repro.core.wl_cache import WLCache
from repro.mem.setassoc import SetAssocArray
from repro.memfast.handlers import (build_load, build_wb_stores,
                                    build_wl_stores)

#: ``REPRO_MEMFAST=1`` enables the fast path for every run in this
#: process (sweep pool workers re-export it, like REPRO_JIT).
ENV_VAR = "REPRO_MEMFAST"

#: Instance attrs that mean instrumentation owns the memory methods.
_GUARDED_METHODS = ("load", "store", "store_masked")

#: Protocol methods bracketed because they read or mutate deferred
#: fields (NVSRAM's checkpoint/restore bill cache-write energy).
_BRACKETED_PROTOCOL = ("flush_for_checkpoint", "on_boot", "finalize")

_MISSING = object()


def memfast_enabled() -> bool:
    """True when ``REPRO_MEMFAST`` requests the fast path globally."""
    return os.environ.get(ENV_VAR, "").strip() not in ("", "0")


class MemfastState:
    """Per-design fast-path bookkeeping, parked on ``_memfast_state``."""

    __slots__ = ("design", "acc", "installed", "fast_store", "store_shape",
                 "slow_load", "slow_sm")

    def __init__(self, design):
        self.design = design
        # [fast_load_hits_delta, fast_store_hits_delta,
        #  cache_read_energy_nj, cache_write_energy_nj, array._stamp];
        # hit counters are deltas (a fast hit bumps loads and read_hits
        # by the same 1 - flush adds it to both), energies and the LRU
        # stamp are absolute (floats must accumulate in slow-path order)
        self.acc: list = [0, 0, 0.0, 0.0, 0]
        self.installed: list[tuple[str, object]] = []
        self.fast_store = False
        #: "wl" / "wb" when the store hit path is fast, else None; keys
        #: the JIT's compiled-module variant (which store hit it inlines)
        self.store_shape: str | None = None
        #: the bracketed slow paths the fast handlers bail to - kept
        #: addressable so the lockstep engine (which inlines the *full*
        #: probe, set scan included) can call them without paying the
        #: handler's redundant re-probe
        self.slow_load = None
        self.slow_sm = None
        self.resync()

    # -- accumulator sync ----------------------------------------------
    def flush(self) -> None:
        """Publish the accumulator into stats/array. Idempotent: the hit
        deltas are zeroed once added, the other slots are absolute."""
        stats = self.design.stats
        acc = self.acc
        if acc[0]:
            stats.loads += acc[0]
            stats.read_hits += acc[0]
            acc[0] = 0
        if acc[1]:
            stats.stores += acc[1]
            stats.write_hits += acc[1]
            acc[1] = 0
        stats.cache_read_energy_nj = acc[2]
        stats.cache_write_energy_nj = acc[3]
        self.design.array._stamp = acc[4]

    def resync(self) -> None:
        """Re-read stats/array into the accumulator (after a slow path)."""
        stats = self.design.stats
        acc = self.acc
        acc[0] = 0
        acc[1] = 0
        acc[2] = stats.cache_read_energy_nj
        acc[3] = stats.cache_write_energy_nj
        acc[4] = self.design.array._stamp

    # -- jit integration -----------------------------------------------
    def jit_bindings(self) -> tuple:
        """Runtime bindings for the JIT's inline hit checks (the ``_mf``
        tuple unpacked by memfast-mode compiled modules). ``pending`` is
        the WL-Cache ACK deque (None for other designs - the "wb"/"base"
        shaped modules never touch it)."""
        m = self.design
        array = m.array
        return (array.mru, self.acc, array.line_shift, array.set_mask,
                m._word_mask, m._e_read, m._hit_read_cycles,
                1 if array._lru else 0, m._e_write, m._hit_write_cycles,
                getattr(m, "pending", None))


def _bracket(fn, flush, resync):
    """Wrap a slow-path callable in flush/resync. Nesting is safe: both
    syncs are idempotent, so an inner bracket inside an outer one only
    repeats a no-op write."""
    def call(*args, _fn=fn, _flush=flush, _resync=resync, **kwargs):
        _flush()
        try:
            return _fn(*args, **kwargs)
        finally:
            _resync()
    call._memfast = True
    return call


def _install(m, state: MemfastState, name: str, fn) -> None:
    state.installed.append((name, vars(m).get(name, _MISSING)))
    setattr(m, name, fn)


def attach_design(m) -> MemfastState | None:
    """Install fast handlers on a memory system (no core involved).

    Returns the :class:`MemfastState`, or ``None`` when the design is
    ineligible (no shared base-class load, custom array) or when
    instrumentation has already shadowed the guarded methods.
    Attaching twice is a no-op returning the existing state.
    """
    state = getattr(m, "_memfast_state", None)
    if state is not None:
        return state
    md = vars(m)
    if any(name in md for name in _GUARDED_METHODS):
        return None  # recorder / invariant checker present: they win
    cls = type(m)
    if cls.load is not CachedMemorySystem.load:
        return None  # design overrides the load path (WT+Buffer, hybrid)
    if not isinstance(getattr(m, "array", None), SetAssocArray):
        return None

    state = MemfastState(m)
    flush, resync = state.flush, state.resync
    slow_load = _bracket(cls.load.__get__(m, cls), flush, resync)
    slow_sm = _bracket(cls.store_masked.__get__(m, cls), flush, resync)
    state.slow_load = slow_load
    state.slow_sm = slow_sm

    _install(m, state, "load", build_load(m, state.acc, slow_load))
    if (cls.store_masked is WLCache.store_masked
            and cls.store is WLCache.store):
        stores = build_wl_stores(m, state.acc, slow_sm, DQEntry)
        state.fast_store = True
        state.store_shape = "wl"
    elif (cls.store_masked in (NVSRAMIdeal.store_masked,
                               NVCacheWB.store_masked)
          and cls.store in (NVSRAMIdeal.store, NVCacheWB.store)):
        stores = build_wb_stores(m, state.acc, slow_sm)
        state.fast_store = True
        state.store_shape = "wb"
    else:
        # write-through / persist-queue stores (VCache-WT, ReplayCache):
        # loads go fast, stores stay on the bracketed slow path so their
        # direct stats mutations interleave correctly with the deferral
        stores = {"store_masked": slow_sm,
                  "store": _bracket(cls.store.__get__(m, cls),
                                    flush, resync)}
    for name in ("store", "store_masked"):
        _install(m, state, name, stores[name])
    for name in _BRACKETED_PROTOCOL:
        _install(m, state, name, _bracket(getattr(m, name), flush, resync))
    m._memfast_state = state
    return state


def detach_design(m) -> bool:
    """Flush and remove the fast handlers, restoring pristine methods."""
    state = getattr(m, "_memfast_state", None)
    if state is None:
        return False
    state.flush()
    for name, old in reversed(state.installed):
        if old is _MISSING:
            delattr(m, name)
        else:
            setattr(m, name, old)
    del m._memfast_state
    return True


def attach_memfast(system) -> MemfastState | None:
    """Attach the fast tier to a system's design (observability wins).

    Call :func:`finish_memfast` after any :func:`~repro.jit.attach_jit`
    so the chunk-end flush wraps whichever ``run_chunk`` ended up
    installed.
    """
    if "run_chunk" in vars(system.core):
        return None  # trace recorder (or a pre-attached JIT) owns it
    return attach_design(system.design)


def finish_memfast(system) -> None:
    """Wrap ``core.run_chunk`` with the chunk-end accumulator flush.

    ``System.run`` reads the cache energies after every chunk for the
    capacitor accounting, so this wrapper is what makes the deferral
    invisible to it. No-op when the fast path is not attached.
    """
    state = getattr(system.design, "_memfast_state", None)
    if state is None:
        return
    core = system.core
    rc = vars(core).get("run_chunk")
    if rc is not None and getattr(rc, "_memfast", False):
        return  # already wrapped
    inner = core.run_chunk  # interpreter method or the JIT dispatcher

    def run_chunk(max_instrs, _inner=inner, _flush=state.flush):
        try:
            return _inner(max_instrs)
        finally:
            _flush()  # exact stats at every observable chunk boundary

    run_chunk._memfast = True
    core.run_chunk = run_chunk


def detach_memfast(system) -> bool:
    """Detach the fast tier from a system: the run_chunk flush wrapper,
    a live JIT (its compiled tables bound the fast handlers), and the
    design handlers. Returns True if anything was detached."""
    core = system.core
    state = getattr(system.design, "_memfast_state", None)
    if state is None:
        return False
    rc = vars(core).get("run_chunk")
    if rc is not None and getattr(rc, "_memfast", False):
        del core.run_chunk
    if getattr(core, "_jit_state", None) is not None:
        if "run_chunk" in vars(core):
            del core.run_chunk
        del core._jit_state
    return detach_design(system.design)
