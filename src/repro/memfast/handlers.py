"""Hit-path handler codegen: per-design specialized fast paths.

Each eligible design gets `load`/`store`/`store_masked` replacements
generated as Python source with the geometry and energy constants baked
in as literals (set mask, line shift, word mask, per-access energies,
hit latencies, the LRU flag) - the same generate-and-``exec`` technique
as :mod:`repro.jit.blocks`. The handlers cover exactly the cases the
profile says dominate:

* **load hit** (every design sharing
  :meth:`~repro.caches.base.CachedMemorySystem.load`),
* **store hit to an already-dirty line** (write-back designs: the
  NVSRAM family, NVCache-WB, and WL-Cache's §5.1 same-dirty-line case),
* **WL-Cache clean→dirty transition below the waterline** (tag hit, no
  ACKs due, DirtyQueue occupancy strictly under the waterline - provably
  no stall, no write-back issue, so the DirtyQueue insert is inlined).

Everything else - misses, stalls, waterline crossings, ACK retirement -
bails to the *bracketed* slow path (the unmodified class method wrapped
in an accumulator flush/resync, see :mod:`repro.memfast.attach`), taken
**before** any state is mutated, so the slow method replays the access
from scratch and the observable effects stay bit-identical.

Deferred statistics live in a 5-slot accumulator list shared with the
attach layer::

    acc = [fast_load_hits_delta, fast_store_hits_delta,
           cache_read_energy_nj, cache_write_energy_nj, array._stamp]

A fast load hit bumps ``loads`` and ``read_hits`` by the same 1 (ditto
stores/write_hits), so one *delta* counter per kind covers both stat
fields - integer addition is exact and order-free, and the flush adds
the delta to both. The float slots stay *absolute*: the handlers append
energy terms to a value that starts from the synced stat and is flushed
back verbatim, so the sequence of float additions per field is
identical to the slow path's ``stats.x += e`` sequence - same order,
same values, same result bits.

Hits probe the per-set MRU line first (``SetAssocArray.mru``); the tag
check alone decides validity (invalid lines hold ``tag == -1``), so a
stale MRU pointer simply falls through to the normal set probe.

Generated code objects are cached by source string, so a sweep
generates each (family, geometry, cost) combination once per process.
Rendered *sources* are additionally memoized under their literal
parameter tuple and persisted through :mod:`repro.store` when enabled:
a warm process loads handler text instead of re-rendering ("loads" vs
"renders" in :func:`codegen_cache_stats`), and every loaded source
lands in the A009 audit ledger with a pure re-render closure (the
closures capture literals, never a live memory system).
"""

from __future__ import annotations

from repro.store.sources import load_source as _store_load
from repro.store.sources import memfast_fingerprint
from repro.store.sources import save_source as _store_save

_FULL = 0xFFFFFFFF

#: source -> compiled code object (families x geometries stay small)
_CODE_CACHE: dict[str, object] = {}

#: literal-parameter key -> rendered source (in-memory memo in front of
#: the persistent store)
_SRC_CACHE: dict[tuple, str] = {}

_GEN_STATS = {"renders": 0, "loads": 0}

# LRU stamping, at the two indents the templates need. The chained
# assignment writes the accumulator slot first, then the local.
_STAMP8 = ("        _acc[4] = _ts = _acc[4] + 1\n"
           "        line.use_stamp = _ts\n")
_STAMP12 = ("            _acc[4] = _ts = _acc[4] + 1\n"
            "            line.use_stamp = _ts\n")


def _make(source: str, *args):
    code = _CODE_CACHE.get(source)
    if code is None:
        code = compile(source, "<memfast>", "exec")
        _CODE_CACHE[source] = code
    ns: dict = {}
    exec(code, ns)
    fn = ns["_make"](*args)
    fn._memfast = True  # lets the JIT's shadow check wave it through
    fn._memfast_source = source  # audited against a fresh re-render
    return fn


def codegen_cache_stats() -> dict:
    """Counters for tests/benchmarks."""
    return {"sources": len(_CODE_CACHE), **_GEN_STATS}


def clear_handler_sources() -> None:
    """Drop rendered handler sources/code and reset counters (tests)."""
    _SRC_CACHE.clear()
    _CODE_CACHE.clear()
    for k in _GEN_STATS:
        _GEN_STATS[k] = 0


def _keyed_source(key: tuple, unit: str, render) -> str:
    """The handler source for a literal-parameter ``key``: in-memory
    memo, then the persistent store, then a fresh render (persisted)."""
    src = _SRC_CACHE.get(key)
    if src is None:
        store_key = ("memfast", memfast_fingerprint()) + key
        src = _store_load(store_key, f"memfast:{key[0]}", render)
        if src is None:
            src = render()
            _GEN_STATS["renders"] += 1
            _store_save(store_key, src)
        else:
            _GEN_STATS["loads"] += 1
        _SRC_CACHE[key] = src
    return src


_LOAD_TMPL = """\
def _make(_sets, _mru, _acc, _slow):
    def load(addr, now,
             _sets=_sets, _mru=_mru, _acc=_acc, _slow=_slow):
        lineno = addr >> {shift}
        si = lineno & {smask}
        line = _mru[si]
        if line.tag != lineno:
            for line in _sets[si]:
                if line.tag == lineno:
                    _mru[si] = line
                    break
            else:
                return _slow(addr, now)
{stamp}        _acc[0] += 1
        _acc[2] += {e_read!r}
        return (line.data[(addr >> 2) & {wmask}], {hit_cycles})
    return load
"""

_WB_STORE_TMPL = """\
def _make(_sets, _mru, _acc, _slow):
    def {name}({sig},
               _sets=_sets, _mru=_mru, _acc=_acc, _slow=_slow):
        lineno = addr >> {shift}
        si = lineno & {smask}
        line = _mru[si]
        if line.tag != lineno:
            for line in _sets[si]:
                if line.tag == lineno:
                    _mru[si] = line
                    break
            else:
                return {slow_call}
{stamp}        _acc[1] += 1
        _acc[3] += {e_write!r}
        widx = (addr >> 2) & {wmask}
        data = line.data
        data[widx] = {merge}
        line.dirty = True
        return {hit_cycles}
    return {name}
"""

# WL-Cache §5.1. Fast only when (in order of the guards): no ACK is due
# (slow would retire it), the tag hits, and - for a clean line - the
# DirtyQueue sits strictly below the waterline, which via
# waterline <= maxline <= capacity proves _ensure_slot would not loop,
# the insert cannot overflow, and no write-back would be issued. The
# inlined insert mirrors DirtyQueue.insert statement for statement.
_WL_STORE_TMPL = """\
def _make(_sets, _mru, _acc, _cache, _dq, _entries, _pending, _DQEntry,
          _slow):
    def {name}({sig},
               _sets=_sets, _mru=_mru, _acc=_acc, _cache=_cache, _dq=_dq,
               _entries=_entries, _pending=_pending, _DQEntry=_DQEntry,
               _slow=_slow):
        if _pending and _pending[0].ack <= now:
            return {slow_call}
        lineno = addr >> {shift}
        si = lineno & {smask}
        line = _mru[si]
        if line.tag != lineno:
            for line in _sets[si]:
                if line.tag == lineno:
                    _mru[si] = line
                    break
            else:
                return {slow_call}
        if line.dirty:
{stamp12}            _acc[1] += 1
            _acc[3] += {e_write!r}
            widx = (addr >> 2) & {wmask}
            data = line.data
            data[widx] = {merge}
            return {hit_cycles}
        if len(_entries) >= _cache.waterline:
            return {slow_call}
{stamp}        _acc[1] += 1
        _acc[3] += {e_write!r}
        widx = (addr >> 2) & {wmask}
        data = line.data
        data[widx] = {merge}
        line.dirty = True
        _dq._seq += 1
        entry = _DQEntry(lineno, _dq._seq)
        for q in _entries:
            if q.lineno == lineno:
                _dq.duplicate_inserts += 1
                break
        _entries.append(entry)
        _dq.inserts += 1
        _acc[3] += {dq_energy!r}
        occ = len(_entries)
        if occ > _cache.dirty_highwater:
            _cache.dirty_highwater = occ
        return {hit_cycles}
    return {name}
"""

#: (name, signature, masked?) for the two store entry points. The
#: full-word variant bails with the same FULL mask the class ``store``
#: delegator would pass, so the slow replay is literally the same call.
_STORE_SHAPES = (
    ("store_masked", "addr, bits, mask, now",
     "_slow(addr, bits, mask, now)",
     "(data[widx] & ~mask) | (bits & mask)"),
    ("store", "addr, value, now",
     f"_slow(addr, value, {_FULL}, now)",
     f"value & {_FULL}"),
)


# Pure renderers: every baked value arrives as a literal argument, so a
# (kind, *literals) tuple is both the memo key and everything an A009
# re-render closure needs - no live memory system is ever captured.

def _render_load(shift, smask, lru, e_read, wmask, hit_cycles) -> str:
    return _LOAD_TMPL.format(
        shift=shift, smask=smask, stamp=_STAMP8 if lru else "",
        e_read=e_read, wmask=wmask, hit_cycles=hit_cycles)


def _render_wb(name, shift, smask, lru, e_write, wmask,
               hit_cycles) -> str:
    shape = {s[0]: s for s in _STORE_SHAPES}[name]
    _name, sig, slow_call, merge = shape
    return _WB_STORE_TMPL.format(
        name=name, sig=sig, slow_call=slow_call, merge=merge,
        shift=shift, smask=smask, stamp=_STAMP8 if lru else "",
        e_write=e_write, wmask=wmask, hit_cycles=hit_cycles)


def _render_wl(name, shift, smask, lru, e_write, wmask, hit_cycles,
               dq_energy) -> str:
    shape = {s[0]: s for s in _STORE_SHAPES}[name]
    _name, sig, slow_call, merge = shape
    return _WL_STORE_TMPL.format(
        name=name, sig=sig, slow_call=slow_call, merge=merge,
        shift=shift, smask=smask, stamp=_STAMP8 if lru else "",
        stamp12=_STAMP12 if lru else "",
        e_write=e_write, wmask=wmask, hit_cycles=hit_cycles,
        dq_energy=dq_energy)


def _load_key(m) -> tuple:
    array = m.array
    return ("load", array.line_shift, array.set_mask, bool(array._lru),
            m._e_read, m._word_mask, m._hit_read_cycles)


def _wb_key(m, name: str) -> tuple:
    array = m.array
    return (f"wb-{name}", name, array.line_shift, array.set_mask,
            bool(array._lru), m._e_write, m._word_mask,
            m._hit_write_cycles)


def _wl_key(m, name: str) -> tuple:
    array = m.array
    return (f"wl-{name}", name, array.line_shift, array.set_mask,
            bool(array._lru), m._e_write, m._word_mask,
            m._hit_write_cycles, m.dq_access_energy_nj)


def load_source(m) -> str:
    """Render the load-hit handler source for a live memory system (the
    baked literals come straight off ``m``, so a fresh render is the
    auditor's ground truth for what the handler *should* contain)."""
    return _render_load(*_load_key(m)[1:])


def wb_store_sources(m) -> dict[str, str]:
    """Rendered plain write-back store handler sources, keyed by name."""
    return {name: _render_wb(*_wb_key(m, name)[1:])
            for name, _sig, _slow, _merge in _STORE_SHAPES}


def wl_store_sources(m) -> dict[str, str]:
    """Rendered WL-Cache store handler sources, keyed by name."""
    return {name: _render_wl(*_wl_key(m, name)[1:])
            for name, _sig, _slow, _merge in _STORE_SHAPES}


def build_load(m, acc, slow_load):
    """The generic load-hit handler (shared base-class load semantics)."""
    array = m.array
    key = _load_key(m)
    src = _keyed_source(key, "memfast:load",
                        lambda: _render_load(*key[1:]))
    return _make(src, array.sets, array.mru, acc, slow_load)


def build_wb_stores(m, acc, slow_sm):
    """store/store_masked for plain write-back hits (NVSRAM*, NVCache)."""
    array = m.array
    out = {}
    for name, _sig, _slow, _merge in _STORE_SHAPES:
        key = _wb_key(m, name)
        src = _keyed_source(key, f"memfast:wb-{name}",
                            lambda key=key: _render_wb(*key[1:]))
        out[name] = _make(src, array.sets, array.mru, acc, slow_sm)
    return out


def build_wl_stores(m, acc, slow_sm, dq_entry_cls):
    """store/store_masked for WL-Cache's two fast cases (§5.1)."""
    array = m.array
    out = {}
    for name, _sig, _slow, _merge in _STORE_SHAPES:
        key = _wl_key(m, name)
        src = _keyed_source(key, f"memfast:wl-{name}",
                            lambda key=key: _render_wl(*key[1:]))
        out[name] = _make(src, array.sets, array.mru, acc, m, m.dq,
                          m.dq.entries, m.pending, dq_entry_cls, slow_sm)
    return out
