"""Memory-hierarchy fast path: specialized hit-path tier for the memsys.

Generates per-design, geometry-specialized handlers for the three hot
cases - load hits, store hits to already-dirty lines, and WL-Cache's
clean->dirty transition below the waterline - with set mask, line shift,
LRU flag, and energy constants baked in, an MRU-way probe per set, and
deferred statistics flushed at every observable point. Bit-identical to
the slow path by construction (and by the differential test suite).
Enable with ``SimConfig(memfast=True)``, ``--memfast`` on the CLI, or
``REPRO_MEMFAST=1`` in the environment; compose with ``REPRO_JIT=1`` to
let compiled blocks bind the fast handlers and inline the load-hit tag
check. See ``docs/memsys-fastpath.md``.
"""

from repro.memfast.attach import (ENV_VAR, MemfastState, attach_design,
                                  attach_memfast, detach_design,
                                  detach_memfast, finish_memfast,
                                  memfast_enabled)
from repro.memfast.handlers import codegen_cache_stats

__all__ = [
    "ENV_VAR",
    "MemfastState",
    "attach_design",
    "attach_memfast",
    "codegen_cache_stats",
    "detach_design",
    "detach_memfast",
    "finish_memfast",
    "memfast_enabled",
]
