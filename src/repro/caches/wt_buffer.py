"""The §3.3 alternative: a write-through cache with a write-back buffer.

The paper discusses (and rejects) this design as a strawman for WL-Cache:
a WTCache whose stores go into a coalescing write buffer that drains to
NVM asynchronously. The paper's three criticisms are all modeled here:

1. **CAM search cost** - every load must search the buffer (store-to-load
   forwarding), charged per access; it also lengthens the load *miss* path.
2. **Energy reserve** - the whole buffer must be drainable at power
   failure, so the reserve scales with the buffer depth.
3. **Critical path** - the CAM probe adds latency to every memory access.

It is crash-consistent (the buffer is drained by JIT checkpointing) and is
included in the ablation bench to reproduce the paper's argument that
WL-Cache's decoupled metadata (DirtyQueue) is the better structure.
"""

from __future__ import annotations

from repro.caches.vcache_wt import VCacheWT
from repro.mem.memsys import FlushReport

_FULL = 0xFFFFFFFF


class _BufferEntry:
    __slots__ = ("addr", "value", "mask", "ack")

    def __init__(self, addr: int, value: int, mask: int, ack: int):
        self.addr = addr
        self.value = value
        self.mask = mask
        self.ack = ack


class WTBufferCache(VCacheWT):
    """Write-through cache + CAM write buffer (the paper's §3.3 strawman)."""

    name = "WT+Buffer"

    def __init__(self, *args, buffer_depth: int = 8,
                 cam_probe_cycles: int = 1,
                 cam_probe_energy_nj: float = 0.03, **kwargs):
        super().__init__(*args, **kwargs)
        self.buffer_depth = buffer_depth
        self.cam_probe_cycles = cam_probe_cycles
        self.cam_probe_energy_nj = cam_probe_energy_nj
        self._buffer: list[_BufferEntry] = []
        self._channel_free = 0
        self.forwards = 0

    # ------------------------------------------------------------------
    def _drain_ready(self, now: int) -> None:
        buf = self._buffer
        while buf and buf[0].ack <= now:
            e = buf.pop(0)
            self.nvm.write_word_masked(e.addr, e.value, e.mask)

    def _drain_all(self, now: int) -> int:
        """Drain everything (checkpoint/finalize); returns wait cycles."""
        wait = max((e.ack for e in self._buffer), default=now) - now
        for e in self._buffer:
            self.nvm.write_word_masked(e.addr, e.value, e.mask)
        self._buffer.clear()
        return max(0, wait)

    # ------------------------------------------------------------------
    def load(self, addr: int, now: int) -> tuple[int, int]:
        self._drain_ready(now)
        # CAM probe on the critical path of EVERY load (§3.3 issue 3)
        self.stats.cache_read_energy_nj += self.cam_probe_energy_nj
        value, cycles = super().load(addr, now)
        cycles += self.cam_probe_cycles
        # a line refilled from NVM may be stale wherever the buffer holds
        # newer words: patch the cached copy from matching entries
        line = self.array.peek(addr)
        if line is not None and self._buffer:
            base = self.array.line_addr(line)
            top = base + self.geometry.line_bytes
            for e in self._buffer:
                if base <= e.addr < top:
                    widx = (e.addr >> 2) & self._word_mask
                    line.data[widx] = self._merged(line.data[widx],
                                                   e.value, e.mask)
            value = line.data[(addr >> 2) & self._word_mask]
            return (value, cycles)
        # uncached load: forward from the newest matching entry
        for e in reversed(self._buffer):
            if e.addr == addr:
                value = (value & ~e.mask) | (e.value & e.mask)
                self.forwards += 1
                break
        return (value, cycles)

    def store(self, addr: int, value: int, now: int) -> int:
        return self.store_masked(addr, value, _FULL, now)

    def store_masked(self, addr: int, bits: int, mask: int, now: int) -> int:
        self._drain_ready(now)
        self.stats.stores += 1
        self.stats.cache_write_energy_nj += (self._e_write
                                             + self.cam_probe_energy_nj)
        cycles = self.cam_probe_cycles
        line = self.array.find(addr)
        if line is not None:
            self.stats.write_hits += 1
            widx = (addr >> 2) & self._word_mask
            line.data[widx] = self._merged(line.data[widx], bits, mask)
            cycles += self.params.hit_write_cycles
        else:
            self.stats.write_misses += 1
        # coalesce with an existing entry for the same word
        for e in reversed(self._buffer):
            if e.addr == addr:
                e.value = (e.value & ~mask) | (bits & mask)
                e.mask |= mask
                return cycles
        if len(self._buffer) >= self.buffer_depth:
            # buffer full: stall until the oldest entry drains
            stall = max(0, self._buffer[0].ack - (now + cycles))
            cycles += stall
            self.stats.store_stall_cycles += stall
            e = self._buffer.pop(0)
            self.nvm.write_word_masked(e.addr, e.value, e.mask)
        ack = (max(now + cycles, self._channel_free)
               + self.nvm.timings.write_word)
        self._channel_free = ack
        self._buffer.append(_BufferEntry(addr, bits, mask, ack))
        self.stats.async_writebacks += 1
        return cycles

    # persistence ---------------------------------------------------------
    def reserve_extra_energy_nj(self) -> float:
        # must be able to drain a full buffer at power failure (§3.3 issue 2)
        return self.buffer_depth * self.nvm.timings.write_energy_nj

    def flush_for_checkpoint(self, now: int) -> FlushReport:
        pending = len(self._buffer)
        cycles = self._drain_all(now)
        return FlushReport(words_flushed=pending, cycles=cycles)

    def on_power_loss(self) -> None:
        super().on_power_loss()
        self._buffer.clear()
        self._channel_free = 0

    def finalize(self, now: int) -> int:
        return self._drain_all(now) + super().finalize(now)
