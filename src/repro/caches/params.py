"""Per-design cache timing/energy parameters.

Two stock parameter sets mirror Table 2: SRAM arrays (0.3 ns hits -> 1 core
cycle) and NVM (ReRAM) arrays (1.6 ns hits -> 2+ cycles, higher energy,
higher leakage). Exact constants live in :mod:`repro.sim.config`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class CacheParams:
    """Timing and energy of one cache array.

    Attributes:
        hit_read_cycles: Core cycles for a read hit.
        hit_write_cycles: Core cycles for a write hit.
        read_energy_nj: Dynamic energy per read access.
        write_energy_nj: Dynamic energy per write access.
        lru_extra_energy_nj: Extra bookkeeping energy per access when the
            array uses LRU replacement (the paper's §6.5 effect).
        leakage_w: Static leakage power of the array while powered.
        ckpt_line_cycles: Cycles to checkpoint one line to the design's
            backup medium (NVSRAM's adjacent ReRAM; unused by designs that
            checkpoint to main NVM, which pay NVM line-write time instead).
        ckpt_line_energy_nj: Energy to checkpoint one line to the backup
            medium.
        restore_line_cycles: Cycles to restore one line at reboot.
        restore_line_energy_nj: Energy per restored line at reboot (a read
            from the shadow is cheaper than the checkpoint write).
    """

    hit_read_cycles: int = 1
    hit_write_cycles: int = 1
    read_energy_nj: float = 0.02
    write_energy_nj: float = 0.02
    lru_extra_energy_nj: float = 0.01
    leakage_w: float = 0.0004
    ckpt_line_cycles: int = 10
    ckpt_line_energy_nj: float = 8.0
    restore_line_cycles: int = 10
    restore_line_energy_nj: float = 2.0

    def __post_init__(self) -> None:
        if self.hit_read_cycles < 0 or self.hit_write_cycles < 0:
            raise ConfigError("hit cycles must be >= 0")
        if min(self.read_energy_nj, self.write_energy_nj,
               self.lru_extra_energy_nj, self.leakage_w,
               self.ckpt_line_energy_nj) < 0:
            raise ConfigError("energies must be >= 0")
