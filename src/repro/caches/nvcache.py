"""NVCache-WB: fully non-volatile write-back cache (Figure 1(c)).

The cache array itself is NVM (e.g. nvSRAM/FRAM), so contents survive power
failure - no JIT checkpointing of the cache is needed and reboots resume
with a warm cache. The price is slow, energy-hungry hits on every access
(and slow non-volatile instruction fetch, modeled by the core's
``ifetch_extra``), which is why the paper finds it slowest overall.
"""

from __future__ import annotations

from repro.caches.base import CachedMemorySystem

_FULL = 0xFFFFFFFF


class NVCacheWB(CachedMemorySystem):
    name = "NVCache-WB"
    volatile_cache = False

    def store(self, addr: int, value: int, now: int) -> int:
        return self.store_masked(addr, value, _FULL, now)

    def store_masked(self, addr: int, bits: int, mask: int, now: int) -> int:
        self.stats.stores += 1
        self.stats.cache_write_energy_nj += self._e_write
        line = self.array.find(addr)
        cycles = 0
        if line is None:
            self.stats.write_misses += 1
            line, cycles = self._fill(addr, now)
        else:
            self.stats.write_hits += 1
        widx = (addr >> 2) & self._word_mask
        line.data[widx] = self._merged(line.data[widx], bits, mask)
        line.dirty = True
        return cycles + self.params.hit_write_cycles

    # contents are non-volatile: nothing to checkpoint, nothing lost.
    def on_power_loss(self) -> None:
        pass
