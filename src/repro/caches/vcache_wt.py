"""VCache-WT: volatile SRAM write-through cache (Figure 1(b)).

Every store synchronously updates both the cache (if the line is present)
and NVM, so the cache never holds dirty lines and crash consistency is free.
Stores pay the full NVM word-write latency; loads enjoy SRAM hits. Store
misses do not allocate (conventional write-through/no-write-allocate).
"""

from __future__ import annotations

from repro.caches.base import CachedMemorySystem

_FULL = 0xFFFFFFFF


class VCacheWT(CachedMemorySystem):
    name = "VCache-WT"
    volatile_cache = True

    def store(self, addr: int, value: int, now: int) -> int:
        return self.store_masked(addr, value, _FULL, now)

    def store_masked(self, addr: int, bits: int, mask: int, now: int) -> int:
        self.stats.stores += 1
        line = self.array.find(addr)
        cycles = 0
        if line is not None:
            self.stats.write_hits += 1
            self.stats.cache_write_energy_nj += self._e_write
            widx = (addr >> 2) & self._word_mask
            line.data[widx] = self._merged(line.data[widx], bits, mask)
            cycles += self.params.hit_write_cycles
        else:
            self.stats.write_misses += 1
        # the synchronous NVM write dominates the store's latency
        cycles += self.nvm.write_word_masked(addr, bits, mask)
        return cycles
