"""ReplayCache: volatile cache with compiler-driven region-level persistence.

Model of Zeng et al. (MICRO '21): stores hit the SRAM cache and are *also*
persisted to NVM asynchronously, overlapped with subsequent instructions
(ILP); at region boundaries the core waits for all outstanding persists to
ACK. Because every store is persisted, lines are never dirty and evictions
are silent; crash consistency needs only a small reserve to drain the
persist queue plus register checkpointing.

Simplification vs the paper's compiler: regions are delimited every
``region_stores`` stores rather than by compiler-placed region boundaries,
and at a power failure the in-flight persist queue is drained from the
(small) reserve instead of re-executing the interrupted region. Both choices
preserve the design's timing character (asynchronous persists, region-end
waits) and its Table-1 "small energy buffer" classification.
"""

from __future__ import annotations

from repro.caches.base import CachedMemorySystem
from repro.mem.memsys import FlushReport

_FULL = 0xFFFFFFFF


class ReplayCache(CachedMemorySystem):
    name = "ReplayCache"
    volatile_cache = True

    def __init__(self, *args, region_stores: int = 8, persist_depth: int = 8,
                 **kwargs):
        super().__init__(*args, **kwargs)
        self.region_stores = region_stores
        self.persist_depth = persist_depth
        self._region_count = 0
        self._last_ack = 0  # cycle when the persist channel drains
        self._inflight: list[int] = []  # ack times of outstanding persists

    def store(self, addr: int, value: int, now: int) -> int:
        return self.store_masked(addr, value, _FULL, now)

    def store_masked(self, addr: int, bits: int, mask: int, now: int) -> int:
        self.stats.stores += 1
        self.stats.cache_write_energy_nj += self._e_write
        cycles = 0
        line = self.array.find(addr)
        if line is None:
            self.stats.write_misses += 1
            line, cycles = self._fill(addr, now)
        else:
            self.stats.write_hits += 1
        widx = (addr >> 2) & self._word_mask
        line.data[widx] = self._merged(line.data[widx], bits, mask)
        cycles += self.params.hit_write_cycles
        # asynchronous persist: value applied now (so later misses read the
        # fresh word), latency charged to the persist channel
        write_lat = self.nvm.write_word_masked(addr, bits, mask)
        issue = now + cycles
        inflight = [t for t in self._inflight if t > issue]
        if len(inflight) >= self.persist_depth:
            # queue full: stall until the oldest persist retires
            stall = inflight[0] - issue
            cycles += stall
            self.stats.store_stall_cycles += stall
            issue += stall
            inflight = inflight[1:]
        self._last_ack = max(self._last_ack, issue) + write_lat
        inflight.append(self._last_ack)
        self.stats.async_writebacks += 1
        self._region_count += 1
        if self._region_count >= self.region_stores:
            # region boundary: wait for every outstanding persist
            self._region_count = 0
            wait = self._last_ack - (now + cycles)
            if wait > 0:
                cycles += wait
                self.stats.store_stall_cycles += wait
            inflight = []
        self._inflight = inflight
        return cycles

    # persistence protocol -------------------------------------------------
    def reserve_extra_energy_nj(self) -> float:
        # enough to drain a full persist queue of word writes
        return self.persist_depth * self.nvm.timings.write_energy_nj

    def flush_for_checkpoint(self, now: int) -> FlushReport:
        # values were applied at issue; just account the drain time
        pending = [t for t in self._inflight if t > now]
        cycles = (max(pending) - now) if pending else 0
        self._inflight = []
        self._region_count = 0
        return FlushReport(lines_flushed=0, words_flushed=len(pending),
                           cycles=cycles)

    def finalize(self, now: int) -> int:
        pending = [t for t in self._inflight if t > now]
        self._inflight = []
        return (max(pending) - now) if pending else 0
