"""repro.caches - baseline cache designs from the paper's Figure 1."""

from repro.caches.base import CachedMemorySystem
from repro.caches.nvcache import NVCacheWB
from repro.caches.nvsram import NVSRAMIdeal
from repro.caches.params import CacheParams
from repro.caches.replay import ReplayCache
from repro.caches.vcache_wt import VCacheWT

__all__ = [
    "CacheParams",
    "CachedMemorySystem",
    "NVCacheWB",
    "NVSRAMIdeal",
    "ReplayCache",
    "VCacheWT",
]
