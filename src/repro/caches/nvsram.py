"""NVSRAM(ideal): volatile SRAM write-back cache with an NVM shadow
(Figure 1(d)); the paper's baseline.

At runtime it is a plain SRAM write-back cache - the fastest design when
power is stable. On an imminent power failure it "magically" checkpoints
exactly the dirty lines into the same-size NVM counterpart; at reboot it
restores them, resuming with a *warm* cache (dirty state preserved).

Its weakness is the energy reserve: since in the worst case every line may
be dirty, ``Vbackup`` must budget for checkpointing the entire cache, which
shrinks the per-on-period compute window under frequent outages.
"""

from __future__ import annotations

from repro.caches.base import CachedMemorySystem
from repro.mem.memsys import FlushReport

_FULL = 0xFFFFFFFF


class NVSRAMIdeal(CachedMemorySystem):
    name = "NVSRAM(ideal)"
    volatile_cache = True

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        # checkpointed (lineno, data, dirty) tuples awaiting restore
        self._backup: list[tuple[int, list[int], bool]] = []

    def store(self, addr: int, value: int, now: int) -> int:
        return self.store_masked(addr, value, _FULL, now)

    def store_masked(self, addr: int, bits: int, mask: int, now: int) -> int:
        self.stats.stores += 1
        self.stats.cache_write_energy_nj += self._e_write
        line = self.array.find(addr)
        cycles = 0
        if line is None:
            self.stats.write_misses += 1
            line, cycles = self._fill(addr, now)
        else:
            self.stats.write_hits += 1
        widx = (addr >> 2) & self._word_mask
        line.data[widx] = self._merged(line.data[widx], bits, mask)
        line.dirty = True
        return cycles + self.params.hit_write_cycles

    # persistence protocol -------------------------------------------------
    def reserve_lines(self) -> int:
        # worst case: the whole cache is dirty (the paper's key critique)
        return self.geometry.n_lines

    def checkpoint_line_energy_nj(self) -> float:
        # SRAM line -> adjacent non-volatile shadow: cheaper per line than a
        # main-NVM write, but reserved for *every* line of the cache
        return self.params.ckpt_line_energy_nj

    def flush_for_checkpoint(self, now: int) -> FlushReport:
        report = FlushReport()
        self._backup = []
        for line in self.array.dirty_lines():
            self._backup.append((line.tag, list(line.data), True))
            report.lines_flushed += 1
            report.words_flushed += len(line.data)
            report.cycles += self.params.ckpt_line_cycles
            report.extra_energy_nj += self.params.ckpt_line_energy_nj
        # the backup energy is an SRAM->shadow transfer; report it as cache
        # write energy for the Fig. 13b breakdown
        self.stats.cache_write_energy_nj += report.extra_energy_nj
        return report

    def on_boot(self, first: bool) -> int:
        cycles = 0
        for lineno, data, dirty in self._backup:
            line = self.array.install(lineno << self.geometry.line_shift, data)
            line.dirty = dirty
            cycles += self.params.restore_line_cycles
            # shadow -> SRAM copy energy, drawn from the fresh charge
            self.stats.cache_write_energy_nj += (
                self.params.restore_line_energy_nj)
        self._backup = []
        return cycles
