"""The other two NVSRAM designs from §2.3.3.

* :class:`NVSRAMFull` - the original NVSRAM cache [41]: JIT checkpointing
  copies the *entire* SRAM array to the shadow, dirty or not. Same large
  reserve as the ideal variant but the checkpoint cost is always worst
  case; the paper uses it to motivate the "ideal" comparison point.

* :class:`NVSRAMPractical` - the hybrid design [72, 73]: SRAM ways and NV
  ways share each set. Data lands in SRAM ways; a background migration
  moves cold dirty SRAM lines into NV ways so that JIT checkpointing only
  has to move the *remaining* dirty SRAM lines. Accessing data that lives
  in an NV way costs NV-array latency/energy, which is why the paper finds
  it slower than the ideal variant.
"""

from __future__ import annotations

from repro.caches.nvsram import NVSRAMIdeal
from repro.caches.params import CacheParams
from repro.mem.memsys import FlushReport
from repro.mem.nvm import NVMainMemory
from repro.mem.setassoc import CacheGeometry

_FULL = 0xFFFFFFFF


class NVSRAMFull(NVSRAMIdeal):
    """NVSRAM that checkpoints the whole array at every power failure."""

    name = "NVSRAM(full)"

    def flush_for_checkpoint(self, now: int) -> FlushReport:
        report = FlushReport()
        self._backup = []
        for line in self.array.valid_lines():
            self._backup.append((line.tag, list(line.data), line.dirty))
            report.lines_flushed += 1
            report.words_flushed += len(line.data)
            report.cycles += self.params.ckpt_line_cycles
            report.extra_energy_nj += self.params.ckpt_line_energy_nj
        self.stats.cache_write_energy_nj += report.extra_energy_nj
        return report


class NVSRAMPractical(NVSRAMIdeal):
    """Hybrid SRAM/NV-way cache with runtime migration.

    The upper half of each set's ways are NV lines: hits there pay NV
    latency/energy. On a store to an SRAM way, if the set has a free (or
    clean) NV way, the previously dirty SRAM resident of that set is
    migrated into it, keeping the number of dirty *SRAM* lines per set at
    most one - which is all the JIT checkpoint then has to move.
    Migrations and NV-way residency are the runtime overheads the paper
    calls out (§2.3.3).
    """

    name = "NVSRAM(practical)"

    def __init__(self, nvm: NVMainMemory, geometry: CacheGeometry,
                 replacement: str = "lru",
                 params: CacheParams | None = None,
                 nv_params: CacheParams | None = None, **kwargs):
        super().__init__(nvm, geometry, replacement, params, **kwargs)
        self.nv_params = nv_params or CacheParams(
            hit_read_cycles=3, hit_write_cycles=5,
            read_energy_nj=0.30, write_energy_nj=0.80)
        self._nv_ways = max(1, geometry.assoc // 2)
        # mark which physical ways are NV: the top ones of each set
        self._nv_threshold = geometry.assoc - self._nv_ways
        self.migrations = 0

    def _is_nv_way(self, set_index: int, line) -> bool:
        cset = self.array.sets[set_index]
        return cset.index(line) >= self._nv_threshold

    def _set_index(self, addr: int) -> int:
        return (addr >> self.array.line_shift) & self.array.set_mask

    def load(self, addr: int, now: int) -> tuple[int, int]:
        value, cycles = super().load(addr, now)
        line = self.array.peek(addr)
        if line is not None and self._is_nv_way(self._set_index(addr), line):
            cycles += (self.nv_params.hit_read_cycles
                       - self.params.hit_read_cycles)
            self.stats.cache_read_energy_nj += (
                self.nv_params.read_energy_nj - self._e_read)
        return (value, cycles)

    def store_masked(self, addr: int, bits: int, mask: int, now: int) -> int:
        cycles = super().store_masked(addr, bits, mask, now)
        line = self.array.peek(addr)
        if line is not None and self._is_nv_way(self._set_index(addr), line):
            cycles += (self.nv_params.hit_write_cycles
                       - self.params.hit_write_cycles)
            self.stats.cache_write_energy_nj += (
                self.nv_params.write_energy_nj - self._e_write)
        return cycles

    def _fill(self, addr: int, now: int):
        """Allocate into an SRAM way; migrate the displaced dirty SRAM
        resident into a non-dirty NV way when one exists (the design's
        runtime migration), else write it back to main NVM."""
        cset = self.array.sets[self._set_index(addr)]
        sram_ways = cset[:self._nv_threshold]
        victim = next((l for l in sram_ways if not l.valid), None)
        if victim is None:
            lru = self.array.replacement == "lru"
            victim = min(sram_ways,
                         key=lambda l: l.use_stamp if lru else l.fill_stamp)
        cycles = 0
        if victim.valid and victim.dirty:
            dst = next((l for l in cset[self._nv_threshold:]
                        if not (l.valid and l.dirty)), None)
            if dst is not None:
                dst.tag = victim.tag
                dst.valid = True
                dst.dirty = True
                dst.data = list(victim.data)
                dst.use_stamp = victim.use_stamp
                dst.fill_stamp = victim.fill_stamp
                self.migrations += 1
                cycles += self.nv_params.hit_write_cycles
                self.stats.cache_write_energy_nj += (
                    self.nv_params.write_energy_nj)
            else:
                self.stats.dirty_evictions += 1
                self.nvm.write_line(self.array.line_addr(victim), victim.data)
                cycles += self.posted_evict_cycles
        data, fetch_cycles = self.nvm.read_line(addr & self._line_mask,
                                                self._wpl)
        lineno = addr >> self.array.line_shift
        victim.tag = lineno
        victim.valid = True
        victim.dirty = False
        victim.data = list(data)
        self.array._stamp += 1
        victim.use_stamp = victim.fill_stamp = self.array._stamp
        return (victim, cycles + fetch_cycles)

    # JIT checkpoint only moves the dirty *SRAM* lines ------------------
    def reserve_lines(self) -> int:
        # at most one dirty SRAM line per set survives migration
        return self.geometry.n_sets

    def flush_for_checkpoint(self, now: int) -> FlushReport:
        report = FlushReport()
        self._backup = []
        for set_index, cset in enumerate(self.array.sets):
            for way, line in enumerate(cset):
                if not (line.valid and line.dirty):
                    continue
                if way >= self._nv_threshold:
                    continue  # NV ways survive power failure in place
                self._backup.append((line.tag, list(line.data), True))
                report.lines_flushed += 1
                report.words_flushed += len(line.data)
                report.cycles += self.params.ckpt_line_cycles
                report.extra_energy_nj += self.params.ckpt_line_energy_nj
        self.stats.cache_write_energy_nj += report.extra_energy_nj
        return report

    def on_power_loss(self) -> None:
        # SRAM ways are lost; NV ways keep their contents
        for cset in self.array.sets:
            for line in cset[:self._nv_threshold]:
                line.invalidate()

    def on_boot(self, first: bool) -> int:
        # restore backed-up SRAM lines into (now empty) SRAM ways only, so
        # surviving dirty NV lines are never silently clobbered
        cycles = 0
        for lineno, data, dirty in self._backup:
            cset = self.array.sets[lineno & self.array.set_mask]
            for line in cset[:self._nv_threshold]:
                if not line.valid:
                    line.tag = lineno
                    line.valid = True
                    line.dirty = dirty
                    line.data = list(data)
                    cycles += self.params.restore_line_cycles
                    self.stats.cache_write_energy_nj += (
                        self.params.restore_line_energy_nj)
                    break
        self._backup = []
        return cycles

    def leakage_w(self) -> float:
        sram_frac = self._nv_threshold / self.geometry.assoc
        return (self.params.leakage_w * sram_frac
                + self.nv_params.leakage_w * (1 - sram_frac))
