"""Shared machinery for data-holding cache designs.

:class:`CachedMemorySystem` implements the memory-system protocol of
:mod:`repro.mem.memsys` on top of a :class:`~repro.mem.setassoc.SetAssocArray`
backed by :class:`~repro.mem.nvm.NVMainMemory`. Designs override the store
policy and the checkpoint/boot protocol.
"""

from __future__ import annotations

from repro.caches.params import CacheParams
from repro.mem.memsys import FlushReport, MemStats
from repro.mem.nvm import NVMainMemory
from repro.mem.setassoc import LRU, CacheGeometry, CacheLine, SetAssocArray

_FULL = 0xFFFFFFFF


class CachedMemorySystem:
    """Base for all cache designs; implements loads, fills and evictions.

    Subclasses implement ``store``/``store_masked`` (the write policy - the
    whole point of the paper) and the persistence protocol methods.
    """

    name = "cache"
    #: True when cache contents are lost at power failure.
    volatile_cache = True
    #: Latency charged for a dirty-victim write-back. Real hierarchies post
    #: the victim through a write buffer, so the miss only pays the buffer
    #: handoff, not the full NVM line write (energy is still charged).
    posted_evict_cycles = 12

    def __init__(self, nvm: NVMainMemory, geometry: CacheGeometry,
                 replacement: str = LRU, params: CacheParams | None = None):
        self.nvm = nvm
        self.geometry = geometry
        self.params = params or CacheParams()
        self.array = SetAssocArray(geometry, replacement)
        self.stats = MemStats()
        p = self.params
        lru = replacement == LRU
        self._e_read = p.read_energy_nj + (p.lru_extra_energy_nj if lru else 0.0)
        self._e_write = p.write_energy_nj + (p.lru_extra_energy_nj if lru else 0.0)
        self._wpl = geometry.words_per_line
        self._line_mask = ~(geometry.line_bytes - 1)
        self._word_mask = geometry.words_per_line - 1
        # hot-path bindings: one attribute hop instead of two per access
        self._find = self.array.find
        self._hit_read_cycles = p.hit_read_cycles
        self._hit_write_cycles = p.hit_write_cycles

    # ------------------------------------------------------------------
    # fill/evict plumbing
    # ------------------------------------------------------------------
    def _evict(self, line: CacheLine, now: int) -> int:
        """Write back a dirty victim; returns cycles. Hook for designs."""
        if line.dirty:
            self.stats.dirty_evictions += 1
            addr = self.array.line_addr(line)
            self.nvm.write_line(addr, line.data)
            self._note_dirty_evicted(line.tag, now)
            return self.posted_evict_cycles
        return 0

    def _note_dirty_evicted(self, lineno: int, now: int) -> None:
        """Called when a dirty line leaves the cache (WL-Cache tracks
        stale DirtyQueue entries through this)."""

    def _fill(self, addr: int, now: int) -> tuple[CacheLine, int]:
        """Miss path: evict the victim and fetch the line from NVM."""
        victim = self.array.victim(addr)
        cycles = 0
        if victim.valid:
            cycles += self._evict(victim, now)
        data, fetch_cycles = self.nvm.read_line(addr & self._line_mask, self._wpl)
        line = self.array.install(addr, data)
        return (line, cycles + fetch_cycles)

    # ------------------------------------------------------------------
    # protocol: loads are shared by every design
    # ------------------------------------------------------------------
    def load(self, addr: int, now: int) -> tuple[int, int]:
        stats = self.stats
        stats.loads += 1
        stats.cache_read_energy_nj += self._e_read
        line = self._find(addr)
        if line is not None:
            stats.read_hits += 1
            return (line.data[(addr >> 2) & self._word_mask],
                    self._hit_read_cycles)
        stats.read_misses += 1
        line, cycles = self._fill(addr, now)
        return (line.data[(addr >> 2) & self._word_mask],
                cycles + self._hit_read_cycles)

    # stores are design-specific ----------------------------------------
    def store(self, addr: int, value: int, now: int) -> int:
        raise NotImplementedError

    def store_masked(self, addr: int, bits: int, mask: int, now: int) -> int:
        raise NotImplementedError

    # persistence protocol ------------------------------------------------
    def reserve_lines(self) -> int:
        return 0

    def checkpoint_line_energy_nj(self) -> float:
        """Energy to persist one line during a JIT checkpoint.

        Default: a line write to main NVM (WL-Cache's path). NVSRAM
        overrides this with its cheaper adjacent-shadow copy.
        """
        return self.geometry.words_per_line * self.nvm.timings.write_energy_nj

    def reserve_extra_energy_nj(self) -> float:
        """Reserve energy beyond line flushes (e.g. persist-queue drains)."""
        return 0.0

    def flush_for_checkpoint(self, now: int) -> FlushReport:
        return FlushReport()

    def on_power_loss(self) -> None:
        if self.volatile_cache:
            self.array.invalidate_all()

    def on_boot(self, first: bool) -> int:
        return 0

    def finalize(self, now: int) -> int:
        """Drain dirty lines at program completion; returns cycles.

        The drain goes through the posted write buffer (energy charged,
        latency amortized) - designs with a non-volatile backing (NVCache's
        own array, NVSRAM's shadow) would not even need this at run time;
        the write-out exists so the final NVM image is checkable.
        """
        cycles = 0
        for line in self.array.dirty_lines():
            self.nvm.write_line(self.array.line_addr(line), line.data)
            cycles += self.posted_evict_cycles
            line.dirty = False
        return cycles

    def leakage_w(self) -> float:
        return self.params.leakage_w

    # helpers -------------------------------------------------------------
    def _merged(self, old: int, bits: int, mask: int) -> int:
        return (old & ~mask) | (bits & mask)
