"""qsort - in-place quicksort over random u32 keys (MiBench).

Iterative Hoare-partition quicksort with an explicit stack in guest memory,
matching the irregular store pattern that makes qsort a classic cache
workload. Verified against Python ``sorted``.
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program
from repro.workloads.common import rng, scaled, words


def build(scale: float = 1.0) -> Program:
    n = scaled(700, scale, minimum=4)
    keys = words(rng(0xC0FFEE), n)

    b = ProgramBuilder("qsort")
    arr = b.data_words(keys, "arr")
    # worst-case segment stack: every push follows a pop of a larger range,
    # so 2 words per outstanding range, bounded by n ranges
    stack = b.space_words(2 * n + 8, "stack")

    sp, lo, hi = b.regs("stk", "lo", "hi")
    i, j, pivot = b.regs("i", "j", "pivot")
    vi, vj, t = b.regs("vi", "vj", "t")

    # push initial range [0, n-1] as byte offsets into arr
    b.li(sp, stack)
    b.li(t, arr)
    b.sw(t, sp, 0)
    b.li(t, arr + 4 * (n - 1))
    b.sw(t, sp, 4)
    b.addi(sp, sp, 8)

    with b.loop() as main:
        b.checkpoint()
        main.break_if(sp, "<=u", stack)  # stack empty
        b.addi(sp, sp, -8)
        b.lw(lo, sp, 0)
        b.lw(hi, sp, 4)
        main.continue_if(lo, ">=u", hi)
        # pivot = arr[(lo+hi)/2] (word-aligned midpoint)
        b.add(t, lo, hi)
        b.srli(t, t, 3)
        b.slli(t, t, 2)
        b.lw(pivot, t, 0)
        b.mv(i, lo)
        b.mv(j, hi)
        with b.loop() as part:  # Hoare partition
            b.checkpoint()
            with b.loop() as fwd:
                b.checkpoint()
                b.lw(vi, i, 0)
                fwd.break_if(vi, ">=u", pivot)
                b.addi(i, i, 4)
            with b.loop() as bwd:
                b.checkpoint()
                b.lw(vj, j, 0)
                bwd.break_if(vj, "<=u", pivot)
                b.addi(j, j, -4)
            part.break_if(i, ">u", j)
            b.sw(vj, i, 0)
            b.sw(vi, j, 0)
            b.addi(i, i, 4)
            b.addi(j, j, -4)
            # fall through to the loop's implicit back-edge when i <= j
            part.break_if(i, ">u", j)
        # push [lo, j] and [i, hi]
        with b.if_(lo, "<u", j):
            b.sw(lo, sp, 0)
            b.sw(j, sp, 4)
            b.addi(sp, sp, 8)
        with b.if_(i, "<u", hi):
            b.sw(i, sp, 0)
            b.sw(hi, sp, 4)
            b.addi(sp, sp, 8)
    b.halt()

    b.waive_lint(
        "L013",
        "loop-head checkpoints in register-only regions still commit "
        "induction and accumulator registers; no NVM store precedes "
        "them by design")
    prog = b.build()
    prog.meta["suite"] = "mibench"
    prog.meta["checks"] = [(arr, sorted(keys))]
    return prog
