"""dijkstra - single-source shortest paths on a dense graph (MiBench).

Adjacency-matrix Dijkstra (O(V^2) with linear min-scan, exactly like the
MiBench version) run from several sources; the distance arrays are checked
against a host-Python mirror.
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program
from repro.workloads.common import rng, scaled

_INF = 0x3FFFFFFF


def _host_dijkstra(adj: list[list[int]], src: int) -> list[int]:
    v = len(adj)
    dist = [_INF] * v
    dist[src] = 0
    visited = [False] * v
    for _ in range(v):
        u, best = -1, _INF + 1
        for k in range(v):
            if not visited[k] and dist[k] < best:
                u, best = k, dist[k]
        if u < 0:
            break
        visited[u] = True
        for k in range(v):
            w = adj[u][k]
            if w and dist[u] + w < dist[k]:
                dist[k] = dist[u] + w
    return dist


def build(scale: float = 1.0) -> Program:
    v = scaled(40, scale, minimum=4)
    n_src = 4
    rnd = rng(0xD135)
    # sparse-ish dense matrix: ~35% edges, weight 1..100, 0 = no edge
    adj = [[(rnd.randint(1, 100) if rnd.random() < 0.35 and i != j else 0)
            for j in range(v)] for i in range(v)]

    b = ProgramBuilder("dijkstra")
    flat = [w for row in adj for w in row]
    adj_addr = b.data_words(flat, "adj")
    dist_addr = b.space_words(v * n_src, "dist")
    visited_addr = b.space_words(v, "visited")

    src, i, k, t = b.regs("src", "i", "k", "t")
    dist_p, vis_p, row_p = b.regs("dist_p", "vis_p", "row_p")
    u, best, du, w = b.regs("u", "best", "du", "w")
    dk, addr = b.regs("dk", "addr")

    with b.for_range(src, 0, n_src):
        b.checkpoint()
        # dist_p = &dist[src * v]
        b.li(t, v * 4)
        b.mul(dist_p, src, t)
        b.li(t, dist_addr)
        b.add(dist_p, dist_p, t)
        # init dist = INF (dist[src] = 0), visited = 0
        with b.for_range(i, 0, v):
            b.checkpoint()
            b.slli(addr, i, 2)
            b.add(addr, addr, dist_p)
            b.li(t, _INF)
            b.sw(t, addr, 0)
            b.li(addr, visited_addr)
            b.slli(w, i, 2)
            b.add(addr, addr, w)
            b.sw(b.zero, addr, 0)
        b.slli(addr, src, 2)
        b.add(addr, addr, dist_p)
        b.sw(b.zero, addr, 0)

        with b.for_range(i, 0, v):
            b.checkpoint()
            # u = argmin over unvisited
            b.li(u, -1)
            b.li(best, _INF + 1)
            with b.for_range(k, 0, v):
                b.checkpoint()
                b.li(vis_p, visited_addr)
                b.slli(t, k, 2)
                b.add(vis_p, vis_p, t)
                b.lw(t, vis_p, 0)
                with b.if_(t, "==", 0):
                    b.slli(addr, k, 2)
                    b.add(addr, addr, dist_p)
                    b.lw(dk, addr, 0)
                    with b.if_(dk, "<u", best):
                        b.mv(best, dk)
                        b.mv(u, k)
            with b.if_(u, ">=", 0):
                b.li(vis_p, visited_addr)
                b.slli(t, u, 2)
                b.add(vis_p, vis_p, t)
                b.li(t, 1)
                b.sw(t, vis_p, 0)
                # du = dist[u]; row_p = &adj[u][0]
                b.slli(addr, u, 2)
                b.add(addr, addr, dist_p)
                b.lw(du, addr, 0)
                b.li(t, v * 4)
                b.mul(row_p, u, t)
                b.li(t, adj_addr)
                b.add(row_p, row_p, t)
                with b.for_range(k, 0, v):
                    b.checkpoint()
                    b.lw(w, row_p, 0)
                    b.addi(row_p, row_p, 4)
                    with b.if_(w, "!=", 0):
                        b.add(w, w, du)
                        b.slli(addr, k, 2)
                        b.add(addr, addr, dist_p)
                        b.lw(dk, addr, 0)
                        with b.if_(w, "<u", dk):
                            b.sw(w, addr, 0)
    b.halt()

    b.waive_lint(
        "L013",
        "loop-head checkpoints in register-only regions still commit "
        "induction and accumulator registers; no NVM store precedes "
        "them by design")
    prog = b.build()
    expected = []
    for s in range(n_src):
        expected.extend(_host_dijkstra(adj, s))
    prog.meta["suite"] = "mibench"
    prog.meta["checks"] = [(dist_addr, expected)]
    return prog
