"""patricia - PATRICIA trie insertion and lookup (MiBench).

A binary digital trie over 32-bit keys (IP-address-like), with nodes bump-
allocated in guest memory: each node is 4 words {bit, left, right, key}.
Inserts a key set, then looks up a probe set and records hit/miss flags and
a traversal-length checksum - both checked against a host mirror that
replays the identical insertion order.
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program
from repro.workloads.common import rng, scaled

_NODE_WORDS = 4  # bit, left, right, key


def _host_trie(keys: list[int], probes: list[int]) -> tuple[list[int], int]:
    """Mirror of the guest's simple digital trie (bit-index descent)."""
    # node: [bit, left, right, key]; index 0 = null
    nodes: list[list[int]] = [[0, 0, 0, 0]]  # dummy so index 0 is "null"

    def insert(key: int) -> None:
        if len(nodes) == 1:
            nodes.append([31, 0, 0, key])
            return
        cur = 1
        while True:
            node = nodes[cur]
            if node[3] == key:
                return
            bit = node[0]
            side = 1 if not (key >> bit) & 1 else 2
            nxt = node[side]
            if nxt == 0:
                nodes.append([max(0, bit - 1), 0, 0, key])
                node[side] = len(nodes) - 1
                return
            cur = nxt

    def search(key: int) -> tuple[int, int]:
        cur = 1 if len(nodes) > 1 else 0
        steps = 0
        while cur:
            node = nodes[cur]
            steps += 1
            if node[3] == key:
                return (1, steps)
            side = 1 if not (key >> node[0]) & 1 else 2
            cur = node[side]
        return (0, steps)

    for k in keys:
        insert(k)
    hits = []
    checksum = 0
    for p in probes:
        hit, steps = search(p)
        hits.append(hit)
        checksum = (checksum + steps) & 0xFFFFFFFF
    return (hits, checksum)


def build(scale: float = 1.0) -> Program:
    n_keys = scaled(380, scale, minimum=2)
    n_probes = scaled(500, scale, minimum=2)
    rnd = rng(0x9A7)
    keys = [rnd.getrandbits(32) for _ in range(n_keys)]
    # half the probes are present, half random
    probes = [rnd.choice(keys) if rnd.random() < 0.5 else rnd.getrandbits(32)
              for _ in range(n_probes)]

    b = ProgramBuilder("patricia")
    keys_addr = b.data_words(keys, "keys")
    probes_addr = b.data_words(probes, "probes")
    # node pool: index 0 is null; node i at pool + 16*i
    pool = b.space_words(_NODE_WORDS * (n_keys + 2), "pool")
    hits_addr = b.space_words(n_probes, "hits")
    csum_addr = b.space_words(1, "checksum")

    nnodes, key, cur, node_p = b.regs("nnodes", "key", "cur", "node_p")
    bit, side, nxt, t = b.regs("bit", "side", "nxt", "t")
    i, kp = b.regs("i", "kp")

    b.li(nnodes, 1)  # slot 0 reserved as null

    def node_addr(dst, idx):
        """dst = pool + 16*idx (clobbers dst only)."""
        b.slli(dst, idx, 4)
        b.addi(dst, dst, pool)

    # ---- insertion ----
    b.li(kp, keys_addr)
    with b.for_range(i, 0, n_keys):
        b.checkpoint()
        b.lw(key, kp, 0)
        b.addi(kp, kp, 4)
        with b.if_else(nnodes, "==", 1) as nonempty:
            # first real node: bit=31, key
            node_addr(node_p, nnodes)
            b.li(t, 31)
            b.sw(t, node_p, 0)
            b.sw(b.zero, node_p, 4)
            b.sw(b.zero, node_p, 8)
            b.sw(key, node_p, 12)
            b.addi(nnodes, nnodes, 1)
            nonempty()
            b.li(cur, 1)
            with b.loop() as walk:
                b.checkpoint()
                node_addr(node_p, cur)
                b.lw(t, node_p, 12)
                walk.break_if(t, "==", key)  # duplicate: nothing to do
                b.lw(bit, node_p, 0)
                # side offset: 4 if bit clear, 8 if set
                b.srl(t, key, bit)
                b.andi(t, t, 1)
                b.slli(side, t, 2)
                b.addi(side, side, 4)
                b.add(t, node_p, side)
                b.lw(nxt, t, 0)
                with b.if_(nxt, "==", 0):
                    # allocate child: bit-1 (floor 0), key
                    node_addr(nxt, nnodes)
                    b.addi(bit, bit, -1)
                    with b.if_(bit, "<", 0):
                        b.li(bit, 0)
                    b.sw(bit, nxt, 0)
                    b.sw(b.zero, nxt, 4)
                    b.sw(b.zero, nxt, 8)
                    b.sw(key, nxt, 12)
                    b.add(t, node_p, side)
                    b.sw(nnodes, t, 0)
                    b.addi(nnodes, nnodes, 1)
                    walk.break_()
                b.mv(cur, nxt)

    # ---- search ----
    csum, hp = b.regs("csum", "hp")
    b.li(csum, 0)
    b.li(kp, probes_addr)
    b.li(hp, hits_addr)
    with b.for_range(i, 0, n_probes):
        b.checkpoint()
        b.lw(key, kp, 0)
        b.addi(kp, kp, 4)
        b.li(cur, 0)
        with b.if_(nnodes, ">", 1):
            b.li(cur, 1)
        b.li(t, 0)  # hit flag in t
        with b.loop() as walk:
            b.checkpoint()
            walk.break_if(cur, "==", 0)
            node_addr(node_p, cur)
            b.addi(csum, csum, 1)
            b.lw(nxt, node_p, 12)
            with b.if_(nxt, "==", key):
                b.li(t, 1)
                walk.break_()
            b.lw(bit, node_p, 0)
            b.srl(nxt, key, bit)
            b.andi(nxt, nxt, 1)
            b.slli(side, nxt, 2)
            b.addi(side, side, 4)
            b.add(side, node_p, side)
            b.lw(cur, side, 0)
        b.sw(t, hp, 0)
        b.addi(hp, hp, 4)
    b.sw_addr(csum, csum_addr)
    b.halt()

    b.waive_lint(
        "L013",
        "loop-head checkpoints in register-only regions still commit "
        "induction and accumulator registers; no NVM store precedes "
        "them by design")
    prog = b.build()
    # guest walk semantics: side chosen by bit CLEAR -> left(4) else right(8);
    # the host mirror uses: side = 1 if bit clear else 2
    hits, checksum = _host_trie(keys, probes)
    prog.meta["suite"] = "mibench"
    prog.meta["checks"] = [(hits_addr, hits), (csum_addr, [checksum])]
    return prog
