"""basicmath - integer math kernels (MiBench).

Three sub-kernels matching MiBench basicmath's spirit in integer form:
bit-by-bit integer square roots, integer cube roots by binary search, and
degree->radian conversions in Q16 fixed point. Each result array is checked
against an exact host-Python mirror.
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program
from repro.workloads.common import rng, scaled, words

_Q16_PI_OVER_180 = 1144  # round(pi/180 * 2^16)


def _isqrt(x: int) -> int:
    r = 0
    bit = 1 << 30
    while bit > x:
        bit >>= 2
    while bit:
        if x >= r + bit:
            x -= r + bit
            r = (r >> 1) + bit
        else:
            r >>= 1
        bit >>= 2
    return r


def _icbrt(x: int) -> int:
    lo, hi = 0, 1625  # 1625^3 > 2^32
    while lo < hi:
        mid = (lo + hi + 1) >> 1
        if mid * mid * mid <= x:
            lo = mid
        else:
            hi = mid - 1
    return lo


def build(scale: float = 1.0) -> Program:
    n = scaled(260, scale, minimum=2)
    rnd = rng(0xBA51C)
    xs = words(rnd, n)
    degs = [rnd.randint(0, 360) for _ in range(n)]

    b = ProgramBuilder("basicmath")
    xs_addr = b.data_words(xs, "xs")
    degs_addr = b.data_words(degs, "degs")
    sq_out = b.space_words(n, "sqrt_out")
    cb_out = b.space_words(n, "cbrt_out")
    rad_out = b.space_words(n, "rad_out")

    i, x, r, bit, t = b.regs("i", "x", "r", "bit", "t")
    p_in, p_out = b.regs("p_in", "p_out")

    # --- integer square roots (bit-by-bit method) ---
    b.li(p_in, xs_addr)
    b.li(p_out, sq_out)
    with b.for_range(i, 0, n):
        b.checkpoint()
        b.lw(x, p_in, 0)
        b.li(r, 0)
        b.li(bit, 1 << 30)
        with b.while_(bit, ">u", x):
            b.checkpoint()
            b.srli(bit, bit, 2)
        with b.while_(bit, "!=", 0):
            b.checkpoint()
            b.add(t, r, bit)
            with b.if_else(x, ">=u", t) as other:
                b.sub(x, x, t)
                b.srli(r, r, 1)
                b.add(r, r, bit)
                other()
                b.srli(r, r, 1)
            b.srli(bit, bit, 2)
        b.sw(r, p_out, 0)
        b.addi(p_in, p_in, 4)
        b.addi(p_out, p_out, 4)

    # --- integer cube roots (binary search; mul-heavy) ---
    lo, hi, mid = b.regs("lo", "hi", "mid")
    b.li(p_in, xs_addr)
    b.li(p_out, cb_out)
    with b.for_range(i, 0, n):
        b.checkpoint()
        b.lw(x, p_in, 0)
        b.li(lo, 0)
        b.li(hi, 1625)
        with b.while_(lo, "<u", hi):
            b.checkpoint()
            b.add(mid, lo, hi)
            b.addi(mid, mid, 1)
            b.srli(mid, mid, 1)
            # 64-bit safe: compare mid^3 <= x using mulh to detect overflow
            b.mul(t, mid, mid)  # mid^2 (fits: 1625^2 < 2^32)
            b.mulh(r, t, mid)   # high word of mid^3 (signed ok: operands < 2^31)
            with b.if_else(r, "!=", 0) as in_range:
                b.addi(hi, mid, -1)  # mid^3 overflows 32 bits -> too big
                in_range()
                b.mul(t, t, mid)
                with b.if_else(t, "<=u", x) as too_big:
                    b.mv(lo, mid)
                    too_big()
                    b.addi(hi, mid, -1)
        b.sw(lo, p_out, 0)
        b.addi(p_in, p_in, 4)
        b.addi(p_out, p_out, 4)

    # --- degree -> radian, Q16 fixed point ---
    b.li(p_in, degs_addr)
    b.li(p_out, rad_out)
    with b.for_range(i, 0, n):
        b.checkpoint()
        b.lw(x, p_in, 0)
        b.li(t, _Q16_PI_OVER_180)
        b.mul(r, x, t)
        b.sw(r, p_out, 0)
        b.addi(p_in, p_in, 4)
        b.addi(p_out, p_out, 4)
    b.halt()

    b.waive_lint(
        "L013",
        "loop-head checkpoints in register-only regions still commit "
        "induction and accumulator registers; no NVM store precedes "
        "them by design")
    prog = b.build()
    prog.meta["suite"] = "mibench"
    prog.meta["checks"] = [
        (sq_out, [_isqrt(v) for v in xs]),
        (cb_out, [_icbrt(v) for v in xs]),
        (rad_out, [(d * _Q16_PI_OVER_180) & 0xFFFFFFFF for d in degs]),
    ]
    return prog
