"""MiBench workload kernels."""
