"""FFT / FFT_i - fixed-point radix-2 FFT and inverse (MiBench).

Iterative in-place decimation-in-time FFT over Q15 complex samples with
precomputed twiddle tables. The guest math is integer-exact; the host
mirror replays the identical fixed-point operations, so the check is
bit-exact (no float tolerance games). ``FFT_i`` runs the inverse transform
over the forward transform's output and additionally checks the round trip
against the (scaled) original signal.
"""

from __future__ import annotations

import math

from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program
from repro.workloads.common import rng, to_s32

_U32 = 0xFFFFFFFF


def _twiddles(n: int, inverse: bool) -> tuple[list[int], list[int]]:
    sign = 1.0 if inverse else -1.0
    cos = [int(round(math.cos(2 * math.pi * k / n) * 32767)) & 0xFFFF
           for k in range(n // 2)]
    sin = [int(round(sign * math.sin(2 * math.pi * k / n) * 32767)) & 0xFFFF
           for k in range(n // 2)]
    return cos, sin


def _bit_reverse(idx: int, bits: int) -> int:
    out = 0
    for _ in range(bits):
        out = (out << 1) | (idx & 1)
        idx >>= 1
    return out


def _host_fft(re: list[int], im: list[int], cos: list[int], sin: list[int],
              n: int) -> tuple[list[int], list[int]]:
    """Exact mirror of the guest's fixed-point butterflies."""
    bits = n.bit_length() - 1
    re = list(re)
    im = list(im)
    for i in range(n):
        j = _bit_reverse(i, bits)
        if j > i:
            re[i], re[j] = re[j], re[i]
            im[i], im[j] = im[j], im[i]

    def s16(x: int) -> int:
        x &= 0xFFFF
        return x - 0x10000 if x & 0x8000 else x

    size = 2
    while size <= n:
        half = size >> 1
        step = n // size
        for start in range(0, n, size):
            for k in range(half):
                c = s16(cos[k * step])
                s = s16(sin[k * step])
                a = start + k
                bidx = a + half
                tr = (to_s32(re[bidx]) * c - to_s32(im[bidx]) * s) >> 15
                ti = (to_s32(re[bidx]) * s + to_s32(im[bidx]) * c) >> 15
                ar = to_s32(re[a]) >> 1
                ai = to_s32(im[a]) >> 1
                tr >>= 1
                ti >>= 1
                re[bidx] = (ar - tr) & _U32
                im[bidx] = (ai - ti) & _U32
                re[a] = (ar + tr) & _U32
                im[a] = (ai + ti) & _U32
        size <<= 1
    return re, im


def _build(inverse: bool, scale: float) -> Program:
    n = 256 if scale >= 0.75 else 128
    if scale >= 2.0:
        n = 512
    bits = n.bit_length() - 1
    rnd = rng(0xFF7 + (1 if inverse else 0))
    sig_re = [rnd.randint(-8000, 8000) & _U32 for _ in range(n)]
    sig_im = [rnd.randint(-8000, 8000) & _U32 for _ in range(n)]
    fcos, fsin = _twiddles(n, inverse=False)
    if inverse:
        # input of the inverse transform = forward transform of the signal
        in_re, in_im = _host_fft(sig_re, sig_im, fcos, fsin, n)
        cos, sin = _twiddles(n, inverse=True)
    else:
        in_re, in_im = sig_re, sig_im
        cos, sin = fcos, fsin

    name = "fft_i" if inverse else "fft"
    b = ProgramBuilder(name)
    re_addr = b.data_words(in_re, "re")
    im_addr = b.data_words(in_im, "im")
    cos_addr = b.data_words(cos, "cos")
    sin_addr = b.data_words(sin, "sin")

    i, j, t, bit = b.regs("i", "j", "t", "bit")
    pa, pb = b.regs("pa", "pb")
    # --- bit-reversal permutation ---
    for base in (re_addr, im_addr):
        with b.for_range(i, 0, n):
            b.checkpoint()
            # j = bit_reverse(i)
            b.li(j, 0)
            b.mv(t, i)
            for step_no in range(bits):
                b.slli(j, j, 1)
                b.andi(bit, t, 1)
                b.or_(j, j, bit)
                if step_no != bits - 1:  # the last shifted-out t is unused
                    b.srli(t, t, 1)
            with b.if_(j, ">", i):
                b.li(pa, base)
                b.slli(t, i, 2)
                b.add(pa, pa, t)
                b.li(pb, base)
                b.slli(t, j, 2)
                b.add(pb, pb, t)
                b.lw(t, pa, 0)
                b.lw(bit, pb, 0)
                b.sw(bit, pa, 0)
                b.sw(t, pb, 0)

    # --- butterflies ---
    size, half, step, start, k = b.regs("size", "half", "step", "start", "k")
    c, s, tr, ti = b.regs("c", "s", "tr", "ti")
    ar, ai, br, bi = b.regs("ar", "ai", "br", "bi")
    idx = b.reg("idx")
    b.li(size, 2)
    with b.while_(size, "<=", n):
        b.checkpoint()
        b.srli(half, size, 1)
        b.li(step, n)
        b.div(step, step, size)
        b.li(start, 0)
        with b.while_(start, "<", n):
            b.checkpoint()
            with b.for_range(k, 0, half):
                b.checkpoint()
                # c/s = sign-extended halfword twiddles at k*step
                b.mul(idx, k, step)
                b.slli(idx, idx, 2)
                b.li(t, cos_addr)
                b.add(t, t, idx)
                b.lh(c, t, 0)
                b.li(t, sin_addr)
                b.add(t, t, idx)
                b.lh(s, t, 0)
                # a = start + k; b = a + half (word pointers)
                b.add(idx, start, k)
                b.slli(idx, idx, 2)
                b.li(pa, re_addr)
                b.add(pa, pa, idx)
                b.li(pb, im_addr)
                b.add(pb, pb, idx)
                b.slli(t, half, 2)
                b.lw(ar, pa, 0)
                b.lw(ai, pb, 0)
                b.add(pa, pa, t)
                b.add(pb, pb, t)
                b.lw(br, pa, 0)
                b.lw(bi, pb, 0)
                # tr = (br*c - bi*s) >> 15 ; ti = (br*s + bi*c) >> 15
                b.mul(tr, br, c)
                b.mul(t, bi, s)
                b.sub(tr, tr, t)
                b.srai(tr, tr, 15)
                b.mul(ti, br, s)
                b.mul(t, bi, c)
                b.add(ti, ti, t)
                b.srai(ti, ti, 15)
                # scale by 1/2 each stage to avoid overflow
                b.srai(ar, ar, 1)
                b.srai(ai, ai, 1)
                b.srai(tr, tr, 1)
                b.srai(ti, ti, 1)
                b.sub(t, ar, tr)
                b.sw(t, pa, 0)
                b.sub(t, ai, ti)
                b.sw(t, pb, 0)
                b.slli(t, half, 2)
                b.sub(pa, pa, t)
                b.sub(pb, pb, t)
                b.add(t, ar, tr)
                b.sw(t, pa, 0)
                b.add(t, ai, ti)
                b.sw(t, pb, 0)
            b.add(start, start, size)
        b.slli(size, size, 1)
    b.halt()

    prog = b.build()
    out_re, out_im = _host_fft(in_re, in_im, cos, sin, n)
    prog.meta["suite"] = "mibench"
    prog.meta["checks"] = [(re_addr, out_re), (im_addr, out_im)]
    if inverse:
        # round trip: inverse(forward(x)) == x / n (per-stage >>1 twice)
        prog.meta["roundtrip_tolerance"] = 64
        prog.meta["signal"] = (sig_re, sig_im)
    return prog


def build_fft(scale: float = 1.0) -> Program:
    return _build(False, scale)


def build_fft_i(scale: float = 1.0) -> Program:
    return _build(True, scale)
