"""rijndael_e / rijndael_d - AES-128 ECB encryption/decryption (MiBench).

Real table-driven AES: the guest performs SubBytes/ShiftRows/MixColumns/
AddRoundKey with S-box and GF(2^8) multiplication tables placed in data
memory (byte loads, exactly the access pattern of MiBench's rijndael).
Round keys are expanded on the host, as distributed MiBench does via its
key-setup call, and verified against a from-scratch host AES mirror.
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program
from repro.workloads.common import rng, scaled

# ---------------------------------------------------------------------------
# host-side AES-128 reference (from first principles, no external deps)
# ---------------------------------------------------------------------------


def _rotl8(x: int, n: int) -> int:
    return ((x << n) | (x >> (8 - n))) & 0xFF


def make_sbox() -> list[int]:
    sbox = [0] * 256
    p = q = 1
    while True:
        # p = p * 3 in GF(2^8)
        p = (p ^ (p << 1) ^ (0x1B if p & 0x80 else 0)) & 0xFF
        # q = q / 3 (multiply by 0xF6)
        q ^= (q << 1) & 0xFF
        q ^= (q << 2) & 0xFF
        q ^= (q << 4) & 0xFF
        q &= 0xFF
        if q & 0x80:
            q ^= 0x09
        sbox[p] = (q ^ _rotl8(q, 1) ^ _rotl8(q, 2) ^ _rotl8(q, 3)
                   ^ _rotl8(q, 4) ^ 0x63)
        if p == 1:
            break
    sbox[0] = 0x63
    return sbox


SBOX = make_sbox()
INV_SBOX = [0] * 256
for _i, _v in enumerate(SBOX):
    INV_SBOX[_v] = _i


def gmul(a: int, b: int) -> int:
    out = 0
    for _ in range(8):
        if b & 1:
            out ^= a
        hi = a & 0x80
        a = (a << 1) & 0xFF
        if hi:
            a ^= 0x1B
        b >>= 1
    return out


MUL = {n: [gmul(x, n) for x in range(256)] for n in (2, 3, 9, 11, 13, 14)}

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]

# ShiftRows maps output byte i to input byte _SHIFT[i] (column-major state)
_SHIFT = [(4 * ((i // 4 + i % 4) % 4) + i % 4) for i in range(16)]
_INV_SHIFT = [0] * 16
for _i, _s in enumerate(_SHIFT):
    _INV_SHIFT[_s] = _i


def expand_key(key: bytes) -> list[list[int]]:
    """128-bit key -> 11 round keys of 16 bytes each."""
    words = [list(key[4 * i:4 * i + 4]) for i in range(4)]
    for i in range(4, 44):
        tmp = list(words[i - 1])
        if i % 4 == 0:
            tmp = tmp[1:] + tmp[:1]
            tmp = [SBOX[x] for x in tmp]
            tmp[0] ^= _RCON[i // 4 - 1]
        words.append([a ^ b for a, b in zip(words[i - 4], tmp)])
    return [sum((words[4 * r + c] for c in range(4)), [])
            for r in range(11)]


def _add_rk(state: list[int], rk: list[int]) -> list[int]:
    return [a ^ b for a, b in zip(state, rk)]


def aes_encrypt_block(block: bytes, rks: list[list[int]]) -> bytes:
    s = _add_rk(list(block), rks[0])
    for rnd in range(1, 10):
        s = [SBOX[s[_SHIFT[i]]] for i in range(16)]
        mixed = []
        for c in range(4):
            a = s[4 * c:4 * c + 4]
            mixed += [
                MUL[2][a[0]] ^ MUL[3][a[1]] ^ a[2] ^ a[3],
                a[0] ^ MUL[2][a[1]] ^ MUL[3][a[2]] ^ a[3],
                a[0] ^ a[1] ^ MUL[2][a[2]] ^ MUL[3][a[3]],
                MUL[3][a[0]] ^ a[1] ^ a[2] ^ MUL[2][a[3]],
            ]
        s = _add_rk(mixed, rks[rnd])
    s = [SBOX[s[_SHIFT[i]]] for i in range(16)]
    return bytes(_add_rk(s, rks[10]))


def aes_decrypt_block(block: bytes, rks: list[list[int]]) -> bytes:
    s = _add_rk(list(block), rks[10])
    for rnd in range(9, 0, -1):
        s = [INV_SBOX[s[_INV_SHIFT[i]]] for i in range(16)]
        s = _add_rk(s, rks[rnd])
        mixed = []
        for c in range(4):
            a = s[4 * c:4 * c + 4]
            mixed += [
                MUL[14][a[0]] ^ MUL[11][a[1]] ^ MUL[13][a[2]] ^ MUL[9][a[3]],
                MUL[9][a[0]] ^ MUL[14][a[1]] ^ MUL[11][a[2]] ^ MUL[13][a[3]],
                MUL[13][a[0]] ^ MUL[9][a[1]] ^ MUL[14][a[2]] ^ MUL[11][a[3]],
                MUL[11][a[0]] ^ MUL[13][a[1]] ^ MUL[9][a[2]] ^ MUL[14][a[3]],
            ]
        s = mixed
    s = [INV_SBOX[s[_INV_SHIFT[i]]] for i in range(16)]
    return bytes(_add_rk(s, rks[0]))


# ---------------------------------------------------------------------------
# guest kernel
# ---------------------------------------------------------------------------


def _emit_lookup(b, dst, table_base_reg, idx_reg, t):
    b.add(t, table_base_reg, idx_reg)
    b.lbu(dst, t, 0)


def _build(decrypt: bool, scale: float) -> Program:
    nblocks = scaled(42, scale, minimum=1)
    rnd = rng(0xAE5 + decrypt)
    key = bytes(rnd.randrange(256) for _ in range(16))
    rks = expand_key(key)
    plain = bytes(rnd.randrange(256) for _ in range(16 * nblocks))
    if decrypt:
        guest_in = b"".join(aes_encrypt_block(plain[i:i + 16], rks)
                            for i in range(0, len(plain), 16))
        expected = plain
    else:
        guest_in = plain
        expected = b"".join(aes_encrypt_block(plain[i:i + 16], rks)
                            for i in range(0, len(plain), 16))

    name = "rijndael_d" if decrypt else "rijndael_e"
    b = ProgramBuilder(name)
    sbox_addr = b.data_bytes(bytes(INV_SBOX if decrypt else SBOX), "sbox")
    if decrypt:
        t14 = b.data_bytes(bytes(MUL[14]), "mul14")
        t11 = b.data_bytes(bytes(MUL[11]), "mul11")
        t13 = b.data_bytes(bytes(MUL[13]), "mul13")
        t9 = b.data_bytes(bytes(MUL[9]), "mul9")
        mix_tables = (t14, t11, t13, t9)
    else:
        t2 = b.data_bytes(bytes(MUL[2]), "mul2")
        t3 = b.data_bytes(bytes(MUL[3]), "mul3")
    rk_addr = b.data_bytes(bytes(sum(rks, [])), "round_keys")
    in_addr = b.data_bytes(guest_in, "input")
    out_addr = b.space_bytes(16 * nblocks, "output")
    state = b.space_bytes(16, "state")
    tmp16 = b.space_bytes(16, "tmp16")

    blk, r, t, u, v = b.regs("blk", "r", "t", "u", "v")
    inp, outp, rkp = b.regs("inp", "outp", "rkp")
    sboxr, st, tm = b.regs("sboxr", "st", "tm")
    a0, a1, a2, a3 = b.regs("a0", "a1", "a2", "a3")

    b.li(sboxr, sbox_addr)
    b.li(st, state)
    b.li(tm, tmp16)
    b.li(inp, in_addr)
    b.li(outp, out_addr)

    shift_map = _INV_SHIFT if decrypt else _SHIFT

    def add_round_key():
        """state ^= current round key (rkp), word-wise."""
        for w in range(4):
            b.lw(u, st, 4 * w)
            b.lw(v, rkp, 4 * w)
            b.xor(u, u, v)
            b.sw(u, st, 4 * w)

    def sub_shift():
        """tmp = SubBytes(ShiftRows(state)); then copy back.

        The S-box scan alone is ~56 NVM accesses, more than half the
        worst-case capacitor budget (L011), so the stage is split into
        three regions: two 8-byte scan halves and the copy-back. The
        first half rides on the caller's region (the round marker in
        the loop, the last mix column in the final-round tail).
        """
        for out_i in range(16):
            if out_i == 8:
                b.checkpoint()
            b.lbu(u, st, shift_map[out_i])
            _emit_lookup(b, u, sboxr, u, t)
            b.sb(u, tm, out_i)
        b.checkpoint()
        for w in range(4):
            b.lw(u, tm, 4 * w)
            b.sw(u, st, 4 * w)

    def mix_columns_enc():
        tbl2, tbl3 = b.regs("tbl2", "tbl3")
        b.li(tbl2, t2)
        b.li(tbl3, t3)
        for c in range(4):
            b.checkpoint()  # per-column region: ~16 NVM accesses each
            b.lbu(a0, st, 4 * c)
            b.lbu(a1, st, 4 * c + 1)
            b.lbu(a2, st, 4 * c + 2)
            b.lbu(a3, st, 4 * c + 3)
            rows = [
                ((tbl2, a0), (tbl3, a1), (None, a2), (None, a3)),
                ((None, a0), (tbl2, a1), (tbl3, a2), (None, a3)),
                ((None, a0), (None, a1), (tbl2, a2), (tbl3, a3)),
                ((tbl3, a0), (None, a1), (None, a2), (tbl2, a3)),
            ]
            for ridx, terms in enumerate(rows):
                first = True
                for tbl, areg in terms:
                    if tbl is None:
                        val = areg
                    else:
                        _emit_lookup(b, v, tbl, areg, t)
                        val = v
                    if first:
                        b.mv(u, val)
                        first = False
                    else:
                        b.xor(u, u, val)
                b.sb(u, st, 4 * c + ridx)
        b.free(tbl2, tbl3)

    def mix_columns_dec():
        tA, tB, tC, tD = b.regs("t14", "t11", "t13", "t9")
        b.li(tA, mix_tables[0])
        b.li(tB, mix_tables[1])
        b.li(tC, mix_tables[2])
        b.li(tD, mix_tables[3])
        order = [tA, tB, tC, tD]
        for c in range(4):
            b.checkpoint()  # per-column region: ~24 NVM accesses each
            b.lbu(a0, st, 4 * c)
            b.lbu(a1, st, 4 * c + 1)
            b.lbu(a2, st, 4 * c + 2)
            b.lbu(a3, st, 4 * c + 3)
            regs_a = [a0, a1, a2, a3]
            for ridx in range(4):
                first = True
                for k in range(4):
                    tbl = order[(k - ridx) % 4]
                    _emit_lookup(b, v, tbl, regs_a[k], t)
                    if first:
                        b.mv(u, v)
                        first = False
                    else:
                        b.xor(u, u, v)
                b.sb(u, st, 4 * c + ridx)
        b.free(tA, tB, tC, tD)

    with b.for_range(blk, 0, nblocks):
        b.checkpoint()
        # load block into state
        for w in range(4):
            b.lw(u, inp, 4 * w)
            b.sw(u, st, 4 * w)
        b.addi(inp, inp, 16)
        if not decrypt:
            b.li(rkp, rk_addr)  # rk0
            add_round_key()
            with b.for_range(r, 0, 9):
                b.checkpoint()
                b.addi(rkp, rkp, 16)
                sub_shift()
                mix_columns_enc()
                add_round_key()
            sub_shift()
            b.addi(rkp, rkp, 16)  # rk10
            add_round_key()
        else:
            b.li(rkp, rk_addr + 160)  # rk10
            add_round_key()
            with b.for_range(r, 0, 9):
                b.checkpoint()
                b.addi(rkp, rkp, -16)
                sub_shift()
                add_round_key()
                mix_columns_dec()
            sub_shift()
            b.li(rkp, rk_addr)  # rk0
            add_round_key()
        for w in range(4):
            b.lw(u, st, 4 * w)
            b.sw(u, outp, 4 * w)
        b.addi(outp, outp, 16)
    b.halt()

    # AES updates its 16-byte state block in place every stage, so the
    # read-then-overwrite pattern (WAR, RMW, subword commits into words
    # the region read) is inherent to the kernel, not an oversight. On
    # every simulated design the checkpoint protocol snapshots dirty
    # cache lines together with register state and re-executes against
    # that snapshot, so in-place NVM updates inside a region stay
    # idempotent; rewriting the kernel to double-buffer the state would
    # change the access pattern the cache study measures.
    _WHY = ("in-place AES state update; regions re-execute against the "
            "checkpoint-snapshotted cache image, and double-buffering "
            "would distort the store locality under study")
    b.waive_lint("L009", _WHY)
    b.waive_lint("L010", _WHY)
    b.waive_lint("L012", _WHY)
    prog = b.build()
    exp_words = [int.from_bytes(expected[i:i + 4], "little")
                 for i in range(0, len(expected), 4)]
    prog.meta["suite"] = "mibench"
    prog.meta["checks"] = [(out_addr, exp_words)]
    return prog


def build_rijndael_e(scale: float = 1.0) -> Program:
    return _build(False, scale)


def build_rijndael_d(scale: float = 1.0) -> Program:
    return _build(True, scale)
