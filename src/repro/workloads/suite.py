"""Workload registry plumbing.

Each benchmark module exports ``build(scale: float = 1.0) -> Program``. The
returned program carries ``meta["checks"]`` - a list of ``(byte_addr,
expected_words)`` computed from a host-Python reference implementation - so
any simulation's final NVM image can be validated for algorithmic
correctness, and ``meta["suite"]`` naming its benchmark suite.

Workload sizes are chosen so a default run retires on the order of 1e5
dynamic instructions: large enough to exercise tens of power outages under
the RF traces, small enough that the full 23-app x 5-design sweeps finish
in minutes on one core.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field

from repro.errors import ConsistencyError
from repro.isa.program import Program


@dataclass
class Workload:
    """A named benchmark: lazy module import + cached builds per scale."""

    name: str
    suite: str
    module: str
    func: str = "build"
    _cache: dict[float, Program] = field(default_factory=dict, repr=False)

    def build(self, scale: float = 1.0) -> Program:
        """Assemble the kernel at the given size scale (cached)."""
        if scale not in self._cache:
            mod = importlib.import_module(self.module)
            prog = getattr(mod, self.func)(scale)
            prog.meta.setdefault("suite", self.suite)
            prog.meta["workload"] = self.name
            self._cache[scale] = prog
        return self._cache[scale]


def verify_checks(program: Program, memory_words: list[int]) -> None:
    """Validate a final memory image against the program's embedded checks.

    Raises :class:`ConsistencyError` on the first mismatch; silent success
    otherwise.
    """
    checks = program.meta.get("checks", [])
    if not checks:
        raise ConsistencyError(
            f"{program.name}: no embedded checks - refusing vacuous pass")
    for base_addr, expected in checks:
        for i, want in enumerate(expected):
            got = memory_words[(base_addr >> 2) + i]
            if got != want & 0xFFFFFFFF:
                raise ConsistencyError(
                    f"{program.name}: word at {base_addr + 4 * i:#x} is "
                    f"{got:#010x}, expected {want & 0xFFFFFFFF:#010x}")
