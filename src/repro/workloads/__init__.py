"""repro.workloads - the 23 MediaBench/MiBench benchmark kernels (§6.1).

Every kernel is a real implementation of the named algorithm written in the
builder DSL over deterministic synthetic inputs, with results verified
against a host-Python (or numpy/hashlib) reference embedded as
``program.meta["checks"]``.
"""

from __future__ import annotations

from repro.workloads.suite import Workload, verify_checks

_MEDIA = [
    "adpcmdecode", "adpcmencode", "epic", "g721decode", "g721encode",
    "gsmdecode", "gsmencode", "jpegdecode", "jpegencode", "mpeg2decode",
    "mpeg2encode", "pegwitdecrypt", "sha", "susancorners", "susanedges",
]
_MI = [
    "basicmath", "qsort", "dijkstra", "fft", "fft_i", "patricia",
    "rijndael_d", "rijndael_e",
]

# one module may implement both directions of a codec pair; map
# workload name -> (module subpath, builder function)
_MODULE_OVERRIDES = {
    "adpcmdecode": ("mediabench.adpcm", "build_adpcmdecode"),
    "adpcmencode": ("mediabench.adpcm", "build_adpcmencode"),
    "g721decode": ("mediabench.g721", "build_g721decode"),
    "g721encode": ("mediabench.g721", "build_g721encode"),
    "gsmdecode": ("mediabench.gsm", "build_gsmdecode"),
    "gsmencode": ("mediabench.gsm", "build_gsmencode"),
    "jpegdecode": ("mediabench.jpeg", "build_jpegdecode"),
    "jpegencode": ("mediabench.jpeg", "build_jpegencode"),
    "mpeg2decode": ("mediabench.mpeg2", "build_mpeg2decode"),
    "mpeg2encode": ("mediabench.mpeg2", "build_mpeg2encode"),
    "pegwitdecrypt": ("mediabench.pegwit", "build_pegwitdecrypt"),
    "susancorners": ("mediabench.susan", "build_susancorners"),
    "susanedges": ("mediabench.susan", "build_susanedges"),
    "fft": ("mibench.fft", "build_fft"),
    "fft_i": ("mibench.fft", "build_fft_i"),
    "rijndael_d": ("mibench.rijndael", "build_rijndael_d"),
    "rijndael_e": ("mibench.rijndael", "build_rijndael_e"),
}

MEDIABENCH = tuple(_MEDIA)
MIBENCH = tuple(_MI)
ALL_WORKLOADS = MEDIABENCH + MIBENCH

_REGISTRY: dict[str, Workload] = {}


def get_workload(name: str) -> Workload:
    """Look up a workload by its paper name (e.g. 'sha', 'fft_i')."""
    if name not in ALL_WORKLOADS:
        raise KeyError(f"unknown workload {name!r}; have {ALL_WORKLOADS}")
    if name not in _REGISTRY:
        suite = "mediabench" if name in _MEDIA else "mibench"
        subpath, func = _MODULE_OVERRIDES.get(name, (f"{suite}.{name}", "build"))
        _REGISTRY[name] = Workload(name, suite,
                                   f"repro.workloads.{subpath}", func)
    return _REGISTRY[name]


def build_workload(name: str, scale: float = 1.0):
    """Build the named workload's :class:`Program` (cached per scale)."""
    return get_workload(name).build(scale)


__all__ = [
    "ALL_WORKLOADS",
    "MEDIABENCH",
    "MIBENCH",
    "Workload",
    "build_workload",
    "get_workload",
    "verify_checks",
]
