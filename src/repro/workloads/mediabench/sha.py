"""sha - SHA-1 digest of a deterministic message (MediaBench).

The guest kernel implements the full SHA-1 compression: 16-word message
schedule expansion to 80 words (stored to memory, giving the store locality
the cache designs react to) and the four 20-round phases. The result is
checked against :mod:`hashlib` on the host.
"""

from __future__ import annotations

import hashlib
import struct

from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program
from repro.workloads.common import emit_rotl, rng, scaled

_H = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0)
_K = (0x5A827999, 0x6ED9EBA1, 0x8F1BBCDC, 0xCA62C1D6)


def _padded_message(nbytes: int) -> bytes:
    msg = bytes(rng(0x5AA5).randrange(256) for _ in range(nbytes))
    bitlen = 8 * len(msg)
    padded = msg + b"\x80" + b"\x00" * ((55 - len(msg)) % 64)
    return padded + struct.pack(">Q", bitlen)


def build(scale: float = 1.0) -> Program:
    nbytes = scaled(1400, scale, minimum=8)
    data = _padded_message(nbytes)
    nblocks = len(data) // 64
    # store as big-endian words (SHA-1 is big-endian; the guest works on
    # whole words so endianness is resolved at data-placement time)
    msg_words = [int.from_bytes(data[i:i + 4], "big")
                 for i in range(0, len(data), 4)]

    b = ProgramBuilder("sha")
    msg = b.data_words(msg_words, "msg")
    w_buf = b.space_words(80, "w")
    out = b.space_words(5, "digest")

    h0, h1, h2, h3, h4 = b.regs("h0", "h1", "h2", "h3", "h4")
    for reg, init in zip((h0, h1, h2, h3, h4), _H):
        b.li(reg, init)

    blk, i, t1, t2 = b.regs("blk", "i", "t1", "t2")
    wp, mp = b.regs("wp", "mp")
    b.li(mp, msg)

    with b.for_range(blk, 0, nblocks):
        b.checkpoint()
        # --- schedule: w[0..15] = block words ---
        b.li(wp, w_buf)
        with b.for_range(i, 0, 16):
            b.checkpoint()
            b.lw(t1, mp, 0)
            b.sw(t1, wp, 0)
            b.addi(mp, mp, 4)
            b.addi(wp, wp, 4)
        # --- expansion: w[i] = rotl1(w[i-3]^w[i-8]^w[i-14]^w[i-16]) ---
        with b.for_range(i, 16, 80):
            b.checkpoint()
            b.lw(t1, wp, -12)
            b.lw(t2, wp, -32)
            b.xor(t1, t1, t2)
            b.lw(t2, wp, -56)
            b.xor(t1, t1, t2)
            b.lw(t2, wp, -64)
            b.xor(t1, t1, t2)
            emit_rotl(b, t1, t1, 1, t2)
            b.sw(t1, wp, 0)
            b.addi(wp, wp, 4)
        # --- 80 rounds ---
        a, bb, c, d, e = b.regs("a", "b", "c", "d", "e")
        f, k = b.regs("f", "k")
        b.mv(a, h0)
        b.mv(bb, h1)
        b.mv(c, h2)
        b.mv(d, h3)
        b.mv(e, h4)
        b.li(wp, w_buf)
        with b.for_range(i, 0, 80):
            b.checkpoint()
            with b.if_else(i, "<", 20) as phase2plus:
                # f = (b & c) | (~b & d)
                b.and_(f, bb, c)
                b.not_(t2, bb)
                b.and_(t2, t2, d)
                b.or_(f, f, t2)
                b.li(k, _K[0])
                phase2plus()
                with b.if_else(i, "<", 40) as phase3plus:
                    b.xor(f, bb, c)
                    b.xor(f, f, d)
                    b.li(k, _K[1])
                    phase3plus()
                    with b.if_else(i, "<", 60) as phase4:
                        # f = (b & c) | (b & d) | (c & d)
                        b.and_(f, bb, c)
                        b.and_(t2, bb, d)
                        b.or_(f, f, t2)
                        b.and_(t2, c, d)
                        b.or_(f, f, t2)
                        b.li(k, _K[2])
                        phase4()
                        b.xor(f, bb, c)
                        b.xor(f, f, d)
                        b.li(k, _K[3])
            # temp = rotl5(a) + f + e + k + w[i]
            emit_rotl(b, t1, a, 5, t2)
            b.add(t1, t1, f)
            b.add(t1, t1, e)
            b.add(t1, t1, k)
            b.lw(t2, wp, 0)
            b.addi(wp, wp, 4)
            b.add(t1, t1, t2)
            b.mv(e, d)
            b.mv(d, c)
            emit_rotl(b, c, bb, 30, t2)
            b.mv(bb, a)
            b.mv(a, t1)
        b.add(h0, h0, a)
        b.add(h1, h1, bb)
        b.add(h2, h2, c)
        b.add(h3, h3, d)
        b.add(h4, h4, e)
        b.free(a, bb, c, d, e, f, k)

    for n, reg in enumerate((h0, h1, h2, h3, h4)):
        b.sw_addr(reg, out + 4 * n)
    b.halt()

    prog = b.build()
    raw = bytes(rng(0x5AA5).randrange(256) for _ in range(nbytes))
    digest = hashlib.sha1(raw).digest()
    expected = [int.from_bytes(digest[i:i + 4], "big") for i in range(0, 20, 4)]
    prog.meta["suite"] = "mediabench"
    prog.meta["checks"] = [(out, expected)]
    return prog
