"""MediaBench workload kernels."""
