"""epic - image pyramid coder (MediaBench).

EPIC's core: a separable binomial [1 4 6 4 1]/16 low-pass filter with
mirrored borders, 2:1 decimation into a two-level pyramid, and uniform
quantization of the detail (residual) band - the filter/downsample/quantize
chain that dominates the real epic encoder. Integer-exact host mirror.
"""

from __future__ import annotations

import math

from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program
from repro.workloads.common import rng

_KERNEL = [1, 4, 6, 4, 1]  # /16
_QSTEP = 8


def _image(w: int, h: int, seed: int) -> list[int]:
    rnd = rng(seed)
    img = []
    for y in range(h):
        for x in range(w):
            v = (128 + 60 * math.sin(0.21 * x) * math.cos(0.17 * y)
                 + rnd.randint(-10, 10))
            img.append(max(0, min(255, int(v))))
    return img


def _mirror(i: int, n: int) -> int:
    if i < 0:
        return -i
    if i >= n:
        return 2 * n - 2 - i
    return i


def _filter_rows(img: list[int], w: int, h: int) -> list[int]:
    out = [0] * (w * h)
    for y in range(h):
        for x in range(w):
            acc = 0
            for k in range(5):
                acc += _KERNEL[k] * img[y * w + _mirror(x + k - 2, w)]
            out[y * w + x] = acc >> 4
    return out


def _filter_cols(img: list[int], w: int, h: int) -> list[int]:
    out = [0] * (w * h)
    for y in range(h):
        for x in range(w):
            acc = 0
            for k in range(5):
                acc += _KERNEL[k] * img[_mirror(y + k - 2, h) * w + x]
            out[y * w + x] = acc >> 4
    return out


def _decimate(img: list[int], w: int, h: int) -> list[int]:
    return [img[y * w + x] for y in range(0, h, 2) for x in range(0, w, 2)]


def _quant_residual(img: list[int], low: list[int], w: int, h: int,
                    w2: int) -> list[int]:
    """Residual = pixel - upsampled(low); uniform mid-tread quantizer."""
    out = []
    for y in range(h):
        for x in range(w):
            up = low[(y // 2) * w2 + (x // 2)]
            r = img[y * w + x] - up
            if r >= 0:
                q = (r + _QSTEP // 2) // _QSTEP
            else:
                q = -((-r + _QSTEP // 2) // _QSTEP)
            out.append(q & 0xFFFFFFFF)
    return out


def pyramid_host(img: list[int], w: int, h: int):
    lp = _filter_cols(_filter_rows(img, w, h), w, h)
    lvl1 = _decimate(lp, w, h)
    w1, h1 = w // 2, h // 2
    res0 = _quant_residual(img, lvl1, w, h, w1)
    lp1 = _filter_cols(_filter_rows(lvl1, w1, h1), w1, h1)
    lvl2 = _decimate(lp1, w1, h1)
    res1 = _quant_residual(lvl1, lvl2, w1, h1, w1 // 2)
    return lvl1, res0, lvl2, res1


def _emit_filter(b, src_addr, dst_addr, w, h, horizontal, regs):
    """Separable 5-tap filter pass with mirrored borders."""
    y, x, k, acc, idx, t, u = regs
    n = w if horizontal else h
    with b.for_range(y, 0, h):
        b.checkpoint()
        with b.for_range(x, 0, w):
            b.checkpoint()
            b.li(acc, 0)
            for ki in range(5):
                # idx = mirror((x|y) + ki - 2, n)
                b.mv(idx, x if horizontal else y)
                if ki != 2:
                    b.addi(idx, idx, ki - 2)
                with b.if_(idx, "<", 0):
                    b.neg(idx, idx)
                b.li(t, n)
                with b.if_(idx, ">=", t):
                    b.li(t, 2 * n - 2)
                    b.sub(idx, t, idx)
                # u = src[y*w + idx] or src[idx*w + x]
                if horizontal:
                    b.li(t, w)
                    b.mul(t, y, t)
                    b.add(t, t, idx)
                else:
                    b.li(t, w)
                    b.mul(t, idx, t)
                    b.add(t, t, x)
                b.slli(t, t, 2)
                b.addi(t, t, src_addr)
                b.lw(u, t, 0)
                kcoef = _KERNEL[ki]
                if kcoef == 1:
                    b.add(acc, acc, u)
                elif kcoef == 4:
                    b.slli(u, u, 2)
                    b.add(acc, acc, u)
                else:  # 6 = 4 + 2
                    b.slli(t, u, 2)
                    b.add(acc, acc, t)
                    b.slli(t, u, 1)
                    b.add(acc, acc, t)
            b.srai(acc, acc, 4)
            b.li(t, w)
            b.mul(t, y, t)
            b.add(t, t, x)
            b.slli(t, t, 2)
            b.addi(t, t, dst_addr)
            b.sw(acc, t, 0)


def _emit_decimate(b, src_addr, dst_addr, w, h, regs):
    y, x, t, u = regs
    with b.for_range(y, 0, h // 2):
        b.checkpoint()
        with b.for_range(x, 0, w // 2):
            b.checkpoint()
            b.slli(t, y, 1)
            b.li(u, w)
            b.mul(t, t, u)
            b.slli(u, x, 1)
            b.add(t, t, u)
            b.slli(t, t, 2)
            b.addi(t, t, src_addr)
            b.lw(u, t, 0)
            b.li(t, w // 2)
            b.mul(t, y, t)
            b.add(t, t, x)
            b.slli(t, t, 2)
            b.addi(t, t, dst_addr)
            b.sw(u, t, 0)


def _emit_residual(b, img_addr, low_addr, out_addr, w, h, regs):
    y, x, t, u, v = regs
    with b.for_range(y, 0, h):
        b.checkpoint()
        with b.for_range(x, 0, w):
            b.checkpoint()
            b.li(t, w)
            b.mul(t, y, t)
            b.add(t, t, x)
            b.slli(t, t, 2)
            b.addi(t, t, img_addr)
            b.lw(u, t, 0)
            b.srli(t, y, 1)
            b.li(v, w // 2)
            b.mul(t, t, v)
            b.srli(v, x, 1)
            b.add(t, t, v)
            b.slli(t, t, 2)
            b.addi(t, t, low_addr)
            b.lw(v, t, 0)
            b.sub(u, u, v)
            # mid-tread quantizer, round half away from zero
            with b.if_else(u, ">=", 0) as negv:
                b.addi(u, u, _QSTEP // 2)
                b.srai(u, u, 3)
                negv()
                b.neg(u, u)
                b.addi(u, u, _QSTEP // 2)
                b.srai(u, u, 3)
                b.neg(u, u)
            b.li(t, w)
            b.mul(t, y, t)
            b.add(t, t, x)
            b.slli(t, t, 2)
            b.addi(t, t, out_addr)
            b.sw(u, t, 0)


def build(scale: float = 1.0) -> Program:
    side = 8 * max(2, int(round(3 * math.sqrt(scale))))  # 24 at scale 1
    w = h = side
    img = _image(w, h, 0xE71C)
    w1, h1 = w // 2, h // 2

    b = ProgramBuilder("epic")
    img_addr = b.data_words(img, "image")
    tmp_a = b.space_words(w * h, "tmp_a")
    tmp_b = b.space_words(w * h, "tmp_b")
    lvl1_addr = b.space_words(w1 * h1, "level1")
    res0_addr = b.space_words(w * h, "res0")
    lvl2_addr = b.space_words((w1 // 2) * (h1 // 2), "level2")
    res1_addr = b.space_words(w1 * h1, "res1")

    y, x, k, acc, idx, t, u, v = b.regs("y", "x", "k", "acc", "idx", "t",
                                        "u", "v")
    fregs = (y, x, k, acc, idx, t, u)

    _emit_filter(b, img_addr, tmp_a, w, h, True, fregs)
    _emit_filter(b, tmp_a, tmp_b, w, h, False, fregs)
    _emit_decimate(b, tmp_b, lvl1_addr, w, h, (y, x, t, u))
    _emit_residual(b, img_addr, lvl1_addr, res0_addr, w, h, (y, x, t, u, v))
    _emit_filter(b, lvl1_addr, tmp_a, w1, h1, True, fregs)
    _emit_filter(b, tmp_a, tmp_b, w1, h1, False, fregs)
    _emit_decimate(b, tmp_b, lvl2_addr, w1, h1, (y, x, t, u))
    _emit_residual(b, lvl1_addr, lvl2_addr, res1_addr, w1, h1,
                   (y, x, t, u, v))
    b.halt()

    prog = b.build()
    lvl1, res0, lvl2, res1 = pyramid_host(img, w, h)
    prog.meta["suite"] = "mediabench"
    prog.meta["checks"] = [
        (lvl1_addr, lvl1),
        (res0_addr, res0),
        (lvl2_addr, lvl2),
        (res1_addr, res1),
    ]
    return prog
