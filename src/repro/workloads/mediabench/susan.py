"""susancorners / susanedges - SUSAN feature detection (MediaBench).

The genuine SUSAN structure: for each interior pixel, sum a precomputed
brightness-similarity lookup (the exp((dI/t)^6) table, quantized to 0..100)
over the 37-pixel circular mask; pixels whose USAN area falls below the
geometric threshold (g = 3*max/4 for corners, g = max*3/4... edges use the
higher threshold) produce a response ``g - area``. Output is the response
map, checked against an integer-exact host mirror.
"""

from __future__ import annotations

import math

from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program
from repro.workloads.common import rng

#: the 37-offset circular mask of radius ~3.4 (classic SUSAN)
MASK = [(dx, dy) for dy in range(-3, 4) for dx in range(-3, 4)
        if dx * dx + dy * dy <= 11 and not (dx == 0 and dy == 0)]
assert len(MASK) == 36

_BT = 20  # brightness threshold


def make_similarity_table() -> list[int]:
    """LUT over dI in [-255, 255]: 100 * exp(-((dI/t)^6)), quantized."""
    table = []
    for d in range(-255, 256):
        table.append(int(round(100.0 * math.exp(-((d / _BT) ** 6)))))
    return table


SIM_TABLE = make_similarity_table()
_MAX_AREA = 100 * len(MASK)


def _image(w: int, h: int, seed: int) -> list[int]:
    rnd = rng(seed)
    img = []
    for y in range(h):
        for x in range(w):
            # blocks and gradients produce both corners and edges
            v = 40 if (x // 10 + y // 10) % 2 == 0 else 190
            v += int(12 * math.sin(0.4 * x))
            img.append(max(0, min(255, v + rnd.randint(-6, 6))))
    return img


def susan_host(img: list[int], w: int, h: int, corners: bool) -> list[int]:
    g = (_MAX_AREA * 3) // 4 if not corners else _MAX_AREA // 2
    out = [0] * (w * h)
    for y in range(3, h - 3):
        for x in range(3, w - 3):
            nucleus = img[y * w + x]
            area = 0
            for dx, dy in MASK:
                d = img[(y + dy) * w + (x + dx)] - nucleus
                area += SIM_TABLE[d + 255]
            if area < g:
                out[y * w + x] = g - area
    return out


def _build(corners: bool, scale: float) -> Program:
    side = max(12, int(round(26 * math.sqrt(scale))))
    w = h = side
    img = _image(w, h, 0x5A5 + corners)
    g = (_MAX_AREA * 3) // 4 if not corners else _MAX_AREA // 2

    name = "susancorners" if corners else "susanedges"
    b = ProgramBuilder(name)
    img_addr = b.data_words(img, "image")
    lut_addr = b.data_words(SIM_TABLE, "similarity")
    out_addr = b.space_words(w * h, "response")

    y, x, area, nuc = b.regs("y", "x", "area", "nuc")
    t, u, v, p = b.regs("t", "u", "v", "p")

    with b.for_range(y, 3, h - 3):
        b.checkpoint()
        with b.for_range(x, 3, w - 3):
            b.checkpoint()
            b.li(t, w)
            b.mul(p, y, t)
            b.add(p, p, x)
            b.slli(p, p, 2)
            b.addi(t, p, img_addr)
            b.lw(nuc, t, 0)
            b.li(area, 0)
            for scan_i, (dx, dy) in enumerate(MASK):
                if scan_i == len(MASK) // 2:
                    # One full unrolled 37-pixel scan overruns the
                    # capacitor budget (L011); the running area lives in
                    # a register, so a bare progress marker splits it.
                    b.checkpoint()
                off = (dy * w + dx) * 4
                b.addi(t, p, img_addr + off)
                b.lw(u, t, 0)
                b.sub(u, u, nuc)
                b.slli(u, u, 2)
                b.addi(u, u, lut_addr + 255 * 4)
                b.lw(u, u, 0)
                b.add(area, area, u)
            b.li(t, g)
            with b.if_(area, "<", t):
                b.sub(u, t, area)
                b.addi(t, p, out_addr)
                b.sw(u, t, 0)
    b.halt()

    b.waive_lint(
        "L013",
        "the mid-scan checkpoint commits register progress (the area "
        "accumulator and loop counters); no NVM store precedes it by "
        "design, so the 'saves no stores' heuristic does not apply")
    prog = b.build()
    prog.meta["suite"] = "mediabench"
    prog.meta["checks"] = [(out_addr, susan_host(img, w, h, corners))]
    return prog


def build_susancorners(scale: float = 1.0) -> Program:
    return _build(True, scale)


def build_susanedges(scale: float = 1.0) -> Program:
    return _build(False, scale)
