"""adpcmencode / adpcmdecode - IMA ADPCM speech codec (MediaBench).

Full IMA/DVI ADPCM: the standard 89-entry step-size table and index
adaptation table, 16-bit PCM in, 4-bit codes out (encode) and back
(decode). Input is a deterministic synthetic speech-like signal (summed
sines + noise). Host mirrors are integer-exact.
"""

from __future__ import annotations

import math

from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program
from repro.workloads.common import rng, scaled

STEP_TABLE = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37, 41,
    45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130, 143, 157, 173, 190,
    209, 230, 253, 279, 307, 337, 371, 408, 449, 494, 544, 598, 658, 724,
    796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066, 2272,
    2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894, 6484, 7132,
    7845, 8630, 9493, 10442, 11487, 12635, 13899, 15289, 16818, 18500,
    20350, 22385, 24623, 27086, 29794, 32767,
]
INDEX_TABLE = [-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8]


def _signal(n: int) -> list[int]:
    rnd = rng(0xADC)
    out = []
    for i in range(n):
        v = (6000 * math.sin(i * 0.05) + 2500 * math.sin(i * 0.23 + 1.0)
             + rnd.randint(-700, 700))
        out.append(max(-32768, min(32767, int(v))))
    return out


def encode_host(samples: list[int]) -> tuple[list[int], int, int]:
    """IMA ADPCM encode; returns (codes, final_pred, final_index)."""
    pred, index = 0, 0
    codes = []
    for s in samples:
        step = STEP_TABLE[index]
        diff = s - pred
        code = 0
        if diff < 0:
            code = 8
            diff = -diff
        if diff >= step:
            code |= 4
            diff -= step
        if diff >= step >> 1:
            code |= 2
            diff -= step >> 1
        if diff >= step >> 2:
            code |= 1
        # reconstruct predictor exactly as the decoder will
        diffq = step >> 3
        if code & 4:
            diffq += step
        if code & 2:
            diffq += step >> 1
        if code & 1:
            diffq += step >> 2
        pred = pred - diffq if code & 8 else pred + diffq
        pred = max(-32768, min(32767, pred))
        index = max(0, min(88, index + INDEX_TABLE[code]))
        codes.append(code)
    return codes, pred, index


def decode_host(codes: list[int]) -> list[int]:
    pred, index = 0, 0
    out = []
    for code in codes:
        step = STEP_TABLE[index]
        diffq = step >> 3
        if code & 4:
            diffq += step
        if code & 2:
            diffq += step >> 1
        if code & 1:
            diffq += step >> 2
        pred = pred - diffq if code & 8 else pred + diffq
        pred = max(-32768, min(32767, pred))
        index = max(0, min(88, index + INDEX_TABLE[code]))
        out.append(pred)
    return out


def _clamp16(b, reg, t):
    """reg = clamp(reg, -32768, 32767) (signed), clobbers t."""
    b.li(t, 32767)
    with b.if_(reg, ">", t):
        b.mv(reg, t)
    b.li(t, -32768)
    with b.if_(reg, "<", t):
        b.mv(reg, t)


def _emit_reconstruct(b, pred, code, step, diffq, t):
    """Shared decoder arithmetic: update pred from code/step."""
    b.srli(diffq, step, 3)
    b.andi(t, code, 4)
    with b.if_(t, "!=", 0):
        b.add(diffq, diffq, step)
    b.andi(t, code, 2)
    with b.if_(t, "!=", 0):
        b.srli(t, step, 1)
        b.add(diffq, diffq, t)
    b.andi(t, code, 1)
    with b.if_(t, "!=", 0):
        b.srli(t, step, 2)
        b.add(diffq, diffq, t)
    b.andi(t, code, 8)
    with b.if_else(t, "!=", 0) as plus:
        b.sub(pred, pred, diffq)
        plus()
        b.add(pred, pred, diffq)
    _clamp16(b, pred, t)


def _emit_index_update(b, index, code, t, u):
    """index = clamp(index + INDEX_TABLE[code], 0, 88) via table load."""
    b.slli(t, code, 2)
    b.li(u, b.symbol("index_table"))
    b.add(t, t, u)
    b.lw(t, t, 0)
    b.add(index, index, t)
    with b.if_(index, "<", 0):
        b.li(index, 0)
    b.li(t, 88)
    with b.if_(index, ">", t):
        b.mv(index, t)


def build_adpcmencode(scale: float = 1.0) -> Program:
    n = scaled(2400, scale, minimum=2)
    samples = _signal(n)

    b = ProgramBuilder("adpcmencode")
    b.data_words([v & 0xFFFFFFFF for v in STEP_TABLE], "step_table")
    b.data_words([v & 0xFFFFFFFF for v in INDEX_TABLE], "index_table")
    in_addr = b.data_words([s & 0xFFFFFFFF for s in samples], "pcm_in")
    out_addr = b.space_words(n, "codes_out")

    i, s, pred, index = b.regs("i", "s", "pred", "index")
    step, diff, code, diffq = b.regs("step", "diff", "code", "diffq")
    t, u, inp, outp = b.regs("t", "u", "inp", "outp")

    b.li(pred, 0)
    b.li(index, 0)
    b.li(inp, in_addr)
    b.li(outp, out_addr)
    with b.for_range(i, 0, n):
        b.checkpoint()
        b.lw(s, inp, 0)
        b.addi(inp, inp, 4)
        # step = STEP_TABLE[index]
        b.slli(t, index, 2)
        b.li(u, b.symbol("step_table"))
        b.add(t, t, u)
        b.lw(step, t, 0)
        b.sub(diff, s, pred)
        b.li(code, 0)
        with b.if_(diff, "<", 0):
            b.li(code, 8)
            b.neg(diff, diff)
        with b.if_(diff, ">=", step):
            b.ori(code, code, 4)
            b.sub(diff, diff, step)
        b.srli(t, step, 1)
        with b.if_(diff, ">=", t):
            b.ori(code, code, 2)
            b.sub(diff, diff, t)
        b.srli(t, step, 2)
        with b.if_(diff, ">=", t):
            b.ori(code, code, 1)
        _emit_reconstruct(b, pred, code, step, diffq, t)
        _emit_index_update(b, index, code, t, u)
        b.sw(code, outp, 0)
        b.addi(outp, outp, 4)
    b.halt()

    prog = b.build()
    codes, _, _ = encode_host(samples)
    prog.meta["suite"] = "mediabench"
    prog.meta["checks"] = [(out_addr, codes)]
    return prog


def build_adpcmdecode(scale: float = 1.0) -> Program:
    n = scaled(2600, scale, minimum=2)
    codes, _, _ = encode_host(_signal(n))

    b = ProgramBuilder("adpcmdecode")
    b.data_words([v & 0xFFFFFFFF for v in STEP_TABLE], "step_table")
    b.data_words([v & 0xFFFFFFFF for v in INDEX_TABLE], "index_table")
    in_addr = b.data_words(codes, "codes_in")
    out_addr = b.space_words(n, "pcm_out")

    i, pred, index = b.regs("i", "pred", "index")
    step, code, diffq = b.regs("step", "code", "diffq")
    t, u, inp, outp = b.regs("t", "u", "inp", "outp")

    b.li(pred, 0)
    b.li(index, 0)
    b.li(inp, in_addr)
    b.li(outp, out_addr)
    with b.for_range(i, 0, n):
        b.checkpoint()
        b.lw(code, inp, 0)
        b.addi(inp, inp, 4)
        b.slli(t, index, 2)
        b.li(u, b.symbol("step_table"))
        b.add(t, t, u)
        b.lw(step, t, 0)
        _emit_reconstruct(b, pred, code, step, diffq, t)
        _emit_index_update(b, index, code, t, u)
        b.sw(pred, outp, 0)
        b.addi(outp, outp, 4)
    b.halt()

    prog = b.build()
    pcm = decode_host(codes)
    prog.meta["suite"] = "mediabench"
    prog.meta["checks"] = [(out_addr, [v & 0xFFFFFFFF for v in pcm])]
    return prog
