"""mpeg2encode / mpeg2decode - MPEG-2 motion kernels (MediaBench).

* **encode**: full-search block motion estimation - for each 16x16
  macroblock, scan a +/-R pixel window in the reference frame and emit the
  (dx, dy) minimizing the sum of absolute differences, plus the SAD value.
  This load-dominated search is mpeg2encode's hot loop.
* **decode**: motion-compensated reconstruction - copy the best-match
  reference block and add a quantized residual, with saturation.

Both integer-exact against host mirrors.
"""

from __future__ import annotations

import math

from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program
from repro.workloads.common import rng, scaled

_MB = 16


def _frame(w: int, h: int, seed: int) -> list[int]:
    rnd = rng(seed)
    return [max(0, min(255, int(120 + 70 * math.sin(0.13 * x + 0.21 * y)
                                + rnd.randint(-8, 8))))
            for y in range(h) for x in range(w)]


def _shifted_frame(ref: list[int], w: int, h: int, seed: int) -> list[int]:
    """Current frame = reference shifted by a couple of pixels + noise."""
    rnd = rng(seed)
    out = []
    for y in range(h):
        for x in range(w):
            sx = min(w - 1, max(0, x - 2))
            sy = min(h - 1, max(0, y - 1))
            out.append(max(0, min(255, ref[sy * w + sx]
                                  + rnd.randint(-3, 3))))
    return out


def motion_search_host(cur: list[int], ref: list[int], w: int,
                       mbs: list[tuple[int, int]], radius: int):
    results = []
    for (mx, my) in mbs:
        best = (1 << 30, 0, 0)
        for dy in range(-radius, radius + 1):
            for dx in range(-radius, radius + 1):
                sad = 0
                for r in range(_MB):
                    base_c = (my + r) * w + mx
                    base_r = (my + dy + r) * w + mx + dx
                    for c in range(_MB):
                        d = cur[base_c + c] - ref[base_r + c]
                        sad += d if d >= 0 else -d
                if sad < best[0]:
                    best = (sad, dx, dy)
        results.append(best)
    return results


def motion_comp_host(ref: list[int], residual: list[int], w: int,
                     mbs: list[tuple[int, int]],
                     vecs: list[tuple[int, int]]) -> list[int]:
    out = []
    for (mx, my), (dx, dy) in zip(mbs, vecs):
        for r in range(_MB):
            for c in range(_MB):
                v = (ref[(my + dy + r) * w + mx + dx + c]
                     + residual[len(out)])
                out.append(max(0, min(255, v)))
    return out


def build_mpeg2encode(scale: float = 1.0) -> Program:
    radius = 2
    n_mbs = scaled(3, scale, minimum=1)
    w = h = 48
    ref = _frame(w, h, 0x3E9)
    cur = _shifted_frame(ref, w, h, 0x3EA)
    rnd = rng(0x3EB)
    mbs = [(rnd.randint(radius, w - _MB - radius),
            rnd.randint(radius, h - _MB - radius)) for _ in range(n_mbs)]

    b = ProgramBuilder("mpeg2encode")
    ref_addr = b.data_words(ref, "ref")
    cur_addr = b.data_words(cur, "cur")
    mb_addr = b.data_words([v for mb in mbs for v in mb], "mbs")
    out_addr = b.space_words(3 * n_mbs, "vectors")  # sad, dx, dy per MB

    mb, dx, dy, r, c = b.regs("mb", "dx", "dy", "r", "c")
    mx, my, sad, best = b.regs("mx", "my", "sad", "best")
    bdx, bdy, t, u, v = b.regs("bdx", "bdy", "t", "u", "v")
    cp, rp = b.regs("cp", "rp")

    with b.for_range(mb, 0, n_mbs):
        b.checkpoint()
        b.slli(t, mb, 3)
        b.addi(t, t, mb_addr)
        b.lw(mx, t, 0)
        b.lw(my, t, 4)
        b.li(best, 1 << 30)
        b.li(bdx, 0)
        b.li(bdy, 0)
        with b.for_range(dy, -radius, radius + 1):
            b.checkpoint()
            with b.for_range(dx, -radius, radius + 1):
                b.checkpoint()
                b.li(sad, 0)
                with b.for_range(r, 0, _MB):
                    b.checkpoint()
                    # cp = &cur[(my+r)*w + mx]
                    b.add(t, my, r)
                    b.li(u, w)
                    b.mul(t, t, u)
                    b.add(t, t, mx)
                    b.slli(t, t, 2)
                    b.addi(cp, t, cur_addr)
                    # rp = &ref[(my+dy+r)*w + mx+dx]
                    b.add(t, my, dy)
                    b.add(t, t, r)
                    b.li(u, w)
                    b.mul(t, t, u)
                    b.add(t, t, mx)
                    b.add(t, t, dx)
                    b.slli(t, t, 2)
                    b.addi(rp, t, ref_addr)
                    with b.for_range(c, 0, _MB):
                        b.checkpoint()
                        b.lw(u, cp, 0)
                        b.lw(v, rp, 0)
                        b.addi(cp, cp, 4)
                        b.addi(rp, rp, 4)
                        b.sub(u, u, v)
                        with b.if_(u, "<", 0):
                            b.neg(u, u)
                        b.add(sad, sad, u)
                with b.if_(sad, "<", best):
                    b.mv(best, sad)
                    b.mv(bdx, dx)
                    b.mv(bdy, dy)
        b.slli(t, mb, 2)
        b.li(u, 3)
        b.mul(t, t, u)
        b.addi(t, t, out_addr)
        b.sw(best, t, 0)
        b.sw(bdx, t, 4)
        b.sw(bdy, t, 8)
    b.halt()

    b.waive_lint(
        "L013",
        "loop-head checkpoints in register-only regions still commit "
        "induction and accumulator registers; no NVM store precedes "
        "them by design")
    prog = b.build()
    expected = []
    for sad, dx, dy in motion_search_host(cur, ref, w, mbs, radius):
        expected += [sad, dx & 0xFFFFFFFF, dy & 0xFFFFFFFF]
    prog.meta["suite"] = "mediabench"
    prog.meta["checks"] = [(out_addr, expected)]
    return prog


def build_mpeg2decode(scale: float = 1.0) -> Program:
    n_mbs = scaled(14, scale, minimum=1)
    w = h = 48
    ref = _frame(w, h, 0x3D9)
    rnd = rng(0x3DA)
    mbs = [(rnd.randint(4, w - _MB - 4), rnd.randint(4, h - _MB - 4))
           for _ in range(n_mbs)]
    vecs = [(rnd.randint(-3, 3), rnd.randint(-3, 3)) for _ in range(n_mbs)]
    residual = [rnd.randint(-24, 24) for _ in range(n_mbs * _MB * _MB)]

    b = ProgramBuilder("mpeg2decode")
    ref_addr = b.data_words(ref, "ref")
    mb_addr = b.data_words([v for mb in mbs for v in mb], "mbs")
    vec_addr = b.data_words([v & 0xFFFFFFFF for vec in vecs for v in vec],
                            "vectors")
    res_addr = b.data_words([v & 0xFFFFFFFF for v in residual], "residual")
    out_addr = b.space_words(n_mbs * _MB * _MB, "recon")

    mb, r, c, mx, my = b.regs("mb", "r", "c", "mx", "my")
    dx, dy, t, u, v = b.regs("dx", "dy", "t", "u", "v")
    rp, resp, outp = b.regs("rp", "resp", "outp")

    b.li(resp, res_addr)
    b.li(outp, out_addr)
    with b.for_range(mb, 0, n_mbs):
        b.checkpoint()
        b.slli(t, mb, 3)
        b.addi(t, t, mb_addr)
        b.lw(mx, t, 0)
        b.lw(my, t, 4)
        b.slli(t, mb, 3)
        b.addi(t, t, vec_addr)
        b.lw(dx, t, 0)
        b.lw(dy, t, 4)
        with b.for_range(r, 0, _MB):
            b.checkpoint()
            b.add(t, my, dy)
            b.add(t, t, r)
            b.li(u, w)
            b.mul(t, t, u)
            b.add(t, t, mx)
            b.add(t, t, dx)
            b.slli(t, t, 2)
            b.addi(rp, t, ref_addr)
            with b.for_range(c, 0, _MB):
                b.checkpoint()
                b.lw(u, rp, 0)
                b.addi(rp, rp, 4)
                b.lw(v, resp, 0)
                b.addi(resp, resp, 4)
                b.add(u, u, v)
                with b.if_(u, "<", 0):
                    b.li(u, 0)
                b.li(t, 255)
                with b.if_(u, ">", t):
                    b.mv(u, t)
                b.sw(u, outp, 0)
                b.addi(outp, outp, 4)
    b.halt()

    prog = b.build()
    expected = motion_comp_host(ref, residual, w, mbs, vecs)
    prog.meta["suite"] = "mediabench"
    prog.meta["checks"] = [(out_addr, expected)]
    return prog
