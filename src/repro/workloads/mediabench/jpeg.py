"""jpegencode / jpegdecode - JPEG 8x8 block transform coding (MediaBench).

The compute core of cjpeg/djpeg: per 8x8 block, a fixed-point (Q12) 2-D
DCT via two matrix passes, quantization against the standard JPEG luminance
table, and zigzag reordering - and the inverse chain for decode. All guest
arithmetic is integer-exact against the host mirror.
"""

from __future__ import annotations

import math

from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program
from repro.workloads.common import rng, scaled

_Q = 12  # fixed-point fraction bits for the DCT basis

# standard JPEG luminance quantization table (Annex K)
QTABLE = [
    16, 11, 10, 16, 24, 40, 51, 61,
    12, 12, 14, 19, 26, 58, 60, 55,
    14, 13, 16, 24, 40, 57, 69, 56,
    14, 17, 22, 29, 51, 87, 80, 62,
    18, 22, 37, 56, 68, 109, 103, 77,
    24, 35, 55, 64, 81, 104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101,
    72, 92, 95, 98, 112, 100, 103, 99,
]

ZIGZAG = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6, 7, 14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
]

#: Q12 DCT-II basis: C[k][n] = s(k) * cos((2n+1) k pi / 16)
DCT_C = [[int(round((math.sqrt(0.125) if k == 0 else 0.5)
                    * math.cos((2 * n + 1) * k * math.pi / 16) * (1 << _Q)))
          for n in range(8)] for k in range(8)]


def _blocks(nblocks: int, seed: int) -> list[list[int]]:
    rnd = rng(seed)
    out = []
    for _ in range(nblocks):
        base = rnd.randint(40, 200)
        blk = []
        for r in range(8):
            for c in range(8):
                v = base + int(28 * math.sin(0.7 * r) * math.cos(0.9 * c))
                blk.append(max(0, min(255, v + rnd.randint(-12, 12))))
        out.append(blk)
    return out


def _matmul_q12_left(coef: list[list[int]], x: list[int]) -> list[int]:
    """y = coef @ x (8x8), with arithmetic >> Q after each dot product."""
    y = [0] * 64
    for i in range(8):
        for j in range(8):
            acc = 0
            for k in range(8):
                acc += coef[i][k] * x[8 * k + j]
            y[8 * i + j] = acc >> _Q
    return y


def _matmul_q12_right(x: list[int], coef: list[list[int]]) -> list[int]:
    """y = x @ coef^T: y[i][j] = sum_k x[i][k] * coef[j][k]."""
    y = [0] * 64
    for i in range(8):
        for j in range(8):
            acc = 0
            for k in range(8):
                acc += x[8 * i + k] * coef[j][k]
            y[8 * i + j] = acc >> _Q
    return y


def dct2_host(block: list[int]) -> list[int]:
    centered = [v - 128 for v in block]
    return _matmul_q12_right(_matmul_q12_left(DCT_C, centered), DCT_C)


def idct2_host(coeffs: list[int]) -> list[int]:
    ct = [[DCT_C[k][n] for k in range(8)] for n in range(8)]  # transpose
    spatial = _matmul_q12_right(_matmul_q12_left(ct, coeffs), ct)
    return [max(0, min(255, v + 128)) for v in spatial]


def _quant(v: int, q: int) -> int:
    # round-half-away-from-zero division, like jpeglib's DIVIDE_BY
    if v >= 0:
        return (v + (q >> 1)) // q
    return -((-v + (q >> 1)) // q)


def encode_host(blocks: list[list[int]]) -> list[list[int]]:
    out = []
    for blk in blocks:
        f = dct2_host(blk)
        qz = [_quant(f[i], QTABLE[i]) for i in range(64)]
        out.append([qz[ZIGZAG[i]] & 0xFFFFFFFF for i in range(64)])
    return out


def decode_host(streams: list[list[int]]) -> list[list[int]]:
    out = []
    for zz in streams:
        qz = [0] * 64
        for i in range(64):
            v = zz[i]
            qz[ZIGZAG[i]] = v - (1 << 32) if v & 0x80000000 else v
        coeffs = [qz[i] * QTABLE[i] for i in range(64)]
        out.append(idct2_host(coeffs))
    return out


def _emit_matmul_left(b, coef_addr, x_addr, y_addr, regs):
    """y = coef @ x with >> Q; all operands are 64-word guest arrays."""
    i, j, k, acc, t, u, v = regs
    with b.for_range(i, 0, 8):
        b.checkpoint()
        with b.for_range(j, 0, 8):
            b.checkpoint()
            b.li(acc, 0)
            with b.for_range(k, 0, 8):
                b.checkpoint()
                # coef[i*8+k]
                b.slli(t, i, 3)
                b.add(t, t, k)
                b.slli(t, t, 2)
                b.addi(t, t, coef_addr)
                b.lw(u, t, 0)
                # x[k*8+j]
                b.slli(t, k, 3)
                b.add(t, t, j)
                b.slli(t, t, 2)
                b.addi(t, t, x_addr)
                b.lw(v, t, 0)
                b.mul(u, u, v)
                b.add(acc, acc, u)
            b.srai(acc, acc, _Q)
            b.slli(t, i, 3)
            b.add(t, t, j)
            b.slli(t, t, 2)
            b.addi(t, t, y_addr)
            b.sw(acc, t, 0)


def _emit_matmul_right(b, x_addr, coef_addr, y_addr, regs):
    """y[i][j] = (sum_k x[i][k] * coef[j*8+k]) >> Q."""
    i, j, k, acc, t, u, v = regs
    with b.for_range(i, 0, 8):
        b.checkpoint()
        with b.for_range(j, 0, 8):
            b.checkpoint()
            b.li(acc, 0)
            with b.for_range(k, 0, 8):
                b.checkpoint()
                b.slli(t, i, 3)
                b.add(t, t, k)
                b.slli(t, t, 2)
                b.addi(t, t, x_addr)
                b.lw(u, t, 0)
                b.slli(t, j, 3)
                b.add(t, t, k)
                b.slli(t, t, 2)
                b.addi(t, t, coef_addr)
                b.lw(v, t, 0)
                b.mul(u, u, v)
                b.add(acc, acc, u)
            b.srai(acc, acc, _Q)
            b.slli(t, i, 3)
            b.add(t, t, j)
            b.slli(t, t, 2)
            b.addi(t, t, y_addr)
            b.sw(acc, t, 0)


def build_jpegencode(scale: float = 1.0) -> Program:
    nblocks = scaled(9, scale, minimum=1)
    blocks = _blocks(nblocks, 0x19E6)

    b = ProgramBuilder("jpegencode")
    coef_addr = b.data_words(
        [DCT_C[i][j] & 0xFFFFFFFF for i in range(8) for j in range(8)], "dct")
    q_addr = b.data_words(QTABLE, "qtable")
    zz_addr = b.data_words(ZIGZAG, "zigzag")
    in_addr = b.data_words(
        [v for blk in blocks for v in blk], "pixels")
    out_addr = b.space_words(64 * nblocks, "coded")
    work = b.space_words(64, "work")
    tmp = b.space_words(64, "tmp")

    blk, i, j, k = b.regs("blk", "i", "j", "k")
    acc, t, u, v = b.regs("acc", "t", "u", "v")
    inp, outp = b.regs("inp", "outp")
    mm_regs = (i, j, k, acc, t, u, v)

    b.li(inp, in_addr)
    b.li(outp, out_addr)
    with b.for_range(blk, 0, nblocks):
        b.checkpoint()
        # center into work
        with b.for_range(i, 0, 64):
            b.checkpoint()
            b.slli(t, i, 2)
            b.add(t, t, inp)
            b.lw(u, t, 0)
            b.addi(u, u, -128)
            b.slli(t, i, 2)
            b.addi(t, t, work)
            b.sw(u, t, 0)
        _emit_matmul_left(b, coef_addr, work, tmp, mm_regs)
        _emit_matmul_right(b, tmp, coef_addr, work, mm_regs)
        # quantize + zigzag: out[i] = quant(work[zz[i]])
        with b.for_range(i, 0, 64):
            b.checkpoint()
            b.slli(t, i, 2)
            b.addi(t, t, zz_addr)
            b.lw(k, t, 0)      # source index
            b.slli(t, k, 2)
            b.addi(t, t, work)
            b.lw(u, t, 0)      # coefficient
            b.slli(t, k, 2)
            b.addi(t, t, q_addr)
            b.lw(v, t, 0)      # quantizer
            # round-half-away division
            b.srli(t, v, 1)
            with b.if_else(u, ">=", 0) as negv:
                b.add(u, u, t)
                b.div(u, u, v)
                negv()
                b.neg(u, u)
                b.add(u, u, t)
                b.div(u, u, v)
                b.neg(u, u)
            b.slli(t, i, 2)
            b.add(t, t, outp)
            b.sw(u, t, 0)
        b.addi(inp, inp, 256)
        b.addi(outp, outp, 256)
    b.halt()

    b.waive_lint(
        "L013",
        "loop-head checkpoints in register-only regions still commit "
        "induction and accumulator registers; no NVM store precedes "
        "them by design")
    prog = b.build()
    expected = [w for s in encode_host(blocks) for w in s]
    prog.meta["suite"] = "mediabench"
    prog.meta["checks"] = [(out_addr, expected)]
    return prog


def build_jpegdecode(scale: float = 1.0) -> Program:
    nblocks = scaled(9, scale, minimum=1)
    blocks = _blocks(nblocks, 0x19D6)
    streams = encode_host(blocks)

    b = ProgramBuilder("jpegdecode")
    # transposed basis for the inverse passes
    ct = [[DCT_C[k][n] & 0xFFFFFFFF for k in range(8)] for n in range(8)]
    coef_addr = b.data_words([ct[i][j] for i in range(8) for j in range(8)],
                             "idct")
    q_addr = b.data_words(QTABLE, "qtable")
    zz_addr = b.data_words(ZIGZAG, "zigzag")
    in_addr = b.data_words([w for s in streams for w in s], "coded")
    out_addr = b.space_words(64 * nblocks, "pixels")
    work = b.space_words(64, "work")
    tmp = b.space_words(64, "tmp")

    blk, i, j, k = b.regs("blk", "i", "j", "k")
    acc, t, u, v = b.regs("acc", "t", "u", "v")
    inp, outp = b.regs("inp", "outp")
    mm_regs = (i, j, k, acc, t, u, v)

    b.li(inp, in_addr)
    b.li(outp, out_addr)
    with b.for_range(blk, 0, nblocks):
        b.checkpoint()
        # dezigzag + dequantize into work
        with b.for_range(i, 0, 64):
            b.checkpoint()
            b.slli(t, i, 2)
            b.add(t, t, inp)
            b.lw(u, t, 0)      # zz value
            b.slli(t, i, 2)
            b.addi(t, t, zz_addr)
            b.lw(k, t, 0)      # dest index
            b.slli(t, k, 2)
            b.addi(t, t, q_addr)
            b.lw(v, t, 0)
            b.mul(u, u, v)
            b.slli(t, k, 2)
            b.addi(t, t, work)
            b.sw(u, t, 0)
        _emit_matmul_left(b, coef_addr, work, tmp, mm_regs)
        _emit_matmul_right(b, tmp, coef_addr, work, mm_regs)
        # +128, clamp to [0,255], store
        with b.for_range(i, 0, 64):
            b.checkpoint()
            b.slli(t, i, 2)
            b.addi(t, t, work)
            b.lw(u, t, 0)
            b.addi(u, u, 128)
            with b.if_(u, "<", 0):
                b.li(u, 0)
            b.li(t, 255)
            with b.if_(u, ">", t):
                b.mv(u, t)
            b.slli(t, i, 2)
            b.add(t, t, outp)
            b.sw(u, t, 0)
        b.addi(inp, inp, 256)
        b.addi(outp, outp, 256)
    b.halt()

    b.waive_lint(
        "L013",
        "loop-head checkpoints in register-only regions still commit "
        "induction and accumulator registers; no NVM store precedes "
        "them by design")
    prog = b.build()
    expected = [v for blk in decode_host(streams) for v in blk]
    prog.meta["suite"] = "mediabench"
    prog.meta["checks"] = [(out_addr, expected)]
    return prog
