"""pegwitdecrypt - block-cipher decryption kernel (MediaBench).

Pegwit's bulk-decryption path applies its symmetric "square" block cipher
across the message. We substitute XTEA (64-bit blocks, 32 rounds, 128-bit
key) as the cipher core - same structure (rounds of add/xor/shift keyed by
a schedule) and the same memory behavior (streaming blocks through a
register-resident round function); DESIGN.md records the substitution.
The guest decrypts a ciphertext produced on the host and must recover the
original plaintext bit-exactly.
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program
from repro.workloads.common import rng, scaled

_DELTA = 0x9E3779B9
_ROUNDS = 32
_U32 = 0xFFFFFFFF


def xtea_encrypt(v0: int, v1: int, key: list[int]) -> tuple[int, int]:
    s = 0
    for _ in range(_ROUNDS):
        v0 = (v0 + ((((v1 << 4) ^ (v1 >> 5)) + v1)
                    ^ (s + key[s & 3]))) & _U32
        s = (s + _DELTA) & _U32
        v1 = (v1 + ((((v0 << 4) ^ (v0 >> 5)) + v0)
                    ^ (s + key[(s >> 11) & 3]))) & _U32
    return v0, v1


def xtea_decrypt(v0: int, v1: int, key: list[int]) -> tuple[int, int]:
    s = (_DELTA * _ROUNDS) & _U32
    for _ in range(_ROUNDS):
        v1 = (v1 - ((((v0 << 4) ^ (v0 >> 5)) + v0)
                    ^ (s + key[(s >> 11) & 3]))) & _U32
        s = (s - _DELTA) & _U32
        v0 = (v0 - ((((v1 << 4) ^ (v1 >> 5)) + v1)
                    ^ (s + key[s & 3]))) & _U32
    return v0, v1


def build_pegwitdecrypt(scale: float = 1.0) -> Program:
    nblocks = scaled(110, scale, minimum=1)
    rnd = rng(0x9E6)
    key = [rnd.getrandbits(32) for _ in range(4)]
    plain = [rnd.getrandbits(32) for _ in range(2 * nblocks)]
    cipher = []
    for i in range(nblocks):
        c0, c1 = xtea_encrypt(plain[2 * i], plain[2 * i + 1], key)
        cipher += [c0, c1]

    b = ProgramBuilder("pegwitdecrypt")
    key_addr = b.data_words(key, "key")
    in_addr = b.data_words(cipher, "cipher")
    out_addr = b.space_words(2 * nblocks, "plain")

    blk, i, v0, v1, s = b.regs("blk", "i", "v0", "v1", "s")
    t, u, kp, inp, outp = b.regs("t", "u", "kp", "inp", "outp")

    b.li(kp, key_addr)
    b.li(inp, in_addr)
    b.li(outp, out_addr)

    def mix(src):
        """t = ((src << 4) ^ (src >> 5)) + src."""
        b.slli(t, src, 4)
        b.srli(u, src, 5)
        b.xor(t, t, u)
        b.add(t, t, src)

    with b.for_range(blk, 0, nblocks):
        b.checkpoint()
        b.lw(v0, inp, 0)
        b.lw(v1, inp, 4)
        b.addi(inp, inp, 8)
        b.li(s, (_DELTA * _ROUNDS) & _U32)
        with b.for_range(i, 0, _ROUNDS):
            b.checkpoint()
            # v1 -= (((v0<<4)^(v0>>5))+v0) ^ (s + key[(s>>11)&3])
            mix(v0)
            b.srli(u, s, 11)
            b.andi(u, u, 3)
            b.slli(u, u, 2)
            b.add(u, u, kp)
            b.lw(u, u, 0)
            b.add(u, u, s)
            b.xor(t, t, u)
            b.sub(v1, v1, t)
            # s -= DELTA
            b.li(t, _DELTA)
            b.sub(s, s, t)
            # v0 -= (((v1<<4)^(v1>>5))+v1) ^ (s + key[s&3])
            mix(v1)
            b.andi(u, s, 3)
            b.slli(u, u, 2)
            b.add(u, u, kp)
            b.lw(u, u, 0)
            b.add(u, u, s)
            b.xor(t, t, u)
            b.sub(v0, v0, t)
        b.sw(v0, outp, 0)
        b.sw(v1, outp, 4)
        b.addi(outp, outp, 8)
    b.halt()

    b.waive_lint(
        "L013",
        "loop-head checkpoints in register-only regions still commit "
        "induction and accumulator registers; no NVM store precedes "
        "them by design")
    prog = b.build()
    prog.meta["suite"] = "mediabench"
    prog.meta["checks"] = [(out_addr, plain)]
    return prog
