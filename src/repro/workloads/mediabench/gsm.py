"""gsmencode / gsmdecode - GSM 06.10 long-term predictor kernels (MediaBench).

GSM full-rate's computational core is the long-term predictor (LTP):

* **encode**: for each 40-sample subframe, find the lag in [40, 120] that
  maximizes the cross-correlation with reconstructed history, then compute
  the quantized LTP gain (bc) from the 06.10 DLB thresholds - the exact
  MAC-heavy search loop that dominates MediaBench's gsmencode.
* **decode**: LTP synthesis - rebuild each subframe from the transmitted
  (lag, gain, residual) stream using the 06.10 QLB gain table.

Both sides are integer-exact against host mirrors. The RPE grid selection
and short-term LPC lattice are omitted (DESIGN.md records the
substitution); the LTP loop is the dominant kernel the paper's cache
behavior depends on.
"""

from __future__ import annotations

import math

from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program
from repro.workloads.common import rng, scaled

_SUB = 40  # subframe length
_LAG_MIN, _LAG_MAX = 40, 120
# GSM 06.10 DLB/QLB gain quantizer tables (Q15)
_DLB = [6554, 16384, 26214, 32767]
_QLB = [3277, 11469, 21299, 32767]


def _speech(n: int, seed: int) -> list[int]:
    rnd = rng(seed)
    out = []
    for i in range(n):
        v = (4200 * math.sin(i * 0.09) + 2400 * math.sin(i * 0.47 + 0.6)
             + rnd.randint(-500, 500))
        out.append(max(-32768, min(32767, int(v))))
    return out


def _quantize_gain(num: int, den: int) -> int:
    """06.10-style gain index from correlation/energy (both >= 0)."""
    for bc in range(3):
        # gain < DLB[bc] <=> num * 32768 < DLB[bc] * den
        if num * 32768 < _DLB[bc] * den:
            return bc
    return 3


def encode_host(speech: list[int], nsub: int) -> list[tuple[int, int]]:
    """Returns (lag, bc) per subframe, correlating against past speech."""
    out = []
    for sf in range(nsub):
        base = _LAG_MAX + sf * _SUB
        best_lag, best_corr = _LAG_MIN, -(1 << 62)
        for lag in range(_LAG_MIN, _LAG_MAX + 1):
            corr = 0
            for k in range(_SUB):
                corr += speech[base + k] * speech[base + k - lag]
            if corr > best_corr:
                best_corr, best_lag = corr, lag
        energy = 0
        for k in range(_SUB):
            s = speech[base + k - best_lag]
            energy += s * s
        num = best_corr if best_corr > 0 else 0
        bc = _quantize_gain(num, energy) if energy > 0 else 0
        out.append((best_lag, bc))
    return out


def decode_host(params: list[tuple[int, int]], residual: list[int],
                nsub: int) -> list[int]:
    hist = [0] * (_LAG_MAX + nsub * _SUB)
    for sf, (lag, bc) in enumerate(params):
        base = _LAG_MAX + sf * _SUB
        gain = _QLB[bc]
        for k in range(_SUB):
            pred = (gain * hist[base + k - lag]) >> 15
            v = pred + residual[sf * _SUB + k]
            hist[base + k] = max(-32768, min(32767, v))
    return hist[_LAG_MAX:]


def build_gsmencode(scale: float = 1.0) -> Program:
    nsub = scaled(3, scale, minimum=1)
    n = _LAG_MAX + nsub * _SUB
    speech = _speech(n, 0x65E)

    b = ProgramBuilder("gsmencode")
    sp_addr = b.data_words([v & 0xFFFFFFFF for v in speech], "speech")
    lag_out = b.space_words(nsub, "lags")
    bc_out = b.space_words(nsub, "gains")
    b.data_words(_DLB, "dlb")

    sf, lag, k, corr = b.regs("sf", "lag", "k", "corr")
    best_lag, best_hi, best_lo = b.regs("best_lag", "best_hi", "best_lo")
    base_p, lag_p, t, u, v = b.regs("base_p", "lag_p", "t", "u", "v")
    hi, lo, num = b.regs("hi", "lo", "num")

    with b.for_range(sf, 0, nsub):
        b.checkpoint()
        # base_p = &speech[LAG_MAX + sf*SUB]
        b.li(t, _SUB * 4)
        b.mul(base_p, sf, t)
        b.li(t, sp_addr + _LAG_MAX * 4)
        b.add(base_p, base_p, t)
        b.li(best_lag, _LAG_MIN)
        b.li(best_hi, -(1 << 31))
        b.li(best_lo, 0)
        # 64-bit correlations: accumulate hi:lo (lo unsigned, hi signed)
        with b.for_range(lag, _LAG_MIN, _LAG_MAX + 1):
            b.checkpoint()
            b.li(hi, 0)
            b.li(lo, 0)
            b.slli(lag_p, lag, 2)
            b.sub(lag_p, base_p, lag_p)
            with b.for_range(k, 0, _SUB):
                b.checkpoint()
                b.slli(t, k, 2)
                b.add(u, base_p, t)
                b.lw(u, u, 0)
                b.add(v, lag_p, t)
                b.lw(v, v, 0)
                b.mul(t, u, v)      # low 32
                b.mulh(v, u, v)     # high 32 (signed)
                b.add(lo, lo, t)
                b.sltu(t, lo, t)    # carry out of low word
                b.add(hi, hi, v)
                b.add(hi, hi, t)
            # compare (hi, lo) > (best_hi, best_lo) as signed 64-bit
            with b.if_else(hi, "==", best_hi) as diff_hi:
                with b.if_(lo, ">u", best_lo):
                    b.mv(best_hi, hi)
                    b.mv(best_lo, lo)
                    b.mv(best_lag, lag)
                diff_hi()
                with b.if_(hi, ">", best_hi):
                    b.mv(best_hi, hi)
                    b.mv(best_lo, lo)
                    b.mv(best_lag, lag)
        # energy of the best-lag history window (fits 64 bits; hi:lo again)
        en_hi, en_lo = b.regs("en_hi", "en_lo")
        b.li(en_hi, 0)
        b.li(en_lo, 0)
        b.slli(lag_p, best_lag, 2)
        b.sub(lag_p, base_p, lag_p)
        with b.for_range(k, 0, _SUB):
            b.checkpoint()
            b.slli(t, k, 2)
            b.add(u, lag_p, t)
            b.lw(u, u, 0)
            b.mul(t, u, u)
            b.mulh(v, u, u)
            b.add(en_lo, en_lo, t)
            b.sltu(t, en_lo, t)
            b.add(en_hi, en_hi, v)
            b.add(en_hi, en_hi, t)
        # bc via DLB thresholds: num*2^15 < DLB[bc]*den, 64-bit safe.
        # num = max(best_corr, 0); den = energy. Both fit in ~45 bits, so
        # compare (num << 15) hi:lo against DLB*den hi:lo.
        bc = num  # alias: reuse register
        b.li(bc, 3)
        with b.if_(en_hi, "==", 0):
            with b.if_(en_lo, "==", 0):
                b.li(bc, 0)
        neg = b.reg("neg")
        b.slt(neg, best_hi, b.zero)  # correlation negative -> num = 0
        has_energy = b.reg("has_energy")
        b.snez(has_energy, en_hi)
        b.snez(t, en_lo)
        b.or_(has_energy, has_energy, t)
        with b.if_(has_energy, "!=", 0):
            with b.if_else(neg, "!=", 0) as pos:
                b.li(bc, 0)
                pos()
                # scan thresholds from 0 upward
                b.li(bc, 3)
                for idx in range(2, -1, -1):
                    # lhs = num << 15 (num = best_hi:best_lo)
                    b.slli(u, best_hi, 15)
                    b.srli(t, best_lo, 17)
                    b.or_(u, u, t)      # lhs_hi
                    b.slli(v, best_lo, 15)  # lhs_lo
                    # rhs = DLB[idx] * en (32x64 -> keep hi:lo)
                    dlb = _DLB[idx]
                    rh, rl = b.regs("rh", "rl")
                    b.li(t, dlb)
                    b.mul(rl, en_lo, t)
                    b.mulh(rh, en_lo, t)  # en_lo signed? en_lo is u32 -> fix below
                    # correct unsigned mulh: if en_lo has top bit, add dlb
                    b.slt(lag_p, en_lo, b.zero)
                    with b.if_(lag_p, "!=", 0):
                        b.add(rh, rh, t)
                    b.mul(t, en_hi, t)
                    b.add(rh, rh, t)
                    # if lhs < rhs (unsigned 64, both non-negative): bc = idx
                    with b.if_else(u, "==", rh) as neq:
                        with b.if_(v, "<u", rl):
                            b.li(bc, idx)
                        neq()
                        with b.if_(u, "<u", rh):
                            b.li(bc, idx)
                    b.free(rh, rl)
        b.slli(t, sf, 2)
        b.li(u, lag_out)
        b.add(u, u, t)
        b.sw(best_lag, u, 0)
        b.li(u, bc_out)
        b.add(u, u, t)
        b.sw(bc, u, 0)
        b.free(en_hi, en_lo, neg, has_energy)
    b.halt()

    b.waive_lint(
        "L013",
        "loop-head checkpoints in register-only regions still commit "
        "induction and accumulator registers; no NVM store precedes "
        "them by design")
    prog = b.build()
    params = encode_host(speech, nsub)
    prog.meta["suite"] = "mediabench"
    prog.meta["checks"] = [
        (lag_out, [p[0] for p in params]),
        (bc_out, [p[1] for p in params]),
    ]
    return prog


def build_gsmdecode(scale: float = 1.0) -> Program:
    nsub = scaled(60, scale, minimum=1)
    rnd = rng(0x65D)
    speech = _speech(_LAG_MAX + nsub * _SUB, 0x65D)
    params = [(rnd.randint(_LAG_MIN, _LAG_MAX), rnd.randint(0, 3))
              for _ in range(nsub)]
    residual = [rnd.randint(-2500, 2500) for _ in range(nsub * _SUB)]

    b = ProgramBuilder("gsmdecode")
    b.data_words(_QLB, "qlb")
    lag_addr = b.data_words([p[0] for p in params], "lags")
    bc_addr = b.data_words([p[1] for p in params], "gains")
    res_addr = b.data_words([v & 0xFFFFFFFF for v in residual], "residual")
    hist_addr = b.space_words(_LAG_MAX + nsub * _SUB, "hist")
    out_base = hist_addr + 4 * _LAG_MAX

    sf, k, lag, gain = b.regs("sf", "k", "lag", "gain")
    base_p, lag_p, res_p = b.regs("base_p", "lag_p", "res_p")
    t, u, v = b.regs("t", "u", "v")

    b.li(res_p, res_addr)
    with b.for_range(sf, 0, nsub):
        b.checkpoint()
        b.slli(t, sf, 2)
        b.li(u, lag_addr)
        b.add(u, u, t)
        b.lw(lag, u, 0)
        b.li(u, bc_addr)
        b.add(u, u, t)
        b.lw(gain, u, 0)
        b.slli(gain, gain, 2)
        b.li(u, b.symbol("qlb"))
        b.add(gain, gain, u)
        b.lw(gain, gain, 0)
        b.li(t, _SUB * 4)
        b.mul(base_p, sf, t)
        b.li(t, out_base)
        b.add(base_p, base_p, t)
        b.slli(lag_p, lag, 2)
        b.sub(lag_p, base_p, lag_p)
        with b.for_range(k, 0, _SUB):
            b.checkpoint()
            b.slli(t, k, 2)
            b.add(u, lag_p, t)
            b.lw(u, u, 0)
            b.mul(u, u, gain)
            b.srai(u, u, 15)
            b.lw(v, res_p, 0)
            b.addi(res_p, res_p, 4)
            b.add(u, u, v)
            b.li(v, 32767)
            with b.if_(u, ">", v):
                b.mv(u, v)
            b.li(v, -32768)
            with b.if_(u, "<", v):
                b.mv(u, v)
            b.add(v, base_p, t)
            b.sw(u, v, 0)
    b.halt()

    prog = b.build()
    out = decode_host(params, residual, nsub)
    prog.meta["suite"] = "mediabench"
    prog.meta["checks"] = [(out_base, [v & 0xFFFFFFFF for v in out])]
    return prog
