"""g721encode / g721decode - G.721-style 32 kbit/s ADPCM (MediaBench).

A structurally faithful reduction of CCITT G.721: 4-bit adaptive
quantization of the prediction error with logarithmic step-size adaptation
(the `witab`-style speed control) and a two-tap adaptive predictor updated
by sign-LMS with leakage - the same compute/memory shape as MediaBench's
g721 codec (table lookups, multiplies, clamping), with integer-exact host
mirrors. The full G.721 tone/transition detectors are omitted; DESIGN.md
records the substitution.
"""

from __future__ import annotations

import math

from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program
from repro.workloads.common import rng, scaled

# quantizer step adaptation per code magnitude (G.721 flavor: small codes
# shrink the step, large codes grow it); Q8 multipliers
_STEP_MUL = [230, 230, 236, 244, 254, 266, 282, 312]
_STEP_MIN = 16
_STEP_MAX = 1 << 14


def _signal(n: int, seed: int) -> list[int]:
    rnd = rng(seed)
    out = []
    for i in range(n):
        v = (5000 * math.sin(i * 0.041) + 3000 * math.sin(i * 0.31)
             + rnd.randint(-900, 900))
        out.append(max(-32768, min(32767, int(v))))
    return out


class _Codec:
    """Shared predictor/quantizer state machine (host mirror)."""

    def __init__(self) -> None:
        self.step = 64
        self.a1 = 0  # Q8 predictor coefficients
        self.a2 = 0
        self.y1 = 0  # reconstructed history
        self.y2 = 0

    def predict(self) -> int:
        return (self.a1 * self.y1 + self.a2 * self.y2) >> 8

    def update(self, code: int, dq: int, recon: int) -> None:
        mag = code & 7
        # step adaptation (Q8 multiplier, clamped)
        self.step = (self.step * _STEP_MUL[mag]) >> 8
        if self.step < _STEP_MIN:
            self.step = _STEP_MIN
        if self.step > _STEP_MAX:
            self.step = _STEP_MAX
        # sign-LMS predictor update with leakage
        sgn_d = 1 if dq > 0 else (-1 if dq < 0 else 0)
        sgn1 = 1 if self.y1 > 0 else (-1 if self.y1 < 0 else 0)
        sgn2 = 1 if self.y2 > 0 else (-1 if self.y2 < 0 else 0)
        self.a1 += 3 * sgn_d * sgn1 - (self.a1 >> 6)
        self.a2 += 3 * sgn_d * sgn2 - (self.a2 >> 6)
        self.a1 = max(-192, min(192, self.a1))
        self.a2 = max(-128, min(128, self.a2))
        self.y2 = self.y1
        self.y1 = recon

    def quantize(self, diff: int) -> tuple[int, int]:
        """diff -> (code, dq): 1 sign bit + 3 magnitude bits."""
        code = 0
        d = diff
        if d < 0:
            code = 8
            d = -d
        mag = (d << 2) // self.step
        if mag > 7:
            mag = 7
        code |= mag
        dq = (mag * self.step + (self.step >> 1)) >> 2
        if code & 8:
            dq = -dq
        return code, dq

    def dequantize(self, code: int) -> int:
        mag = code & 7
        dq = (mag * self.step + (self.step >> 1)) >> 2
        return -dq if code & 8 else dq


def encode_host(samples: list[int]) -> list[int]:
    c = _Codec()
    codes = []
    for s in samples:
        pred = c.predict()
        code, _ = c.quantize(s - pred)
        dq = c.dequantize(code)
        recon = max(-32768, min(32767, pred + dq))
        c.update(code, dq, recon)
        codes.append(code)
    return codes


def decode_host(codes: list[int]) -> list[int]:
    c = _Codec()
    out = []
    for code in codes:
        pred = c.predict()
        dq = c.dequantize(code)
        recon = max(-32768, min(32767, pred + dq))
        c.update(code, dq, recon)
        out.append(recon)
    return out


def _emit_sgn(b, dst, src, t):
    """dst = sign(src) in {-1,0,1} (signed)."""
    b.slt(t, b.zero, src)   # t = src > 0
    b.slt(dst, src, b.zero)  # dst = src < 0
    b.sub(dst, t, dst)


def _emit_clamp(b, reg, lo: int, hi: int, t):
    b.li(t, hi)
    with b.if_(reg, ">", t):
        b.mv(reg, t)
    b.li(t, lo)
    with b.if_(reg, "<", t):
        b.mv(reg, t)


def _emit_codec_update(b, regs):
    """Guest mirror of _Codec.update; regs is a dict of named registers."""
    step, a1, a2, y1, y2 = (regs[k] for k in ("step", "a1", "a2", "y1", "y2"))
    code, dq, recon = (regs[k] for k in ("code", "dq", "recon"))
    t, u, v = (regs[k] for k in ("t", "u", "v"))
    # step = clamp((step * STEP_MUL[code&7]) >> 8)
    b.andi(t, code, 7)
    b.slli(t, t, 2)
    b.li(u, b.symbol("step_mul"))
    b.add(t, t, u)
    b.lw(t, t, 0)
    b.mul(step, step, t)
    b.srli(step, step, 8)
    _emit_clamp(b, step, _STEP_MIN, _STEP_MAX, t)
    # sign-LMS with leakage
    _emit_sgn(b, t, dq, v)      # t = sgn(dq)
    _emit_sgn(b, u, y1, v)      # u = sgn(y1)
    b.mul(u, u, t)
    b.slli(v, u, 1)
    b.add(u, u, v)              # u = 3*sgn(dq)*sgn(y1)
    b.srai(v, a1, 6)
    b.sub(u, u, v)
    b.add(a1, a1, u)
    _emit_clamp(b, a1, -192, 192, v)
    _emit_sgn(b, u, y2, v)
    b.mul(u, u, t)
    b.slli(v, u, 1)
    b.add(u, u, v)
    b.srai(v, a2, 6)
    b.sub(u, u, v)
    b.add(a2, a2, u)
    _emit_clamp(b, a2, -128, 128, v)
    b.mv(y2, y1)
    b.mv(y1, recon)


def _emit_predict(b, regs):
    """pred = (a1*y1 + a2*y2) >> 8 (arithmetic)."""
    a1, a2, y1, y2 = (regs[k] for k in ("a1", "a2", "y1", "y2"))
    pred, t = regs["pred"], regs["t"]
    b.mul(pred, a1, y1)
    b.mul(t, a2, y2)
    b.add(pred, pred, t)
    b.srai(pred, pred, 8)


def _emit_dequant(b, regs):
    """dq = +/- (mag*step + step/2) >> 2 from code."""
    step, code, dq = regs["step"], regs["code"], regs["dq"]
    t = regs["t"]
    b.andi(dq, code, 7)
    b.mul(dq, dq, step)
    b.srli(t, step, 1)
    b.add(dq, dq, t)
    b.srli(dq, dq, 2)
    b.andi(t, code, 8)
    with b.if_(t, "!=", 0):
        b.neg(dq, dq)


def _common_setup(b, n_words_out: int):
    b.data_words(_STEP_MUL, "step_mul")
    regs = {}
    for name in ("i", "s", "pred", "code", "dq", "recon", "step",
                 "a1", "a2", "y1", "y2", "t", "u", "v", "inp", "outp"):
        regs[name] = b.reg(name)
    b.li(regs["step"], 64)
    for name in ("a1", "a2", "y1", "y2"):
        b.li(regs[name], 0)
    return regs


def build_g721encode(scale: float = 1.0) -> Program:
    n = scaled(1700, scale, minimum=2)
    samples = _signal(n, 0x721E)

    b = ProgramBuilder("g721encode")
    regs = _common_setup(b, n)
    in_addr = b.data_words([s & 0xFFFFFFFF for s in samples], "pcm_in")
    out_addr = b.space_words(n, "codes_out")
    r = regs
    b.li(r["inp"], in_addr)
    b.li(r["outp"], out_addr)
    with b.for_range(r["i"], 0, n):
        b.checkpoint()
        b.lw(r["s"], r["inp"], 0)
        b.addi(r["inp"], r["inp"], 4)
        _emit_predict(b, r)
        # quantize(s - pred)
        diff, code, t = r["dq"], r["code"], r["t"]  # reuse dq reg as diff
        b.sub(diff, r["s"], r["pred"])
        b.li(code, 0)
        with b.if_(diff, "<", 0):
            b.li(code, 8)
            b.neg(diff, diff)
        b.slli(diff, diff, 2)
        b.div(diff, diff, r["step"])
        b.li(t, 7)
        with b.if_(diff, ">", t):
            b.mv(diff, t)
        b.or_(code, code, diff)
        _emit_dequant(b, r)
        b.add(r["recon"], r["pred"], r["dq"])
        _emit_clamp(b, r["recon"], -32768, 32767, r["t"])
        _emit_codec_update(b, r)
        b.sw(r["code"], r["outp"], 0)
        b.addi(r["outp"], r["outp"], 4)
    b.halt()

    prog = b.build()
    prog.meta["suite"] = "mediabench"
    prog.meta["checks"] = [(out_addr, encode_host(samples))]
    return prog


def build_g721decode(scale: float = 1.0) -> Program:
    n = scaled(1900, scale, minimum=2)
    codes = encode_host(_signal(n, 0x721D))

    b = ProgramBuilder("g721decode")
    regs = _common_setup(b, n)
    in_addr = b.data_words(codes, "codes_in")
    out_addr = b.space_words(n, "pcm_out")
    r = regs
    b.li(r["inp"], in_addr)
    b.li(r["outp"], out_addr)
    with b.for_range(r["i"], 0, n):
        b.checkpoint()
        b.lw(r["code"], r["inp"], 0)
        b.addi(r["inp"], r["inp"], 4)
        _emit_predict(b, r)
        _emit_dequant(b, r)
        b.add(r["recon"], r["pred"], r["dq"])
        _emit_clamp(b, r["recon"], -32768, 32767, r["t"])
        _emit_codec_update(b, r)
        b.sw(r["recon"], r["outp"], 0)
        b.addi(r["outp"], r["outp"], 4)
    b.halt()

    prog = b.build()
    expected = [v & 0xFFFFFFFF for v in decode_host(codes)]
    prog.meta["suite"] = "mediabench"
    prog.meta["checks"] = [(out_addr, expected)]
    return prog
