"""Shared helpers for the benchmark kernels."""

from __future__ import annotations

import random

from repro.isa.builder import ProgramBuilder, Reg

U32 = 0xFFFFFFFF


def rng(seed: int) -> random.Random:
    """Deterministic input generator; every kernel derives its data here."""
    return random.Random(seed)


def words(rnd: random.Random, n: int, lo: int = 0, hi: int = U32) -> list[int]:
    return [rnd.randint(lo, hi) for _ in range(n)]


def scaled(n: int, scale: float, minimum: int = 1) -> int:
    """Scale a size parameter, keeping it at least ``minimum``."""
    return max(minimum, int(round(n * scale)))


def to_s32(x: int) -> int:
    x &= U32
    return x - (1 << 32) if x & 0x80000000 else x


def emit_rotl(b: ProgramBuilder, dst: Reg, src: Reg, amount: int,
              tmp: Reg) -> None:
    """dst = src rotated left by a constant amount (clobbers tmp)."""
    b.slli(tmp, src, amount)
    b.srli(dst, src, 32 - amount)
    b.or_(dst, dst, tmp)
