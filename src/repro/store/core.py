"""On-disk content-addressed artifact store (the warm-start substrate).

Every generated-code cache in the tree (jit blocks/suffixes/traces,
memfast handlers, lockstep column engines, batch recordings and stream
skeletons) and every finished :class:`~repro.sim.results.RunResult` is
process-global and dies with the process. This store gives each of them
a durable twin: artifacts live under a *content key* - the full tuple
of inputs that determine the artifact, plus a generator fingerprint
(hash of the generator modules' sources) so any code change silently
invalidates - and a new process loads instead of regenerating.

Layout (versioned, interpreter-stamped)::

    <root>/v<FORMAT>/<interp tag>/<class>/<digest[:2]>/<digest>.bin

where ``<class>`` is one of :data:`CLASSES` and ``digest`` is the
sha256 of the key tuple's repr. Entries are pickles of
``(FORMAT, digest, payload)``; the embedded format and digest are
re-checked on load, so a truncated, corrupt, or misfiled entry is never
an error - it reads as a counted miss and is regenerated. Writes go
through a temp file + :func:`os.replace`, so concurrent writers racing
on one key are safe (last atomic rename wins, readers never see a torn
file) and a crashed writer leaves only a stale ``*.tmp.*`` file for the
next GC.

Enablement: ``REPRO_CACHE_DIR`` names the root (default
``$XDG_CACHE_HOME/repro`` or ``~/.cache/repro``); the values ``0``,
``off``, ``none``, ``disabled`` (or empty) disable the store entirely.
PR 9's ``REPRO_STREAM_CACHE`` survives as a legacy alias: when set, the
whole store roots there (it takes precedence, so existing campaign
shard setups keep working unchanged).

Counters: flat ints (``<class>_hits`` / ``_misses`` / ``_writes`` /
``_corrupt`` plus ``bytes_read`` / ``bytes_written``), shipped home
from pool workers inside the same trailing ``("stats", delta)`` chunk
record the batch engine already uses (:func:`absorb_store_stats`).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import platform
import sys

#: Store root override / off switch (see module docs).
ENV_VAR = "REPRO_CACHE_DIR"

#: PR 9's recording-cache directory, honoured as a root alias.
LEGACY_STREAM_ENV = "REPRO_STREAM_CACHE"

#: On-disk layout version; bumping it orphans (never corrupts) old trees.
FORMAT = 1

#: Artifact classes: generated source text, pickled stream skeletons,
#: raw guest-stream recordings, memoized RunResult payloads.
CLASSES = ("src", "skel", "stream", "result")

_OFF_VALUES = ("0", "off", "none", "disabled")

#: flat event counters (never gauges), absorbable across processes
_STATS: dict[str, int] = {}

#: resolved root -> ArtifactStore (env changes take effect per call)
_ACTIVE: dict[str, "ArtifactStore"] = {}


def _count(key: str, n: int = 1) -> None:
    _STATS[key] = _STATS.get(key, 0) + n


def interp_tag() -> str:
    """``cpython311``-style stamp baked into the layout: artifacts are
    never shared across implementations or minor versions (compiled
    source text is, e.g., bytecode-version-sensitive downstream)."""
    return (f"{platform.python_implementation().lower()}"
            f"{sys.version_info.major}{sys.version_info.minor}")


def store_root() -> str | None:
    """The resolved store root, or None when the store is disabled."""
    legacy = os.environ.get(LEGACY_STREAM_ENV, "").strip()
    if legacy:
        return os.path.expanduser(legacy)
    raw = os.environ.get(ENV_VAR)
    if raw is not None:
        raw = raw.strip()
        if not raw or raw.lower() in _OFF_VALUES:
            return None
        return os.path.expanduser(raw)
    base = os.environ.get("XDG_CACHE_HOME", "").strip() or "~/.cache"
    return os.path.expanduser(os.path.join(base, "repro"))


def key_digest(key_parts: tuple) -> str:
    """sha256 over the key tuple's repr (every part must have a
    deterministic, content-complete repr - ints, strs, floats, tuples,
    frozen dataclasses)."""
    return hashlib.sha256(repr(key_parts).encode()).hexdigest()


class ArtifactStore:
    """One rooted store instance (cheap; holds only paths)."""

    def __init__(self, root: str):
        self.root = root
        self.base = os.path.join(root, f"v{FORMAT}", interp_tag())

    def _path(self, cls: str, digest: str) -> str:
        return os.path.join(self.base, cls, digest[:2], f"{digest}.bin")

    def contains(self, cls: str, key_parts: tuple) -> bool:
        """Existence probe (no stats, no payload read)."""
        return os.path.exists(self._path(cls, key_digest(key_parts)))

    def load(self, cls: str, key_parts: tuple):
        """The stored payload, or None (counted miss). Corruption of any
        kind - truncation, garbage, a mismatched embedded stamp - is a
        counted ``<cls>_corrupt`` miss, never an exception."""
        digest = key_digest(key_parts)
        path = self._path(cls, digest)
        try:
            with open(path, "rb") as fh:
                blob = fh.read()
        except OSError:
            _count(f"{cls}_misses")
            return None
        try:
            rec = pickle.loads(blob)
            ok = (isinstance(rec, tuple) and len(rec) == 3
                  and rec[0] == FORMAT and rec[1] == digest)
        except Exception:
            ok = False
        if not ok:
            _count(f"{cls}_corrupt")
            _count(f"{cls}_misses")
            return None
        _count(f"{cls}_hits")
        _count("bytes_read", len(blob))
        try:
            os.utime(path)  # touch: the GC evicts least-recently-used
        except OSError:
            pass
        return rec[2]

    def save(self, cls: str, key_parts: tuple, payload) -> bool:
        """Atomically persist ``payload``; False (never an error) when
        the artifact cannot be written or pickled."""
        digest = key_digest(key_parts)
        path = self._path(cls, digest)
        try:
            blob = pickle.dumps((FORMAT, digest, payload),
                                protocol=pickle.HIGHEST_PROTOCOL)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            tmp = f"{path}.tmp.{os.getpid()}"
            with open(tmp, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, path)  # atomic: racing writers never tear
        except Exception:
            return False
        _count(f"{cls}_writes")
        _count("bytes_written", len(blob))
        return True


def get_store() -> ArtifactStore | None:
    """The active store for the current environment, or None (disabled)."""
    root = store_root()
    if root is None:
        return None
    store = _ACTIVE.get(root)
    if store is None:
        store = _ACTIVE[root] = ArtifactStore(root)
    return store


# ---------------------------------------------------------------------------
# stats plumbing (one struct, shipped home like the stream-cache stats)
# ---------------------------------------------------------------------------

def store_stats() -> dict[str, int]:
    """This process's store event counters (flat ints)."""
    return dict(_STATS)


def absorb_store_stats(delta: dict) -> None:
    """Fold a pool worker's counter deltas into this process (rides in
    the same trailing ``("stats", ...)`` chunk record as the batch
    engine's counters; see :func:`repro.sim.parallel._run_chunk`)."""
    for key, value in delta.items():
        if isinstance(value, int) and value:
            _count(key, value)


def reset_store_stats() -> None:
    """Zero the counters (tests/benchmarks)."""
    _STATS.clear()


# ---------------------------------------------------------------------------
# maintenance: usage, GC, clear (the `repro cache` CLI)
# ---------------------------------------------------------------------------

def _iter_entries(root: str):
    """Yield ``(path, size, stamp)`` for every entry (and stray tmp)
    file under every version/interpreter tree of ``root``."""
    for dirpath, _dirnames, filenames in os.walk(root):
        for name in filenames:
            path = os.path.join(dirpath, name)
            try:
                st = os.stat(path)
            except OSError:
                continue
            yield path, st.st_size, max(st.st_atime, st.st_mtime)


def disk_usage(root: str) -> dict:
    """``{class: {"files": n, "bytes": b}}`` plus totals, across every
    version/interpreter tree under ``root``."""
    per_class: dict[str, dict[str, int]] = {}
    total_files = 0
    total_bytes = 0
    for path, size, _stamp in _iter_entries(root):
        cls = os.path.basename(os.path.dirname(os.path.dirname(path)))
        if cls not in CLASSES:
            cls = "other"
        d = per_class.setdefault(cls, {"files": 0, "bytes": 0})
        d["files"] += 1
        d["bytes"] += size
        total_files += 1
        total_bytes += size
    return {"classes": per_class, "files": total_files,
            "bytes": total_bytes}


def gc_store(root: str, max_bytes: int) -> dict:
    """Evict least-recently-used entries until the tree fits
    ``max_bytes``. Uses ``max(atime, mtime)`` (loads touch their entry,
    so hits count as recency even on noatime mounts). Returns a report:
    removed/kept file and byte counts."""
    entries = sorted(_iter_entries(root), key=lambda e: e[2])
    total = sum(size for _p, size, _s in entries)
    removed_files = 0
    removed_bytes = 0
    for path, size, _stamp in entries:
        if total <= max_bytes:
            break
        try:
            os.remove(path)
        except OSError:
            continue
        total -= size
        removed_files += 1
        removed_bytes += size
    _count("gc_evictions", removed_files)
    return {"removed_files": removed_files, "removed_bytes": removed_bytes,
            "kept_bytes": total, "max_bytes": max_bytes}


def clear_store(root: str) -> int:
    """Remove every entry under ``root`` (the directory skeleton stays);
    returns the number of files removed."""
    removed = 0
    for path, _size, _stamp in list(_iter_entries(root)):
        try:
            os.remove(path)
            removed += 1
        except OSError:
            continue
    return removed
