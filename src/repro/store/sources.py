"""Persisted generated-source plumbing + the A009 loaded-source ledger.

The codegen tiers (jit blocks/suffixes/traces, memfast handlers,
lockstep column engines) call :func:`load_source` before rendering and
:func:`save_source` after: the store key is the tier's full in-memory
cache key plus its generator fingerprint, so a loaded source is by
construction what a fresh render *would* produce - the A005 discipline
applied across processes.

That "by construction" is itself audited: every source served from the
store is recorded here with a re-render closure, and the codegen
auditor's A009 contract (:func:`repro.lint.codegen_audit.
audit_store_loads`) re-renders each one from its inputs and demands
byte equality - so a tampered or stale cache entry is caught by
``repro audit``, without the per-load re-render that would erase the
warm-start savings.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.store.core import get_store
from repro.store.keys import modules_fingerprint

#: generator-module sets per source class: narrow enough that unrelated
#: edits keep the cache warm, wide enough that any module whose content
#: the rendered source depends on invalidates it
_JIT_MODULES = ("repro.jit.blocks", "repro.cpu.core", "repro.cpu.costs",
                "repro.isa.opcodes")
_MEMFAST_MODULES = ("repro.memfast.handlers",)
_LOCKSTEP_MODULES = ("repro.lockstep.codegen", "repro.lockstep.state",
                     "repro.cpu.core")

#: (unit, loaded source, re-render closure) per store-served source;
#: the auditor's A009 worklist. Bounded so an unbounded campaign cannot
#: grow it without limit - dropped entries are simply not audited.
_LOADED: list[tuple[str, str, Callable[[], str]]] = []
_LOADED_CAP = 4096
_LOADED_DROPPED = [0]


def jit_fingerprint() -> str:
    return modules_fingerprint(*_JIT_MODULES)


def memfast_fingerprint() -> str:
    return modules_fingerprint(*_MEMFAST_MODULES)


def lockstep_fingerprint() -> str:
    return modules_fingerprint(*_LOCKSTEP_MODULES)


def load_source(key_parts: tuple, unit: str,
                render: Callable[[], str]) -> str | None:
    """A persisted source for ``key_parts``, or None (miss/disabled).

    A hit is recorded in the A009 ledger with ``unit`` (the audit
    location) and ``render`` (the ground-truth re-render closure).
    """
    store = get_store()
    if store is None:
        return None
    source = store.load("src", key_parts)
    if not isinstance(source, str):
        return None
    if len(_LOADED) < _LOADED_CAP:
        _LOADED.append((unit, source, render))
    else:
        _LOADED_DROPPED[0] += 1
    return source


def save_source(key_parts: tuple, source: str) -> bool:
    """Persist a freshly rendered source (no-op when disabled)."""
    store = get_store()
    if store is None:
        return False
    return store.save("src", key_parts, source)


def loaded_sources() -> list[tuple[str, str, Callable[[], str]]]:
    """The A009 worklist: every store-served source this process ran."""
    return list(_LOADED)


def loaded_source_stats() -> dict:
    return {"loaded": len(_LOADED), "audit_dropped": _LOADED_DROPPED[0]}


def clear_loaded_sources() -> None:
    """Reset the ledger (tests)."""
    _LOADED.clear()
    _LOADED_DROPPED[0] = 0
