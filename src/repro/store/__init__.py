"""Persistent content-addressed artifact store (see :mod:`.core`).

Public surface: the store core (roots, load/save, stats, GC), the
generated-source plumbing with its A009 ledger (:mod:`.sources`), the
result memo (:mod:`.results`), generator fingerprints (:mod:`.keys`),
and the unified cache report (:mod:`.report`).
"""

from repro.store.core import (CLASSES, ENV_VAR, FORMAT, ArtifactStore,
                              absorb_store_stats, clear_store, disk_usage,
                              gc_store, get_store, interp_tag, key_digest,
                              reset_store_stats, store_root, store_stats)
from repro.store.keys import modules_fingerprint, package_fingerprint
from repro.store.report import cache_report
from repro.store.results import (lookup_task, result_cache_enabled,
                                 result_from_payload, result_to_payload,
                                 store_task)
from repro.store.sources import (clear_loaded_sources, load_source,
                                 loaded_source_stats, loaded_sources,
                                 save_source)

__all__ = [
    "ArtifactStore",
    "CLASSES",
    "ENV_VAR",
    "FORMAT",
    "absorb_store_stats",
    "cache_report",
    "clear_loaded_sources",
    "clear_store",
    "disk_usage",
    "gc_store",
    "get_store",
    "interp_tag",
    "key_digest",
    "load_source",
    "loaded_source_stats",
    "loaded_sources",
    "lookup_task",
    "modules_fingerprint",
    "package_fingerprint",
    "reset_store_stats",
    "result_cache_enabled",
    "result_from_payload",
    "result_to_payload",
    "save_source",
    "store_root",
    "store_stats",
    "store_task",
]
