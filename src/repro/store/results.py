"""Memoized simulation results: program hash x design x config -> RunResult.

The simulator is deterministic per ``(program content, design, trace,
SimConfig, scale)`` point - the differential tests enforce it across
every execution tier - so a finished :class:`~repro.sim.results.
RunResult` is itself a content-addressed artifact. This module memoizes
results through the store: :func:`lookup_task` is consulted by every
single-task funnel (:func:`repro.sim.parallel.run_task`, the batch
engine's :func:`~repro.batch.engine.iter_outcomes` pre-pass, and via
those the sweep/campaign engines), and :func:`store_task` persists
fresh results on the way out.

Memoization is **opt-in** (``SimConfig(result_cache=True)`` or
``REPRO_RESULT_CACHE=1``), like the other tiers, because a memoized
result is *stats-only*: the payload rides the existing
:mod:`repro.analysis.stats_io` serialization plus ``final_regs``, and
deliberately drops ``final_memory`` (megabytes of ground truth per
point). Crash-consistency instead rides a ``verified`` flag: an entry
written by a ``verify=True`` run satisfies a later ``verify=True``
lookup without re-simulating, while a ``verify=True`` lookup *ignores*
unverified entries. Trace-recorder and invariant-checker runs are never
memoized (their side channels - metrics, check counts - are the point
of the run), mirroring the jit/memfast/batch stand-down rules.

Keys embed :func:`repro.store.keys.package_fingerprint` - the content
hash of the whole ``repro`` package - so *any* code change invalidates
every memoized result; only the ``result_cache`` flag itself is
normalized out of the config (an env-enabled and a flag-enabled run
share entries).
"""

from __future__ import annotations

import os

from repro.store.core import get_store
from repro.store.keys import package_fingerprint

#: ``REPRO_RESULT_CACHE=1`` memoizes sweep/campaign results globally
#: (pool workers re-export it, like the tier switches).
ENV_VAR = "REPRO_RESULT_CACHE"

_CLS = "result"
_PAYLOAD_VERSION = 1


def result_cache_enabled(config=None) -> bool:
    """True when this run opts into result memoization."""
    if config is not None and getattr(config, "result_cache", False):
        return True
    return os.environ.get(ENV_VAR, "").strip() not in ("", "0")


def _resolve(task):
    from repro.batch.engine import resolve_config

    return resolve_config(task)


def _eligible(config) -> bool:
    from repro.lint.invariants import invariants_enabled
    from repro.obs.recorder import trace_enabled

    if config.trace or trace_enabled():
        return False
    if config.check_invariants or invariants_enabled():
        return False
    return True


def _task_key(task, config) -> tuple:
    from repro.cpu.core import program_content_key
    from repro.workloads import build_workload

    program = build_workload(task.workload, task.scale)
    if getattr(config, "result_cache", False):
        config = config.with_(result_cache=False)
    return ("result", _PAYLOAD_VERSION, package_fingerprint(),
            program_content_key(program), task.design, task.trace,
            task.scale, config)


def result_to_payload(result, verified: bool) -> dict:
    """The stored form: stats_io dict + final_regs + the verified flag."""
    from repro.analysis.stats_io import result_to_dict

    return {"stats": result_to_dict(result, include_periods=True),
            "final_regs": list(result.final_regs),
            "verified": bool(verified)}


def result_from_payload(payload: dict):
    """Rebuild a stats-only RunResult (``final_memory`` stays None)."""
    from repro.analysis.stats_io import result_from_dict

    result = result_from_dict(payload["stats"])
    result.final_regs = list(payload.get("final_regs", []))
    return result


def lookup_task(task):
    """A memoized RunResult for this task, or None.

    None whenever the store is disabled, the task does not opt in, the
    task is ineligible (trace/checker), the entry is absent or corrupt,
    or the task wants verification the entry cannot vouch for.
    """
    store = get_store()
    if store is None:
        return None
    try:
        config = _resolve(task)
    except Exception:
        return None  # invalid overrides: the run path raises the error
    if not (result_cache_enabled(config) and _eligible(config)):
        return None
    payload = store.load(_CLS, _task_key(task, config))
    if not isinstance(payload, dict) or "stats" not in payload:
        return None
    if task.verify and not payload.get("verified"):
        return None
    try:
        return result_from_payload(payload)
    except Exception:
        return None


def store_task(task, result) -> bool:
    """Persist a fresh result (no-op unless enabled and eligible).

    An existing entry is left alone unless this run verified and the
    entry might not have (verified runs may upgrade, unverified runs
    never downgrade).
    """
    store = get_store()
    if store is None:
        return False
    try:
        config = _resolve(task)
    except Exception:
        return False
    if not (result_cache_enabled(config) and _eligible(config)):
        return False
    key = _task_key(task, config)
    if not task.verify and store.contains(_CLS, key):
        return False
    return store.save(_CLS, key, result_to_payload(result, task.verify))
