"""Generator fingerprints: the invalidation half of every store key.

A persisted artifact is only reusable while the code that generated it
is byte-identical - the A005/A009 contract is that a loaded source
re-renders exactly from its inputs, which can only hold if the renderer
has not changed. Every store key therefore embeds a *fingerprint*:

* :func:`modules_fingerprint` - sha256 over the named modules' source
  files, for generated-code classes (narrow on purpose: a docs edit in
  an unrelated module must not cold-start the jit cache);
* :func:`package_fingerprint` - sha256 over every ``*.py`` in the
  ``repro`` package, for memoized results (any code change anywhere
  may change a simulation outcome, so results invalidate wholesale).

Fingerprints are computed once per process and cached; they hash file
*contents*, not mtimes, so editable installs and CI checkouts agree.
"""

from __future__ import annotations

import hashlib
import importlib
import os

_FP_CACHE: dict[tuple, str] = {}
_PKG_FP: list[str] = []


def modules_fingerprint(*module_names: str) -> str:
    """Joint content hash of the named modules' source files."""
    fp = _FP_CACHE.get(module_names)
    if fp is None:
        h = hashlib.sha256()
        for name in module_names:
            h.update(name.encode())
            try:
                mod = importlib.import_module(name)
                path = getattr(mod, "__file__", None)
                with open(path, "rb") as fh:
                    h.update(fh.read())
            except Exception:
                h.update(b"?")  # sourceless module: stable, but opaque
        fp = _FP_CACHE[module_names] = h.hexdigest()[:16]
    return fp


def package_fingerprint() -> str:
    """Content hash of the whole ``repro`` package (for result memos)."""
    if not _PKG_FP:
        import repro

        root = os.path.dirname(os.path.abspath(repro.__file__))
        h = hashlib.sha256()
        paths = []
        for dirpath, _dirnames, filenames in os.walk(root):
            for name in filenames:
                if name.endswith(".py"):
                    paths.append(os.path.join(dirpath, name))
        for path in sorted(paths):
            h.update(os.path.relpath(path, root).encode())
            try:
                with open(path, "rb") as fh:
                    h.update(fh.read())
            except OSError:
                h.update(b"?")
        _PKG_FP.append(h.hexdigest()[:16])
    return _PKG_FP[0]
