"""Unified cache reporting: one struct over disk + process caches.

``repro cache stats`` and the warm-cache CI check read everything
through :func:`cache_report`: the store's on-disk usage per artifact
class, this process's store event counters, and the sizes/counters of
every in-memory process-global cache (jit code cache, memfast handler
sources, lockstep engines, batch streams, stream expansion metadata,
the shared decode memo, and the A009 loaded-source ledger).
"""

from __future__ import annotations

from repro.store.core import disk_usage, store_root, store_stats
from repro.store.sources import loaded_source_stats


def cache_report(include_disk: bool = True) -> dict:
    """The whole caching picture as one JSON-able dict."""
    from repro.batch.engine import batch_stats
    from repro.batch.stream import stream_meta_stats
    from repro.cpu.core import decode_cache_stats
    from repro.jit import code_cache_stats
    from repro.lockstep.codegen import engine_cache_stats
    from repro.memfast.handlers import codegen_cache_stats

    root = store_root()
    report: dict = {
        "root": root,
        "enabled": root is not None,
        "events": store_stats(),
        "process_caches": {
            "jit": code_cache_stats(),
            "memfast": codegen_cache_stats(),
            "lockstep": engine_cache_stats(),
            "batch": batch_stats(),
            "stream_meta": stream_meta_stats(),
            "decode": decode_cache_stats(),
            "store_loads": loaded_source_stats(),
        },
    }
    if include_disk and root is not None:
        report["disk"] = disk_usage(root)
    return report
