"""repro - a full reproduction of "Write-Light Cache for Energy Harvesting
Systems" (Choi et al., ISCA 2023).

The package provides:

* :mod:`repro.core` - WL-Cache itself: DirtyQueue, maxline/waterline write
  policy, JIT checkpointing, adaptive and dynamic threshold management;
* the substrates the paper depends on - a RISC ISA + builder DSL
  (:mod:`repro.isa`), an in-order core (:mod:`repro.cpu`), NVM + cache
  arrays (:mod:`repro.mem`), baseline cache designs (:mod:`repro.caches`),
  capacitor/trace energy modeling (:mod:`repro.energy`), and the NVP
  runtime (:mod:`repro.runtime`);
* a full-system simulator (:mod:`repro.sim`), the 23 MediaBench/MiBench
  workloads (:mod:`repro.workloads`), analysis/reporting
  (:mod:`repro.analysis`), and crash-consistency verification
  (:mod:`repro.verify`).

Quickstart::

    from repro import build_system, get_workload
    prog = get_workload("sha").build()
    result = build_system(prog, "WL-Cache", trace="trace1").run()
    print(result.summary())
"""

from repro.errors import (AssemblyError, ConfigError, ConsistencyError,
                          EnergyError, ExecutionError, ReproError, TraceError)
from repro.isa import Program, ProgramBuilder, assemble, disassemble
from repro.sim import (BASELINE_DESIGN, DESIGNS, RunResult, SimConfig, System,
                       build_system, run_one)

__version__ = "1.0.0"

__all__ = [
    "AssemblyError",
    "BASELINE_DESIGN",
    "ConfigError",
    "ConsistencyError",
    "DESIGNS",
    "EnergyError",
    "ExecutionError",
    "Program",
    "ProgramBuilder",
    "ReproError",
    "RunResult",
    "SimConfig",
    "System",
    "TraceError",
    "assemble",
    "build_system",
    "disassemble",
    "get_workload",
    "run_one",
    "__version__",
]


def get_workload(name: str):
    """Return the :class:`~repro.workloads.suite.Workload` named ``name``.

    Imported lazily: the workload kernels are sizeable builder programs.
    """
    from repro.workloads import get_workload as _get
    return _get(name)
