"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run <workload>`` - simulate one workload on one design under one power
  condition and print the run summary (optionally verifying consistency).
* ``compare <workload>`` - run every design on one workload and print
  normalized speedups.
* ``lint`` - statically analyze the suite's workload programs (CFG +
  dataflow: uninitialized reads, dead stores, unreachable code, bad
  branch targets, misaligned/out-of-bounds accesses; with
  ``--intermittent`` also the checkpoint-region rules L009-L014). Exit
  code 0 when clean, 1 with warnings, 2 with error-severity findings
  (waived findings never gate; ``--errors-only`` stops warnings from
  gating too).
* ``audit`` - statically audit the *generated* Python from the
  jit/memfast/batch/lockstep compilers against their structural
  contracts (A001-A009, including the persistent-store load contract).
  Exit code 0 when every compiled family verifies, 2 on any contract
  violation.
* ``cache`` - inspect and maintain the persistent artifact store
  (``REPRO_CACHE_DIR``): ``stats`` prints disk usage per artifact class
  plus this process's counters, ``gc --max-size`` evicts least-recently
  -used entries down to a byte budget, ``clear`` empties the store.
* ``trace <app> <design> <trace>`` - run with the observability layer
  attached and export the event trace as Chrome/Perfetto ``trace.json``
  (plus optional CSV/text), with a terminal timeline summary.
* ``campaign`` - run a Monte-Carlo outage campaign: a ``(workload x
  design x stochastic-trace-family x seed)`` grid whose per-point
  results are distilled into bootstrap confidence intervals, tail
  (p95/p99) forward progress, and outage-survival curves, written as
  JSON/CSV/SVG. Points persist as JSON and partial campaigns merge
  losslessly (``--from-json``).
* ``list`` - list available workloads, designs, and traces.

Examples::

    python -m repro run sha --design WL-Cache --trace trace1
    python -m repro run qsort --trace trace2 --maxline 4 --static
    python -m repro compare adpcmencode --trace trace2
    python -m repro trace dijkstra wl trace1 --out trace.json
    python -m repro campaign --apps sha qsort --seeds 8 --out results/mc
    python -m repro lint --format json
    python -m repro cache stats
    python -m repro cache gc --max-size 500M
    python -m repro plot results/fig05_trace1.csv
    python -m repro list
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.speedup import speedup
from repro.analysis.tables import format_table
from repro.energy.synthetic import TRACE_FACTORIES
from repro.sim.config import BASELINE_DESIGN, DESIGNS
from repro.sim.factory import ALL_DESIGN_NAMES as ALL_DESIGNS
from repro.sim.factory import build_system
from repro.verify.checker import check_crash_consistency
from repro.workloads import ALL_WORKLOADS, build_workload


def _add_sim_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--trace", default=None, choices=sorted(TRACE_FACTORIES),
                   help="power trace (default: no power failures)")
    p.add_argument("--scale", type=float, default=1.0,
                   help="workload size multiplier")
    p.add_argument("--maxline", type=int, default=None)
    p.add_argument("--dq-policy", choices=("fifo", "lru"), default=None)
    p.add_argument("--static", action="store_true",
                   help="disable adaptive threshold management")
    p.add_argument("--dynamic", action="store_true",
                   help="enable dynamic (run-time) maxline raising")
    p.add_argument("--capacitor-uf", type=float, default=None,
                   help="energy buffer size in microfarads")
    p.add_argument("--seed", type=int, default=None, help="trace seed")
    p.add_argument("--jit", action="store_true",
                   help="compile guest basic blocks to specialized Python "
                        "(bit-identical results, faster simulation)")
    p.add_argument("--memfast", action="store_true",
                   help="enable the memory-hierarchy fast path "
                        "(specialized hit handlers, bit-identical results; "
                        "composes with --jit)")
    p.add_argument("--batch", action="store_true",
                   help="batch sweep points sharing a kernel: record the "
                        "execution once, replay it per design "
                        "(bit-identical results; sweeps only)")
    p.add_argument("--lockstep", action="store_true",
                   help="advance same-shaped batch replays in lockstep "
                        "through one compiled column kernel (implies "
                        "--batch; bit-identical results)")
    p.add_argument("--no-verify", action="store_true",
                   help="skip the crash-consistency check")
    p.add_argument("--stats-json", default=None, metavar="PATH",
                   help="dump run statistics as JSON")


def _overrides(args) -> dict:
    out: dict = {}
    if args.maxline is not None:
        out["maxline"] = args.maxline
    if args.dq_policy is not None:
        out["dq_policy"] = args.dq_policy
    if args.static:
        out["adaptive"] = False
    if args.dynamic:
        out["dynamic"] = True
    if args.capacitor_uf is not None:
        out["capacitance_f"] = args.capacitor_uf * 1e-6
    if args.seed is not None:
        out["trace_seed"] = args.seed
    if args.jit:
        out["jit"] = True
    if args.memfast:
        out["memfast"] = True
    if getattr(args, "batch", False):
        out["batch"] = True
    if getattr(args, "lockstep", False):
        out["lockstep"] = True
        out["batch"] = True  # lockstep columns live inside batch groups
    return out


def _run_once(program, design, args):
    system = build_system(program, design, trace=args.trace,
                          **_overrides(args))
    result = system.run()
    if not args.no_verify:
        check_crash_consistency(program, result)
    return system, result


def cmd_run(args) -> int:
    program = build_workload(args.workload, args.scale)
    system, result = _run_once(program, args.design, args)
    print(result.summary())
    print(f"Vbackup {system.v_backup:.3f} V | Von {system.v_on:.3f} V | "
          f"reserve {system.reserve_nj:.0f} nJ")
    print(f"outages {result.outages} | off-time "
          f"{result.off_time_ns / 1e3:.1f} us | "
          f"NVM writes {result.nvm_writes} words | "
          f"energy {result.energy.total_nj / 1e3:.1f} uJ")
    if result.reconfig_count:
        print(f"adaptive: {result.reconfig_count} reconfigs, maxline "
              f"{result.maxline_min}..{result.maxline_max}, accuracy "
              f"{result.prediction_accuracy:.2f}")
    if not args.no_verify:
        print("crash consistency: verified against the failure-free oracle")
    if args.stats_json:
        from repro.analysis.stats_io import save_result
        print(f"stats written to {save_result(result, args.stats_json)}")
    return 0


def cmd_compare(args) -> int:
    program = build_workload(args.workload, args.scale)
    rows = []
    results = {}
    for design in args.designs:
        _, results[design] = _run_once(program, design, args)
    base = results.get(BASELINE_DESIGN) or next(iter(results.values()))
    for design, res in results.items():
        rows.append([design, f"{res.total_time_ns / 1e3:.1f}",
                     res.outages, speedup(base.total_time_ns,
                                          res.total_time_ns)])
    cond = args.trace or "no failure"
    print(f"{args.workload} under {cond} (speedup vs {BASELINE_DESIGN}):")
    print(format_table(["design", "time us", "outages", "speedup"], rows))
    return 0


def cmd_sweep(args) -> int:
    from repro.sim.sweep import run_grid, speedups_vs_baseline

    apps = args.apps or list(ALL_WORKLOADS)
    progress = None
    if not args.quiet:
        def progress(done, total, key):
            print(f"\r[{done}/{total}] {key[0]} / {key[1]}        ",
                  end="", flush=True)
    results = run_grid(apps, args.designs, args.trace, scale=args.scale,
                       verify=not args.no_verify, jobs=args.jobs,
                       progress=progress, **_overrides(args))
    if progress is not None:
        print()
    rows = []
    have_base = any(d == BASELINE_DESIGN for d in args.designs)
    sp = speedups_vs_baseline(results) if have_base else None
    for (wname, design), res in results.items():
        row = [wname, design, f"{res.total_time_ns / 1e3:.1f}", res.outages]
        if sp is not None:
            row.append(f"{sp[(wname, design)]:.3f}")
        rows.append(row)
    headers = ["app", "design", "time us", "outages"]
    if sp is not None:
        headers.append("speedup")
    cond = args.trace or "no failure"
    print(f"sweep under {cond}:")
    print(format_table(headers, rows))
    if args.csv:
        import csv

        with open(args.csv, "w", newline="") as f:
            w = csv.writer(f)
            w.writerow(headers)
            w.writerows(rows)
        print(f"wrote {args.csv}")
    return 0


def _cache_stats_line(stats: dict) -> str | None:
    """Human-readable record/replay cache summary, or None when idle."""
    recs = stats.get("recordings", 0)
    hits = stats.get("hits", 0) + stats.get("disk_hits", 0)
    if not recs and not hits:
        return None
    parts = [f"recordings={recs}", f"hits={hits}"]
    if stats.get("disk_hits") or stats.get("disk_writes"):
        parts.append(f"disk_hits={stats.get('disk_hits', 0)}")
        parts.append(f"disk_writes={stats.get('disk_writes', 0)}")
    for key in ("replays", "lockstep", "solo"):
        if stats.get(key):
            parts.append(f"{key}={stats[key]}")
    return "stream cache: " + " ".join(parts)


def cmd_campaign(args) -> int:
    import os

    from repro.batch.engine import CACHE_DIR_ENV, batch_stats
    from repro.mc import (CampaignSpec, merge_campaigns, run_campaign,
                          save_campaign, summarize_campaign, write_report)
    from repro.mc.engine import dict_to_points

    if args.stream_cache:
        os.makedirs(args.stream_cache, exist_ok=True)
        os.environ[CACHE_DIR_ENV] = args.stream_cache
    cache_stats: dict | None = None
    if args.from_json:
        import json as _json

        dicts = []
        for path in args.from_json:
            with open(path) as f:
                dicts.append(_json.load(f))
        merged = merge_campaigns(dicts)
        points = dict_to_points(merged)
        cache_stats = merged.get("cache_stats")
        print(f"loaded {len(points)} points from "
              f"{len(args.from_json)} campaign file(s)")
        if cache_stats:
            line = _cache_stats_line(cache_stats)
            if line:
                print(f"{line} (summed over shards)")
    else:
        overrides = {}
        for flag in ("jit", "memfast", "batch", "lockstep"):
            if getattr(args, flag):
                overrides[flag] = True
        if overrides.get("lockstep"):
            overrides["batch"] = True
        spec = CampaignSpec(
            workloads=tuple(args.apps or ALL_WORKLOADS),
            designs=tuple(args.designs),
            families=tuple(args.families),
            seeds=tuple(range(args.seed_offset,
                              args.seed_offset + args.seeds)),
            scale=args.scale,
            verify=not args.no_verify,
            overrides=overrides)
        progress = None
        if not args.quiet:
            def progress(done, total, key):
                print(f"\r[{done}/{total}] {key[0]} / {key[1]} / "
                      f"{key[2]} #{key[3]}        ", end="", flush=True)
        print(f"campaign: {spec.n_points} points "
              f"({len(spec.workloads)} workloads x {len(spec.designs)} "
              f"designs x {len(spec.families)} families x "
              f"{len(spec.seeds)} seeds)")
        points = run_campaign(spec, jobs=args.jobs, progress=progress)
        if progress is not None:
            print()
        cache_stats = {k: v for k, v in batch_stats().items()
                       if k not in ("streams", "raw_recordings")}
        line = _cache_stats_line(cache_stats)
        if line:
            print(line)
    for target in (args.points_json, args.out):
        out_dir = os.path.dirname(target) if target else ""
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
    if args.points_json:
        path = save_campaign(points, args.points_json,
                             cache_stats=cache_stats)
        print(f"points written to {path}")
    summary = summarize_campaign(points, confidence=args.confidence,
                                 n_boot=args.n_boot,
                                 boot_seed=args.boot_seed)
    for path in write_report(summary, args.out, svg=not args.no_svg):
        print(f"wrote {path}")
    if summary["speedup_aggregate"]:
        rows = [[a["design"], a["family"], a["n"],
                 f"{a['speedup_gmean']:.3f}",
                 f"[{a['ci_lo']:.3f}, {a['ci_hi']:.3f}]"]
                for a in summary["speedup_aggregate"]]
        print(f"gmean speedup vs {summary['baseline']} "
              f"({summary['confidence']:.0%} CI):")
        print(format_table(["design", "family", "n", "gmean", "CI"], rows))
    return 0


def _parse_size(text: str) -> int:
    """``500M``/``2G``/``123456`` -> bytes (K/M/G/T suffixes, base 1024)."""
    raw = text.strip()
    mult = 1
    suffixes = {"K": 1 << 10, "M": 1 << 20, "G": 1 << 30, "T": 1 << 40}
    if raw and raw[-1].upper() in suffixes:
        mult = suffixes[raw[-1].upper()]
        raw = raw[:-1]
    try:
        value = float(raw)
    except ValueError:
        raise SystemExit(f"repro cache: bad size {text!r} "
                         f"(use bytes or K/M/G/T suffix)") from None
    return max(0, int(value * mult))


def _fmt_bytes(n: int) -> str:
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return (f"{value:.0f} {unit}" if unit == "B"
                    else f"{value:.1f} {unit}")
        value /= 1024
    return f"{n} B"


def cmd_cache(args) -> int:
    import json as _json

    from repro.store import cache_report, clear_store, gc_store, store_root

    root = store_root()
    if args.action == "stats":
        report = cache_report(include_disk=True)
        if args.json:
            print(_json.dumps(report, indent=2, sort_keys=True))
            return 0
        print(f"store root: {root or '(disabled)'}")
        disk = report.get("disk")
        if disk:
            print(f"disk: {disk['files']} entries, "
                  f"{_fmt_bytes(disk['bytes'])}")
            for cls, d in sorted(disk["classes"].items()):
                print(f"  {cls:<8} {d['files']:>6} entries  "
                      f"{_fmt_bytes(d['bytes'])}")
        events = report["events"]
        if events:
            print("events (this process): "
                  + " ".join(f"{k}={v}" for k, v in sorted(events.items())))
        caches = report["process_caches"]
        print("process caches: "
              + " ".join(f"{name}[" + " ".join(
                    f"{k}={v}" for k, v in sorted(stats.items())) + "]"
                    for name, stats in sorted(caches.items())))
        return 0
    if root is None:
        print("repro cache: the store is disabled "
              "(set REPRO_CACHE_DIR to a directory)", file=sys.stderr)
        return 2
    if args.action == "gc":
        report = gc_store(root, _parse_size(args.max_size))
        print(f"gc {root}: removed {report['removed_files']} entries "
              f"({_fmt_bytes(report['removed_bytes'])}), kept "
              f"{_fmt_bytes(report['kept_bytes'])} "
              f"(budget {_fmt_bytes(report['max_bytes'])})")
        return 0
    removed = clear_store(root)
    print(f"cleared {root}: removed {removed} entries")
    return 0


def cmd_plot(args) -> int:
    import os

    from repro.analysis.plot import plot_csv, render_all
    if os.path.isdir(args.csv):
        for out in render_all(args.csv):
            print(f"wrote {out}")
        return 0
    out = plot_csv(args.csv, args.out, kind=args.kind, log_y=args.log_y,
                   max_rows=args.max_rows)
    print(f"wrote {out}")
    return 0


def cmd_lint(args) -> int:
    from repro.lint.runner import (exit_code, filter_errors_only,
                                   format_findings, lint_workloads)

    if args.apps is not None and not args.apps:
        print("repro lint: error: --apps given with no workloads "
              "(omit it to lint the whole suite)", file=sys.stderr)
        return 2
    results = lint_workloads(args.apps, scale=args.scale,
                             intermittent=args.intermittent,
                             budget_cycles=args.budget_cycles)
    shown = filter_errors_only(results) if args.errors_only else results
    print(format_findings(shown, args.format))
    return exit_code(results, errors_only=args.errors_only)


def cmd_audit(args) -> int:
    from repro.lint.codegen_audit import audit_suite
    from repro.lint.findings import format_findings_sarif
    from repro.lint.runner import (EXIT_CLEAN, EXIT_ERRORS,
                                   format_findings_json,
                                   format_findings_text)

    results = audit_suite(args.apps, designs=args.designs,
                          scale=args.scale)
    if args.format == "json":
        print(format_findings_json(results))
    elif args.format == "sarif":
        print(format_findings_sarif(results, tool_name="repro-audit"))
    else:
        print(format_findings_text(results))
    violations = sum(len(f) for f in results.values())
    return EXIT_ERRORS if violations else EXIT_CLEAN


#: Short design aliases accepted by ``repro trace`` (the full names carry
#: shell-hostile parentheses); exact names from ALL_DESIGNS work too.
DESIGN_ALIASES = {
    "wl": "WL-Cache",
    "wlcache": "WL-Cache",
    "wleager": "WL-Cache(eager)",
    "nvsram": "NVSRAM(ideal)",
    "nvsramfull": "NVSRAM(full)",
    "nvsrampractical": "NVSRAM(practical)",
    "nvcache": "NVCache-WB",
    "vcache": "VCache-WT",
    "replay": "ReplayCache",
    "wtbuffer": "WT+Buffer",
    "nocache": "NoCache",
}


def resolve_design(name: str) -> str:
    """Map a CLI design name or alias to its canonical design name."""
    if name in ALL_DESIGNS:
        return name
    alias = name.lower().replace("-", "").replace("_", "")
    if alias in DESIGN_ALIASES:
        return DESIGN_ALIASES[alias]
    raise SystemExit(
        f"repro trace: unknown design {name!r}; use one of "
        f"{', '.join(sorted(DESIGN_ALIASES))} or an exact design name "
        f"({', '.join(ALL_DESIGNS)})")


def cmd_trace(args) -> int:
    from repro.obs.export import (timeline_summary, write_chrome, write_csv,
                                  write_text)
    from repro.sim.config import SimConfig

    design = resolve_design(args.design)
    overrides = {"trace": True}
    if args.maxline is not None:
        overrides["maxline"] = args.maxline
    if args.seed is not None:
        overrides["trace_seed"] = args.seed
    config = SimConfig(**overrides)
    power = None if args.power_trace == "none" else args.power_trace
    program = build_workload(args.workload, args.scale)
    system = build_system(program, design, trace=power, config=config)
    if not args.detail:
        system._trace_recorder.detail = False
    result = system.run()
    events = system._trace_recorder.events
    meta = {"program": program.name, "design": design,
            "trace": power or "no-failure"}
    write_chrome(events, args.out, meta)
    print(f"wrote {args.out} ({len(events)} events) - load it at "
          f"https://ui.perfetto.dev or chrome://tracing")
    if args.csv:
        write_csv(events, args.csv)
        print(f"wrote {args.csv}")
    if args.text:
        write_text(events, args.text)
        print(f"wrote {args.text}")
    print()
    print(result.summary())
    print()
    print(timeline_summary(events, result.metrics), end="")
    if args.stats_json:
        from repro.analysis.stats_io import save_result
        print(f"stats written to {save_result(result, args.stats_json)}")
    return 0


def cmd_list(args) -> int:
    print("workloads:", ", ".join(ALL_WORKLOADS))
    print("designs:  ", ", ".join(ALL_DESIGNS))
    print("traces:   ", ", ".join(sorted(TRACE_FACTORIES)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="WL-Cache (ISCA'23) reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="simulate one workload")
    p_run.add_argument("workload", choices=ALL_WORKLOADS)
    p_run.add_argument("--design", default="WL-Cache", choices=ALL_DESIGNS)
    _add_sim_args(p_run)
    p_run.set_defaults(func=cmd_run)

    p_cmp = sub.add_parser("compare", help="compare designs on one workload")
    p_cmp.add_argument("workload", choices=ALL_WORKLOADS)
    p_cmp.add_argument("--designs", nargs="+", default=list(DESIGNS),
                       choices=ALL_DESIGNS)
    _add_sim_args(p_cmp)
    p_cmp.set_defaults(func=cmd_compare)

    p_sweep = sub.add_parser(
        "sweep", help="run a workload x design grid (parallelizable)")
    p_sweep.add_argument("--apps", nargs="+", default=None,
                         choices=ALL_WORKLOADS,
                         help="workload subset (default: all 23)")
    p_sweep.add_argument("--designs", nargs="+", default=list(DESIGNS),
                         choices=ALL_DESIGNS)
    p_sweep.add_argument("--jobs", "-j", type=int, default=None,
                         help="worker processes (default: REPRO_JOBS env, "
                              "else serial)")
    p_sweep.add_argument("--csv", default=None, metavar="PATH",
                         help="write the result table as CSV")
    p_sweep.add_argument("--quiet", action="store_true",
                         help="suppress the progress line")
    _add_sim_args(p_sweep)
    p_sweep.set_defaults(func=cmd_sweep)

    p_lint = sub.add_parser(
        "lint", help="statically analyze the suite's workload programs")
    p_lint.add_argument("--apps", nargs="*", default=None,
                        choices=ALL_WORKLOADS,
                        help="workload subset (default: all 23)")
    p_lint.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", help="report format")
    p_lint.add_argument("--scale", type=float, default=1.0,
                        help="workload size multiplier")
    p_lint.add_argument("--intermittent", action="store_true",
                        help="also run the checkpoint-region "
                             "intermittency rules L009-L014")
    p_lint.add_argument("--budget-cycles", type=int, default=None,
                        metavar="N",
                        help="override the derived capacitor budget "
                             "used by L011 (worst-case cycles)")
    p_lint.add_argument("--errors-only", action="store_true",
                        help="report only error-severity findings; "
                             "warnings no longer drive a non-zero exit")
    p_lint.set_defaults(func=cmd_lint)

    p_audit = sub.add_parser(
        "audit", help="statically audit the generated jit/memfast/batch "
                      "Python against its structural contracts")
    p_audit.add_argument("--apps", nargs="+", default=None,
                         choices=ALL_WORKLOADS,
                         help="workload subset (default: all 23)")
    p_audit.add_argument("--designs", nargs="+", default=None,
                         choices=ALL_DESIGNS,
                         help="design subset (default: the 5 paper "
                              "designs)")
    p_audit.add_argument("--format", choices=("text", "json", "sarif"),
                         default="text", help="report format")
    p_audit.add_argument("--scale", type=float, default=1.0,
                         help="workload size multiplier")
    p_audit.set_defaults(func=cmd_audit)

    p_trace = sub.add_parser(
        "trace", help="record an event trace and export it for Perfetto")
    p_trace.add_argument("workload", choices=ALL_WORKLOADS)
    p_trace.add_argument("design",
                         help="design name or alias (e.g. wl, nvsram)")
    p_trace.add_argument("power_trace", metavar="trace",
                         choices=sorted(TRACE_FACTORIES) + ["none"],
                         help="power trace ('none' for a failure-free run)")
    p_trace.add_argument("--out", default="trace.json", metavar="PATH",
                         help="Chrome/Perfetto trace output (default: "
                              "trace.json)")
    p_trace.add_argument("--csv", default=None, metavar="PATH",
                         help="also write the events as CSV")
    p_trace.add_argument("--text", default=None, metavar="PATH",
                         help="also write the golden one-line-per-event form")
    p_trace.add_argument("--scale", type=float, default=1.0,
                         help="workload size multiplier")
    p_trace.add_argument("--maxline", type=int, default=None)
    p_trace.add_argument("--seed", type=int, default=None, help="trace seed")
    p_trace.add_argument("--no-detail", dest="detail", action="store_false",
                         help="omit per-access hit events (long runs)")
    p_trace.add_argument("--stats-json", default=None, metavar="PATH",
                         help="dump run statistics (incl. metrics) as JSON")
    p_trace.set_defaults(func=cmd_trace)

    p_mc = sub.add_parser(
        "campaign",
        help="Monte-Carlo outage campaign over stochastic trace ensembles")
    p_mc.add_argument("--apps", nargs="+", default=None,
                      choices=ALL_WORKLOADS,
                      help="workload subset (default: all 23)")
    p_mc.add_argument("--designs", nargs="+",
                      default=["WL-Cache", BASELINE_DESIGN],
                      choices=ALL_DESIGNS)
    p_mc.add_argument("--families", nargs="+",
                      default=["mc-rf-home", "mc-rf-office"],
                      help="stochastic trace families (mc-*, any "
                           "registered trace, or csv:<recording.csv>)")
    p_mc.add_argument("--seeds", type=int, default=8, metavar="N",
                      help="trace seeds per family (default: 8)")
    p_mc.add_argument("--seed-offset", type=int, default=0, metavar="K",
                      help="first seed (shard a big campaign across "
                           "machines, then --from-json merge)")
    p_mc.add_argument("--jobs", "-j", type=int, default=None,
                      help="worker processes (default: REPRO_JOBS env, "
                           "else serial)")
    p_mc.add_argument("--scale", type=float, default=1.0,
                      help="workload size multiplier")
    p_mc.add_argument("--jit", action="store_true",
                      help=argparse.SUPPRESS)
    p_mc.add_argument("--memfast", action="store_true",
                      help=argparse.SUPPRESS)
    p_mc.add_argument("--batch", action="store_true",
                      help="batch points sharing a kernel: record once, "
                           "replay per (design, family, seed)")
    p_mc.add_argument("--lockstep", action="store_true",
                      help="advance same-shaped replays in lockstep "
                           "through one compiled column kernel "
                           "(implies --batch)")
    p_mc.add_argument("--stream-cache", default=None, metavar="DIR",
                      help="root the persistent artifact store at DIR for "
                           "this campaign (legacy alias: recordings, "
                           "generated sources, and memoized results all "
                           "share it); point campaign shards "
                           "(--seed-offset runs on several machines or "
                           "invocations) at the same directory so each "
                           "kernel records only once")
    p_mc.add_argument("--no-verify", action="store_true",
                      help="skip per-point crash-consistency checks")
    p_mc.add_argument("--out", default="results/campaign", metavar="PREFIX",
                      help="output prefix for _summary.json/_summary.csv/"
                           "_speedup.svg/_survival.svg "
                           "(default: results/campaign)")
    p_mc.add_argument("--points-json", default=None, metavar="PATH",
                      help="also persist the raw per-point results")
    p_mc.add_argument("--from-json", nargs="+", default=None, metavar="PATH",
                      help="skip running: merge these campaign JSONs "
                           "losslessly and summarize the union")
    p_mc.add_argument("--confidence", type=float, default=0.95)
    p_mc.add_argument("--n-boot", type=int, default=1000,
                      help="bootstrap resamples per interval")
    p_mc.add_argument("--boot-seed", type=int, default=2023,
                      help="bootstrap RNG seed (summaries are "
                           "deterministic per seed)")
    p_mc.add_argument("--no-svg", action="store_true",
                      help="write only JSON/CSV")
    p_mc.add_argument("--quiet", action="store_true",
                      help="suppress the progress line")
    p_mc.set_defaults(func=cmd_campaign)

    p_cache = sub.add_parser(
        "cache",
        help="inspect/maintain the persistent artifact store "
             "(REPRO_CACHE_DIR)")
    cache_sub = p_cache.add_subparsers(dest="action", required=True)
    p_cstats = cache_sub.add_parser(
        "stats", help="disk usage per artifact class + process counters")
    p_cstats.add_argument("--json", action="store_true",
                          help="machine-readable report")
    p_cgc = cache_sub.add_parser(
        "gc", help="evict least-recently-used entries to a byte budget")
    p_cgc.add_argument("--max-size", required=True, metavar="SIZE",
                       help="target size, e.g. 500M, 2G, or plain bytes")
    cache_sub.add_parser("clear", help="remove every store entry")
    p_cache.set_defaults(func=cmd_cache)

    p_plot = sub.add_parser("plot", help="render a bench CSV to SVG")
    p_plot.add_argument("csv", help="a bench CSV, or a results directory to render everything")
    p_plot.add_argument("--out", default=None)
    p_plot.add_argument("--kind", choices=("bar", "line"), default="bar")
    p_plot.add_argument("--log-y", action="store_true")
    p_plot.add_argument("--max-rows", type=int, default=None)
    p_plot.set_defaults(func=cmd_plot)

    p_list = sub.add_parser("list", help="list workloads/designs/traces")
    p_list.set_defaults(func=cmd_list)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
