"""Basic-block + trace JIT for the guest interpreter.

Compiles each :class:`~repro.isa.program.Program` into specialized Python
functions (generated source + ``exec``) at two granularities - one
function per basic block, plus superblock *traces* for budget-rich chunks
- and installs a two-tier dispatch ``run_chunk`` on the core, with a
process-global code cache shared across every sweep point that runs the
same kernel. Enable with ``SimConfig(jit=True)``, ``--jit`` on the CLI,
or ``REPRO_JIT=1`` in the environment. See ``docs/jit.md`` for the
compilation model, cache lifetime, and fallback rules.
"""

from repro.jit.cache import (TRACE_CAP, CompiledProgram, clear_code_cache,
                             code_cache_stats, get_compiled,
                             program_content_key)
from repro.jit.dispatch import (ENV_VAR, JITState, attach_jit, detach_jit,
                                jit_enabled)

__all__ = [
    "ENV_VAR",
    "TRACE_CAP",
    "CompiledProgram",
    "JITState",
    "attach_jit",
    "clear_code_cache",
    "code_cache_stats",
    "detach_jit",
    "get_compiled",
    "jit_enabled",
    "program_content_key",
]
