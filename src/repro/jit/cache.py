"""Process-global JIT code cache, keyed by program *content*.

A sweep builds one ``System`` per grid point, and pool workers rebuild
workload programs from scratch, so caching compiled code on a ``Program``
instance alone would recompile per point. Instead compiled modules are
cached process-globally under a content key - ``(name, mem_bytes,
instruction tuple)`` plus the frozen :class:`CycleCosts` - so a 500-point
sweep compiles each kernel once per cost model per process. A per-program
``meta`` shortcut skips even the key lookup after the first attach.

What is cached is the compiled *module code object* (whose ``_bind``
builds the dispatch table); binding executes it in a fresh namespace per
core, producing cheap per-core function objects closed over that core's
memory-system methods. Suffix blocks (mid-block resume points, common
under small chunk budgets) are compiled lazily and cached alongside.

When the persistent artifact store is enabled (:mod:`repro.store`),
every rendered source is persisted under its content key + the jit
generator fingerprint, and a cold process *loads* the source text
instead of re-rendering it ("loads"/"suffix_loads"/"trace_loads" in the
stats; the Python ``compile`` still runs, rendering is what is saved).
Loaded sources land in the A009 audit ledger so ``repro audit`` can
prove they re-render byte-identical.
"""

from __future__ import annotations

import os
from bisect import bisect_right

from repro.cpu.core import program_content_key
from repro.cpu.costs import CycleCosts
from repro.isa.program import Program
from repro.jit.blocks import (block_meta, block_spans,
                              compile_blocks_source, compile_suffix_source,
                              compile_trace_source)
from repro.store.sources import jit_fingerprint, load_source, save_source

_COMPILED_KEY = "_jit_compiled"

#: Maximum instructions a trace may inline. Also the dispatch threshold:
#: the dispatcher only runs traces while the remaining chunk budget is at
#: least this large, so a trace can never overshoot the budget and tight
#: (power-trace) chunks keep using exactly-bounded basic blocks.
TRACE_CAP = 256

#: content-key -> CompiledProgram; bounded only by distinct (kernel, cost
#: model) pairs per process, which a sweep keeps small. The cap is a
#: backstop for program-fuzzing tests.
_CODE_CACHE: dict[tuple, "CompiledProgram"] = {}
_CACHE_CAP = 512

_STATS = {"compiles": 0, "hits": 0, "suffix_compiles": 0,
          "trace_compiles": 0, "loads": 0, "suffix_loads": 0,
          "trace_loads": 0, "trace_evictions": 0}

#: cap on per-program cached traces; a pathological chunk pattern can
#: root a trace at every pc, and each trace holds source + code.
_TRACE_CAP_ENV = "REPRO_TRACE_CACHE_CAP"
_TRACE_CACHE_CAP = 512


def _trace_cache_cap() -> int:
    raw = os.environ.get(_TRACE_CAP_ENV, "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return _TRACE_CACHE_CAP


class CompiledProgram:
    """Compiled form of one (program content, cost model, mode) tuple.

    ``memfast=True`` modules inline the fast-path load-hit probe (see
    :mod:`repro.memfast`); their ``_bind`` takes the extra ``_mf``
    bindings tuple. ``record=True`` modules append exit codes to the
    extra ``_q`` list (the batch engine's stream recorder, see
    :mod:`repro.batch`) and support blocks/suffixes only - recording
    needs the exact basic-block sequence, which traces erase. Each mode
    is cached separately because the generated source differs.
    """

    __slots__ = ("program", "costs", "memfast", "record", "n", "source",
                 "module_code", "block_meta", "_starts", "_suffix_codes",
                 "_trace_codes", "suffix_sources", "trace_sources")

    def __init__(self, program: Program, costs: CycleCosts,
                 memfast: str | bool = False, record: bool = False,
                 source: str | None = None):
        self.program = program
        self.costs = costs
        self.memfast = memfast
        self.record = record
        self.n = len(program.instructions)
        if source is None:
            self.source, self.block_meta = compile_blocks_source(
                program, costs, memfast, record)
        else:
            # warm start from persisted source text: the block metadata
            # is a pure function of the block partition (see block_meta)
            self.source = source
            self.block_meta = block_meta(program)
        self.module_code = compile(
            self.source, f"<jit:{program.name}>", "exec")
        self._starts = sorted(s for s, _e in block_spans(program))
        self._suffix_codes: dict[int, object] = {}
        self._trace_codes: dict[int, object] = {}
        # lazily-compiled sources, retained so the static codegen
        # auditor (repro audit) can verify exactly what a run executed
        self.suffix_sources: dict[int, str] = {}
        self.trace_sources: dict[int, str] = {}

    def bind(self, args: tuple) -> list:
        """Instantiate the per-core dispatch table: ``table[leader] =
        (fn, length)``, ``None`` at non-leader indices."""
        ns: dict = {}
        exec(self.module_code, ns)
        return ns["_bind"](*args)

    def _store_key(self, kind: str, *extra) -> tuple:
        return (kind, jit_fingerprint(), program_content_key(self.program),
                self.costs, self.memfast, self.record, *extra)

    def suffix_entry(self, pc: int, args: tuple) -> tuple:
        """Bind the suffix block resuming at mid-block ``pc`` (compiling
        it on first demand, then reusing the cached code object)."""
        code = self._suffix_codes.get(pc)
        if code is None:
            j = bisect_right(self._starts, pc)
            end = self._starts[j] if j < len(self._starts) else self.n

            def render() -> str:
                return compile_suffix_source(self.program, self.costs, pc,
                                             end, self.memfast, self.record)

            key = self._store_key("jit-suffix", pc, end)
            src = load_source(key, f"jit:{self.program.name}+{pc}", render)
            if src is None:
                src = render()
                _STATS["suffix_compiles"] += 1
                save_source(key, src)
            else:
                _STATS["suffix_loads"] += 1
            code = compile(src, f"<jit:{self.program.name}+{pc}>", "exec")
            self._suffix_codes[pc] = code
            self.suffix_sources[pc] = src
        ns: dict = {}
        exec(code, ns)
        return ns["_bind"](*args)

    def trace_entry(self, pc: int, args: tuple) -> tuple:
        """Bind the trace rooted at ``pc`` (compiled on first demand per
        process, then shared across cores like the block module)."""
        assert not self.record, "record mode has no trace tier"
        code = self._trace_codes.get(pc)
        if code is None:

            def render() -> str:
                return compile_trace_source(self.program, self.costs, pc,
                                            TRACE_CAP, self.memfast)

            key = self._store_key("jit-trace", pc, TRACE_CAP)
            src = load_source(key, f"jit:{self.program.name}~{pc}", render)
            if src is None:
                src = render()
                _STATS["trace_compiles"] += 1
                save_source(key, src)
            else:
                _STATS["trace_loads"] += 1
            if len(self._trace_codes) >= _trace_cache_cap():
                oldest = next(iter(self._trace_codes))
                del self._trace_codes[oldest]
                self.trace_sources.pop(oldest, None)
                _STATS["trace_evictions"] += 1
            code = compile(src, f"<jit:{self.program.name}~{pc}>", "exec")
            self._trace_codes[pc] = code
            self.trace_sources[pc] = src
        ns: dict = {}
        exec(code, ns)
        return ns["_bind"](*args)


def get_compiled(program: Program, costs: CycleCosts,
                 memfast: str | bool = False,
                 record: bool = False) -> CompiledProgram:
    """The compiled form for ``(program, costs, memfast, record)``, via
    the per-program shortcut, then the process-global content-keyed
    cache."""
    per_program = program.meta.setdefault(_COMPILED_KEY, {})
    meta_key = (costs, memfast, record)
    compiled = per_program.get(meta_key)
    if compiled is None:
        key = (program_content_key(program), costs, memfast, record)
        compiled = _CODE_CACHE.get(key)
        if compiled is None:
            if len(_CODE_CACHE) >= _CACHE_CAP:
                _CODE_CACHE.clear()
            store_key = ("jit-blocks", jit_fingerprint(), key[0], costs,
                         memfast, record)
            src = load_source(
                store_key, f"jit:{program.name}",
                lambda: compile_blocks_source(program, costs, memfast,
                                              record)[0])
            if src is None:
                compiled = CompiledProgram(program, costs, memfast, record)
                _STATS["compiles"] += 1
                save_source(store_key, compiled.source)
            else:
                compiled = CompiledProgram(program, costs, memfast, record,
                                           source=src)
                _STATS["loads"] += 1
            _CODE_CACHE[key] = compiled
        else:
            _STATS["hits"] += 1
        per_program[meta_key] = compiled
    else:
        _STATS["hits"] += 1
    return compiled


def code_cache_stats() -> dict:
    """Cache counters (for benchmarks and tests)."""
    return {"programs": len(_CODE_CACHE), **_STATS}


def clear_code_cache() -> None:
    """Drop all compiled code (tests)."""
    _CODE_CACHE.clear()
    for k in _STATS:
        _STATS[k] = 0
