"""Attaching the JIT ``run_chunk`` to a core.

:func:`attach_jit` swaps the core's per-instruction interpreter loop for a
two-tier compiled dispatcher: *traces* (superblocks spanning jumps and
branch fall-throughs, see :mod:`repro.jit.blocks`) while the chunk budget
is comfortable, exactly-bounded *basic blocks* once it tightens, so the
dispatcher loops once per trace/block instead of once per instruction.
The replacement is an *instance attribute* -
the same zero-overhead-when-off shadowing the trace recorder and the
invariant checker use - so ``System.run`` picks it up through its ordinary
``core.run_chunk`` binding and nothing changes when the JIT is off.

Fidelity contract (enforced by the differential tests):

* Chunk semantics are bit-identical to the interpreter. Whole blocks run
  only while they fit the remaining instruction budget; the tail of a
  chunk (and any resume at a mid-block pc that a *previous* tail left
  behind, until its suffix block is compiled) is delegated to the pristine
  interpreter for exactly the remaining budget. Since per-chunk retirement
  counts and cycle deltas match the interpreter exactly, the simulator's
  float energy accounting - which is sensitive to chunk boundaries -
  accumulates in the same order and stays bit-identical.
* The JIT refuses to attach (returns ``None``) when the methods it inlines
  around have been shadowed: a trace recorder wrapping ``run_chunk`` or
  the memory system's ``load``/``store``/``store_masked``, or the
  invariant checker wrapping ``store_masked``. Compiled blocks bind those
  methods at attach time and would silently bypass any later wrapper, so
  observability and checking always win over speed.

``REPRO_JIT=1`` turns the JIT on globally (mirroring ``REPRO_TRACE`` /
``REPRO_CHECK``); ``SimConfig(jit=True)`` turns it on per run.
"""

from __future__ import annotations

import os

from repro.cpu.core import InOrderCore, _sdiv, _srem
from repro.errors import ExecutionError
from repro.jit.cache import TRACE_CAP, CompiledProgram, get_compiled

#: Environment switch: ``REPRO_JIT=1`` enables the JIT for every run in
#: this process (sweep pool workers re-export it, like the trace/check
#: switches).
ENV_VAR = "REPRO_JIT"

#: Methods the compiled blocks bind directly; a wrapper on any of these
#: means the JIT must stand down.
_INLINED_MEM_METHODS = ("load", "store", "store_masked")


def jit_enabled() -> bool:
    """True when ``REPRO_JIT`` requests JIT compilation globally."""
    return os.environ.get(ENV_VAR, "").strip() not in ("", "0")


class JITState:
    """Per-core JIT bookkeeping, parked on ``core._jit_state``."""

    __slots__ = ("compiled", "table", "traces", "bind_args")

    def __init__(self, compiled: CompiledProgram, table: list,
                 bind_args: tuple):
        self.compiled = compiled
        self.table = table
        self.traces: dict[int, tuple] = {}  # root pc -> bound trace entry
        self.bind_args = bind_args


def _shadowed(core: InOrderCore) -> bool:
    """True when instrumentation has wrapped a method the JIT inlines.

    The memfast tier's handlers (marked ``_memfast``) are the one kind
    of shadow the JIT cooperates with: compiled code binds them directly
    and the fast path's chunk-flush wrapper goes on *after* the JIT, so
    anything it finds already on ``run_chunk`` is a real wrapper.
    """
    if "run_chunk" in vars(core):
        return True
    mem_dict = vars(core.memsys)
    for name in _INLINED_MEM_METHODS:
        fn = mem_dict.get(name)
        if fn is not None and not getattr(fn, "_memfast", False):
            return True
    return False


def attach_jit(core: InOrderCore) -> JITState | None:
    """Install the block-dispatch ``run_chunk`` on ``core``.

    Returns the :class:`JITState` on success, or ``None`` when the JIT
    disengages because the trace recorder / invariant checker has shadowed
    the methods compiled blocks bind (observability always wins).
    Attaching twice is a no-op returning the existing state.
    """
    state = getattr(core, "_jit_state", None)
    if state is not None:
        return state
    if getattr(core, "_replay", False):
        # a batch-tier ReplayCore: the stream already encodes execution,
        # there is nothing left to compile (batch outranks jit)
        return None
    if _shadowed(core):
        return None
    mem = core.memsys
    # With the memfast tier attached, compile in memfast mode: load and
    # store hits are inlined against the ``_mf`` runtime bindings and the
    # bound ``_load``/``_store``/``_sm`` below are the fast handlers. The
    # module variant is keyed by the design's store family ("base" keeps
    # stores as calls; "wl"/"wb" additionally inline that store hit), so
    # one compiled module is shared across every geometry sweep point of
    # a family.
    mf_state = getattr(mem, "_memfast_state", None)
    mf = mf_state.jit_bindings() if mf_state is not None else None
    mf_mode = (mf_state.store_shape or "base") if mf_state is not None \
        else False
    compiled = get_compiled(core.program, core.costs, memfast=mf_mode)
    # ``ic_lines`` is mutated in place everywhere (flush uses .clear()),
    # so binding the set object itself is safe for the core's lifetime.
    bind_args = (mem.load, mem.store, mem.store_masked, core.ic_lines,
                 _sdiv, _srem, ExecutionError)
    if mf is not None:
        bind_args += (mf,)
    table = compiled.bind(bind_args)
    state = JITState(compiled, table, bind_args)
    core.run_chunk = _make_run_chunk(core, state)
    core._jit_state = state
    return state


def detach_jit(core: InOrderCore) -> bool:
    """Remove the JIT ``run_chunk``, restoring the interpreter. Used by
    the trace recorder when it attaches to an already-JITted core (its
    wrappers must see every memory call). Returns True if detached.

    When the memfast chunk-flush wrapper sits on top of the dispatcher,
    the whole fast tier comes off with the JIT: the interpreter would
    otherwise bind the fast handlers with no chunk-end flush left to
    publish their deferred stats.
    """
    if getattr(core, "_jit_state", None) is None:
        return False
    rc = vars(core).get("run_chunk")
    del core.run_chunk
    del core._jit_state
    if rc is not None and getattr(rc, "_memfast", False):
        from repro.memfast import detach_design
        detach_design(core.memsys)
    return True


def _make_run_chunk(core: InOrderCore, state: JITState):
    """The two-tier dispatch loop, closed over one core's bound tables.

    While the remaining budget is at least :data:`~repro.jit.cache.
    TRACE_CAP`, dispatch runs *traces* (superblocks capped at that length,
    so they can never overshoot the budget); once the budget tightens it
    falls back to exactly-bounded basic blocks, and the final partial
    block is delegated to the interpreter. Retirement and halting are read
    back from ``st[7]``/``st[8]`` after every compiled call.
    """
    table = state.table
    traces = state.traces
    suffix_entry = state.compiled.suffix_entry
    trace_entry = state.compiled.trace_entry
    bind_args = state.bind_args
    prog_n = len(core.program.instructions)
    trace_cap = TRACE_CAP
    # pc-indexed memo of the bound trace functions: the hot dispatch is
    # a list index instead of a dict probe plus tuple unpack
    tfns: list = [None] * prog_n
    # the *pristine* interpreter, for budget tails (bound to the class so
    # a shadowed instance attribute can never recurse into us)
    interp = InOrderCore.run_chunk.__get__(core, InOrderCore)
    name = core.program.name

    def run_chunk(max_instrs: int) -> tuple[int, int]:
        if core.halted:
            return (0, 0)
        regs = core.regs  # re-read every call: restore_arch_state rebinds
        pc = core.pc
        cycle0 = core.cycle
        st = [cycle0, core.ic_last, core.ic_fetches, core.ic_misses,
              core.n_loads, core.n_stores, core.n_branches, 0, 0]
        n = 0
        halted = False
        tail = False
        try:
            while n < max_instrs:
                rem = max_instrs - n
                if rem >= trace_cap and 0 <= pc < prog_n:
                    fn = tfns[pc]
                    if fn is None:
                        entry = traces.get(pc)
                        if entry is None:
                            entry = traces[pc] = trace_entry(pc, bind_args)
                        fn = tfns[pc] = entry[0]
                    pc = fn(regs, st)
                    n += st[7]
                    if st[8]:  # trace parked on HALT
                        halted = True
                        break
                    continue
                try:
                    entry = table[pc]
                except IndexError:
                    raise ExecutionError(
                        f"{name}: pc {pc} outside program") from None
                if entry is None:  # mid-block resume: bind a suffix block
                    entry = table[pc] = suffix_entry(pc, bind_args)
                if entry[1] > rem:
                    tail = True  # block exceeds the budget: interpret it
                    break
                pc = entry[0](regs, st)
                n += st[7]
                if st[8]:  # block ended on HALT
                    halted = True
                    break
        except BaseException:
            # mirror the interpreter's error contract: icache state and
            # retirement counters are flushed, pc/cycle/instret are not
            core.ic_last = st[1]
            core.ic_fetches = st[2]
            core.ic_misses = st[3]
            core.n_loads = st[4]
            core.n_stores = st[5]
            core.n_branches = st[6]
            raise
        core.ic_last = st[1]
        core.ic_fetches = st[2]
        core.ic_misses = st[3]
        core.n_loads = st[4]
        core.n_stores = st[5]
        core.n_branches = st[6]
        core.pc = pc
        core.cycle = st[0]
        core.instret += n
        if halted:
            core.halted = True
        regs[0] = 0  # same rim insurance as the interpreter
        if tail:
            done, _ = interp(max_instrs - n)
            n += done
        return (n, core.cycle - cycle0)

    return run_chunk
