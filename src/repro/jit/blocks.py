"""Basic-block code generation: guest blocks -> specialized Python source.

Each basic block of a :class:`~repro.isa.program.Program` (partitioned by
:func:`repro.lint.cfg.build_cfg`) is compiled into one Python function

    def _bN(regs, st, ...bound helpers...): -> next pc

specialized against the block's instructions and the frozen
:class:`~repro.cpu.costs.CycleCosts`:

* ALU chains become straight-line statements over register *locals*
  (``r5 = (r3 + r4) & 0xFFFFFFFF``); registers read by the block are
  loaded from ``regs`` once at entry and written back once at exit.
* Constant cycle costs (pre-folded per-opcode base costs, ``mem_issue``,
  the taken-branch extra) are accumulated at codegen time and flushed as a
  single ``cycle += K`` immediately before each point where the cycle
  count is observable - a memory-system call's ``now`` argument or the
  block's exit - so the threaded cycle values are bit-identical to the
  interpreter's.
* I-cache accounting is hoisted from per-instruction to once per 16-
  instruction line run: only the block's first line needs the runtime
  ``ic_last`` comparison, subsequent line crossings are unconditional.
* Loads/stores/branches call the bound memory-system methods exactly as
  the interpreter does (same arguments, same ``now``), with the reported
  latency threaded back into ``cycle`` mid-block.

The mutable core state crossing the block boundary travels in a 9-slot
list ``st``: ``[cycle, ic_last, ic_fetches, ic_misses, n_loads, n_stores,
n_branches, retired, halted]``. Slot 7 carries the number of instructions
the call retired (every exit writes its compile-time constant), slot 8 is
set to 1 by exits that parked on a HALT.

Two granularities are generated from the same emitter:

* **Basic blocks** (:func:`compile_blocks_source`): one function per CFG
  block; every exit retires the full block, so the dispatcher can bound
  retirement exactly - the tier used when the chunk budget is tight.
* **Traces** (:func:`compile_trace_source`): superblocks rooted at any
  pc that keep going *through* unconditional jumps, calls (static link
  values), and conditional-branch fall-throughs; taken branches become
  side exits that flush a snapshot of the threaded state and return the
  target. A trace ends at a JALR (dynamic target), a HALT, a pc already
  in the trace (loop back-edge), or the length cap. Register values stay
  in Python locals across everything a trace inlines, which is where the
  speedup over block-at-a-time dispatch comes from: one dispatch per
  loop iteration instead of one per basic block.

Fidelity notes (the differential tests rely on these):

* Fault paths reproduce the interpreter's :class:`ExecutionError` messages
  exactly and leave the core in the interpreter's error state: registers
  written so far and the ``st`` counters are flushed, ``pc``/``cycle``/
  ``instret`` are not advanced.
* Writes to the x0 sink slot (``regs[32]``) are elided entirely - the
  interpreter parks dead results there, the JIT never materializes them.
  Architectural state (``regs[:32]``) is bit-identical.
* ``HALT`` returns its own index (the interpreter stays parked on the
  HALT) and is counted as a retired instruction, like the interpreter.

A third emission mode, **record** (used by :mod:`repro.batch`), augments
the block functions with a bound list ``_q`` to which every exit appends
an *exit code* ``2 * start + taken`` (``taken`` is 1 only for the taken
arm of a conditional branch). Replaying the code sequence reconstructs
the exact retired-instruction stream of a run - which instructions, in
which order, with which static costs - without re-executing any
arithmetic. Record mode is compiled against ``ifetch_miss=0`` costs and
a latency-free recording memory system, so the threaded cycle counts are
the pure static costs the batch engine's prefix-sum arrays are built
from; it never composes with memfast (the recording memsys is not a
cache).
"""

from __future__ import annotations

from repro.cpu.core import _ILINE_SHIFT, _SINK, _base_cost_table
from repro.cpu.costs import CycleCosts
from repro.isa import opcodes as oc
from repro.isa.program import Program
from repro.lint.cfg import build_cfg

_U32 = 0xFFFFFFFF
_SIGN = 0x80000000
_MOD = 1 << 32

#: Formats whose ``a`` field is a pure destination (x0 -> sink rewrite).
_DEST_A = oc.R_FORMAT | oc.I_FORMAT | oc.LI_FORMAT | oc.LOAD_FORMAT \
    | oc.J_FORMAT | oc.JR_FORMAT
#: Pure ops (no memory/control side effects): dead when the dest is x0.
_PURE = oc.R_FORMAT | oc.I_FORMAT | oc.LI_FORMAT

_BLOCK_META_KEY = "_jit_blocks"

# op -> (python comparison, signed?) for branch conditions
_BRANCH_CMP = {
    oc.BEQ: ("==", False), oc.BNE: ("!=", False),
    oc.BLT: ("<", True), oc.BGE: (">=", True),
    oc.BLTU: ("<", False), oc.BGEU: (">=", False),
}

# load kind -> (alignment mask, fault mnemonic); LBU/LHU share lb/lh
# messages with their signed twins, exactly like the interpreter.
_LOAD_FAULT = {oc.LW: (3, "lw"), oc.LB: (0, "lb"), oc.LBU: (0, "lb"),
               oc.LH: (1, "lh"), oc.LHU: (1, "lh")}
_STORE_FAULT = {oc.SW: (3, "sw"), oc.SB: (0, "sb"), oc.SH: (1, "sh")}


def block_spans(program: Program) -> list[tuple[int, int]]:
    """The program's basic-block partition as ``(start, end)`` spans,
    computed via the lint CFG and cached on ``program.meta``."""
    spans = program.meta.get(_BLOCK_META_KEY)
    if spans is None:
        cfg = build_cfg(program.instructions)
        spans = [(b.start, b.end) for b in cfg.blocks]
        program.meta[_BLOCK_META_KEY] = spans
    return spans


def _sgn(expr: str) -> str:
    """Signed view of a u32 expression (mirrors the interpreter's idiom)."""
    if expr == "0":
        return "0"
    return f"({expr} - {_MOD} if {expr} & {_SIGN} else {expr})"


def _io(op: int, a: int, b: int, c: int):
    """(source regs, dest reg | None) for one instruction, pre-sink-rewrite."""
    if op in oc.R_FORMAT:
        return (b, c), a
    if op in oc.I_FORMAT or op in oc.LOAD_FORMAT or op == oc.JALR:
        return (b,), a
    if op in oc.STORE_FORMAT or op in oc.B_FORMAT:
        return (a, b), None
    if op == oc.LI or op == oc.JAL:
        return (), a
    return (), None  # HALT / NOP


class _BlockEmitter:
    """Emits the Python source of one basic block ``[start, end)``."""

    def __init__(self, program: Program, costs: CycleCosts,
                 memfast: str | bool = False, record: bool = False):
        self.instrs = program.instructions
        self.name = program.name
        self.mem_bytes = program.mem_bytes
        self.cost_table = _base_cost_table(costs)
        self.c_brx = costs.branch_taken_extra
        self.c_mem = costs.mem_issue
        self.c_imiss = costs.ifetch_miss
        #: inline the memfast load-hit probe (MRU tag check + deferred
        #: stats) instead of calling ``_load``; the probe's runtime
        #: bindings arrive through the ``_mf`` tuple so one compiled
        #: module still serves every geometry in a sweep
        self.memfast = memfast
        #: append an exit code to the bound ``_q`` at every exit (the
        #: batch engine's stream recorder); exclusive with memfast
        self.record = record
        assert not (record and memfast), "record mode never inlines memfast"

    # -- per-emit state ------------------------------------------------
    def _reset(self, start: int, end: int) -> None:
        self.start, self.end = start, end
        self.lines: list[str] = []
        self.acc = 0  # pending constant cycles, flushed lazily
        self.written: list[int] = []  # arch regs written so far, in order
        self.wset: set[int] = set()
        self.nl = self.ns = self.nb = 0
        self.k = 0  # instructions retired so far along the emitted path
        self.cur_line = start >> _ILINE_SHIFT

    def _sink(self, op: int, a: int) -> int:
        return _SINK if a == 0 and op in _DEST_A else a

    def _src(self, reg: int) -> str:
        return "0" if reg == 0 else f"r{reg}"

    def _emit(self, text: str) -> None:
        self.lines.append("        " + text)

    def _flush(self) -> None:
        if self.acc:
            self._emit(f"cycle += {self.acc}")
            self.acc = 0

    def _mark_write(self, reg: int) -> None:
        if reg not in self.wset:
            self.wset.add(reg)
            self.written.append(reg)

    # -- prescan: registers the path reads before writing --------------
    def _prescan(self, indices) -> list[int]:
        reads: list[int] = []
        rset: set[int] = set()
        wset: set[int] = set()
        for i in indices:
            op, a, b, c = self.instrs[i]
            a = self._sink(op, a)
            srcs, dst = _io(op, a, b, c)
            if dst == _SINK and op in _PURE:
                continue  # dead op: elided, sources unused
            for s in srcs:
                if s and s not in wset and s not in rset:
                    rset.add(s)
                    reads.append(s)
            if dst is not None and dst != _SINK:
                wset.add(dst)
        return reads

    # -- exit sequences ------------------------------------------------
    def _state_flush(self, indent: str = "") -> None:
        """st counters + written regs; st[0] is emitted by the caller.
        Everything flushed is the compile-time snapshot at this point of
        the path, so mid-path side exits are exact."""
        e = lambda t: self.lines.append("        " + indent + t)  # noqa: E731
        e(f"st[1] = {self.cur_line}")
        if self.nl:
            e(f"st[4] += {self.nl}")
        if self.ns:
            e(f"st[5] += {self.ns}")
        if self.nb:
            e(f"st[6] += {self.nb}")
        e(f"st[7] = {self.k}")
        for reg in self.written:
            e(f"regs[{reg}] = r{reg}")

    def _side_exit(self, indent: str, extra_cycles: int, target: str,
                   halt: bool = False) -> None:
        """A complete exit: flush the state snapshot and return ``target``."""
        e = lambda t: self.lines.append("        " + indent + t)  # noqa: E731
        total = self.acc + extra_cycles
        e(f"st[0] = cycle + {total}" if total else "st[0] = cycle")
        self._state_flush(indent)
        if halt:
            e("st[8] = 1")
        if self.record:
            e(f"_q.append({2 * self.start})")
        e(f"return {target}")

    def _fault(self, cond: str, mnemonic: str, idx: int, addr: str) -> None:
        """A guarded interpreter-identical ExecutionError raise. The core's
        pc/cycle/instret stay stale (the interpreter's error contract);
        registers written so far and the st counters are flushed."""
        prefix = f"{self.name}@{idx}: bad {mnemonic} addr "
        self._emit(f"if {cond}:")
        self.lines.append(
            f"            st[0] = cycle + {self.acc}" if self.acc
            else "            st[0] = cycle")
        self._state_flush("    ")
        self.lines.append(f"            raise _EE({prefix!r} + hex({addr}))")

    # -- fetch accounting ----------------------------------------------
    def _fetch(self, line: int, first: bool) -> None:
        if first:
            # only the block entry can re-fetch the line the previous
            # block ended on; mid-block line crossings always fetch
            self._emit(f"if st[1] != {line}:")
            pad = "    "
        else:
            pad = ""
        e = lambda t: self.lines.append("        " + pad + t)  # noqa: E731
        e("st[2] += 1")
        e(f"if {line} not in _lines:")
        e(f"    _lines.add({line})")
        e("    st[3] += 1")
        if self.c_imiss:
            e(f"    cycle += {self.c_imiss}")
        self.cur_line = line

    # -- instruction emitters ------------------------------------------
    def _emit_alu(self, op: int, a: int, b: int, c: int) -> None:
        if a == _SINK:
            return  # dead: cost already accumulated, no value computed
        rb, dst = self._src(b), f"r{a}"
        if op in oc.R_FORMAT:
            rc = self._src(c)
            if op == oc.ADD:
                expr = f"({rb} + {rc}) & {_U32}"
            elif op == oc.SUB:
                expr = f"({rb} - {rc}) & {_U32}"
            elif op == oc.MUL:
                expr = f"({rb} * {rc}) & {_U32}"
            elif op == oc.MULH:
                expr = f"(({_sgn(rb)} * {_sgn(rc)}) >> 32) & {_U32}"
            elif op == oc.DIV:
                expr = f"_sdiv({rb}, {rc})"
            elif op == oc.REM:
                expr = f"_srem({rb}, {rc})"
            elif op == oc.DIVU:
                expr = f"{_U32} if {rc} == 0 else {rb} // {rc}"
            elif op == oc.REMU:
                expr = f"{rb} if {rc} == 0 else {rb} % {rc}"
            elif op == oc.AND:
                expr = f"{rb} & {rc}"
            elif op == oc.OR:
                expr = f"{rb} | {rc}"
            elif op == oc.XOR:
                expr = f"{rb} ^ {rc}"
            elif op == oc.SLL:
                expr = f"({rb} << ({rc} & 31)) & {_U32}"
            elif op == oc.SRL:
                expr = f"{rb} >> ({rc} & 31)"
            elif op == oc.SRA:
                expr = f"({_sgn(rb)} >> ({rc} & 31)) & {_U32}"
            elif op == oc.SLT:
                expr = f"1 if {_sgn(rb)} < {_sgn(rc)} else 0"
            else:  # SLTU
                expr = f"1 if {rb} < {rc} else 0"
        elif op == oc.LI:
            expr = repr(b)
        else:  # I-format
            if op == oc.ADDI:
                expr = f"({rb} + {c}) & {_U32}"
            elif op == oc.SLLI:
                expr = f"({rb} << {c}) & {_U32}"
            elif op == oc.SRLI:
                expr = f"{rb} >> {c}"
            elif op == oc.SRAI:
                expr = f"({_sgn(rb)} >> {c}) & {_U32}"
            elif op == oc.ANDI:
                expr = f"{rb} & {c}"
            elif op == oc.ORI:
                expr = f"{rb} | {c}"
            elif op == oc.XORI:
                expr = f"{rb} ^ {c}"
            elif op == oc.SLTI:
                expr = f"1 if {_sgn(rb)} < {c} else 0"
            else:  # SLTIU
                expr = f"1 if {rb} < {c & _U32} else 0"
        self._emit(f"{dst} = {expr}")
        self._mark_write(a)

    def _emit_addr(self, idx: int, b: int, c: int, align: int,
                   mnemonic: str) -> None:
        if b == 0:
            self._emit(f"_a = {(c & _U32)!r}")
        else:
            self._emit(f"_a = (r{b} + {c}) & {_U32}")
        cond = (f"_a & {align} or _a >= {self.mem_bytes}" if align
                else f"_a >= {self.mem_bytes}")
        self._fault(cond, mnemonic, idx, "_a")

    def _emit_load(self, idx: int, op: int, a: int, b: int, c: int) -> None:
        align, mnemonic = _LOAD_FAULT[op]
        self._emit_addr(idx, b, c, align, mnemonic)
        self._flush()
        src = "_a" if op == oc.LW else f"_a & {_U32 & ~3}"
        if self.memfast:
            # inline the fast load-hit probe: a tag match on the MRU way
            # yields the word with the deferred-stats bookkeeping done in
            # place; anything else (MRU stale, miss) calls the bound fast
            # handler, which re-probes the set and handles the bail.
            # ``_a >> _mfs`` == ``(_a & ~3) >> _mfs`` (line shift >= 2),
            # ditto the word index, so subword loads share the hit path.
            self._emit("_ln = _a >> _mfs")
            self._emit("_li = _mru[_ln & _mfm]")
            self._emit("if _li.tag == _ln:")
            self._emit("    if _mfl:")
            self._emit("        _acc[4] = _ts = _acc[4] + 1")
            self._emit("        _li.use_stamp = _ts")
            self._emit("    _acc[0] += 1")
            self._emit("    _acc[2] += _mfe")
            self._emit("    _v = _li.data[(_a >> 2) & _mfw]")
            self._emit("    cycle += _mfh")
            self._emit("else:")
            self._emit(f"    _v, _l = _load({src}, cycle)")
            self._emit("    cycle += _l")
        else:
            self._emit(f"_v, _l = _load({src}, cycle)")
        if a != _SINK:
            if op == oc.LW:
                self._emit(f"r{a} = _v")
            elif op == oc.LBU:
                self._emit(f"r{a} = (_v >> ((_a & 3) * 8)) & 255")
            elif op == oc.LB:
                self._emit("_v = (_v >> ((_a & 3) * 8)) & 255")
                self._emit(f"r{a} = _v | {0xFFFFFF00} if _v & 128 else _v")
            elif op == oc.LHU:
                self._emit(f"r{a} = (_v >> ((_a & 2) * 8)) & 65535")
            else:  # LH
                self._emit("_v = (_v >> ((_a & 2) * 8)) & 65535")
                self._emit(f"r{a} = _v | {0xFFFF0000} if _v & 32768 else _v")
            self._mark_write(a)
        if not self.memfast:  # memfast branches update cycle themselves
            self._emit("cycle += _l")
        self.acc += self.c_mem
        self.nl += 1

    def _emit_store_hit(self, guard: str, slow: str, dirty: bool,
                        masked: bool, val: str) -> None:
        """The inline store-hit body shared by the SW/SB/SH emitters.

        Mirrors the memfast handlers' hit branch statement for statement
        (stamp, stores, write energy, write_hits, merge) so the deferred
        accumulator sees the identical update sequence; anything the
        guard rejects calls the bound fast handler, which re-probes and
        handles the bail to the bracketed slow path.
        """
        self._emit(f"if {guard}:")
        self._emit("    if _mfl:")
        self._emit("        _acc[4] = _ts = _acc[4] + 1")
        self._emit("        _li.use_stamp = _ts")
        self._emit("    _acc[1] += 1")
        self._emit("    _acc[3] += _mfew")
        if masked:
            self._emit("    _wi = (_a >> 2) & _mfw")
            self._emit("    _d = _li.data")
            self._emit(f"    _d[_wi] = (_d[_wi] & ~_m) | {val}")
        else:
            self._emit(f"    _li.data[(_a >> 2) & _mfw] = {val} & {_U32}")
        if dirty:
            self._emit("    _li.dirty = True")
        self._emit("    cycle += _mfhw")
        self._emit("else:")
        self._emit(f"    cycle += {slow}")

    def _emit_store(self, idx: int, op: int, a: int, b: int, c: int) -> None:
        align, mnemonic = _STORE_FAULT[op]
        self._emit_addr(idx, b, c, align, mnemonic)
        self._flush()
        val = self._src(a)
        shape = self.memfast if self.memfast in ("wl", "wb") else None
        if shape is not None:
            # inline the fast store-hit probe. "wb" fast-paths any tag
            # hit (hit stores just dirty the line); "wl" only an
            # already-dirty line with no ACK due - the clean->dirty
            # transition and ACK retirement go through the bound fast
            # handler (DirtyQueue insert, waterline guard, slow bails).
            # ``_a >> _mfs`` and ``(_a >> 2) & _mfw`` are alignment-
            # independent (shift >= 2), so subword stores share the path.
            self._emit("_ln = _a >> _mfs")
            self._emit("_li = _mru[_ln & _mfm]")
            if shape == "wl":
                guard = ("_li.tag == _ln and _li.dirty and not "
                         "(_pend and _pend[0].ack <= cycle)")
            else:
                guard = "_li.tag == _ln"
        if op == oc.SW:
            slow = f"_store(_a, {val}, cycle)"
            if shape is None:
                self._emit(f"cycle += {slow}")
            else:
                self._emit_store_hit(guard, slow, shape == "wb", False, val)
        else:
            unit, umask = (3, 255) if op == oc.SB else (2, 65535)
            self._emit(f"_s = (_a & {unit}) * 8")
            if shape is None:
                self._emit(f"cycle += _sm(_a & {_U32 & ~3}, "
                           f"({val} & {umask}) << _s, {umask} << _s, cycle)")
            else:
                self._emit(f"_m = {umask} << _s")
                self._emit(f"_bits = ({val} & {umask}) << _s")
                slow = f"_sm(_a & {_U32 & ~3}, _bits, _m, cycle)"
                self._emit_store_hit(guard, slow, shape == "wb", True,
                                     "_bits")
        self.acc += self.c_mem
        self.ns += 1

    # -- terminators ----------------------------------------------------
    def _branch_cond(self, op: int, a: int, b: int) -> str:
        cmp_op, signed = _BRANCH_CMP[op]
        ra, rb = self._src(a), self._src(b)
        if signed:
            ra, rb = _sgn(ra), _sgn(rb)
        return f"{ra} {cmp_op} {rb}"

    def _finish_branch(self, op: int, a: int, b: int, c: int) -> None:
        """Basic-block terminator: both paths exit with the same snapshot
        (the flush is shared; only st[0] and the target differ)."""
        self.nb += 1
        cond = self._branch_cond(op, a, b)
        self._state_flush()
        self._emit(f"if {cond}:")
        taken = self.acc + self.c_brx
        self._emit(f"    st[0] = cycle + {taken}" if taken
                   else "    st[0] = cycle")
        if self.record:
            self._emit(f"    _q.append({2 * self.start + 1})")
        self._emit(f"    return {c}")
        self._emit(f"st[0] = cycle + {self.acc}" if self.acc
                   else "st[0] = cycle")
        if self.record:
            self._emit(f"_q.append({2 * self.start})")
        self._emit(f"return {self.end}")

    def _emit_branch_side_exit(self, op: int, a: int, b: int,
                               c: int) -> None:
        """Trace-mode conditional branch: the taken path flushes its own
        snapshot and leaves; the fall-through continues inline."""
        self.nb += 1
        self._emit(f"if {self._branch_cond(op, a, b)}:")
        self._side_exit("    ", self.c_brx, str(c))

    def _emit_link(self, idx: int, a: int) -> None:
        if a != _SINK:
            self._emit(f"r{a} = {idx + 1}")  # static link: next pc
            self._mark_write(a)

    def _finish_jalr(self, idx: int, a: int, b: int, c: int) -> None:
        self._emit(f"_t = ({self._src(b)} + {c}) & {_U32}")
        self._emit_link(idx, a)
        self._side_exit("", 0, "_t")

    # -- drivers ---------------------------------------------------------
    def _head(self, fname: str, indices) -> list[str]:
        """Function header: def line, cycle local, entry register loads.
        Runtime bindings arrive as default arguments, the fastest way to
        give generated code access to non-local state."""
        extra = ""
        if self.memfast:
            extra = (", _mru=_mru, _acc=_acc, _mfs=_mfs, _mfm=_mfm, "
                     "_mfw=_mfw, _mfe=_mfe, _mfh=_mfh, _mfl=_mfl")
            if self.memfast in ("wl", "wb"):
                extra += ", _mfew=_mfew, _mfhw=_mfhw"
            if self.memfast == "wl":
                extra += ", _pend=_pend"
        elif self.record:
            extra = ", _q=_q"
        head = [
            f"    def {fname}(regs, st, _load=_load, _store=_store, "
            f"_sm=_sm, _lines=_lines, _sdiv=_sdiv, _srem=_srem, "
            f"_EE=_EE{extra}):",
            "        cycle = st[0]",
        ]
        for reg in self._prescan(indices):
            head.append(f"        r{reg} = regs[{reg}]")
        return head

    def emit(self, start: int, end: int, fname: str) -> tuple[str, bool]:
        """Return ``(source, ends_in_halt)`` for the block ``[start, end)``."""
        self._reset(start, end)
        head = self._head(fname, range(start, end))

        ends_in_halt = False
        terminated = False
        prev_line = None
        for i in range(start, end):
            op, a, b, c = self.instrs[i]
            a = self._sink(op, a)
            line = i >> _ILINE_SHIFT
            if line != prev_line:
                self._fetch(line, first=prev_line is None)
                prev_line = line
            self.acc += self.cost_table[op]
            self.k += 1

            if op in _PURE:
                self._emit_alu(op, a, b, c)
            elif op in oc.LOAD_FORMAT:
                self._emit_load(i, op, a, b, c)
            elif op in oc.STORE_FORMAT:
                self._emit_store(i, op, a, b, c)
            elif op in oc.B_FORMAT:
                self._finish_branch(op, a, b, c)
                terminated = True
            elif op == oc.JAL:
                self._emit_link(i, a)
                self._side_exit("", 0, str(b))
                terminated = True
            elif op == oc.JALR:
                self._finish_jalr(i, a, b, c)
                terminated = True
            elif op == oc.HALT:
                ends_in_halt = True
                terminated = True
                self._side_exit("", 0, str(i), halt=True)  # park on HALT
            else:  # NOP: cost only
                pass
        if not terminated:
            # fell off the span without a terminator: continue at `end`
            # (end == len(program) surfaces as the interpreter's
            # pc-outside-program error at the next dispatch)
            self._side_exit("", 0, str(end))

        return "\n".join(head + self.lines), ends_in_halt

    def _trace_path(self, start: int, cap: int) -> tuple[list[int],
                                                         int | None]:
        """The pcs a trace rooted at ``start`` inlines, in execution
        order, plus the pc of the trailing plain exit (None when the path
        ends on a JALR/HALT, which emit their own exits). The walk follows
        fall-throughs, unconditional jumps, calls, and conditional-branch
        fall-throughs; it stops at a revisited pc (loop back-edge), the
        cap, or the edge of the program."""
        instrs = self.instrs
        n = len(instrs)
        path: list[int] = []
        seen: set[int] = set()
        i = start
        while 0 <= i < n and i not in seen and len(path) < cap:
            op = instrs[i][0]
            path.append(i)
            seen.add(i)
            if op == oc.JAL:
                i = instrs[i][2]
            elif op == oc.JALR or op == oc.HALT:
                return path, None
            else:
                i += 1
        return path, i

    def emit_trace(self, start: int, cap: int,
                   fname: str) -> tuple[str, int]:
        """Return ``(source, path length)`` for a trace rooted at ``start``.

        The retired-instruction count depends on which exit fires, so
        every exit reports its own snapshot through ``st[7]``; the path
        length is the maximum (used only to bound budget checks).
        """
        path, exit_pc = self._trace_path(start, cap)
        self._reset(start, start)
        head = self._head(fname, path)

        prev_line = None
        for i in path:
            op, a, b, c = self.instrs[i]
            a = self._sink(op, a)
            line = i >> _ILINE_SHIFT
            if line != prev_line:
                self._fetch(line, first=prev_line is None)
                prev_line = line
            self.acc += self.cost_table[op]
            self.k += 1

            if op in _PURE:
                self._emit_alu(op, a, b, c)
            elif op in oc.LOAD_FORMAT:
                self._emit_load(i, op, a, b, c)
            elif op in oc.STORE_FORMAT:
                self._emit_store(i, op, a, b, c)
            elif op in oc.B_FORMAT:
                self._emit_branch_side_exit(op, a, b, c)
            elif op == oc.JAL:
                self._emit_link(i, a)  # inlined: execution continues
            elif op == oc.JALR:
                self._finish_jalr(i, a, b, c)
            elif op == oc.HALT:
                self._side_exit("", 0, str(i), halt=True)
            # NOP: cost only
        if exit_pc is not None:
            self._side_exit("", 0, str(exit_pc))
        return "\n".join(head + self.lines), len(path)


def _bind_header(memfast, record: bool = False) -> list[str]:
    """The ``_bind`` def line (plus the ``_mf`` unpack in memfast mode).

    ``_mf`` is accepted by every module so the dispatcher can use one
    calling convention; memfast modules unpack it into the inline hit
    probes' bindings (MRU list, accumulator, shift/masks, energies, hit
    latencies, LRU flag, ACK deque - all runtime values, never literals,
    so the compiled module is shared across geometries and cost sweeps;
    only the store *family* is compiled in, via ``memfast``). Record-mode
    modules take the extra ``_q`` exit-code list instead.
    """
    lines = ["def _bind(_load, _store, _sm, _lines, _sdiv, _srem, _EE, "
             + ("_mf=None, _q=None):" if record else "_mf=None):")]
    if memfast:
        lines.append("    (_mru, _acc, _mfs, _mfm, _mfw, _mfe, _mfh, "
                     "_mfl, _mfew, _mfhw, _pend) = _mf")
    return lines


def compile_blocks_source(program: Program, costs: CycleCosts,
                          memfast: str | bool = False,
                          record: bool = False) -> tuple[str, dict]:
    """Source of the whole-program JIT module plus block metadata.

    The module defines ``_bind(_load, _store, _sm, _lines, _sdiv, _srem,
    _EE, _mf=None)`` returning a pc-indexed dispatch table: ``table[start]
    = (fn, length)`` for each block leader, ``None`` elsewhere (retirement
    and halting are reported through ``st[7]``/``st[8]``). Binding is
    cheap (function objects over shared code), so each core gets its own
    table closed over its own memory system. ``record=True`` modules bind
    a ninth ``_q`` argument and append exit codes to it (see the module
    docstring); they are cached separately by :mod:`repro.jit.cache`.
    """
    n = len(program.instructions)
    spans = block_spans(program)
    emitter = _BlockEmitter(program, costs, memfast, record)
    parts = [
        f"# JIT blocks for {program.name!r} (generated; costs baked in)",
        *_bind_header(memfast, record),
        f"    _table = [None] * {n}",
    ]
    meta: dict[int, tuple[int, bool]] = {}
    for start, end in spans:
        src, halts = emitter.emit(start, end, f"_b{start}")
        parts.append(src)
        parts.append(f"    _table[{start}] = (_b{start}, {end - start})")
        meta[start] = (end - start, halts)
    parts.append("    return _table")
    return "\n".join(parts) + "\n", meta


def block_meta(program: Program) -> dict[int, tuple[int, bool]]:
    """The ``{leader: (length, ends_in_halt)}`` metadata of
    :func:`compile_blocks_source`, derived without rendering.

    HALT is a CFG terminator, so it can only be a block's *last*
    instruction - which makes the metadata a pure function of the block
    partition. This is what lets a warm start rebuild a
    :class:`~repro.jit.cache.CompiledProgram` from persisted source text
    alone (:mod:`repro.store`)."""
    instrs = program.instructions
    return {start: (end - start, instrs[end - 1][0] == oc.HALT)
            for start, end in block_spans(program)}


def compile_suffix_source(program: Program, costs: CycleCosts,
                          start: int, end: int,
                          memfast: str | bool = False,
                          record: bool = False) -> str:
    """Source for a *suffix block* ``[start, end)`` - the tail of a basic
    block, compiled on demand when execution resumes mid-block (a chunk
    budget or power failure interrupted the enclosing block; in record
    mode, when an indirect ``jalr`` lands on a non-leader pc). The
    module's ``_bind`` returns a single ``(fn, length)`` entry."""
    emitter = _BlockEmitter(program, costs, memfast, record)
    src, _halts = emitter.emit(start, end, f"_s{start}")
    return "\n".join([
        f"# JIT suffix block [{start}, {end}) for {program.name!r}",
        *_bind_header(memfast, record),
        src,
        f"    return (_s{start}, {end - start})",
    ]) + "\n"


def compile_trace_source(program: Program, costs: CycleCosts,
                         start: int, cap: int,
                         memfast: str | bool = False) -> str:
    """Source for a *trace* rooted at ``start`` (see the module docstring).
    The module's ``_bind`` returns a single ``(fn, max_retire)`` entry;
    the actual retirement of each call arrives through ``st[7]``."""
    emitter = _BlockEmitter(program, costs, memfast)
    src, length = emitter.emit_trace(start, cap, f"_t{start}")
    return "\n".join([
        f"# JIT trace @{start} (cap {cap}) for {program.name!r}",
        *_bind_header(memfast),
        src,
        f"    return (_t{start}, {length})",
    ]) + "\n"
