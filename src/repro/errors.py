"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class AssemblyError(ReproError):
    """Raised when a program cannot be assembled (bad mnemonic, label, ...)."""


class ExecutionError(ReproError):
    """Raised when the simulated core hits an illegal state.

    Examples: misaligned access, out-of-range memory address, division by
    zero in the guest program, or exceeding the instruction budget.
    """


class ConfigError(ReproError):
    """Raised for invalid simulation configuration values."""


class EnergyError(ReproError):
    """Raised when the energy substrate reaches an impossible state.

    The most important case is a JIT checkpoint that would drive the
    capacitor below ``Vmin`` - that means the reserve sized by ``maxline``
    was insufficient, i.e. a crash-consistency bug.
    """


class ConsistencyError(ReproError):
    """Raised by the verification layer when post-recovery state diverges
    from the failure-free oracle."""


class InvariantViolation(ReproError):
    """Raised by the runtime invariant checker (:mod:`repro.lint.invariants`)
    when the WL-Cache protocol breaks one of its §5 guarantees - e.g. the
    dirty-line population exceeds ``maxline``, or a queue entry vanishes
    before its write-back ACK."""


class TraceError(ReproError):
    """Raised for malformed or exhausted power traces."""


class SweepError(ReproError):
    """Raised when a sweep cannot complete.

    Carries the failing ``(workload, design, trace)`` tuples in
    :attr:`failures` so a crashed parallel worker is reported as the run
    that died, not as an opaque pool error.
    """

    def __init__(self, message: str,
                 failures: tuple[tuple[str, str, str | None], ...] = ()):
        super().__init__(message)
        self.failures = failures
