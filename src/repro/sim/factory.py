"""Factory wiring programs, cache designs, traces, and configs into Systems."""

from __future__ import annotations

from dataclasses import replace

from repro.caches.nvcache import NVCacheWB
from repro.caches.nvsram import NVSRAMIdeal
from repro.caches.nvsram_variants import NVSRAMFull, NVSRAMPractical
from repro.caches.replay import ReplayCache
from repro.caches.vcache_wt import VCacheWT
from repro.caches.wt_buffer import WTBufferCache
from repro.core.variants import EagerCleanupWLCache
from repro.core.wl_cache import WLCache
from repro.energy.synthetic import make_trace
from repro.energy.traces import PowerTrace
from repro.errors import ConfigError
from repro.isa.program import Program
from repro.jit import attach_jit, jit_enabled
from repro.lint.invariants import attach_invariants, invariants_enabled
from repro.mem.memsys import NoCacheNVP
from repro.memfast import attach_memfast, finish_memfast, memfast_enabled
from repro.obs.recorder import attach_trace, trace_enabled
from repro.mem.nvm import NVMainMemory
from repro.sim.config import DESIGNS, SimConfig
from repro.sim.system import System

#: Every design name :func:`build_design` accepts: the paper's five plus
#: the extension designs (§2.3.3 variants, §3.3 strawman, §5.4 ablation).
ALL_DESIGN_NAMES = DESIGNS + (
    "NoCache",
    "NVSRAM(full)",
    "NVSRAM(practical)",
    "WT+Buffer",
    "WL-Cache(eager)",
)


def validate_design(name: str) -> str:
    """Return ``name`` if it is a known design, else raise ConfigError."""
    if name not in ALL_DESIGN_NAMES:
        raise ConfigError(
            f"unknown design {name!r}; have {ALL_DESIGN_NAMES}")
    return name


def build_design(name: str, nvm: NVMainMemory, config: SimConfig):
    """Instantiate a cache design by its paper name."""
    g = config.geometry
    repl = config.cache_replacement
    if name == "NoCache":
        return NoCacheNVP(nvm)
    if name == "VCache-WT":
        return VCacheWT(nvm, g, repl, config.sram_params)
    if name == "NVCache-WB":
        return NVCacheWB(nvm, g, repl, config.nvcache_params)
    if name == "NVSRAM(ideal)":
        return NVSRAMIdeal(nvm, g, repl, config.sram_params)
    if name == "ReplayCache":
        return ReplayCache(nvm, g, repl, config.sram_params,
                           region_stores=config.region_stores,
                           persist_depth=config.persist_depth)
    if name == "WL-Cache":
        return WLCache(nvm, g, repl, config.sram_params,
                       dq_capacity=config.dq_capacity,
                       maxline=config.maxline,
                       waterline=config.waterline,
                       dq_policy=config.dq_policy)
    # extension designs (§2.3.3 variants, §3.3 strawman, §5.4 ablation)
    if name == "NVSRAM(full)":
        return NVSRAMFull(nvm, g, repl, config.sram_params)
    if name == "NVSRAM(practical)":
        return NVSRAMPractical(nvm, g, repl, config.sram_params,
                               nv_params=config.nvcache_params)
    if name == "WT+Buffer":
        return WTBufferCache(nvm, g, repl, config.sram_params,
                             buffer_depth=config.persist_depth)
    if name == "WL-Cache(eager)":
        return EagerCleanupWLCache(nvm, g, repl, config.sram_params,
                                   dq_capacity=config.dq_capacity,
                                   maxline=config.maxline,
                                   waterline=config.waterline,
                                   dq_policy=config.dq_policy)
    raise ConfigError(f"unknown design {name!r}; have {ALL_DESIGN_NAMES}")


def build_system(program: Program, design_name: str,
                 trace: PowerTrace | str | None = None,
                 config: SimConfig | None = None, **overrides) -> System:
    """Build a ready-to-run :class:`System`.

    ``trace`` may be a :class:`PowerTrace`, one of the five named sources
    ('trace1', 'trace2', 'trace3', 'solar', 'thermal'), or None for a
    failure-free run. ``overrides`` are :class:`SimConfig` field overrides.
    """
    config = config or SimConfig()
    if overrides:
        config = config.with_(**overrides)
    if isinstance(trace, str):
        trace = (make_trace(trace) if config.trace_seed is None
                 else make_trace(trace, config.trace_seed))
    nvm = NVMainMemory(program.initial_memory(), config.nvm)
    design = build_design(design_name, nvm, config)
    if config.check_invariants or invariants_enabled():
        attach_invariants(design)
    costs = config.costs
    if design_name == "NVCache-WB":
        costs = replace(costs, ifetch_extra=config.nvcache_ifetch_extra)
    system = System(program, design, config, trace, costs)
    if config.trace or trace_enabled():
        attach_trace(system)
    use_memfast = config.memfast or memfast_enabled()
    if use_memfast:
        # handlers go on before the JIT so compiled blocks bind them;
        # under trace/check shadowing it silently stays off
        attach_memfast(system)
    if config.jit or jit_enabled():
        # attached after memfast (whose handlers it cooperates with) but
        # yielding to any instrumentation wrappers: under trace/check it
        # silently stays off
        attach_jit(system.core)
    if use_memfast:
        # the chunk-end flush wraps whichever run_chunk won: interpreter
        # or JIT dispatcher
        finish_memfast(system)
    return system


def run_one(program: Program, design_name: str,
            trace: PowerTrace | str | None = None,
            config: SimConfig | None = None, **overrides):
    """Build and run in one call; returns the :class:`RunResult`."""
    return build_system(program, design_name, trace, config, **overrides).run()
