"""Simulation configuration (the code form of the paper's Table 2).

One :class:`SimConfig` fully determines a run: core costs, cache geometry
and per-design array parameters, NVM timings, capacitor, energy model, and
the WL-Cache/DirtyQueue settings. ``SimConfig()`` is the paper's default
configuration: 1 GHz in-order core, 8 KB 2-way 64 B-line L1 D-cache, ReRAM
NVM, 1 uF capacitor with Vmin 2.8 V / Vmax 3.5 V, DirtyQueue of 8 with
maxline 6 / waterline 5, FIFO DirtyQueue cleaning, LRU cache replacement.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.caches.params import CacheParams
from repro.cpu.costs import CycleCosts
from repro.energy.model import EnergyModel
from repro.errors import ConfigError
from repro.mem.nvm import NVMTimings
from repro.mem.setassoc import CacheGeometry

#: Design names accepted by the factory, in the paper's plotting order.
DESIGNS = (
    "NVCache-WB",
    "VCache-WT",
    "ReplayCache",
    "NVSRAM(ideal)",
    "WL-Cache",
)

#: The paper's baseline for every normalized figure.
BASELINE_DESIGN = "NVSRAM(ideal)"


def sram_cache_params() -> CacheParams:
    """SRAM L1 array: 0.3 ns hits (1 cycle), low energy, low leakage.

    ``ckpt_line_energy_nj`` prices NVSRAM's SRAM-to-shadow line copy; at
    6.5 nJ x 128 lines the full-cache reserve lands at ~1.0 uJ, i.e. a
    Vbackup of ~3.15 V on the 1 uF capacitor - the paper's Table 2 setting
    (NVSRAM backs up at the highest voltage of all designs).
    """
    return CacheParams(
        hit_read_cycles=1,
        hit_write_cycles=1,
        read_energy_nj=0.040,
        write_energy_nj=0.050,
        lru_extra_energy_nj=0.020,
        leakage_w=0.060,
        ckpt_line_cycles=6,
        ckpt_line_energy_nj=6.5,
        restore_line_cycles=6,
        restore_line_energy_nj=0.5,
    )


def nv_cache_params() -> CacheParams:
    """Non-volatile (FRAM/ReRAM-class) L1 array: slow hits, hungry writes,
    and several times the SRAM leakage (the §6.2 comparison point)."""
    return CacheParams(
        hit_read_cycles=4,
        hit_write_cycles=7,
        read_energy_nj=0.30,
        write_energy_nj=0.80,
        lru_extra_energy_nj=0.020,
        leakage_w=0.40,
        ckpt_line_cycles=0,
        ckpt_line_energy_nj=0.0,
        restore_line_cycles=0,
    )


@dataclass(frozen=True)
class SimConfig:
    """Everything Table 2 specifies, plus the scaled-energy knobs."""

    # core
    costs: CycleCosts = field(default_factory=CycleCosts)
    nvcache_ifetch_extra: int = 2  # slow NV I-cache fetch for NVCache-WB

    # memory hierarchy
    geometry: CacheGeometry = field(default_factory=CacheGeometry)
    cache_replacement: str = "lru"  # paper default (§6.1)
    nvm: NVMTimings = field(default_factory=NVMTimings)
    sram_params: CacheParams = field(default_factory=sram_cache_params)
    nvcache_params: CacheParams = field(default_factory=nv_cache_params)

    # WL-Cache / DirtyQueue (§6.1 defaults)
    dq_capacity: int = 8
    maxline: int = 6
    waterline: int | None = None  # None -> maxline - 1
    dq_policy: str = "fifo"
    adaptive: bool = True
    dynamic: bool = False

    # energy substrate
    capacitance_f: float = 1.0e-6
    v_max: float = 3.5
    v_min: float = 2.8
    #: Von = min(v_max, Vbackup + von_headroom): a design may reboot once
    #: it holds this much voltage headroom over its own backup threshold,
    #: so small-reserve designs boot earlier and at lower voltages
    #: (Table 2: restore 3.3 V for NVP, 3.5 V for NVSRAM, 3.3-3.5 V for
    #: WL-Cache). Charging energy between fixed voltages scales with C,
    #: which is what collapses performance for oversized capacitors
    #: (Fig. 10b).
    von_headroom_v: float = 0.4
    #: Self-discharge power while the system is off (erodes charge during
    #: harvesting fades).
    off_leakage_w: float = 0.04
    #: When True, charge left after the JIT checkpoint is lost across the
    #: outage (unmanaged NVP leakage over the long off period drains the
    #: buffer), so every cycle recharges the design's full Vmin->Von window.
    #: This is how a large reserve turns into the recurring cost the paper
    #: attributes to NVSRAM-style designs (S1, S6.3) and why performance
    #: collapses with oversized capacitors (Fig. 10b).
    deep_discharge: bool = True
    energy: EnergyModel = field(default_factory=EnergyModel)
    #: where volatile registers are JIT-checkpointed: 'nvff' (NVP-style
    #: non-volatile flip-flops adjacent to the registers) or 'nvm'
    #: (QuickRecall-style software checkpointing into main memory, S2.1 -
    #: cheaper hardware, larger reserve and slower restore).
    register_backend: str = "nvff"

    # ReplayCache
    region_stores: int = 8
    persist_depth: int = 8

    # simulator mechanics
    #: Attach the WL-Cache protocol invariant checker
    #: (:mod:`repro.lint.invariants`). ``REPRO_CHECK=1`` in the environment
    #: enables it too; when neither is set the runtime cost is zero.
    check_invariants: bool = False
    #: Attach the observability layer (:mod:`repro.obs`): event tracing
    #: into a TraceRecorder plus a metrics registry published as
    #: ``RunResult.metrics``. ``REPRO_TRACE=1`` in the environment enables
    #: it too; when neither is set the runtime cost is zero.
    trace: bool = False
    #: Compile the guest program's basic blocks to specialized Python
    #: (:mod:`repro.jit`) and dispatch block-at-a-time. Results are
    #: bit-identical to the interpreter; the JIT disengages automatically
    #: when the trace recorder or invariant checker is attached.
    #: ``REPRO_JIT=1`` in the environment enables it too.
    jit: bool = False
    #: Attach the memory-hierarchy fast path (:mod:`repro.memfast`):
    #: geometry-specialized hit handlers with deferred stats, bit-identical
    #: to the slow path. Composes with ``jit`` (compiled blocks then bind
    #: the fast handlers and inline the load-hit probe); disengages
    #: automatically when the trace recorder or invariant checker is
    #: attached. ``REPRO_MEMFAST=1`` in the environment enables it too.
    memfast: bool = False
    #: Batched sweep execution (:mod:`repro.batch`): grid points sharing a
    #: kernel and cost model record the architectural execution once and
    #: replay it per point, bit-identical to serial interpretation. Only
    #: sweeps (``run_grid``/``run_tasks``) consult this flag - a lone
    #: ``run_one`` has nothing to batch. Disengages per run when the trace
    #: recorder or invariant checker is attached, and falls back to the
    #: jit/memfast tiers per instance when a kernel cannot be recorded.
    #: ``REPRO_BATCH=1`` in the environment enables it too.
    batch: bool = False
    #: Lockstep multi-instance replay (:mod:`repro.lockstep`): sweep
    #: points sharing a recording advance *together* through one
    #: generated walker that issues each instance's memory calls with
    #: its own cost bindings, instead of once per point through a
    #: private ``ReplayCore`` loop. Requires (and implies nothing
    #: beyond) batch eligibility; a point that diverges from the column
    #: - guest fault, or an explicit :class:`~repro.lockstep.scheduler.
    #: LockstepBail` - is evicted to the per-instance replay path at an
    #: exact event index and may rejoin at a later chunk boundary.
    #: Bit-identical to serial on every ``RunResult`` field.
    #: ``REPRO_LOCKSTEP=1`` in the environment enables it too.
    lockstep: bool = False
    #: Memoize finished results through the persistent artifact store
    #: (:mod:`repro.store`): a completed run's stats are written under
    #: ``program content x design x trace x config`` and an identical
    #: later task returns them without simulating. Stats-only (no
    #: ``final_memory``); a ``verify=True`` task only accepts entries
    #: written by verified runs. Never engages for trace-recorder or
    #: invariant-checker runs. ``REPRO_RESULT_CACHE=1`` in the
    #: environment enables it too; either way nothing is stored unless
    #: the store itself is enabled (``REPRO_CACHE_DIR``).
    result_cache: bool = False
    chunk_instrs: int = 32
    max_instructions: int = 60_000_000
    max_outages: int = 100_000
    trace_seed: int | None = None

    def __post_init__(self) -> None:
        if self.cache_replacement not in ("lru", "fifo"):
            raise ConfigError("cache_replacement must be 'lru' or 'fifo'")
        if self.dq_policy not in ("fifo", "lru"):
            raise ConfigError("dq_policy must be 'fifo' or 'lru'")
        if not 1 <= self.maxline <= self.dq_capacity:
            raise ConfigError("need 1 <= maxline <= dq_capacity")
        if self.waterline is not None and not (
                0 <= self.waterline <= self.maxline):
            raise ConfigError("need 0 <= waterline <= maxline")
        if self.chunk_instrs < 1:
            raise ConfigError("chunk_instrs must be >= 1")
        if not 0 < self.v_min < self.v_max:
            raise ConfigError("need 0 < v_min < v_max")
        if self.register_backend not in ("nvff", "nvm"):
            raise ConfigError("register_backend must be 'nvff' or 'nvm'")

    # convenience -----------------------------------------------------------
    def with_(self, **kwargs) -> "SimConfig":
        """Return a copy with fields replaced (sweep helper)."""
        return replace(self, **kwargs)

    @property
    def effective_waterline(self) -> int:
        return self.maxline - 1 if self.waterline is None else self.waterline

    def margin_nj(self) -> float:
        """Chunked-voltage-check safety margin folded into every reserve."""
        return self.chunk_instrs * self.energy.worst_instr_nj

    def describe(self) -> list[tuple[str, str]]:
        """Key/value rows mirroring Table 2 (for the config bench)."""
        g = self.geometry
        return [
            ("Processor", "1.0 GHz, 1 core, in-order"),
            ("L1 D-cache", f"{g.size_bytes} B, {g.assoc}-way, "
                           f"{g.line_bytes} B block, {self.cache_replacement}"),
            ("Cache hit (SRAM/NV)", f"{self.sram_params.hit_read_cycles}/"
                                    f"{self.nvcache_params.hit_read_cycles} cycles"),
            ("NVM (ReRAM) read/write/burst",
             f"{self.nvm.read_word}/{self.nvm.write_word}/"
             f"{self.nvm.burst_word} cycles per word"),
            ("Energy buffer", f"{self.capacitance_f * 1e6:g} uF"),
            ("Vmin/Vmax", f"{self.v_min}/{self.v_max} V"),
            ("DirtyQueue", f"|DQ|={self.dq_capacity}, maxline={self.maxline}, "
                           f"waterline={self.effective_waterline}, "
                           f"{self.dq_policy} cleaning"),
            ("Adaptation", "adaptive" if self.adaptive else "static"
                           + (", dynamic" if self.dynamic else "")),
        ]


DEFAULT_CONFIG = SimConfig()
