"""repro.sim - full-system simulation."""

from repro.sim.config import BASELINE_DESIGN, DESIGNS, SimConfig
from repro.sim.factory import build_design, build_system, run_one
from repro.sim.results import EnergyBreakdown, PeriodStats, RunResult
from repro.sim.system import System

__all__ = [
    "BASELINE_DESIGN",
    "DESIGNS",
    "EnergyBreakdown",
    "PeriodStats",
    "RunResult",
    "SimConfig",
    "System",
    "build_design",
    "build_system",
    "run_one",
]
