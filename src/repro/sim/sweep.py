"""Sweep helpers: run program x design x trace grids and collect results.

The benchmark harness is built on these. ``REPRO_BENCH_SCALE`` (env var)
scales workload sizes globally; the paper's trace names ('trace1',
'trace2', 'trace3', 'solar', 'thermal') or None (no failures) select the
power condition.

Grids run serially by default; pass ``jobs`` or set ``REPRO_JOBS`` to fan
out over a process pool (see :mod:`repro.sim.parallel`) - the parallel
results are bit-identical to the serial ones.

Grids are also where batched execution pays off: ``batch=True`` (or
``REPRO_BATCH=1``, which pool workers re-export) records each kernel's
architectural stream once per cost family and replays it per grid
point, bit-identically (see :mod:`repro.batch` and ``docs/batch.md``).
"""

from __future__ import annotations

import os
from collections.abc import Iterable

from repro.errors import ConfigError
from repro.sim.config import BASELINE_DESIGN, DESIGNS, SimConfig
from repro.sim.parallel import ProgressFn, make_tasks, resolve_jobs, run_tasks
from repro.sim.results import RunResult


def bench_scale(default: float = 1.0) -> float:
    """Workload scale for benchmarks, overridable via REPRO_BENCH_SCALE."""
    raw = os.environ.get("REPRO_BENCH_SCALE")
    if raw is None:
        return default
    try:
        scale = float(raw)
    except ValueError:
        raise ConfigError(
            f"REPRO_BENCH_SCALE must be a number (workload size "
            f"multiplier, e.g. 0.5), got {raw!r}") from None
    if scale <= 0:
        raise ConfigError(
            f"REPRO_BENCH_SCALE must be > 0, got {scale!r}")
    return scale


def run_grid(workloads: Iterable[str] | None = None,
             designs: Iterable[str] = DESIGNS,
             trace: str | None = "trace1",
             config: SimConfig | None = None,
             scale: float | None = None,
             verify: bool = True,
             jobs: int | None = None,
             progress: ProgressFn | None = None,
             **overrides) -> dict[tuple[str, str], RunResult]:
    """Run every (workload, design) pair; returns results keyed by the pair.

    Every run gets a fresh trace instance (same seed), so designs see
    identical harvesting conditions - and so the grid parallelizes without
    changing a single bit of any result. ``jobs`` (default: ``REPRO_JOBS``,
    else serial) selects the worker count; ``progress`` is called after
    each finished run as ``progress(done, total, (workload, design))``.
    """
    from repro.workloads import ALL_WORKLOADS

    workloads = (list(workloads) if workloads is not None
                 else list(ALL_WORKLOADS))
    scale = bench_scale() if scale is None else scale
    tasks = make_tasks(workloads, designs, trace, config, scale, verify,
                       overrides)
    return run_tasks(tasks, jobs=resolve_jobs(jobs, fallback=1),
                     progress=progress)


def speedups_vs_baseline(results: dict[tuple[str, str], RunResult],
                         baseline: str = BASELINE_DESIGN
                         ) -> dict[tuple[str, str], float]:
    """Normalized speedup of each run against the baseline on the same app."""
    out = {}
    for (wname, design), res in results.items():
        base = results.get((wname, baseline))
        if base is None:
            raise ConfigError(
                f"cannot normalize {wname!r} against {baseline!r}: the "
                f"results grid has no ({wname!r}, {baseline!r}) run - "
                f"include the baseline design in the sweep or pass "
                f"baseline=<design> explicitly")
        out[(wname, design)] = base.total_time_ns / res.total_time_ns
    return out
