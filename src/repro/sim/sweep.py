"""Sweep helpers: run program x design x trace grids and collect results.

The benchmark harness is built on these. ``REPRO_BENCH_SCALE`` (env var)
scales workload sizes globally; the paper's trace names ('trace1',
'trace2', 'trace3', 'solar', 'thermal') or None (no failures) select the
power condition.
"""

from __future__ import annotations

import os
from collections.abc import Iterable

from repro.sim.config import BASELINE_DESIGN, DESIGNS, SimConfig
from repro.sim.factory import run_one
from repro.sim.results import RunResult
from repro.workloads import ALL_WORKLOADS, build_workload, verify_checks


def bench_scale(default: float = 1.0) -> float:
    """Workload scale for benchmarks, overridable via REPRO_BENCH_SCALE."""
    return float(os.environ.get("REPRO_BENCH_SCALE", default))


def run_grid(workloads: Iterable[str] | None = None,
             designs: Iterable[str] = DESIGNS,
             trace: str | None = "trace1",
             config: SimConfig | None = None,
             scale: float | None = None,
             verify: bool = True,
             **overrides) -> dict[tuple[str, str], RunResult]:
    """Run every (workload, design) pair; returns results keyed by the pair.

    Every run gets a fresh trace instance (same seed), so designs see
    identical harvesting conditions.
    """
    workloads = list(workloads) if workloads is not None else list(ALL_WORKLOADS)
    scale = bench_scale() if scale is None else scale
    out: dict[tuple[str, str], RunResult] = {}
    for wname in workloads:
        prog = build_workload(wname, scale)
        for design in designs:
            res = run_one(prog, design, trace, config, **overrides)
            if verify:
                verify_checks(prog, res.final_memory)
            out[(wname, design)] = res
    return out


def speedups_vs_baseline(results: dict[tuple[str, str], RunResult],
                         baseline: str = BASELINE_DESIGN
                         ) -> dict[tuple[str, str], float]:
    """Normalized speedup of each run against the baseline on the same app."""
    out = {}
    for (wname, design), res in results.items():
        base = results[(wname, baseline)]
        out[(wname, design)] = base.total_time_ns / res.total_time_ns
    return out
