"""Process-pool execution of simulation sweeps.

A sweep grid (workload x design x trace) is embarrassingly parallel: every
run builds its own System, NVM image, and power trace, and traces are
re-seeded deterministically per run (``make_trace(name, seed)``), so a
parallel sweep is *bit-identical* to the serial one - the tests enforce
RunResult equality. Workers receive only ``(workload name, scale)`` and
rebuild the program image locally, which keeps task pickles small and the
per-process workload cache warm across the tasks of a chunk.

Worker counts resolve as: explicit ``jobs`` argument, then the
``REPRO_JOBS`` environment variable, then ``os.cpu_count()``. ``jobs=1``
runs serially in-process (no pool, easy tracebacks).

A worker never lets an exception escape as a bare pool error: failures are
shipped back as records and re-raised here as :class:`~repro.errors.
SweepError` naming every failing ``(workload, design, trace)`` tuple. A
hard worker crash (segfault, OOM-kill) breaks the pool; the in-flight
chunks' tasks are reported the same way instead of hanging the sweep.
"""

from __future__ import annotations

import os
import traceback
from collections.abc import Callable, Iterable
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro.batch.engine import (CACHE_DIR_ENV as _STREAM_CACHE_ENV,
                                ENV_VAR as _BATCH_ENV, absorb_stats,
                                batch_stats, maybe_run_batched,
                                maybe_run_chunk_batched,
                                task_batch_eligible)
from repro.errors import ConfigError, SweepError
from repro.jit import ENV_VAR as _JIT_ENV
from repro.lint.invariants import ENV_VAR as _CHECK_ENV
from repro.lockstep import ENV_VAR as _LOCKSTEP_ENV
from repro.memfast import ENV_VAR as _MEMFAST_ENV
from repro.obs.recorder import ENV_VAR as _TRACE_ENV
from repro.sim.config import SimConfig
from repro.sim.factory import run_one, validate_design
from repro.sim.results import RunResult
from repro.store.core import ENV_VAR as _STORE_ENV
from repro.store.core import absorb_store_stats, store_stats
from repro.store.results import ENV_VAR as _RESULT_CACHE_ENV
from repro.store.results import lookup_task, store_task
from repro.workloads import build_workload, get_workload, verify_checks

#: ``progress(done, total, (workload, design))`` - called in the parent
#: process after each finished run, in completion (not submission) order.
ProgressFn = Callable[[int, int, tuple[str, str]], None]


def resolve_jobs(jobs: int | None = None, *,
                 fallback: int | None = None) -> int:
    """Resolve a worker count: ``jobs`` > ``REPRO_JOBS`` > fallback/cores.

    Returns at least 1. ``fallback=None`` means "all cores" (the
    :func:`run_grid_parallel` default); :func:`repro.sim.sweep.run_grid`
    passes ``fallback=1`` so plain calls stay serial unless opted in.
    """
    if jobs is None:
        env = os.environ.get("REPRO_JOBS")
        if env is not None:
            try:
                jobs = int(env)
            except ValueError:
                raise ConfigError(
                    f"REPRO_JOBS must be an integer worker count, "
                    f"got {env!r}") from None
        else:
            jobs = fallback if fallback is not None else os.cpu_count() or 1
    return max(1, jobs)


@dataclass(frozen=True)
class SweepTask:
    """One run of the grid, as shipped to a worker process.

    The program is identified by name+scale (rebuilt in the worker), not
    embedded: workload images are hundreds of KB and deterministic.
    """

    workload: str
    design: str
    trace: str | None
    scale: float
    verify: bool
    config: SimConfig | None
    overrides: dict = field(default_factory=dict)

    @property
    def key(self) -> tuple[str, str]:
        return (self.workload, self.design)

    @property
    def where(self) -> tuple[str, str, str | None]:
        return (self.workload, self.design, self.trace)


def run_task(task: SweepTask) -> RunResult:
    """Execute one task in this process (worker body; also the serial path).

    With result memoization on (:mod:`repro.store.results`), a persisted
    result for this exact task is returned without simulating, and a
    fresh result is persisted on the way out (after verification, so the
    entry can vouch for later ``verify=True`` lookups)."""
    memo = lookup_task(task)
    if memo is not None:
        return memo
    prog = build_workload(task.workload, task.scale)
    res = run_one(prog, task.design, task.trace, task.config,
                  **task.overrides)
    if task.verify:
        verify_checks(prog, res.final_memory)
    store_task(task, res)
    return res


def _init_worker(check_env: str | None, trace_env: str | None,
                 jit_env: str | None = None,
                 memfast_env: str | None = None,
                 batch_env: str | None = None,
                 lockstep_env: str | None = None,
                 stream_cache_env: str | None = None,
                 store_env: str | None = None,
                 result_cache_env: str | None = None) -> None:
    """Worker initializer: re-export the instrumentation switches.

    Pools spawned with a non-fork start method begin from a fresh
    interpreter whose environment may not mirror the parent's, so the
    invariant-checking (REPRO_CHECK), tracing (REPRO_TRACE), JIT
    (REPRO_JIT), fast-path (REPRO_MEMFAST), batch (REPRO_BATCH), and
    lockstep (REPRO_LOCKSTEP) switches are shipped explicitly - a
    checked/traced/JITted/batched parallel sweep must apply them in
    every worker, not just the parent. The persistent artifact store
    switches ride along too - the store root (REPRO_CACHE_DIR and its
    legacy alias REPRO_STREAM_CACHE) and the result memo
    (REPRO_RESULT_CACHE) - so campaign shards record each kernel, render
    each source, and simulate each point once across *processes*. The
    worker's process-global JIT code cache and guest-stream cache then
    warm once and serve all the tasks the worker executes.
    """
    for var, value in ((_CHECK_ENV, check_env), (_TRACE_ENV, trace_env),
                       (_JIT_ENV, jit_env), (_MEMFAST_ENV, memfast_env),
                       (_BATCH_ENV, batch_env),
                       (_LOCKSTEP_ENV, lockstep_env),
                       (_STREAM_CACHE_ENV, stream_cache_env),
                       (_STORE_ENV, store_env),
                       (_RESULT_CACHE_ENV, result_cache_env)):
        if value is None:
            os.environ.pop(var, None)
        else:
            os.environ[var] = value


def worker_initargs() -> tuple:
    """The environment-switch values shipped to pool-worker initializers.

    Shared by :func:`run_tasks` and the Monte-Carlo campaign engine
    (:mod:`repro.mc.engine`), which runs the same worker body over its
    own point keying.
    """
    return (os.environ.get(_CHECK_ENV), os.environ.get(_TRACE_ENV),
            os.environ.get(_JIT_ENV), os.environ.get(_MEMFAST_ENV),
            os.environ.get(_BATCH_ENV), os.environ.get(_LOCKSTEP_ENV),
            os.environ.get(_STREAM_CACHE_ENV), os.environ.get(_STORE_ENV),
            os.environ.get(_RESULT_CACHE_ENV))


def _run_chunk(chunk: list[SweepTask]) -> list[tuple]:
    """Worker entry: run a chunk, converting exceptions to records.

    The chunk's records are followed by one trailing ``("stats",
    delta)`` record carrying this chunk's batch-engine counter deltas
    (recordings, cache hits, disk hits) plus, under the ``"store"``
    key, the chunk's persistent-store event deltas; the parent folds
    them back with :func:`repro.batch.engine.absorb_stats` /
    :func:`repro.store.absorb_store_stats` so sweep-wide cache
    behaviour stays observable under the pool."""
    pre = batch_stats()
    pre_store = store_stats()
    records = maybe_run_chunk_batched(chunk, run_task)
    if records is None:
        records = []
        for task in chunk:
            try:
                records.append(("ok", run_task(task)))
            except Exception as exc:  # shipped home, raised as SweepError
                records.append(("err", type(exc).__name__, str(exc),
                                traceback.format_exc()))
    post = batch_stats()
    delta = {k: post[k] - pre.get(k, 0)
             for k in post if k not in ("streams", "raw_recordings")}
    post_store = store_stats()
    delta["store"] = {k: post_store[k] - pre_store.get(k, 0)
                      for k in post_store}
    records.append(("stats", delta))
    return records


def _pop_stats(records: list[tuple]) -> list[tuple]:
    """Absorb and strip a chunk's trailing stats record, if present."""
    if records and records[-1][0] == "stats":
        delta = records[-1][1]
        absorb_store_stats(delta.get("store", {}))
        absorb_stats(delta)
        return records[:-1]
    return records


def make_tasks(workloads: Iterable[str],
               designs: Iterable[str],
               trace: str | None,
               config: SimConfig | None,
               scale: float,
               verify: bool,
               overrides: dict) -> list[SweepTask]:
    """Expand a grid into validated tasks (workload-major, serial order)."""
    designs = [validate_design(d) for d in designs]
    tasks = []
    for wname in workloads:
        get_workload(wname)  # fail fast on unknown names
        for design in designs:
            tasks.append(SweepTask(wname, design, trace, scale, verify,
                                   config, dict(overrides)))
    return tasks


def _chunked(tasks: list[SweepTask], jobs: int,
             align_batches: bool = False) -> list[list[SweepTask]]:
    """Split tasks into contiguous chunks, ~4 per worker for load balance.

    With ``align_batches`` the cuts land only where ``(workload, scale)``
    changes (tasks arrive workload-major), so a batch group is never torn
    across workers - a torn group records its kernel once per worker.
    """
    n = max(1, -(-len(tasks) // (jobs * 4)))
    if not align_batches:
        return [tasks[i:i + n] for i in range(0, len(tasks), n)]
    chunks: list[list[SweepTask]] = []
    cur: list[SweepTask] = []
    for i, task in enumerate(tasks):
        cur.append(task)
        nxt = tasks[i + 1] if i + 1 < len(tasks) else None
        at_block_end = nxt is None or (
            (nxt.workload, nxt.scale) != (task.workload, task.scale))
        if at_block_end and len(cur) >= n:
            chunks.append(cur)
            cur = []
    if cur:
        chunks.append(cur)
    return chunks


def _raise_failures(failures: list[tuple], nworkers: int) -> None:
    where = tuple(f[0] for f in failures)
    head = failures[0]
    detail = head[3] if head[2] is None else f"{head[1]}: {head[2]}"
    raise SweepError(
        f"{len(failures)} of the sweep's runs failed across {nworkers} "
        f"workers; first failure in (workload={head[0][0]!r}, "
        f"design={head[0][1]!r}, trace={head[0][2]!r}): {detail}",
        failures=where)


def run_tasks(tasks: list[SweepTask], jobs: int | None = None,
              progress: ProgressFn | None = None
              ) -> dict[tuple[str, str], RunResult]:
    """Run tasks, serially or on a process pool; results in task order.

    Results are keyed and ordered by ``(workload, design)`` exactly as the
    serial loop would produce them, whatever order workers finish in.
    """
    jobs = resolve_jobs(jobs)
    total = len(tasks)
    if jobs <= 1 or total < 2:
        out = maybe_run_batched(tasks, run_task, progress)
        if out is not None:
            return out
        out = {}
        for i, task in enumerate(tasks):
            out[task.key] = run_task(task)
            if progress is not None:
                progress(i + 1, total, task.key)
        return out

    batching = any(task_batch_eligible(t) for t in tasks)
    chunks = _chunked(tasks, jobs, align_batches=batching)
    by_task: dict[tuple[str, str], RunResult] = {}
    # (where, exc_name | None, msg | None, detail) records
    failures: list[tuple] = []
    done = 0
    with ProcessPoolExecutor(max_workers=min(jobs, total),
                             initializer=_init_worker,
                             initargs=worker_initargs()) as pool:
        futures = {pool.submit(_run_chunk, chunk): chunk for chunk in chunks}
        pending = set(futures)
        while pending:
            finished, pending = wait(pending, return_when=FIRST_EXCEPTION)
            for fut in finished:
                chunk = futures[fut]
                try:
                    records = fut.result()
                except BrokenProcessPool:
                    # a worker died without reporting; blame its chunk
                    for task in chunk:
                        failures.append((task.where, None, None,
                                         "worker process crashed "
                                         "(pool broken)"))
                    continue
                records = _pop_stats(records)
                for task, rec in zip(chunk, records):
                    if rec[0] == "ok":
                        by_task[task.key] = rec[1]
                        done += 1
                        if progress is not None:
                            progress(done, total, task.key)
                    else:
                        failures.append((task.where, rec[1], rec[2], rec[3]))
    if failures:
        _raise_failures(failures, jobs)
    return {task.key: by_task[task.key] for task in tasks}


def run_grid_parallel(workloads: Iterable[str],
                      designs: Iterable[str],
                      trace: str | None = "trace1",
                      config: SimConfig | None = None,
                      scale: float = 1.0,
                      verify: bool = True,
                      jobs: int | None = None,
                      progress: ProgressFn | None = None,
                      **overrides) -> dict[tuple[str, str], RunResult]:
    """Parallel twin of :func:`repro.sim.sweep.run_grid`.

    Bit-identical to the serial sweep (enforced by
    ``tests/test_parallel.py``); ``jobs=None`` means ``REPRO_JOBS`` or all
    cores.
    """
    tasks = make_tasks(list(workloads), designs, trace, config, scale,
                       verify, overrides)
    return run_tasks(tasks, jobs=jobs, progress=progress)
