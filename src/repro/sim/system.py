"""Full-system simulator: core + cache design + NVM + capacitor + trace.

The run loop executes the guest in chunks, drains the capacitor by the
measured per-chunk energy, harvests from the power trace, and when stored
energy falls to the reserve level (Vbackup) performs the design's JIT
checkpoint, sleeps through the power-off period, reboots, restores, and
continues - exactly the lifecycle of Figure 3.

Key invariants enforced at runtime (not just in tests):

* a JIT checkpoint never drives the capacitor below Vmin (the reserve sized
  from ``maxline``/cache size/etc. must always suffice);
* the system makes forward progress (a long streak of zero-instruction
  power-on periods aborts the run instead of spinning).
"""

from __future__ import annotations

from repro.core.adaptive import AdaptiveController
from repro.core.dynamic import DynamicAdaptation
from repro.core.wl_cache import WLCache
from repro.cpu.core import InOrderCore
from repro.cpu.costs import CycleCosts
from repro.energy.capacitor import Capacitor, energy_nj
from repro.energy.traces import PowerTrace
from repro.errors import ConfigError, EnergyError, ExecutionError
from repro.isa.program import Program
from repro.runtime.nvff import NVFFStore
from repro.runtime.watchdog import WatchdogTimer
from repro.sim.config import SimConfig
from repro.sim.results import EnergyBreakdown, PeriodStats, RunResult

_NO_PROGRESS_LIMIT = 300  # consecutive empty on-periods before aborting


class System:
    """One program x design x trace simulation."""

    def __init__(self, program: Program, design, config: SimConfig,
                 trace: PowerTrace | None = None,
                 costs: CycleCosts | None = None):
        self.program = program
        self.design = design
        self.config = config
        self.trace = trace
        self.core = InOrderCore(program, design, costs or config.costs)
        self.capacitor = Capacitor(config.capacitance_f, config.v_max,
                                   config.v_min)
        self.nvff = NVFFStore()
        self.watchdog = WatchdogTimer()
        self.controller: AdaptiveController | None = None
        is_wl = isinstance(design, WLCache)
        if is_wl and config.adaptive:
            self.controller = AdaptiveController()
        if is_wl and config.dynamic:
            design.dynamic_policy = DynamicAdaptation(self)
        # QuickRecall-style software checkpointing stores the register
        # file in main NVM: pricier flashes and restores than NVFFs (S2.1)
        if config.register_backend == "nvm":
            words = 34  # 32 registers + pc + thresholds
            self._reg_ckpt_nj = words * config.nvm.write_energy_nj
            self._reg_restore_nj = words * config.nvm.read_energy_nj
            self._reg_restore_cycles = config.nvm.line_write(words) // 2
        else:
            self._reg_ckpt_nj = config.energy.reg_ckpt_nj
            self._reg_restore_nj = config.energy.reg_restore_nj
            self._reg_restore_cycles = 0
        self.reserve_nj = 0.0
        self.v_backup = 0.0
        self._e_floor = energy_nj(config.capacitance_f, config.v_min)
        self._e_max = energy_nj(config.capacitance_f, config.v_max)
        # minimum compute window a boot must have beyond the reserve
        self._min_window_nj = (config.margin_nj()
                               + 16 * config.energy.worst_instr_nj)
        self._e_backup_level = 0.0
        if is_wl and trace is not None:
            # the boot-time runtime sizes maxline to the energy buffer: a
            # small capacitor cannot afford the default threshold (§4)
            maxline = design.maxline
            while maxline > 1 and not self._fits(maxline):
                maxline -= 1
            if maxline != design.maxline:
                design.set_thresholds(maxline)
        self.update_reserve()

    def _fits(self, maxline: int) -> bool:
        """Would a WL-Cache reserve for ``maxline`` leave a usable window?"""
        reserve = self.compute_reserve_nj(maxline)
        return (self._e_floor + reserve + self._min_window_nj) <= self._e_max

    # ------------------------------------------------------------------
    # reserve / Vbackup management (§3.2, §5.5)
    # ------------------------------------------------------------------
    def compute_reserve_nj(self, maxline: int | None = None) -> float:
        """Energy to set aside for a JIT checkpoint.

        ``maxline`` prices a hypothetical WL-Cache threshold (used by the
        dynamic-adaptation policy before committing to a raise).
        """
        design = self.design
        lines = design.reserve_lines() if maxline is None else maxline
        return (lines * design.checkpoint_line_energy_nj()
                + design.reserve_extra_energy_nj()
                + self._reg_ckpt_nj
                + self.config.margin_nj())

    def update_reserve(self) -> None:
        cfg = self.config
        self.reserve_nj = self.compute_reserve_nj()
        self._e_backup_level = self._e_floor + self.reserve_nj
        self.v_backup = self.capacitor.voltage_at(self._e_backup_level)
        self.v_on = min(cfg.v_max, self.v_backup + cfg.von_headroom_v)
        self._e_on = energy_nj(cfg.capacitance_f, self.v_on)
        if self.trace is not None and (
                self._e_backup_level + self._min_window_nj >= self._e_max):
            raise ConfigError(
                f"{self.design.name}: checkpoint reserve {self.reserve_nj:.0f} nJ "
                f"does not fit the {cfg.capacitance_f * 1e6:g} uF "
                f"capacitor (usable {self._e_max - self._e_floor:.0f} nJ)")

    # ------------------------------------------------------------------
    # run-loop lifecycle blocks, shared with the lockstep scheduler
    # (repro.lockstep.scheduler drives the same System objects chunk by
    # chunk, so every cold block below must be the single source of
    # truth for its arithmetic)
    # ------------------------------------------------------------------
    def _begin(self, res: RunResult) -> int:
        """Initial charge-to-Von, first boot, watchdog start; returns
        the wall-clock time the first chunk starts at."""
        cfg = self.config
        trace = self.trace
        cap = self.capacitor
        t = 0  # wall-clock ns
        if trace is not None:
            # the system starts discharged: harvest up to Von before the
            # first boot (dominant for oversized capacitors, Fig. 10b)
            cap.set_voltage(cfg.v_min)
            t = trace.charge_until(0, cap.energy, self._e_on,
                                   drain_w=cfg.off_leakage_w)
            cap.set_voltage(self.v_on)
            res.off_time_ns += t
        self.design.on_boot(first=True)
        if trace is not None:
            self.watchdog.start(t)
        return t

    def _halt_finalize(self, t: int) -> int:
        """Design finalization after the guest HALTs; returns new t."""
        fin_cycles = self.design.finalize(self.core.cycle)
        self.core.cycle += fin_cycles
        return t + fin_cycles

    def _outage_reboot(self, res: RunResult, bd: EnergyBreakdown, t: int,
                       period: PeriodStats, no_progress: int) -> tuple:
        """One power-failure lifecycle: JIT checkpoint, off-period
        recharge, reboot, restore, adaptation.

        Called exactly when ``cap.energy <= _e_backup_level`` under a
        trace. Returns ``(t, period, no_progress, last_cache,
        last_nvm)`` - the caller must rebase its cache/nvm energy
        baselines on the returned values (flush energy flowed through
        the accumulators during the checkpoint) and re-read
        ``design.stats`` (the design may swap its stats object).
        """
        cfg = self.config
        core = self.core
        design = self.design
        nvm = design.nvm
        trace = self.trace
        cap = self.capacitor
        # ----- power failure imminent: JIT checkpoint (§3.2) -----
        on_time = self.watchdog.stop(t)
        self._close_period(res, period, on_time)
        no_progress = (no_progress + 1) if period.instrs == 0 else 0
        if no_progress > _NO_PROGRESS_LIMIT:
            raise EnergyError(
                f"{design.name} on {res.trace}: no forward progress "
                f"over {_NO_PROGRESS_LIMIT} power-on periods")
        # The chunked voltage check may overshoot the threshold by
        # up to a chunk's worth of energy; the real monitor fires
        # exactly at Vbackup, so normalize to that level and carry
        # the overshoot as a debt against the next on-period
        # (energy-conserving re-attribution).
        debt = max(0.0, self._e_backup_level - cap.energy)
        cap.harvest(debt)
        nvm_before = nvm.energy_read_nj + nvm.energy_write_nj
        report = design.flush_for_checkpoint(core.cycle)
        nvm_delta = (nvm.energy_read_nj + nvm.energy_write_nj
                     - nvm_before)
        ckpt_energy = (nvm_delta + report.extra_energy_nj
                       + self._reg_ckpt_nj)
        if ckpt_energy > self.reserve_nj + 1e-6:
            raise EnergyError(
                f"{design.name}: checkpoint used {ckpt_energy:.0f} nJ, "
                f"exceeding the reserve ({self.reserve_nj:.0f} nJ) - "
                f"crash-consistency guarantee violated")
        cap.consume(ckpt_energy)
        self.nvff.checkpoint(core.arch_regs, core.pc,
                             getattr(design, "maxline", 0),
                             getattr(design, "waterline", 0),
                             self.watchdog.intervals)
        t += report.cycles
        res.outages += 1
        res.checkpoint_lines_total += report.lines_flushed
        bd.checkpoint_nj += self._reg_ckpt_nj
        # mem/cache flush energy flows through the accumulators:
        # re-baseline so the next chunk does not double-consume it
        stats = design.stats
        last_cache = (stats.cache_read_energy_nj
                      + stats.cache_write_energy_nj)
        last_nvm = nvm.energy_read_nj + nvm.energy_write_nj
        design.on_power_loss()
        core.flush_icache()
        if res.outages > cfg.max_outages:
            raise EnergyError(
                f"{design.name}: exceeded {cfg.max_outages} outages")
        # ----- power-off: recharge to this design's Von, leaking
        # off_leakage_w from whatever charge is left -----
        if cfg.deep_discharge:
            # reserved-but-unspent charge is lost to self-discharge
            bd.discarded_nj += max(0.0, cap.energy - self._e_floor)
            cap.set_voltage(cfg.v_min)
        t_on = trace.charge_until(
            t, cap.energy, self._e_on,
            drain_w=cfg.off_leakage_w, e_floor_nj=0.0)
        res.off_time_ns += t_on - t
        t = t_on
        cap.harvest(max(0.0, self._e_on - cap.energy))
        # ----- reboot & restore -----
        regs, pc = self.nvff.restore()
        core.restore_arch_state((regs, pc))
        cap.consume(self._reg_restore_nj)
        bd.checkpoint_nj += self._reg_restore_nj
        core.cycle += self._reg_restore_cycles
        t += self._reg_restore_cycles
        if debt > 0.0:
            # repay the pre-checkpoint overshoot out of this boot's
            # window (bounded so a boot always makes progress)
            cap.consume(min(debt, (self._e_on - self._e_backup_level)
                            * 0.5))
        restore_cycles = design.on_boot(first=False)
        core.cycle += restore_cycles
        t += restore_cycles
        if self.controller is not None:
            new_maxline = self.controller.decide(
                self.watchdog.last_two, self.design.maxline)
            if (new_maxline != self.design.maxline
                    and self._fits(new_maxline)):
                self.design.set_thresholds(new_maxline)
            self.update_reserve()
        # restore energy (e.g. NVSRAM line copies) flows through the
        # cache accumulator on the next chunk; keep baselines as-is
        self.watchdog.start(t)
        period = self._new_period()
        return (t, period, no_progress, last_cache, last_nvm)

    def _finish(self, res: RunResult, bd: EnergyBreakdown, t: int,
                period: PeriodStats, compute_total: float,
                cache_leak_total: float) -> RunResult:
        """Close the last period and assemble the RunResult."""
        core = self.core
        design = self.design
        nvm = design.nvm
        if self.trace is not None:
            on_time = self.watchdog.stop(t)
            self._close_period(res, period, on_time)

        res.halted = core.halted
        res.total_time_ns = t
        res.on_time_ns = t - res.off_time_ns
        res.exec_cycles = core.cycle
        res.instructions = core.instret
        stats = design.stats
        res.nvm_reads = nvm.reads
        res.nvm_writes = nvm.writes
        res.read_hits = stats.read_hits
        res.read_misses = stats.read_misses
        res.write_hits = stats.write_hits
        res.write_misses = stats.write_misses
        res.store_stall_cycles = stats.store_stall_cycles
        res.async_writebacks = stats.async_writebacks
        res.dirty_evictions = stats.dirty_evictions
        # cache-array leakage belongs to the cache component (Fig. 13b);
        # split it evenly between the read and write ports
        bd.cache_read_nj = stats.cache_read_energy_nj + cache_leak_total / 2
        bd.cache_write_nj = stats.cache_write_energy_nj + cache_leak_total / 2
        bd.mem_read_nj = nvm.energy_read_nj
        bd.mem_write_nj = nvm.energy_write_nj
        bd.compute_nj = compute_total
        res.energy = bd
        if self.controller is not None:
            res.reconfig_count = self.controller.reconfig_count
            res.maxline_min, res.maxline_max = self.controller.min_max_seen
            res.prediction_accuracy = self.controller.prediction_accuracy
        elif isinstance(design, WLCache):
            res.maxline_min = res.maxline_max = design.maxline
        if isinstance(design, WLCache) and design.dynamic_policy is not None:
            res.dyn_raises = design.dynamic_policy.raises
        checker = getattr(design, "_invariant_checker", None)
        if checker is not None:
            res.invariant_checks = checker.checks
        recorder = getattr(self, "_trace_recorder", None)
        if recorder is not None:
            recorder.finish(self, res)
        res.final_regs = core.arch_regs
        res.final_memory = nvm.words
        return res

    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        """Simulate to completion and return the result."""
        cfg = self.config
        core = self.core
        design = self.design
        nvm = design.nvm
        trace = self.trace
        cap = self.capacitor
        em = cfg.energy
        core_leak_w = em.core_leakage_w
        design_leak_w = design.leakage_w()

        res = RunResult(program=self.program.name, design=design.name,
                        trace=trace.name if trace else "no-failure")
        bd = EnergyBreakdown()

        # energy accumulator baselines
        last_instret = 0
        last_fetch = 0
        last_imiss = 0
        last_cache = 0.0
        last_nvm = 0.0
        compute_total = 0.0
        cache_leak_total = 0.0

        t = self._begin(res)
        period = self._new_period()
        no_progress = 0

        # hot-loop local bindings: this loop turns once per chunk (every
        # ``chunk_instrs`` guest instructions under a trace), so attribute
        # hops here are a measurable fraction of simulator runtime
        run_chunk = core.run_chunk
        consume = cap.consume
        harvest = cap.harvest
        trace_energy = trace.energy_nj if trace is not None else None
        stats = design.stats
        chunk_instrs = cfg.chunk_instrs
        max_instructions = cfg.max_instructions
        worst_instr_nj = em.worst_instr_nj
        compute_nj = em.compute_nj
        ifetch_nj = em.ifetch_nj
        ifetch_miss_nj = em.ifetch_miss_nj
        # NOT hoisted: _e_backup_level moves when the dynamic maxline
        # policy calls update_reserve() mid-run

        while True:
            if trace is None:
                budget_instrs = 65536
            else:
                headroom = cap.energy - self._e_backup_level
                budget_instrs = min(
                    chunk_instrs,
                    max(2, int(headroom / worst_instr_nj)))
            n, dcycles = run_chunk(budget_instrs)
            instret = core.instret
            if instret > max_instructions:
                raise ExecutionError(
                    f"{self.program.name}: exceeded instruction budget")
            # per-chunk energy
            d_compute = ((instret - last_instret) * compute_nj
                         + (core.ic_fetches - last_fetch) * ifetch_nj
                         + (core.ic_misses - last_imiss) * ifetch_miss_nj
                         + core_leak_w * dcycles)
            d_leak_cache = design_leak_w * dcycles
            cache_leak_total += d_leak_cache
            cache_now = (stats.cache_read_energy_nj
                         + stats.cache_write_energy_nj)
            nvm_now = nvm.energy_read_nj + nvm.energy_write_nj
            d_cache = cache_now - last_cache
            d_nvm = nvm_now - last_nvm
            compute_total += d_compute
            last_instret = instret
            last_fetch = core.ic_fetches
            last_imiss = core.ic_misses
            last_cache = cache_now
            last_nvm = nvm_now

            if trace is not None:
                consume(d_compute + d_leak_cache + d_cache + d_nvm)
                harvest(trace_energy(t, t + dcycles))
            t += dcycles

            if core.halted:
                t = self._halt_finalize(t)
                break

            if trace is not None and cap.energy <= self._e_backup_level:
                (t, period, no_progress, last_cache,
                 last_nvm) = self._outage_reboot(res, bd, t, period,
                                                 no_progress)
                stats = design.stats

        return self._finish(res, bd, t, period, compute_total,
                            cache_leak_total)

    # ------------------------------------------------------------------
    def _new_period(self) -> PeriodStats:
        p = PeriodStats()
        p.instrs = -self.core.instret
        p.async_writebacks = -self.design.stats.async_writebacks
        if isinstance(self.design, WLCache):
            self.design.dirty_highwater = 0
            p.maxline = self.design.maxline
        return p

    def _close_period(self, res: RunResult, p: PeriodStats,
                      on_time: int) -> None:
        p.on_time_ns = on_time
        p.instrs += self.core.instret
        p.async_writebacks += self.design.stats.async_writebacks
        if isinstance(self.design, WLCache):
            p.dirty_highwater = self.design.dirty_highwater
        res.periods.append(p)
