"""Run results: everything the analysis layer and the checker consume."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PeriodStats:
    """Per-power-on-period statistics (§6.6 reporting)."""

    on_time_ns: int = 0
    instrs: int = 0
    dirty_highwater: int = 0
    async_writebacks: int = 0
    maxline: int = 0


@dataclass
class EnergyBreakdown:
    """Energy totals by component, in nJ (Figure 13b categories)."""

    cache_read_nj: float = 0.0
    cache_write_nj: float = 0.0
    mem_read_nj: float = 0.0
    mem_write_nj: float = 0.0
    compute_nj: float = 0.0  # datapath + ifetch + core leakage
    checkpoint_nj: float = 0.0  # register NVFF flashes + restore
    #: reserved-but-unspent charge lost to self-discharge across outages -
    #: the recurring price of a large checkpoint reserve (S1, S6.3)
    discarded_nj: float = 0.0

    @property
    def total_nj(self) -> float:
        return (self.cache_read_nj + self.cache_write_nj + self.mem_read_nj
                + self.mem_write_nj + self.compute_nj + self.checkpoint_nj
                + self.discarded_nj)

    def as_dict(self) -> dict[str, float]:
        return {
            "cache_read": self.cache_read_nj,
            "cache_write": self.cache_write_nj,
            "mem_read": self.mem_read_nj,
            "mem_write": self.mem_write_nj,
            "compute": self.compute_nj,
            "checkpoint": self.checkpoint_nj,
            "discarded": self.discarded_nj,
        }


@dataclass
class RunResult:
    """Outcome of one program x design x trace simulation."""

    program: str
    design: str
    trace: str
    halted: bool = False

    # time
    total_time_ns: int = 0  # wall clock incl. power-off charging
    on_time_ns: int = 0
    off_time_ns: int = 0
    exec_cycles: int = 0
    instructions: int = 0

    # outage behaviour
    outages: int = 0
    checkpoint_lines_total: int = 0
    reconfig_count: int = 0
    maxline_min: int = 0
    maxline_max: int = 0
    prediction_accuracy: float = 1.0
    dyn_raises: int = 0

    # memory behaviour
    nvm_reads: int = 0
    nvm_writes: int = 0  # write traffic (words), Figure 7
    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0
    store_stall_cycles: int = 0
    async_writebacks: int = 0
    dirty_evictions: int = 0
    #: protocol invariant evaluations performed (0 unless the checker was
    #: attached via SimConfig.check_invariants / REPRO_CHECK=1)
    invariant_checks: int = 0

    #: observability counters/histograms (None unless the trace recorder
    #: was attached via SimConfig.trace / REPRO_TRACE=1); a plain dict in
    #: the :meth:`repro.obs.metrics.MetricsRegistry.as_dict` shape so it
    #: pickles cheaply from parallel sweep workers and merges with
    #: :func:`repro.obs.metrics.merge_metrics`
    metrics: dict | None = None

    energy: EnergyBreakdown = field(default_factory=EnergyBreakdown)
    periods: list[PeriodStats] = field(default_factory=list)

    # final state for the crash-consistency checker
    final_regs: list[int] = field(default_factory=list)
    final_memory: list[int] | None = None

    @property
    def ipc(self) -> float:
        return self.instructions / self.exec_cycles if self.exec_cycles else 0.0

    @property
    def stall_fraction(self) -> float:
        return (self.store_stall_cycles / self.exec_cycles
                if self.exec_cycles else 0.0)

    @property
    def avg_dirty_per_period(self) -> float:
        ps = [p for p in self.periods if p.instrs > 0]
        if not ps:
            return 0.0
        return sum(p.dirty_highwater for p in ps) / len(ps)

    @property
    def avg_writebacks_per_period(self) -> float:
        ps = [p for p in self.periods if p.instrs > 0]
        if not ps:
            return 0.0
        return sum(p.async_writebacks for p in ps) / len(ps)

    def summary(self) -> str:
        """One-line human-readable digest."""
        ms = self.total_time_ns / 1e6
        return (f"{self.program:>14s} | {self.design:<13s} | "
                f"{ms:9.3f} ms | {self.instructions:>9d} instr | "
                f"{self.outages:>4d} outages | IPC {self.ipc:4.2f}")
