"""TraceRecorder: event tracing + metrics for one simulation run.

The recorder attaches to a built :class:`~repro.sim.system.System` by
*shadowing instance attributes* with wrapper closures - the same
zero-overhead-when-off trick as :mod:`repro.lint.invariants`. The
interpreter, the system loop, and the cache designs all resolve the
instrumented methods through the instance, so with tracing disabled (the
default) the hot paths execute the untouched class methods: no flag tests,
no indirection, not one extra bytecode.

Instrumented call sites (all resolved via ``self.``/instance locals):

* ``core.run_chunk`` - retire + capacitor-energy samples per chunk;
* ``design.load`` / ``design.store`` / ``design.store_masked`` - cache
  hit/miss events and DirtyQueue occupancy transitions, derived by
  *diffing* the design's own ``MemStats`` counters around the call (so
  nested ``store -> store_masked`` delegation never double-books, and the
  differential test can prove metrics == ``RunResult`` aggregates);
* ``design._issue_writeback`` / ``design._retire_pending`` /
  ``design._ensure_slot`` (WL-Cache only) - write-back issue/ACK pairs and
  stall begin/end;
* ``design.set_thresholds`` - threshold reconfigurations;
* ``design.flush_for_checkpoint`` / ``design.on_boot`` - JIT checkpoint
  flushes and (re)boots;
* ``trace.charge_until`` - power-off periods (also keeps the wall-clock
  offset between the core's cycle counter and simulated wall time);
* ``capacitor.consume`` - energy drawn, for the per-outage histogram.

Timestamps are wall-clock ns (``t`` in the system loop); cache-side events
are stamped ``core-cycle + offset`` where the offset absorbs power-off and
checkpoint time. The recorder clamps timestamps monotone non-decreasing
per component (Perfetto needs per-track monotonicity; a forcibly
early-retired write-back would otherwise be stamped at its scheduled ACK).

Enable via ``SimConfig(trace=True)`` or ``REPRO_TRACE=1`` in the
environment (the latter reaches parallel sweep workers too). Events stay
in the recorder (reachable as ``system._trace_recorder``); only the
metrics dict rides home in ``RunResult.metrics``.
"""

from __future__ import annotations

import os

from repro.obs.events import EVENT_SCHEMA, TraceEvent
from repro.obs.metrics import MetricsRegistry

#: Environment switch; any value except "", "0" enables tracing.
ENV_VAR = "REPRO_TRACE"

#: Histogram bucket bounds (inclusive upper edges; last bucket open).
WB_LATENCY_BOUNDS = [64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0]
CKPT_LINES_BOUNDS = [0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0]
ENERGY_OUTAGE_BOUNDS = [250.0, 500.0, 1000.0, 2000.0, 4000.0,
                        8000.0, 16000.0, 32000.0]


def trace_enabled() -> bool:
    """True when ``REPRO_TRACE`` requests event tracing."""
    return os.environ.get(ENV_VAR, "0") not in ("", "0")


class TraceRecorder:
    """Collects typed events and metrics for one run.

    Attributes:
        events: The recorded :class:`TraceEvent` list, in emission order
            (timestamps monotone non-decreasing per component).
        metrics: The run's :class:`MetricsRegistry`.
        detail: When False, per-access *hit* events are suppressed (misses,
            write-backs, stalls, and all counters are always recorded) -
            the right setting for long runs.
    """

    def __init__(self, detail: bool = True):
        self.events: list[TraceEvent] = []
        self.metrics = MetricsRegistry()
        self.detail = detail
        self._last_ts: dict[str, int] = {}
        # wall-clock bookkeeping (see module docstring)
        self._offset = 0          # wall ns - core cycles
        self._cache_now = 0       # wall ns of the latest cache-path entry
        self._wall_now = 0        # wall ns of the latest system-side event
        self._consumed_mark = 0.0  # energy consumed since the last flush
        self._attached = False

    # ------------------------------------------------------------------
    def emit(self, etype: str, ts: int, **args) -> TraceEvent:
        """Append one event, clamping ts monotone within its component."""
        component = EVENT_SCHEMA[etype][0]
        last = self._last_ts.get(component)
        ts = int(ts)
        if last is not None and ts < last:
            ts = last
        self._last_ts[component] = ts
        ev = TraceEvent(ts, etype, args)
        self.events.append(ev)
        return ev

    def now(self) -> int:
        """Best current wall-clock estimate for timer-less call sites."""
        return max(self._cache_now, self._wall_now)

    # ------------------------------------------------------------------
    def attach(self, system) -> "TraceRecorder":
        """Instrument ``system`` (idempotent per recorder, one system)."""
        if self._attached:
            raise RuntimeError("TraceRecorder is already attached")
        self._attached = True
        rec = self
        core = system.core
        design = system.design
        cap = system.capacitor
        metrics = self.metrics
        emit = self.emit

        c_chunks = metrics.counter("core.chunks")
        c_consumed = metrics.counter("power.energy_consumed_nj")
        c_off = metrics.counter("power.off_ns")
        c_boots = metrics.counter("sys.boots")

        # --- core: retire + energy sampling at chunk boundaries ---------
        orig_run_chunk = core.run_chunk

        def run_chunk(max_instrs):
            out = orig_run_chunk(max_instrs)
            ts = core.cycle + rec._offset
            emit("retire", ts, instret=core.instret, cycle=core.cycle)
            emit("energy", ts, nj=cap.energy)
            c_chunks.inc()
            return out

        core.run_chunk = run_chunk

        # --- capacitor: energy-consumption accounting -------------------
        orig_consume = cap.consume

        def consume(nj):
            orig_consume(nj)
            c_consumed.inc(nj)

        cap.consume = consume

        # --- cache accesses: diff-based hit/miss/occupancy events -------
        stats = design.stats
        dq = getattr(design, "dq", None)
        c_read_hits = metrics.counter("cache.read_hits")
        c_read_misses = metrics.counter("cache.read_misses")
        c_write_hits = metrics.counter("cache.write_hits")
        c_write_misses = metrics.counter("cache.write_misses")
        c_evictions = metrics.counter("cache.dirty_evictions")
        c_stall_cycles = metrics.counter("cache.stall_cycles")
        c_wbs = metrics.counter("cache.async_writebacks")
        h_occ = (metrics.histogram("dq.occupancy",
                                   [float(i) for i in
                                    range(dq.capacity + 1)])
                 if dq is not None else None)
        # last-seen counter values; a delta around a wrapped call is what
        # was caused by that call (nested wrappers sync first, so the
        # outer delta collapses to zero - nothing is booked twice)
        state = {
            "read_hits": 0, "read_misses": 0,
            "write_hits": 0, "write_misses": 0,
            "dirty_evictions": 0, "store_stall_cycles": 0,
            "async_writebacks": 0, "occ": 0,
        }

        def sync_access(ts, addr):
            s = state
            d = stats.read_hits - s["read_hits"]
            if d:
                s["read_hits"] = stats.read_hits
                c_read_hits.inc(d)
                if rec.detail:
                    emit("read_hit", ts, addr=addr)
            d = stats.read_misses - s["read_misses"]
            if d:
                s["read_misses"] = stats.read_misses
                c_read_misses.inc(d)
                emit("read_miss", ts, addr=addr)
            d = stats.write_hits - s["write_hits"]
            if d:
                s["write_hits"] = stats.write_hits
                c_write_hits.inc(d)
                if rec.detail:
                    emit("write_hit", ts, addr=addr)
            d = stats.write_misses - s["write_misses"]
            if d:
                s["write_misses"] = stats.write_misses
                c_write_misses.inc(d)
                emit("write_miss", ts, addr=addr)
            d = stats.dirty_evictions - s["dirty_evictions"]
            if d:
                s["dirty_evictions"] = stats.dirty_evictions
                c_evictions.inc(d)
            d = stats.store_stall_cycles - s["store_stall_cycles"]
            if d:
                s["store_stall_cycles"] = stats.store_stall_cycles
                c_stall_cycles.inc(d)
            d = stats.async_writebacks - s["async_writebacks"]
            if d:
                s["async_writebacks"] = stats.async_writebacks
                c_wbs.inc(d)
            if dq is not None and dq.occupancy != s["occ"]:
                s["occ"] = dq.occupancy
                emit("dirty", ts, occ=s["occ"])
                h_occ.observe(s["occ"])

        orig_load = design.load

        def load(addr, now):
            rec._cache_now = now + rec._offset
            value, cycles = orig_load(addr, now)
            sync_access(now + cycles + rec._offset, addr)
            return (value, cycles)

        design.load = load

        orig_store = design.store

        def store(addr, value, now):
            rec._cache_now = now + rec._offset
            cycles = orig_store(addr, value, now)
            sync_access(now + cycles + rec._offset, addr)
            return cycles

        design.store = store

        orig_store_masked = design.store_masked

        def store_masked(addr, bits, mask, now):
            rec._cache_now = now + rec._offset
            cycles = orig_store_masked(addr, bits, mask, now)
            sync_access(now + cycles + rec._offset, addr)
            return cycles

        design.store_masked = store_masked

        # --- WL-Cache protocol: write-backs and stalls -------------------
        if dq is not None:
            self._attach_wl(design, state)

        # --- persistence protocol ---------------------------------------
        c_flushes = metrics.counter("sys.ckpt_flushes")
        c_lines = metrics.counter("sys.ckpt_lines")
        c_words = metrics.counter("sys.ckpt_words")
        h_flush = metrics.histogram("sys.ckpt_lines_per_flush",
                                    CKPT_LINES_BOUNDS)
        h_outage = metrics.histogram("power.energy_per_outage_nj",
                                     ENERGY_OUTAGE_BOUNDS)
        orig_flush = design.flush_for_checkpoint

        def flush_for_checkpoint(now):
            ts = now + rec._offset
            rec._cache_now = ts
            report = orig_flush(now)
            sync_access(ts, 0)  # catch occupancy drop etc.
            emit("ckpt_flush", ts, cycles=report.cycles,
                 lines=report.lines_flushed, words=report.words_flushed)
            c_flushes.inc()
            c_lines.inc(report.lines_flushed)
            c_words.inc(report.words_flushed)
            h_flush.observe(report.lines_flushed)
            consumed = c_consumed.value - rec._consumed_mark
            rec._consumed_mark = c_consumed.value
            h_outage.observe(consumed)
            self._drop_inflight()
            return report

        design.flush_for_checkpoint = flush_for_checkpoint

        orig_on_boot = design.on_boot

        def on_boot(first):
            cycles = orig_on_boot(first)
            emit("boot", rec.now(), first=int(first), restore_cycles=cycles)
            c_boots.inc()
            return cycles

        design.on_boot = on_boot

        if hasattr(design, "set_thresholds"):
            orig_set = design.set_thresholds

            def set_thresholds(maxline, waterline=None):
                orig_set(maxline, waterline)
                emit("reconfig", rec.now(), maxline=design.maxline,
                     waterline=design.waterline)
                metrics.counter("sys.reconfigs").inc()

            design.set_thresholds = set_thresholds

        # --- power trace: off periods + wall-clock offset ----------------
        trace = system.trace
        if trace is not None:
            orig_charge = trace.charge_until

            def charge_until(t0_ns, e0_nj, e_target_nj, **kwargs):
                t_on = orig_charge(t0_ns, e0_nj, e_target_nj, **kwargs)
                dur = t_on - t0_ns
                emit("off", t0_ns, dur=dur)
                c_off.inc(dur)
                rec._offset = t_on - core.cycle
                rec._wall_now = t_on
                return t_on

            trace.charge_until = charge_until

        self._dq = dq
        self._design = design
        self._core = core
        self._cap = cap
        return self

    # ------------------------------------------------------------------
    def _attach_wl(self, design, state) -> None:
        """WL-Cache-specific hooks: write-back issue/ACK, stall spans."""
        rec = self
        emit = self.emit
        metrics = self.metrics
        c_issued = metrics.counter("wb.issued")
        c_acked = metrics.counter("wb.acked")
        metrics.counter("wb.flushed_inflight")  # register eagerly
        c_events = metrics.counter("cache.stall_events")
        c_ack_wait = metrics.counter("cache.stall_cycles.ack_wait")
        c_sync = metrics.counter("cache.stall_cycles.sync_clean")
        h_lat = metrics.histogram("wb.latency_ns", WB_LATENCY_BOUNDS)
        # outstanding write-backs: DQEntry.seq -> issue wall time
        self._inflight: dict[int, int] = {}
        inflight = self._inflight

        orig_issue = design._issue_writeback

        def _issue_writeback(t):
            p = orig_issue(t)
            if p is not None:
                ev = emit("wb_issue", t + rec._offset, line=p.lineno,
                          ack=p.ack + rec._offset, seq=p.entry.seq)
                inflight[p.entry.seq] = ev.ts
                c_issued.inc()
            return p

        design._issue_writeback = _issue_writeback

        # eviction/refill ordering retires write-backs *early*; stamp those
        # at the current access time, not the never-reached scheduled ACK
        forced = {"on": False}
        orig_same_line = design._flush_same_line_pending

        def _flush_same_line_pending(lineno):
            forced["on"] = True
            try:
                orig_same_line(lineno)
            finally:
                forced["on"] = False

        design._flush_same_line_pending = _flush_same_line_pending

        orig_retire = design._retire_pending

        def _retire_pending(p):
            orig_retire(p)
            ack_ts = (rec._cache_now if forced["on"]
                      else p.ack + rec._offset)
            ev = emit("wb_ack", ack_ts, line=p.lineno, seq=p.entry.seq)
            c_acked.inc()
            issue_ts = inflight.pop(p.entry.seq, None)
            if issue_ts is not None:
                h_lat.observe(max(0, ev.ts - issue_ts))

        design._retire_pending = _retire_pending

        orig_slot = design._ensure_slot

        def _ensure_slot(t):
            sync_before = design.sync_cleans
            stall = orig_slot(t)
            if stall:
                ts = t + rec._offset
                cause = ("sync_clean" if design.sync_cleans > sync_before
                         else "ack_wait")
                emit("stall_begin", ts)
                emit("stall_end", ts + stall, cycles=stall, cause=cause)
                c_events.inc()
                (c_sync if cause == "sync_clean" else c_ack_wait).inc(stall)
            return stall

        design._ensure_slot = _ensure_slot

    def _drop_inflight(self) -> None:
        """A JIT checkpoint persisted all in-flight write-backs; their
        ACKs will never arrive (covered by the ckpt_flush event)."""
        inflight = getattr(self, "_inflight", None)
        if inflight:
            self.metrics.counter("wb.flushed_inflight").inc(len(inflight))
            inflight.clear()

    # ------------------------------------------------------------------
    def finish(self, system, result) -> None:
        """Final samples + counter backfill; publish ``RunResult.metrics``."""
        core = self._core
        ts = core.cycle + self._offset
        self.emit("retire", ts, instret=core.instret, cycle=core.cycle)
        self.emit("energy", ts, nj=self._cap.energy)
        dq = self._dq
        if dq is not None:
            m = self.metrics
            m.set_counter("dq.inserts", dq.inserts)
            m.set_counter("dq.duplicate_inserts", dq.duplicate_inserts)
            m.set_counter("dq.stale_drops", dq.stale_drops)
        result.metrics = self.metrics.as_dict()


def attach_trace(system, recorder: TraceRecorder | None = None,
                 detail: bool = True) -> TraceRecorder:
    """Attach a (new) recorder to a built system; returns it.

    The recorder is reachable afterwards as ``system._trace_recorder``;
    :meth:`System.run` publishes its metrics into ``RunResult.metrics``.

    If the core has already been JIT-compiled or the memfast tier is
    attached, both are detached first: compiled blocks and the fast
    handlers bind the memory-system methods directly and would bypass
    the wrappers installed here, so tracing always wins.
    """
    if getattr(system.design, "_memfast_state", None) is not None:
        from repro.memfast import detach_memfast
        detach_memfast(system)  # takes a live JIT down with it
    if getattr(system.core, "_jit_state", None) is not None:
        from repro.jit import detach_jit
        detach_jit(system.core)
    rec = recorder if recorder is not None else TraceRecorder(detail=detail)
    rec.attach(system)
    system._trace_recorder = rec
    return rec
