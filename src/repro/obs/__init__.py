"""Simulation observability: event tracing, metrics, Perfetto export.

Zero overhead when disabled (the default): the recorder shadows instance
methods only when attached, so untraced runs execute untouched hot paths.
Enable with ``SimConfig(trace=True)``, ``REPRO_TRACE=1``, or the
``repro trace`` CLI subcommand. See ``docs/observability.md``.
"""

from repro.obs.events import (
    EVENT_SCHEMA,
    TraceEvent,
    format_event,
    format_events,
)
from repro.obs.export import (
    timeline_summary,
    to_chrome,
    to_csv,
    validate_chrome_trace,
    write_chrome,
    write_csv,
    write_text,
)
from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    merge_metrics,
)
from repro.obs.recorder import (
    ENV_VAR,
    TraceRecorder,
    attach_trace,
    trace_enabled,
)

__all__ = [
    "EVENT_SCHEMA",
    "TraceEvent",
    "format_event",
    "format_events",
    "timeline_summary",
    "to_chrome",
    "to_csv",
    "validate_chrome_trace",
    "write_chrome",
    "write_csv",
    "write_text",
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "merge_metrics",
    "ENV_VAR",
    "TraceRecorder",
    "attach_trace",
    "trace_enabled",
]
