"""CLI validator for Chrome trace-event JSON files.

Usage::

    python -m repro.obs.validate trace.json [...]

Exits 0 when every file validates, 1 otherwise (problems on stderr).
The CI trace-smoke job runs this against the ``repro trace`` output.
"""

from __future__ import annotations

import json
import sys

from repro.obs.export import validate_chrome_trace


def main(argv: list[str] | None = None) -> int:
    paths = sys.argv[1:] if argv is None else argv
    if not paths:
        print("usage: python -m repro.obs.validate trace.json [...]",
              file=sys.stderr)
        return 2
    bad = 0
    for path in paths:
        try:
            with open(path) as fh:
                obj = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"{path}: unreadable: {exc}", file=sys.stderr)
            bad += 1
            continue
        errors = validate_chrome_trace(obj)
        if errors:
            bad += 1
            for err in errors:
                print(f"{path}: {err}", file=sys.stderr)
        else:
            n = len(obj.get("traceEvents", []))
            print(f"{path}: OK ({n} events)")
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main())
