"""Named counters and histograms for simulation metrics.

A :class:`MetricsRegistry` is attached to a run by the
:class:`~repro.obs.recorder.TraceRecorder` and aggregated into
``RunResult.metrics`` as a plain JSON-able dict - small enough to pickle
home from parallel sweep workers, mergeable across runs with
:func:`merge_metrics`.

Histograms use explicit bucket upper bounds (the last bucket is open,
like Prometheus ``le`` buckets) plus exact sum/count/min/max, so merging
two histograms with the same bounds is lossless bucket-wise addition.
"""

from __future__ import annotations

from repro.errors import ConfigError


class Counter:
    """A monotonically growing value (int or float)."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0):
        self.value = value

    def inc(self, n: float = 1) -> None:
        self.value += n


class Histogram:
    """Fixed-bucket histogram with exact sum/count/min/max.

    ``bounds`` are inclusive upper bounds of the finite buckets; one more
    open bucket catches everything above the last bound.
    """

    __slots__ = ("bounds", "counts", "total", "count", "min", "max")

    def __init__(self, bounds: list[float]):
        if not bounds or any(b <= a for b, a in zip(bounds[1:], bounds)):
            raise ConfigError(
                f"histogram bounds must be non-empty and strictly "
                f"increasing, got {bounds!r}")
        self.bounds = list(bounds)
        self.counts = [0] * (len(bounds) + 1)
        self.total = 0.0
        self.count = 0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += value
        self.count += 1
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Named counters and histograms for one run."""

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter()
        return c

    def histogram(self, name: str, bounds: list[float]) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(bounds)
        return h

    def set_counter(self, name: str, value: float) -> None:
        """Set a counter to an absolute value (end-of-run backfill)."""
        self.counter(name).value = value

    def as_dict(self) -> dict:
        """Plain JSON-able form - this is what ``RunResult.metrics`` holds."""
        out: dict = {"counters": {}, "histograms": {}}
        for name in sorted(self.counters):
            out["counters"][name] = self.counters[name].value
        for name in sorted(self.histograms):
            h = self.histograms[name]
            out["histograms"][name] = {
                "bounds": list(h.bounds), "counts": list(h.counts),
                "sum": h.total, "count": h.count,
                "min": h.min, "max": h.max,
            }
        return out


def merge_metrics(dicts) -> dict:
    """Merge ``RunResult.metrics`` dicts (e.g. across sweep runs/workers).

    Counters add; histograms with identical bounds add bucket-wise and
    combine sum/count/min/max. Mismatched bounds for the same histogram
    name raise :class:`~repro.errors.ConfigError` - that means two runs
    were recorded with incompatible recorder versions.
    """
    merged: dict = {"counters": {}, "histograms": {}}
    for d in dicts:
        if d is None:
            continue
        for name, value in d.get("counters", {}).items():
            merged["counters"][name] = merged["counters"].get(name, 0) + value
        for name, h in d.get("histograms", {}).items():
            m = merged["histograms"].get(name)
            if m is None:
                merged["histograms"][name] = {
                    "bounds": list(h["bounds"]), "counts": list(h["counts"]),
                    "sum": h["sum"], "count": h["count"],
                    "min": h["min"], "max": h["max"],
                }
                continue
            if m["bounds"] != h["bounds"]:
                raise ConfigError(
                    f"cannot merge histogram {name!r}: bucket bounds differ "
                    f"({m['bounds']} vs {h['bounds']})")
            m["counts"] = [a + b for a, b in zip(m["counts"], h["counts"])]
            m["sum"] += h["sum"]
            m["count"] += h["count"]
            for k, pick in (("min", min), ("max", max)):
                if h[k] is not None:
                    m[k] = h[k] if m[k] is None else pick(m[k], h[k])
    merged["counters"] = dict(sorted(merged["counters"].items()))
    merged["histograms"] = dict(sorted(merged["histograms"].items()))
    return merged
