"""Exporters for recorded traces: Chrome/Perfetto JSON, CSV, terminal.

The Chrome trace-event JSON (load it at https://ui.perfetto.dev or
``chrome://tracing``) maps each component to its own thread track and each
event kind to the matching phase:

========  ==  =========================================================
kind      ph  rendering
========  ==  =========================================================
instant   i   a tick on the component's track
counter   C   a counter track (retire/energy/dirty-occupancy curves)
span      X   a complete slice with duration (off periods, ckpt flushes)
span_beg  B   an open slice on the track (stalls) ...
span_end  E   ... closed by the matching E
begin     b   an async arrow (write-back in flight) ...
end       e   ... terminated by the matching e (paired by ``seq``)
========  ==  =========================================================

Timestamps convert from simulated ns to the format's microseconds.
:func:`validate_chrome_trace` is a self-contained structural validator
(no jsonschema dependency) used by tests and the CI trace-smoke job via
``python -m repro.obs.validate``.
"""

from __future__ import annotations

import csv
import io
import json

from repro.obs.events import (
    ASYNC_BEGIN,
    ASYNC_END,
    COMPONENTS,
    COUNTER,
    DUR_BEGIN,
    DUR_END,
    EVENT_SCHEMA,
    INSTANT,
    SPAN,
    TraceEvent,
    format_event,
)

_PID = 1
_TID = {name: i + 1 for i, name in enumerate(COMPONENTS)}

_PH = {
    INSTANT: "i",
    COUNTER: "C",
    SPAN: "X",
    DUR_BEGIN: "B",
    DUR_END: "E",
    ASYNC_BEGIN: "b",
    ASYNC_END: "e",
}


def _us(ts_ns: float) -> float:
    return ts_ns / 1000.0


def to_chrome(events: list[TraceEvent], meta: dict | None = None) -> dict:
    """Convert events to a Chrome trace-event JSON object."""
    out: list[dict] = [
        {"ph": "M", "name": "process_name", "pid": _PID, "ts": 0,
         "args": {"name": "repro-sim"}},
    ]
    for name, tid in _TID.items():
        out.append({"ph": "M", "name": "thread_name", "pid": _PID,
                    "tid": tid, "ts": 0, "args": {"name": name}})
    for ev in events:
        component, kind, _names, _desc = EVENT_SCHEMA[ev.etype]
        rec = {
            "ph": _PH[kind],
            "name": ev.etype,
            "ts": _us(ev.ts),
            "pid": _PID,
            "tid": _TID[component],
        }
        if kind == COUNTER:
            rec["args"] = {k: v for k, v in ev.args.items()
                           if isinstance(v, (int, float))}
        elif kind == SPAN:
            args = dict(ev.args)
            # off spans carry their duration in ns; ckpt flushes in cycles
            dur_ns = args.get("dur", args.get("cycles", 0))
            rec["dur"] = _us(dur_ns)
            rec["args"] = args
        elif kind in (ASYNC_BEGIN, ASYNC_END):
            rec["cat"] = component
            rec["id"] = str(ev.args.get("seq", 0))
            rec["name"] = "writeback"
            rec["args"] = dict(ev.args)
        else:
            if kind == INSTANT:
                rec["s"] = "t"
            rec["args"] = dict(ev.args)
        out.append(rec)
    return {
        "traceEvents": out,
        "displayTimeUnit": "ns",
        "otherData": dict(meta or {}),
    }


def write_chrome(events: list[TraceEvent], path,
                 meta: dict | None = None) -> None:
    with open(path, "w") as fh:
        json.dump(to_chrome(events, meta), fh)
        fh.write("\n")


def to_csv(events: list[TraceEvent]) -> str:
    """Flat CSV: ``ts_ns,component,event,args`` (args in schema order)."""
    buf = io.StringIO()
    w = csv.writer(buf, lineterminator="\n")
    w.writerow(["ts_ns", "component", "event", "args"])
    for ev in events:
        names = EVENT_SCHEMA[ev.etype][2]
        args = " ".join(f"{k}={ev.args.get(k)}" for k in names)
        w.writerow([ev.ts, ev.component, ev.etype, args])
    return buf.getvalue()


def write_csv(events: list[TraceEvent], path) -> None:
    with open(path, "w") as fh:
        fh.write(to_csv(events))


def write_text(events: list[TraceEvent], path) -> None:
    """Golden text format, one event per line (see events.format_event)."""
    with open(path, "w") as fh:
        for ev in events:
            fh.write(format_event(ev))
            fh.write("\n")


def timeline_summary(events: list[TraceEvent], metrics: dict | None = None,
                     width: int = 64) -> str:
    """Human-readable run overview for the terminal.

    A bucketed strip shows where the run spent its time (``#`` running,
    ``.`` power-off dominated, ``!`` stall activity), followed by event
    counts and headline metrics.
    """
    lines: list[str] = []
    if not events:
        return "empty trace\n"
    t0 = min(ev.ts for ev in events)
    t1 = max(ev.ts + ev.args.get("dur", 0) for ev in events)
    span = max(1, t1 - t0)
    off = [0.0] * width
    stall = [0] * width
    counts: dict[str, int] = {}
    for ev in events:
        counts[ev.etype] = counts.get(ev.etype, 0) + 1
        if ev.etype == "off":
            lo, hi = ev.ts, ev.ts + ev.args.get("dur", 0)
            b0 = min(width - 1, (lo - t0) * width // span)
            b1 = min(width - 1, (hi - t0) * width // span)
            for b in range(b0, b1 + 1):
                blo = t0 + b * span / width
                bhi = blo + span / width
                overlap = min(hi, bhi) - max(lo, blo)
                if overlap > 0:
                    off[b] += overlap / (span / width)
        elif ev.etype == "stall_end":
            b = min(width - 1, (ev.ts - t0) * width // span)
            stall[b] += 1
    strip = "".join(
        "." if off[b] > 0.5 else ("!" if stall[b] else "#")
        for b in range(width))
    lines.append(f"timeline  [{strip}]")
    lines.append(f"          {t0} ns .. {t1} ns "
                 f"(span {span} ns, {len(events)} events)")
    lines.append("")
    lines.append("events:")
    for name in sorted(counts):
        lines.append(f"  {name:<12} {counts[name]}")
    if metrics:
        lines.append("")
        lines.append("counters:")
        for name, value in metrics.get("counters", {}).items():
            if isinstance(value, float):
                lines.append(f"  {name:<28} {value:.1f}")
            else:
                lines.append(f"  {name:<28} {value}")
        hists = metrics.get("histograms", {})
        if hists:
            lines.append("")
            lines.append("histograms (count/mean/max):")
            for name, h in hists.items():
                n = h["count"]
                mean = h["sum"] / n if n else 0.0
                mx = h["max"] if h["max"] is not None else 0
                lines.append(f"  {name:<28} {n:>6} / {mean:.1f} / {mx}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# structural validator for the Chrome trace-event format (CI + tests)

_KNOWN_PH = {"M", "i", "I", "C", "X", "B", "E", "b", "e", "n", "s", "t", "f"}


def validate_chrome_trace(obj) -> list[str]:
    """Validate a loaded trace.json against the Chrome trace-event format.

    Returns a list of human-readable problems (empty when valid). Checks
    the JSON-object form, per-phase required fields, non-negative numeric
    timestamps, B/E nesting balance per thread, and b/e async pairing by
    (cat, id).
    """
    errors: list[str] = []
    if not isinstance(obj, dict) or "traceEvents" not in obj:
        return ["top level must be an object with a 'traceEvents' array"]
    events = obj["traceEvents"]
    if not isinstance(events, list):
        return ["'traceEvents' must be an array"]
    open_dur: dict[tuple, list[str]] = {}
    open_async: dict[tuple, int] = {}
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: event must be an object")
            continue
        ph = ev.get("ph")
        if not isinstance(ph, str) or ph not in _KNOWN_PH:
            errors.append(f"{where}: unknown phase {ph!r}")
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool):
            errors.append(f"{where}: 'ts' must be a number, got {ts!r}")
        elif ts < 0:
            errors.append(f"{where}: negative timestamp {ts}")
        if not isinstance(ev.get("pid"), int):
            errors.append(f"{where}: 'pid' must be an integer")
        name = ev.get("name")
        if ph != "M" and not isinstance(name, str):
            errors.append(f"{where}: 'name' must be a string")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: 'X' needs a non-negative 'dur'")
        elif ph in ("B", "E"):
            track = (ev.get("pid"), ev.get("tid"))
            stack = open_dur.setdefault(track, [])
            if ph == "B":
                stack.append(name)
            elif not stack:
                errors.append(f"{where}: 'E' with no open 'B' on {track}")
            else:
                stack.pop()
        elif ph in ("b", "e"):
            if not isinstance(ev.get("cat"), str):
                errors.append(f"{where}: async event needs a 'cat' string")
            if "id" not in ev:
                errors.append(f"{where}: async event needs an 'id'")
            key = (ev.get("cat"), str(ev.get("id")))
            if ph == "b":
                open_async[key] = open_async.get(key, 0) + 1
            elif open_async.get(key, 0) <= 0:
                errors.append(
                    f"{where}: async 'e' with no matching 'b' for {key}")
            else:
                open_async[key] -= 1
        elif ph == "C":
            args = ev.get("args")
            if not isinstance(args, dict) or not args or not all(
                    isinstance(v, (int, float)) and not isinstance(v, bool)
                    for v in args.values()):
                errors.append(f"{where}: counter args must be numbers")
        elif ph == "M":
            if name not in ("process_name", "process_labels",
                            "process_sort_index", "thread_name",
                            "thread_sort_index"):
                errors.append(f"{where}: unknown metadata {name!r}")
            elif not isinstance(ev.get("args"), dict):
                errors.append(f"{where}: metadata needs an args object")
    for track, stack in open_dur.items():
        if stack:
            errors.append(
                f"unclosed 'B' events on {track}: {stack}")
    return errors
