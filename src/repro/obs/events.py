"""Typed trace events and the event schema (the observability vocabulary).

Every event the :class:`~repro.obs.recorder.TraceRecorder` emits is one of
the types declared in :data:`EVENT_SCHEMA`. The schema is the single source
of truth consumed by the exporters (component -> Perfetto track, kind ->
Chrome trace phase), by the golden-trace text format, and by the docs table
in ``docs/observability.md``.

Timestamps are wall-clock nanoseconds on the simulated timeline (power-off
periods included), so a trace lines up with ``RunResult.total_time_ns``.
The recorder clamps timestamps monotone non-decreasing per component -
Perfetto requires per-track monotonicity, and the Hypothesis property suite
asserts the guarantee.
"""

from __future__ import annotations

# components (one Perfetto track each)
CORE = "core"
CACHE = "cache"
WB = "wb"
POWER = "power"
SYS = "sys"

COMPONENTS = (CORE, CACHE, WB, POWER, SYS)

# event kinds (mapped to Chrome trace-event phases by the exporter)
INSTANT = "instant"        # ph "i"
COUNTER = "counter"        # ph "C"
SPAN = "span"              # ph "X" (complete event; args carry the duration)
DUR_BEGIN = "span_begin"   # ph "B"
DUR_END = "span_end"       # ph "E"
ASYNC_BEGIN = "begin"      # ph "b"
ASYNC_END = "end"          # ph "e"

#: etype -> (component, kind, arg names, description). Arg order is the
#: golden-trace/CSV column order; keep it stable - goldens depend on it.
EVENT_SCHEMA: dict[str, tuple[str, str, tuple[str, ...], str]] = {
    "retire": (CORE, COUNTER, ("instret", "cycle"),
               "instruction-retire sample at a chunk boundary"),
    "read_hit": (CACHE, INSTANT, ("addr",),
                 "load hit in the L1 array (detail level only)"),
    "read_miss": (CACHE, INSTANT, ("addr",),
                  "load miss: fill from NVM (plus possible eviction)"),
    "write_hit": (CACHE, INSTANT, ("addr",),
                  "store hit in the L1 array (detail level only)"),
    "write_miss": (CACHE, INSTANT, ("addr",),
                   "store miss (write-allocate designs fill first)"),
    "dirty": (CACHE, COUNTER, ("occ",),
              "DirtyQueue occupancy after a change"),
    "stall_begin": (CACHE, DUR_BEGIN, (),
                    "store started stalling for a DirtyQueue slot (S5.1)"),
    "stall_end": (CACHE, DUR_END, ("cycles", "cause"),
                  "stall over; cause is ack_wait or sync_clean"),
    "wb_issue": (WB, ASYNC_BEGIN, ("line", "ack", "seq"),
                 "asynchronous write-back issued (S5.3 steps 1-2)"),
    "wb_ack": (WB, ASYNC_END, ("line", "seq"),
               "write-back ACK retired its DirtyQueue entry (S5.3 step 4)"),
    "reconfig": (SYS, INSTANT, ("maxline", "waterline"),
                 "maxline/waterline thresholds reconfigured (S4)"),
    "ckpt_flush": (SYS, SPAN, ("cycles", "lines", "words"),
                   "JIT checkpoint flushed the DirtyQueue lines (S3.2)"),
    "boot": (SYS, INSTANT, ("first", "restore_cycles"),
             "(re)boot completed; design state restored"),
    "off": (POWER, SPAN, ("dur",),
            "power-off period: outage through recharge to Von"),
    "energy": (POWER, COUNTER, ("nj",),
               "capacitor stored-energy sample at a chunk boundary"),
}


class TraceEvent:
    """One timestamped, typed event.

    ``args`` is a small dict whose keys are exactly the schema's arg names
    for ``etype``; ``ts`` is wall-clock ns.
    """

    __slots__ = ("ts", "etype", "args")

    def __init__(self, ts: int, etype: str, args: dict):
        self.ts = ts
        self.etype = etype
        self.args = args

    @property
    def component(self) -> str:
        return EVENT_SCHEMA[self.etype][0]

    @property
    def kind(self) -> str:
        return EVENT_SCHEMA[self.etype][1]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceEvent({self.ts}, {self.etype!r}, {self.args!r})"


def format_event(ev: TraceEvent) -> str:
    """Canonical one-line text form (the golden-trace format).

    ``<ts> <component> <etype> k=v ...`` with args in schema order, so the
    line is stable across dict orderings and Python versions.
    """
    names = EVENT_SCHEMA[ev.etype][2]
    parts = [str(ev.ts), ev.component, ev.etype]
    for name in names:
        v = ev.args.get(name)
        if isinstance(v, float):
            parts.append(f"{name}={v:.3f}")
        else:
            parts.append(f"{name}={v}")
    return " ".join(parts)


def format_events(events: list[TraceEvent]) -> str:
    """The whole trace in golden format, one event per line."""
    return "\n".join(format_event(e) for e in events) + "\n"
