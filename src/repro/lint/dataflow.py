"""Dataflow analyses over the per-instruction CFG.

All register sets are bitmask ints (bit ``r`` = register ``xr``), which
keeps the worklist transfer functions allocation-free. Analyses:

* :func:`reaching_written` - forward may-analysis: which registers have at
  least one write reaching each instruction (union join). A read of a
  register whose bit is clear is a read *no write can ever reach* (L001).
* :func:`live_out` - backward may-analysis: which registers may still be
  read after each instruction. A write to a register not live-out is a
  dead store (L002).
* :func:`const_states` - forward constant propagation: per-instruction
  ``{reg: value}`` maps (absent = unknown), joined by agreement. Feeds the
  static memory alignment/bounds checks (L005/L006/L008).
"""

from __future__ import annotations

from collections import deque

from repro.isa import opcodes as oc
from repro.lint.cfg import CFG

_U32 = 0xFFFFFFFF

#: registers treated as live at program exit: ra/sp are runtime/ABI state
#: (the builder prologue initializes sp whether or not a kernel uses the
#: stack; flagging that would be noise, not signal)
EXIT_LIVE = (1 << 1) | (1 << 2)


def defs_uses(ins: tuple) -> tuple[int | None, tuple[int, ...]]:
    """Return ``(written register | None, read registers)`` for one
    instruction tuple."""
    op, a, b, c = ins
    if op in oc.R_FORMAT:
        return a, (b, c)
    if op in oc.I_FORMAT:
        return a, (b,)
    if op in oc.LI_FORMAT:
        return a, ()
    if op in oc.LOAD_FORMAT:
        return a, (b,)
    if op in oc.STORE_FORMAT:
        return None, (a, b)
    if op in oc.B_FORMAT:
        return None, (a, b)
    if op in oc.J_FORMAT:
        return a, ()
    if op in oc.JR_FORMAT:
        return a, (b,)
    return None, ()  # SYS


def reaching_written(cfg: CFG, instructions: list[tuple]) -> list[int]:
    """Bitmask of registers with >= 1 reaching write, at each instruction's
    entry. ``x0`` is always "written" (hardwired zero)."""
    n = cfg.n
    state = [0] * n  # union join: start empty, grow monotonically
    if n == 0:
        return state
    state[0] = 1  # x0
    work = deque(range(n))
    queued = [True] * n
    while work:
        i = work.popleft()
        queued[i] = False
        d, _uses = defs_uses(instructions[i])
        out = state[i] | (1 << d if d is not None else 0)
        for s in cfg.succs[i]:
            new = state[s] | out | 1
            if new != state[s]:
                state[s] = new
                if not queued[s]:
                    queued[s] = True
                    work.append(s)
    return state


def live_out(cfg: CFG, instructions: list[tuple],
             exit_live: int = EXIT_LIVE) -> list[int]:
    """Bitmask of registers that may be read after each instruction.

    ``exit_live`` seeds HALT instructions (and any instruction with no
    successors, e.g. one that falls off the end - conservatively treat the
    whole file as live there so L002 does not pile on top of L007).
    """
    n = cfg.n
    live_in = [0] * n
    out = [0] * n
    work = deque(range(n - 1, -1, -1))
    queued = [True] * n
    while work:
        i = work.popleft()
        queued[i] = False
        op = instructions[i][0]
        if not cfg.succs[i]:
            o = _U32 if (op != oc.HALT and op not in oc.JR_FORMAT) else exit_live
        else:
            o = 0
            for s in cfg.succs[i]:
                o |= live_in[s]
        out[i] = o
        d, uses = defs_uses(instructions[i])
        newin = o & ~(1 << d) if d is not None else o
        for u in uses:
            newin |= 1 << u
        if newin != live_in[i]:
            live_in[i] = newin
            for p in cfg.preds[i]:
                if not queued[p]:
                    queued[p] = True
                    work.append(p)
    return out


# constant evaluation for the ops cheap enough to model exactly; anything
# else degrades the destination to "unknown"
_CONST_EVAL = {
    oc.ADD: lambda x, y: (x + y) & _U32,
    oc.ADDI: lambda x, y: (x + y) & _U32,
    oc.SUB: lambda x, y: (x - y) & _U32,
    oc.AND: lambda x, y: x & y,
    oc.ANDI: lambda x, y: x & (y & _U32),
    oc.OR: lambda x, y: x | y,
    oc.ORI: lambda x, y: x | (y & _U32),
    oc.XOR: lambda x, y: x ^ y,
    oc.XORI: lambda x, y: x ^ (y & _U32),
    oc.SLL: lambda x, y: (x << (y & 31)) & _U32,
    oc.SLLI: lambda x, y: (x << (y & 31)) & _U32,
    oc.SRL: lambda x, y: x >> (y & 31),
    oc.SRLI: lambda x, y: x >> (y & 31),
    oc.MUL: lambda x, y: (x * y) & _U32,
}


def const_states(cfg: CFG, instructions: list[tuple]) -> list[dict[int, int]]:
    """Known-constant register maps at each instruction's entry.

    Absent key = unknown. Only instructions reachable from entry carry a
    meaningful state (unreachable ones keep the empty map).
    """
    n = cfg.n
    state: list[dict[int, int] | None] = [None] * n
    if n == 0:
        return []
    state[0] = {0: 0}
    work = deque([0])
    queued = [False] * n
    queued[0] = True
    while work:
        i = work.popleft()
        queued[i] = False
        out = _const_transfer(instructions[i], state[i])
        for s in cfg.succs[i]:
            cur = state[s]
            if cur is None:
                new = dict(out)
            else:
                new = {r: v for r, v in cur.items()
                       if r in out and out[r] == v}
                if new == cur:
                    continue
            state[s] = new
            if not queued[s]:
                queued[s] = True
                work.append(s)
    return [(s if s is not None else {}) for s in state]


def _const_transfer(ins: tuple, env: dict[int, int]) -> dict[int, int]:
    op, a, b, c = ins
    d, _uses = defs_uses(ins)
    if d is None:
        return env
    out = dict(env)
    out.pop(d, None)
    if op == oc.LI:
        out[d] = b & _U32
    elif op in oc.R_FORMAT and op in _CONST_EVAL:
        if b in env and c in env:
            out[d] = _CONST_EVAL[op](env[b], env[c])
    elif op in oc.I_FORMAT and op in _CONST_EVAL:
        if b in env:
            out[d] = _CONST_EVAL[op](env[b], c)
    out[0] = 0  # x0 is hardwired even if something "writes" it
    return out
