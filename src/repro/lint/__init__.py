"""repro.lint - static analysis and protocol invariant checking.

Three layers:

* **Program linter** (:func:`lint_program`): a CFG + dataflow analysis over
  assembled :class:`~repro.isa.program.Program` objects that catches kernel
  bugs before a single cycle is simulated - reads of never-written
  registers, dead stores, unreachable blocks, bad branch/jump targets, and
  statically-resolvable misaligned or out-of-bounds memory accesses.
  The opt-in intermittency rules L009-L014
  (:mod:`repro.lint.intermittent`) add checkpoint-region dataflow: WAR
  and read-modify-write idempotency hazards on non-volatile state,
  region length vs. the capacitor budget, torn subword stores, and
  dead/unreachable checkpoints.
* **Codegen auditor** (:mod:`repro.lint.codegen_audit`): an ``ast``-based
  static pass over the *generated* Python the jit/memfast/batch layers
  emit, verifying the structural contracts (A001-A007) that the
  differential tests only sample dynamically.
* **Protocol invariant checker** (:func:`attach_invariants`): a runtime
  assertion layer over WL-Cache that turns the paper's correctness
  argument (dirty-count <= maxline, DirtyQueue <-> dirty-bit coherence,
  clean-before-ACK ordering) into machine-checked assertions. Enabled via
  ``SimConfig.check_invariants`` or ``REPRO_CHECK=1``; zero-cost when off.
"""

from __future__ import annotations

from repro.lint.findings import (AUDIT_RULES, RULES, Finding, Rule,
                                 count_by_severity, format_findings_sarif)
from repro.lint.intermittent import run_intermittent_rules
from repro.lint.invariants import (InvariantChecker, attach_invariants,
                                   invariants_enabled)
from repro.lint.runner import (format_findings_json, format_findings_text,
                               lint_program, lint_workloads)

__all__ = [
    "AUDIT_RULES",
    "RULES",
    "Finding",
    "InvariantChecker",
    "Rule",
    "attach_invariants",
    "count_by_severity",
    "format_findings_json",
    "format_findings_sarif",
    "format_findings_text",
    "invariants_enabled",
    "lint_program",
    "lint_workloads",
    "run_intermittent_rules",
]
