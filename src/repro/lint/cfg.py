"""Control-flow graph construction over instruction tuples.

The graph is built at *instruction* granularity (programs are small - a
kernel is hundreds to a few thousand instructions - so per-instruction
dataflow is both simpler and more precise than block-level transfer
functions), with a basic-block partition layered on top for reporting.

Call/return modeling is context-insensitive but path-respecting:

* ``jal rd, L`` with ``rd != x0`` is a *call*: its only CFG successor is
  the callee entry ``L``. The fall-through instruction (the return site)
  becomes reachable through the callee's returns, never via a fake
  call-bypass edge - so dataflow facts genuinely travel through callees.
* ``jalr x0, ra, imm`` is a *return*: it gets an edge to every return
  site (the instruction after each call). This is the standard
  context-insensitive supergraph over-approximation.
* any other ``jalr`` is an indirect jump: it conservatively targets every
  basic-block leader.

Out-of-range branch/jump targets contribute no edge (rule L004 reports
them); a final instruction that can fall through contributes the
``falls_off_end`` flag (rule L007).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa import opcodes as oc


@dataclass
class BasicBlock:
    """A maximal straight-line run ``[start, end)`` of instructions."""

    start: int
    end: int
    reachable: bool = False


@dataclass
class CFG:
    """Per-instruction successor/predecessor lists plus the block partition."""

    n: int
    succs: list[list[int]] = field(default_factory=list)
    preds: list[list[int]] = field(default_factory=list)
    reachable: list[bool] = field(default_factory=list)
    blocks: list[BasicBlock] = field(default_factory=list)
    #: instruction indices that immediately follow a call (return sites)
    return_sites: list[int] = field(default_factory=list)
    #: reachable instructions that can fall through past the last instruction
    falls_off_end: list[int] = field(default_factory=list)
    #: True when the program contains an indirect (non-return) jalr; the
    #: analyses are then maximally conservative
    has_indirect_jumps: bool = False


def _is_call(op: int, a: int) -> bool:
    return op == oc.JAL and a != 0


def _is_return(op: int, a: int, b: int) -> bool:
    return op == oc.JALR and a == 0 and b == 1


def build_cfg(instructions: list[tuple]) -> CFG:
    """Build the CFG; tolerates invalid targets (no edge is added)."""
    n = len(instructions)
    cfg = CFG(n=n, succs=[[] for _ in range(n)],
              preds=[[] for _ in range(n)],
              reachable=[False] * n)
    in_range = range(n).__contains__

    # return sites and indirect-jump presence come first: return edges and
    # leader sets depend on them
    for i, (op, a, b, _c) in enumerate(instructions):
        if _is_call(op, a) and i + 1 < n:
            cfg.return_sites.append(i + 1)
        if op == oc.JALR and not _is_return(op, a, b):
            cfg.has_indirect_jumps = True

    leaders = _leaders(instructions, cfg)
    leader_list = sorted(leaders)

    for i, (op, a, b, c) in enumerate(instructions):
        succ = cfg.succs[i]
        if op in oc.B_FORMAT:
            if in_range(c):
                succ.append(c)
            if i + 1 < n:
                succ.append(i + 1)
        elif op == oc.JAL:
            # plain jump and call alike transfer only to the target; a
            # call's fall-through is reached through the callee's returns
            if in_range(b):
                succ.append(b)
        elif op == oc.JALR:
            if _is_return(op, a, b):
                succ.extend(cfg.return_sites)
            else:
                succ.extend(leader_list)
        elif op == oc.HALT:
            pass
        else:
            if i + 1 < n:
                succ.append(i + 1)

    for i, succ in enumerate(cfg.succs):
        # dedupe while preserving order (a conditional branch to i+1 would
        # otherwise double its edge)
        seen: set[int] = set()
        cfg.succs[i] = [s for s in succ if not (s in seen or seen.add(s))]
        for s in cfg.succs[i]:
            cfg.preds[s].append(i)

    _mark_reachable(cfg)
    _partition_blocks(cfg, leaders)

    # a reachable instruction that falls through past the end of the
    # program (no successor despite not being HALT / an always-taken jump)
    for i, (op, a, b, c) in enumerate(instructions):
        if i != n - 1 or not cfg.reachable[i] or op == oc.HALT:
            continue
        fall_through = not (op in oc.B_FORMAT or op in oc.J_FORMAT
                            or op in oc.JR_FORMAT)
        if fall_through or op in oc.B_FORMAT:
            cfg.falls_off_end.append(i)
    return cfg


def _leaders(instructions: list[tuple], cfg: CFG) -> set[int]:
    """Basic-block leaders: entry, targets, and post-terminator indices."""
    n = len(instructions)
    leaders = {0} if n else set()
    for i, (op, _a, b, c) in enumerate(instructions):
        if op in oc.B_FORMAT:
            if 0 <= c < n:
                leaders.add(c)
            if i + 1 < n:
                leaders.add(i + 1)
        elif op == oc.JAL:
            if 0 <= b < n:
                leaders.add(b)
            if i + 1 < n:
                leaders.add(i + 1)
        elif op in (oc.JALR, oc.HALT):
            if i + 1 < n:
                leaders.add(i + 1)
    return leaders


def _mark_reachable(cfg: CFG) -> None:
    if cfg.n == 0:
        return
    stack = [0]
    reachable = cfg.reachable
    reachable[0] = True
    while stack:
        i = stack.pop()
        for s in cfg.succs[i]:
            if not reachable[s]:
                reachable[s] = True
                stack.append(s)


def _partition_blocks(cfg: CFG, leaders: set[int]) -> None:
    ordered = sorted(leaders)
    for j, start in enumerate(ordered):
        end = ordered[j + 1] if j + 1 < len(ordered) else cfg.n
        cfg.blocks.append(BasicBlock(start, end, cfg.reachable[start]))
