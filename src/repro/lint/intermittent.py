"""Intermittency-safety analysis: checkpoint-region dataflow (L009-L014).

Energy-harvesting systems execute in *checkpoint regions*: all register
and NVM state is committed at a boundary, the region runs, and a power
outage rewinds execution to the last boundary. A region is safe to
re-execute iff it is *idempotent* - no instruction observes a value that
a later instruction of the same region overwrites (Choi et al., arXiv
2006.11479). This module statically partitions a kernel's CFG into
checkpoint-delimited regions and checks exactly that hazard class over
the non-volatile store.

Boundaries are the program entry, every ``HALT``, and the explicit
*static checkpoint markers* a kernel carries in
``Program.meta["checkpoints"]`` (:meth:`ProgramBuilder.checkpoint`, the
assembler's ``.ckpt``). Markers are meta-only - no instruction is
emitted and simulation is bit-identical - they describe where a
software-checkpoint port of the kernel would cut regions. A marker at
index ``i`` commits state *before* instruction ``i`` executes.

The word-level analysis runs over the *const-resolvable* address space:
every reachable load/store whose address the lint constant propagation
(:func:`repro.lint.dataflow.const_states`) can resolve contributes its
32-bit word to a bitset universe. Addresses the linter cannot resolve
(register-indexed array walks) are invisible to L009/L012 - the linter
under-approximates there, like any sound-where-it-looks static check -
but they still count as "a store happened" for L013/L014, and the
region-shape rules (L011 cycles/budget) need no addresses at all.

One forward fixpoint computes, at every instruction entry:

* ``exposed`` - words *may-read before written* in the current region
  (union join): re-execution would re-read these from NVM;
* ``written`` - words *must-written* since the boundary (intersection
  join): reads of these are shielded, re-execution regenerates them;
* ``stored`` - whether any store (tracked or not) may have happened
  since the boundary (union join; feeds L013).

Edges *into* a marker deliver the reset state instead of the
predecessor's out-state - that is the whole region mechanism, no region
enumeration needed. The rules:

* **L009** - a full-word store to an ``exposed`` word: classic WAR on
  NVM; after an outage the re-executed read observes the new value.
* **L010** - a block-local read-modify-write chain (load, dataflow-
  dependent ALU ops, store back to the same address expression) with no
  marker between: ``x = x + 1`` against NVM, the canonical
  non-idempotent update. Needs no const resolution - the address
  operands only have to *match*, so it catches register-indexed RMW
  that L009 cannot see. L009/L012 findings at the same store site are
  suppressed (one root cause, one finding).
* **L011** - region length: a cycle that crosses no marker makes
  re-execution time unbounded; an acyclic region longer (in folded
  worst-case cycles, memory latencies included) than the capacitor's
  worst-case budget can never complete on one charge - both livelock
  under intermittent power.
* **L012** - a subword store (``sb``/``sh``) to an ``exposed`` word:
  the masked merge can partially commit before an outage, so the
  re-executed read observes a torn word.
* **L013** - a *dead* checkpoint: no path from the previous boundary
  into the marker stores anything, so it persists nothing new (markers
  at the entry or on unreachable code included).
* **L014** - a store from which no marker or ``HALT`` is reachable:
  the write can never be made durable (only possible alongside an
  L011 cycle, but points at the store, not the loop).

Waivers (``Program.meta["lint_waivers"]``) are applied by the runner,
not here: every finding stays visible, waived ones stop gating.
"""

from __future__ import annotations

from collections import deque

from repro.cpu.core import _base_cost_table
from repro.isa import opcodes as oc
from repro.isa.program import Program
from repro.lint.dataflow import defs_uses
from repro.lint.findings import Finding, make_finding
from repro.lint.rules import LintContext

_U32 = 0xFFFFFFFF

#: ``Program.meta`` keys the analysis consumes.
CHECKPOINTS_KEY = "checkpoints"
WAIVERS_KEY = "lint_waivers"

#: instructions per I-cache line (mirrors repro.cpu.core._ILINE_SHIFT)
_ILINE = 16


def checkpoint_markers(program: Program) -> set[int]:
    """The program's static checkpoint markers, clamped into range."""
    n = len(program.instructions)
    return {i for i in program.meta.get(CHECKPOINTS_KEY, ())
            if isinstance(i, int) and 0 <= i < n}


def default_budget_cycles(config=None) -> int:
    """Worst-case cycles one full capacitor charge can fund.

    The usable window is the energy between ``v_max`` and ``v_min``; it
    is converted to cycles with a pessimistic energy-per-cycle: the
    larger of an ALU instruction's full energy per single cycle and the
    worst-case (memory) instruction's energy amortized over its minimum
    cycle count. A region whose worst-case path exceeds this budget can
    never complete on one charge, so re-execution livelocks.
    """
    from repro.energy.capacitor import energy_nj
    from repro.energy.model import EnergyModel
    from repro.sim.config import SimConfig

    config = config or SimConfig()
    em = EnergyModel()
    usable = (energy_nj(config.capacitance_f, config.v_max)
              - energy_nj(config.capacitance_f, config.v_min))
    mem_cycles = 1 + config.costs.mem_issue + _worst_mem_cycles(config)
    nj_per_cycle = max(em.compute_nj + em.ifetch_nj,
                       em.worst_instr_nj / mem_cycles)
    return max(1, int(usable / nj_per_cycle))


def _worst_mem_cycles(config) -> int:
    """Pessimistic latency of one memory access: a full line refill plus
    a full dirty-line writeback at NVM burst timings."""
    t = config.nvm
    wpl = config.geometry.words_per_line
    burst = t.burst_word * (wpl - 1)
    return (t.read_word + burst) + (t.write_word + burst)


class _RegionState:
    """The fixpoint engine plus everything the report passes share."""

    def __init__(self, ctx: LintContext):
        self.ctx = ctx
        self.program = ctx.program
        self.instrs = ctx.program.instructions
        self.cfg = ctx.cfg
        self.markers = checkpoint_markers(ctx.program)
        self.halts = {i for i, ins in enumerate(self.instrs)
                      if ins[0] == oc.HALT}
        # tracked word universe: const-resolvable reachable accesses
        self.word_bit: dict[int, int] = {}   # word addr -> bit index
        self.site_bit: dict[int, int] = {}   # instr idx -> bit index
        self.site_addr: dict[int, int] = {}  # instr idx -> byte addr
        consts = ctx.consts
        for i, (op, _a, b, c) in enumerate(self.instrs):
            if op not in oc.MEMORY_OPS or not self.cfg.reachable[i]:
                continue
            base = consts[i].get(b)
            if base is None:
                continue
            addr = (base + c) & _U32
            bit = self.word_bit.setdefault(addr >> 2, len(self.word_bit))
            self.site_bit[i] = bit
            self.site_addr[i] = addr
        # entry state per instruction: (exposed, written, stored) or None
        self.state: list[tuple[int, int, int] | None] = [None] * self.cfg.n
        #: marker -> whether any incoming path stored since its boundary
        self.stored_into: dict[int, int] = {
            m: 0 for m in self.markers if self.cfg.reachable[m]}
        self._run()

    # -- transfer --------------------------------------------------------
    def _out_state(self, i: int) -> tuple[int, int, int]:
        exposed, written, stored = self.state[i]
        op = self.instrs[i][0]
        bit = self.site_bit.get(i)
        if op in oc.LOAD_FORMAT:
            if bit is not None and not (written >> bit & 1):
                exposed |= 1 << bit
        elif op in oc.STORE_FORMAT:
            stored = 1
            if bit is not None and op == oc.SW:
                written |= 1 << bit
        return (exposed, written, stored)

    def _run(self) -> None:
        cfg = self.cfg
        if cfg.n == 0:
            return
        reset = (0, 0, 0)
        work: deque[int] = deque()
        queued = [False] * cfg.n
        seeds = [0] + sorted(m for m in self.markers
                             if cfg.reachable[m] and m != 0)
        for s in seeds:
            self.state[s] = reset
            queued[s] = True
            work.append(s)
        while work:
            i = work.popleft()
            queued[i] = False
            out = self._out_state(i)
            for s in cfg.succs[i]:
                if s in self.markers:
                    # crossing the boundary: record what the region
                    # accomplished, deliver the committed (reset) state
                    self.stored_into[s] = self.stored_into.get(s, 0) | out[2]
                    continue  # marker state is pinned to reset
                cur = self.state[s]
                if cur is None:
                    new = out
                else:
                    new = (cur[0] | out[0], cur[1] & out[1], cur[2] | out[2])
                    if new == cur:
                        continue
                self.state[s] = new
                if not queued[s]:
                    queued[s] = True
                    work.append(s)


def _check_war_and_torn(rs: _RegionState,
                        rmw_sites: set[int]) -> list[Finding]:
    """L009 (full-word WAR) and L012 (torn subword store) from the
    fixpoint states; sites already claimed by L010 are suppressed."""
    out = []
    ctx = rs.ctx
    for i, (op, _a, _b, _c) in enumerate(rs.instrs):
        if op not in oc.STORE_FORMAT or i in rmw_sites:
            continue
        st = rs.state[i]
        bit = rs.site_bit.get(i)
        if st is None or bit is None or not (st[0] >> bit & 1):
            continue
        addr = rs.site_addr[i]
        word = addr & ~3
        if op == oc.SW:
            out.append(make_finding(
                "L009", ctx.loc(i),
                f"sw overwrites word {word:#x}, which this checkpoint "
                f"region already read; after an outage the re-executed "
                f"read observes the new value (add a checkpoint between "
                f"the read and this store, or buffer in a register)"))
        else:
            out.append(make_finding(
                "L012", ctx.loc(i),
                f"{oc.MNEMONICS[op]} partially commits into word "
                f"{word:#x}, which this checkpoint region already read; "
                f"an outage mid-merge leaves a torn word for the "
                f"re-executed read"))
    return out


def _find_rmw_sites(rs: _RegionState) -> dict[int, int]:
    """L010 scan: block-local load -> dependent ALU -> store-back chains
    on a matching address expression, with no marker in between.

    Returns ``{store idx: load idx}``. The match is syntactic on the
    ``(base reg, offset)`` pair, invalidated when the base register is
    redefined, so it needs no constant resolution - this is the rule
    that sees register-indexed histogram/accumulator updates.
    """
    sites: dict[int, int] = {}
    instrs = rs.instrs
    for blk in rs.cfg.blocks:
        if not blk.reachable:
            continue
        records: dict[tuple[int, int], int] = {}  # (base, off) -> load idx
        taint: dict[int, int] = {}  # reg -> load idx its value derives from
        for i in range(blk.start, blk.end):
            if i in rs.markers:
                # the boundary committed the loaded value with the
                # registers; re-execution resumes past the load
                records.clear()
                continue
            op, a, b, c = instrs[i]
            if op in oc.LOAD_FORMAT:
                records[(b, c)] = i
                if a != 0:
                    taint[a] = i
                    # a load into its own base register (pointer walk)
                    # changes what the address expression means
                    records = {k: v for k, v in records.items()
                               if k[0] != a}
                continue
            if op in oc.STORE_FORMAT:
                src = records.get((b, c))
                if src is not None and taint.get(a) == src:
                    sites[i] = src
                continue
            d, uses = defs_uses(instrs[i])
            if d is None or d == 0:
                continue
            tainted = [taint[u] for u in uses if u in taint]
            if tainted:
                taint[d] = tainted[0]
            else:
                taint.pop(d, None)
            # redefining a base register retires its pending loads
            records = {k: v for k, v in records.items() if k[0] != d}
    return sites


def _report_rmw(rs: _RegionState, sites: dict[int, int]) -> list[Finding]:
    ctx = rs.ctx
    out = []
    for store_idx in sorted(sites):
        load_idx = sites[store_idx]
        op = rs.instrs[store_idx][0]
        out.append(make_finding(
            "L010", ctx.loc(store_idx),
            f"{oc.MNEMONICS[op]} writes back a value derived from the "
            f"load at index {load_idx} to the same address with no "
            f"checkpoint between: re-executing this region repeats the "
            f"update (x = f(x) against NVM is not idempotent)"))
    return out


# -- L011: region shape ------------------------------------------------

def _region_sccs(rs: _RegionState) -> list[list[int]]:
    """Strongly-connected components of the reachable CFG with marker
    nodes removed (iterative Tarjan). An SCC with a cycle is a region
    that can loop without ever crossing a checkpoint."""
    cfg = rs.cfg
    nodes = [i for i in range(cfg.n)
             if cfg.reachable[i] and i not in rs.markers]
    node_set = set(nodes)
    index: dict[int, int] = {}
    low: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    sccs: list[list[int]] = []
    counter = [0]
    for root in nodes:
        if root in index:
            continue
        work = [(root, iter([s for s in cfg.succs[root]
                             if s in node_set]))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            v, it = work[-1]
            advanced = False
            for s in it:
                if s not in index:
                    index[s] = low[s] = counter[0]
                    counter[0] += 1
                    stack.append(s)
                    on_stack.add(s)
                    work.append((s, iter([t for t in cfg.succs[s]
                                          if t in node_set])))
                    advanced = True
                    break
                if s in on_stack:
                    low[v] = min(low[v], index[s])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[v])
            if low[v] == index[v]:
                comp = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == v:
                        break
                sccs.append(comp)
    return sccs


def _instr_worst_cycles(rs: _RegionState, i: int, cost_table,
                        costs, worst_mem: int) -> int:
    op = rs.instrs[i][0]
    cycles = cost_table[op]
    if op in oc.MEMORY_OPS:
        cycles += costs.mem_issue + worst_mem
    if op in oc.B_FORMAT:
        cycles += costs.branch_taken_extra
    if i % _ILINE == 0:
        cycles += costs.ifetch_miss
    return cycles


def _check_region_budget(rs: _RegionState, budget_cycles: int | None,
                         costs, config) -> list[Finding]:
    """L011: checkpoint-free cycles, else worst-case path vs budget."""
    ctx = rs.ctx
    out = []
    cyclic: set[int] = set()
    for comp in _region_sccs(rs):
        has_cycle = len(comp) > 1 or comp[0] in rs.cfg.succs[comp[0]]
        if not has_cycle:
            continue
        cyclic.update(comp)
        at = min(comp)
        out.append(make_finding(
            "L011", ctx.loc(at),
            f"cycle of {len(comp)} instruction(s) crosses no checkpoint: "
            f"worst-case re-execution length is unbounded (mark a "
            f"checkpoint inside the loop body)"))
    if cyclic:
        return out  # path lengths are meaningless with a cycle inside
    if budget_cycles is None:
        budget_cycles = default_budget_cycles(config)
    cost_table = _base_cost_table(costs)
    worst_mem = _worst_mem_cycles(config)
    cfg = rs.cfg
    # longest worst-case path to a boundary, over the (now acyclic)
    # marker-free graph, via reverse-postorder DP
    memo: dict[int, int] = {}
    order: list[int] = []
    seen = [False] * cfg.n
    entries = [0] + sorted(m for m in rs.markers if cfg.reachable[m] and m)
    for e in entries:
        if seen[e]:
            continue
        stack: list[tuple[int, bool]] = [(e, False)]
        while stack:
            v, done = stack.pop()
            if done:
                order.append(v)
                continue
            if seen[v]:
                continue
            seen[v] = True
            stack.append((v, True))
            for s in cfg.succs[v]:
                if s not in rs.markers and not seen[s]:
                    stack.append((s, False))
    for v in order:  # children first
        tail = max((memo.get(s, 0) for s in cfg.succs[v]
                    if s not in rs.markers), default=0)
        memo[v] = tail + _instr_worst_cycles(rs, v, cost_table, costs,
                                             worst_mem)
    worst_entry = max(entries, key=lambda e: memo.get(e, 0), default=0)
    worst = memo.get(worst_entry, 0)
    if worst > budget_cycles:
        out.append(make_finding(
            "L011", ctx.loc(worst_entry),
            f"checkpoint region starting here runs up to {worst} "
            f"worst-case cycles, over the {budget_cycles}-cycle "
            f"capacitor budget: one full charge cannot complete it, so "
            f"re-execution livelocks (split the region with a "
            f"checkpoint)"))
    return out


def _check_dead_checkpoints(rs: _RegionState) -> list[Finding]:
    """L013: markers that persist nothing new."""
    ctx = rs.ctx
    out = []
    for m in sorted(rs.markers):
        if not rs.cfg.reachable[m]:
            out.append(make_finding(
                "L013", ctx.loc(m),
                "checkpoint marker on unreachable code is never crossed"))
        elif m == 0:
            out.append(make_finding(
                "L013", ctx.loc(m),
                "checkpoint marker at the entry duplicates the implicit "
                "entry boundary"))
        elif not rs.stored_into.get(m, 0):
            out.append(make_finding(
                "L013", ctx.loc(m),
                "no path into this checkpoint stores anything since the "
                "previous boundary: it persists nothing new"))
    return out


def _check_unreachable_commit(rs: _RegionState) -> list[Finding]:
    """L014: stores with no path to any boundary."""
    cfg = rs.cfg
    boundaries = {b for b in (rs.markers | rs.halts) if b < cfg.n}
    can_commit = [False] * cfg.n
    work = [b for b in boundaries]
    for b in work:
        can_commit[b] = True
    while work:
        i = work.pop()
        for p in cfg.preds[i]:
            if not can_commit[p]:
                can_commit[p] = True
                work.append(p)
    ctx = rs.ctx
    out = []
    for i, ins in enumerate(rs.instrs):
        if ins[0] not in oc.STORE_FORMAT or not cfg.reachable[i]:
            continue
        if not can_commit[i]:
            out.append(make_finding(
                "L014", ctx.loc(i),
                f"{oc.MNEMONICS[ins[0]]} can never reach a checkpoint or "
                f"halt: the write is lost at the next outage, every time"))
    return out


def run_intermittent_rules(program: Program,
                           budget_cycles: int | None = None,
                           config=None) -> list[Finding]:
    """Run L009-L014 over one program; returns raw (unwaived) findings.

    ``budget_cycles`` overrides the derived capacitor budget for L011;
    ``config`` supplies cost/geometry/energy knobs (default
    :class:`~repro.sim.config.SimConfig`).
    """
    if config is None:
        from repro.sim.config import SimConfig
        config = SimConfig()
    ctx = LintContext(program)
    rs = _RegionState(ctx)
    rmw = _find_rmw_sites(rs)
    findings: list[Finding] = []
    findings.extend(_check_war_and_torn(rs, set(rmw)))
    findings.extend(_report_rmw(rs, rmw))
    findings.extend(_check_region_budget(rs, budget_cycles, config.costs,
                                         config))
    findings.extend(_check_dead_checkpoints(rs))
    findings.extend(_check_unreachable_commit(rs))
    findings.sort(key=lambda f: (f.rule, f.location))
    return findings
