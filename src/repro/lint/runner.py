"""Lint driver: run the rule passes over workloads and format the results.

The CLI's ``repro lint`` subcommand is a thin shell over this module, and
the CI ``lint-programs`` job consumes :func:`format_findings_json` output
as its findings artifact (``format_findings_sarif`` feeds the
code-scanning upload).

Waivers: a program may carry ``meta["lint_waivers"]`` entries
(``ProgramBuilder.waive_lint`` / the assembler's ``.waive``), each a
rule ID plus a justification. :func:`apply_waivers` marks matching
findings instead of dropping them - every report format still shows the
finding with its justification, but waived findings no longer drive the
exit code. An unjustified suppression is therefore impossible and a
stale waiver (rule no longer fires) is visible as such.
"""

from __future__ import annotations

import json

from repro.isa.program import Program
from repro.lint.findings import (ERROR, SEVERITIES, WARNING, Finding,
                                 count_by_severity, format_findings_sarif)
from repro.lint.intermittent import WAIVERS_KEY, run_intermittent_rules
from repro.lint.rules import run_rules
from repro.workloads import ALL_WORKLOADS, build_workload

#: ``repro lint`` exit codes: clean / warnings only / error findings.
EXIT_CLEAN = 0
EXIT_WARNINGS = 1
EXIT_ERRORS = 2


def program_waivers(program: Program) -> list[dict[str, str]]:
    """The program's well-formed waiver entries."""
    out = []
    for w in program.meta.get(WAIVERS_KEY, ()):
        if isinstance(w, dict) and w.get("rule") and w.get("reason"):
            out.append({"rule": str(w["rule"]), "reason": str(w["reason"])})
    return out


def apply_waivers(program: Program,
                  findings: list[Finding]) -> list[Finding]:
    """Mark findings matched by the program's waivers (never drops)."""
    waivers = program_waivers(program)
    if not waivers:
        return findings
    by_rule = {w["rule"]: w["reason"] for w in waivers}
    out = []
    for f in findings:
        reason = by_rule.get(f.rule)
        if reason is not None and f.waived is None:
            f = Finding(f.rule, f.severity, f.location, f.message,
                        waived=reason)
        out.append(f)
    return out


def lint_program(program: Program, intermittent: bool = False,
                 budget_cycles: int | None = None) -> list[Finding]:
    """Run the lint passes over one assembled program.

    ``intermittent`` additionally runs the checkpoint-region rules
    L009-L014 (:mod:`repro.lint.intermittent`); ``budget_cycles``
    overrides the derived capacitor budget for L011. Waivers carried in
    ``program.meta`` are applied either way.
    """
    findings = run_rules(program)
    if intermittent:
        findings = findings + run_intermittent_rules(
            program, budget_cycles=budget_cycles)
    return apply_waivers(program, findings)


def lint_workloads(names=None, scale: float = 1.0,
                   intermittent: bool = False,
                   budget_cycles: int | None = None
                   ) -> dict[str, list[Finding]]:
    """Build and lint the named suite workloads (default: all 23).

    Returns ``{workload name: findings}`` in request order; unknown names
    raise ``KeyError`` via the workload registry.
    """
    names = list(names) if names else list(ALL_WORKLOADS)
    return {name: lint_program(build_workload(name, scale),
                               intermittent=intermittent,
                               budget_cycles=budget_cycles)
            for name in names}


def exit_code(results: dict[str, list[Finding]],
              errors_only: bool = False) -> int:
    """Map lint results onto the CLI exit-code contract.

    Waived findings never gate, and neither do info-level notes. With
    ``errors_only`` the warning tier stops gating too: warnings-only
    results exit 0, matching what the ``--errors-only`` report shows.
    """
    severities = {f.severity for findings in results.values()
                  for f in findings if f.waived is None}
    if ERROR in severities:
        return EXIT_ERRORS
    if WARNING in severities and not errors_only:
        return EXIT_WARNINGS
    return EXIT_CLEAN


def _totals(results: dict[str, list[Finding]]) -> dict[str, int]:
    totals = dict.fromkeys(SEVERITIES, 0)
    for findings in results.values():
        for sev, n in count_by_severity(findings).items():
            totals[sev] += n
    return totals


def filter_errors_only(results: dict[str, list[Finding]]
                       ) -> dict[str, list[Finding]]:
    """Keep only error-severity findings (waived ones included, so a
    waived error stays visible next to its justification)."""
    return {name: [f for f in findings if f.severity == ERROR]
            for name, findings in results.items()}


def format_findings_text(results: dict[str, list[Finding]]) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = []
    waived = 0
    for findings in results.values():
        lines.extend(f.render() for f in findings)
        waived += sum(1 for f in findings if f.waived is not None)
    totals = _totals(results)
    clean = sum(1 for findings in results.values()
                if not any(f.waived is None for f in findings))
    tail = f", {waived} waived" if waived else ""
    lines.append(f"{len(results)} programs linted, {clean} clean; "
                 f"{totals[ERROR]} errors, {totals[WARNING]} warnings"
                 f"{tail}")
    return "\n".join(lines)


def format_findings_json(results: dict[str, list[Finding]]) -> str:
    """Machine-readable report (the CI findings artifact)."""
    payload = {
        "programs": [
            {
                "program": name,
                "findings": [f.as_dict() for f in findings],
                "counts": count_by_severity(findings),
            }
            for name, findings in results.items()
        ],
        "totals": _totals(results),
        "exit_code": exit_code(results),
    }
    return json.dumps(payload, indent=2)


def format_findings(results: dict[str, list[Finding]],
                    fmt: str = "text") -> str:
    """Dispatch over the report formats the CLI exposes."""
    if fmt == "json":
        return format_findings_json(results)
    if fmt == "sarif":
        return format_findings_sarif(results, tool_name="repro-lint")
    return format_findings_text(results)
