"""Lint driver: run the rule passes over workloads and format the results.

The CLI's ``repro lint`` subcommand is a thin shell over this module, and
the CI ``lint-programs`` job consumes :func:`format_findings_json` output
as its findings artifact.
"""

from __future__ import annotations

import json

from repro.isa.program import Program
from repro.lint.findings import (ERROR, SEVERITIES, WARNING, Finding,
                                 count_by_severity)
from repro.lint.rules import run_rules
from repro.workloads import ALL_WORKLOADS, build_workload

#: ``repro lint`` exit codes: clean / warnings only / error findings.
EXIT_CLEAN = 0
EXIT_WARNINGS = 1
EXIT_ERRORS = 2


def lint_program(program: Program) -> list[Finding]:
    """Run every lint pass over one assembled program."""
    return run_rules(program)


def lint_workloads(names=None, scale: float = 1.0
                   ) -> dict[str, list[Finding]]:
    """Build and lint the named suite workloads (default: all 23).

    Returns ``{workload name: findings}`` in request order; unknown names
    raise ``KeyError`` via the workload registry.
    """
    names = list(names) if names else list(ALL_WORKLOADS)
    return {name: lint_program(build_workload(name, scale))
            for name in names}


def exit_code(results: dict[str, list[Finding]]) -> int:
    """Map lint results onto the CLI exit-code contract."""
    severities = {f.severity for findings in results.values()
                  for f in findings}
    if ERROR in severities:
        return EXIT_ERRORS
    if severities:
        return EXIT_WARNINGS
    return EXIT_CLEAN


def _totals(results: dict[str, list[Finding]]) -> dict[str, int]:
    totals = dict.fromkeys(SEVERITIES, 0)
    for findings in results.values():
        for sev, n in count_by_severity(findings).items():
            totals[sev] += n
    return totals


def format_findings_text(results: dict[str, list[Finding]]) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = []
    for findings in results.values():
        lines.extend(f.render() for f in findings)
    totals = _totals(results)
    clean = sum(1 for f in results.values() if not f)
    lines.append(f"{len(results)} programs linted, {clean} clean; "
                 f"{totals[ERROR]} errors, {totals[WARNING]} warnings")
    return "\n".join(lines)


def format_findings_json(results: dict[str, list[Finding]]) -> str:
    """Machine-readable report (the CI findings artifact)."""
    payload = {
        "programs": [
            {
                "program": name,
                "findings": [f.as_dict() for f in findings],
                "counts": count_by_severity(findings),
            }
            for name, findings in results.items()
        ],
        "totals": _totals(results),
        "exit_code": exit_code(results),
    }
    return json.dumps(payload, indent=2)
