"""Structured lint findings and the rule registry.

Every pass reports :class:`Finding` instances; new passes slot in by
registering a :class:`Rule` here and emitting findings that name it. The
CLI and CI layers only consume the dataclasses, so rule additions never
touch the reporting plumbing.

Two rule families share the registry:

* ``L0xx`` - program lint rules over guest kernels (``repro lint``);
  L009-L014 are the intermittency-safety rules and only run under
  ``--intermittent`` (see :mod:`repro.lint.intermittent`).
* ``A0xx`` - static audit contracts over *generated* Python from the
  jit/memfast/batch codegen layers (``repro audit``, see
  :mod:`repro.lint.codegen_audit`).

:func:`sarif_log` renders either family (or a mix) as a SARIF 2.1.0 log
for GitHub code-scanning upload; waived findings become SARIF
suppressions rather than disappearing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

ERROR = "error"
WARNING = "warning"
INFO = "info"
SEVERITIES = (ERROR, WARNING, INFO)

#: severity -> SARIF result level
_SARIF_LEVELS = {ERROR: "error", WARNING: "warning", INFO: "note"}


@dataclass(frozen=True)
class Rule:
    """One lint rule: a stable ID, its default severity, and a summary."""

    id: str
    name: str
    severity: str
    summary: str


#: The rule registry, keyed by stable rule ID (see docs/lint.md).
RULES: dict[str, Rule] = {r.id: r for r in [
    Rule("L001", "uninit-read", ERROR,
         "read of a register no write ever reaches"),
    Rule("L002", "dead-store", WARNING,
         "register write that no instruction can ever read"),
    Rule("L003", "unreachable", WARNING,
         "basic block unreachable from the program entry"),
    Rule("L004", "bad-target", ERROR,
         "branch/jump target outside the program"),
    Rule("L005", "misaligned-access", ERROR,
         "statically-known memory address violates access alignment"),
    Rule("L006", "out-of-bounds", ERROR,
         "statically-known memory address outside the data address space"),
    Rule("L007", "fall-off-end", ERROR,
         "reachable execution path falls off the end of the program"),
    Rule("L008", "zero-page-access", WARNING,
         "statically-known memory address below the data segment base"),
    # intermittency-safety rules (checkpoint-region dataflow; opt-in via
    # repro lint --intermittent, see docs/lint.md)
    Rule("L009", "war-hazard", WARNING,
         "write-after-read of a non-volatile word inside one checkpoint "
         "region (re-execution after an outage reads the updated value)"),
    Rule("L010", "non-idempotent-rmw", WARNING,
         "read-modify-write of a non-volatile word with no checkpoint "
         "between the read and the dependent write"),
    Rule("L011", "region-budget", WARNING,
         "checkpoint region unbounded (checkpoint-free cycle) or longer "
         "than the worst-case capacitor budget in folded cycles"),
    Rule("L012", "torn-masked-store", WARNING,
         "subword store to a word exposed-read in the same region (a "
         "partial commit before an outage tears the read-back value)"),
    Rule("L013", "dead-checkpoint", INFO,
         "checkpoint no store reaches since the previous boundary (it "
         "persists nothing new)"),
    Rule("L014", "ckpt-unreachable-store", WARNING,
         "store from which no checkpoint or halt is reachable (the "
         "write can never be made durable)"),
]}

RULES_BY_NAME: dict[str, Rule] = {r.name: r for r in RULES.values()}

#: Static codegen-audit contracts (``repro audit``); registered apart
#: from the program-lint rules so each CLI reports its own catalogue.
AUDIT_RULES: dict[str, Rule] = {r.id: r for r in [
    Rule("A001", "exit-state-incomplete", ERROR,
         "a generated exit path leaves the 9-slot st list partially "
         "written (st[0]/st[1]/st[7] must be flushed on every exit)"),
    Rule("A002", "retire-count-mismatch", ERROR,
         "a generated exit reports a retired-instruction count st[7] "
         "inconsistent with the dispatch-table block length"),
    Rule("A003", "record-exit-codes", ERROR,
         "a record-mode exit appends a wrong/missing exit code to _q "
         "(or a non-record module touches _q at all)"),
    Rule("A004", "bail-before-mutate", ERROR,
         "a fast-path bail to the slow path happens after a state "
         "mutation (only the MRU-hint update may precede a bail)"),
    Rule("A005", "baked-key-mismatch", ERROR,
         "baked-in constants disagree with the code-cache keying tuple "
         "(a fresh recompile of the same key yields different source)"),
    Rule("A006", "ambient-state", ERROR,
         "generated code reaches outside its bound arguments (imports, "
         "wall-clock, or global mutable state)"),
    Rule("A007", "replay-now-formula", ERROR,
         "the batch replay stream walk passes a memory-call timestamp "
         "that is not the interpreter-equivalent now formula"),
    Rule("A008", "lockstep-engine-protocol", ERROR,
         "a generated lockstep column engine breaks the episode "
         "protocol (unknown/misshapen episode tuple, missing cursor "
         "publication, or an instance whose mirrors are never written "
         "back before the yield)"),
    Rule("A009", "store-load-mismatch", ERROR,
         "a generated source served from the persistent artifact store "
         "does not re-render byte-identical from its recorded inputs "
         "(stale, tampered, or mis-keyed cache entry)"),
]}

#: Every registered rule, both families, for SARIF/driver lookups.
ALL_REGISTERED_RULES: dict[str, Rule] = {**RULES, **AUDIT_RULES}


@dataclass(frozen=True)
class Finding:
    """One lint diagnostic.

    Attributes:
        rule: The rule ID (e.g. ``"L001"``).
        severity: One of :data:`SEVERITIES`.
        location: ``"<program>@<instruction index>"`` (or ``"<program>"``
            for whole-program findings).
        message: Human-readable diagnostic.
        waived: The justification string of a matching waiver, when one
            suppressed this finding (waived findings never affect the
            exit code but stay visible in every report format).
    """

    rule: str
    severity: str
    location: str
    message: str
    waived: str | None = field(default=None, compare=False)

    def as_dict(self) -> dict[str, str]:
        rule = ALL_REGISTERED_RULES.get(self.rule)
        d = {
            "rule": self.rule,
            "name": rule.name if rule else "",
            "severity": self.severity,
            "location": self.location,
            "message": self.message,
        }
        if self.waived is not None:
            d["waived"] = self.waived
        return d

    def render(self) -> str:
        rule = ALL_REGISTERED_RULES.get(self.rule)
        name = rule.name if rule else "?"
        tail = f" [waived: {self.waived}]" if self.waived is not None else ""
        return (f"{self.location}: {self.severity}: "
                f"[{self.rule} {name}] {self.message}{tail}")


def make_finding(rule_id: str, location: str, message: str,
                 severity: str | None = None) -> Finding:
    """Build a finding for a registered rule (default severity unless
    overridden)."""
    rule = ALL_REGISTERED_RULES[rule_id]
    return Finding(rule_id, severity or rule.severity, location, message)


def count_by_severity(findings, include_waived: bool = False
                      ) -> dict[str, int]:
    """Histogram findings over :data:`SEVERITIES` (all keys present).
    Waived findings are excluded unless ``include_waived``."""
    counts = dict.fromkeys(SEVERITIES, 0)
    for f in findings:
        if f.waived is not None and not include_waived:
            continue
        counts[f.severity] = counts.get(f.severity, 0) + 1
    return counts


# ---------------------------------------------------------------------------
# SARIF 2.1.0 export (GitHub code-scanning upload format)
# ---------------------------------------------------------------------------

def sarif_log(results: dict[str, list[Finding]], tool_name: str,
              artifact_uris: dict[str, str] | None = None) -> dict:
    """Render ``{unit name: findings}`` as a SARIF 2.1.0 log ``dict``.

    ``artifact_uris`` optionally maps a unit name (the key in
    ``results``) to a repo-relative source path; findings from that unit
    then carry a physical location (GitHub annotates the file inline)
    in addition to the logical ``<unit>@<index>`` location. Waived
    findings are emitted with a SARIF ``suppressions`` entry carrying
    the justification, so code scanning shows them as suppressed rather
    than open.
    """
    artifact_uris = artifact_uris or {}
    used_rules: list[str] = []
    seen: set[str] = set()
    sarif_results = []
    for unit, findings in results.items():
        for f in findings:
            if f.rule not in seen:
                seen.add(f.rule)
                used_rules.append(f.rule)
            location: dict = {
                "logicalLocations": [{"fullyQualifiedName": f.location}],
            }
            uri = artifact_uris.get(unit)
            if uri:
                location["physicalLocation"] = {
                    "artifactLocation": {"uri": uri},
                    "region": {"startLine": 1},
                }
            result: dict = {
                "ruleId": f.rule,
                "level": _SARIF_LEVELS.get(f.severity, "warning"),
                "message": {"text": f"{f.location}: {f.message}"},
                "locations": [location],
            }
            if f.waived is not None:
                result["suppressions"] = [{
                    "kind": "inSource",
                    "justification": f.waived,
                }]
            sarif_results.append(result)
    driver_rules = []
    for rid in sorted(used_rules):
        rule = ALL_REGISTERED_RULES.get(rid)
        if rule is None:
            continue
        driver_rules.append({
            "id": rule.id,
            "name": rule.name,
            "shortDescription": {"text": rule.summary},
            "defaultConfiguration": {
                "level": _SARIF_LEVELS.get(rule.severity, "warning"),
            },
        })
    return {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": tool_name,
                "informationUri":
                    "https://github.com/example/repro/blob/main/docs/lint.md",
                "rules": driver_rules,
            }},
            "results": sarif_results,
        }],
    }


def format_findings_sarif(results: dict[str, list[Finding]],
                          tool_name: str = "repro-lint",
                          artifact_uris: dict[str, str] | None = None) -> str:
    """SARIF 2.1.0 report string (the CI code-scanning artifact)."""
    return json.dumps(sarif_log(results, tool_name, artifact_uris), indent=2)
