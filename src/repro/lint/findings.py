"""Structured lint findings and the rule registry.

Every pass reports :class:`Finding` instances; new passes slot in by
registering a :class:`Rule` here and emitting findings that name it. The
CLI and CI layers only consume the dataclasses, so rule additions never
touch the reporting plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass

ERROR = "error"
WARNING = "warning"
INFO = "info"
SEVERITIES = (ERROR, WARNING, INFO)


@dataclass(frozen=True)
class Rule:
    """One lint rule: a stable ID, its default severity, and a summary."""

    id: str
    name: str
    severity: str
    summary: str


#: The rule registry, keyed by stable rule ID (see docs/lint.md).
RULES: dict[str, Rule] = {r.id: r for r in [
    Rule("L001", "uninit-read", ERROR,
         "read of a register no write ever reaches"),
    Rule("L002", "dead-store", WARNING,
         "register write that no instruction can ever read"),
    Rule("L003", "unreachable", WARNING,
         "basic block unreachable from the program entry"),
    Rule("L004", "bad-target", ERROR,
         "branch/jump target outside the program"),
    Rule("L005", "misaligned-access", ERROR,
         "statically-known memory address violates access alignment"),
    Rule("L006", "out-of-bounds", ERROR,
         "statically-known memory address outside the data address space"),
    Rule("L007", "fall-off-end", ERROR,
         "reachable execution path falls off the end of the program"),
    Rule("L008", "zero-page-access", WARNING,
         "statically-known memory address below the data segment base"),
]}

RULES_BY_NAME: dict[str, Rule] = {r.name: r for r in RULES.values()}


@dataclass(frozen=True)
class Finding:
    """One lint diagnostic.

    Attributes:
        rule: The rule ID (e.g. ``"L001"``).
        severity: One of :data:`SEVERITIES`.
        location: ``"<program>@<instruction index>"`` (or ``"<program>"``
            for whole-program findings).
        message: Human-readable diagnostic.
    """

    rule: str
    severity: str
    location: str
    message: str

    def as_dict(self) -> dict[str, str]:
        return {
            "rule": self.rule,
            "name": RULES[self.rule].name if self.rule in RULES else "",
            "severity": self.severity,
            "location": self.location,
            "message": self.message,
        }

    def render(self) -> str:
        name = RULES[self.rule].name if self.rule in RULES else "?"
        return (f"{self.location}: {self.severity}: "
                f"[{self.rule} {name}] {self.message}")


def make_finding(rule_id: str, location: str, message: str,
                 severity: str | None = None) -> Finding:
    """Build a finding for a registered rule (default severity unless
    overridden)."""
    rule = RULES[rule_id]
    return Finding(rule_id, severity or rule.severity, location, message)


def count_by_severity(findings) -> dict[str, int]:
    """Histogram findings over :data:`SEVERITIES` (all keys present)."""
    counts = dict.fromkeys(SEVERITIES, 0)
    for f in findings:
        counts[f.severity] = counts.get(f.severity, 0) + 1
    return counts
