"""Runtime protocol invariant checker for WL-Cache (the paper's §5).

The linter in :mod:`repro.lint.rules` checks guest *programs*; this module
checks the *simulator* - it turns the WL-Cache correctness argument into
assertions evaluated at every protocol step:

==== =================== =================================================
ID   name                invariant
==== =================== =================================================
I001 dirty-bound         dirty-line count <= maxline after every store
I002 queue-bound         DirtyQueue occupancy <= maxline after every store
I003 dirty-coverage      every dirty line is named by a *non-in-flight*
                         DirtyQueue entry (a line re-dirtied between the
                         §5.3 clean-mark and the write-back ACK must have
                         inserted a fresh entry)
I004 pending-coherence   every in-flight write-back's queue entry is
                         flagged in-flight and still resident in the queue
I005 threshold-order     0 <= waterline <= maxline <= |DirtyQueue| at all
                         times, including every reconfiguration (boot-time
                         adaptive and run-time dynamic raises alike)
I006 flush-complete      a JIT checkpoint leaves no dirty line, no queue
                         entry, and no un-ACKed write-back behind
==== =================== =================================================

The checker attaches by *shadowing instance attributes* with wrapper
closures (``store_masked``, ``set_thresholds``, ``flush_for_checkpoint``).
The interpreter and the system loop resolve these methods through the
instance, so the wrappers are picked up automatically - and a design
without a checker attached pays nothing: no flag tests, no indirection,
not one extra bytecode on the hot store path.

Enable via ``SimConfig(check_invariants=True)`` or ``REPRO_CHECK=1`` in
the environment (the latter reaches parallel sweep workers too).
"""

from __future__ import annotations

import os

from repro.core.wl_cache import WLCache
from repro.errors import InvariantViolation

#: Environment switch; any value except "", "0" enables checking.
ENV_VAR = "REPRO_CHECK"


def invariants_enabled() -> bool:
    """True when ``REPRO_CHECK`` requests invariant checking."""
    return os.environ.get(ENV_VAR, "0") not in ("", "0")


class InvariantChecker:
    """Asserts the WL-Cache protocol invariants on a live cache instance.

    Attributes:
        checks: Number of invariant evaluations performed (each wrapped
            protocol call counts once; surfaced as
            ``RunResult.invariant_checks``).
    """

    def __init__(self, cache: WLCache):
        self.cache = cache
        self.checks = 0

    # ------------------------------------------------------------------
    def attach(self) -> "InvariantChecker":
        """Shadow the protocol methods with checking wrappers."""
        cache = self.cache
        orig_store = cache.store_masked
        orig_set = cache.set_thresholds
        orig_flush = cache.flush_for_checkpoint

        def store_masked(addr, bits, mask, now):
            cycles = orig_store(addr, bits, mask, now)
            self.check_store_state()
            return cycles

        def set_thresholds(maxline, waterline=None):
            orig_set(maxline, waterline)
            self.checks += 1
            self._check_thresholds("after set_thresholds")
            return None

        def flush_for_checkpoint(now):
            report = orig_flush(now)
            self.check_flushed_state()
            return report

        cache.store_masked = store_masked
        cache.set_thresholds = set_thresholds
        cache.flush_for_checkpoint = flush_for_checkpoint
        cache._invariant_checker = self
        return self

    # ------------------------------------------------------------------
    def _fail(self, rule: str, name: str, message: str) -> None:
        raise InvariantViolation(
            f"[{rule} {name}] {self.cache.name}: {message}")

    def _check_thresholds(self, when: str) -> None:
        cache = self.cache
        if not (0 <= cache.waterline <= cache.maxline <= cache.dq.capacity):
            self._fail("I005", "threshold-order",
                       f"{when}: need 0 <= waterline <= maxline <= "
                       f"|DirtyQueue|, got waterline={cache.waterline}, "
                       f"maxline={cache.maxline}, "
                       f"capacity={cache.dq.capacity}")

    def check_store_state(self) -> None:
        """I001-I005, evaluated after every store retires."""
        self.checks += 1
        cache = self.cache
        dq = cache.dq
        maxline = cache.maxline
        if dq.occupancy > maxline:
            self._fail("I002", "queue-bound",
                       f"DirtyQueue holds {dq.occupancy} entries after a "
                       f"store, exceeding maxline={maxline}")
        dirty = cache.array.dirty_lines()
        if len(dirty) > maxline:
            self._fail("I001", "dirty-bound",
                       f"{len(dirty)} dirty lines after a store, exceeding "
                       f"maxline={maxline} - the JIT checkpoint reserve "
                       f"no longer covers the cache")
        covered = {e.lineno for e in dq.entries if not e.in_flight}
        for line in dirty:
            if line.tag not in covered:
                self._fail("I003", "dirty-coverage",
                           f"line {line.tag} is dirty but has no "
                           f"non-in-flight DirtyQueue entry (re-dirtied "
                           f"after the §5.3 clean-mark without a fresh "
                           f"insert?)")
        entries = dq.entries
        for p in cache.pending:
            if not p.entry.in_flight:
                self._fail("I004", "pending-coherence",
                           f"write-back of line {p.lineno} is pending but "
                           f"its queue entry is not flagged in-flight")
            if p.entry not in entries:
                self._fail("I004", "pending-coherence",
                           f"write-back of line {p.lineno} is pending but "
                           f"its queue entry left the DirtyQueue before "
                           f"the ACK (§5.3 step 4 violated)")
        self._check_thresholds("after a store")

    def check_flushed_state(self) -> None:
        """I006, evaluated after every JIT checkpoint flush."""
        self.checks += 1
        cache = self.cache
        dirty = cache.array.dirty_lines()
        if dirty:
            self._fail("I006", "flush-complete",
                       f"{len(dirty)} lines still dirty after the JIT "
                       f"checkpoint flush (first: line {dirty[0].tag})")
        if cache.dq.occupancy:
            self._fail("I006", "flush-complete",
                       f"DirtyQueue still holds {cache.dq.occupancy} "
                       f"entries after the JIT checkpoint flush")
        if cache.pending:
            self._fail("I006", "flush-complete",
                       f"{len(cache.pending)} write-backs still un-ACKed "
                       f"after the JIT checkpoint flush")


def attach_invariants(design) -> InvariantChecker | None:
    """Attach an :class:`InvariantChecker` if ``design`` is a WL-Cache
    (variants included); returns it, or None for other designs."""
    if not isinstance(design, WLCache):
        return None
    return InvariantChecker(design).attach()
