"""Static auditor for the generated Python of the jit/memfast/batch tiers.

Four subsystems in this codebase *generate* Python source and ``exec``
it: the basic-block/trace JIT (:mod:`repro.jit.blocks`), the
memory-hierarchy fast path (:mod:`repro.memfast.handlers`), the
batch tier's record mode (a JIT variant) plus its hand-written stream
walker (:mod:`repro.batch.replay`), and the lockstep tier's column
engine (:mod:`repro.lockstep.codegen`). Their correctness contracts are
exercised dynamically by differential tests, but dynamic tests only
sample: a side exit that forgets to flush one ``st`` slot is invisible
until a power trace happens to interrupt that exact block. This module
re-states the contracts *structurally* and verifies them over the
``ast`` of the actual generated source - every exit path, every bail
edge, every baked constant - so a codegen regression is caught by shape,
not by luck.

The contracts (registered as ``A0xx`` in :mod:`repro.lint.findings`):

* **A001 exit-state-incomplete** - every exit path of a generated
  function (each ``return`` and each fault ``raise _EE``) is dominated
  by assignments to ``st[0]`` (cycle), ``st[1]`` (fetch line) and
  ``st[7]`` (retired count); every constant ``st`` index is in 0..8.
  This is the "9-slot state list travels whole" contract the dispatcher
  and the capacitor accounting rely on.
* **A002 retire-count-mismatch** - the ``st[7]`` constant each exit
  flushes is consistent with the block length the dispatch table
  declares: block/suffix returns retire exactly the declared length,
  trace side exits and fault paths retire ``1..length``.
* **A003 record-exit-codes** - in record mode every return is dominated
  by *exactly one* ``_q.append(code)`` with ``code`` in ``{2*start,
  2*start + 1}``; fault paths append nothing; non-record modules never
  mention ``_q``. The batch engine replays streams positionally, so a
  missing, doubled, or mislabeled exit code silently corrupts every
  replay of the recording.
* **A004 bail-before-mutate** - a bail to the bracketed slow path
  (``return _slow(...)`` in a handler, the tag-guard else-arm in
  JIT-inlined probes) must happen before any state mutation, because
  the slow path replays the access from scratch. The only mutation
  allowed before a bail is the MRU-hint update ``_mru[si] = line`` (a
  probe cache, semantically invisible). In JIT functions, every
  mutation of the deferred accumulator or a cache line must sit under a
  tag-match guard.
* **A005 baked-key-mismatch** - regenerating the source from the keying
  inputs (program content, frozen costs, memfast family, record flag;
  for handlers, the live geometry/energy fields) reproduces the audited
  source byte for byte. This pins the code cache's keying tuple to the
  baked constants: if codegen starts baking a value the key does not
  cover, the first sweep that varies it gets stale code - and this
  check fails loudly instead.
* **A006 ambient-state** - generated modules import nothing, declare
  nothing global/nonlocal, and resolve every free name to a bound
  parameter, a local, or an allowlisted builtin (``len``/``hex``). No
  wall-clock, no RNG, no module-global mutable state: a compiled module
  may be shared across cores and sweep points, and determinism (and
  record/replay bit-equality) depends on it.
* **A007 replay-now-formula** - ``ReplayCore.run_chunk`` passes every
  memory call the interpreter-equivalent timestamp, literally the
  expression ``cum[i] - c_mem + dyn + offset``, and the replay module
  imports only stdlib-pure ``bisect`` and ``repro.*``. This is the one
  hand-written (not generated) piece of the batch fast path, and its
  bit-exactness argument hangs on that formula.
* **A008 lockstep-engine-protocol** - a generated column engine
  (:mod:`repro.lockstep.codegen`) is a single generator
  ``_make_engine``; every episode it appends is a well-formed tuple
  whose tag the scheduler knows (``halt``/``outage``/``err``/``fault``
  /``bail``, with the right arity); the column cursor cell is
  published (``cell[0]``/``cell[2]`` assigned) and *every* instance's
  mutable-mirror slice is written back before the yield. The scheduler
  dispatches episodes positionally and resumes instances from their
  slot lists, so a missing writeback silently forks an instance's
  state from its solo-replay twin. Engines are also held to A005 (the
  retained source must match a fresh render of the same column
  signature) and A006 (free names resolve only to the engine's exec
  namespace: the error types and the few helpers ``make_engine``
  binds).
* **A009 store-load-mismatch** - every generated source this process
  served from the *persistent* artifact store (:mod:`repro.store`)
  re-renders byte-identical from its recorded inputs. A005 pins what
  this process rendered; A009 pins what it *loaded* - a stale,
  tampered, or mis-keyed entry in a shared cache directory is caught
  here rather than silently executed again next run.

Drivers: :func:`audit_compiled` (one
:class:`~repro.jit.cache.CompiledProgram`, including any suffix/trace
modules it has materialized), :func:`audit_memfast_design` (one live
memory system's installed handlers), :func:`audit_replay_module` (the
batch walker), :func:`audit_lockstep_engines` (every retained column-
engine source), :func:`audit_store_loads` (the A009 ledger), and
:func:`audit_suite` (the CLI's ``repro audit``:
runs every requested kernel on every requested design with jit+memfast
on, then audits everything those runs compiled, plus each kernel's
record modules, plus the column engines a small lockstep sweep
materializes).
"""

from __future__ import annotations

import ast

from repro.lint.findings import Finding, make_finding

#: builtins generated code may reference (A006)
_ALLOWED_BUILTINS = frozenset({"len", "hex"})

#: mutating method calls recognized by the A004 mutation scan
_MUTATING_METHODS = frozenset({"append", "add", "clear", "insert", "pop",
                               "popleft", "extend", "remove", "update"})

#: the exact timestamp expression A007 requires (see replay.py docstring)
_NOW_FORMULA = "cum[i] - c_mem + dyn + offset"

#: module imports the replay walker may use (A007)
_REPLAY_IMPORT_OK = ("__future__", "bisect", "repro")

#: names a lockstep engine may resolve beyond its locals: the exec
#: namespace :func:`repro.lockstep.codegen.make_engine` binds, plus the
#: builtins the rendered source uses. Pinned here on purpose - a new
#: bind in codegen must be reviewed against this list, not silently
#: allowed.
_ENGINE_BINDS = frozenset({"EnergyError", "ExecutionError", "_ILS",
                           "_INF", "_DQE", "_bis",
                           "Exception", "int", "min"})

#: episode tag -> required tuple arity (the scheduler's dispatch
#: contract; see repro.lockstep.scheduler._handle)
_EPISODE_ARITY = {"halt": 2, "outage": 2, "err": 3, "fault": 3,
                  "bail": 1}


# ---------------------------------------------------------------------------
# AST helpers
# ---------------------------------------------------------------------------

def _exit_paths(fn: ast.FunctionDef):
    """Every ``return``/``raise`` in ``fn`` with its *dominating*
    statements: the statements guaranteed to have executed on any path
    reaching the exit (the prefixes along its nesting chain). Nested
    suites contribute their containing compound statement, never their
    inner statements."""
    out: list[tuple[ast.stmt, list[ast.stmt]]] = []

    def walk(suite, prefix):
        for idx, stmt in enumerate(suite):
            here = prefix + suite[:idx]
            if isinstance(stmt, (ast.Return, ast.Raise)):
                out.append((stmt, here))
            elif isinstance(stmt, (ast.If, ast.For, ast.While)):
                walk(stmt.body, here)
                walk(stmt.orelse, here)

    walk(fn.body, [])
    return out


def _st_const_assigns(stmts) -> dict[int, object]:
    """``{slot: value node}`` for plain ``st[<const>] = ...`` assignments
    among ``stmts`` (last assignment wins, like execution would)."""
    slots: dict[int, object] = {}
    for stmt in stmts:
        if not isinstance(stmt, ast.Assign):
            continue
        for tgt in stmt.targets:
            idx = _st_subscript_index(tgt)
            if idx is not None:
                slots[idx] = stmt.value
    return slots


def _st_subscript_index(node) -> int | None:
    if (isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id == "st"
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, int)):
        return node.slice.value
    return None


def _q_appends(stmts) -> list[object]:
    """The argument nodes of top-level ``_q.append(...)`` calls."""
    out = []
    for stmt in stmts:
        if (isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Call)
                and isinstance(stmt.value.func, ast.Attribute)
                and stmt.value.func.attr == "append"
                and isinstance(stmt.value.func.value, ast.Name)
                and stmt.value.func.value.id == "_q"):
            out.append(stmt.value.args[0] if stmt.value.args else None)
    return out


def _target_root(node) -> str | None:
    """The base name a store target ultimately mutates (``_acc[0]`` ->
    ``_acc``, ``line.dirty`` -> ``line``, plain ``x`` -> None: locals
    are not mutations of shared state)."""
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _mutations_of(stmt) -> set[str]:
    """Names of shared objects ``stmt`` may mutate (A004's currency)."""
    out: set[str] = set()
    if isinstance(stmt, ast.Assign):
        for tgt in stmt.targets:
            targets = tgt.elts if isinstance(tgt, ast.Tuple) else [tgt]
            for t in targets:
                if isinstance(t, (ast.Subscript, ast.Attribute)):
                    root = _target_root(t)
                    if root:
                        out.add(root)
    elif isinstance(stmt, ast.AugAssign):
        if isinstance(stmt.target, (ast.Subscript, ast.Attribute)):
            root = _target_root(stmt.target)
            if root:
                out.add(root)
    elif (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call)
          and isinstance(stmt.value.func, ast.Attribute)
          and stmt.value.func.attr in _MUTATING_METHODS):
        root = _target_root(stmt.value.func.value)
        if root:
            out.add(root)
    return out


def _mentions_tag(node) -> bool:
    return any(isinstance(n, ast.Attribute) and n.attr == "tag"
               for n in ast.walk(node))


# ---------------------------------------------------------------------------
# per-function contracts (A001/A002/A003 + the JIT half of A004)
# ---------------------------------------------------------------------------

def _fn_kind(name: str) -> str | None:
    """'block' / 'suffix' / 'trace' from the generated naming scheme."""
    if name.startswith("_b"):
        return "block"
    if name.startswith("_s") and name != "_state_flush":
        return "suffix"
    if name.startswith("_t"):
        return "trace"
    return None


def _audit_generated_fn(fn: ast.FunctionDef, declared: int | None,
                        record: bool, loc: str) -> list[Finding]:
    findings: list[Finding] = []
    kind = _fn_kind(fn.name)
    start = int(fn.name[2:]) if kind else None

    # A001 (range half): every constant st index the function touches
    for node in ast.walk(fn):
        idx = _st_subscript_index(node)
        if idx is not None and not 0 <= idx <= 8:
            findings.append(make_finding(
                "A001", loc,
                f"st[{idx}] is outside the 9-slot state list"))

    for exit_node, doms in _exit_paths(fn):
        is_raise = isinstance(exit_node, ast.Raise)
        line = getattr(exit_node, "lineno", 0)
        where = f"{loc} line {line}"
        slots = _st_const_assigns(doms)

        # A001: the cycle/line/retired slots flush on every exit
        missing = [k for k in (0, 1, 7) if k not in slots]
        if missing:
            kind_s = "fault path" if is_raise else "exit"
            findings.append(make_finding(
                "A001", where,
                f"{kind_s} leaves st{missing} unwritten (every exit "
                f"must flush st[0]/st[1]/st[7])"))

        # A002: the retired count is consistent with the declared length
        retired = slots.get(7)
        if (declared is not None and retired is not None
                and isinstance(retired, ast.Constant)
                and isinstance(retired.value, int)):
            k = retired.value
            if is_raise or kind == "trace":
                ok = 1 <= k <= declared
                want = f"1..{declared}"
            else:
                ok = k == declared
                want = str(declared)
            if not ok:
                findings.append(make_finding(
                    "A002", where,
                    f"exit flushes st[7] = {k}, but the dispatch table "
                    f"declares length {declared} (expected {want})"))

        # A003: record-mode exit codes
        if record:
            appends = _q_appends(doms)
            if is_raise:
                if appends:
                    findings.append(make_finding(
                        "A003", where,
                        "fault path appends an exit code (faults retire "
                        "no block; the replay stream must not see one)"))
            elif len(appends) != 1:
                findings.append(make_finding(
                    "A003", where,
                    f"exit appends {len(appends)} exit codes (exactly "
                    f"one per return)"))
            elif start is not None:
                arg = appends[0]
                ok = (isinstance(arg, ast.Constant)
                      and arg.value in (2 * start, 2 * start + 1))
                if not ok:
                    got = ast.unparse(arg) if arg is not None else "<none>"
                    findings.append(make_finding(
                        "A003", where,
                        f"exit code {got} is not 2*{start} or "
                        f"2*{start}+1"))

    # A004 (JIT half): inlined-probe mutations must be tag-guarded
    def guard_walk(suite, guarded):
        for stmt in suite:
            if isinstance(stmt, ast.If):
                guard_walk(stmt.body,
                           guarded or _mentions_tag(stmt.test))
                guard_walk(stmt.orelse, guarded)
            elif isinstance(stmt, (ast.For, ast.While)):
                guard_walk(stmt.body, guarded)
                guard_walk(stmt.orelse, guarded)
            elif not guarded:
                bad = _mutations_of(stmt) & {"_acc", "_li", "_d"}
                if bad:
                    findings.append(make_finding(
                        "A004",
                        f"{loc} line {getattr(stmt, 'lineno', 0)}",
                        f"mutates {sorted(bad)} outside a tag-match "
                        f"guard (the bail path would double-apply it)"))

    guard_walk(fn.body, False)
    return findings


def _declared_lengths(bind: ast.FunctionDef) -> dict[str, int]:
    """``{fn name: length}`` from ``_table[N] = (_bN, L)`` assignments
    and the suffix/trace ``return (_fN, L)`` forms."""
    out: dict[str, int] = {}

    def from_tuple(node):
        if (isinstance(node, ast.Tuple) and len(node.elts) == 2
                and isinstance(node.elts[0], ast.Name)
                and isinstance(node.elts[1], ast.Constant)
                and isinstance(node.elts[1].value, int)):
            out[node.elts[0].id] = node.elts[1].value

    for stmt in bind.body:
        if isinstance(stmt, ast.Assign):
            for tgt in stmt.targets:
                if (isinstance(tgt, ast.Subscript)
                        and isinstance(tgt.value, ast.Name)
                        and tgt.value.id == "_table"):
                    from_tuple(stmt.value)
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            from_tuple(stmt.value)
    return out


# ---------------------------------------------------------------------------
# A006: ambient-state / free-variable purity
# ---------------------------------------------------------------------------

def _scope_findings(tree: ast.Module, loc: str,
                    extra: frozenset = frozenset()) -> list[Finding]:
    allowed = _ALLOWED_BUILTINS | extra
    findings: list[Finding] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            findings.append(make_finding(
                "A006", f"{loc} line {node.lineno}",
                "generated code must not import anything"))
        elif isinstance(node, (ast.Global, ast.Nonlocal)):
            findings.append(make_finding(
                "A006", f"{loc} line {node.lineno}",
                "generated code must not declare global/nonlocal"))

    def shallow_nodes(fn: ast.FunctionDef):
        """Nodes of ``fn``'s own scope: nested FunctionDefs are yielded
        (their name binds here) but never entered."""
        stack = list(fn.body)
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, ast.FunctionDef):
                continue
            stack.extend(ast.iter_child_nodes(node))

    def local_names(fn: ast.FunctionDef) -> set[str]:
        args = fn.args
        names = {a.arg for a in (args.posonlyargs + args.args
                                 + args.kwonlyargs)}
        if args.vararg:
            names.add(args.vararg.arg)
        if args.kwarg:
            names.add(args.kwarg.arg)
        for stmt in shallow_nodes(fn):
            if isinstance(stmt, ast.FunctionDef):
                names.add(stmt.name)
            elif isinstance(stmt, ast.ExceptHandler) and stmt.name:
                names.add(stmt.name)
            elif isinstance(stmt, (ast.Assign, ast.AugAssign, ast.For)):
                targets = (stmt.targets if isinstance(stmt, ast.Assign)
                           else [stmt.target])
                for t in targets:
                    for n in ast.walk(t):
                        if isinstance(n, ast.Name):
                            names.add(n.id)
        return names

    def check(fn: ast.FunctionDef, env: set[str]) -> None:
        # default expressions evaluate in the *enclosing* scope
        for d in fn.args.defaults + [d for d in fn.args.kw_defaults if d]:
            for n in ast.walk(d):
                if (isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
                        and n.id not in env
                        and n.id not in allowed):
                    findings.append(make_finding(
                        "A006", f"{loc} line {n.lineno}",
                        f"default for {fn.name} references unbound "
                        f"name {n.id!r}"))
        inner_env = env | local_names(fn)
        nested = []
        for node in shallow_nodes(fn):
            if isinstance(node, ast.FunctionDef):
                nested.append(node)
            elif (isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)
                    and node.id not in inner_env
                    and node.id not in allowed):
                findings.append(make_finding(
                    "A006", f"{loc} line {node.lineno}",
                    f"{fn.name} reaches outside its bindings for "
                    f"{node.id!r}"))
        for sub in nested:
            check(sub, inner_env)

    module_env = {n.name for n in tree.body
                  if isinstance(n, ast.FunctionDef)}
    for node in tree.body:
        if isinstance(node, ast.FunctionDef):
            check(node, module_env)
    return findings


# ---------------------------------------------------------------------------
# module-level audits
# ---------------------------------------------------------------------------

def audit_module_source(source: str, unit: str,
                        record: bool = False) -> list[Finding]:
    """A001-A004 + A006 over one generated JIT module's source."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:  # pragma: no cover - compile() ran first
        return [make_finding("A006", unit,
                             f"generated module does not parse: {exc}")]
    findings: list[Finding] = []
    bind = next((n for n in tree.body
                 if isinstance(n, ast.FunctionDef) and n.name == "_bind"),
                None)
    if bind is None:
        return [make_finding("A006", unit,
                             "generated module defines no _bind")]
    if not record:
        # A003 flip side: only record modules may touch the exit queue
        for node in ast.walk(bind):
            if isinstance(node, ast.Name) and node.id == "_q":
                findings.append(make_finding(
                    "A003", f"{unit} line {node.lineno}",
                    "non-record module references the record queue _q"))
                break
    declared = _declared_lengths(bind)
    for fn in bind.body:
        if not isinstance(fn, ast.FunctionDef) or _fn_kind(fn.name) is None:
            continue
        findings.extend(_audit_generated_fn(
            fn, declared.get(fn.name), record, f"{unit}:{fn.name}"))
    findings.extend(_scope_findings(tree, unit))
    return findings


def audit_compiled(compiled) -> list[Finding]:
    """Audit one :class:`~repro.jit.cache.CompiledProgram`: the block
    module, every materialized suffix/trace module, and the A005
    recompile check that ties the source to the cache keying tuple."""
    from repro.jit.blocks import (compile_blocks_source,
                                  compile_suffix_source,
                                  compile_trace_source)
    from repro.jit.cache import TRACE_CAP

    program, costs = compiled.program, compiled.costs
    mode = "record" if compiled.record else (compiled.memfast or "plain")
    unit = f"jit:{program.name}[{mode}]"
    findings = audit_module_source(compiled.source, unit, compiled.record)

    fresh, _meta = compile_blocks_source(program, costs, compiled.memfast,
                                         compiled.record)
    if fresh != compiled.source:
        findings.append(make_finding(
            "A005", unit,
            "recompiling from the cache key (program content, costs, "
            "memfast, record) does not reproduce the cached source - a "
            "baked constant escapes the keying tuple"))

    starts = sorted(s for s, _l in compiled.block_meta.items())
    n = compiled.n
    for pc, src in sorted(compiled.suffix_sources.items()):
        sunit = f"{unit}+{pc}"
        findings.extend(audit_module_source(src, sunit, compiled.record))
        end = next((s for s in starts if s > pc), n)
        if src != compile_suffix_source(program, costs, pc, end,
                                        compiled.memfast, compiled.record):
            findings.append(make_finding(
                "A005", sunit,
                f"suffix module @{pc} diverges from a fresh compile of "
                f"the same key"))
    for pc, src in sorted(compiled.trace_sources.items()):
        tunit = f"{unit}~{pc}"
        findings.extend(audit_module_source(src, tunit, False))
        if src != compile_trace_source(program, costs, pc, TRACE_CAP,
                                       compiled.memfast):
            findings.append(make_finding(
                "A005", tunit,
                f"trace module @{pc} diverges from a fresh compile of "
                f"the same key"))
    return findings


def _audit_handler_source(source: str, unit: str) -> list[Finding]:
    """A004 (handler half) + A006 over one memfast handler module."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:  # pragma: no cover
        return [make_finding("A006", unit,
                             f"handler source does not parse: {exc}")]
    findings = _scope_findings(tree, unit)

    def is_slow_bail(node) -> bool:
        return (isinstance(node, ast.Return)
                and isinstance(node.value, ast.Call)
                and isinstance(node.value.func, ast.Name)
                and node.value.func.id == "_slow")

    def check_bail(seen: set[str], node) -> None:
        bad = sorted(seen - {"_mru"})
        if bad:
            findings.append(make_finding(
                "A004", f"{unit} line {node.lineno}",
                f"bail to the slow path after mutating {bad} (the slow "
                f"replay would double-apply; only the _mru hint may "
                f"precede a bail)"))

    def walk(suite, seen: set[str]):
        """May-mutate-set walk; returns the set at suite exit, or None
        when every path through the suite terminates."""
        for stmt in suite:
            if isinstance(stmt, ast.Return):
                if is_slow_bail(stmt):
                    check_bail(seen, stmt)
                return None
            if isinstance(stmt, ast.Raise):
                return None
            if isinstance(stmt, ast.If):
                b = walk(stmt.body, set(seen))
                o = walk(stmt.orelse, set(seen))
                live = [x for x in (b, o) if x is not None]
                if not live:
                    return None
                seen = set().union(*live)
            elif isinstance(stmt, (ast.For, ast.While)):
                b = walk(stmt.body, set(seen))
                after = seen | (b or set())
                o = walk(stmt.orelse, set(after))
                seen = after if o is None else after | o
            else:
                seen |= _mutations_of(stmt)
        return seen

    for fn in ast.walk(tree):
        if isinstance(fn, ast.FunctionDef) and fn.name != "_make":
            walk(fn.body, set())
    return findings


def audit_memfast_design(m) -> list[Finding]:
    """Audit the fast handlers installed on a live memory system:
    handler-shape contracts plus the A005 re-render check against the
    live geometry/energy fields the literals were baked from."""
    from repro.memfast.handlers import (load_source, wb_store_sources,
                                        wl_store_sources)

    state = getattr(m, "_memfast_state", None)
    if state is None:
        return []
    design = type(m).__name__
    expected: dict[str, str] = {"load": load_source(m)}
    if state.store_shape == "wl":
        expected.update(wl_store_sources(m))
    elif state.store_shape == "wb":
        expected.update(wb_store_sources(m))
    findings: list[Finding] = []
    for name, want in expected.items():
        fn = getattr(m, name, None)
        got = getattr(fn, "_memfast_source", None)
        unit = f"memfast:{design}:{name}"
        if got is None:
            findings.append(make_finding(
                "A005", unit,
                f"installed {name} handler carries no generated source "
                f"to audit"))
            continue
        findings.extend(_audit_handler_source(got, unit))
        if got != want:
            findings.append(make_finding(
                "A005", unit,
                f"installed {name} handler does not match a fresh "
                f"render from the live geometry/energy fields - a "
                f"baked literal went stale"))
    return findings


def audit_replay_module() -> list[Finding]:
    """A007 over the hand-written batch stream walker."""
    import repro.batch.replay as replay_mod

    unit = "batch:replay"
    path = replay_mod.__file__
    with open(path, encoding="utf-8") as f:
        tree = ast.parse(f.read())
    findings: list[Finding] = []
    for node in tree.body:
        if isinstance(node, ast.Import):
            mods = [a.name for a in node.names]
        elif isinstance(node, ast.ImportFrom):
            mods = [node.module or ""]
        else:
            continue
        for mod in mods:
            root = mod.split(".", 1)[0]
            if root not in _REPLAY_IMPORT_OK:
                findings.append(make_finding(
                    "A007", f"{unit} line {node.lineno}",
                    f"replay module imports {mod!r} (only bisect and "
                    f"repro.* keep the walker deterministic)"))

    run_chunk = None
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == "ReplayCore":
            run_chunk = next(
                (f for f in node.body if isinstance(f, ast.FunctionDef)
                 and f.name == "run_chunk"), None)
    if run_chunk is None:
        findings.append(make_finding(
            "A007", unit, "ReplayCore.run_chunk not found"))
        return findings

    counts = dict.fromkeys(("load", "store", "store_masked"), 0)
    for node in ast.walk(run_chunk):
        if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id in counts):
            counts[node.func.id] += 1
            now = ast.unparse(node.args[-1]) if node.args else ""
            if now != _NOW_FORMULA:
                findings.append(make_finding(
                    "A007", f"{unit} line {node.lineno}",
                    f"{node.func.id} call passes now={now!r}, expected "
                    f"the interpreter-equivalent {_NOW_FORMULA!r}"))
    for name, c in counts.items():
        if not c:
            findings.append(make_finding(
                "A007", unit,
                f"run_chunk makes no {name} call - the stream walk "
                f"contract cannot be verified"))
    return findings


def audit_lockstep_engine(sig: tuple, source: str,
                          unit: str) -> list[Finding]:
    """A005/A006/A008 over one generated column engine's source."""
    from repro.lockstep.codegen import render_engine_source

    try:
        tree = ast.parse(source)
    except SyntaxError as exc:  # pragma: no cover - compile() ran first
        return [make_finding("A006", unit,
                             f"engine source does not parse: {exc}")]
    findings: list[Finding] = []

    # A008: single generator _make_engine
    defs = [n for n in tree.body if isinstance(n, ast.FunctionDef)]
    if [d.name for d in defs] != ["_make_engine"]:
        findings.append(make_finding(
            "A008", unit,
            f"engine module defines {[d.name for d in defs]} (expected "
            f"exactly one _make_engine)"))
        return findings
    engine = defs[0]
    if not any(isinstance(n, (ast.Yield, ast.YieldFrom))
               for n in ast.walk(engine)):
        findings.append(make_finding(
            "A008", unit, "_make_engine is not a generator"))

    # A008: every episode append is a well-formed, known tuple
    cell_slots: set[int] = set()
    written_back: set[int] = set()
    for node in ast.walk(engine):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "append"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "_ep"):
            arg = node.args[0] if node.args else None
            tag = (arg.elts[0].value
                   if isinstance(arg, ast.Tuple) and arg.elts
                   and isinstance(arg.elts[0], ast.Constant) else None)
            want = _EPISODE_ARITY.get(tag)
            if want is None:
                got = ast.unparse(arg) if arg is not None else "<none>"
                findings.append(make_finding(
                    "A008", f"{unit} line {node.lineno}",
                    f"episode {got} has a tag the scheduler does not "
                    f"dispatch"))
            elif len(arg.elts) != want:
                findings.append(make_finding(
                    "A008", f"{unit} line {node.lineno}",
                    f"episode {tag!r} has arity {len(arg.elts)} "
                    f"(scheduler unpacks {want})"))
        elif isinstance(node, ast.Assign):
            for tgt in node.targets:
                if (isinstance(tgt, ast.Subscript)
                        and isinstance(tgt.value, ast.Name)):
                    base = tgt.value.id
                    if (base == "cell"
                            and isinstance(tgt.slice, ast.Constant)):
                        cell_slots.add(tgt.slice.value)
                    elif (base.startswith("_s") and base[2:].isdigit()
                            and isinstance(tgt.slice, ast.Slice)):
                        written_back.add(int(base[2:]))

    # A008: cursor publication and per-instance mirror writeback
    for slot, what in ((0, "event index"), (2, "stream cursor")):
        if slot not in cell_slots:
            findings.append(make_finding(
                "A008", unit,
                f"engine never publishes cell[{slot}] (the column "
                f"{what}); eviction would resume solos at a stale "
                f"position"))
    missing = sorted(set(range(len(sig))) - written_back)
    if missing:
        findings.append(make_finding(
            "A008", unit,
            f"instances {missing} get no mutable-mirror slice "
            f"writeback before the yield (their slot lists would go "
            f"stale on eviction/halt)"))

    # A006 with the engine's exec-namespace allowlist
    findings.extend(_scope_findings(tree, unit, extra=_ENGINE_BINDS))

    # A005: the retained source matches a fresh render of the signature
    if source != render_engine_source(sig):
        findings.append(make_finding(
            "A005", unit,
            "retained engine source diverges from a fresh render of "
            "the same column signature - a baked constant escapes the "
            "signature"))
    return findings


def audit_lockstep_engines() -> list[Finding]:
    """Audit every column-engine source the lockstep tier has retained
    (run a lockstep sweep first to materialize them)."""
    from repro.lockstep.codegen import engine_sources

    findings: list[Finding] = []
    for i, (sig, src) in enumerate(sorted(engine_sources().items())):
        counts: dict[str, int] = {}
        for el in sig:
            counts[el[0]] = counts.get(el[0], 0) + 1
        modes = "+".join(f"{m}x{c}" for m, c in sorted(counts.items()))
        unit = f"lockstep:engine#{i}[{len(sig)} inst: {modes}]"
        findings.extend(audit_lockstep_engine(sig, src, unit))
    return findings


def audit_store_loads() -> list[Finding]:
    """A009: every generated source this process served from the
    persistent artifact store must re-render byte-identical from its
    recorded inputs (the ledger in :mod:`repro.store.sources` keeps a
    pure re-render closure per load). A mismatch means the store entry
    is stale, tampered with, or mis-keyed - exactly the cross-process
    failure A005 cannot see, because A005 compares sources retained by
    *this* process's renders."""
    from repro.store.sources import loaded_source_stats, loaded_sources

    findings: list[Finding] = []
    for unit, source, render in loaded_sources():
        try:
            fresh = render()
        except Exception as exc:
            findings.append(make_finding(
                "A009", unit,
                f"re-render of a store-loaded source raised "
                f"{type(exc).__name__}: {exc}"))
            continue
        if fresh != source:
            findings.append(make_finding(
                "A009", unit,
                "store-loaded source differs from a fresh render of "
                "its recorded inputs (stale or tampered cache entry: "
                "clear the store root or bump the generator)"))
    dropped = loaded_source_stats()["audit_dropped"]
    if dropped:
        findings.append(make_finding(
            "A009", "store:loads",
            f"{dropped} store loads overflowed the audit ledger and "
            f"were not checked (raise the cap or audit in smaller "
            f"runs)"))
    return findings


# ---------------------------------------------------------------------------
# suite driver (the repro audit CLI)
# ---------------------------------------------------------------------------

def audit_suite(apps=None, designs=None,
                scale: float = 1.0) -> dict[str, list[Finding]]:
    """Run the requested kernel x design grid with jit+memfast on, then
    statically audit every module those runs compiled (blocks, suffixes,
    traces, memfast handlers) plus each kernel's batch record modules,
    the replay walker, and the column engines a small lockstep sweep
    (first kernel, every requested design, traced and untraced)
    materializes. Returns ``{unit: findings}``."""
    from repro.batch.record import recording_costs
    from repro.jit.cache import get_compiled
    from repro.sim.config import DESIGNS, SimConfig
    from repro.sim.factory import build_system
    from repro.sim.sweep import run_grid
    from repro.workloads import ALL_WORKLOADS, build_workload

    apps = list(apps) if apps else list(ALL_WORKLOADS)
    designs = list(designs) if designs else list(DESIGNS)
    results: dict[str, list[Finding]] = {
        "batch:replay": audit_replay_module()}
    for app in apps:
        program = build_workload(app, scale)
        findings: list[Finding] = []
        record_costs_seen = set()
        for design in designs:
            system = build_system(program, design, None,
                                  SimConfig(jit=True, memfast=True))
            system.run()
            jit_state = getattr(system.core, "_jit_state", None)
            if jit_state is not None:
                findings.extend(audit_compiled(jit_state.compiled))
                rcosts = recording_costs(system.core.costs)
                if rcosts not in record_costs_seen:
                    record_costs_seen.add(rcosts)
                    findings.extend(audit_compiled(
                        get_compiled(program, rcosts, record=True)))
            findings.extend(audit_memfast_design(system.design))
        results[app] = findings

    # materialize column engines for every requested design shape, in
    # both traced and untraced epilogue variants, then audit them
    for trace in (None, "trace1"):
        run_grid(apps[:1], designs, trace, jobs=1, scale=scale,
                 verify=False, jit=True, memfast=True, batch=True,
                 lockstep=True)
    results["lockstep:engines"] = audit_lockstep_engines()
    results["store:loads"] = audit_store_loads()
    return results
