"""The lint rule passes.

Each pass is a function ``(ctx) -> list[Finding]`` over a shared
:class:`LintContext`; :func:`run_rules` executes every registered pass.
Rules only fire on *reachable* instructions (except L003, which is the
reachability report itself), so one root cause does not cascade into a
finding storm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.isa import opcodes as oc
from repro.isa.program import DATA_BASE, Program
from repro.lint.cfg import CFG, build_cfg
from repro.lint.dataflow import (const_states, defs_uses, live_out,
                                 reaching_written)
from repro.lint.findings import Finding, make_finding

_U32 = 0xFFFFFFFF

#: per-opcode required alignment for the memory rules
_ALIGN = {oc.LW: 4, oc.SW: 4, oc.LH: 2, oc.LHU: 2, oc.SH: 2,
          oc.LB: 1, oc.LBU: 1, oc.SB: 1}
#: access width in bytes (for the bounds check)
_WIDTH = dict(_ALIGN)


@dataclass
class LintContext:
    """Everything a rule pass needs, computed lazily and shared."""

    program: Program
    cfg: CFG = field(init=False)

    def __post_init__(self) -> None:
        self.cfg = build_cfg(self.program.instructions)

    def loc(self, idx: int) -> str:
        return f"{self.program.name}@{idx}"

    @cached_property
    def reaching(self) -> list[int]:
        return reaching_written(self.cfg, self.program.instructions)

    @cached_property
    def liveness(self) -> list[int]:
        return live_out(self.cfg, self.program.instructions)

    @cached_property
    def consts(self) -> list[dict[int, int]]:
        return const_states(self.cfg, self.program.instructions)


def _reg(r: int) -> str:
    return f"{oc.REGISTER_NAMES[r]} (x{r})"


def check_uninit_reads(ctx: LintContext) -> list[Finding]:
    """L001: a reachable read of a register no write ever reaches.

    Registers power up as zero in this machine, so executing such a read
    is deterministic - but depending on an implicit zero is almost always
    a kernel bug (a missing ``li``), and never survives a refactor.
    """
    out = []
    reaching = ctx.reaching
    for i, ins in enumerate(ctx.program.instructions):
        if not ctx.cfg.reachable[i]:
            continue
        _d, uses = defs_uses(ins)
        seen = set()
        for u in uses:
            if u in seen or reaching[i] >> u & 1:
                continue
            seen.add(u)
            out.append(make_finding("L001", ctx.loc(i),
                                    f"reads {_reg(u)}, which is never "
                                    f"written on any path from entry"))
    return out


def check_dead_stores(ctx: LintContext) -> list[Finding]:
    """L002: a register write that nothing can ever read.

    Writes to ``x0`` are deliberate discards (``j`` is ``jal x0, ...``)
    and ra/sp count as live at exit (see dataflow.EXIT_LIVE), so the
    findings left are genuinely dead computation.
    """
    out = []
    liveness = ctx.liveness
    for i, ins in enumerate(ctx.program.instructions):
        if not ctx.cfg.reachable[i]:
            continue
        d, _uses = defs_uses(ins)
        if d is None or d == 0:
            continue
        if ins[0] in oc.LOAD_FORMAT or ins[0] in oc.JR_FORMAT:
            # loads touch the memory system (timing/allocation side
            # effects a kernel may rely on); jalr's link write is the
            # return-address protocol
            continue
        if not (liveness[i] >> d & 1):
            out.append(make_finding("L002", ctx.loc(i),
                                    f"value written to {_reg(d)} is never "
                                    f"read (dead store)"))
    return out


def check_unreachable(ctx: LintContext) -> list[Finding]:
    """L003: basic blocks no path from the entry reaches."""
    out = []
    for blk in ctx.cfg.blocks:
        if blk.reachable:
            continue
        count = blk.end - blk.start
        out.append(make_finding("L003", ctx.loc(blk.start),
                                f"unreachable block of {count} "
                                f"instruction{'s' if count != 1 else ''} "
                                f"(indices {blk.start}..{blk.end - 1})"))
    return out


def check_branch_targets(ctx: LintContext) -> list[Finding]:
    """L004: branch/jump targets outside ``[0, len(program))``.

    :meth:`Program.validate` refuses such programs at build time; the lint
    pass exists so hand-constructed or mutated programs get a diagnostic
    with the same rule plumbing instead of a hard error.
    """
    out = []
    n = len(ctx.program.instructions)
    for i, (op, _a, b, c) in enumerate(ctx.program.instructions):
        target = None
        if op in oc.B_FORMAT:
            target = c
        elif op in oc.J_FORMAT:
            target = b
        if target is None or (isinstance(target, int) and 0 <= target < n):
            continue
        out.append(make_finding("L004", ctx.loc(i),
                                f"{oc.MNEMONICS[op]} target {target!r} is "
                                f"outside the program (0..{n - 1})"))
    return out


def check_memory_accesses(ctx: LintContext) -> list[Finding]:
    """L005/L006/L008: constant-resolvable addresses that are misaligned,
    out of the data address space, or below the data segment base."""
    out = []
    consts = ctx.consts
    mem_bytes = ctx.program.mem_bytes
    for i, (op, _a, b, c) in enumerate(ctx.program.instructions):
        if op not in _ALIGN or not ctx.cfg.reachable[i]:
            continue
        base = consts[i].get(b)
        if base is None:
            continue
        addr = (base + c) & _U32
        mnem = oc.MNEMONICS[op]
        align = _ALIGN[op]
        if addr % align:
            out.append(make_finding(
                "L005", ctx.loc(i),
                f"{mnem} address {addr:#x} is not {align}-byte aligned"))
            continue
        if addr + _WIDTH[op] > mem_bytes:
            out.append(make_finding(
                "L006", ctx.loc(i),
                f"{mnem} address {addr:#x} is outside the "
                f"{mem_bytes:#x}-byte data address space"))
        elif addr < DATA_BASE:
            out.append(make_finding(
                "L008", ctx.loc(i),
                f"{mnem} address {addr:#x} is below the data segment "
                f"base ({DATA_BASE:#x})"))
    return out


def check_fall_off_end(ctx: LintContext) -> list[Finding]:
    """L007: a reachable path can run past the last instruction."""
    return [make_finding("L007", ctx.loc(i),
                         "execution can fall through past the end of the "
                         "program (no trailing halt on this path)")
            for i in ctx.cfg.falls_off_end]


#: Registered passes, in reporting order.
ALL_RULES = (
    check_branch_targets,
    check_fall_off_end,
    check_unreachable,
    check_uninit_reads,
    check_dead_stores,
    check_memory_accesses,
)


def run_rules(program: Program) -> list[Finding]:
    """Run every registered pass over one program."""
    ctx = LintContext(program)
    findings: list[Finding] = []
    for rule in ALL_RULES:
        findings.extend(rule(ctx))
    return findings
