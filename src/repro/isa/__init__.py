"""repro.isa - the RV32-like guest instruction set.

Public surface: :class:`ProgramBuilder` (the DSL every workload uses),
:class:`Program`, :func:`assemble`, :func:`disassemble`, and the opcode
tables in :mod:`repro.isa.opcodes`.
"""

from repro.isa.assembler import assemble
from repro.isa.builder import Label, ProgramBuilder, Reg
from repro.isa.disasm import disassemble, disassemble_one
from repro.isa.program import DATA_BASE, Program

__all__ = [
    "DATA_BASE",
    "Label",
    "Program",
    "ProgramBuilder",
    "Reg",
    "assemble",
    "disassemble",
    "disassemble_one",
]
