"""Opcode definitions for the repro RISC ISA.

The ISA is a small RV32I-like 32-bit integer instruction set, rich enough to
express the MediaBench/MiBench kernels while staying fast to interpret.
Opcodes are plain ints; instructions are 4-tuples ``(op, a, b, c)`` whose
field meaning depends on the opcode's format (see :mod:`repro.isa.
instructions`).

Formats
-------
``R``    ``(op, rd, rs1, rs2)``        register-register ALU
``I``    ``(op, rd, rs1, imm)``        register-immediate ALU
``LI``   ``(op, rd, imm, 0)``          load immediate (full 32-bit)
``LOAD`` ``(op, rd, rs1, imm)``        ``rd = mem[rs1 + imm]``
``STORE`` ``(op, rs2, rs1, imm)``      ``mem[rs1 + imm] = rs2``
``B``    ``(op, rs1, rs2, target)``    conditional branch to instruction index
``J``    ``(op, rd, target, 0)``       jump-and-link to instruction index
``JR``   ``(op, rd, rs1, imm)``        jump-and-link-register
``SYS``  ``(op, 0, 0, 0)``             halt / nop
"""

from __future__ import annotations

# ALU register-register (format R)
ADD = 0
SUB = 1
MUL = 2
MULH = 3  # high 32 bits of signed 64-bit product
DIV = 4  # signed division, truncating toward zero
REM = 5  # signed remainder
DIVU = 6
REMU = 7
AND = 8
OR = 9
XOR = 10
SLL = 11
SRL = 12
SRA = 13
SLT = 14
SLTU = 15

# ALU register-immediate (format I)
ADDI = 16
ANDI = 17
ORI = 18
XORI = 19
SLLI = 20
SRLI = 21
SRAI = 22
SLTI = 23
SLTIU = 24

# Constants (format LI)
LI = 25

# Memory (formats LOAD / STORE); word = 4 bytes, addresses are byte addresses
LW = 26
SW = 27
LB = 28  # sign-extending byte load
LBU = 29
SB = 30
LH = 31  # sign-extending halfword load
LHU = 32
SH = 33

# Control flow (formats B / J / JR)
BEQ = 34
BNE = 35
BLT = 36
BGE = 37
BLTU = 38
BGEU = 39
JAL = 40
JALR = 41

# System (format SYS)
HALT = 42
NOP = 43

NUM_OPCODES = 44

R_FORMAT = frozenset(
    [ADD, SUB, MUL, MULH, DIV, REM, DIVU, REMU, AND, OR, XOR, SLL, SRL, SRA, SLT, SLTU]
)
I_FORMAT = frozenset([ADDI, ANDI, ORI, XORI, SLLI, SRLI, SRAI, SLTI, SLTIU])
LI_FORMAT = frozenset([LI])
LOAD_FORMAT = frozenset([LW, LB, LBU, LH, LHU])
STORE_FORMAT = frozenset([SW, SB, SH])
B_FORMAT = frozenset([BEQ, BNE, BLT, BGE, BLTU, BGEU])
J_FORMAT = frozenset([JAL])
JR_FORMAT = frozenset([JALR])
SYS_FORMAT = frozenset([HALT, NOP])

MEMORY_OPS = LOAD_FORMAT | STORE_FORMAT

MNEMONICS = {
    ADD: "add", SUB: "sub", MUL: "mul", MULH: "mulh", DIV: "div", REM: "rem",
    DIVU: "divu", REMU: "remu", AND: "and", OR: "or", XOR: "xor", SLL: "sll",
    SRL: "srl", SRA: "sra", SLT: "slt", SLTU: "sltu",
    ADDI: "addi", ANDI: "andi", ORI: "ori", XORI: "xori", SLLI: "slli",
    SRLI: "srli", SRAI: "srai", SLTI: "slti", SLTIU: "sltiu",
    LI: "li",
    LW: "lw", SW: "sw", LB: "lb", LBU: "lbu", SB: "sb", LH: "lh", LHU: "lhu",
    SH: "sh",
    BEQ: "beq", BNE: "bne", BLT: "blt", BGE: "bge", BLTU: "bltu", BGEU: "bgeu",
    JAL: "jal", JALR: "jalr",
    HALT: "halt", NOP: "nop",
}

OPCODE_BY_MNEMONIC = {name: op for op, name in MNEMONICS.items()}

# Canonical RISC-V-style register names; x0 is hardwired to zero.
REGISTER_NAMES = (
    ["zero", "ra", "sp", "gp", "tp"]
    + [f"t{i}" for i in range(3)]      # x5-x7
    + ["s0", "s1"]                     # x8-x9
    + [f"a{i}" for i in range(8)]      # x10-x17
    + [f"s{i}" for i in range(2, 12)]  # x18-x27
    + [f"t{i}" for i in range(3, 7)]   # x28-x31
)
assert len(REGISTER_NAMES) == 32

REGISTER_BY_NAME = {name: i for i, name in enumerate(REGISTER_NAMES)}
REGISTER_BY_NAME.update({f"x{i}": i for i in range(32)})

NUM_REGISTERS = 32
