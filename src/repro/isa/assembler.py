"""Two-pass text assembler for the repro ISA.

Accepts a conventional assembly dialect::

        li   t0, 10
        li   t1, 0
    loop:
        add  t1, t1, t0
        addi t0, t0, -1
        bne  t0, zero, loop
        sw   t1, 0(a0)
        halt

    .data 0x2000
        .word 1, 2, 3
        .byte 0xde, 0xad

Loads/stores use ``offset(base)`` syntax. Branch/jump targets are labels.
``.data <addr>`` switches to the data segment at a byte address; ``.word``
and ``.byte`` place initialized data there.

Two meta-only directives feed the intermittency linter (rules
L009-L014): ``.ckpt`` marks a static checkpoint boundary at the current
instruction position, and ``.waive <RULE>, <justification>`` suppresses
one rule for the program. Both land in ``Program.meta`` and emit no
instruction, mirroring :meth:`ProgramBuilder.checkpoint` /
:meth:`ProgramBuilder.waive_lint`.
"""

from __future__ import annotations

import re

from repro.errors import AssemblyError
from repro.isa import opcodes as oc
from repro.isa.program import DEFAULT_MEM_BYTES, Program

_MEM_RE = re.compile(r"^(-?\w+)\((\w+)\)$")


def _parse_int(tok: str, line_no: int) -> int:
    try:
        return int(tok, 0)
    except ValueError:
        raise AssemblyError(f"line {line_no}: expected integer, got {tok!r}") from None


def _parse_reg(tok: str, line_no: int) -> int:
    r = oc.REGISTER_BY_NAME.get(tok)
    if r is None:
        raise AssemblyError(f"line {line_no}: unknown register {tok!r}")
    return r


def assemble(text: str, name: str = "asm",
             mem_bytes: int = DEFAULT_MEM_BYTES) -> Program:
    """Assemble source text into a validated :class:`Program`."""
    labels: dict[str, int] = {}
    pending: list[tuple] = []  # (op, a, b, c) with label names unresolved
    data: dict[int, int] = {}
    symbols: dict[str, int] = {}
    checkpoints: list[int] = []
    waivers: list[dict[str, str]] = []
    in_data = False
    data_cursor = 0

    def split_operands(rest: str) -> list[str]:
        return [t.strip() for t in rest.split(",") if t.strip()] if rest else []

    lines = text.splitlines()
    # Pass 1: collect instructions with label placeholders and data.
    for line_no, raw in enumerate(lines, start=1):
        line = raw.split("#", 1)[0].split("//", 1)[0].strip()
        if not line:
            continue
        # labels (possibly several, possibly followed by an instruction)
        while True:
            m = re.match(r"^(\w+):\s*(.*)$", line)
            if not m:
                break
            lbl, line = m.group(1), m.group(2)
            if lbl in labels:
                raise AssemblyError(f"line {line_no}: duplicate label {lbl!r}")
            labels[lbl] = len(pending)
        if not line:
            continue
        parts = line.split(None, 1)
        mnem = parts[0].lower()
        rest = parts[1] if len(parts) > 1 else ""
        ops = split_operands(rest)

        if mnem == ".data":
            in_data = True
            if len(ops) != 1:
                raise AssemblyError(f"line {line_no}: .data needs an address")
            data_cursor = _parse_int(ops[0], line_no)
            continue
        if mnem == ".text":
            in_data = False
            continue
        if mnem == ".word":
            if not in_data:
                raise AssemblyError(f"line {line_no}: .word outside .data")
            if data_cursor % 4:
                data_cursor = (data_cursor + 3) & ~3
            for tok in ops:
                data[data_cursor >> 2] = _parse_int(tok, line_no) & 0xFFFFFFFF
                data_cursor += 4
            continue
        if mnem == ".byte":
            if not in_data:
                raise AssemblyError(f"line {line_no}: .byte outside .data")
            for tok in ops:
                val = _parse_int(tok, line_no) & 0xFF
                widx, shift = data_cursor >> 2, (data_cursor & 3) * 8
                data[widx] = (data.get(widx, 0) & ~(0xFF << shift)) | (val << shift)
                data_cursor += 1
            continue
        if mnem == ".symbol":
            if len(ops) != 2:
                raise AssemblyError(f"line {line_no}: .symbol name, addr")
            symbols[ops[0]] = _parse_int(ops[1], line_no)
            continue
        if mnem == ".ckpt":
            if in_data:
                raise AssemblyError(f"line {line_no}: .ckpt inside .data")
            if ops:
                raise AssemblyError(f"line {line_no}: .ckpt takes no operands")
            checkpoints.append(len(pending))
            continue
        if mnem == ".waive":
            if len(ops) < 2:
                raise AssemblyError(
                    f"line {line_no}: .waive RULE, justification")
            waivers.append({"rule": ops[0],
                            "reason": ", ".join(ops[1:])})
            continue
        if in_data:
            raise AssemblyError(f"line {line_no}: instruction inside .data")

        op = oc.OPCODE_BY_MNEMONIC.get(mnem)
        # pseudo-instructions
        if op is None:
            if mnem == "mv" and len(ops) == 2:
                pending.append((oc.ADDI, _parse_reg(ops[0], line_no),
                                _parse_reg(ops[1], line_no), 0))
                continue
            if mnem == "j" and len(ops) == 1:
                pending.append((oc.JAL, 0, ops[0], 0))
                continue
            if mnem == "ret" and not ops:
                pending.append((oc.JALR, 0, 1, 0))
                continue
            if mnem == "call" and len(ops) == 1:
                pending.append((oc.JAL, 1, ops[0], 0))
                continue
            raise AssemblyError(f"line {line_no}: unknown mnemonic {mnem!r}")

        if op in oc.R_FORMAT:
            if len(ops) != 3:
                raise AssemblyError(f"line {line_no}: {mnem} rd, rs1, rs2")
            pending.append((op, _parse_reg(ops[0], line_no),
                            _parse_reg(ops[1], line_no),
                            _parse_reg(ops[2], line_no)))
        elif op in oc.I_FORMAT:
            if len(ops) != 3:
                raise AssemblyError(f"line {line_no}: {mnem} rd, rs1, imm")
            pending.append((op, _parse_reg(ops[0], line_no),
                            _parse_reg(ops[1], line_no),
                            _parse_int(ops[2], line_no)))
        elif op == oc.LI:
            if len(ops) != 2:
                raise AssemblyError(f"line {line_no}: li rd, imm")
            pending.append((op, _parse_reg(ops[0], line_no),
                            _parse_int(ops[1], line_no) & 0xFFFFFFFF, 0))
        elif op in oc.LOAD_FORMAT or op in oc.STORE_FORMAT:
            if len(ops) != 2:
                raise AssemblyError(f"line {line_no}: {mnem} reg, off(base)")
            m = _MEM_RE.match(ops[1].replace(" ", ""))
            if not m:
                raise AssemblyError(
                    f"line {line_no}: expected off(base), got {ops[1]!r}")
            off = _parse_int(m.group(1), line_no)
            base = _parse_reg(m.group(2), line_no)
            pending.append((op, _parse_reg(ops[0], line_no), base, off))
        elif op in oc.B_FORMAT:
            if len(ops) != 3:
                raise AssemblyError(f"line {line_no}: {mnem} rs1, rs2, label")
            pending.append((op, _parse_reg(ops[0], line_no),
                            _parse_reg(ops[1], line_no), ops[2]))
        elif op == oc.JAL:
            if len(ops) != 2:
                raise AssemblyError(f"line {line_no}: jal rd, label")
            pending.append((op, _parse_reg(ops[0], line_no), ops[1], 0))
        elif op == oc.JALR:
            if len(ops) != 3:
                raise AssemblyError(f"line {line_no}: jalr rd, rs1, imm")
            pending.append((op, _parse_reg(ops[0], line_no),
                            _parse_reg(ops[1], line_no),
                            _parse_int(ops[2], line_no)))
        elif op in oc.SYS_FORMAT:
            pending.append((op, 0, 0, 0))
        else:  # pragma: no cover - formats are exhaustive
            raise AssemblyError(f"line {line_no}: unhandled opcode {mnem!r}")

    # Pass 2: resolve label targets.
    def resolve(tok, line_desc):
        if isinstance(tok, str):
            if tok not in labels:
                raise AssemblyError(f"{line_desc}: undefined label {tok!r}")
            return labels[tok]
        return tok

    instrs = []
    for idx, (op, a, b, c) in enumerate(pending):
        if op in oc.B_FORMAT:
            c = resolve(c, f"instr {idx}")
        elif op == oc.JAL:
            b = resolve(b, f"instr {idx}")
        instrs.append((op, a, b, c))

    prog = Program(name=name, instructions=instrs, data=data, labels=labels,
                   symbols=symbols, mem_bytes=mem_bytes)
    if checkpoints:
        prog.meta["checkpoints"] = sorted(
            {i for i in checkpoints if i < len(instrs)})
    if waivers:
        prog.meta["lint_waivers"] = waivers
    prog.validate()
    return prog
