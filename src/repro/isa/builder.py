"""Structured program builder DSL.

All 23 benchmark kernels are written against this API. Registers are a
distinct :class:`Reg` type so that plain ints are always immediates — the
builder can never silently confuse ``5`` (constant) with ``x5`` (register).

It provides:

* named register allocation with scoped scratch registers,
* data-segment placement (words, bytes, zero-filled space),
* one emit method per ISA mnemonic, with immediates auto-materialized into
  the assembler temp register where the ISA needs a register operand,
* structured control flow (``for_range``, ``while_``, ``loop``, ``if_``,
  ``if_else``) implemented with labels and conditional branches, and
* a tiny call/return convention (``call``/``ret``/``push``/``pop``) with the
  stack at the top of data memory.

Example:
    >>> b = ProgramBuilder("sum")
    >>> acc, i = b.regs("acc", "i")
    >>> b.li(acc, 0)
    >>> with b.for_range(i, 0, 10):
    ...     b.add(acc, acc, i)
    >>> out = b.space_words(1, "out")
    >>> b.sw_addr(acc, out)
    >>> prog = b.build()
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.errors import AssemblyError
from repro.isa import opcodes as oc
from repro.isa.program import DATA_BASE, DEFAULT_MEM_BYTES, Program

_U32 = 0xFFFFFFFF

# Condition name -> (branch opcode, swap operands?)
_CONDS = {
    "==": (oc.BEQ, False),
    "!=": (oc.BNE, False),
    "<": (oc.BLT, False),
    ">=": (oc.BGE, False),
    ">": (oc.BLT, True),
    "<=": (oc.BGE, True),
    "<u": (oc.BLTU, False),
    ">=u": (oc.BGEU, False),
    ">u": (oc.BLTU, True),
    "<=u": (oc.BGEU, True),
}

_NEGATED = {
    "==": "!=", "!=": "==", "<": ">=", ">=": "<", ">": "<=", "<=": ">",
    "<u": ">=u", ">=u": "<u", ">u": "<=u", "<=u": ">u",
}


class Reg:
    """A register operand. Created only by the builder."""

    __slots__ = ("n", "name")

    def __init__(self, n: int, name: str | None = None):
        self.n = n
        self.name = name or oc.REGISTER_NAMES[n]

    def __repr__(self) -> str:
        return f"Reg({self.name}=x{self.n})"


class Label:
    """A code label; resolved to an instruction index at :meth:`ProgramBuilder.build`."""

    __slots__ = ("name", "index")

    def __init__(self, name: str):
        self.name = name
        self.index: int | None = None

    def __repr__(self) -> str:
        return f"Label({self.name}, index={self.index})"


class LoopCtx:
    """Handle for an open :meth:`ProgramBuilder.loop`, exposing break/continue."""

    def __init__(self, builder: "ProgramBuilder", head: Label, end: Label):
        self._b = builder
        self.head = head
        self.end = end

    def break_(self) -> None:
        self._b.j(self.end)

    def break_if(self, rs1, cond: str, rs2) -> None:
        self._b.branch(rs1, cond, rs2, self.end)

    def continue_(self) -> None:
        self._b.j(self.head)

    def continue_if(self, rs1, cond: str, rs2) -> None:
        self._b.branch(rs1, cond, rs2, self.head)


class ProgramBuilder:
    """Incrementally builds a :class:`~repro.isa.program.Program`."""

    # Registers handed out by reg(): x3..x30. Reserved: x0 (zero), x1 (ra),
    # x2 (sp), x31 (assembler temp for materialized immediates).
    _POOL = tuple(range(3, 31))
    _AT = 31

    def __init__(self, name: str = "program", mem_bytes: int = DEFAULT_MEM_BYTES):
        if mem_bytes % 4 or mem_bytes <= DATA_BASE:
            raise AssemblyError("mem_bytes must be a multiple of 4 > DATA_BASE")
        self.name = name
        self.mem_bytes = mem_bytes
        self.zero = Reg(0)
        self.ra = Reg(1)
        self.sp = Reg(2)
        self.at = Reg(self._AT)
        self._instrs: list[list] = []
        self._data: dict[int, int] = {}
        self._symbols: dict[str, int] = {}
        self._labels: dict[str, Label] = {}
        self._free = list(self._POOL)
        self._used: dict[int, str] = {}
        self._data_cursor = DATA_BASE
        self._label_seq = 0
        self._stack_top = mem_bytes - 64
        self._checkpoints: list[int] = []
        self._lint_waivers: list[tuple[str, str]] = []
        # runtime prologue: initialize the stack pointer
        self.li(self.sp, self._stack_top)

    # ------------------------------------------------------------------
    # operand coercion
    # ------------------------------------------------------------------
    @staticmethod
    def _r(x, what: str = "operand") -> int:
        if isinstance(x, Reg):
            return x.n
        raise AssemblyError(f"{what} must be a Reg, got {x!r}")

    def _rv(self, x, what: str = "operand") -> int:
        """Coerce a register-or-int operand to a register index, emitting an
        LI into the assembler temp for int immediates."""
        if isinstance(x, Reg):
            return x.n
        if isinstance(x, int) and not isinstance(x, bool):
            if x == 0:
                return 0
            self.li(self.at, x)
            return self._AT
        raise AssemblyError(f"{what} must be a Reg or int, got {x!r}")

    # ------------------------------------------------------------------
    # register management
    # ------------------------------------------------------------------
    def reg(self, name: str | None = None) -> Reg:
        """Allocate a free register, optionally tagging it with a debug name."""
        if not self._free:
            raise AssemblyError(
                f"{self.name}: out of registers; in use: {sorted(self._used.values())}"
            )
        n = self._free.pop(0)
        self._used[n] = name or f"r{n}"
        return Reg(n, name)

    def regs(self, *names: str) -> list[Reg]:
        return [self.reg(n) for n in names]

    def free(self, *rs: Reg) -> None:
        for r in rs:
            if r.n not in self._used:
                raise AssemblyError(f"register x{r.n} is not allocated")
            del self._used[r.n]
            self._free.insert(0, r.n)

    @contextmanager
    def scratch(self, *names: str):
        """Scoped scratch registers, freed on exit.

        Yields a single Reg for one name, else a list of Regs.
        """
        rs = [self.reg(n) for n in (names or ("tmp",))]
        try:
            yield rs[0] if len(rs) == 1 else rs
        finally:
            self.free(*rs)

    # ------------------------------------------------------------------
    # data segment
    # ------------------------------------------------------------------
    def _align4(self) -> None:
        self._data_cursor = (self._data_cursor + 3) & ~3

    def _place(self, nbytes: int, name: str | None) -> int:
        self._align4()
        addr = self._data_cursor
        self._data_cursor += nbytes
        if self._data_cursor >= self._stack_top - 4096:
            raise AssemblyError(f"{self.name}: data segment overflows into stack")
        if name:
            if name in self._symbols:
                raise AssemblyError(f"duplicate data symbol {name!r}")
            self._symbols[name] = addr
        return addr

    def data_words(self, values, name: str | None = None) -> int:
        """Place initialized 32-bit words; returns the base byte address."""
        values = list(values)
        addr = self._place(4 * len(values), name)
        for i, v in enumerate(values):
            self._data[(addr >> 2) + i] = v & _U32
        return addr

    def data_bytes(self, bs: bytes, name: str | None = None) -> int:
        """Place initialized bytes (little-endian packed); returns base address."""
        addr = self._place(len(bs), name)
        for i, byte in enumerate(bs):
            widx = (addr + i) >> 2
            shift = ((addr + i) & 3) * 8
            self._data[widx] = (self._data.get(widx, 0) | (byte << shift)) & _U32
        return addr

    def space_words(self, nwords: int, name: str | None = None) -> int:
        """Reserve zero-initialized words; returns the base byte address."""
        return self._place(4 * nwords, name)

    def space_bytes(self, nbytes: int, name: str | None = None) -> int:
        return self._place(nbytes, name)

    def symbol(self, name: str) -> int:
        return self._symbols[name]

    # ------------------------------------------------------------------
    # low-level emission
    # ------------------------------------------------------------------
    def _emit(self, op, a, b, c) -> None:
        self._instrs.append([op, a, b, c])

    def label(self, name: str | None = None) -> Label:
        self._label_seq += 1
        lbl = Label(name or f"L{self._label_seq}")
        if lbl.name in self._labels:
            raise AssemblyError(f"duplicate label {lbl.name!r}")
        self._labels[lbl.name] = lbl
        return lbl

    def bind(self, lbl: Label) -> None:
        if lbl.index is not None:
            raise AssemblyError(f"label {lbl.name!r} bound twice")
        lbl.index = len(self._instrs)

    def here(self, name: str | None = None) -> Label:
        """Create a label bound to the current position."""
        lbl = self.label(name)
        self.bind(lbl)
        return lbl

    # ------------------------------------------------------------------
    # intermittency annotations (meta-only: zero dynamic effect)
    # ------------------------------------------------------------------
    def checkpoint(self) -> None:
        """Mark a static checkpoint boundary at the current position.

        The marker is carried in ``Program.meta["checkpoints"]`` only -
        no instruction is emitted, so the instruction stream, the JIT
        content key, and every golden trace are untouched. The
        intermittency linter (``repro lint --intermittent``, rules
        L009-L014) treats the boundary as committing all register and
        NVM state *before* the marked instruction executes: place it at
        the top of a loop body and each iteration becomes its own
        re-executable region.
        """
        self._checkpoints.append(len(self._instrs))

    def waive_lint(self, rule_id: str, reason: str) -> None:
        """Suppress a lint rule for this program, with a justification.

        The waiver rides in ``Program.meta["lint_waivers"]``; the lint
        runner still reports the matching findings but marks them waived
        (printing ``reason``) and they stop affecting the exit code.
        """
        if not reason or not reason.strip():
            raise AssemblyError(
                f"{self.name}: waiver for {rule_id} needs a justification")
        self._lint_waivers.append((rule_id, reason.strip()))

    # ALU: rs2 may be a Reg or an int immediate (auto-selects the I-form
    # where one exists, else materializes via the assembler temp).
    def _alu(self, rop: int, iop: int | None, rd: Reg, rs1: Reg, rs2,
             mask: bool = False) -> None:
        d, s1 = self._r(rd, "rd"), self._r(rs1, "rs1")
        if isinstance(rs2, Reg):
            self._emit(rop, d, s1, rs2.n)
        elif isinstance(rs2, int) and not isinstance(rs2, bool):
            if iop is not None:
                self._emit(iop, d, s1, rs2 & _U32 if mask else rs2)
            else:
                self._emit(rop, d, s1, self._rv(rs2, "rs2"))
        else:
            raise AssemblyError(f"rs2 must be Reg or int, got {rs2!r}")

    def add(self, rd, rs1, rs2):
        self._alu(oc.ADD, oc.ADDI, rd, rs1, rs2)

    def sub(self, rd, rs1, rs2):
        if isinstance(rs2, int) and not isinstance(rs2, bool):
            self._emit(oc.ADDI, self._r(rd), self._r(rs1), -rs2)
        else:
            self._alu(oc.SUB, None, rd, rs1, rs2)

    def mul(self, rd, rs1, rs2):
        self._alu(oc.MUL, None, rd, rs1, rs2)

    def mulh(self, rd, rs1, rs2):
        self._alu(oc.MULH, None, rd, rs1, rs2)

    def div(self, rd, rs1, rs2):
        self._alu(oc.DIV, None, rd, rs1, rs2)

    def rem(self, rd, rs1, rs2):
        self._alu(oc.REM, None, rd, rs1, rs2)

    def divu(self, rd, rs1, rs2):
        self._alu(oc.DIVU, None, rd, rs1, rs2)

    def remu(self, rd, rs1, rs2):
        self._alu(oc.REMU, None, rd, rs1, rs2)

    def and_(self, rd, rs1, rs2):
        self._alu(oc.AND, oc.ANDI, rd, rs1, rs2, mask=True)

    def or_(self, rd, rs1, rs2):
        self._alu(oc.OR, oc.ORI, rd, rs1, rs2, mask=True)

    def xor(self, rd, rs1, rs2):
        self._alu(oc.XOR, oc.XORI, rd, rs1, rs2, mask=True)

    def sll(self, rd, rs1, rs2):
        if isinstance(rs2, int):
            self._emit(oc.SLLI, self._r(rd), self._r(rs1), rs2 & 31)
        else:
            self._alu(oc.SLL, None, rd, rs1, rs2)

    def srl(self, rd, rs1, rs2):
        if isinstance(rs2, int):
            self._emit(oc.SRLI, self._r(rd), self._r(rs1), rs2 & 31)
        else:
            self._alu(oc.SRL, None, rd, rs1, rs2)

    def sra(self, rd, rs1, rs2):
        if isinstance(rs2, int):
            self._emit(oc.SRAI, self._r(rd), self._r(rs1), rs2 & 31)
        else:
            self._alu(oc.SRA, None, rd, rs1, rs2)

    def slt(self, rd, rs1, rs2):
        self._alu(oc.SLT, oc.SLTI, rd, rs1, rs2)

    def sltu(self, rd, rs1, rs2):
        self._alu(oc.SLTU, oc.SLTIU, rd, rs1, rs2)

    # pseudo-ops --------------------------------------------------------
    def li(self, rd, imm: int):
        self._emit(oc.LI, self._r(rd, "rd"), imm & _U32, 0)

    def mv(self, rd, rs):
        self._emit(oc.ADDI, self._r(rd), self._r(rs), 0)

    def not_(self, rd, rs):
        self._emit(oc.XORI, self._r(rd), self._r(rs), _U32)

    def neg(self, rd, rs):
        self._emit(oc.SUB, self._r(rd), 0, self._r(rs))

    def seqz(self, rd, rs):
        self._emit(oc.SLTIU, self._r(rd), self._r(rs), 1)

    def snez(self, rd, rs):
        self._emit(oc.SLTU, self._r(rd), 0, self._r(rs))

    def nop(self):
        self._emit(oc.NOP, 0, 0, 0)

    def halt(self):
        self._emit(oc.HALT, 0, 0, 0)

    # memory ------------------------------------------------------------
    def lw(self, rd, base, off: int = 0):
        self._emit(oc.LW, self._r(rd), self._r(base, "base"), off)

    def sw(self, val, base, off: int = 0):
        self._emit(oc.SW, self._rv(val, "val"), self._r(base, "base"), off)

    def lb(self, rd, base, off: int = 0):
        self._emit(oc.LB, self._r(rd), self._r(base, "base"), off)

    def lbu(self, rd, base, off: int = 0):
        self._emit(oc.LBU, self._r(rd), self._r(base, "base"), off)

    def sb(self, val, base, off: int = 0):
        self._emit(oc.SB, self._rv(val, "val"), self._r(base, "base"), off)

    def lh(self, rd, base, off: int = 0):
        self._emit(oc.LH, self._r(rd), self._r(base, "base"), off)

    def lhu(self, rd, base, off: int = 0):
        self._emit(oc.LHU, self._r(rd), self._r(base, "base"), off)

    def sh(self, val, base, off: int = 0):
        self._emit(oc.SH, self._rv(val, "val"), self._r(base, "base"), off)

    def lw_addr(self, rd, addr: int):
        """Load a word from a constant byte address (via the assembler temp)."""
        self.li(self.at, addr)
        self.lw(rd, self.at, 0)

    def sw_addr(self, val, addr: int):
        """Store a word to a constant byte address.

        ``val`` must be a Reg (the assembler temp holds the address).
        """
        self._r(val, "val")
        self.li(self.at, addr)
        self.sw(val, self.at, 0)

    # control flow ------------------------------------------------------
    def branch(self, rs1, cond: str, rs2, target: Label) -> None:
        """Branch to ``target`` when ``rs1 cond rs2`` holds.

        ``rs2`` may be an int immediate (materialized into the assembler
        temp, one extra LI instruction, except 0 which uses x0).
        """
        if cond not in _CONDS:
            raise AssemblyError(f"unknown condition {cond!r}")
        s1 = self._r(rs1, "rs1")
        s2 = self._rv(rs2, "rs2")
        op, swap = _CONDS[cond]
        a, bb = (s2, s1) if swap else (s1, s2)
        self._emit(op, a, bb, target)

    def j(self, target: Label) -> None:
        self._emit(oc.JAL, 0, target, 0)

    def call(self, target: Label) -> None:
        """Call a subroutine (clobbers ra; callee returns with :meth:`ret`)."""
        self._emit(oc.JAL, 1, target, 0)

    def ret(self) -> None:
        self._emit(oc.JALR, 0, 1, 0)

    def push(self, *rs: Reg) -> None:
        """Push registers onto the downward-growing stack."""
        self.addi_sp(-4 * len(rs))
        for i, r in enumerate(rs):
            self.sw(r, self.sp, 4 * i)

    def pop(self, *rs: Reg) -> None:
        """Pop registers pushed with :meth:`push` (same order)."""
        for i, r in enumerate(rs):
            self.lw(r, self.sp, 4 * i)
        self.addi_sp(4 * len(rs))

    def addi_sp(self, delta: int) -> None:
        self._emit(oc.ADDI, 2, 2, delta)

    # structured control flow -------------------------------------------
    @contextmanager
    def for_range(self, it: Reg, start, stop, step: int = 1):
        """``for it in range(start, stop, step)`` over signed 32-bit ints.

        ``start``/``stop`` may each be a Reg or an int constant. ``stop`` is
        evaluated once (copied to a scratch bound register when it is an
        int or could be clobbered is the caller's responsibility for Regs).
        """
        if step == 0:
            raise AssemblyError("for_range step must be nonzero")
        if isinstance(start, Reg):
            if start.n != it.n:
                self.mv(it, start)
        else:
            self.li(it, start)
        bound = None
        if isinstance(stop, Reg):
            stop_r = stop
        else:
            bound = self.reg("for_bound")
            self.li(bound, stop)
            stop_r = bound
        head = self.label()
        end = self.label()
        self.bind(head)
        if step > 0:
            self.branch(it, ">=", stop_r, end)
        else:
            self.branch(it, "<=", stop_r, end)
        try:
            yield it
        finally:
            self.add(it, it, step)
            self.j(head)
            self.bind(end)
            if bound is not None:
                self.free(bound)

    @contextmanager
    def loop(self):
        """Infinite loop; exit with ``ctx.break_if(...)`` / ``ctx.break_()``."""
        head = self.label()
        end = self.label()
        self.bind(head)
        ctx = LoopCtx(self, head, end)
        try:
            yield ctx
        finally:
            self.j(head)
            self.bind(end)

    @contextmanager
    def while_(self, rs1, cond: str, rs2):
        """``while rs1 cond rs2`` with the test at the top of each iteration."""
        head = self.label()
        end = self.label()
        self.bind(head)
        self.branch(rs1, _NEGATED[cond], rs2, end)
        try:
            yield
        finally:
            self.j(head)
            self.bind(end)

    @contextmanager
    def if_(self, rs1, cond: str, rs2):
        """Execute the body only when ``rs1 cond rs2`` holds."""
        end = self.label()
        self.branch(rs1, _NEGATED[cond], rs2, end)
        try:
            yield
        finally:
            self.bind(end)

    @contextmanager
    def if_else(self, rs1, cond: str, rs2):
        """If/else; the yielded callable switches to the else arm.

        >>> with b.if_else(x, "<", y) as otherwise:  # doctest: +SKIP
        ...     b.mv(m, x)
        ...     otherwise()
        ...     b.mv(m, y)
        """
        else_l = self.label()
        end = self.label()
        self.branch(rs1, _NEGATED[cond], rs2, else_l)
        state = {"taken": False}

        def otherwise():
            if state["taken"]:
                raise AssemblyError("otherwise() called twice")
            state["taken"] = True
            self.j(end)
            self.bind(else_l)

        try:
            yield otherwise
        finally:
            if not state["taken"]:
                self.bind(else_l)
            self.bind(end)

    # ------------------------------------------------------------------
    def build(self) -> Program:
        """Resolve labels and return a validated :class:`Program`."""
        if not self._instrs or self._instrs[-1][0] != oc.HALT:
            self.halt()
        resolved: list[tuple] = []
        for idx, ins in enumerate(self._instrs):
            op, a, b, c = ins
            if isinstance(c, Label):
                if c.index is None:
                    raise AssemblyError(f"unbound label {c.name!r} at instr {idx}")
                c = c.index
            if isinstance(b, Label):
                if b.index is None:
                    raise AssemblyError(f"unbound label {b.name!r} at instr {idx}")
                b = b.index
            resolved.append((op, a, b, c))
        prog = Program(
            name=self.name,
            instructions=resolved,
            data=dict(self._data),
            labels={n: l.index for n, l in self._labels.items() if l.index is not None},
            symbols=dict(self._symbols),
            mem_bytes=self.mem_bytes,
        )
        if self._checkpoints:
            n = len(resolved)
            # a marker past the trailing HALT would never be crossed
            prog.meta["checkpoints"] = sorted(
                {i for i in self._checkpoints if i < n})
        if self._lint_waivers:
            prog.meta["lint_waivers"] = [
                {"rule": rule, "reason": reason}
                for rule, reason in self._lint_waivers]
        prog.validate()
        return prog

    # aliases kept for readability in kernels ---------------------------
    def addi(self, rd, rs1, imm: int):
        self._emit(oc.ADDI, self._r(rd), self._r(rs1), imm)

    def andi(self, rd, rs1, imm: int):
        self._emit(oc.ANDI, self._r(rd), self._r(rs1), imm & _U32)

    def ori(self, rd, rs1, imm: int):
        self._emit(oc.ORI, self._r(rd), self._r(rs1), imm & _U32)

    def xori(self, rd, rs1, imm: int):
        self._emit(oc.XORI, self._r(rd), self._r(rs1), imm & _U32)

    def slli(self, rd, rs1, imm: int):
        self._emit(oc.SLLI, self._r(rd), self._r(rs1), imm & 31)

    def srli(self, rd, rs1, imm: int):
        self._emit(oc.SRLI, self._r(rd), self._r(rs1), imm & 31)

    def srai(self, rd, rs1, imm: int):
        self._emit(oc.SRAI, self._r(rd), self._r(rs1), imm & 31)
