"""Instruction construction and validation helpers.

Instructions are stored as plain 4-tuples ``(op, a, b, c)`` for interpreter
speed; this module provides typed constructors that validate operands and a
:func:`format_of` helper used by the disassembler and property tests.
"""

from __future__ import annotations

from repro.errors import AssemblyError
from repro.isa import opcodes as oc

Instr = tuple  # (op, a, b, c)

_MIN_I32 = -(1 << 31)
_MAX_U32 = (1 << 32) - 1


def _check_reg(r: int, what: str) -> int:
    if not isinstance(r, int) or not 0 <= r < oc.NUM_REGISTERS:
        raise AssemblyError(f"{what} must be a register index 0..31, got {r!r}")
    return r


def _check_imm(imm: int) -> int:
    if not isinstance(imm, int) or not _MIN_I32 <= imm <= _MAX_U32:
        raise AssemblyError(f"immediate out of 32-bit range: {imm!r}")
    return imm


def format_of(op: int) -> str:
    """Return the format name ('R', 'I', 'LI', 'LOAD', 'STORE', 'B', 'J',
    'JR', 'SYS') of an opcode."""
    if op in oc.R_FORMAT:
        return "R"
    if op in oc.I_FORMAT:
        return "I"
    if op in oc.LI_FORMAT:
        return "LI"
    if op in oc.LOAD_FORMAT:
        return "LOAD"
    if op in oc.STORE_FORMAT:
        return "STORE"
    if op in oc.B_FORMAT:
        return "B"
    if op in oc.J_FORMAT:
        return "J"
    if op in oc.JR_FORMAT:
        return "JR"
    if op in oc.SYS_FORMAT:
        return "SYS"
    raise AssemblyError(f"unknown opcode {op!r}")


def r_type(op: int, rd: int, rs1: int, rs2: int) -> Instr:
    if op not in oc.R_FORMAT:
        raise AssemblyError(f"opcode {op} is not R-format")
    return (op, _check_reg(rd, "rd"), _check_reg(rs1, "rs1"), _check_reg(rs2, "rs2"))


def i_type(op: int, rd: int, rs1: int, imm: int) -> Instr:
    if op not in oc.I_FORMAT:
        raise AssemblyError(f"opcode {op} is not I-format")
    return (op, _check_reg(rd, "rd"), _check_reg(rs1, "rs1"), _check_imm(imm))


def li(rd: int, imm: int) -> Instr:
    return (oc.LI, _check_reg(rd, "rd"), _check_imm(imm), 0)


def load(op: int, rd: int, rs1: int, imm: int) -> Instr:
    if op not in oc.LOAD_FORMAT:
        raise AssemblyError(f"opcode {op} is not a load")
    return (op, _check_reg(rd, "rd"), _check_reg(rs1, "rs1"), _check_imm(imm))


def store(op: int, rs2: int, rs1: int, imm: int) -> Instr:
    if op not in oc.STORE_FORMAT:
        raise AssemblyError(f"opcode {op} is not a store")
    return (op, _check_reg(rs2, "rs2"), _check_reg(rs1, "rs1"), _check_imm(imm))


def branch(op: int, rs1: int, rs2: int, target: int) -> Instr:
    if op not in oc.B_FORMAT:
        raise AssemblyError(f"opcode {op} is not a branch")
    return (op, _check_reg(rs1, "rs1"), _check_reg(rs2, "rs2"), target)


def jal(rd: int, target: int) -> Instr:
    return (oc.JAL, _check_reg(rd, "rd"), target, 0)


def jalr(rd: int, rs1: int, imm: int) -> Instr:
    return (oc.JALR, _check_reg(rd, "rd"), _check_reg(rs1, "rs1"), _check_imm(imm))


def halt() -> Instr:
    return (oc.HALT, 0, 0, 0)


def nop() -> Instr:
    return (oc.NOP, 0, 0, 0)
