"""Program container: instructions, labels, and the initial data image.

A :class:`Program` is the unit handed to the simulator. Instruction memory is
separate from data memory (Harvard-style, like the paper's MCU targets with
separate I/D L1 caches); instruction fetches are modeled through the I-cache
timing path but instructions themselves live in this container.

Data memory is word-addressed internally; the initial image is a dict of
``word_index -> 32-bit value`` applied on top of zero-filled NVM.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AssemblyError
from repro.isa import opcodes as oc
from repro.isa.instructions import Instr, format_of

#: Default base byte address for static data placed by the builder.
DATA_BASE = 0x1000

#: Default data-memory size in bytes (must be a power of two).
DEFAULT_MEM_BYTES = 1 << 20


@dataclass
class Program:
    """An assembled guest program.

    Attributes:
        name: Human-readable program name (used in reports).
        instructions: Resolved instruction tuples; branch/jump targets are
            instruction indices.
        data: Initial data image, ``{word_index: value}``.
        labels: Code labels, ``{name: instruction_index}``.
        symbols: Data symbols, ``{name: byte_address}``.
        mem_bytes: Size of the data address space.
        meta: Free-form metadata (e.g. expected outputs for verification).
    """

    name: str = "program"
    instructions: list[Instr] = field(default_factory=list)
    data: dict[int, int] = field(default_factory=dict)
    labels: dict[str, int] = field(default_factory=dict)
    symbols: dict[str, int] = field(default_factory=dict)
    mem_bytes: int = DEFAULT_MEM_BYTES
    meta: dict = field(default_factory=dict)

    def validate(self) -> None:
        """Check structural invariants; raise :class:`AssemblyError` if broken.

        Ensures every branch/jump target is a valid instruction index, every
        initial data word fits the address space and 32 bits, and the program
        ends in a reachable HALT (at least one HALT present).
        """
        n = len(self.instructions)
        if n == 0:
            raise AssemblyError(f"{self.name}: empty program")
        has_halt = False
        for idx, ins in enumerate(self.instructions):
            op = ins[0]
            fmt = format_of(op)
            if fmt == "B" and not 0 <= ins[3] < n:
                raise AssemblyError(
                    f"{self.name}@{idx}: branch target {ins[3]} out of range"
                )
            if fmt == "J" and not 0 <= ins[2] < n:
                raise AssemblyError(
                    f"{self.name}@{idx}: jump target {ins[2]} out of range"
                )
            if op == oc.HALT:
                has_halt = True
        if not has_halt:
            raise AssemblyError(f"{self.name}: program has no HALT")
        max_word = self.mem_bytes // 4
        for widx, val in self.data.items():
            if not 0 <= widx < max_word:
                raise AssemblyError(
                    f"{self.name}: data word index {widx} outside memory"
                )
            if not 0 <= val < (1 << 32):
                raise AssemblyError(
                    f"{self.name}: data value {val:#x} not a u32 at word {widx}"
                )

    def initial_memory(self) -> list[int]:
        """Materialize the zero-filled word array with the data image applied."""
        words = [0] * (self.mem_bytes // 4)
        for widx, val in self.data.items():
            words[widx] = val
        return words

    @property
    def size(self) -> int:
        return len(self.instructions)
