"""Disassembler: turn instruction tuples back into readable assembly."""

from __future__ import annotations

from repro.isa import opcodes as oc
from repro.isa.instructions import Instr, format_of
from repro.isa.program import Program

_R = oc.REGISTER_NAMES


def disassemble_one(ins: Instr) -> str:
    """Render one instruction tuple as assembly text."""
    op, a, b, c = ins
    mnem = oc.MNEMONICS[op]
    fmt = format_of(op)
    if fmt == "R":
        return f"{mnem} {_R[a]}, {_R[b]}, {_R[c]}"
    if fmt == "I":
        return f"{mnem} {_R[a]}, {_R[b]}, {c}"
    if fmt == "LI":
        return f"{mnem} {_R[a]}, {b:#x}" if b > 9 else f"{mnem} {_R[a]}, {b}"
    if fmt == "LOAD":
        return f"{mnem} {_R[a]}, {c}({_R[b]})"
    if fmt == "STORE":
        return f"{mnem} {_R[a]}, {c}({_R[b]})"
    if fmt == "B":
        return f"{mnem} {_R[a]}, {_R[b]}, @{c}"
    if fmt == "J":
        return f"{mnem} {_R[a]}, @{b}"
    if fmt == "JR":
        return f"{mnem} {_R[a]}, {_R[b]}, {c}"
    return mnem


def disassemble(prog: Program) -> str:
    """Render a whole program, annotating label positions."""
    by_index: dict[int, list[str]] = {}
    for name, idx in prog.labels.items():
        by_index.setdefault(idx, []).append(name)
    out = []
    for i, ins in enumerate(prog.instructions):
        for lbl in by_index.get(i, []):
            out.append(f"{lbl}:")
        out.append(f"  {i:5d}: {disassemble_one(ins)}")
    return "\n".join(out)


def to_asm(prog: Program) -> str:
    """Render ``prog`` as source the text assembler accepts.

    Round-trip guarantee: ``assemble(to_asm(p), mem_bytes=p.mem_bytes)``
    reproduces the instruction tuples, data image, symbol table, and the
    lint-carried meta (checkpoint markers as ``.ckpt``, waivers as
    ``.waive``) exactly. Branch/jump targets become synthesized
    ``L<index>`` labels (the original label names are presentation
    metadata, not semantics), which is why this lives beside the
    pretty-printer instead of reusing its ``@target`` notation.
    """
    targets: set[int] = set()
    for op, _a, b, c in prog.instructions:
        if op in oc.B_FORMAT:
            targets.add(c)
        elif op in oc.J_FORMAT:
            targets.add(b)
    markers = {i for i in prog.meta.get("checkpoints", ())
               if isinstance(i, int)}
    out = []
    for i, ins in enumerate(prog.instructions):
        op, a, b, c = ins
        if i in targets:
            out.append(f"L{i}:")
        if i in markers:
            out.append("  .ckpt")
        if op in oc.B_FORMAT:
            out.append(f"  {oc.MNEMONICS[op]} {_R[a]}, {_R[b]}, L{c}")
        elif op in oc.J_FORMAT:
            out.append(f"  {oc.MNEMONICS[op]} {_R[a]}, L{b}")
        else:
            out.append("  " + disassemble_one(ins))
    widxs = sorted(prog.data)
    i = 0
    while i < len(widxs):
        j = i
        while j + 1 < len(widxs) and widxs[j + 1] == widxs[j] + 1:
            j += 1
        out.append(f".data {widxs[i] * 4:#x}")
        run = [f"{prog.data[w]:#x}" for w in widxs[i:j + 1]]
        for k in range(0, len(run), 8):
            out.append("  .word " + ", ".join(run[k:k + 8]))
        i = j + 1
    for name, addr in prog.symbols.items():
        out.append(f".symbol {name}, {addr:#x}")
    for w in prog.meta.get("lint_waivers", ()):
        out.append(f".waive {w['rule']}, {w['reason']}")
    return "\n".join(out) + "\n"
