"""Disassembler: turn instruction tuples back into readable assembly."""

from __future__ import annotations

from repro.isa import opcodes as oc
from repro.isa.instructions import Instr, format_of
from repro.isa.program import Program

_R = oc.REGISTER_NAMES


def disassemble_one(ins: Instr) -> str:
    """Render one instruction tuple as assembly text."""
    op, a, b, c = ins
    mnem = oc.MNEMONICS[op]
    fmt = format_of(op)
    if fmt == "R":
        return f"{mnem} {_R[a]}, {_R[b]}, {_R[c]}"
    if fmt == "I":
        return f"{mnem} {_R[a]}, {_R[b]}, {c}"
    if fmt == "LI":
        return f"{mnem} {_R[a]}, {b:#x}" if b > 9 else f"{mnem} {_R[a]}, {b}"
    if fmt == "LOAD":
        return f"{mnem} {_R[a]}, {c}({_R[b]})"
    if fmt == "STORE":
        return f"{mnem} {_R[a]}, {c}({_R[b]})"
    if fmt == "B":
        return f"{mnem} {_R[a]}, {_R[b]}, @{c}"
    if fmt == "J":
        return f"{mnem} {_R[a]}, @{b}"
    if fmt == "JR":
        return f"{mnem} {_R[a]}, {_R[b]}, {c}"
    return mnem


def disassemble(prog: Program) -> str:
    """Render a whole program, annotating label positions."""
    by_index: dict[int, list[str]] = {}
    for name, idx in prog.labels.items():
        by_index.setdefault(idx, []).append(name)
    out = []
    for i, ins in enumerate(prog.instructions):
        for lbl in by_index.get(i, []):
            out.append(f"{lbl}:")
        out.append(f"  {i:5d}: {disassemble_one(ins)}")
    return "\n".join(out)
