"""Seeded stochastic trace ensembles for Monte-Carlo campaigns.

The five named sources in :mod:`repro.energy.synthetic` are deterministic
generators: one seed, one trace. Campaign-scale evaluation
(:mod:`repro.mc`) needs *ensembles* - hundreds of statistically similar
but distinct harvesting conditions - so this module adds stochastic
families whose every instance is fully reproducible from
``(family, seed)``:

* ``mc-rf-home`` / ``mc-rf-office`` / ``mc-rf-mobile`` - perturbed
  variants of the paper's three RF sources: the seed jitters the family's
  *parameters* (mean power, variance, fade probability/depth, segment
  durations) around the named source's operating point and drives an
  independent segment stream, with seeded *burst dropout* (total blackout
  windows lasting many segments) layered on top.
* ``mc-solar`` / ``mc-thermal`` - perturbed solar/thermal with parameter
  jitter and, for solar, rare long deep-cloud dropouts.
* ``mc-rf-long`` - a long-horizon RF variant with 20-60 ms segments and
  multi-second good/poor regimes, so multi-hour horizons stay cheap to
  generate lazily (an hour is ~90 k segments, produced on demand).
* ``csv:<path>`` - recorded real-trace ingestion: a finite
  ``start_ns,power_w`` recording (:func:`repro.energy.traces.load_csv`)
  tiled periodically, with the seed selecting a reproducible phase
  rotation into the recording so an ensemble over one recording varies
  the alignment of program progress against the recorded fades.

Every family is registered alongside :func:`~repro.energy.synthetic.
make_trace`, so sweep tasks, pool workers, and the batch replay engine
resolve ``(family, seed)`` exactly like the named sources - the seed
travels as ``SimConfig.trace_seed``.

Determinism contract: parameter jitter and the segment stream derive
from ``zlib.crc32`` of ``(family, seed, purpose)`` - never ``hash()``,
which is randomized per process and would break cross-worker
reproducibility.
"""

from __future__ import annotations

import random
import zlib

from repro.energy.synthetic import (US, RFTrace, SolarTrace, ThermalTrace,
                                    register_trace_family)
from repro.energy.traces import PowerTrace, load_csv
from repro.errors import TraceError

#: family names registered by this module (the ``csv:`` prefix is
#: resolved dynamically, not listed here)
MC_FAMILIES = ("mc-rf-home", "mc-rf-office", "mc-rf-mobile", "mc-solar",
               "mc-thermal", "mc-rf-long")

#: recorded-trace family prefix: ``csv:results/office.csv``
RECORDED_PREFIX = "csv:"


def derive_seed(family: str, seed: int, purpose: str) -> int:
    """A deterministic sub-seed for ``(family, seed, purpose)``.

    Process-independent (crc32, not ``hash()``): the same campaign point
    must build the same trace in every pool worker.
    """
    return zlib.crc32(f"{family}/{seed}/{purpose}".encode())


def _jitter(rng: random.Random, frac: float) -> float:
    """A multiplicative jitter factor in ``[1 - frac, 1 + frac]``."""
    return 1.0 + frac * (2.0 * rng.random() - 1.0)


class StochasticRF(RFTrace):
    """An RF source with seeded parameter jitter and burst dropout.

    The seed perturbs the operating point (mean, variance, fade
    behaviour, segment durations) through an RNG independent of the
    segment stream, then occasional *dropout bursts* - total blackouts
    lasting ``dropout_us`` - model reader duty-cycling and occlusion
    that the named sources' short fades never produce.
    """

    def __init__(self, name: str, seed: int, mean_w: float, sigma_w: float,
                 fade_prob: float, fade_depth: float,
                 seg_us: tuple[float, float],
                 jitter: float = 0.15,
                 dropout_prob: float = 0.02,
                 dropout_us: tuple[float, float] = (60.0, 240.0),
                 regime_dwell_us: tuple[float, float] = (90.0, 200.0)):
        prng = random.Random(derive_seed(name, seed, "params"))
        self.dropout_prob = dropout_prob
        self.dropout_us = dropout_us
        self._dropout_left = 0
        lo, hi = seg_us
        super().__init__(
            name, derive_seed(name, seed, "segments"),
            mean_w=mean_w * _jitter(prng, jitter),
            sigma_w=sigma_w * _jitter(prng, jitter),
            fade_prob=min(0.9, fade_prob * _jitter(prng, jitter)),
            fade_depth=fade_depth * _jitter(prng, jitter),
            seg_us=(lo * _jitter(prng, jitter), hi * _jitter(prng, jitter)),
            regime_dwell_us=(regime_dwell_us[0] * _jitter(prng, jitter),
                             regime_dwell_us[1] * _jitter(prng, jitter)),
        )

    def _segment(self, rng: random.Random) -> tuple[int, float]:
        dur, p = super()._segment(rng)
        if self._dropout_left > 0:
            self._dropout_left -= dur
            return (dur, 0.0)
        if rng.random() < self.dropout_prob:
            self._dropout_left = int(rng.uniform(*self.dropout_us) * US)
            return (dur, 0.0)
        return (dur, p)


class StochasticSolar(SolarTrace):
    """Solar with seeded parameter jitter and rare long deep-cloud dips."""

    def __init__(self, name: str = "mc-solar", seed: int = 7,
                 jitter: float = 0.12, deep_cloud_prob: float = 0.01,
                 deep_cloud_us: tuple[float, float] = (400.0, 1200.0)):
        prng = random.Random(derive_seed(name, seed, "params"))
        self.deep_cloud_prob = deep_cloud_prob
        self.deep_cloud_us = deep_cloud_us
        self._cloud_left = 0
        super().__init__(
            name, derive_seed(name, seed, "segments"),
            mean_w=0.56 * _jitter(prng, jitter),
            swing=0.10 * _jitter(prng, jitter),
            cloud_prob=0.12 * _jitter(prng, jitter),
            period_us=1500.0 * _jitter(prng, jitter))

    def _segment(self, rng: random.Random) -> tuple[int, float]:
        dur, p = super()._segment(rng)
        if self._cloud_left > 0:
            self._cloud_left -= dur
            return (dur, p * 0.05)
        if rng.random() < self.deep_cloud_prob:
            self._cloud_left = int(rng.uniform(*self.deep_cloud_us) * US)
            return (dur, p * 0.05)
        return (dur, p)


class StochasticThermal(ThermalTrace):
    """Thermal with seeded jitter of the gradient mean and its noise."""

    def __init__(self, name: str = "mc-thermal", seed: int = 11,
                 jitter: float = 0.10):
        prng = random.Random(derive_seed(name, seed, "params"))
        super().__init__(
            name, derive_seed(name, seed, "segments"),
            mean_w=0.54 * _jitter(prng, jitter),
            sigma_w=0.035 * _jitter(prng, jitter))


# ---------------------------------------------------------------------------
# family factories (signature-compatible with TRACE_FACTORIES entries)
# ---------------------------------------------------------------------------


def mc_rf_home(seed: int = 0) -> StochasticRF:
    """Perturbed Trace 1 (RF, home): mild dropout, stable-ish.

    Dropout windows are sized in segments-worth of time so the ensemble
    mean stays within ~15% of the named source it perturbs - the
    families vary the *conditions*, not the source class.
    """
    return StochasticRF("mc-rf-home", seed, mean_w=0.70, sigma_w=0.08,
                        fade_prob=0.34, fade_depth=0.15, seg_us=(2.8, 5.5),
                        dropout_prob=0.008, dropout_us=(15.0, 60.0))


def mc_rf_office(seed: int = 0) -> StochasticRF:
    """Perturbed Trace 2 (RF, office): more dropout, less stable."""
    return StochasticRF("mc-rf-office", seed, mean_w=0.65, sigma_w=0.12,
                        fade_prob=0.44, fade_depth=0.12, seg_us=(2.4, 5.0),
                        dropout_prob=0.012, dropout_us=(20.0, 80.0))


def mc_rf_mobile(seed: int = 0) -> StochasticRF:
    """Perturbed Trace 3 (RF, mobile): heavy dropout, highly unstable."""
    return StochasticRF("mc-rf-mobile", seed, mean_w=0.60, sigma_w=0.15,
                        fade_prob=0.54, fade_depth=0.10, seg_us=(2.0, 4.5),
                        dropout_prob=0.018, dropout_us=(25.0, 100.0))


def mc_solar(seed: int = 0) -> StochasticSolar:
    return StochasticSolar(seed=seed)


def mc_thermal(seed: int = 0) -> StochasticThermal:
    return StochasticThermal(seed=seed)


def mc_rf_long(seed: int = 0) -> StochasticRF:
    """Long-horizon RF: 20-60 ms segments, multi-second regimes.

    Meant for multi-hour lazily-extended campaigns - coverage grows on
    demand at ~90 k segments per simulated hour instead of the short
    families' ~10 M, so tail studies over hours stay tractable.
    """
    return StochasticRF("mc-rf-long", seed, mean_w=0.66, sigma_w=0.10,
                        fade_prob=0.38, fade_depth=0.14,
                        seg_us=(20_000.0, 60_000.0),
                        dropout_prob=0.03,
                        dropout_us=(150_000.0, 600_000.0),
                        regime_dwell_us=(2_000_000.0, 8_000_000.0))


# ---------------------------------------------------------------------------
# recorded real-trace ingestion
# ---------------------------------------------------------------------------


class RecordedTrace(PowerTrace):
    """A finite recording tiled periodically with a phase rotation.

    The recording covers ``[0, period_ns)``; the tiled trace's power at
    ``t`` is the recording's power at ``(t + offset) mod period``.
    Extension is lazy: each :meth:`_extend` appends whole rotated-period
    copies, so multi-hour replays of a short recording stay cheap.
    """

    def __init__(self, rec_starts: list[int], rec_powers: list[float],
                 period_ns: int, offset_ns: int, name: str):
        if period_ns <= rec_starts[-1]:
            raise TraceError(
                f"{name}: period {period_ns} must exceed the last segment "
                f"start {rec_starts[-1]}")
        offset_ns %= period_ns
        # one rotated period: boundaries where (t + offset) mod period
        # crosses a recorded segment start, in tiled-time order
        bounds = sorted((s - offset_ns) % period_ns for s in rec_starts)
        n = len(rec_starts)
        starts, powers = [], []
        for b in bounds:
            src = (b + offset_ns) % period_ns
            # segment of the recording containing src (starts are sorted)
            i = n - 1
            while rec_starts[i] > src:
                i -= 1
            starts.append(b)
            powers.append(rec_powers[i])
        if starts[0] != 0:
            # the rotation put a boundary after t=0: prepend the segment
            # that covers it (the recording's last before wrap)
            src = offset_ns
            i = n - 1
            while rec_starts[i] > src:
                i -= 1
            starts.insert(0, 0)
            powers.insert(0, rec_powers[i])
        self._period_ns = period_ns
        self._period_starts = list(starts)
        self._period_powers = list(powers)
        self._tiles = 1
        super().__init__(starts, powers, name)

    def _coverage_end_ns(self) -> int:
        return self._tiles * self._period_ns

    def _extend(self, until_ns: int) -> None:
        # Append whole rotated-period copies. A seam boundary with equal
        # power on both sides is kept: the segment-list shape must depend
        # only on (recording, offset), never on float equality of
        # recorded powers, so equal (family, seed) traces stay
        # bit-identical regardless of query order.
        while self._coverage_end_ns() <= until_ns:
            base = self._tiles * self._period_ns
            for s, p in zip(self._period_starts, self._period_powers):
                self.starts.append(base + s)
                self.powers.append(p)
            self._tiles += 1


#: per-path recording cache: (starts, powers, period_ns)
_RECORDED_CACHE: dict[str, tuple[list[int], list[float], int]] = {}


def _load_recording(path: str) -> tuple[list[int], list[float], int]:
    rec = _RECORDED_CACHE.get(path)
    if rec is None:
        tr = load_csv(path)
        starts, powers = tr.starts, tr.powers
        if len(starts) > 1:
            # the CSV gives no end time for the final segment; give it
            # the mean duration of the others so the period is defined
            mean_dur = max(1, (starts[-1] - starts[0]) // (len(starts) - 1))
        else:
            mean_dur = 10**6  # single segment: 1 ms tiles of constant power
        rec = (starts, powers, starts[-1] + mean_dur)
        _RECORDED_CACHE[path] = rec
    return rec


def recorded_trace(name: str, seed: int | None = None) -> RecordedTrace:
    """Build a ``csv:<path>`` family member.

    The seed selects a uniformly distributed phase rotation into the
    recording (``seed=None`` or 0 keeps the recorded alignment), so an
    ensemble over one recording decorrelates program progress from the
    recorded fade schedule while preserving the power distribution
    exactly - energy over any whole number of periods is seed-invariant.
    """
    if not name.startswith(RECORDED_PREFIX):
        raise TraceError(f"recorded trace family must start with "
                         f"{RECORDED_PREFIX!r}, got {name!r}")
    path = name[len(RECORDED_PREFIX):]
    starts, powers, period = _load_recording(path)
    if seed:
        offset = random.Random(
            derive_seed(name, seed, "phase")).randrange(period)
    else:
        offset = 0
    return RecordedTrace(starts, powers, period, offset, name)


def _register() -> None:
    for fname, factory in (("mc-rf-home", mc_rf_home),
                           ("mc-rf-office", mc_rf_office),
                           ("mc-rf-mobile", mc_rf_mobile),
                           ("mc-solar", mc_solar),
                           ("mc-thermal", mc_thermal),
                           ("mc-rf-long", mc_rf_long)):
        register_trace_family(fname, factory, overwrite=True)


_register()
