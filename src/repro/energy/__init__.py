"""repro.energy - capacitor, power traces, and the energy model."""

from repro.energy.capacitor import Capacitor, energy_nj
from repro.energy.model import EnergyModel
from repro.energy.synthetic import (RFTrace, SolarTrace, ThermalTrace,
                                    make_trace, register_trace_family, solar,
                                    thermal, trace1, trace2, trace3)
from repro.energy.stochastic import (MC_FAMILIES, RECORDED_PREFIX,
                                     RecordedTrace, StochasticRF,
                                     StochasticSolar, StochasticThermal,
                                     recorded_trace)
from repro.energy.traces import ConstantTrace, PowerTrace, load_csv, save_csv

__all__ = [
    "Capacitor",
    "ConstantTrace",
    "EnergyModel",
    "MC_FAMILIES",
    "PowerTrace",
    "RECORDED_PREFIX",
    "RFTrace",
    "RecordedTrace",
    "SolarTrace",
    "StochasticRF",
    "StochasticSolar",
    "StochasticThermal",
    "ThermalTrace",
    "energy_nj",
    "load_csv",
    "make_trace",
    "recorded_trace",
    "register_trace_family",
    "save_csv",
    "solar",
    "thermal",
    "trace1",
    "trace2",
    "trace3",
]
