"""repro.energy - capacitor, power traces, and the energy model."""

from repro.energy.capacitor import Capacitor, energy_nj
from repro.energy.model import EnergyModel
from repro.energy.synthetic import (RFTrace, SolarTrace, ThermalTrace,
                                    make_trace, solar, thermal, trace1,
                                    trace2, trace3)
from repro.energy.traces import ConstantTrace, PowerTrace, load_csv, save_csv

__all__ = [
    "Capacitor",
    "ConstantTrace",
    "EnergyModel",
    "PowerTrace",
    "RFTrace",
    "SolarTrace",
    "ThermalTrace",
    "energy_nj",
    "load_csv",
    "make_trace",
    "save_csv",
    "solar",
    "thermal",
    "trace1",
    "trace2",
    "trace3",
]
