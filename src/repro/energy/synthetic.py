"""Synthetic harvested-power sources.

The paper replays RF power traces recorded at a home (Trace 1) and an
office (Trace 2) with NVPsim, plus a third RF trace from Mementos, and
solar/thermal traces for the source-sensitivity study. Those recordings are
not public, so this module generates seeded synthetic traces that preserve
the property the evaluation depends on: the *stability ordering*

    thermal > solar > RF home (tr.1) > RF office (tr.2) > RF mobile (tr.3)

which in turn produces the paper's outage-count ordering (9 < 12 < 33 < 45
< 121 per full run). Each generator is deterministic in its seed.

Power magnitudes are in the simulator's scaled units (see DESIGN.md §4):
comparable to the core's draw so that on-times genuinely vary with source
quality - the signal the adaptive runtime (§4) keys on.
"""

from __future__ import annotations

import math
import random

from repro.energy.traces import PowerTrace

US = 1000  # ns per microsecond


class GeneratedTrace(PowerTrace):
    """Lazily generated piecewise-constant trace, deterministic per seed."""

    def __init__(self, name: str, seed: int):
        self._rng = random.Random(seed)
        self._covered = 0
        starts: list[int] = []
        powers: list[float] = []
        t = 0
        # prime with enough segments for the seek cache to work
        for _ in range(4):
            dur, p = self._segment(self._rng)
            starts.append(t)
            powers.append(p)
            t += dur
        self._covered = t
        super().__init__(starts, powers, name)

    def _segment(self, rng: random.Random) -> tuple[int, float]:
        """Return (duration_ns, power_w) of the next segment."""
        raise NotImplementedError

    def _coverage_end_ns(self) -> int:
        return self._covered

    def _extend(self, until_ns: int) -> None:
        while self._covered <= until_ns:
            dur, p = self._segment(self._rng)
            self.starts.append(self._covered)
            self.powers.append(p)
            self._covered += dur


class RFTrace(GeneratedTrace):
    """Bursty radio-frequency harvesting.

    Alternates between harvesting bursts around ``mean_w`` and fades; fade
    probability/depth and power variance set the source (in)stability.
    """

    def __init__(self, name: str, seed: int, mean_w: float, sigma_w: float,
                 fade_prob: float, fade_depth: float,
                 seg_us: tuple[float, float] = (20.0, 90.0),
                 fade_cluster: float = 0.5,
                 regime_dwell_us: tuple[float, float] = (90.0, 200.0),
                 regime_poor: float = 0.78):
        self.mean_w = mean_w
        self.sigma_w = sigma_w
        self.fade_prob = fade_prob
        self.fade_depth = fade_depth
        self.seg_us = seg_us
        self.fade_cluster = fade_cluster
        #: slow good/poor alternation: RF environments drift on a much
        #: longer timescale than individual fades (someone moves around the
        #: room, the reader duty-cycles). This drift is the signal the
        #: boot-time adaptive runtime (S4) tracks.
        self.regime_dwell_us = regime_dwell_us
        self.regime_poor = regime_poor
        self._in_fade = False
        self._regime_good = True
        self._regime_left = 0
        super().__init__(name, seed)

    def _segment(self, rng: random.Random) -> tuple[int, float]:
        dur = int(rng.uniform(*self.seg_us) * US)
        if self._regime_left <= 0:
            self._regime_good = not self._regime_good
            self._regime_left = int(rng.uniform(*self.regime_dwell_us) * US)
        self._regime_left -= dur
        scale = 1.0 if self._regime_good else self.regime_poor
        # fades cluster: a deep fade tends to persist across segments,
        # as in recorded RF traces; poor regimes fade more often
        p_fade = self.fade_cluster if self._in_fade else (
            self.fade_prob * (0.7 if self._regime_good else 1.8))
        if rng.random() < min(0.9, p_fade):
            self._in_fade = True
            p = self.mean_w * scale * self.fade_depth * rng.uniform(0.2, 1.0)
        else:
            self._in_fade = False
            p = max(0.0, rng.gauss(self.mean_w * scale, self.sigma_w))
        return (dur, p)


class SolarTrace(GeneratedTrace):
    """Strong, slowly varying source with rare cloud dips."""

    def __init__(self, name: str = "solar", seed: int = 7,
                 mean_w: float = 0.56, swing: float = 0.10,
                 cloud_prob: float = 0.12, period_us: float = 1500.0):
        self.mean_w = mean_w
        self.swing = swing
        self.cloud_prob = cloud_prob
        self.period_us = period_us
        self._phase = 0.0
        super().__init__(name, seed)

    def _segment(self, rng: random.Random) -> tuple[int, float]:
        dur = int(rng.uniform(25.0, 55.0) * US)
        self._phase += dur / (self.period_us * US) * 2 * math.pi
        p = self.mean_w * (1.0 + self.swing * math.sin(self._phase))
        if rng.random() < self.cloud_prob:
            p *= rng.uniform(0.25, 0.55)
        return (dur, max(0.0, p))


class ThermalTrace(GeneratedTrace):
    """Near-constant thermal gradient source (the most stable)."""

    def __init__(self, name: str = "thermal", seed: int = 11,
                 mean_w: float = 0.54, sigma_w: float = 0.035):
        self.mean_w = mean_w
        self.sigma_w = sigma_w
        super().__init__(name, seed)

    def _segment(self, rng: random.Random) -> tuple[int, float]:
        dur = int(rng.uniform(40.0, 90.0) * US)
        return (dur, max(0.0, rng.gauss(self.mean_w, self.sigma_w)))


# ---------------------------------------------------------------------------
# The five named sources of the evaluation (§6.1, §6.6).
# ---------------------------------------------------------------------------

def trace1(seed: int = 1) -> RFTrace:
    """Power Trace 1: RF, home - the more stable RF source."""
    return RFTrace("trace1(RF-home)", seed, mean_w=0.70, sigma_w=0.08,
                   fade_prob=0.34, fade_depth=0.15, seg_us=(2.8, 5.5))


def trace2(seed: int = 2) -> RFTrace:
    """Power Trace 2: RF, office - less stable than Trace 1."""
    return RFTrace("trace2(RF-office)", seed, mean_w=0.65, sigma_w=0.12,
                   fade_prob=0.44, fade_depth=0.12,
                   seg_us=(2.4, 5.0))


def trace3(seed: int = 3) -> RFTrace:
    """Power Trace 3: RF, mobile (Mementos-style) - highly unstable."""
    return RFTrace("trace3(RF-mobile)", seed, mean_w=0.60, sigma_w=0.15,
                   fade_prob=0.54, fade_depth=0.10,
                   seg_us=(2.0, 4.5))


def solar(seed: int = 7) -> SolarTrace:
    return SolarTrace(seed=seed)


def thermal(seed: int = 11) -> ThermalTrace:
    return ThermalTrace(seed=seed)


TRACE_FACTORIES = {
    "trace1": trace1,
    "trace2": trace2,
    "trace3": trace3,
    "solar": solar,
    "thermal": thermal,
}


def register_trace_family(name: str, factory, overwrite: bool = False) -> None:
    """Register a ``factory(seed) -> PowerTrace`` under ``name``.

    Registered families resolve through :func:`make_trace` exactly like
    the five named sources, so sweep tasks and pool workers can carry
    them as plain ``(family, seed)`` pairs. The stochastic ensemble
    families (:mod:`repro.energy.stochastic`) register themselves here
    at import.
    """
    if not overwrite and name in TRACE_FACTORIES:
        raise KeyError(f"trace family {name!r} is already registered")
    TRACE_FACTORIES[name] = factory


def make_trace(name: str, seed: int | None = None) -> PowerTrace:
    """Build a named source or a registered stochastic family member.

    ``name`` may be one of the five named evaluation sources, a family
    registered via :func:`register_trace_family` (e.g. the ``mc-*``
    ensemble families), or ``csv:<path>`` for a recorded trace tiled
    with a seeded phase rotation.
    """
    factory = TRACE_FACTORIES.get(name)
    if factory is None:
        # the stochastic families register lazily on first import; the
        # csv: prefix resolves dynamically (the path is the identity)
        from repro.energy import stochastic
        if name.startswith(stochastic.RECORDED_PREFIX):
            return stochastic.recorded_trace(name, seed)
        factory = TRACE_FACTORIES.get(name)
    if factory is None:
        raise KeyError(f"unknown trace {name!r}; have {sorted(TRACE_FACTORIES)}")
    return factory() if seed is None else factory(seed)
