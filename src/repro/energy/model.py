"""Per-operation energy model for the core and the NVP runtime.

Cache-array and NVM access energies live with their components
(:class:`~repro.caches.params.CacheParams`, :class:`~repro.mem.nvm.
NVMTimings`); this model covers the core side: compute energy per retired
instruction, instruction-fetch energy, register checkpoint/restore to NVFF,
and static leakage.

All values are in the simulator's scaled nanojoule units (DESIGN.md §4):
relative magnitudes follow the literature (NVM writes >> NVM reads >> SRAM
accesses >> register-file NVFF flashes), absolute magnitudes are chosen so
Python-scale workloads see the paper's outage dynamics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class EnergyModel:
    """Core-side energies (nJ) and leakage (W).

    Attributes:
        compute_nj: Dynamic energy per retired instruction (datapath).
        ifetch_nj: Energy per I-cache line access.
        ifetch_miss_nj: Extra energy per I-cache refill from NVM.
        reg_ckpt_nj: JIT checkpoint of the register file + PC + DirtyQueue
            thresholds + watchdog values into NVFFs.
        reg_restore_nj: Restore of the same at reboot.
        core_leakage_w: Core + register file leakage while powered.
        worst_instr_nj: Upper bound on one instruction's total energy
            (compute + worst-case memory); sizes the chunked voltage-check
            safety margin on Vbackup.
    """

    compute_nj: float = 0.18
    ifetch_nj: float = 0.015
    ifetch_miss_nj: float = 1.0
    reg_ckpt_nj: float = 20.0
    reg_restore_nj: float = 10.0
    core_leakage_w: float = 0.25
    worst_instr_nj: float = 3.5

    def __post_init__(self) -> None:
        if min(self.compute_nj, self.ifetch_nj, self.ifetch_miss_nj,
               self.reg_ckpt_nj, self.reg_restore_nj, self.core_leakage_w,
               self.worst_instr_nj) < 0:
            raise ConfigError("energies must be >= 0")
