"""Power traces: piecewise-constant harvested power over time.

A trace answers two questions for the simulator:

* how much energy arrives in an interval (``energy_nj``), charged while the
  program runs, and
* how long until a given amount of energy has been harvested
  (``time_to_harvest``), used to fast-forward through power-off periods.

Times are nanoseconds; power is watts (1 W = 1 nJ/ns).
"""

from __future__ import annotations

import bisect

from repro.errors import TraceError


class PowerTrace:
    """Piecewise-constant power trace.

    Subclasses may generate segments lazily by overriding :meth:`_extend`;
    the base class holds a fixed segment list and raises
    :class:`TraceError` when asked beyond its horizon.
    """

    def __init__(self, starts_ns: list[int], powers_w: list[float],
                 name: str = "trace"):
        if len(starts_ns) != len(powers_w) or not starts_ns:
            raise TraceError("trace needs matching, non-empty segment lists")
        if starts_ns[0] != 0:
            raise TraceError("trace must start at t=0")
        if any(b <= a for a, b in zip(starts_ns, starts_ns[1:])):
            raise TraceError("segment starts must be strictly increasing")
        if any(p < 0 for p in powers_w):
            raise TraceError("power must be >= 0")
        self.name = name
        self.starts = list(starts_ns)
        self.powers = list(powers_w)
        self._idx = 0  # cache for sequential access

    # -- lazy extension ----------------------------------------------------
    def _extend(self, until_ns: int) -> None:
        """Generate segments to cover ``until_ns``; no-op for fixed traces."""

    def _ensure(self, t_ns: int) -> None:
        """Extend lazy coverage through ``t_ns``.

        A query strictly before the last segment's start is always
        covered, so only queries at or past it can need generation -
        gating on that keeps the hot sequential path a single
        comparison. Fixed traces treat their last segment as
        open-ended (:meth:`_extend` is a no-op); lazily generated
        traces append segments until ``t_ns`` is covered.
        """
        if t_ns >= self.starts[-1]:
            self._extend(t_ns)

    def _seek(self, t_ns: int) -> int:
        """Index of the segment containing ``t_ns``.

        Negative times raise: ``bisect_right - 1`` would return ``-1``,
        which Python indexing silently wraps to the *last* segment, so an
        unguarded query would integrate the wrong segment's power (the
        off-by-one-segment trap every caller of this method shares).
        """
        if t_ns < 0:
            raise TraceError("negative time")
        self._ensure(t_ns)
        i = self._idx
        starts = self.starts
        n = len(starts)
        if i < n and starts[i] <= t_ns and (i + 1 == n or t_ns < starts[i + 1]):
            return i
        if i + 1 < n and starts[i + 1] <= t_ns and (
                i + 2 == n or t_ns < starts[i + 2]):
            self._idx = i + 1
            return i + 1
        i = bisect.bisect_right(starts, t_ns) - 1
        self._idx = i
        return i

    # -- queries -------------------------------------------------------
    def power_w(self, t_ns: int) -> float:
        """Instantaneous harvested power at time ``t_ns``."""
        return self.powers[self._seek(t_ns)]

    def energy_nj(self, t0_ns: int, t1_ns: int) -> float:
        """Energy harvested in [t0, t1), in nJ."""
        if t1_ns < t0_ns:
            raise TraceError("reversed interval")
        if t1_ns == t0_ns:
            return 0.0
        self._ensure(t1_ns)
        i = self._seek(t0_ns)
        starts, powers = self.starts, self.powers
        total = 0.0
        t = t0_ns
        while True:
            seg_end = starts[i + 1] if i + 1 < len(starts) else t1_ns
            end = min(seg_end, t1_ns)
            total += powers[i] * (end - t)
            if end >= t1_ns:
                return total
            t = end
            i += 1

    def _coverage_end_ns(self) -> int:
        """End of generated coverage; asking :meth:`_extend` for this time
        produces at least one more segment on lazily generated traces.
        Fixed traces return a sentinel past any horizon (their last segment
        is open-ended)."""
        return 2 * 10**15

    def _next_boundary(self, i: int, horizon_ns: int) -> int:
        """End time of segment ``i``, generating the next segment lazily
        for generated traces. Fixed traces' last segment runs to the
        horizon."""
        if i + 1 < len(self.starts):
            return self.starts[i + 1]
        self._extend(self._coverage_end_ns())
        if i + 1 < len(self.starts):
            return self.starts[i + 1]
        return horizon_ns

    def time_to_harvest(self, t0_ns: int, needed_nj: float,
                        horizon_ns: int = 10**15) -> int:
        """Earliest time by which ``needed_nj`` has arrived since ``t0``.

        Raises :class:`TraceError` past ``horizon_ns`` (dead source).
        """
        if needed_nj <= 0:
            return t0_ns
        i = self._seek(t0_ns)
        t = t0_ns
        remaining = needed_nj
        while t < horizon_ns:
            seg_end = self._next_boundary(i, horizon_ns)
            p = self.powers[i]
            if p > 0:
                dt = remaining / p
                if t + dt <= seg_end:
                    return int(t + dt) + 1
                remaining -= p * (seg_end - t)
            t = seg_end
            i = min(i + 1, len(self.starts) - 1)
        raise TraceError(
            f"{self.name}: source dead - {needed_nj:.1f} nJ not harvested "
            f"within horizon")

    def charge_until(self, t0_ns: int, e0_nj: float, e_target_nj: float,
                     drain_w: float = 0.0, e_floor_nj: float = 0.0,
                     horizon_ns: int = 10**15) -> int:
        """Time at which a capacitor charging from this source reaches
        ``e_target_nj``, while leaking ``drain_w`` (off-period self-
        discharge). Energy never falls below ``e_floor_nj``.

        Models the power-off period: segments weaker than the leak make no
        progress (or lose charge), so a long fade erodes any leftover
        checkpoint reserve. Raises :class:`TraceError` past the horizon.
        """
        if e0_nj >= e_target_nj:
            return t0_ns
        i = self._seek(t0_ns)
        t = t0_ns
        e = e0_nj
        while t < horizon_ns:
            seg_end = self._next_boundary(i, horizon_ns)
            net = self.powers[i] - drain_w
            span = seg_end - t
            if net > 0:
                dt = (e_target_nj - e) / net
                if t + dt <= seg_end:
                    return int(t + dt) + 1
                e += net * span
            elif net < 0:
                e = max(e_floor_nj, e + net * span)
            t = seg_end
            i = min(i + 1, len(self.starts) - 1)
        raise TraceError(f"{self.name}: source dead - never recharged")


class ConstantTrace(PowerTrace):
    """A constant-power source (tests, solar-like idealizations)."""

    def __init__(self, power_w: float, name: str = "constant"):
        super().__init__([0], [power_w], name)


def save_csv(trace: PowerTrace, path: str) -> None:
    """Write trace segments as ``start_ns,power_w`` CSV."""
    with open(path, "w") as f:
        f.write("start_ns,power_w\n")
        for t, p in zip(trace.starts, trace.powers):
            f.write(f"{t},{p}\n")


def load_csv(path: str, name: str | None = None) -> PowerTrace:
    """Read a trace written by :func:`save_csv`."""
    starts: list[int] = []
    powers: list[float] = []
    with open(path) as f:
        header = f.readline()
        if not header.startswith("start_ns"):
            raise TraceError(f"{path}: missing trace header")
        for line in f:
            line = line.strip()
            if not line:
                continue
            a, p = line.split(",")
            starts.append(int(a))
            powers.append(float(p))
    return PowerTrace(starts, powers, name or path)
