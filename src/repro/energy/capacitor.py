"""Capacitor energy-buffer model.

Energy harvesting systems buffer ambient energy in a small capacitor
(Table 2: 1 uF default). Stored energy follows E = 1/2 C V^2; the simulator
tracks energy in nanojoules (1 W = 1 nJ/ns, so power x time-in-ns gives nJ
directly at the 1 GHz clock).
"""

from __future__ import annotations

import math

from repro.errors import ConfigError, EnergyError


def energy_nj(capacitance_f: float, volts: float) -> float:
    """Stored energy of a capacitor at a voltage, in nanojoules."""
    return 0.5 * capacitance_f * volts * volts * 1e9


class Capacitor:
    """A capacitor with voltage bounds [0, v_max].

    ``consume`` may legitimately drive the voltage below ``v_min`` only
    during a JIT checkpoint (the reserve sizing guarantees it stays above;
    :class:`~repro.sim.system.System` asserts this invariant).
    """

    def __init__(self, capacitance_f: float, v_max: float = 3.5,
                 v_min: float = 2.8, v_initial: float | None = None):
        if capacitance_f <= 0:
            raise ConfigError("capacitance must be positive")
        if not 0 < v_min < v_max:
            raise ConfigError("need 0 < v_min < v_max")
        self.capacitance_f = capacitance_f
        self.v_max = v_max
        self.v_min = v_min
        self._e_max = energy_nj(capacitance_f, v_max)
        self._e_nj = energy_nj(capacitance_f, v_initial if v_initial is not None
                               else v_max)
        if self._e_nj > self._e_max:
            raise ConfigError("initial voltage above v_max")

    # ------------------------------------------------------------------
    @property
    def energy(self) -> float:
        """Stored energy in nJ."""
        return self._e_nj

    @property
    def voltage(self) -> float:
        return math.sqrt(2.0 * self._e_nj * 1e-9 / self.capacitance_f)

    @property
    def full(self) -> bool:
        return self._e_nj >= self._e_max

    def energy_between(self, v_hi: float, v_lo: float) -> float:
        """Usable energy between two voltage levels, in nJ."""
        return (energy_nj(self.capacitance_f, v_hi)
                - energy_nj(self.capacitance_f, v_lo))

    def voltage_at(self, e_nj: float) -> float:
        return math.sqrt(max(0.0, 2.0 * e_nj * 1e-9 / self.capacitance_f))

    def voltage_for_reserve(self, reserve_nj: float) -> float:
        """The Vbackup threshold leaving ``reserve_nj`` above v_min."""
        return self.voltage_at(energy_nj(self.capacitance_f, self.v_min)
                               + reserve_nj)

    # ------------------------------------------------------------------
    def consume(self, nj: float) -> None:
        if nj < 0:
            raise EnergyError(f"cannot consume negative energy {nj}")
        self._e_nj -= nj
        if self._e_nj < 0.0:
            raise EnergyError("capacitor fully drained: reserve was undersized")

    def harvest(self, nj: float) -> None:
        if nj < 0:
            raise EnergyError(f"cannot harvest negative energy {nj}")
        self._e_nj = min(self._e_max, self._e_nj + nj)

    def set_voltage(self, volts: float) -> None:
        if not 0 <= volts <= self.v_max + 1e-9:
            raise ConfigError(f"voltage {volts} outside [0, {self.v_max}]")
        self._e_nj = min(self._e_max, energy_nj(self.capacitance_f, volts))
