"""WL-Cache: the paper's contribution (§3-§5).

A volatile SRAM write-back cache whose dirty-line population is bounded by
``maxline`` and drained toward ``waterline`` with asynchronous write-backs:

* A store that dirties a line inserts the line number into the
  :class:`~repro.core.dirty_queue.DirtyQueue`; if the queue already holds
  ``maxline`` entries the store *stalls* until an in-flight write-back ACKs
  (§5.1).
* When occupancy exceeds ``waterline``, one entry is selected (FIFO/LRU),
  its cache line is marked clean *first* (§5.3 step 1 - the correctness
  linchpin), and the line is written back to NVM asynchronously, overlapped
  with subsequent instructions (ILP). The queue entry is removed only when
  the ACK arrives (step 4), so JIT checkpointing always covers in-flight
  data.
* On an imminent power failure, the JIT checkpoint flushes the lines named
  by the queue (stale entries ignored) plus any in-flight write-back
  snapshots - at most ``maxline`` distinct lines, which is exactly what the
  ``Vbackup`` energy reserve is sized for.

NVM write ordering: the model applies asynchronous write-back data to NVM
at ACK time (so a crash between issue and ACK genuinely loses the transfer,
exercising the recovery protocol). Same-line orderings that real memory
controllers enforce are preserved by retiring an in-flight write-back for a
line before that line is evicted or re-filled.
"""

from __future__ import annotations

from collections import deque

from repro.caches.base import CachedMemorySystem
from repro.core.dirty_queue import DQ_LRU, DirtyQueue, DQEntry
from repro.errors import ConfigError, ReproError
from repro.mem.memsys import FlushReport

_FULL = 0xFFFFFFFF


class PendingWB:
    """An issued asynchronous write-back awaiting its ACK."""

    __slots__ = ("ack", "lineno", "addr", "data", "entry")

    def __init__(self, ack: int, lineno: int, addr: int, data: list[int],
                 entry: DQEntry):
        self.ack = ack
        self.lineno = lineno
        self.addr = addr
        self.data = data
        self.entry = entry


class WLCache(CachedMemorySystem):
    """Write-Light Cache with DirtyQueue, maxline and waterline."""

    name = "WL-Cache"
    volatile_cache = True

    def __init__(self, *args, dq_capacity: int = 8, maxline: int = 6,
                 waterline: int | None = None, dq_policy: str = "fifo",
                 dq_access_energy_nj: float = 0.0008,
                 dq_lru_extra_energy_nj: float = 0.004,
                 dq_leakage_w: float = 0.0001, **kwargs):
        super().__init__(*args, **kwargs)
        self.dq = DirtyQueue(dq_capacity, dq_policy)
        self.dq_access_energy_nj = dq_access_energy_nj
        self.dq_lru_extra_energy_nj = dq_lru_extra_energy_nj
        self.dq_leakage_w = dq_leakage_w
        self.maxline = maxline
        self.waterline = waterline if waterline is not None else maxline - 1
        self._check_thresholds(self.maxline, self.waterline)
        # ACKs arrive in issue order, so retirement is almost always a
        # popleft; the deque is never rebound (cleared in place) because
        # the fast-path tier binds the object itself.
        self.pending: deque[PendingWB] = deque()
        self._channel_free = 0  # cycle when the NVM write channel is idle
        #: optional hook consulted before stalling; returning True raises
        #: maxline by one (dynamic adaptation, §4)
        self.dynamic_policy = None
        # statistics beyond MemStats
        self.stall_events = 0
        self.sync_cleans = 0
        self.dirty_highwater = 0

    # ------------------------------------------------------------------
    def _check_thresholds(self, maxline: int, waterline: int) -> None:
        if not 1 <= maxline <= self.dq.capacity:
            raise ConfigError(
                f"maxline must be in 1..|DirtyQueue|={self.dq.capacity}, "
                f"got {maxline}")
        if not 0 <= waterline <= maxline:
            raise ConfigError(
                f"waterline must be in 0..maxline={maxline}, got {waterline}")

    def set_thresholds(self, maxline: int, waterline: int | None = None) -> None:
        """Reconfigure maxline/waterline (boot-time adaptation, §4)."""
        waterline = maxline - 1 if waterline is None else waterline
        self._check_thresholds(maxline, waterline)
        self.maxline = maxline
        self.waterline = waterline

    # ------------------------------------------------------------------
    # pending write-back machinery
    # ------------------------------------------------------------------
    def _retire_pending(self, p: PendingWB) -> None:
        """Apply a write-back's data to NVM and free its queue entry."""
        self.nvm.write_line(p.addr, p.data)
        pending = self.pending
        if pending and pending[0] is p:
            pending.popleft()  # in-order ACK: the common case, O(1)
        else:
            pending.remove(p)  # same-line flush retiring mid-queue
        if p.entry.queued:
            self.dq.remove(p.entry)

    def _retire_acks(self, now: int) -> None:
        pending = self.pending
        while pending and pending[0].ack <= now:
            self._retire_pending(pending[0])

    def _issue_writeback(self, t: int) -> PendingWB | None:
        """Clean one dirty line asynchronously (§5.3 steps 1-2).

        Returns the issued :class:`PendingWB`, or None when every dirty
        line is already in flight (observers rely on the return value
        rather than peeking at ``pending``).
        """
        if self.dq.policy == DQ_LRU:
            self.stats.cache_write_energy_nj += self.dq_lru_extra_energy_nj
        entry = self.dq.select_victim(self.array)
        if entry is None:
            return None
        line = self.array.peek(entry.lineno << self.array.line_shift)
        line.dirty = False  # step 1: mark clean BEFORE the write-back
        entry.in_flight = True
        addr = self.array.line_addr(line)
        ack = max(t, self._channel_free) + self.nvm.timings.line_write(
            len(line.data))
        self._channel_free = ack
        p = PendingWB(ack, entry.lineno, addr, list(line.data), entry)
        self.pending.append(p)
        self.stats.async_writebacks += 1
        return p

    def _ensure_slot(self, t: int) -> int:
        """Make room in the DirtyQueue for one new dirty line (§5.1).

        Returns stall cycles. Consults the dynamic-adaptation hook first;
        otherwise waits for the earliest in-flight ACK, or synchronously
        cleans a line when nothing is in flight.
        """
        stall = 0
        while self.dq.occupancy >= self.maxline:
            if (self.dynamic_policy is not None
                    and self.dynamic_policy.try_raise_maxline(self)):
                continue  # maxline grew; recheck
            if self.pending:
                p = self.pending[0]
                wait = p.ack - (t + stall)
                if wait > 0:
                    stall += wait
                    self.stall_events += 1
                self._retire_pending(p)
            else:
                entry = self.dq.select_victim(self.array)
                if entry is None:
                    if self.dq.occupancy >= self.maxline:
                        raise ReproError(
                            "DirtyQueue wedged: full of in-flight entries "
                            "with no pending write-backs")
                    continue
                # synchronous clean: no ILP available, pay the NVM write
                line = self.array.peek(entry.lineno << self.array.line_shift)
                line.dirty = False
                stall += self.nvm.write_line(self.array.line_addr(line),
                                             line.data)
                self.dq.remove(entry)
                self.sync_cleans += 1
                self.stall_events += 1
        self.stats.store_stall_cycles += stall
        return stall

    # ------------------------------------------------------------------
    # eviction/fill ordering overrides
    # ------------------------------------------------------------------
    def _flush_same_line_pending(self, lineno: int) -> None:
        if not self.pending:  # runs on every evict and fill: skip the scan
            return
        for p in [p for p in self.pending if p.lineno == lineno]:
            self._retire_pending(p)

    def _evict(self, line, now: int) -> int:
        # NVM same-address ordering: retire an older in-flight snapshot of
        # this line before writing the eviction data.
        self._flush_same_line_pending(line.tag)
        return super()._evict(line, now)

    def _fill(self, addr: int, now: int):
        # A re-fill must observe any in-flight write-back of the same line.
        self._flush_same_line_pending(addr >> self.array.line_shift)
        return super()._fill(addr, now)

    # ------------------------------------------------------------------
    # the write policy (§5.1)
    # ------------------------------------------------------------------
    def store(self, addr: int, value: int, now: int) -> int:
        return self.store_masked(addr, value, _FULL, now)

    def store_masked(self, addr: int, bits: int, mask: int, now: int) -> int:
        stats = self.stats
        stats.stores += 1
        stats.cache_write_energy_nj += self._e_write
        if self.pending:
            self._retire_acks(now)
        cycles = 0
        line = self._find(addr)
        if line is None:
            stats.write_misses += 1
            line, cycles = self._fill(addr, now)
        else:
            stats.write_hits += 1
        widx = (addr >> 2) & self._word_mask
        data = line.data
        if line.dirty:
            # same-dirty-line store: no DirtyQueue interaction (§5.1)
            data[widx] = (data[widx] & ~mask) | (bits & mask)
            return cycles + self._hit_write_cycles
        # clean -> dirty transition: needs a DirtyQueue slot
        cycles += self._ensure_slot(now + cycles)
        data[widx] = (data[widx] & ~mask) | (bits & mask)
        line.dirty = True
        self.dq.insert(line.tag)
        stats.cache_write_energy_nj += self.dq_access_energy_nj
        occ = self.dq.occupancy
        if occ > self.dirty_highwater:
            self.dirty_highwater = occ
        if occ > self.waterline:
            self._issue_writeback(now + cycles)
        return cycles + self._hit_write_cycles

    # ------------------------------------------------------------------
    # persistence protocol (§3.2)
    # ------------------------------------------------------------------
    def reserve_lines(self) -> int:
        # the JIT checkpoint writes at most maxline distinct lines
        return self.maxline

    def flush_for_checkpoint(self, now: int) -> FlushReport:
        report = FlushReport()
        # in-flight write-backs complete from the reserve (their entries are
        # still in the queue, so they are part of the maxline budget)
        for p in list(self.pending):
            self.nvm.write_line(p.addr, p.data)
            report.cycles += self.nvm.timings.line_write(len(p.data))
            report.lines_flushed += 1
            report.words_flushed += len(p.data)
        self.pending.clear()
        # then the dirty lines named by the DirtyQueue; a line that was both
        # in flight and re-dirtied is flushed twice, newest data last
        for lineno in self.dq.line_numbers():
            line = self.array.peek(lineno << self.array.line_shift)
            if line is None or not line.dirty:
                continue  # stale entry: safely ignored (§5.4)
            addr = self.array.line_addr(line)
            self.nvm.write_line(addr, line.data)
            line.dirty = False
            report.cycles += self.nvm.timings.line_write(len(line.data))
            report.lines_flushed += 1
            report.words_flushed += len(line.data)
        self.dq.clear()
        self._channel_free = 0
        return report

    def on_power_loss(self) -> None:
        super().on_power_loss()
        self.dq.clear()
        self.pending.clear()
        self._channel_free = 0

    def finalize(self, now: int) -> int:
        cycles = 0
        for p in list(self.pending):
            remaining = p.ack - now
            if remaining > 0:
                cycles += remaining
                now = p.ack
            self._retire_pending(p)
        self.dq.clear()
        self._channel_free = 0
        return cycles + super().finalize(now)

    def leakage_w(self) -> float:
        return self.params.leakage_w + self.dq_leakage_w

    # ------------------------------------------------------------------
    @property
    def dirty_count(self) -> int:
        """Number of currently dirty lines (for invariant checking)."""
        return len(self.array.dirty_lines())
