"""repro.core - WL-Cache, the paper's contribution."""

from repro.core.adaptive import AdaptiveConfig, AdaptiveController
from repro.core.dirty_queue import DQ_FIFO, DQ_LRU, DirtyQueue
from repro.core.dynamic import DynamicAdaptation
from repro.core.wl_cache import WLCache

__all__ = [
    "AdaptiveConfig",
    "AdaptiveController",
    "DQ_FIFO",
    "DQ_LRU",
    "DirtyQueue",
    "DynamicAdaptation",
    "WLCache",
]
