"""Opportunistic dynamic maxline adaptation - WL-Cache(dyn), §4.

When the dirty-line count hits maxline, instead of stalling the pipeline,
the dynamic policy checks the capacitor's residual energy: if there is
enough to JIT-checkpoint one more line (plus headroom), it raises maxline
by one and raises Vbackup accordingly, avoiding both the stall and a
write-back. The paper finds this wins on stable sources (solar/thermal)
but *loses* on bursty RF traces, where the prematurely raised Vbackup
wastes hard-won energy across frequent outages - our Figure 13a bench
reproduces exactly that crossover.
"""

from __future__ import annotations


class DynamicAdaptation:
    """The ``dynamic_policy`` hook installed on a WL-Cache instance.

    Holds a back-reference to the owning system, which knows how to price a
    bigger reserve and re-derive Vbackup.
    """

    def __init__(self, system, headroom_nj: float = 50.0):
        self.system = system
        self.headroom_nj = headroom_nj
        self.raises = 0
        self.rejections = 0

    def try_raise_maxline(self, wl) -> bool:
        """Attempt to grow maxline by one; returns True on success."""
        if wl.maxline >= wl.dq.capacity:
            self.rejections += 1
            return False
        system = self.system
        new_reserve = system.compute_reserve_nj(wl.maxline + 1)
        floor_nj = system.capacitor.energy_between(system.capacitor.v_min, 0.0)
        # residual energy must cover the larger reserve plus headroom to
        # keep making forward progress after the raise
        if system.capacitor.energy < floor_nj + new_reserve + self.headroom_nj:
            self.rejections += 1
            return False
        wl.set_thresholds(wl.maxline + 1, wl.waterline)
        system.update_reserve()
        self.raises += 1
        return True
