"""WL-Cache design-choice variants for ablation (§5.4, §4).

* :class:`EagerCleanupWLCache` - the design §5.4 rejects: on every cache
  eviction the DirtyQueue is searched and the matching entry removed
  eagerly. Frees queue slots sooner (fewer stale entries) at the cost of a
  CAM search per eviction - extra latency and energy the paper chose to
  avoid by tolerating stale entries.

* :class:`WideWaterlineWLCache` - convenience constructor for waterline-gap
  sweeps (waterline = maxline - gap); used by the ablation bench that
  justifies the paper's default gap of 1.
"""

from __future__ import annotations

from repro.core.wl_cache import WLCache
from repro.errors import ConfigError


class EagerCleanupWLCache(WLCache):
    """WL-Cache with eager DirtyQueue cleanup on eviction."""

    name = "WL-Cache(eager-cleanup)"

    def __init__(self, *args, dq_search_cycles: int = 2,
                 dq_search_energy_nj: float = 0.02, **kwargs):
        super().__init__(*args, **kwargs)
        self.dq_search_cycles = dq_search_cycles
        self.dq_search_energy_nj = dq_search_energy_nj
        self.eager_cleanups = 0
        self._search_cycles_total = 0

    def _note_dirty_evicted(self, lineno: int, now: int) -> None:
        # CAM search over the queue (the cost §5.4 avoids) ...
        self.stats.cache_write_energy_nj += self.dq_search_energy_nj
        self._search_cycles_total += self.dq_search_cycles
        # ... then eager removal of entries that would otherwise go stale;
        # in-flight entries must stay (their snapshot is not yet persisted)
        for entry in [e for e in self.dq.entries
                      if e.lineno == lineno and not e.in_flight]:
            self.dq.remove(entry)
            self.eager_cleanups += 1

    def _evict(self, line, now: int) -> int:
        return super()._evict(line, now) + (
            self.dq_search_cycles if line.dirty else 0)


def make_waterline_variant(nvm, geometry, replacement, params,
                           maxline: int = 6, gap: int = 1, **kwargs) -> WLCache:
    """WL-Cache with waterline = maxline - gap (gap 0 disables ILP slack)."""
    if not 0 <= gap <= maxline:
        raise ConfigError(f"gap must be in 0..maxline, got {gap}")
    return WLCache(nvm, geometry, replacement, params, maxline=maxline,
                   waterline=maxline - gap, **kwargs)
