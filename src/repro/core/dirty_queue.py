"""DirtyQueue: the small hardware structure at the heart of WL-Cache (§3, §5).

The queue tracks the line numbers of cache lines that became dirty. Entries
may be *stale* (the line was evicted or re-filled since) and may be
*duplicates* (a line went dirty again while its asynchronous write-back was
still in flight - the §5.3 clean-first protocol makes this legal by design).
Both are tolerated and lazily discarded, exactly as the paper specifies, to
keep the hardware search-free.

Replacement ("cleaning") policies:

* ``fifo`` - clean the oldest entry (the paper's default; the hardware is a
  circular queue, so the head is free to find).
* ``lru`` - clean the entry whose cache line was least recently used
  (requires a search; the energy model charges it extra per operation).
"""

from __future__ import annotations

from repro.errors import ConfigError

DQ_FIFO = "fifo"
DQ_LRU = "lru"
DQ_POLICIES = (DQ_FIFO, DQ_LRU)


class DQEntry:
    """One DirtyQueue slot.

    ``in_flight`` marks entries whose line is being written back
    asynchronously; they stay in the queue until the ACK arrives (§5.3
    step 4) so JIT checkpointing always covers them. ``queued`` mirrors
    membership in ``DirtyQueue.entries`` so ACK retirement can test it in
    O(1) instead of scanning the queue; the queue maintains it on every
    insert/remove/clear.
    """

    __slots__ = ("lineno", "in_flight", "seq", "queued")

    def __init__(self, lineno: int, seq: int):
        self.lineno = lineno
        self.in_flight = False
        self.seq = seq
        self.queued = True

    def __repr__(self) -> str:
        flag = "*" if self.in_flight else ""
        return f"DQEntry(line={self.lineno}{flag})"


class DirtyQueue:
    """Bounded queue of dirty-line addresses with FIFO/LRU cleaning.

    ``capacity`` is the physical queue size (|DirtyQueue|); the *effective*
    bound enforced at insertion time is ``maxline``, managed by WL-Cache.
    """

    def __init__(self, capacity: int = 8, policy: str = DQ_FIFO):
        if capacity < 1:
            raise ConfigError("DirtyQueue capacity must be >= 1")
        if policy not in DQ_POLICIES:
            raise ConfigError(f"unknown DirtyQueue policy {policy!r}")
        self.capacity = capacity
        self.policy = policy
        self.entries: list[DQEntry] = []
        self._seq = 0
        # statistics
        self.inserts = 0
        self.duplicate_inserts = 0
        self.stale_drops = 0

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def occupancy(self) -> int:
        return len(self.entries)

    def is_full(self) -> bool:
        return len(self.entries) >= self.capacity

    def insert(self, lineno: int) -> DQEntry:
        """Append an entry for ``lineno`` (caller checks maxline first)."""
        if self.is_full():
            raise ConfigError("DirtyQueue overflow: maxline must be <= capacity")
        self._seq += 1
        entry = DQEntry(lineno, self._seq)
        if any(e.lineno == lineno for e in self.entries):
            self.duplicate_inserts += 1
        self.entries.append(entry)
        self.inserts += 1
        return entry

    def eligible(self) -> list[DQEntry]:
        """Entries not already being written back."""
        return [e for e in self.entries if not e.in_flight]

    def select_victim(self, array) -> DQEntry | None:
        """Pick the next entry to clean per the DQ replacement policy (§5.2).

        Stale entries (line gone or already clean) encountered during
        selection are dropped, per §5.4's lazy-cleanup rule. Returns None
        when no eligible dirty entry exists.
        """
        while True:
            candidates = self.eligible()
            if not candidates:
                return None
            if self.policy == DQ_FIFO:
                chosen = candidates[0]
            else:
                # LRU: least-recently-used *cache line* among candidates
                def use_stamp(e: DQEntry) -> int:
                    line = array.peek(e.lineno << array.line_shift)
                    return line.use_stamp if line is not None else -1
                chosen = min(candidates, key=use_stamp)
            line = array.peek(chosen.lineno << array.line_shift)
            if line is None or not line.dirty:
                # stale (evicted, re-filled, or already cleaned): drop & retry
                self.entries.remove(chosen)
                chosen.queued = False
                self.stale_drops += 1
                continue
            return chosen

    def remove(self, entry: DQEntry) -> None:
        """Remove a specific entry (on write-back ACK, §5.3 step 4)."""
        self.entries.remove(entry)
        entry.queued = False

    def clear(self) -> None:
        for entry in self.entries:
            entry.queued = False
        self.entries.clear()

    def line_numbers(self) -> list[int]:
        """Line numbers currently tracked (duplicates included), in order."""
        return [e.lineno for e in self.entries]
