"""Boot-time adaptive maxline/waterline management (§4).

At each reboot the runtime compares the last two power-on durations
(T_{n-2}, T_{n-1}):

* a significantly longer T_{n-1} implies a good energy source: raise
  maxline (and waterline = maxline - 1) so WL-Cache behaves more like a
  write-back cache;
* a significantly shorter one implies a deteriorating source: lower both so
  WL-Cache leans write-through and spends less reserve on checkpointing;
* otherwise the thresholds stay put.

Thresholds are only ever changed at boot - changing them mid-run could
invalidate the JIT-checkpoint energy guarantee (§4). The controller also
scores its own predictions (the paper reports >98 % accuracy): after a
"raise" (resp. "lower") decision, the prediction counts as correct when the
next on-time did not significantly shrink (resp. grow).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class AdaptiveConfig:
    """Tuning of the boot-time adaptation policy.

    ``up_ratio``/``down_ratio`` define the significance band on the ratio
    T_{n-1}/T_{n-2}; the maxline range matches the paper's observed 2..6.
    """

    min_maxline: int = 2
    max_maxline: int = 6
    up_ratio: float = 1.20
    down_ratio: float = 0.83

    def __post_init__(self) -> None:
        if not 1 <= self.min_maxline <= self.max_maxline:
            raise ConfigError("need 1 <= min_maxline <= max_maxline")
        if not 0 < self.down_ratio < 1.0 < self.up_ratio:
            raise ConfigError("need down_ratio < 1 < up_ratio")


class AdaptiveController:
    """Decides the next-interval maxline from the last two on-times."""

    def __init__(self, config: AdaptiveConfig | None = None):
        self.config = config or AdaptiveConfig()
        self.reconfig_count = 0
        self.raise_count = 0
        self.lower_count = 0
        self.maxline_history: list[int] = []
        #: -1 lowered, 0 kept, +1 raised; None before any scored decision
        self._last_decision: int | None = None
        self._pred_total = 0
        self._pred_correct = 0

    def decide(self, on_times: list[int], cur_maxline: int) -> int:
        """Return the maxline for the next interval.

        ``on_times`` holds the most recent power-on durations (ns), oldest
        first; fewer than two means no signal yet.
        """
        cfg = self.config
        new = max(cfg.min_maxline, min(cfg.max_maxline, cur_maxline))
        if len(on_times) >= 2 and on_times[-2] > 0:
            ratio = on_times[-1] / on_times[-2]
            # Score the previous decision before making a new one. A
            # prediction only counts as wrong when the next interval
            # strongly contradicts it (the source moved the opposite way by
            # more than the adaptation band) - the paper's >98 % accuracy
            # metric tolerates in-band noise.
            if self._last_decision is not None:
                self._pred_total += 1
                if self._last_decision > 0:
                    self._pred_correct += ratio >= cfg.down_ratio ** 2
                elif self._last_decision < 0:
                    self._pred_correct += ratio <= cfg.up_ratio ** 2
                else:
                    self._pred_correct += (cfg.down_ratio ** 2 <= ratio
                                           <= cfg.up_ratio ** 2)
            if ratio >= cfg.up_ratio and new < cfg.max_maxline:
                new += 1
                self.raise_count += 1
                self._last_decision = 1
            elif ratio <= cfg.down_ratio and new > cfg.min_maxline:
                new -= 1
                self.lower_count += 1
                self._last_decision = -1
            else:
                self._last_decision = 0
        if new != cur_maxline:
            self.reconfig_count += 1
        self.maxline_history.append(new)
        return new

    @property
    def prediction_accuracy(self) -> float:
        """Fraction of raise/lower decisions validated by the next interval."""
        return self._pred_correct / self._pred_total if self._pred_total else 1.0

    @property
    def min_max_seen(self) -> tuple[int, int]:
        if not self.maxline_history:
            return (0, 0)
        return (min(self.maxline_history), max(self.maxline_history))
