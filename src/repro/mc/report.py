"""Render campaign summaries as JSON, CSV, and SVG.

The CSV is the flat per-group table (one row per
``(workload, design, family)``) the existing ``repro plot`` tooling and
spreadsheets consume; the SVG upgrades the fig05/06-style bar
comparison to *interval estimates*: per-design gmean speedup dots with
bootstrap confidence whiskers, one panel column per trace family. All
output is a pure function of the summary dict, so fixed-seed campaign
artifacts are byte-stable.
"""

from __future__ import annotations

import json

from repro.analysis.plot import PALETTE, _nice_ticks, _Svg
from repro.errors import ConfigError

_CSV_COLUMNS = (
    "workload", "design", "family", "n",
    "progress_mean", "progress_ci_lo", "progress_ci_hi",
    "progress_p95", "progress_p99",
    "time_mean_ns", "time_p95_ns",
    "outages_mean", "outages_p95", "outages_max",
    "speedup_mean", "speedup_ci_lo", "speedup_ci_hi",
)


def _fmt(v: float) -> str:
    return f"{v:.6g}"


def write_summary_json(summary: dict, path: str) -> str:
    """Write the summary dict as stable (sorted-key) JSON."""
    with open(path, "w") as f:
        json.dump(summary, f, indent=1, sort_keys=True)
        f.write("\n")
    return path


def write_summary_csv(summary: dict, path: str) -> str:
    """Flat per-group table; speedup cells are blank for the baseline."""
    lines = [",".join(_CSV_COLUMNS)]
    for g in summary["groups"]:
        pr, t, o = g["progress_rate"], g["total_time_ns"], g["outages"]
        sp = g.get("speedup")
        row = [
            g["workload"], g["design"], g["family"], str(pr["n"]),
            _fmt(pr["mean"]), _fmt(pr["ci_lo"]), _fmt(pr["ci_hi"]),
            _fmt(pr["p95"]), _fmt(pr["p99"]),
            _fmt(t["mean"]), _fmt(t["p95"]),
            _fmt(o["mean"]), _fmt(o["p95"]), _fmt(o["max"]),
        ]
        if sp is None:
            row += ["", "", ""]
        else:
            row += [_fmt(sp["mean"]), _fmt(sp["ci_lo"]), _fmt(sp["ci_hi"])]
        lines.append(",".join(row))
    for a in summary["speedup_aggregate"]:
        lines.append(",".join([
            "gmean", a["design"], a["family"], str(a["n"]),
            "", "", "", "", "", "", "", "", "", "",
            _fmt(a["speedup_gmean"]), _fmt(a["ci_lo"]), _fmt(a["ci_hi"]),
        ]))
    with open(path, "w") as f:
        f.write("\n".join(lines) + "\n")
    return path


def render_interval_svg(summary: dict, path: str,
                        width: int = 760, height: int = 360) -> str:
    """Gmean-speedup interval chart: dot + CI whisker per design,
    grouped by trace family, dashed line at speedup 1.0."""
    agg = summary["speedup_aggregate"]
    if not agg:
        raise ConfigError(
            "summary has no speedup aggregate (baseline design missing "
            "from the campaign?)")
    families = sorted({a["family"] for a in agg})
    designs = sorted({a["design"] for a in agg})
    by_cell = {(a["design"], a["family"]): a for a in agg}

    lo = min(min(a["ci_lo"], a["speedup_gmean"]) for a in agg)
    hi = max(max(a["ci_hi"], a["speedup_gmean"]) for a in agg)
    lo = min(lo, 1.0)
    hi = max(hi, 1.0)
    pad = 0.08 * (hi - lo) or 0.1
    lo_t, hi_t = lo - pad, hi + pad

    x0, x1 = 64, width - 16
    y0, y1 = height - 64, 40

    def ty(v: float) -> float:
        return y0 + (v - lo_t) / (hi_t - lo_t) * (y1 - y0)

    svg = _Svg(width, height)
    svg.line(x0, y0, x1, y0)
    svg.line(x0, y0, x0, y1)
    for tick in _nice_ticks(lo_t, hi_t, 5):
        y = ty(tick)
        if y > y0 or y < y1:
            continue
        svg.line(x0 - 3, y, x1, y, color="#ddd", width=0.6)
        svg.text(x0 - 6, y + 3.5, f"{tick:g}", size=10, anchor="end")
    svg.line(x0, ty(1.0), x1, ty(1.0), color="#c00", width=0.8, dash="4,3")
    svg.text(width / 2, 18,
             f"gmean speedup vs {summary['baseline']} "
             f"({summary['confidence']:.0%} bootstrap CI)", size=13)

    slot = (x1 - x0) / len(families)
    step = 0.8 * slot / max(1, len(designs))
    for fi, family in enumerate(families):
        gx = x0 + fi * slot + 0.1 * slot + step / 2
        for di, design in enumerate(designs):
            a = by_cell.get((design, family))
            if a is None:
                continue
            x = gx + di * step
            color = PALETTE[di % len(PALETTE)]
            svg.line(x, ty(a["ci_lo"]), x, ty(a["ci_hi"]), color=color,
                     width=1.6)
            svg.line(x - 3, ty(a["ci_lo"]), x + 3, ty(a["ci_lo"]),
                     color=color, width=1.2)
            svg.line(x - 3, ty(a["ci_hi"]), x + 3, ty(a["ci_hi"]),
                     color=color, width=1.2)
            svg.circle(x, ty(a["speedup_gmean"]), 3.0, color)
        svg.text(x0 + fi * slot + slot / 2, y0 + 14, family, size=10)

    lx = x0
    ly = height - 14
    for di, design in enumerate(designs):
        color = PALETTE[di % len(PALETTE)]
        svg.rect(lx, ly - 8, 9, 9, color)
        svg.text(lx + 13, ly, design, size=10, anchor="start")
        lx += 13 + 7 * len(design) + 18
    with open(path, "w") as f:
        f.write(svg.render())
    return path


def render_survival_svg(summary: dict, path: str,
                        width: int = 760, height: int = 360) -> str:
    """Outage-survival step curves, one per (design, family) group,
    pooled over workloads: S(k) = fraction of runs with >= k outages."""
    pooled: dict[tuple[str, str], dict[float, list[float]]] = {}
    for g in summary["groups"]:
        cell = pooled.setdefault((g["design"], g["family"]), {})
        for k, frac in g["outages"]["survival"]:
            cell.setdefault(k, []).append(frac)
    if not pooled:
        raise ConfigError("summary has no groups")
    max_k = max((k for cell in pooled.values() for k in cell), default=1.0)
    max_k = max(max_k, 1.0)

    x0, x1 = 64, width - 16
    y0, y1 = height - 64, 40

    def tx(k: float) -> float:
        return x0 + k / max_k * (x1 - x0)

    def ty(s: float) -> float:
        return y0 + s * (y1 - y0)

    svg = _Svg(width, height)
    svg.line(x0, y0, x1, y0)
    svg.line(x0, y0, x0, y1)
    for s in (0.0, 0.25, 0.5, 0.75, 1.0):
        svg.line(x0 - 3, ty(s), x1, ty(s), color="#ddd", width=0.6)
        svg.text(x0 - 6, ty(s) + 3.5, f"{s:g}", size=10, anchor="end")
    for k in _nice_ticks(0.0, max_k, 6):
        if 0 <= k <= max_k:
            svg.text(tx(k), y0 + 14, f"{k:g}", size=10)
    svg.text(width / 2, 18, "outage survival S(k) = P[outages >= k]",
             size=13)
    svg.text(width / 2, y0 + 30, "k (outages per run)", size=11)

    names = sorted(pooled)
    for i, key in enumerate(names):
        cell = pooled[key]
        color = PALETTE[i % len(PALETTE)]
        # average the per-workload curves at each threshold, carrying
        # the previous level forward where a workload has no step
        pts = []
        prev = 1.0
        for k in sorted(cell):
            level = sum(cell[k]) / len(cell[k])
            pts.append((tx(k), ty(prev)))
            pts.append((tx(k), ty(level)))
            prev = level
        pts.append((tx(max_k), ty(prev)))
        svg.polyline(pts, color)
    lx = x0
    ly = height - 14
    for i, (design, family) in enumerate(names):
        color = PALETTE[i % len(PALETTE)]
        svg.rect(lx, ly - 8, 9, 9, color)
        label = f"{design} / {family}"
        svg.text(lx + 13, ly, label, size=10, anchor="start")
        lx += 13 + 7 * len(label) + 18
    with open(path, "w") as f:
        f.write(svg.render())
    return path


def write_report(summary: dict, out_prefix: str,
                 svg: bool = True) -> list[str]:
    """Write summary.json + summary.csv (+ interval/survival SVGs when
    a baseline is present); returns the written paths."""
    written = [
        write_summary_json(summary, out_prefix + "_summary.json"),
        write_summary_csv(summary, out_prefix + "_summary.csv"),
    ]
    if svg:
        if summary["speedup_aggregate"]:
            written.append(render_interval_svg(
                summary, out_prefix + "_speedup.svg"))
        written.append(render_survival_svg(
            summary, out_prefix + "_survival.svg"))
    return written
