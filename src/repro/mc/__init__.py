"""repro.mc - Monte-Carlo outage campaigns with statistical reporting.

A *campaign* runs a grid of ``(workload, design, trace family, seed)``
points - the same simulator runs the sweeps use, but with the power
condition drawn from a seeded stochastic ensemble
(:mod:`repro.energy.stochastic`) instead of a single deterministic
trace. The engine (:mod:`repro.mc.engine`) shards points over the
existing serial/parallel/batch execution tiers bit-identically; the
analysis layer (:mod:`repro.mc.stats`) turns the per-point results into
bootstrap confidence intervals, p95/p99 tail forward progress, and
outage-survival distributions; :mod:`repro.mc.report` renders the
summary as CSV/SVG/JSON.

See ``docs/monte-carlo.md`` and the ``repro campaign`` CLI.
"""

from repro.mc.engine import (CampaignSpec, campaign_to_dict, expand_campaign,
                             load_campaign, merge_campaigns, run_campaign,
                             run_campaign_tasks, save_campaign)
from repro.mc.report import write_report
from repro.mc.stats import (bootstrap_ci, gmean, quantile, summarize_campaign,
                            survival_curve)

__all__ = [
    "CampaignSpec",
    "bootstrap_ci",
    "campaign_to_dict",
    "expand_campaign",
    "gmean",
    "load_campaign",
    "merge_campaigns",
    "quantile",
    "run_campaign",
    "run_campaign_tasks",
    "save_campaign",
    "summarize_campaign",
    "survival_curve",
    "write_report",
]
