"""Campaign runner: shard (workload x design x family x seed) points.

A campaign point is an ordinary sweep task whose power condition is a
stochastic family member: the task carries ``trace=family`` and
``overrides["trace_seed"]=seed``, so every execution tier already knows
how to run it - the serial loop, the process pool
(:mod:`repro.sim.parallel`), and the batch record-once/replay-many
engine (:mod:`repro.batch`), which is what makes per-seed cost cheap:
the architectural stream depends only on the kernel, so one recording
serves *every* seed and design in the group, and only the trace-driven
outage/timing replay differs per point.

The sweep engine keys results by ``(workload, design)``; a campaign has
many points per pair, so this module runs the same chunk bodies and
worker initializer but keys every result by the full
``(workload, design, family, seed)`` :data:`PointKey`. Results are
bit-identical across serial, parallel, and batch execution and
independent of shard order and worker count - the campaign tests
enforce both.

Campaigns persist as JSON (:func:`save_campaign` /
:func:`load_campaign`) holding per-point stats dicts
(:func:`repro.analysis.stats_io.result_to_dict` shape), and partial
campaigns merge losslessly (:func:`merge_campaigns`) - resumed or
sharded-across-machines campaigns summarize identically to a single
run.
"""

from __future__ import annotations

import json
from collections.abc import Callable, Iterable
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro.batch.engine import iter_outcomes, task_batch_eligible
from repro.errors import ConfigError, SweepError
from repro.sim.config import SimConfig
from repro.sim.factory import validate_design
from repro.sim.parallel import (SweepTask, _chunked, _init_worker,
                                _pop_stats, _run_chunk, resolve_jobs,
                                run_task, worker_initargs)
from repro.sim.results import RunResult

#: (workload, design, family, seed) - the identity of one campaign point.
PointKey = tuple[str, str, str, int]

#: ``progress(done, total, key)`` with the full point key.
CampaignProgressFn = Callable[[int, int, PointKey], None]

_CAMPAIGN_FORMAT = 1


@dataclass(frozen=True)
class CampaignSpec:
    """The full cross product a campaign runs.

    ``families`` are stochastic trace family names (``mc-*``,
    ``csv:<path>``, or any registered family - the deterministic named
    sources work too, they just collapse the seed axis to identical
    conditions). ``seeds`` feed ``SimConfig.trace_seed`` per point.
    """

    workloads: tuple[str, ...]
    designs: tuple[str, ...]
    families: tuple[str, ...] = ("mc-rf-home", "mc-rf-office")
    seeds: tuple[int, ...] = tuple(range(8))
    scale: float = 1.0
    verify: bool = True
    config: SimConfig | None = None
    overrides: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        for axis, values in (("workloads", self.workloads),
                             ("designs", self.designs),
                             ("families", self.families),
                             ("seeds", self.seeds)):
            if not values:
                raise ConfigError(f"campaign {axis} must be non-empty")
        if "trace_seed" in self.overrides:
            raise ConfigError(
                "campaign overrides may not set trace_seed - the seed "
                "axis owns it")

    @property
    def n_points(self) -> int:
        return (len(self.workloads) * len(self.designs)
                * len(self.families) * len(self.seeds))


def expand_campaign(spec: CampaignSpec) -> list[tuple[PointKey, SweepTask]]:
    """Expand a spec into ``(key, task)`` pairs, workload-major.

    Workload-major ordering keeps every point sharing a kernel
    contiguous, so batch-aligned chunking never tears a record/replay
    group across pool workers.
    """
    from repro.energy.synthetic import make_trace
    from repro.workloads import get_workload

    for d in spec.designs:
        validate_design(d)
    for fam in spec.families:
        make_trace(fam, int(spec.seeds[0]))  # fail fast on unknown families
    pairs: list[tuple[PointKey, SweepTask]] = []
    for wname in spec.workloads:
        get_workload(wname)  # fail fast on unknown names
        for design in spec.designs:
            for fam in spec.families:
                for seed in spec.seeds:
                    overrides = dict(spec.overrides)
                    overrides["trace_seed"] = int(seed)
                    key = (wname, design, fam, int(seed))
                    pairs.append((key, SweepTask(
                        wname, design, fam, spec.scale, spec.verify,
                        spec.config, overrides)))
    return pairs


def _run_serial(pairs: list[tuple[PointKey, SweepTask]],
                progress: CampaignProgressFn | None
                ) -> dict[PointKey, RunResult]:
    total = len(pairs)
    by_key: dict[PointKey, RunResult] = {}
    tasks = [task for _, task in pairs]
    if any(task_batch_eligible(t) for t in tasks):
        # the batch engine yields (task, outcome) unit-by-unit; key by
        # task identity, exactly like its own chunk body does
        keyof = {id(task): key for key, task in pairs}
        done = 0
        for task, outcome in iter_outcomes(tasks, run_task):
            if outcome[0] != "ok":
                raise outcome[1]
            by_key[keyof[id(task)]] = outcome[1]
            done += 1
            if progress is not None:
                progress(done, total, keyof[id(task)])
    else:
        for i, (key, task) in enumerate(pairs):
            by_key[key] = run_task(task)
            if progress is not None:
                progress(i + 1, total, key)
    return {key: by_key[key] for key, _ in pairs}


def run_campaign_tasks(pairs: list[tuple[PointKey, SweepTask]],
                       jobs: int | None = None,
                       progress: CampaignProgressFn | None = None
                       ) -> dict[PointKey, RunResult]:
    """Run expanded campaign points; results keyed by point, task order.

    Mirrors :func:`repro.sim.parallel.run_tasks` - same worker body,
    initializer, chunking, and failure reporting - but keys by the full
    :data:`PointKey` so seeds of one ``(workload, design)`` pair don't
    collide.
    """
    jobs = resolve_jobs(jobs, fallback=1)
    total = len(pairs)
    if jobs <= 1 or total < 2:
        return _run_serial(pairs, progress)
    tasks = [task for _, task in pairs]
    keyof = {id(task): key for key, task in pairs}
    batching = any(task_batch_eligible(t) for t in tasks)
    chunks = _chunked(tasks, jobs, align_batches=batching)
    by_key: dict[PointKey, RunResult] = {}
    failures: list[tuple] = []
    done = 0
    with ProcessPoolExecutor(max_workers=min(jobs, total),
                             initializer=_init_worker,
                             initargs=worker_initargs()) as pool:
        futures = {pool.submit(_run_chunk, chunk): chunk for chunk in chunks}
        pending = set(futures)
        while pending:
            finished, pending = wait(pending, return_when=FIRST_EXCEPTION)
            for fut in finished:
                chunk = futures[fut]
                try:
                    records = fut.result()
                except BrokenProcessPool:
                    for task in chunk:
                        failures.append((keyof[id(task)], None, None,
                                         "worker process crashed "
                                         "(pool broken)"))
                    continue
                records = _pop_stats(records)
                for task, rec in zip(chunk, records):
                    key = keyof[id(task)]
                    if rec[0] == "ok":
                        by_key[key] = rec[1]
                        done += 1
                        if progress is not None:
                            progress(done, total, key)
                    else:
                        failures.append((key, rec[1], rec[2], rec[3]))
    if failures:
        head = failures[0]
        detail = head[3] if head[2] is None else f"{head[1]}: {head[2]}"
        raise SweepError(
            f"{len(failures)} of the campaign's points failed across "
            f"{jobs} workers; first failure at (workload={head[0][0]!r}, "
            f"design={head[0][1]!r}, family={head[0][2]!r}, "
            f"seed={head[0][3]}): {detail}",
            failures=tuple(f[0] for f in failures))
    return {key: by_key[key] for key, _ in pairs}


def run_campaign(spec: CampaignSpec, jobs: int | None = None,
                 progress: CampaignProgressFn | None = None
                 ) -> dict[PointKey, RunResult]:
    """Expand and run a campaign; returns ``{point key: RunResult}``."""
    return run_campaign_tasks(expand_campaign(spec), jobs=jobs,
                              progress=progress)


# ---------------------------------------------------------------------------
# persistence + lossless merge
# ---------------------------------------------------------------------------


def campaign_to_dict(points: dict[PointKey, RunResult],
                     include_periods: bool = False,
                     cache_stats: dict | None = None) -> dict:
    """JSON-able campaign: sorted point entries of stats dicts.

    ``cache_stats`` optionally embeds the shard's record/replay cache
    counters (:func:`repro.batch.engine.batch_stats` event keys), so a
    merge of shard files can report how many guest-stream recordings
    the whole campaign actually paid for versus served from cache.
    """
    from repro.analysis.stats_io import result_to_dict

    entries = []
    for key in sorted(points):
        wname, design, family, seed = key
        entries.append({
            "workload": wname, "design": design, "family": family,
            "seed": seed,
            "result": result_to_dict(points[key], include_periods),
        })
    out = {"format_version": _CAMPAIGN_FORMAT, "points": entries}
    if cache_stats:
        out["cache_stats"] = {k: int(v) for k, v in
                              sorted(cache_stats.items()) if v}
    return out


def dict_to_points(data: dict) -> dict[PointKey, RunResult]:
    """Rebuild stats-only results from a campaign dict."""
    from repro.analysis.stats_io import result_from_dict

    if data.get("format_version") != _CAMPAIGN_FORMAT:
        raise ConfigError(
            f"unsupported campaign format {data.get('format_version')!r}")
    points: dict[PointKey, RunResult] = {}
    for entry in data["points"]:
        key = (entry["workload"], entry["design"], entry["family"],
               int(entry["seed"]))
        points[key] = result_from_dict(entry["result"])
    return points


def save_campaign(points: dict[PointKey, RunResult], path: str,
                  include_periods: bool = False,
                  cache_stats: dict | None = None) -> str:
    """Write campaign points as JSON; returns the path."""
    with open(path, "w") as f:
        json.dump(campaign_to_dict(points, include_periods, cache_stats),
                  f, indent=1)
    return path


def load_campaign(path: str) -> dict[PointKey, RunResult]:
    with open(path) as f:
        return dict_to_points(json.load(f))


def merge_campaigns(dicts: Iterable[dict]) -> dict:
    """Losslessly merge campaign dicts (resumed/partial shards).

    Points are unioned by key. A key appearing in several shards must
    carry an identical result payload - the simulator is deterministic
    per point, so a mismatch means the shards were produced by
    different code or configs, and silently picking one would poison
    the statistics; that raises :class:`~repro.errors.ConfigError`,
    exactly like :func:`repro.obs.metrics.merge_metrics` refuses
    incompatible histograms.
    """
    merged: dict[PointKey, dict] = {}
    cache_stats: dict[str, int] = {}
    for data in dicts:
        if data.get("format_version") != _CAMPAIGN_FORMAT:
            raise ConfigError(
                f"unsupported campaign format "
                f"{data.get('format_version')!r}")
        for entry in data["points"]:
            key = (entry["workload"], entry["design"], entry["family"],
                   int(entry["seed"]))
            prev = merged.get(key)
            if prev is None:
                merged[key] = entry
            elif prev["result"] != entry["result"]:
                raise ConfigError(
                    f"cannot merge campaigns: point {key} has two "
                    f"different results (shards from different code or "
                    f"configs?)")
        for k, v in data.get("cache_stats", {}).items():
            cache_stats[k] = cache_stats.get(k, 0) + int(v)
    out = {"format_version": _CAMPAIGN_FORMAT,
           "points": [merged[key] for key in sorted(merged)]}
    if cache_stats:
        # shard counters sum: events, not gauges, so addition is exact
        out["cache_stats"] = dict(sorted(cache_stats.items()))
    return out
