"""Campaign statistics: bootstrap CIs, tail quantiles, outage survival.

Everything here is deterministic: quantiles interpolate linearly on
sorted values, the bootstrap is seeded (``random.Random``), and group
values are always consumed in sorted point-key order - so a campaign
summary is bit-identical whatever engine, shard order, or worker count
produced the points, and a fixed-seed campaign summary can be
golden-tested exactly.

Metrics:

* **forward progress** - instructions retired per nanosecond of wall
  clock (outage charging included), the rate the paper's fig05/06
  normalized-runtime comparisons reduce to;
* **speedup** - per-(workload, family, seed) runtime ratio against the
  baseline design, when the campaign includes it;
* **outage survival** - for each group, ``S(k)`` = fraction of runs
  that experienced at least ``k`` outages, the distributional view of
  the paper's single outage counts.
"""

from __future__ import annotations

import bisect
import math
import random
import zlib

from repro.errors import ConfigError
from repro.sim.config import BASELINE_DESIGN
from repro.sim.results import RunResult

_SUMMARY_FORMAT = 1


def quantile(values, q: float) -> float:
    """Linear-interpolation quantile of ``values`` (q in [0, 1])."""
    if not 0.0 <= q <= 1.0:
        raise ConfigError(f"quantile q must be in [0, 1], got {q!r}")
    xs = sorted(values)
    if not xs:
        raise ConfigError("quantile of no values")
    if len(xs) == 1:
        return float(xs[0])
    pos = q * (len(xs) - 1)
    lo = int(math.floor(pos))
    hi = min(lo + 1, len(xs) - 1)
    frac = pos - lo
    return xs[lo] + (xs[hi] - xs[lo]) * frac


def mean(values) -> float:
    xs = list(values)
    if not xs:
        raise ConfigError("mean of no values")
    return sum(xs) / len(xs)


def gmean(values) -> float:
    """Geometric mean (speedup aggregation, like the benches)."""
    xs = list(values)
    if not xs:
        raise ConfigError("gmean of no values")
    if any(x <= 0 for x in xs):
        raise ConfigError("gmean needs positive values")
    return math.exp(sum(math.log(x) for x in xs) / len(xs))


def bootstrap_ci(values, confidence: float = 0.95, n_boot: int = 1000,
                 seed: int = 0, statistic=None) -> tuple[float, float]:
    """Seeded percentile-bootstrap CI for ``statistic`` (default mean).

    Resamples ``values`` with replacement ``n_boot`` times and returns
    the ``(1 - confidence) / 2`` and ``1 - (1 - confidence) / 2``
    quantiles of the resampled statistics. Deterministic in
    ``(values order, n_boot, seed)``. A single value yields a
    degenerate interval at that value.
    """
    xs = list(values)
    if not xs:
        raise ConfigError("bootstrap of no values")
    if not 0.0 < confidence < 1.0:
        raise ConfigError(f"confidence must be in (0, 1), got {confidence!r}")
    stat = mean if statistic is None else statistic
    if len(xs) == 1:
        v = float(stat(xs))
        return (v, v)
    rng = random.Random(seed)
    n = len(xs)
    stats = sorted(stat([xs[rng.randrange(n)] for _ in range(n)])
                   for _ in range(n_boot))
    alpha = (1.0 - confidence) / 2.0
    return (quantile(stats, alpha), quantile(stats, 1.0 - alpha))


def survival_curve(values) -> list[list[float]]:
    """``[[k, S(k)], ...]`` with ``S(k)`` = fraction of values >= k.

    Thresholds are the distinct observed values plus 0, ascending -
    ``S(0)`` is always 1.0 and the curve steps down to the max.
    """
    xs = sorted(values)
    if not xs:
        raise ConfigError("survival curve of no values")
    n = len(xs)
    thresholds = sorted({0, *xs})
    curve = []
    for k in thresholds:
        at_least = n - bisect.bisect_left(xs, k)
        curve.append([float(k), at_least / n])
    return curve


def progress_rate(res: RunResult) -> float:
    """Forward progress: instructions per ns of wall clock (with
    charging time), scaled to instructions/us for readable magnitudes."""
    if res.total_time_ns <= 0:
        return 0.0
    return res.instructions / res.total_time_ns * 1e3


def _dist(values, confidence: float, n_boot: int, seed: int) -> dict:
    """The per-metric summary block: mean + CI + tail quantiles."""
    lo, hi = bootstrap_ci(values, confidence, n_boot, seed)
    return {
        "n": len(values),
        "mean": mean(values),
        "ci_lo": lo,
        "ci_hi": hi,
        "p50": quantile(values, 0.50),
        "p95": quantile(values, 0.95),
        "p99": quantile(values, 0.99),
        "min": float(min(values)),
        "max": float(max(values)),
    }


def summarize_campaign(points: dict, baseline: str = BASELINE_DESIGN,
                       confidence: float = 0.95, n_boot: int = 1000,
                       boot_seed: int = 2023) -> dict:
    """Distill campaign points into a deterministic summary dict.

    ``points`` maps ``(workload, design, family, seed)`` to
    :class:`RunResult` (full or stats-only - only reportable scalars
    are consumed). Groups are ``(workload, design, family)`` with the
    seed axis as the sample; the ``speedup`` block appears when the
    group's ``(workload, family)`` also ran the ``baseline`` design.
    Per-group bootstrap seeds derive deterministically from
    ``boot_seed`` and the group identity, so a merged campaign
    summarizes identically to a single-run one.
    """
    if not points:
        raise ConfigError("cannot summarize an empty campaign")
    keys = sorted(points)
    workloads = sorted({k[0] for k in keys})
    designs = sorted({k[1] for k in keys})
    families = sorted({k[2] for k in keys})
    seeds = sorted({k[3] for k in keys})

    groups: dict[tuple[str, str, str], list[tuple[int, RunResult]]] = {}
    for key in keys:
        groups.setdefault((key[0], key[1], key[2]), []).append(
            (key[3], points[key]))

    def group_seed(*ident) -> int:
        return boot_seed ^ zlib.crc32("/".join(str(x) for x in ident)
                                      .encode())

    out_groups = []
    # (design, family) -> per-(workload, seed) speedups, sorted order
    agg_speedups: dict[tuple[str, str], list[float]] = {}
    for (wname, design, family), members in sorted(groups.items()):
        members.sort()
        rates = [progress_rate(res) for _, res in members]
        times = [float(res.total_time_ns) for _, res in members]
        outages = [res.outages for _, res in members]
        block = {
            "workload": wname,
            "design": design,
            "family": family,
            "progress_rate": _dist(rates, confidence, n_boot,
                                   group_seed(wname, design, family, "pr")),
            "total_time_ns": _dist(times, confidence, n_boot,
                                   group_seed(wname, design, family, "t")),
            "outages": {
                "mean": mean(outages),
                "p95": quantile(outages, 0.95),
                "p99": quantile(outages, 0.99),
                "max": float(max(outages)),
                "survival": survival_curve(outages),
            },
        }
        if design != baseline:
            speedups = []
            for seed, res in members:
                base = points.get((wname, baseline, family, seed))
                if base is None or res.total_time_ns <= 0:
                    speedups = []
                    break
                speedups.append(base.total_time_ns / res.total_time_ns)
            if speedups:
                block["speedup"] = _dist(
                    speedups, confidence, n_boot,
                    group_seed(wname, design, family, "sp"))
                agg_speedups.setdefault((design, family),
                                        []).extend(speedups)
        out_groups.append(block)

    agg = []
    for (design, family), sp in sorted(agg_speedups.items()):
        lo, hi = bootstrap_ci(sp, confidence, n_boot,
                              group_seed(design, family, "agg"),
                              statistic=gmean)
        agg.append({
            "design": design,
            "family": family,
            "n": len(sp),
            "speedup_gmean": gmean(sp),
            "ci_lo": lo,
            "ci_hi": hi,
            "p5": quantile(sp, 0.05),
            "p95": quantile(sp, 0.95),
        })

    return {
        "format_version": _SUMMARY_FORMAT,
        "baseline": baseline,
        "confidence": confidence,
        "n_boot": n_boot,
        "boot_seed": boot_seed,
        "n_points": len(keys),
        "workloads": workloads,
        "designs": designs,
        "families": families,
        "seeds": seeds,
        "groups": out_groups,
        "speedup_aggregate": agg,
    }
