"""Guest streams: the recorded execution in replay-ready form.

A :class:`GuestStream` is the structure-of-arrays expansion of one
recording (:mod:`repro.batch.record`): per-instruction *static* cycle
costs and branch counts as C-level ``array('q')`` prefix sums, plus a
sparse, ordered event list holding everything the replay tier must
actually do - I-cache line crossings and memory operations. Replaying a
chunk is then O(events in the chunk), not O(instructions): the ALU work
between events collapses into two prefix-sum lookups.

The expansion splits along what varies per design family:

* the :class:`StreamSkeleton` - event list, branch prefix sum, and the
  block-entry arrays that recover the architectural pc - depends only on
  *what* executed, so one skeleton (cached per program content) serves
  every cost model: ``NVCache-WB``'s private ``ifetch_extra`` family
  shares it with the SRAM-cost designs;
* only the static cycle prefix sum (``cum_cycles``) is expanded per
  (program, cost model).

Event encoding (``i`` is the global retired-instruction index; events
are ordered by ``i``, with an instruction's line-crossing event before
its memory event, exactly the interpreter's fetch-then-execute order):

* ``(i, 0, line)`` - instruction ``i`` fetches I-cache line ``line``
  (the previous retired instruction sat on a different line);
* ``(i, 1, addr)`` - load;
* ``(i, 2, addr, value)`` - store;
* ``(i, 3, addr, bits, mask)`` - masked (sub-word) store.

The ``now`` a memory call sees is ``cum_cycles[i] - mem_issue`` (the
interpreter issues the call after charging the base cost, before
``mem_issue``) plus the instance's dynamic cycles and chunk offset -
computed by the replay tier, so events stay cost-independent.

Expansion works from per-exit-code static metadata (block length, cost
tuple, line-crossing template, memory-op template) cached process-
globally per (program content, cost model) - a sweep expands each
kernel's metadata once, then every recording replays it with C-speed
``array.extend`` + ``itertools.accumulate``.
"""

from __future__ import annotations

from array import array
from bisect import bisect_right
from itertools import accumulate

from repro.cpu.core import _ILINE_SHIFT, _base_cost_table, \
    program_content_key
from repro.cpu.costs import CycleCosts
from repro.isa import opcodes as oc
from repro.isa.program import Program
from repro.jit.blocks import block_spans

_TERMINATORS = oc.B_FORMAT | {oc.JAL, oc.JALR, oc.HALT}

#: (program content key, effective costs) -> _ProgramMeta. Bounded by
#: distinct (kernel, cost model) pairs per process; the cap is a
#: backstop for program-fuzzing tests.
_META_CACHE: dict[tuple, "_ProgramMeta"] = {}
_META_CACHE_CAP = 256

#: program content key -> StreamSkeleton; 1:1 with cached recordings.
#: Skeletons are the big half of a stream (the event list), so the cap
#: mirrors the engine's stream-cache cap.
_SKEL_CACHE: dict[tuple, "StreamSkeleton"] = {}
_SKEL_CACHE_CAP = 4

_SKEL_STATS = {"skeleton_builds": 0, "skeleton_loads": 0}


class StreamSkeleton:
    """The cost-independent expansion of one recording."""

    __slots__ = ("n_total", "events", "n_events", "cum_branches",
                 "blk_g", "blk_pc", "final_regs", "ev_counts",
                 "ev_prev")

    def __init__(self, n_total: int, events: list, cum_branches: array,
                 blk_g: array, blk_pc: array, final_regs: list[int]):
        self.n_total = n_total
        self.events = events
        self.n_events = len(events)
        self.cum_branches = cum_branches
        self.blk_g = blk_g
        self.blk_pc = blk_pc
        self.final_regs = final_regs
        #: lazy per-event-kind prefix counts ``(fetches, loads, stores)``
        #: (arrays of length ``n_events + 1``), filled by the lockstep
        #: tier so a chunk's fetch/load/store counters become two lookups
        #: instead of a per-event increment (see
        #: :func:`repro.lockstep.state.event_counts`).
        self.ev_counts: tuple | None = None
        #: lazy previous-occurrence index per event (``-1`` for first
        #: occurrences and non-fetch events), filled by
        #: :func:`repro.lockstep.state.event_prev`: a line is resident
        #: for an instance iff its previous occurrence is at or past
        #: that instance's last I-cache flush, which turns the per-
        #: instance residency-set lookups into one shared comparison.
        self.ev_prev = None


class GuestStream:
    """One kernel's recorded execution under one cost model.

    Flat references into the shared skeleton plus this family's static
    cycle prefix sum - kept flat (not a skeleton pointer) so the replay
    hot loop pays one attribute hop per field.
    """

    __slots__ = ("n_total", "cum_cycles", "cum_branches", "events",
                 "final_regs", "n_events", "blk_g", "blk_pc", "c_mem",
                 "skel")

    def __init__(self, skel: StreamSkeleton, cum_cycles: array,
                 c_mem: int):
        self.skel = skel
        self.n_total = skel.n_total
        self.cum_cycles = cum_cycles
        self.cum_branches = skel.cum_branches
        self.events = skel.events
        self.final_regs = skel.final_regs
        self.n_events = skel.n_events
        self.blk_g = skel.blk_g
        self.blk_pc = skel.blk_pc
        self.c_mem = c_mem


class _ProgramMeta:
    """Per-(program, costs) static expansion metadata."""

    __slots__ = ("instrs", "starts", "nprog", "cost_table", "c_mem",
                 "c_brx", "codes")

    def __init__(self, program: Program, costs: CycleCosts):
        self.instrs = program.instructions
        self.starts = sorted(s for s, _e in block_spans(program))
        self.nprog = len(program.instructions)
        self.cost_table = _base_cost_table(costs)
        self.c_mem = costs.mem_issue
        self.c_brx = costs.branch_taken_extra
        #: exit code -> (length, cost tuple, branch-flag tuple,
        #:              first_line, last_line, template)
        self.codes: dict[int, tuple] = {}

    def entry(self, code: int) -> tuple:
        e = self.codes.get(code)
        if e is None:
            e = self.codes[code] = self._build(code)
        return e

    def _build(self, code: int) -> tuple:
        start, taken = code >> 1, code & 1
        j = bisect_right(self.starts, start)
        end = self.starts[j] if j < len(self.starts) else self.nprog
        length = end - start
        costs: list[int] = []
        bflags: list[int] = []
        template: list[tuple] = []
        prev_line = start >> _ILINE_SHIFT
        for i in range(start, end):
            op = self.instrs[i][0]
            assert i == end - 1 or op not in _TERMINATORS, \
                "terminator not at block end"
            line = i >> _ILINE_SHIFT
            if line != prev_line:
                template.append((i - start, 0, line))
                prev_line = line
            c = self.cost_table[op]
            if op in oc.MEMORY_OPS:
                c += self.c_mem
                if op in oc.LOAD_FORMAT:
                    template.append((i - start, 1))
                elif op == oc.SW:
                    template.append((i - start, 2))
                else:  # SB / SH
                    template.append((i - start, 3))
            bflags.append(1 if op in oc.B_FORMAT else 0)
            costs.append(c)
        if taken:
            costs[-1] += self.c_brx
        return (length, tuple(costs), tuple(bflags),
                start >> _ILINE_SHIFT, (end - 1) >> _ILINE_SHIFT,
                tuple(template))


def _program_meta(program: Program, costs: CycleCosts) -> _ProgramMeta:
    key = (program_content_key(program), costs)
    meta = _META_CACHE.get(key)
    if meta is None:
        if len(_META_CACHE) >= _META_CACHE_CAP:
            _META_CACHE.clear()
        meta = _META_CACHE[key] = _ProgramMeta(program, costs)
    return meta


def _build_skeleton(meta: _ProgramMeta, codes: list[int], n_total: int,
                    final_regs: list[int],
                    ops: list[tuple]) -> StreamSkeleton:
    """The cost-independent pass: events, branch prefix, block arrays.

    ``meta``'s templates, lengths, branch flags, and line bounds do not
    depend on its cost model, so any family's metadata serves.
    """
    entry = meta.entry
    br_stream = array("q")
    ext_b = br_stream.extend
    blk_g = array("q")
    blk_pc = array("q")
    ap_g = blk_g.append
    ap_pc = blk_pc.append
    events: list[tuple] = []
    ap = events.append
    gi = 0
    oi = 0
    prev_line = -1  # the first instruction always fetches (ic_last = -1)
    for code in codes:
        m = entry(code)
        ext_b(m[2])
        ap_g(gi)
        ap_pc(code >> 1)
        if m[3] != prev_line:
            ap((gi, 0, m[3]))
        for t in m[5]:
            k = t[1]
            if k == 0:
                ap((gi + t[0], 0, t[2]))
            else:
                op = ops[oi]
                oi += 1
                if k == 1:
                    ap((gi + t[0], 1, op[1]))
                elif k == 2:
                    ap((gi + t[0], 2, op[1], op[2]))
                else:
                    ap((gi + t[0], 3, op[1], op[2], op[3]))
        prev_line = m[4]
        gi += m[0]
    assert gi == n_total and oi == len(ops), \
        "recorded memory ops disagree with the block templates"
    cumb = array("q", accumulate(br_stream))
    return StreamSkeleton(n_total, events, cumb, blk_g, blk_pc,
                          final_regs)


def _skel_store_key(ckey: tuple, n_total: int) -> tuple:
    from repro.store.keys import modules_fingerprint

    return ("stream-skel",
            modules_fingerprint("repro.batch.stream", "repro.batch.record",
                                "repro.cpu.core", "repro.isa.opcodes"),
            ckey, n_total)


def _load_skeleton(ckey: tuple, n_total: int) -> "StreamSkeleton | None":
    """A persisted skeleton (class ``"skel"`` of :mod:`repro.store`), or
    None - anything malformed is just a rebuild."""
    from repro.store.core import get_store

    store = get_store()
    if store is None:
        return None
    payload = store.load("skel", _skel_store_key(ckey, n_total))
    if not (isinstance(payload, tuple) and len(payload) == 6
            and payload[0] == n_total):
        return None
    _SKEL_STATS["skeleton_loads"] += 1
    return StreamSkeleton(*payload)


def _save_skeleton(ckey: tuple, skel: StreamSkeleton) -> None:
    from repro.store.core import get_store

    store = get_store()
    if store is None:
        return
    store.save("skel", _skel_store_key(ckey, skel.n_total),
               (skel.n_total, skel.events, skel.cum_branches, skel.blk_g,
                skel.blk_pc, skel.final_regs))


def build_stream(program: Program, costs: CycleCosts,
                 recording: tuple) -> GuestStream:
    """Expand a raw recording into this cost family's stream.

    ``recording`` is ``(codes, n_total, total_cycles, rec_costs,
    final_regs, ops)`` as the engine caches it - one recording serves
    every family because the architectural stream is cost-independent.
    ``total_cycles`` was threaded under ``rec_costs`` (modulo the
    ``ifetch_miss=0`` substitution, which the expansion never folds into
    statics), so the prefix-sum cross-check applies exactly when
    ``costs == rec_costs``; other families are covered structurally by
    the shared skeleton's op-consumption assert.
    """
    codes, n_total, total_cycles, rec_costs, final_regs, ops = recording
    meta = _program_meta(program, costs)
    skey = (program_content_key(program),)
    skel = _SKEL_CACHE.get(skey)
    if skel is None or skel.n_total != n_total:
        if len(_SKEL_CACHE) >= _SKEL_CACHE_CAP:
            _SKEL_CACHE.pop(next(iter(_SKEL_CACHE)))
        skel = _load_skeleton(skey[0], n_total)
        if skel is None:
            skel = _build_skeleton(meta, codes, n_total, final_regs, ops)
            _SKEL_STATS["skeleton_builds"] += 1
            _save_skeleton(skey[0], skel)
        _SKEL_CACHE[skey] = skel
    cost_stream = array("q")
    ext_c = cost_stream.extend
    entry = meta.entry
    for code in codes:
        ext_c(entry(code)[1])
    cum = array("q", accumulate(cost_stream))
    assert len(cum) == n_total, "exit codes disagree with retired count"
    assert costs != rec_costs or not cum or cum[-1] == total_cycles, \
        "static cycle expansion disagrees with the recording"
    return GuestStream(skel, cum, meta.c_mem)


def stream_meta_stats() -> dict:
    """Expansion-metadata cache counters (tests/benchmarks)."""
    return {"programs": len(_META_CACHE), "skeletons": len(_SKEL_CACHE),
            "codes": sum(len(m.codes) for m in _META_CACHE.values()),
            **_SKEL_STATS}


def clear_stream_meta() -> None:
    """Drop expansion metadata and skeletons (tests)."""
    _META_CACHE.clear()
    _SKEL_CACHE.clear()
    for k in _SKEL_STATS:
        _SKEL_STATS[k] = 0
