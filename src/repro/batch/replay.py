"""Replay core: one sweep instance advancing over a shared guest stream.

A :class:`ReplayCore` presents the exact ``run_chunk`` surface
:class:`~repro.sim.system.System` drives - retired count, cycle delta,
``instret``/``ic_fetches``/``ic_misses`` counters, ``halted``,
``flush_icache``/``restore_arch_state`` - but instead of interpreting
instructions it walks the recorded event list, calling the instance's
*own* memory system (the real cache design, with the memfast tier
attached when eligible) for every recorded load/store and maintaining
the instance's *own* I-cache residency. All per-instance divergence the
paper's designs exhibit - outage timing, store stalls, threshold
adaptation, checkpoint flushes - lives in the design/capacitor objects
and in ``System.run`` itself, both of which are untouched; the replay
core only removes the redundant re-execution of identical arithmetic.

Cycle bookkeeping splits the interpreter's single counter in three:

* the stream's *static* prefix sum (``cum_cycles``), this cost family's
  half of the shared expansion;
* ``_dyn``, this instance's accumulated dynamic cycles (I-cache miss
  penalties + memory latencies, which differ per design);
* ``_offset``, which absorbs the external ``core.cycle +=`` additions
  ``System.run`` makes for restores and reboots - recomputed as
  ``self.cycle - (static + _dyn)`` only when the entry cycle differs
  from the one the previous chunk left (i.e. exactly when an external
  addition happened).

The ``now`` passed to each memory call is ``cum_cycles[i] - mem_issue +
_dyn + _offset`` - the interpreter issues the call after charging the
instruction's base cost, before ``mem_issue`` - which equals the
interpreter's cycle counter at the same call, bit for bit.

One asymmetry needs care: after :meth:`flush_icache` the interpreter
re-fetches the current line even when it matches the previous
instruction's line, a fetch the stream has no event for (events only
mark line *changes*). The flush therefore sets a pending-refetch flag,
and the next chunk synthesizes the fetch unless a line event already
sits at the resume position.
"""

from __future__ import annotations

from bisect import bisect_right

from repro.batch.stream import GuestStream
from repro.cpu.core import ARCH_REGS, _ILINE_SHIFT
from repro.cpu.costs import CycleCosts
from repro.isa.program import Program


class ReplayCore:
    """Drop-in ``System`` core replaying a shared :class:`GuestStream`."""

    #: pecking-order marker: attach_jit refuses replay cores (the stream
    #: already encodes execution; there is nothing left to compile)
    _replay = True

    def __init__(self, program: Program, memsys, costs: CycleCosts,
                 stream: GuestStream):
        self.program = program
        self.memsys = memsys
        self.costs = costs
        self.stream = stream
        self.regs: list[int] = [0] * (ARCH_REGS + 1)
        self.cycle = 0
        self.instret = 0
        self.halted = stream.n_total == 0
        self.mem_bytes = program.mem_bytes
        self.ic_lines: set[int] = set()
        self.ic_last = -1
        self.ic_fetches = 0
        self.ic_misses = 0
        self.n_loads = 0
        self.n_stores = 0
        self.n_branches = 0
        self._p = 0  # stream position == retired instructions
        self._ei = 0  # next event index
        self._dyn = 0  # accumulated per-instance dynamic cycles
        self._offset = 0  # external-cycle absorber (see module doc)
        self._cycle_seen = 0  # the cycle the last chunk left behind
        self._pending_fetch = False
        # residency-set provenance, maintained for the lockstep tier:
        # ic_lines always equals {lines of line events in
        # [_flush_ei, _ei)} plus _synth_line (when >= 0), because the
        # set only grows between flushes and every addition comes from
        # a walked line event or the single post-flush synthesized
        # fetch. The lockstep column keeps only these two scalars and
        # reconstructs the set on eviction.
        self._flush_ei = 0
        self._synth_line = -1
        self._c_imiss = costs.ifetch_miss
        # bound lazily on the first chunk, after memfast (if eligible)
        # has installed its handlers on the memory system
        self._load = None
        self._store = None
        self._sm = None

    # -- the System-facing surface (mirrors InOrderCore) ---------------
    @property
    def arch_regs(self) -> list[int]:
        """Zero until HALT retires (mid-run registers are observable
        only through NVFF checkpoints, which replay round-trips)."""
        return self.regs[:ARCH_REGS]

    @property
    def pc(self) -> int:
        """The architectural pc at the current stream position (the
        next instruction to retire; the HALT pc once halted) -
        recovered from the block-entry prefix arrays, matching the
        interpreter's ``pc`` at every chunk boundary."""
        s = self.stream
        p = self._p
        if p >= s.n_total and p:
            p = s.n_total - 1  # after HALT the interpreter's pc rests on it
        j = bisect_right(s.blk_g, p) - 1
        if j < 0:
            return 0
        return s.blk_pc[j] + (p - s.blk_g[j])

    def snapshot_arch_state(self) -> tuple[list[int], int]:
        return (self.regs[:ARCH_REGS], self.pc)

    def restore_arch_state(self, state: tuple[list[int], int]) -> None:
        # the stream position *is* the architectural state; the NVFF
        # round-trip System.run performs restores the same pc the
        # position already encodes, so there is nothing to write back
        pass

    def flush_icache(self) -> None:
        self.ic_lines.clear()
        self.ic_last = -1
        self._pending_fetch = True
        self._flush_ei = self._ei
        self._synth_line = -1

    # ------------------------------------------------------------------
    def run_chunk(self, max_instrs: int) -> tuple[int, int]:
        """Advance up to ``max_instrs`` recorded instructions."""
        if self.halted:
            return (0, 0)
        s = self.stream
        p0 = self._p
        n_total = s.n_total
        target = p0 + max_instrs
        if target > n_total:
            target = n_total
        cum = s.cum_cycles
        dyn = self._dyn
        cycle = self.cycle
        if cycle != self._cycle_seen:
            # System.run added cycles externally (restore / reboot /
            # on_boot) since the last chunk: fold them into the offset
            self._offset = cycle - ((cum[p0 - 1] if p0 else 0) + dyn)
        offset = self._offset
        events = s.events
        ne = s.n_events
        ei = self._ei
        ic_lines = self.ic_lines
        c_imiss = self._c_imiss
        c_mem = s.c_mem
        load = self._load
        if load is None:
            # first chunk: memfast (when eligible) has installed its
            # handlers by now, and nothing rebinds them mid-run - slow-
            # path bails happen *inside* the installed handlers
            mem = self.memsys
            load = self._load = mem.load
            self._store = mem.store
            self._sm = mem.store_masked
        store = self._store
        store_masked = self._sm
        fetches = 0
        misses = 0
        loads = 0
        stores = 0

        if self._pending_fetch:
            self._pending_fetch = False
            ev = events[ei] if ei < ne else None
            if ev is None or ev[0] != p0 or ev[1] != 0:
                # flushed, and the resume pc shares its predecessor's
                # line: the interpreter still re-fetches (ic_last = -1).
                # The line comes from the restored pc - the stream has no
                # event here precisely because the line did not change.
                line = self.pc >> _ILINE_SHIFT
                self._synth_line = line
                fetches += 1
                if line not in ic_lines:
                    ic_lines.add(line)
                    misses += 1
                    dyn += c_imiss

        while ei < ne:
            ev = events[ei]
            i = ev[0]
            if i >= target:
                break
            k = ev[1]
            if k == 1:
                _v, lat = load(ev[2], cum[i] - c_mem + dyn + offset)
                dyn += lat
                loads += 1
            elif k == 0:
                fetches += 1
                line = ev[2]
                if line not in ic_lines:
                    ic_lines.add(line)
                    misses += 1
                    dyn += c_imiss
            elif k == 2:
                dyn += store(ev[2], ev[3], cum[i] - c_mem + dyn + offset)
                stores += 1
            else:
                dyn += store_masked(ev[2], ev[3], ev[4],
                                    cum[i] - c_mem + dyn + offset)
                stores += 1
            ei += 1

        self._ei = ei
        self._dyn = dyn
        self._p = target
        self.ic_fetches += fetches
        self.ic_misses += misses
        self.n_loads += loads
        self.n_stores += stores
        self.n_branches = s.cum_branches[target - 1] if target else 0
        n = target - p0
        self.instret += n
        new_cycle = (cum[target - 1] if target else 0) + dyn + offset
        dcycles = new_cycle - cycle
        self.cycle = new_cycle
        self._cycle_seen = new_cycle
        if target == n_total:
            self.halted = True
            self.regs[:ARCH_REGS] = s.final_regs
        return (n, dcycles)
