"""Batched multi-instance sweep execution (record once, replay many).

Groups grid points that share a kernel and cost model, records the
shared architectural execution once on record-mode compiled code, then
replays every point's cycle-accurate run - outages, stalls, threshold
adaptation and all - through the untouched ``System`` loop with a
stream-walking :class:`~repro.batch.replay.ReplayCore`, bit-identically
to serial interpretation. Enable with ``SimConfig(batch=True)``,
``--batch`` on the CLI, or ``REPRO_BATCH=1`` in the environment. See
``docs/batch.md`` for the stream layout, bail discipline, and the tier
pecking order.
"""

from repro.batch.engine import (ENV_VAR, batch_enabled, batch_stats,
                                build_replay_system, clear_streams,
                                effective_costs, get_stream,
                                maybe_run_batched,
                                maybe_run_chunk_batched, plan,
                                resolve_config, task_batch_eligible,
                                task_batchable,
                                warm_stream)
from repro.batch.record import (BUDGET_SLACK, STREAM_CAP, RecordingBail,
                                RecordingMemsys, record_run,
                                recording_costs, stream_cap)
from repro.batch.replay import ReplayCore
from repro.batch.stream import (GuestStream, build_stream,
                                stream_meta_stats)

__all__ = [
    "BUDGET_SLACK",
    "ENV_VAR",
    "STREAM_CAP",
    "GuestStream",
    "RecordingBail",
    "RecordingMemsys",
    "ReplayCore",
    "batch_enabled",
    "batch_stats",
    "build_replay_system",
    "build_stream",
    "clear_streams",
    "effective_costs",
    "get_stream",
    "maybe_run_batched",
    "maybe_run_chunk_batched",
    "plan",
    "record_run",
    "recording_costs",
    "resolve_config",
    "stream_cap",
    "stream_meta_stats",
    "task_batch_eligible",
    "task_batchable",
    "warm_stream",
]
