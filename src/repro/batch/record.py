"""Recording pass: execute a kernel once, capture its guest stream.

A sweep group shares one *architectural* execution: registers, memory
values, and control flow are a pure function of (program, initial
memory), because every design checkpoints and restores exact state
across outages - geometry, capacitor, and power trace change *when*
things happen, never *what* happens. The recorder therefore runs the
kernel exactly once per (program, cost model) group, block-at-a-time on
record-mode compiled code (:mod:`repro.jit.blocks`), against a
latency-free flat-memory system, and captures:

* the exit-code sequence (which basic blocks ran, in order, with branch
  directions), from which :mod:`repro.batch.stream` reconstructs the
  full retired-instruction stream;
* every memory operation in retirement order (kind, address, value,
  mask) - the replay tier feeds these to each instance's real cache
  design without recomputing any arithmetic;
* the final architectural registers (the only register state a
  :class:`~repro.sim.results.RunResult` exposes).

Recording costs are the group's effective :class:`CycleCosts` with
``ifetch_miss=0``: the threaded cycle counter then accumulates exactly
the *static* per-instruction costs (base + ``mem_issue``), which is what
the replay tier's prefix-sum arrays need - I-cache misses and memory
latencies are per-instance dynamics added back at replay time.

Anything the stream model cannot represent raises
:class:`RecordingBail` and the group falls back to the jit+memfast tier
per instance: a guest fault (the slow path must reproduce the exact
error state), a runaway kernel that exhausts the group's instruction
budget without halting, or a stream that would exceed the memory cap.
"""

from __future__ import annotations

import os

from repro.cpu.core import ARCH_REGS, _sdiv, _srem
from repro.cpu.costs import CycleCosts
from repro.errors import ConfigError, ExecutionError
from repro.isa.program import Program
from repro.jit.cache import get_compiled

#: Instructions a recording may run beyond the group's largest
#: ``max_instructions`` before declaring the kernel runaway (one chunk's
#: worth of slack: the serial tiers overshoot the budget by at most one
#: 65536-instruction chunk before ``System.run`` raises).
BUDGET_SLACK = 65_600

#: Hard cap on recorded stream length (instructions), a memory backstop:
#: the prefix-sum arrays cost 16 bytes per instruction. Overridable via
#: ``REPRO_BATCH_STREAM_CAP`` for stress tests.
STREAM_CAP = 8_000_000


def stream_cap() -> int:
    raw = os.environ.get("REPRO_BATCH_STREAM_CAP")
    if raw is None:
        return STREAM_CAP
    try:
        cap = int(raw)
    except ValueError:
        raise ConfigError(
            f"REPRO_BATCH_STREAM_CAP must be an integer instruction "
            f"count, got {raw!r}") from None
    if cap < 1:
        raise ConfigError(
            f"REPRO_BATCH_STREAM_CAP must be >= 1, got {cap}")
    return cap


class RecordingBail(Exception):
    """The kernel cannot be recorded; the group takes the slow path."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class RecordingMemsys:
    """Latency-free flat word memory that logs every operation.

    Mirrors the value semantics of :class:`~repro.mem.nvm.NVMainMemory`
    plus any cache in front of it (caches are value-transparent), with
    zero reported latency so recorded cycle counts stay purely static.
    Operations are logged in retirement order as tuples:
    ``(1, addr)`` load, ``(2, addr, value)`` store,
    ``(3, addr, bits, mask)`` masked store.
    """

    __slots__ = ("words", "ops")

    def __init__(self, program: Program):
        self.words = program.initial_memory()
        self.ops: list[tuple] = []

    def load(self, addr: int, now: int) -> tuple[int, int]:
        self.ops.append((1, addr))
        return (self.words[addr >> 2], 0)

    def store(self, addr: int, value: int, now: int) -> int:
        self.words[addr >> 2] = value
        self.ops.append((2, addr, value))
        return 0

    def store_masked(self, addr: int, bits: int, mask: int,
                     now: int) -> int:
        i = addr >> 2
        self.words[i] = (self.words[i] & ~mask) | bits
        self.ops.append((3, addr, bits, mask))
        return 0


def recording_costs(costs: CycleCosts) -> CycleCosts:
    """The cost model recordings (and their compiled modules) use."""
    from dataclasses import replace
    return replace(costs, ifetch_miss=0)


def record_run(program: Program, costs: CycleCosts,
               budget: int) -> tuple[list[int], int, int, list[int],
                                     list[tuple]]:
    """Execute ``program`` once and return its raw recording.

    Returns ``(exit_codes, n_retired, total_static_cycles, final_regs,
    ops)``. ``costs`` is the group's *effective* cost model (with any
    per-design ``ifetch_extra`` already folded in); ``budget`` the
    largest ``max_instructions`` in the group. Raises
    :class:`RecordingBail` on a guest fault, a runaway kernel, or a
    stream-cap overflow.
    """
    rcosts = recording_costs(costs)
    compiled = get_compiled(program, rcosts, record=True)
    mem = RecordingMemsys(program)
    codes: list[int] = []
    bind_args = (mem.load, mem.store, mem.store_masked, set(),
                 _sdiv, _srem, ExecutionError, None, codes)
    table = compiled.bind(bind_args)
    suffix_entry = compiled.suffix_entry
    nprog = compiled.n

    regs = [0] * (ARCH_REGS + 1)
    st = [0, -1, 0, 0, 0, 0, 0, 0, 0]
    pc = 0
    n = 0
    stop = budget + BUDGET_SLACK
    cap = stream_cap()
    try:
        while True:
            if not 0 <= pc < nprog:
                # the serial tiers raise "pc outside program" here; the
                # slow path must be the one to produce that error state
                raise RecordingBail(
                    f"{program.name}: pc {pc} escapes the program")
            entry = table[pc]
            if entry is None:  # indirect jalr into a non-leader pc
                entry = table[pc] = suffix_entry(pc, bind_args)
            pc = entry[0](regs, st)
            n += st[7]
            if st[8]:
                break
            if n >= stop:
                raise RecordingBail(
                    f"{program.name}: no HALT within the group's "
                    f"instruction budget ({budget})")
            if n > cap:
                raise RecordingBail(
                    f"{program.name}: stream exceeds the "
                    f"{cap}-instruction cap")
    except ExecutionError as exc:
        raise RecordingBail(f"{program.name}: guest fault while "
                            f"recording: {exc}") from exc
    return codes, n, st[0], regs[:ARCH_REGS], mem.ops
