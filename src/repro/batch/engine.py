"""Batched sweep execution: group grid points, record once, replay each.

The engine sits between :mod:`repro.sim.parallel` and the per-run
machinery. Given a list of sweep tasks it:

1. resolves each task's effective :class:`SimConfig` and checks
   *eligibility* - batching yields to the trace recorder and the
   invariant checker exactly like the jit/memfast tiers (the pecking
   order is recorder/checker > batch > jit+memfast);
2. groups eligible tasks by ``(workload, scale, effective cost model)``
   - the *design family*: ``NVCache-WB`` folds ``nvcache_ifetch_extra``
   into its costs, so it records separately from the SRAM-cost designs;
3. records each group's kernel once (:mod:`repro.batch.record`) and
   expands it into a shared :class:`GuestStream`, cached process-wide so
   consecutive grids (one per power trace) reuse it;
4. replays every task in the group through an untouched
   :class:`~repro.sim.system.System` whose core is a per-instance
   :class:`~repro.batch.replay.ReplayCore` with the memfast tier
   attached to its design - per-instance outages, stalls, and threshold
   adaptation all happen inside the replay, bit-identically;
5. bails any task the stream model cannot serve - instrumentation
   attached, a guest fault or runaway kernel during recording - to the
   caller-supplied slow path (the existing jit+memfast tier), per
   instance, preserving exact error behaviour.

Enable with ``SimConfig(batch=True)``, ``--batch`` on the CLI, or
``REPRO_BATCH=1`` in the environment (sweep pool workers re-export it,
like the other tier switches).
"""

from __future__ import annotations

import os
import traceback
from collections.abc import Callable, Iterator
from dataclasses import replace

from repro.batch.record import RecordingBail, record_run
from repro.batch.replay import ReplayCore
from repro.batch.stream import GuestStream, build_stream
from repro.cpu.core import program_content_key
from repro.cpu.costs import CycleCosts
from repro.isa.program import Program
from repro.lint.invariants import invariants_enabled
from repro.lockstep import lockstep_enabled
from repro.mem.nvm import NVMainMemory
from repro.memfast import attach_memfast, finish_memfast
from repro.obs.recorder import trace_enabled
from repro.sim.config import SimConfig
from repro.sim.factory import build_design
from repro.sim.system import System
from repro.workloads import build_workload, verify_checks

#: ``REPRO_BATCH=1`` enables batched sweep execution for every grid in
#: this process (pool workers re-export it, like REPRO_JIT).
ENV_VAR = "REPRO_BATCH"

#: ``REPRO_STREAM_CACHE=<dir>`` shares recordings across *processes*.
#: Since the persistent artifact store subsumed the old per-directory
#: pickle files, this is a legacy alias for the store root
#: (:func:`repro.store.store_root` - it wins over ``REPRO_CACHE_DIR``
#: when set); recordings are the store's ``"stream"`` artifact class.
#: Writes stay atomic (tmp + rename) and loads still tolerate any
#: corruption by falling back to recording.
CACHE_DIR_ENV = "REPRO_STREAM_CACHE"

#: program content key -> raw recording ``(codes, n_total, cycles,
#: rec_costs, final_regs, ops)``. The architectural stream is *cost-
#: independent* (control flow never reads the cycle counter), so one
#: recording serves every design family; only the cheap static-cycle
#: expansion happens per family. Recordings are the big allocation
#: (exit codes + memory ops), so the cache holds only the most recent
#: few - enough for back-to-back grids over the same kernels (one per
#: power trace) to record once.
_RECORDING_CACHE: dict[tuple, tuple] = {}
_RECORDING_CACHE_CAP = 4

#: (program content key, effective costs) -> GuestStream. Streams share
#: their event list with the cached recording's skeleton, so the per-
#: family entry adds only the cycle prefix sum.
_STREAM_CACHE: dict[tuple, GuestStream] = {}
_STREAM_CACHE_CAP = 8
_STREAM_STATS = {"recordings": 0, "expansions": 0, "hits": 0, "bails": 0,
                 "replays": 0, "solo": 0, "lockstep": 0, "disk_hits": 0,
                 "disk_writes": 0}


def batch_enabled() -> bool:
    """True when ``REPRO_BATCH`` requests batched sweeps globally."""
    return os.environ.get(ENV_VAR, "").strip() not in ("", "0")


def resolve_config(task) -> SimConfig:
    """A task's effective config (base config + overrides)."""
    config = task.config or SimConfig()
    if task.overrides:
        config = config.with_(**task.overrides)
    return config


def task_batch_eligible(task) -> bool:
    """:func:`task_batchable` over the task's resolved config, safely.

    A task whose overrides do not form a valid :class:`SimConfig` is
    simply *not eligible*: the error must be raised by the ordinary run
    path (where sweeps attribute it to the failing run), not by a
    batching probe in the sweep parent.
    """
    try:
        config = resolve_config(task)
    except Exception:
        return False
    return task_batchable(config)


def task_batchable(config: SimConfig) -> bool:
    """Batching applies to this run and nothing outranks it.

    The trace recorder and the invariant checker must see every memory
    call and every chunk; a replayed stream would bypass them entirely,
    so - like jit and memfast - the batch tier silently stands down when
    either is requested (per config or environment).
    """
    if not (config.batch or batch_enabled()):
        return False
    if config.trace or trace_enabled():
        return False
    if config.check_invariants or invariants_enabled():
        return False
    return True


def task_lockstep_eligible(task) -> bool:
    """Batch-eligible *and* opted into lockstep columns (per config or
    ``REPRO_LOCKSTEP``). Lockstep rides on the batch tier, so it
    inherits every batch eligibility rule unchanged."""
    try:
        config = resolve_config(task)
    except Exception:
        return False
    return task_batchable(config) and (config.lockstep
                                       or lockstep_enabled())


def effective_costs(design: str, config: SimConfig) -> CycleCosts:
    """The cost model a design family executes under (mirrors
    :func:`repro.sim.factory.build_system`)."""
    costs = config.costs
    if design == "NVCache-WB":
        costs = replace(costs, ifetch_extra=config.nvcache_ifetch_extra)
    return costs


class _Group:
    """Eligible tasks sharing one recording."""

    __slots__ = ("workload", "scale", "costs", "tasks", "configs",
                 "budget")

    def __init__(self, workload: str, scale: float, costs: CycleCosts):
        self.workload = workload
        self.scale = scale
        self.costs = costs
        self.tasks: list = []
        self.configs: list[SimConfig] = []
        self.budget = 0

    def add(self, task, config: SimConfig) -> None:
        self.tasks.append(task)
        self.configs.append(config)
        self.budget = max(self.budget, config.max_instructions)


def plan(tasks) -> list[tuple]:
    """Partition tasks into ``("solo", task)`` and ``("group", _Group)``
    units, in first-appearance order."""
    units: list[tuple] = []
    groups: dict[tuple, _Group] = {}
    for task in tasks:
        try:
            config = resolve_config(task)
        except Exception:
            # invalid overrides: the slow path raises the real error
            units.append(("solo", task))
            continue
        if not task_batchable(config):
            units.append(("solo", task))
            continue
        costs = effective_costs(task.design, config)
        key = (task.workload, task.scale, costs)
        group = groups.get(key)
        if group is None:
            group = groups[key] = _Group(task.workload, task.scale,
                                         costs)
            units.append(("group", group))
        group.add(task, config)
    return units


def _stream_store_key(ckey: tuple) -> tuple:
    from repro.store.keys import modules_fingerprint

    return ("stream-rec",
            modules_fingerprint("repro.batch.record", "repro.cpu.core",
                                "repro.isa.opcodes"), ckey)


def _disk_load(ckey: tuple) -> tuple | None:
    """A previously shared recording, or None (not cached / unreadable -
    a bad entry is never an error, just a re-record). Recordings live in
    the ``"stream"`` class of the persistent artifact store
    (:mod:`repro.store`); ``REPRO_STREAM_CACHE=<dir>`` still works as a
    legacy alias for the store root."""
    from repro.store.core import get_store

    store = get_store()
    if store is None:
        return None
    recording = store.load("stream", _stream_store_key(ckey))
    if not (isinstance(recording, tuple) and len(recording) == 6):
        return None
    _STREAM_STATS["disk_hits"] += 1
    return recording


def _disk_store(ckey: tuple, recording: tuple) -> None:
    from repro.store.core import get_store

    store = get_store()
    if store is None:
        return
    if store.save("stream", _stream_store_key(ckey), recording):
        _STREAM_STATS["disk_writes"] += 1


def get_stream(program: Program, costs: CycleCosts,
               budget: int) -> GuestStream:
    """The kernel's guest stream, recording it on first demand.

    Raises :class:`RecordingBail` when the kernel cannot be recorded;
    bails are not cached (a larger budget may succeed later). With
    ``REPRO_STREAM_CACHE`` set, recordings round-trip through the
    shared directory so campaign shards record each kernel once
    fleet-wide (a completed recording is budget-independent - the
    budget only caps runaway kernels, which bail and are never stored).
    """
    ckey = program_content_key(program)
    key = (ckey, costs)
    stream = _STREAM_CACHE.get(key)
    if stream is not None:
        _STREAM_STATS["hits"] += 1
        return stream
    recording = _RECORDING_CACHE.get(ckey)
    if recording is None:
        recording = _disk_load(ckey)
        if recording is None:
            codes, n, cycles, final_regs, ops = record_run(
                program, costs, budget)
            recording = (codes, n, cycles, costs, final_regs, ops)
            _STREAM_STATS["recordings"] += 1
            _disk_store(ckey, recording)
        if len(_RECORDING_CACHE) >= _RECORDING_CACHE_CAP:
            _RECORDING_CACHE.pop(next(iter(_RECORDING_CACHE)))
        _RECORDING_CACHE[ckey] = recording
    stream = build_stream(program, costs, recording)
    if len(_STREAM_CACHE) >= _STREAM_CACHE_CAP:
        _STREAM_CACHE.pop(next(iter(_STREAM_CACHE)))
    _STREAM_CACHE[key] = stream
    _STREAM_STATS["expansions"] += 1
    return stream


def build_replay_system(program: Program, task, config: SimConfig,
                        stream: GuestStream) -> System:
    """A ready-to-run System whose core replays ``stream``.

    Mirrors :func:`repro.sim.factory.build_system` minus the tiers the
    batch engine supersedes (jit) or refuses to coexist with (trace
    recorder, invariant checker - :func:`plan` never routes such tasks
    here). The memfast tier *is* attached: each replay instance binds
    its own design's fast hit handlers (the per-instance fast-path
    slots), and silently stays off for ineligible designs.
    """
    from repro.energy.synthetic import make_trace

    trace = task.trace
    if isinstance(trace, str):
        trace = (make_trace(trace) if config.trace_seed is None
                 else make_trace(trace, config.trace_seed))
    nvm = NVMainMemory(program.initial_memory(), config.nvm)
    design = build_design(task.design, nvm, config)
    costs = effective_costs(task.design, config)
    system = System(program, design, config, trace, costs)
    system.core = ReplayCore(program, design, costs, stream)
    attach_memfast(system)
    finish_memfast(system)
    return system


def _replay_task(program: Program, task, config: SimConfig,
                 stream: GuestStream):
    from repro.store.results import store_task

    res = build_replay_system(program, task, config, stream).run()
    if task.verify:
        verify_checks(program, res.final_memory)
    _STREAM_STATS["replays"] += 1
    store_task(task, res)
    return res


def _outcome(fn, *args) -> tuple:
    """Run ``fn``, boxing the result: ("ok", result) or ("err", exc,
    formatted traceback)."""
    try:
        return ("ok", fn(*args))
    except Exception as exc:
        return ("err", exc, traceback.format_exc())


def iter_outcomes(tasks, run_slow: Callable) -> Iterator[tuple]:
    """Yield ``(task, outcome)`` for every task, batching where it can.

    ``run_slow`` is the caller's single-task path (``run_task``); bailed
    and ineligible tasks go through it so they finish on whatever tier
    the environment selects (jit+memfast under the usual switches).
    Outcomes are yielded unit-by-unit in first-appearance order, which
    interleaves groups sharing a workload; callers needing task order
    re-index by task.

    When any task opts into lockstep, adjacent group units sharing a
    ``(workload, scale)`` - the cost families of one design sweep, which
    share a :class:`~repro.batch.stream.StreamSkeleton` - are coalesced
    into one *cluster* and their lockstep-eligible tasks advance
    together as a column (:mod:`repro.lockstep.scheduler`); everything
    else keeps the per-instance replay path unchanged.

    When result memoization is on (:mod:`repro.store.results`), every
    task is first checked against the persistent memo: hits are yielded
    up front without touching the recorder, so an all-hit grid never
    records, expands, or replays anything.
    """
    from repro.store.results import lookup_task

    pending = []
    for task in tasks:
        memo = lookup_task(task)
        if memo is not None:
            yield task, ("ok", memo)
        else:
            pending.append(task)
    tasks = pending
    if not tasks:
        return
    units = plan(tasks)
    if not any(task_lockstep_eligible(t) for t in tasks):
        for kind, unit in units:
            if kind == "solo":
                _STREAM_STATS["solo"] += 1
                yield unit, _outcome(run_slow, unit)
                continue
            group = unit
            try:
                program = build_workload(group.workload, group.scale)
                stream = get_stream(program, group.costs, group.budget)
            except RecordingBail:
                _STREAM_STATS["bails"] += 1
                for task in group.tasks:
                    yield task, _outcome(run_slow, task)
                continue
            except Exception as exc:
                tb = traceback.format_exc()
                for task in group.tasks:
                    yield task, ("err", exc, tb)
                continue
            for task, config in zip(group.tasks, group.configs):
                yield task, _outcome(_replay_task, program, task, config,
                                     stream)
        return
    i = 0
    while i < len(units):
        kind, unit = units[i]
        if kind == "solo":
            _STREAM_STATS["solo"] += 1
            yield unit, _outcome(run_slow, unit)
            i += 1
            continue
        cluster = [unit]
        j = i + 1
        while (j < len(units) and units[j][0] == "group"
               and units[j][1].workload == unit.workload
               and units[j][1].scale == unit.scale):
            cluster.append(units[j][1])
            j += 1
        i = j
        yield from _run_cluster(cluster, run_slow)


def _run_cluster(groups: list, run_slow: Callable) -> Iterator[tuple]:
    """Run one ``(workload, scale)`` cluster: lockstep tasks as one
    column over the shared skeleton, the rest per instance."""
    from repro.lockstep.scheduler import run_column

    try:
        program = build_workload(groups[0].workload, groups[0].scale)
    except Exception as exc:
        tb = traceback.format_exc()
        for group in groups:
            for task in group.tasks:
                yield task, ("err", exc, tb)
        return
    column: list[tuple] = []
    for group in groups:
        try:
            stream = get_stream(program, group.costs, group.budget)
        except RecordingBail:
            _STREAM_STATS["bails"] += 1
            for task in group.tasks:
                yield task, _outcome(run_slow, task)
            continue
        except Exception as exc:
            tb = traceback.format_exc()
            for task in group.tasks:
                yield task, ("err", exc, tb)
            continue
        for task, config in zip(group.tasks, group.configs):
            # column instances must share the event list; a family whose
            # skeleton was evicted mid-cluster replays per instance
            if ((config.lockstep or lockstep_enabled())
                    and (not column
                         or stream.skel is column[0][2].skel)):
                column.append((task, config, stream))
            else:
                yield task, _outcome(_replay_task, program, task, config,
                                     stream)
    if not column:
        return
    try:
        results = run_column(program, column)
    except Exception as exc:
        tb = traceback.format_exc()
        for task, _config, _stream in column:
            yield task, ("err", exc, tb)
        return
    from repro.store.results import store_task

    for task, outcome in results:
        if outcome[0] == "ok" and task.verify:
            try:
                verify_checks(program, outcome[1].final_memory)
            except Exception as exc:
                outcome = ("err", exc, traceback.format_exc())
        if outcome[0] == "ok":
            _STREAM_STATS["replays"] += 1
            _STREAM_STATS["lockstep"] += 1
            store_task(task, outcome[1])
        yield task, outcome


def maybe_run_batched(tasks, run_slow: Callable,
                      progress=None) -> dict | None:
    """The serial batched sweep, or None when no task opts in.

    Mirrors the serial loop in :func:`repro.sim.parallel.run_tasks`:
    results keyed and ordered by ``task.key``, first failure re-raised.
    Progress fires in completion order (group-major), like the pool.
    """
    if not any(task_batch_eligible(t) for t in tasks):
        return None
    total = len(tasks)
    done = 0
    by_key = {}
    for task, outcome in iter_outcomes(tasks, run_slow):
        if outcome[0] != "ok":
            raise outcome[1]
        by_key[task.key] = outcome[1]
        done += 1
        if progress is not None:
            progress(done, total, task.key)
    return {task.key: by_key[task.key] for task in tasks}


def maybe_run_chunk_batched(chunk, run_slow: Callable) -> list | None:
    """The pool-worker batched chunk body, or None when no task opts in.

    Returns records in *chunk order* (the parent zips them with the
    chunk's tasks), in the exact shape
    :func:`repro.sim.parallel._run_chunk` ships: ``("ok", result)`` or
    ``("err", exc type name, message, traceback)``.
    """
    if not any(task_batch_eligible(t) for t in chunk):
        return None
    boxed: dict[int, tuple] = {}
    for task, outcome in iter_outcomes(chunk, run_slow):
        boxed[id(task)] = outcome
    records = []
    for task in chunk:
        outcome = boxed[id(task)]
        if outcome[0] == "ok":
            records.append(("ok", outcome[1]))
        else:
            exc = outcome[1]
            records.append(("err", type(exc).__name__, str(exc),
                            outcome[2]))
    return records


def warm_stream(workload: str, scale: float,
                config: SimConfig | None = None,
                design: str = "WL-Cache") -> GuestStream:
    """Record (or fetch) the stream a grid over ``workload`` will use -
    benchmark helper to separate recording cost from replay cost."""
    config = config or SimConfig()
    program = build_workload(workload, scale)
    costs = effective_costs(design, config)
    return get_stream(program, costs, config.max_instructions)


def batch_stats() -> dict:
    """Engine counters (tests/benchmarks)."""
    return {"streams": len(_STREAM_CACHE),
            "raw_recordings": len(_RECORDING_CACHE), **_STREAM_STATS}


def absorb_stats(delta: dict) -> None:
    """Fold a worker's per-chunk counter deltas into this process.

    Pool workers ship a trailing ``("stats", delta)`` record with each
    chunk (:func:`repro.sim.parallel._run_chunk`); the sweep parent
    absorbs them here so :func:`batch_stats` reflects the whole sweep -
    recordings, cache hits, disk hits - not just the parent's share.
    Cache-size gauges (``streams``/``raw_recordings``) describe the
    worker's caches, not events, and are skipped."""
    for key, value in delta.items():
        if key in _STREAM_STATS and value:
            _STREAM_STATS[key] += value


def clear_streams() -> None:
    """Drop cached recordings/streams and reset counters (tests)."""
    _STREAM_CACHE.clear()
    _RECORDING_CACHE.clear()
    from repro.batch.stream import clear_stream_meta
    clear_stream_meta()
    for k in _STREAM_STATS:
        _STREAM_STATS[k] = 0


__all__ = [
    "CACHE_DIR_ENV",
    "ENV_VAR",
    "absorb_stats",
    "batch_enabled",
    "batch_stats",
    "build_replay_system",
    "clear_streams",
    "effective_costs",
    "get_stream",
    "iter_outcomes",
    "maybe_run_batched",
    "maybe_run_chunk_batched",
    "plan",
    "resolve_config",
    "task_batch_eligible",
    "task_batchable",
    "task_lockstep_eligible",
    "warm_stream",
]
