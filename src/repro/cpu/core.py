"""Value-accurate in-order interpreter for the repro ISA.

The core executes the guest program instruction by instruction, charging
cycle costs from :class:`~repro.cpu.costs.CycleCosts` plus whatever latency
the attached memory system reports for loads/stores. It is *value accurate*:
register and memory contents are bit-exact 32-bit results, which the
crash-consistency checker relies on.

The dispatch loop is deliberately a flat ``if/elif`` chain over opcode ints
with locals hoisted out of the loop - the fastest structure available to
pure Python, and this loop dominates simulator runtime.
"""

from __future__ import annotations

from repro.cpu.costs import CycleCosts
from repro.errors import ExecutionError
from repro.isa import opcodes as oc
from repro.isa.program import Program

_U32 = 0xFFFFFFFF
_SIGN = 0x80000000
_MOD = 1 << 32

# I-cache geometry: 16 instructions per line. With an 8 KB I-cache of 64 B
# lines this corresponds to tracking line residency by index.
_ILINE_SHIFT = 4


def _sdiv(a: int, b: int) -> int:
    """RISC-V signed division semantics on u32 operands."""
    if b == 0:
        return _U32
    sa = a - _MOD if a & _SIGN else a
    sb = b - _MOD if b & _SIGN else b
    if sa == -(1 << 31) and sb == -1:
        return _SIGN
    q = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        q = -q
    return q & _U32


def _srem(a: int, b: int) -> int:
    """RISC-V signed remainder semantics on u32 operands."""
    if b == 0:
        return a
    sa = a - _MOD if a & _SIGN else a
    sb = b - _MOD if b & _SIGN else b
    r = abs(sa) % abs(sb)
    if sa < 0:
        r = -r
    return r & _U32


class InOrderCore:
    """Single-issue in-order core bound to a program and a memory system.

    The memory system must provide::

        load(addr, now) -> (u32 value, cycles)
        store(addr, u32 value, now) -> cycles
        store_masked(addr, bits, mask, now) -> cycles

    where ``addr`` is a word-aligned byte address and ``now`` is the core's
    absolute cycle counter (used to retire asynchronous write-backs).
    """

    def __init__(self, program: Program, memsys, costs: CycleCosts | None = None):
        self.program = program
        self.memsys = memsys
        self.costs = costs or CycleCosts()
        self.regs: list[int] = [0] * 32
        self.pc = 0
        self.cycle = 0
        self.instret = 0
        self.halted = False
        self.mem_bytes = program.mem_bytes
        # I-cache residency (line index set); volatile unless the design
        # says otherwise - the simulator flushes it on power failure.
        self.ic_lines: set[int] = set()
        self.ic_last = -1
        self.ic_fetches = 0
        self.ic_misses = 0
        # per-class retirement counters (for reports)
        self.n_loads = 0
        self.n_stores = 0
        self.n_branches = 0

    # ------------------------------------------------------------------
    def snapshot_arch_state(self) -> tuple[list[int], int]:
        """Capture (registers, pc) for JIT checkpointing."""
        return (list(self.regs), self.pc)

    def restore_arch_state(self, state: tuple[list[int], int]) -> None:
        regs, pc = state
        self.regs = list(regs)
        self.pc = pc

    def flush_icache(self) -> None:
        self.ic_lines.clear()
        self.ic_last = -1

    # ------------------------------------------------------------------
    def run_chunk(self, max_instrs: int) -> tuple[int, int]:
        """Execute up to ``max_instrs`` instructions; returns (retired, cycles).

        Stops early on HALT. Raises :class:`ExecutionError` on illegal
        accesses so guest bugs never masquerade as results.
        """
        if self.halted:
            return (0, 0)
        instrs = self.program.instructions
        regs = self.regs
        mem = self.memsys
        costs = self.costs
        c_alu = costs.alu
        c_mul = costs.mul
        c_div = costs.div
        c_br = costs.branch
        c_brx = costs.branch_taken_extra
        c_mem = costs.mem_issue
        c_imiss = costs.ifetch_miss
        c_ifx = costs.ifetch_extra
        ic_lines = self.ic_lines
        ic_last = self.ic_last
        mem_bytes = self.mem_bytes
        load = mem.load
        store = mem.store
        store_masked = mem.store_masked

        pc = self.pc
        cycle = self.cycle
        n = 0
        nprog = len(instrs)

        while n < max_instrs:
            if pc < 0 or pc >= nprog:
                raise ExecutionError(
                    f"{self.program.name}: pc {pc} outside program")
            op, a, b, c = instrs[pc]
            n += 1
            # --- instruction fetch ---
            line = pc >> _ILINE_SHIFT
            if line != ic_last:
                ic_last = line
                self.ic_fetches += 1
                if line not in ic_lines:
                    ic_lines.add(line)
                    self.ic_misses += 1
                    cycle += c_imiss
            if c_ifx:
                cycle += c_ifx
            pc += 1

            # --- execute (ordered by expected dynamic frequency) ---
            if op == oc.ADDI:
                regs[a] = (regs[b] + c) & _U32
                cycle += c_alu
            elif op == oc.ADD:
                regs[a] = (regs[b] + regs[c]) & _U32
                cycle += c_alu
            elif op == oc.LW:
                addr = (regs[b] + c) & _U32
                if addr & 3 or addr >= mem_bytes:
                    raise ExecutionError(
                        f"{self.program.name}@{pc - 1}: bad lw addr {addr:#x}")
                val, lat = load(addr, cycle)
                regs[a] = val
                cycle += c_mem + lat
                self.n_loads += 1
            elif op == oc.SW:
                addr = (regs[b] + c) & _U32
                if addr & 3 or addr >= mem_bytes:
                    raise ExecutionError(
                        f"{self.program.name}@{pc - 1}: bad sw addr {addr:#x}")
                cycle += c_mem + store(addr, regs[a], cycle)
                self.n_stores += 1
            elif op == oc.BNE:
                cycle += c_br
                if regs[a] != regs[b]:
                    pc = c
                    cycle += c_brx
                self.n_branches += 1
            elif op == oc.BEQ:
                cycle += c_br
                if regs[a] == regs[b]:
                    pc = c
                    cycle += c_brx
                self.n_branches += 1
            elif op == oc.BLT:
                x = regs[a]
                y = regs[b]
                if (x - _MOD if x & _SIGN else x) < (y - _MOD if y & _SIGN else y):
                    pc = c
                    cycle += c_brx
                cycle += c_br
                self.n_branches += 1
            elif op == oc.BGE:
                x = regs[a]
                y = regs[b]
                if (x - _MOD if x & _SIGN else x) >= (y - _MOD if y & _SIGN else y):
                    pc = c
                    cycle += c_brx
                cycle += c_br
                self.n_branches += 1
            elif op == oc.BLTU:
                cycle += c_br
                if regs[a] < regs[b]:
                    pc = c
                    cycle += c_brx
                self.n_branches += 1
            elif op == oc.BGEU:
                cycle += c_br
                if regs[a] >= regs[b]:
                    pc = c
                    cycle += c_brx
                self.n_branches += 1
            elif op == oc.LI:
                regs[a] = b
                cycle += c_alu
            elif op == oc.SLLI:
                regs[a] = (regs[b] << c) & _U32
                cycle += c_alu
            elif op == oc.SRLI:
                regs[a] = regs[b] >> c
                cycle += c_alu
            elif op == oc.ANDI:
                regs[a] = regs[b] & c
                cycle += c_alu
            elif op == oc.ORI:
                regs[a] = regs[b] | c
                cycle += c_alu
            elif op == oc.XORI:
                regs[a] = regs[b] ^ c
                cycle += c_alu
            elif op == oc.SUB:
                regs[a] = (regs[b] - regs[c]) & _U32
                cycle += c_alu
            elif op == oc.AND:
                regs[a] = regs[b] & regs[c]
                cycle += c_alu
            elif op == oc.OR:
                regs[a] = regs[b] | regs[c]
                cycle += c_alu
            elif op == oc.XOR:
                regs[a] = regs[b] ^ regs[c]
                cycle += c_alu
            elif op == oc.SLL:
                regs[a] = (regs[b] << (regs[c] & 31)) & _U32
                cycle += c_alu
            elif op == oc.SRL:
                regs[a] = regs[b] >> (regs[c] & 31)
                cycle += c_alu
            elif op == oc.SRA:
                x = regs[b]
                if x & _SIGN:
                    x -= _MOD
                regs[a] = (x >> (regs[c] & 31)) & _U32
                cycle += c_alu
            elif op == oc.SRAI:
                x = regs[b]
                if x & _SIGN:
                    x -= _MOD
                regs[a] = (x >> c) & _U32
                cycle += c_alu
            elif op == oc.MUL:
                regs[a] = (regs[b] * regs[c]) & _U32
                cycle += c_mul
            elif op == oc.MULH:
                x = regs[b]
                y = regs[c]
                if x & _SIGN:
                    x -= _MOD
                if y & _SIGN:
                    y -= _MOD
                regs[a] = ((x * y) >> 32) & _U32
                cycle += c_mul
            elif op == oc.SLT:
                x = regs[b]
                y = regs[c]
                regs[a] = 1 if (x - _MOD if x & _SIGN else x) < (
                    y - _MOD if y & _SIGN else y) else 0
                cycle += c_alu
            elif op == oc.SLTU:
                regs[a] = 1 if regs[b] < regs[c] else 0
                cycle += c_alu
            elif op == oc.SLTI:
                x = regs[b]
                regs[a] = 1 if (x - _MOD if x & _SIGN else x) < c else 0
                cycle += c_alu
            elif op == oc.SLTIU:
                regs[a] = 1 if regs[b] < (c & _U32) else 0
                cycle += c_alu
            elif op == oc.JAL:
                regs[a] = pc  # link: next instruction index
                pc = b
                cycle += c_br + c_brx
            elif op == oc.JALR:
                target = (regs[b] + c) & _U32
                regs[a] = pc
                pc = target
                cycle += c_br + c_brx
            elif op == oc.LB or op == oc.LBU:
                addr = (regs[b] + c) & _U32
                if addr >= mem_bytes:
                    raise ExecutionError(
                        f"{self.program.name}@{pc - 1}: bad lb addr {addr:#x}")
                val, lat = load(addr & ~3, cycle)
                byte = (val >> ((addr & 3) * 8)) & 0xFF
                if op == oc.LB and byte & 0x80:
                    byte |= 0xFFFFFF00
                regs[a] = byte
                cycle += c_mem + lat
                self.n_loads += 1
            elif op == oc.SB:
                addr = (regs[b] + c) & _U32
                if addr >= mem_bytes:
                    raise ExecutionError(
                        f"{self.program.name}@{pc - 1}: bad sb addr {addr:#x}")
                sh = (addr & 3) * 8
                cycle += c_mem + store_masked(
                    addr & ~3, (regs[a] & 0xFF) << sh, 0xFF << sh, cycle)
                self.n_stores += 1
            elif op == oc.LH or op == oc.LHU:
                addr = (regs[b] + c) & _U32
                if addr & 1 or addr >= mem_bytes:
                    raise ExecutionError(
                        f"{self.program.name}@{pc - 1}: bad lh addr {addr:#x}")
                val, lat = load(addr & ~3, cycle)
                half = (val >> ((addr & 2) * 8)) & 0xFFFF
                if op == oc.LH and half & 0x8000:
                    half |= 0xFFFF0000
                regs[a] = half
                cycle += c_mem + lat
                self.n_loads += 1
            elif op == oc.SH:
                addr = (regs[b] + c) & _U32
                if addr & 1 or addr >= mem_bytes:
                    raise ExecutionError(
                        f"{self.program.name}@{pc - 1}: bad sh addr {addr:#x}")
                sh = (addr & 2) * 8
                cycle += c_mem + store_masked(
                    addr & ~3, (regs[a] & 0xFFFF) << sh, 0xFFFF << sh, cycle)
                self.n_stores += 1
            elif op == oc.DIV:
                regs[a] = _sdiv(regs[b], regs[c])
                cycle += c_div
            elif op == oc.REM:
                regs[a] = _srem(regs[b], regs[c])
                cycle += c_div
            elif op == oc.DIVU:
                regs[a] = _U32 if regs[c] == 0 else regs[b] // regs[c]
                cycle += c_div
            elif op == oc.REMU:
                regs[a] = regs[b] if regs[c] == 0 else regs[b] % regs[c]
                cycle += c_div
            elif op == oc.NOP:
                cycle += c_alu
            elif op == oc.HALT:
                self.halted = True
                pc -= 1  # stay on the HALT
                cycle += c_alu
                break
            else:  # pragma: no cover - opcode table is exhaustive
                raise ExecutionError(f"illegal opcode {op} at {pc - 1}")

            regs[0] = 0

        regs[0] = 0
        self.ic_last = ic_last
        dcycles = cycle - self.cycle
        self.pc = pc
        self.cycle = cycle
        self.instret += n
        return (n, dcycles)

    # ------------------------------------------------------------------
    def run_to_halt(self, max_instrs: int = 50_000_000) -> int:
        """Run until HALT (no power failures); returns retired instructions."""
        total = 0
        while not self.halted:
            done, _ = self.run_chunk(65536)
            total += done
            if total > max_instrs:
                raise ExecutionError(
                    f"{self.program.name}: exceeded {max_instrs} instructions")
        return total
