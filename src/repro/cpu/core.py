"""Value-accurate in-order interpreter for the repro ISA.

The core executes the guest program instruction by instruction, charging
cycle costs from :class:`~repro.cpu.costs.CycleCosts` plus whatever latency
the attached memory system reports for loads/stores. It is *value accurate*:
register and memory contents are bit-exact 32-bit results, which the
crash-consistency checker relies on.

The dispatch loop is deliberately a flat ``if/elif`` chain over opcode ints
with locals hoisted out of the loop - the fastest structure available to
pure Python, and this loop dominates simulator runtime. Three further
optimizations keep it hot:

* Programs are **pre-decoded** into dispatch tuples ``(op, a, b, c, line,
  cost)``: the I-cache line index and the instruction's class cycle cost
  (ALU/MUL/DIV/branch, plus the per-fetch ``ifetch_extra``) are computed
  once per (program, costs) pair and cached on ``program.meta``, so the
  loop charges one pre-folded constant instead of re-deriving costs per
  instruction. Memory ops carry only the fetch cost - ``mem_issue`` is
  charged at the call site so the ``now`` passed to the memory system is
  identical to the undecoded interpreter's.
* Writes to ``x0`` are redirected at decode time to a **sink slot**
  (``regs[32]``), removing the per-instruction ``regs[0] = 0`` enforcement
  store; ``regs[0]`` is simply never written.
* Retirement counters (``n_loads``/``n_stores``/``n_branches``, I-cache
  fetch/miss) live in locals for the duration of a chunk and are written
  back once on exit.
"""

from __future__ import annotations

import os

from repro.cpu.costs import CycleCosts
from repro.errors import ExecutionError
from repro.isa import opcodes as oc
from repro.isa.program import Program

_U32 = 0xFFFFFFFF
_SIGN = 0x80000000
_MOD = 1 << 32

# I-cache geometry: 16 instructions per line. With an 8 KB I-cache of 64 B
# lines this corresponds to tracking line residency by index.
_ILINE_SHIFT = 4

#: Architectural register count; ``regs[ARCH_REGS]`` is the x0-write sink.
ARCH_REGS = 32
_SINK = ARCH_REGS

#: Opcodes whose ``a`` field is a destination register (eligible for the
#: x0 -> sink rewrite). For stores and branches ``a`` is a *source* and
#: must be left untouched.
_DEST_A_OPS = (oc.R_FORMAT | oc.I_FORMAT | oc.LI_FORMAT | oc.LOAD_FORMAT
               | oc.J_FORMAT | oc.JR_FORMAT)

_DECODE_CACHE_KEY = "_decoded_by_costs"
_CONTENT_KEY = "_content_key"

#: Process-global decode cache: (program content key, costs) -> dispatch
#: tuples. The per-``meta`` cache below only helps while the same Program
#: *instance* is reused; sweep pool workers and tests rebuild programs, and
#: this content-keyed level makes those rebuilt twins decode once per
#: process too. Bounded by distinct (kernel, cost model) pairs; the cap is
#: a backstop for program-fuzzing tests.
_DECODE_SHARED: dict[tuple, list] = {}
_DECODE_SHARED_CAP = 1024
_DECODE_CAP_ENV = "REPRO_DECODE_CAP"
_DECODE_STATS = {"evictions": 0}


def _decode_cap() -> int:
    """The shared decode cache's entry cap (``REPRO_DECODE_CAP``
    overrides the default backstop)."""
    raw = os.environ.get(_DECODE_CAP_ENV, "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return _DECODE_SHARED_CAP


def decode_cache_stats() -> dict:
    """Shared decode cache counters (the unified cache report)."""
    return {"entries": len(_DECODE_SHARED), **_DECODE_STATS}


def program_content_key(program: Program) -> tuple:
    """Hashable identity of a program's executable content (name included:
    it is baked into execution-fault messages), cached on ``meta``."""
    key = program.meta.get(_CONTENT_KEY)
    if key is None:
        key = (program.name, program.mem_bytes, tuple(program.instructions))
        program.meta[_CONTENT_KEY] = key
    return key

# Internal dispatch codes, dense and ordered by measured dynamic frequency
# across the 23-workload suite (hot ops get the earliest ``if/elif`` arms,
# which are compared against int literals - no global/attribute loads in
# the dispatch chain). The run_chunk dispatch below MUST match this order.
_INTERNAL = {
    oc.ADD: 0, oc.ADDI: 1, oc.LW: 2, oc.SLLI: 3, oc.BGE: 4, oc.LI: 5,
    oc.JAL: 6, oc.SUB: 7, oc.MUL: 8, oc.SRLI: 9, oc.LBU: 10, oc.SW: 11,
    oc.ANDI: 12, oc.XOR: 13, oc.SRAI: 14, oc.BEQ: 15, oc.OR: 16,
    oc.BLT: 17, oc.SB: 18, oc.SLT: 19, oc.MULH: 20, oc.SLTU: 21,
    oc.BGEU: 22, oc.LH: 23, oc.LHU: 24, oc.BLTU: 25, oc.BNE: 26,
    oc.SRL: 27, oc.ORI: 28, oc.AND: 29, oc.DIV: 30, oc.JALR: 31,
    oc.LB: 32, oc.SH: 33, oc.XORI: 34, oc.SLL: 35, oc.SRA: 36,
    oc.SLTI: 37, oc.SLTIU: 38, oc.REM: 39, oc.DIVU: 40, oc.REMU: 41,
    oc.NOP: 42, oc.HALT: 43,
}
assert len(_INTERNAL) == oc.NUM_OPCODES


def _base_cost_table(costs: CycleCosts) -> list[int]:
    """Per-opcode cycle cost charged before dispatch, ``ifetch_extra``
    folded in. Memory ops carry only the fetch cost (see module docs)."""
    table = [costs.alu + costs.ifetch_extra] * oc.NUM_OPCODES
    for op in (oc.MUL, oc.MULH):
        table[op] = costs.mul + costs.ifetch_extra
    for op in (oc.DIV, oc.REM, oc.DIVU, oc.REMU):
        table[op] = costs.div + costs.ifetch_extra
    for op in oc.B_FORMAT:
        table[op] = costs.branch + costs.ifetch_extra
    for op in (oc.JAL, oc.JALR):
        table[op] = (costs.branch + costs.branch_taken_extra
                     + costs.ifetch_extra)
    for op in oc.MEMORY_OPS:
        table[op] = costs.ifetch_extra
    return table


def predecode(program: Program, costs: CycleCosts) -> list[tuple]:
    """Pre-decode ``program`` into ``(code, a, b, c, line, cost)`` tuples.

    ``code`` is the internal frequency-ordered dispatch code (see
    ``_INTERNAL``), ``line`` the I-cache line index of the instruction, and
    ``cost`` its pre-folded base cycle cost. The decode is cached at two
    levels, keyed by the (hashable, frozen) ``costs``: on ``program.meta``
    for instance reuse, and in the process-global content-keyed
    ``_DECODE_SHARED`` so rebuilt copies of the same kernel (sweep pool
    workers, per-test builds) decode once per process per cost model.
    """
    cache = program.meta.setdefault(_DECODE_CACHE_KEY, {})
    code = cache.get(costs)
    if code is None:
        shared_key = (program_content_key(program), costs)
        code = _DECODE_SHARED.get(shared_key)
        if code is None:
            table = _base_cost_table(costs)
            internal = _INTERNAL
            code = []
            for idx, (op, a, b, c) in enumerate(program.instructions):
                if a == 0 and op in _DEST_A_OPS:
                    a = _SINK
                code.append((internal[op], a, b, c,
                             idx >> _ILINE_SHIFT, table[op]))
            while len(_DECODE_SHARED) >= _decode_cap():
                # evict the oldest entry instead of dumping the whole
                # cache: fuzzing churn must not cold-start sweep kernels
                _DECODE_SHARED.pop(next(iter(_DECODE_SHARED)))
                _DECODE_STATS["evictions"] += 1
            _DECODE_SHARED[shared_key] = code
        cache[costs] = code
    return code


def _sdiv(a: int, b: int) -> int:
    """RISC-V signed division semantics on u32 operands."""
    if b == 0:
        return _U32
    sa = a - _MOD if a & _SIGN else a
    sb = b - _MOD if b & _SIGN else b
    if sa == -(1 << 31) and sb == -1:
        return _SIGN
    q = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        q = -q
    return q & _U32


def _srem(a: int, b: int) -> int:
    """RISC-V signed remainder semantics on u32 operands."""
    if b == 0:
        return a
    sa = a - _MOD if a & _SIGN else a
    sb = b - _MOD if b & _SIGN else b
    r = abs(sa) % abs(sb)
    if sa < 0:
        r = -r
    return r & _U32


class InOrderCore:
    """Single-issue in-order core bound to a program and a memory system.

    The memory system must provide::

        load(addr, now) -> (u32 value, cycles)
        store(addr, u32 value, now) -> cycles
        store_masked(addr, bits, mask, now) -> cycles

    where ``addr`` is a word-aligned byte address and ``now`` is the core's
    absolute cycle counter (used to retire asynchronous write-backs).

    ``self.regs`` holds 33 slots: x0..x31 plus the decode-time sink for
    writes to x0 (``regs[0]`` itself is never written and stays 0).
    """

    def __init__(self, program: Program, memsys, costs: CycleCosts | None = None):
        self.program = program
        self.memsys = memsys
        self.costs = costs or CycleCosts()
        self.regs: list[int] = [0] * (ARCH_REGS + 1)
        self.pc = 0
        self.cycle = 0
        self.instret = 0
        self.halted = False
        self.mem_bytes = program.mem_bytes
        self._code = predecode(program, self.costs)
        # I-cache residency (line index set); volatile unless the design
        # says otherwise - the simulator flushes it on power failure.
        self.ic_lines: set[int] = set()
        self.ic_last = -1
        self.ic_fetches = 0
        self.ic_misses = 0
        # per-class retirement counters (for reports)
        self.n_loads = 0
        self.n_stores = 0
        self.n_branches = 0

    # ------------------------------------------------------------------
    @property
    def arch_regs(self) -> list[int]:
        """The 32 architectural registers (without the decode sink)."""
        return self.regs[:ARCH_REGS]

    def snapshot_arch_state(self) -> tuple[list[int], int]:
        """Capture (registers, pc) for JIT checkpointing."""
        return (self.regs[:ARCH_REGS], self.pc)

    def restore_arch_state(self, state: tuple[list[int], int]) -> None:
        regs, pc = state
        r = list(regs[:ARCH_REGS])
        r.extend([0] * (ARCH_REGS + 1 - len(r)))
        self.regs = r
        self.pc = pc

    def flush_icache(self) -> None:
        self.ic_lines.clear()
        self.ic_last = -1

    # ------------------------------------------------------------------
    def run_chunk(self, max_instrs: int) -> tuple[int, int]:
        """Execute up to ``max_instrs`` instructions; returns (retired, cycles).

        Stops early on HALT. Raises :class:`ExecutionError` on illegal
        accesses so guest bugs never masquerade as results.
        """
        if self.halted:
            return (0, 0)
        code = self._code
        regs = self.regs
        mem = self.memsys
        costs = self.costs
        c_brx = costs.branch_taken_extra
        c_mem = costs.mem_issue
        c_imiss = costs.ifetch_miss
        ic_lines = self.ic_lines
        ic_last = self.ic_last
        ic_fetches = self.ic_fetches
        ic_misses = self.ic_misses
        n_loads = self.n_loads
        n_stores = self.n_stores
        n_branches = self.n_branches
        mem_bytes = self.mem_bytes
        load = mem.load
        store = mem.store
        store_masked = mem.store_masked

        pc = self.pc
        cycle = self.cycle
        n = 0
        nprog = len(code)

        try:
            while n < max_instrs:
                # No explicit pc bounds check: pc is never negative (branch
                # targets are validated, JALR targets are masked to u32), so
                # a runaway pc surfaces as IndexError on the fetch below and
                # is converted to ExecutionError by the handler at the end.
                op, a, b, c, line, cost = code[pc]
                n += 1
                # --- instruction fetch ---
                if line != ic_last:
                    ic_last = line
                    ic_fetches += 1
                    if line not in ic_lines:
                        ic_lines.add(line)
                        ic_misses += 1
                        cycle += c_imiss
                cycle += cost
                pc += 1

                # --- execute ---
                # Dispatch codes are int literals in measured dynamic
                # frequency order (see ``_INTERNAL`` - the mapping and this
                # chain must stay in sync).
                if op == 0:  # ADD
                    regs[a] = (regs[b] + regs[c]) & _U32
                elif op == 1:  # ADDI
                    regs[a] = (regs[b] + c) & _U32
                elif op == 2:  # LW
                    addr = (regs[b] + c) & _U32
                    if addr & 3 or addr >= mem_bytes:
                        raise ExecutionError(
                            f"{self.program.name}@{pc - 1}: bad lw addr {addr:#x}")
                    val, lat = load(addr, cycle)
                    regs[a] = val
                    cycle += c_mem + lat
                    n_loads += 1
                elif op == 3:  # SLLI
                    regs[a] = (regs[b] << c) & _U32
                elif op == 4:  # BGE
                    x = regs[a]
                    y = regs[b]
                    if (x - _MOD if x & _SIGN else x) >= (y - _MOD if y & _SIGN else y):
                        pc = c
                        cycle += c_brx
                    n_branches += 1
                elif op == 5:  # LI
                    regs[a] = b
                elif op == 6:  # JAL
                    regs[a] = pc  # link: next instruction index
                    pc = b
                elif op == 7:  # SUB
                    regs[a] = (regs[b] - regs[c]) & _U32
                elif op == 8:  # MUL
                    regs[a] = (regs[b] * regs[c]) & _U32
                elif op == 9:  # SRLI
                    regs[a] = regs[b] >> c
                elif op == 10:  # LBU
                    addr = (regs[b] + c) & _U32
                    if addr >= mem_bytes:
                        raise ExecutionError(
                            f"{self.program.name}@{pc - 1}: bad lb addr {addr:#x}")
                    val, lat = load(addr & ~3, cycle)
                    regs[a] = (val >> ((addr & 3) * 8)) & 0xFF
                    cycle += c_mem + lat
                    n_loads += 1
                elif op == 11:  # SW
                    addr = (regs[b] + c) & _U32
                    if addr & 3 or addr >= mem_bytes:
                        raise ExecutionError(
                            f"{self.program.name}@{pc - 1}: bad sw addr {addr:#x}")
                    cycle += c_mem + store(addr, regs[a], cycle)
                    n_stores += 1
                elif op == 12:  # ANDI
                    regs[a] = regs[b] & c
                elif op == 13:  # XOR
                    regs[a] = regs[b] ^ regs[c]
                elif op == 14:  # SRAI
                    x = regs[b]
                    if x & _SIGN:
                        x -= _MOD
                    regs[a] = (x >> c) & _U32
                elif op == 15:  # BEQ
                    if regs[a] == regs[b]:
                        pc = c
                        cycle += c_brx
                    n_branches += 1
                elif op == 16:  # OR
                    regs[a] = regs[b] | regs[c]
                elif op == 17:  # BLT
                    x = regs[a]
                    y = regs[b]
                    if (x - _MOD if x & _SIGN else x) < (y - _MOD if y & _SIGN else y):
                        pc = c
                        cycle += c_brx
                    n_branches += 1
                elif op == 18:  # SB
                    addr = (regs[b] + c) & _U32
                    if addr >= mem_bytes:
                        raise ExecutionError(
                            f"{self.program.name}@{pc - 1}: bad sb addr {addr:#x}")
                    sh = (addr & 3) * 8
                    cycle += c_mem + store_masked(
                        addr & ~3, (regs[a] & 0xFF) << sh, 0xFF << sh, cycle)
                    n_stores += 1
                elif op == 19:  # SLT
                    x = regs[b]
                    y = regs[c]
                    regs[a] = 1 if (x - _MOD if x & _SIGN else x) < (
                        y - _MOD if y & _SIGN else y) else 0
                elif op == 20:  # MULH
                    x = regs[b]
                    y = regs[c]
                    if x & _SIGN:
                        x -= _MOD
                    if y & _SIGN:
                        y -= _MOD
                    regs[a] = ((x * y) >> 32) & _U32
                elif op == 21:  # SLTU
                    regs[a] = 1 if regs[b] < regs[c] else 0
                elif op == 22:  # BGEU
                    if regs[a] >= regs[b]:
                        pc = c
                        cycle += c_brx
                    n_branches += 1
                elif op == 23 or op == 24:  # LH / LHU
                    addr = (regs[b] + c) & _U32
                    if addr & 1 or addr >= mem_bytes:
                        raise ExecutionError(
                            f"{self.program.name}@{pc - 1}: bad lh addr {addr:#x}")
                    val, lat = load(addr & ~3, cycle)
                    half = (val >> ((addr & 2) * 8)) & 0xFFFF
                    if op == 23 and half & 0x8000:
                        half |= 0xFFFF0000
                    regs[a] = half
                    cycle += c_mem + lat
                    n_loads += 1
                elif op == 25:  # BLTU
                    if regs[a] < regs[b]:
                        pc = c
                        cycle += c_brx
                    n_branches += 1
                elif op == 26:  # BNE
                    if regs[a] != regs[b]:
                        pc = c
                        cycle += c_brx
                    n_branches += 1
                elif op == 27:  # SRL
                    regs[a] = regs[b] >> (regs[c] & 31)
                elif op == 28:  # ORI
                    regs[a] = regs[b] | c
                elif op == 29:  # AND
                    regs[a] = regs[b] & regs[c]
                elif op == 30:  # DIV
                    regs[a] = _sdiv(regs[b], regs[c])
                elif op == 31:  # JALR
                    target = (regs[b] + c) & _U32
                    regs[a] = pc
                    pc = target
                elif op == 32:  # LB
                    addr = (regs[b] + c) & _U32
                    if addr >= mem_bytes:
                        raise ExecutionError(
                            f"{self.program.name}@{pc - 1}: bad lb addr {addr:#x}")
                    val, lat = load(addr & ~3, cycle)
                    byte = (val >> ((addr & 3) * 8)) & 0xFF
                    if byte & 0x80:
                        byte |= 0xFFFFFF00
                    regs[a] = byte
                    cycle += c_mem + lat
                    n_loads += 1
                elif op == 33:  # SH
                    addr = (regs[b] + c) & _U32
                    if addr & 1 or addr >= mem_bytes:
                        raise ExecutionError(
                            f"{self.program.name}@{pc - 1}: bad sh addr {addr:#x}")
                    sh = (addr & 2) * 8
                    cycle += c_mem + store_masked(
                        addr & ~3, (regs[a] & 0xFFFF) << sh, 0xFFFF << sh, cycle)
                    n_stores += 1
                elif op == 34:  # XORI
                    regs[a] = regs[b] ^ c
                elif op == 35:  # SLL
                    regs[a] = (regs[b] << (regs[c] & 31)) & _U32
                elif op == 36:  # SRA
                    x = regs[b]
                    if x & _SIGN:
                        x -= _MOD
                    regs[a] = (x >> (regs[c] & 31)) & _U32
                elif op == 37:  # SLTI
                    x = regs[b]
                    regs[a] = 1 if (x - _MOD if x & _SIGN else x) < c else 0
                elif op == 38:  # SLTIU
                    regs[a] = 1 if regs[b] < (c & _U32) else 0
                elif op == 39:  # REM
                    regs[a] = _srem(regs[b], regs[c])
                elif op == 40:  # DIVU
                    regs[a] = _U32 if regs[c] == 0 else regs[b] // regs[c]
                elif op == 41:  # REMU
                    regs[a] = regs[b] if regs[c] == 0 else regs[b] % regs[c]
                elif op == 42:  # NOP
                    pass
                elif op == 43:  # HALT
                    self.halted = True
                    pc -= 1  # stay on the HALT
                    break
                else:  # pragma: no cover - opcode table is exhaustive
                    raise ExecutionError(f"illegal opcode {op} at {pc - 1}")
        except IndexError:
            if pc >= nprog:
                raise ExecutionError(
                    f"{self.program.name}: pc {pc} outside program") from None
            raise
        finally:
            self.ic_last = ic_last
            self.ic_fetches = ic_fetches
            self.ic_misses = ic_misses
            self.n_loads = n_loads
            self.n_stores = n_stores
            self.n_branches = n_branches

        regs[0] = 0  # invariant (never written; cheap insurance at the rim)
        dcycles = cycle - self.cycle
        self.pc = pc
        self.cycle = cycle
        self.instret += n
        return (n, dcycles)

    # ------------------------------------------------------------------
    def run_to_halt(self, max_instrs: int = 50_000_000) -> int:
        """Run until HALT (no power failures); returns retired instructions.

        The final chunk is clamped to the remaining budget, so no more
        than ``max_instrs`` instructions ever execute; exhausting the
        budget without halting raises :class:`ExecutionError`.
        """
        total = 0
        while not self.halted:
            if total >= max_instrs:
                raise ExecutionError(
                    f"{self.program.name}: exceeded {max_instrs} instructions")
            done, _ = self.run_chunk(min(65536, max_instrs - total))
            total += done
        return total
