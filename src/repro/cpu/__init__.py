"""repro.cpu - the in-order core substrate."""

from repro.cpu.core import InOrderCore
from repro.cpu.costs import CycleCosts

__all__ = ["CycleCosts", "InOrderCore"]
