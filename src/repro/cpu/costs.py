"""Per-instruction-class cycle costs for the in-order core.

The paper models a 1 GHz single-issue in-order ARM core on gem5. We use
class-level costs: they set the compute/memory balance, which is what the
cache-design comparison is sensitive to.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class CycleCosts:
    """Cycle costs charged by the core, on top of memory-system latency.

    Attributes:
        alu: Simple ALU ops, LI, NOP.
        mul: 32x32 multiply (MUL/MULH).
        div: Divide/remainder.
        branch: Untaken conditional branch.
        branch_taken_extra: Extra bubble cycles for a taken branch/jump.
        mem_issue: Address-generation/issue cost of a load or store,
            added to the memory-system latency.
        ifetch_miss: I-cache miss penalty (refill from NVM instruction
            storage); per 16-instruction line.
        ifetch_extra: Extra cycles per instruction fetch (0 for SRAM
            I-caches whose hit is hidden by pipelining; >0 models the slow
            non-volatile I-cache of the NVCache design).
    """

    alu: int = 1
    mul: int = 3
    div: int = 12
    branch: int = 1
    branch_taken_extra: int = 1
    mem_issue: int = 1
    ifetch_miss: int = 20
    ifetch_extra: int = 0

    def __post_init__(self) -> None:
        for field_name in (
            "alu", "mul", "div", "branch", "branch_taken_extra",
            "mem_issue", "ifetch_miss", "ifetch_extra",
        ):
            v = getattr(self, field_name)
            if not isinstance(v, int) or v < 0:
                raise ConfigError(f"CycleCosts.{field_name} must be an int >= 0")
        if self.alu < 1 or self.branch < 1:
            raise ConfigError("alu and branch costs must be >= 1")
