"""repro.verify - crash-consistency verification and fault injection."""

from repro.verify.checker import (CheckReport, Divergence,
                                  check_crash_consistency, compare_states)
from repro.verify.faults import BrokenWLCacheNoCleanFirst, VCacheWBNoCheckpoint
from repro.verify.oracle import FunctionalMemory, OracleResult, run_oracle

__all__ = [
    "BrokenWLCacheNoCleanFirst",
    "CheckReport",
    "Divergence",
    "FunctionalMemory",
    "OracleResult",
    "VCacheWBNoCheckpoint",
    "check_crash_consistency",
    "compare_states",
    "run_oracle",
]
