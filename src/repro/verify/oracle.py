"""Failure-free oracle execution.

Runs a program on a bare functional memory (no cache model, no timing, no
power failures) to produce the ground-truth final memory image and register
file. Any crash-consistent design simulated under any power trace must end
in exactly this state.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.core import InOrderCore
from repro.isa.program import Program

_U32 = 0xFFFFFFFF


class FunctionalMemory:
    """Zero-latency word memory satisfying the memory-system protocol."""

    name = "Functional"
    volatile_cache = False

    def __init__(self, words: list[int]):
        self.words = words

    def load(self, addr: int, now: int) -> tuple[int, int]:
        return (self.words[addr >> 2], 0)

    def store(self, addr: int, value: int, now: int) -> int:
        self.words[addr >> 2] = value & _U32
        return 0

    def store_masked(self, addr: int, bits: int, mask: int, now: int) -> int:
        widx = addr >> 2
        self.words[widx] = (self.words[widx] & ~mask) | (bits & mask)
        return 0


@dataclass
class OracleResult:
    memory: list[int]
    regs: list[int]
    instructions: int


def run_oracle(program: Program, max_instrs: int = 50_000_000) -> OracleResult:
    """Execute to HALT with no failures; returns the reference final state."""
    mem = FunctionalMemory(program.initial_memory())
    core = InOrderCore(program, mem)
    core.run_to_halt(max_instrs)
    return OracleResult(memory=mem.words, regs=core.arch_regs,
                        instructions=core.instret)
