"""Crash-consistency checker.

The contract every design must satisfy: a run under any power trace, with
any number of outages, must halt with NVM main memory and architectural
registers identical to the failure-free oracle. Divergence means data was
lost or corrupted across a power failure - the exact bug class WL-Cache's
protocols (§3.2, §5.3) exist to prevent, and the one the deliberately
broken variants in :mod:`repro.verify.faults` exhibit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConsistencyError
from repro.isa.program import Program
from repro.sim.results import RunResult
from repro.verify.oracle import OracleResult, run_oracle


@dataclass
class Divergence:
    kind: str  # 'memory' or 'register'
    index: int
    expected: int
    actual: int

    def __str__(self) -> str:
        where = (f"word {self.index:#x}" if self.kind == "memory"
                 else f"x{self.index}")
        return (f"{self.kind} divergence at {where}: "
                f"expected {self.expected:#010x}, got {self.actual:#010x}")


@dataclass
class CheckReport:
    ok: bool
    divergences: list[Divergence] = field(default_factory=list)

    def raise_if_bad(self, context: str = "") -> None:
        if not self.ok:
            head = "; ".join(str(d) for d in self.divergences[:5])
            more = (f" (+{len(self.divergences) - 5} more)"
                    if len(self.divergences) > 5 else "")
            raise ConsistencyError(f"{context}: {head}{more}")


def compare_states(result: RunResult, oracle: OracleResult,
                   max_report: int = 64) -> CheckReport:
    """Compare a run's final NVM/registers against the oracle."""
    divs: list[Divergence] = []
    mem = result.final_memory
    if mem is None:
        raise ConsistencyError("run result carries no final memory image")
    if len(mem) != len(oracle.memory):
        raise ConsistencyError(
            f"memory size mismatch: {len(mem)} vs {len(oracle.memory)}")
    for i, (got, want) in enumerate(zip(mem, oracle.memory)):
        if got != want:
            divs.append(Divergence("memory", i * 4, want, got))
            if len(divs) >= max_report:
                break
    # x0..x31; x0 always 0
    for i, (got, want) in enumerate(zip(result.final_regs, oracle.regs)):
        if got != want:
            divs.append(Divergence("register", i, want, got))
    return CheckReport(ok=not divs, divergences=divs)


def check_crash_consistency(program: Program, result: RunResult) -> None:
    """End-to-end check; raises :class:`ConsistencyError` on divergence."""
    if not result.halted:
        raise ConsistencyError(f"{program.name}: run did not halt")
    oracle = run_oracle(program)
    compare_states(result, oracle).raise_if_bad(
        f"{program.name} on {result.design}/{result.trace}")
