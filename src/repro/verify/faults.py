"""Deliberately broken designs for fault-injection testing.

These exist to prove the checker has teeth and to demonstrate *why* the
paper's protocol details matter:

* :class:`BrokenWLCacheNoCleanFirst` omits §5.3 step 1 (mark the line clean
  *before* issuing the asynchronous write-back). As the paper's WX=1/WX=2
  walkthrough shows, a store that lands while the write-back is in flight
  then fails to re-insert the line into the DirtyQueue; once the ACK
  removes the entry, a power failure silently loses the newer value.
* :class:`VCacheWBNoCheckpoint` is a plain volatile write-back cache with
  no JIT checkpointing at all - the design energy harvesting systems
  cannot use (§1), losing every dirty line at each outage.
"""

from __future__ import annotations

from repro.caches.nvsram import NVSRAMIdeal
from repro.core.wl_cache import PendingWB, WLCache
from repro.mem.memsys import FlushReport


class BrokenWLCacheNoCleanFirst(WLCache):
    """WL-Cache without the clean-first ordering of §5.3 step 1."""

    name = "WL-Cache(broken:no-clean-first)"

    def _issue_writeback(self, t: int) -> None:
        entry = self.dq.select_victim(self.array)
        if entry is None:
            return
        line = self.array.peek(entry.lineno << self.array.line_shift)
        # BUG under test: the line stays dirty while the write-back is in
        # flight, so a store to it does not re-insert a DirtyQueue entry.
        entry.in_flight = True
        addr = self.array.line_addr(line)
        ack = max(t, self._channel_free) + self.nvm.timings.line_write(
            len(line.data))
        self._channel_free = ack
        self.pending.append(PendingWB(ack, entry.lineno, addr,
                                      list(line.data), entry))
        self.stats.async_writebacks += 1

    def _retire_pending(self, p: PendingWB) -> None:
        # the ACK also (wrongly) clears the dirty bit: the hardware believes
        # the line is persisted even though a newer store may have landed
        line = self.array.peek(p.lineno << self.array.line_shift)
        if line is not None:
            line.dirty = False
        super()._retire_pending(p)


class VCacheWBNoCheckpoint(NVSRAMIdeal):
    """Volatile write-back cache with no backup path whatsoever."""

    name = "VCache-WB(no-checkpoint)"

    def reserve_lines(self) -> int:
        return 0

    def flush_for_checkpoint(self, now: int) -> FlushReport:
        return FlushReport()  # dirty lines are simply lost

    def on_boot(self, first: bool) -> int:
        self._backup = []
        return 0
