"""repro.runtime - NVP runtime pieces: NVFF storage and the watchdog."""

from repro.runtime.nvff import NVFFStore
from repro.runtime.watchdog import WatchdogTimer

__all__ = ["NVFFStore", "WatchdogTimer"]
