"""Non-volatile flip-flop (NVFF) checkpoint storage.

NVP-style energy harvesting systems checkpoint volatile architectural state
into NVFFs adjacent to the registers at power failure and restore it at
reboot (§2.1). WL-Cache additionally keeps its two thresholds (1 byte each)
and the last two watchdog power-on times (2 bytes each) in NVFFs (§5.5).

This class is the single place crossing power failures: everything not in
here or in NVM main memory is lost when the simulator models an outage.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class NVFFStore:
    """Checkpointed state surviving a power outage."""

    valid: bool = False
    regs: list[int] = field(default_factory=list)
    pc: int = 0
    maxline: int = 0
    waterline: int = 0
    #: last two power-on durations (ns), oldest first (§5.5: two 2-byte slots)
    on_times: list[int] = field(default_factory=list)

    def checkpoint(self, regs: list[int], pc: int, maxline: int,
                   waterline: int, on_times: list[int]) -> None:
        self.regs = list(regs)
        self.pc = pc
        self.maxline = maxline
        self.waterline = waterline
        self.on_times = list(on_times[-2:])
        self.valid = True

    def restore(self) -> tuple[list[int], int]:
        """Return (regs, pc); caller re-applies thresholds separately."""
        if not self.valid:
            raise ValueError("restore from an empty NVFF store")
        return (list(self.regs), self.pc)
