"""Watchdog timer measuring power-on durations (§4).

The runtime cannot observe power-off time (the core is dead); it measures
each power-*on* interval instead and uses the last two to estimate energy
source quality at boot.
"""

from __future__ import annotations

from repro.errors import ReproError


class WatchdogTimer:
    """Measures power-on intervals in nanoseconds of wall-clock time."""

    def __init__(self) -> None:
        self._started_at: int | None = None
        self.intervals: list[int] = []

    def start(self, t_ns: int) -> None:
        if self._started_at is not None:
            raise ReproError("watchdog started twice without stop")
        self._started_at = t_ns

    def stop(self, t_ns: int) -> int:
        if self._started_at is None:
            raise ReproError("watchdog stopped without start")
        dur = t_ns - self._started_at
        if dur < 0:
            raise ReproError("watchdog time went backwards")
        self._started_at = None
        self.intervals.append(dur)
        return dur

    @property
    def last_two(self) -> list[int]:
        return self.intervals[-2:]
