"""Dependency-free SVG charts for the benchmark CSVs.

matplotlib is unavailable in the reproduction environment, so this module
renders the two chart shapes the paper uses - grouped bar charts
(Figs. 4-9, 11-13) and line charts (Fig. 10) - as standalone SVG files
from the CSVs the benches emit::

    python -m repro plot results/fig05_trace1.csv
    python -m repro plot results/fig10b_capacitor.csv --kind line --log-y

The renderer is intentionally small: categorical x-axis from the first CSV
column, one series per remaining numeric column, auto-scaled y-axis with
ticks, legend, and value-safe handling of gaps ('DNF', empty cells).
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field

from repro.errors import ConfigError

#: categorical palette (colorblind-safe Okabe-Ito)
PALETTE = ("#0072B2", "#E69F00", "#009E73", "#D55E00", "#CC79A7",
           "#56B4E9", "#F0E442", "#000000")

_MARGIN_L, _MARGIN_R, _MARGIN_T, _MARGIN_B = 64, 16, 34, 72


@dataclass
class ChartData:
    """Parsed chart input: categories on x, named numeric series on y."""

    title: str
    categories: list[str]
    series: dict[str, list[float | None]] = field(default_factory=dict)

    def validate(self) -> None:
        if not self.categories:
            raise ConfigError("chart needs at least one category")
        if not self.series:
            raise ConfigError("chart needs at least one series")
        for name, vals in self.series.items():
            if len(vals) != len(self.categories):
                raise ConfigError(
                    f"series {name!r} has {len(vals)} values for "
                    f"{len(self.categories)} categories")

    def value_range(self) -> tuple[float, float]:
        vals = [v for s in self.series.values() for v in s if v is not None]
        if not vals:
            raise ConfigError("chart has no numeric values")
        return (min(vals), max(vals))


def read_csv(path: str, max_rows: int | None = None) -> ChartData:
    """Parse a bench CSV: first column = category, the rest = series.

    Non-numeric cells ('DNF', blanks) become gaps. Aggregate rows
    (categories starting with 'gmean') are kept - pass ``max_rows`` to
    truncate long per-app tables.
    """
    with open(path) as f:
        header = f.readline().strip().split(",")
        if len(header) < 2:
            raise ConfigError(f"{path}: need >= 2 columns")
        categories: list[str] = []
        columns: dict[str, list[float | None]] = {h: [] for h in header[1:]}
        for line in f:
            line = line.rstrip("\n")
            if not line:
                continue
            cells = line.split(",")
            categories.append(cells[0])
            for name, cell in zip(header[1:], cells[1:len(header)]):
                try:
                    columns[name].append(float(cell))
                except ValueError:
                    columns[name].append(None)
            for name in header[1 + len(cells[1:]):]:
                columns[name].append(None)
    if max_rows is not None:
        categories = categories[:max_rows]
        columns = {k: v[:max_rows] for k, v in columns.items()}
    # drop all-gap series (e.g. text columns)
    series = {k: v for k, v in columns.items()
              if any(x is not None for x in v)}
    title = os.path.splitext(os.path.basename(path))[0]
    data = ChartData(title, categories, series)
    data.validate()
    return data


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------


def _nice_ticks(lo: float, hi: float, n: int = 5) -> list[float]:
    """Round tick positions covering [lo, hi]."""
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo
    step = 10 ** math.floor(math.log10(span / max(1, n)))
    for mult in (1, 2, 2.5, 5, 10, 20):
        if span / (step * mult) <= n:
            step *= mult
            break
    start = math.floor(lo / step) * step
    ticks = []
    t = start
    while t <= hi + 1e-12:
        ticks.append(round(t, 10))
        t += step
    return ticks


def _esc(text: str) -> str:
    return (str(text).replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


class _Svg:
    def __init__(self, width: int, height: int):
        self.width = width
        self.height = height
        self.parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
            f'height="{height}" viewBox="0 0 {width} {height}" '
            f'font-family="Helvetica,Arial,sans-serif">',
            f'<rect width="{width}" height="{height}" fill="white"/>',
        ]

    def line(self, x1, y1, x2, y2, color="#333", width=1.0, dash=None):
        d = f' stroke-dasharray="{dash}"' if dash else ""
        self.parts.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
            f'stroke="{color}" stroke-width="{width}"{d}/>')

    def rect(self, x, y, w, h, color):
        self.parts.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" '
            f'height="{h:.1f}" fill="{color}"/>')

    def circle(self, x, y, r, color):
        self.parts.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{r}" fill="{color}"/>')

    def text(self, x, y, s, size=11, anchor="middle", color="#222",
             rotate=None):
        t = (f' transform="rotate({rotate} {x:.1f} {y:.1f})"'
             if rotate else "")
        self.parts.append(
            f'<text x="{x:.1f}" y="{y:.1f}" font-size="{size}" '
            f'text-anchor="{anchor}" fill="{color}"{t}>{_esc(s)}</text>')

    def polyline(self, points, color, width=1.8):
        pts = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
        self.parts.append(
            f'<polyline points="{pts}" fill="none" stroke="{color}" '
            f'stroke-width="{width}"/>')

    def render(self) -> str:
        return "\n".join(self.parts + ["</svg>"])


def _chart_frame(data: ChartData, width: int, height: int, log_y: bool,
                 baseline: float | None):
    svg = _Svg(width, height)
    lo, hi = data.value_range()
    if log_y:
        if lo <= 0:
            raise ConfigError("log-y needs positive values")
        lo_t, hi_t = math.log10(lo), math.log10(hi)
        pad = 0.05 * max(1e-9, hi_t - lo_t)
        lo_t -= pad
        hi_t += pad
    else:
        lo_t = min(0.0, lo)
        hi_t = hi * 1.08

    x0, x1 = _MARGIN_L, width - _MARGIN_R
    y0, y1 = height - _MARGIN_B, _MARGIN_T

    def ty(v: float) -> float:
        t = math.log10(v) if log_y else v
        return y0 + (t - lo_t) / (hi_t - lo_t) * (y1 - y0)

    # axes + ticks
    svg.line(x0, y0, x1, y0)
    svg.line(x0, y0, x0, y1)
    ticks = ([10 ** t for t in _nice_ticks(lo_t, hi_t, 4)] if log_y
             else _nice_ticks(lo_t, hi_t, 5))
    for tick in ticks:
        if log_y and (tick <= 0):
            continue
        y = ty(tick)
        if y > y0 or y < y1:
            continue
        svg.line(x0 - 3, y, x1, y, color="#ddd", width=0.6)
        label = f"{tick:g}"
        svg.text(x0 - 6, y + 3.5, label, size=10, anchor="end")
    if baseline is not None and (lo_t < baseline < hi_t or log_y):
        svg.line(x0, ty(baseline), x1, ty(baseline), color="#c00",
                 width=0.8, dash="4,3")
    svg.text(width / 2, 18, data.title, size=13)
    return svg, (x0, x1, y0, y1), ty


def _legend(svg, names, x1):
    lx = _MARGIN_L
    ly = svg.height - 14
    for i, name in enumerate(names):
        color = PALETTE[i % len(PALETTE)]
        svg.rect(lx, ly - 8, 9, 9, color)
        svg.text(lx + 13, ly, name, size=10, anchor="start")
        lx += 13 + 7 * len(name) + 18


def render_bar_chart(data: ChartData, width: int = 900, height: int = 380,
                     baseline: float | None = 1.0) -> str:
    """Grouped bar chart; a dashed line marks the baseline (speedup 1.0)."""
    data.validate()
    svg, (x0, x1, y0, y1), ty = _chart_frame(data, width, height,
                                             log_y=False, baseline=baseline)
    n_cat = len(data.categories)
    n_ser = len(data.series)
    slot = (x1 - x0) / n_cat
    bar_w = max(1.5, 0.8 * slot / n_ser)
    zero_y = ty(0.0)
    for ci, cat in enumerate(data.categories):
        gx = x0 + ci * slot + 0.1 * slot
        for si, (name, vals) in enumerate(data.series.items()):
            v = vals[ci]
            color = PALETTE[si % len(PALETTE)]
            if v is None:
                svg.text(gx + si * bar_w + bar_w / 2, zero_y - 4, "x",
                         size=9, color="#999")
                continue
            y = ty(v)
            svg.rect(gx + si * bar_w, min(y, zero_y), bar_w,
                     abs(zero_y - y), color)
        svg.text(x0 + ci * slot + slot / 2, y0 + 12, cat, size=9,
                 rotate=-35 if n_cat > 8 else None,
                 anchor="end" if n_cat > 8 else "middle")
    _legend(svg, list(data.series), x1)
    return svg.render()


def render_line_chart(data: ChartData, width: int = 760, height: int = 380,
                      log_y: bool = False) -> str:
    """Line chart over the categorical x-axis (capacitor/cache sweeps)."""
    data.validate()
    svg, (x0, x1, y0, y1), ty = _chart_frame(data, width, height,
                                             log_y=log_y, baseline=None)
    n_cat = len(data.categories)
    xs = [x0 + (i + 0.5) * (x1 - x0) / n_cat for i in range(n_cat)]
    for si, (name, vals) in enumerate(data.series.items()):
        color = PALETTE[si % len(PALETTE)]
        run: list[tuple[float, float]] = []
        for x, v in zip(xs, vals):
            if v is None:
                if len(run) > 1:
                    svg.polyline(run, color)
                run = []
                continue
            run.append((x, ty(v)))
            svg.circle(x, ty(v), 2.6, color)
        if len(run) > 1:
            svg.polyline(run, color)
    for x, cat in zip(xs, data.categories):
        svg.text(x, y0 + 14, cat, size=10)
    _legend(svg, list(data.series), x1)
    return svg.render()


def plot_csv(csv_path: str, out_path: str | None = None, kind: str = "bar",
             log_y: bool = False, max_rows: int | None = None) -> str:
    """Render a bench CSV to SVG; returns the output path."""
    if kind not in ("bar", "line"):
        raise ConfigError(f"kind must be 'bar' or 'line', got {kind!r}")
    data = read_csv(csv_path, max_rows=max_rows)
    if kind == "bar":
        svg = render_bar_chart(data)
    else:
        svg = render_line_chart(data, log_y=log_y)
    out_path = out_path or os.path.splitext(csv_path)[0] + ".svg"
    with open(out_path, "w") as f:
        f.write(svg)
    return out_path


#: per-figure rendering hints for batch mode (kind, log-y, row cap)
BATCH_HINTS = {
    "fig10a_cache_size": ("line", False),
    "fig10b_capacitor": ("line", True),
}


def render_all(results_dir: str) -> list[str]:
    """Render every CSV in a results directory; returns written paths."""
    written = []
    for name in sorted(os.listdir(results_dir)):
        if not name.endswith(".csv"):
            continue
        stem = name[:-4]
        kind, log_y = BATCH_HINTS.get(stem, ("bar", False))
        try:
            written.append(plot_csv(os.path.join(results_dir, name),
                                    kind=kind, log_y=log_y))
        except ConfigError:
            continue  # text-only tables (e.g. table2_config) have no series
    return written
