"""ASCII table rendering and CSV emission for the benchmark harness.

Every bench prints its figure/table as rows (the same series the paper
plots) and writes a CSV under ``results/`` for downstream plotting.
"""

from __future__ import annotations

import os
from collections.abc import Iterable, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 float_fmt: str = "{:.3f}") -> str:
    """Render an aligned ASCII table."""
    def cell(v) -> str:
        if isinstance(v, float):
            return float_fmt.format(v)
        return str(v)

    srows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    sep = "-+-".join("-" * w for w in widths)
    out = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for row in srows:
        out.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def results_dir() -> str:
    """The repo's results directory (created on demand)."""
    here = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))))
    path = os.path.join(here, "results")
    os.makedirs(path, exist_ok=True)
    return path


def write_csv(name: str, headers: Sequence[str],
              rows: Iterable[Sequence]) -> str:
    """Write rows to ``results/<name>.csv``; returns the path."""
    path = os.path.join(results_dir(), f"{name}.csv")
    with open(path, "w") as f:
        f.write(",".join(headers) + "\n")
        for row in rows:
            f.write(",".join(str(v) for v in row) + "\n")
    return path


def print_figure(title: str, headers: Sequence[str],
                 rows: list[Sequence], csv_name: str | None = None) -> None:
    """Print a figure's data table and optionally persist it as CSV."""
    print(f"\n=== {title} ===")
    print(format_table(headers, rows))
    if csv_name:
        path = write_csv(csv_name, headers, rows)
        print(f"[csv: {path}]")
