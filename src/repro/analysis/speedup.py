"""Speedup math: normalization and geometric means, as the paper reports."""

from __future__ import annotations

import math
from collections.abc import Iterable

from repro.errors import ConfigError


def gmean(values: Iterable[float]) -> float:
    """Geometric mean; the paper's aggregate for every speedup figure."""
    vals = list(values)
    if not vals:
        raise ConfigError("gmean of an empty sequence")
    if any(v <= 0 for v in vals):
        raise ConfigError("gmean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def speedup(baseline_time: float, time: float) -> float:
    """Speedup of `time` relative to `baseline_time` (>1 means faster)."""
    if time <= 0 or baseline_time <= 0:
        raise ConfigError("times must be positive")
    return baseline_time / time


def suite_gmeans(per_app: dict[str, float], media: Iterable[str],
                 mi: Iterable[str]) -> dict[str, float]:
    """The paper's three aggregates: gmean(Media), gmean(Mi), gmean(Total)."""
    media_vals = [per_app[a] for a in media if a in per_app]
    mi_vals = [per_app[a] for a in mi if a in per_app]
    out = {}
    if media_vals:
        out["gmean(Media)"] = gmean(media_vals)
    if mi_vals:
        out["gmean(Mi)"] = gmean(mi_vals)
    if media_vals or mi_vals:
        out["gmean(Total)"] = gmean(media_vals + mi_vals)
    return out
