"""repro.analysis - speedups, tables, hardware cost, energy breakdown."""

from repro.analysis.energy_breakdown import (CATEGORIES, breakdown_totals,
                                             normalized_breakdown)
from repro.analysis.hwcost import (ArrayCost, cache_cost, dirty_queue_cost,
                                   hardware_cost_report, nv_array_cost,
                                   sram_array_cost)
from repro.analysis.plot import plot_csv, render_all
from repro.analysis.speedup import gmean, speedup, suite_gmeans
from repro.analysis.stats_io import (load_result, load_results_dir,
                                     result_from_dict, result_to_dict,
                                     save_result)
from repro.analysis.tables import (format_table, print_figure, results_dir,
                                   write_csv)

__all__ = [
    "ArrayCost",
    "CATEGORIES",
    "breakdown_totals",
    "cache_cost",
    "dirty_queue_cost",
    "format_table",
    "gmean",
    "hardware_cost_report",
    "normalized_breakdown",
    "load_result",
    "load_results_dir",
    "nv_array_cost",
    "plot_csv",
    "print_figure",
    "render_all",
    "result_from_dict",
    "result_to_dict",
    "save_result",
    "results_dir",
    "speedup",
    "sram_array_cost",
    "suite_gmeans",
    "write_csv",
]
