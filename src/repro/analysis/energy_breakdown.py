"""Energy-consumption breakdown analysis (Figure 13b).

Aggregates per-run :class:`~repro.sim.results.EnergyBreakdown` objects into
the paper's five categories - cache (read), cache (write), mem (read),
mem (write), compute - normalized to a baseline design's total.
"""

from __future__ import annotations

from repro.sim.results import RunResult

CATEGORIES = ("cache_read", "cache_write", "mem_read", "mem_write",
              "compute")


def breakdown_totals(results: list[RunResult]) -> dict[str, float]:
    """Sum category energies (nJ) across runs, folded to the figure's five
    categories: checkpoint NVFF energy and the reserve charge discarded at
    power-off both count toward compute (they are the system-level price of
    the design's persistence scheme, drawn from the same buffer)."""
    tot = {c: 0.0 for c in CATEGORIES}
    for r in results:
        d = r.energy.as_dict()
        tot["cache_read"] += d["cache_read"]
        tot["cache_write"] += d["cache_write"]
        tot["mem_read"] += d["mem_read"]
        tot["mem_write"] += d["mem_write"]
        tot["compute"] += d["compute"] + d["checkpoint"] + d["discarded"]
    return tot


def normalized_breakdown(per_design: dict[str, list[RunResult]],
                         baseline: str) -> dict[str, dict[str, float]]:
    """Per-design category percentages, normalized to the baseline total.

    Returns ``{design: {category: percent}}``; the baseline's categories
    sum to 100.
    """
    totals = {d: breakdown_totals(rs) for d, rs in per_design.items()}
    base_total = sum(totals[baseline].values())
    out = {}
    for design, cats in totals.items():
        out[design] = {c: 100.0 * v / base_total for c, v in cats.items()}
    return out
