"""Serialize run results to JSON for downstream analysis.

`RunResult` carries the final memory image (megabytes of ground truth for
the checker), which has no place in a stats file; this module extracts the
reportable statistics, round-trips them through JSON, and can tabulate a
directory of dumps - the workflow for comparing runs across machines or
configurations without re-simulating.
"""

from __future__ import annotations

import json
import os

from repro.errors import ConfigError
from repro.sim.results import EnergyBreakdown, PeriodStats, RunResult

_SCALAR_FIELDS = (
    "program", "design", "trace", "halted", "total_time_ns", "on_time_ns",
    "off_time_ns", "exec_cycles", "instructions", "outages",
    "checkpoint_lines_total", "reconfig_count", "maxline_min", "maxline_max",
    "prediction_accuracy", "dyn_raises", "nvm_reads", "nvm_writes",
    "read_hits", "read_misses", "write_hits", "write_misses",
    "store_stall_cycles", "async_writebacks", "dirty_evictions",
)

_FORMAT_VERSION = 1


def result_to_dict(result: RunResult, include_periods: bool = True) -> dict:
    """Extract the reportable statistics of a run (no memory image)."""
    out = {"format_version": _FORMAT_VERSION}
    for name in _SCALAR_FIELDS:
        out[name] = getattr(result, name)
    out["energy_nj"] = result.energy.as_dict()
    out["derived"] = {
        "ipc": result.ipc,
        "stall_fraction": result.stall_fraction,
        "avg_dirty_per_period": result.avg_dirty_per_period,
        "avg_writebacks_per_period": result.avg_writebacks_per_period,
    }
    if include_periods:
        out["periods"] = [
            {"on_time_ns": p.on_time_ns, "instrs": p.instrs,
             "dirty_highwater": p.dirty_highwater,
             "async_writebacks": p.async_writebacks, "maxline": p.maxline}
            for p in result.periods
        ]
    if result.metrics is not None:
        out["metrics"] = result.metrics
    return out


def result_from_dict(data: dict) -> RunResult:
    """Rebuild a (stats-only) RunResult from :func:`result_to_dict` output."""
    if data.get("format_version") != _FORMAT_VERSION:
        raise ConfigError(
            f"unsupported stats format {data.get('format_version')!r}")
    result = RunResult(program=data["program"], design=data["design"],
                       trace=data["trace"])
    for name in _SCALAR_FIELDS:
        setattr(result, name, data[name])
    e = data["energy_nj"]
    result.energy = EnergyBreakdown(
        cache_read_nj=e["cache_read"], cache_write_nj=e["cache_write"],
        mem_read_nj=e["mem_read"], mem_write_nj=e["mem_write"],
        compute_nj=e["compute"], checkpoint_nj=e["checkpoint"],
        discarded_nj=e.get("discarded", 0.0))
    for p in data.get("periods", []):
        result.periods.append(PeriodStats(
            on_time_ns=p["on_time_ns"], instrs=p["instrs"],
            dirty_highwater=p["dirty_highwater"],
            async_writebacks=p["async_writebacks"], maxline=p["maxline"]))
    result.metrics = data.get("metrics")
    return result


def save_result(result: RunResult, path: str,
                include_periods: bool = True) -> str:
    """Write one run's statistics as JSON; returns the path."""
    with open(path, "w") as f:
        json.dump(result_to_dict(result, include_periods), f, indent=1)
    return path


def load_result(path: str) -> RunResult:
    with open(path) as f:
        return result_from_dict(json.load(f))


def load_results_dir(directory: str) -> list[RunResult]:
    """Load every ``*.json`` stats dump in a directory."""
    out = []
    for name in sorted(os.listdir(directory)):
        if name.endswith(".json"):
            out.append(load_result(os.path.join(directory, name)))
    return out
