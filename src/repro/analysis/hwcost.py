"""CACTI-flavored hardware cost model (§6.2).

A small analytic area/energy/leakage model for SRAM/CAM-style arrays at a
given technology node, calibrated so the paper's 90 nm numbers come out:
the DirtyQueue (8 entries x ~26-bit line address + thresholds + control)
costs at most ~0.005 mm^2 of area, ~0.0008 nJ per dynamic access, and
~0.1 mW total leakage - about 9 % of an NV cache's leakage.

This is deliberately CACTI-like, not CACTI: per-bit area/leakage scaling
with decoder/control overheads, and dynamic energy scaling with the bits
touched per access. It regenerates the paper's hardware-cost numbers and
lets tests check the DirtyQueue stays a negligible add-on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

# 90/65/45 nm constants: cell area (um^2/bit), dynamic energy per accessed
# bit (pJ), leakage per stored bit (nW)
_BIT_AREA_UM2 = {90: 1.40, 65: 0.85, 45: 0.45}
_BIT_ENERGY_PJ = {90: 0.022, 65: 0.013, 45: 0.008}
_BIT_LEAK_NW = {90: 1.7, 65: 2.3, 45: 3.1}
# non-volatile (ReRAM-class) arrays: denser cells, costlier accesses,
# much leakier periphery (the paper's ~9x relation)
_NV_AREA_RATIO = 0.6
_NV_ENERGY_RATIO = 12.0
_NV_LEAK_RATIO = 9.0


@dataclass(frozen=True)
class ArrayCost:
    """Cost estimate for one storage structure."""

    name: str
    area_mm2: float
    access_energy_nj: float
    leakage_mw: float

    def row(self) -> tuple:
        return (self.name, round(self.area_mm2, 5),
                round(self.access_energy_nj, 5), round(self.leakage_mw, 4))


def _node_constants(node_nm: int) -> tuple[float, float, float]:
    if node_nm not in _BIT_AREA_UM2:
        raise ConfigError(f"unsupported node {node_nm} nm; have "
                          f"{sorted(_BIT_AREA_UM2)}")
    return (_BIT_AREA_UM2[node_nm], _BIT_ENERGY_PJ[node_nm],
            _BIT_LEAK_NW[node_nm])


def sram_array_cost(name: str, bits: int, access_bits: int | None = None,
                    node_nm: int = 90, ports: int = 1, cam: bool = False,
                    logic_leak_mw: float = 0.0) -> ArrayCost:
    """Cost of an SRAM (or CAM) array with decoder/control overhead.

    ``access_bits`` is how many bits one access touches (a queue touches
    one entry, a cache touches one line plus tags); defaults to the whole
    array for small structures.
    """
    if bits <= 0:
        raise ConfigError("bits must be positive")
    area_um2, energy_pj, leak_nw = _node_constants(node_nm)
    port_factor = 1.0 + 0.35 * (ports - 1)
    cam_factor = 2.2 if cam else 1.0
    overhead = 1.25  # decoder, sense amps, control
    touched = access_bits if access_bits is not None else bits
    area = bits * area_um2 * port_factor * cam_factor * overhead / 1e6
    energy = touched * energy_pj * port_factor * cam_factor / 1e3
    leak = bits * leak_nw * port_factor * cam_factor / 1e6 + logic_leak_mw
    return ArrayCost(name, area, energy, leak)


def nv_array_cost(name: str, bits: int, access_bits: int | None = None,
                  node_nm: int = 90) -> ArrayCost:
    """Cost of a non-volatile (ReRAM-class) array."""
    base = sram_array_cost(name, bits, access_bits, node_nm)
    return ArrayCost(name, base.area_mm2 * _NV_AREA_RATIO,
                     base.access_energy_nj * _NV_ENERGY_RATIO,
                     base.leakage_mw * _NV_LEAK_RATIO)


def dirty_queue_cost(entries: int = 8, addr_bits: int = 26,
                     node_nm: int = 90) -> ArrayCost:
    """DirtyQueue: entries x address bits plus head/tail/threshold logic.

    Per §5.5 the structure also holds two 1-byte thresholds and two 2-byte
    power-on timers (NVFF-backed); an access touches one entry plus the
    occupancy counters. The queue's control logic dominates its leakage.
    """
    bits = entries * addr_bits + 2 * 8 + 2 * 16 + 64  # payload + control
    access = addr_bits + 8
    return sram_array_cost("DirtyQueue", bits, access, node_nm,
                           logic_leak_mw=0.088)


def cache_cost(name: str, size_bytes: int, line_bytes: int = 64,
               nv: bool = False, node_nm: int = 90) -> ArrayCost:
    bits = int(size_bytes * 8 * 1.08)  # + tag/valid/dirty overhead
    access = line_bytes // 8 * 8 * 8 + 32  # one word-select slice + tags
    if nv:
        return nv_array_cost(name, bits, access, node_nm)
    return sram_array_cost(name, bits, access, node_nm)


def hardware_cost_report(node_nm: int = 90) -> list[ArrayCost]:
    """The §6.2 comparison: DirtyQueue vs the caches it replaces."""
    return [
        dirty_queue_cost(node_nm=node_nm),
        cache_cost("8KB SRAM cache", 8192, nv=False, node_nm=node_nm),
        cache_cost("8KB NV cache", 8192, nv=True, node_nm=node_nm),
        cache_cost("8KB NVSRAM shadow", 8192, nv=True, node_nm=node_nm),
    ]
