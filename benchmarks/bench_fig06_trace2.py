"""Figure 6: normalized speedup vs NVSRAM(ideal) under Power Trace 2.

Same shape as Figure 5 on the less stable office RF trace; the paper
reports a slightly larger WL-Cache margin (1.12x default, 1.44x adaptive).
"""

from bench_common import gmean_speedup, speedup_figure
from repro.sim.config import DESIGNS


def run_fig6():
    per_design, _ = speedup_figure(
        "trace2", "Figure 6: speedup vs NVSRAM(ideal), Power Trace 2",
        "fig06_trace2")
    return per_design


def check_shape(per_design):
    g = {d: gmean_speedup(per_design, d) for d in DESIGNS}
    assert g["WL-Cache"] > 1.0
    assert g["WL-Cache"] > g["ReplayCache"]
    assert g["NVCache-WB"] < g["VCache-WT"]


def test_fig06_trace2(benchmark):
    per_design = benchmark.pedantic(run_fig6, rounds=1, iterations=1)
    check_shape(per_design)
