"""Memory-hierarchy fast-path benchmark: JIT+memfast vs JIT vs interpreter.

Runs the fig04 (no-power-failure) suite single-threaded on WL-Cache in
three modes per kernel - seed interpreter, basic-block/trace JIT
(``BENCH_4``'s fast mode), and JIT with the memfast hit-path tier - and
reports the *additional* speedup the fast path buys on top of the JIT,
plus the combined end-to-end number against the interpreter so the bench
trajectory has a cross-PR baseline. Results land in
``results/BENCH_5.json``.

Methodology: one full warm-up run per mode first (so JIT/memfast
compilation, the workload build, and the decode cache are all excluded
from timing) whose RunResults are also asserted *bit-identical* across
the three modes; then ``REPS`` timed runs with the modes *interleaved*
(interp/jit/fast, repeated) taking the best of each. Timing covers
``System.run()`` only - system construction is hoisted out so the
measured quantity is guest execution throughput, not setup.

"Store-heavy" kernels are the suite's top dynamic store densities
(stores per retired instruction >= 0.09: qsort and both rijndael
directions); the paper's write-light argument is about exactly these,
so they get their own gate.

Environment: ``REPRO_BENCH_SCALE`` scales the workloads,
``REPRO_BENCH_APPS`` selects a subset, ``REPRO_MEMFAST_GATE`` (default
off) makes the script exit non-zero when the gmean additional speedup
is below 1.3x or the store-heavy gmean is below 1.4x.

Usage::

    PYTHONPATH=src python benchmarks/bench_memsys_fastpath.py
"""

import json
import math
import os
import sys
import time

from bench_common import bench_apps
from repro.sim.config import SimConfig
from repro.sim.factory import build_system
from repro.sim.sweep import bench_scale
from repro.workloads import build_workload

DESIGN = "WL-Cache"
REPS = 5
GATE = 1.3
GATE_STORE_HEAVY = 1.4
#: dynamic store density >= 0.09 stores/instruction on the fig04 suite
STORE_HEAVY = ("qsort", "rijndael_d", "rijndael_e")

MODES = (
    ("interp", SimConfig()),
    ("jit", SimConfig(jit=True)),
    ("fast", SimConfig(jit=True, memfast=True)),
)


def time_modes(prog) -> tuple[dict[str, float], int]:
    """Best ``System.run()`` wall time per mode, plus retired instructions.

    The warm-up results double as the bench's own bit-identity check:
    all three modes must produce equal RunResults before anything is
    timed.
    """
    warm = {}
    for name, cfg in MODES:
        warm[name] = build_system(prog, DESIGN, None, cfg).run()
    for name in ("jit", "fast"):
        assert warm[name] == warm["interp"], \
            f"{prog.name}: {name} RunResult diverged from the interpreter"
    best = {name: math.inf for name, _ in MODES}
    for _ in range(REPS):
        for name, cfg in MODES:
            system = build_system(prog, DESIGN, None, cfg)
            t0 = time.perf_counter()
            system.run()
            best[name] = min(best[name], time.perf_counter() - t0)
    return best, warm["interp"].instructions


def main() -> int:
    out_dir = os.path.join(os.path.dirname(__file__), os.pardir, "results")
    os.makedirs(out_dir, exist_ok=True)
    out_json = os.path.normpath(os.path.join(out_dir, "BENCH_5.json"))

    kernels = {}
    ratios = []
    heavy_ratios = []
    combined = []
    for app in bench_apps():
        prog = build_workload(app, bench_scale())
        best, instret = time_modes(prog)
        ratio = best["jit"] / best["fast"]
        end_to_end = best["interp"] / best["fast"]
        ratios.append(ratio)
        combined.append(end_to_end)
        if app in STORE_HEAVY:
            heavy_ratios.append(ratio)
        kernels[app] = {
            "instret": instret,
            "interp_s": round(best["interp"], 6),
            "jit_s": round(best["jit"], 6),
            "fast_s": round(best["fast"], 6),
            "fast_ips": round(instret / best["fast"]),
            "speedup_vs_jit": round(ratio, 3),
            "speedup_vs_interp": round(end_to_end, 3),
        }
        print(f"{app:14s} jit {best['jit'] * 1e3:7.1f} ms -> "
              f"fast {best['fast'] * 1e3:7.1f} ms  x{ratio:.2f}"
              f"  (x{end_to_end:.2f} vs interp)")

    def gmean(xs):
        return math.exp(sum(map(math.log, xs)) / len(xs))

    g = gmean(ratios)
    g_heavy = gmean(heavy_ratios) if heavy_ratios else None
    g_combined = gmean(combined)
    report = {
        "bench": "memsys_fastpath",
        "design": DESIGN,
        "suite": "fig04_no_failure",
        "scale": bench_scale(),
        "reps": REPS,
        "store_heavy": list(STORE_HEAVY),
        "gmean_speedup_vs_jit": round(g, 3),
        "gmean_speedup_store_heavy": (round(g_heavy, 3)
                                      if g_heavy is not None else None),
        "gmean_speedup_vs_interp": round(g_combined, 3),
        "kernels": kernels,
    }
    with open(out_json, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")
    heavy_txt = (f"store-heavy x{g_heavy:.2f}, "
                 if g_heavy is not None else "")
    print(f"gmean x{g:.2f} vs JIT ({len(kernels)} kernels), {heavy_txt}"
          f"combined x{g_combined:.2f} vs interpreter; wrote {out_json}")

    if os.environ.get("REPRO_MEMFAST_GATE"):
        if g < GATE:
            print(f"FAIL: gmean {g:.2f} below the {GATE}x gate")
            return 1
        if g_heavy is not None and g_heavy < GATE_STORE_HEAVY:
            print(f"FAIL: store-heavy gmean {g_heavy:.2f} below the "
                  f"{GATE_STORE_HEAVY}x gate")
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
