"""Lockstep sweep benchmark: column replay vs per-instance batch replay.

Runs, per kernel, the *full figure grid* - every cache design crossed
with the no-failure condition and both power traces (the Fig. 4/5/6
axis), plus the WL-Cache sensitivity slice the Fig. 8-10 sweeps walk
(capacitor size x maxline/waterline x DirtyQueue capacity, under both
traces) - in two tiers: the batch record-once/replay-many engine
(``BENCH_6``'s fast side, one ``ReplayCore`` loop per grid point) and
the lockstep tier (``SimConfig(lockstep=True)``: one generated engine
advances the whole same-skeleton column). Results land in
``results/BENCH_9.json``.

Methodology - *warm* sweep, unlike BENCH_6's cold one, and on purpose:

* Both tiers share the same recording/expansion caches (lockstep sits
  on top of batch), so cold one-time costs are identical on both sides
  and only add symmetric noise; BENCH_6 went cold because its two tiers
  pay *different* one-time costs.
* The lockstep-only one-time cost - rendering + compiling the column
  engine (~70 ms per signature) - amortizes across reps of a Monte-
  Carlo campaign or a multi-kernel sweep exactly like the recording
  cache does, and is reported separately as the cold numbers below.

Each tier gets one warm-up pass whose RunResults are asserted
**bit-identical** point-by-point (the lockstep correctness contract,
checked before anything is timed), then ``REPS`` timed warm passes
interleaved per tier, taking the best (the 1-core CI container shows
double-digit single-shot noise). A final cold pass per tier - stream
caches and generated engines dropped - is timed once and reported so
the one-time costs stay visible.

The remaining gap to the paper-target 2x is dominated by work both
tiers run through the *same* code: slow-path stores (WL-Cache's
store_masked + DirtyQueue machinery), writebacks, and the outage
lifecycle. The engine eliminates the per-instance walk (event decode,
position bookkeeping, probe dispatch, chunk epilogues); what survives
is shared simulator substrate, so the gate below is a regression
floor, not the target. EXPERIMENTS.md records the measured trajectory.

Environment: ``REPRO_BENCH_SCALE`` scales the workloads,
``REPRO_BENCH_APPS`` selects kernels (default: the representative
sensitivity suite), ``REPRO_LOCKSTEP_GATE`` (default off) makes the
script exit non-zero when the gmean sweep speedup is below the gate.

Usage::

    PYTHONPATH=src python benchmarks/bench_lockstep_sweep.py
"""

import json
import math
import os
import sys
import time

from bench_common import SENSITIVITY_APPS, bench_apps
from repro.batch.engine import clear_streams, iter_outcomes
from repro.jit.cache import clear_code_cache
from repro.lockstep.codegen import clear_engines
from repro.lockstep.scheduler import clear_lockstep_stats, lockstep_stats
from repro.sim.config import DESIGNS, SimConfig
from repro.sim.parallel import SweepTask, run_task
from repro.sim.sweep import bench_scale
from repro.workloads import build_workload

REPS = 5
#: regression floors for the gate; the 2x target and the measured
#: trajectory toward it are documented in EXPERIMENTS.md. The floor is
#: scale-aware in the opposite direction from BENCH_6's: recording
#: amortization flatters the batch tier at smoke scale, while the
#: lockstep win is *per replayed event*, so fixed per-sweep costs
#: (task dispatch, stream lookup, chunk scheduling) dilute it there
#: (measured: x1.44 gmean at scale 0.1 vs x1.84 at 1.0).
GATE_FULL = 1.5
GATE_SMOKE = 1.2
SMOKE_BELOW = 0.5
TARGET = 2.0
CONDITIONS = (None, "trace1", "trace2")
#: WL-Cache sensitivity axes (the Fig. 8/9/10 sweep shapes)
SENS_TRACES = ("trace1", "trace2")
SENS_CAPS_F = (5e-7, 1e-6, 2e-6, 1e-5)
SENS_MAXLINES = (4, 6, 8)
SENS_DQ = (8, 12)

TIERS = (
    ("batch", SimConfig(jit=True, memfast=True, batch=True)),
    ("lockstep", SimConfig(jit=True, memfast=True, batch=True,
                           lockstep=True)),
)


def grid_tasks(app: str, scale: float, cfg: SimConfig) -> list[SweepTask]:
    """The kernel's full figure grid as one task list (one cluster)."""
    tasks = [SweepTask(app, design, trace, scale, False, cfg)
             for trace in CONDITIONS for design in DESIGNS]
    for trace in SENS_TRACES:
        for cap in SENS_CAPS_F:
            for ml in SENS_MAXLINES:
                for dq in SENS_DQ:
                    tasks.append(SweepTask(
                        app, "WL-Cache", trace, scale, False, cfg,
                        {"capacitance_f": cap, "maxline": ml,
                         "waterline": ml - 1, "dq_capacity": dq}))
    return tasks


def _sweep(tasks: list[SweepTask]) -> list:
    out = []
    for task, outcome in iter_outcomes(list(tasks), run_task):
        if outcome[0] != "ok":
            raise outcome[1]
        out.append(outcome[1])
    return out


def _clear_tier_caches(app: str, scale: float) -> None:
    clear_code_cache()
    clear_streams()
    clear_engines()
    build_workload(app, scale).meta.pop("_jit_compiled", None)


def time_tiers(app: str, scale: float) -> dict:
    """Best warm-sweep wall time per tier, after the bit-identity check,
    plus one cold pass per tier."""
    grids = {name: grid_tasks(app, scale, cfg) for name, cfg in TIERS}
    warm = {name: _sweep(tasks) for name, tasks in grids.items()}
    for a, b in zip(warm["batch"], warm["lockstep"]):
        assert a == b, (f"{app}: lockstep diverged from batch on "
                        f"{a.design}/{a.trace}")
    best = {name: math.inf for name, _ in TIERS}
    for _ in range(REPS):
        for name, _cfg in TIERS:
            t0 = time.perf_counter()
            _sweep(grids[name])
            best[name] = min(best[name], time.perf_counter() - t0)
    cold = {}
    for name, _cfg in TIERS:
        _clear_tier_caches(app, scale)
        t0 = time.perf_counter()
        _sweep(grids[name])
        cold[name] = time.perf_counter() - t0
    return {"warm": best, "cold": cold,
            "points": len(grids["batch"])}


def main() -> int:
    out_dir = os.path.join(os.path.dirname(__file__), os.pardir, "results")
    os.makedirs(out_dir, exist_ok=True)
    out_json = os.path.normpath(os.path.join(out_dir, "BENCH_9.json"))
    scale = bench_scale()

    clear_lockstep_stats()
    kernels = {}
    ratios = []
    for app in bench_apps(default=SENSITIVITY_APPS):
        t = time_tiers(app, scale)
        ratio = t["warm"]["batch"] / t["warm"]["lockstep"]
        ratios.append(ratio)
        kernels[app] = {
            "batch_s": round(t["warm"]["batch"], 6),
            "lockstep_s": round(t["warm"]["lockstep"], 6),
            "speedup": round(ratio, 3),
            "cold_batch_s": round(t["cold"]["batch"], 6),
            "cold_lockstep_s": round(t["cold"]["lockstep"], 6),
            "grid_points": t["points"],
        }
        cold_ratio = t["cold"]["batch"] / t["cold"]["lockstep"]
        print(f"{app:14s} batch {t['warm']['batch'] * 1e3:8.1f} ms -> "
              f"lockstep {t['warm']['lockstep'] * 1e3:8.1f} ms  "
              f"x{ratio:.2f}  (cold x{cold_ratio:.2f})")
    stats = lockstep_stats()
    assert stats["columns"] > 0 and stats["instances"] > 0, \
        "lockstep never engaged - the benchmark measured nothing"

    g = math.exp(sum(map(math.log, ratios)) / len(ratios))
    gate = GATE_FULL if scale >= SMOKE_BELOW else GATE_SMOKE
    report = {
        "bench": "lockstep_sweep",
        "suite": ("designs x {no-failure, trace1, trace2} + WL-Cache "
                  "sensitivity (capacitor x maxline x dq, both traces) "
                  "per kernel"),
        "designs": list(DESIGNS),
        "conditions": [c or "none" for c in CONDITIONS],
        "sensitivity": {
            "traces": list(SENS_TRACES),
            "capacitors_f": list(SENS_CAPS_F),
            "maxlines": list(SENS_MAXLINES),
            "dq_capacities": list(SENS_DQ),
        },
        "scale": scale,
        "reps": REPS,
        "methodology": "warm caches, min of reps; cold pass reported "
                       "per kernel (see module docstring)",
        "gate": gate,
        "gate_env": "REPRO_LOCKSTEP_GATE",
        "target": TARGET,
        "gmean_sweep_speedup": round(g, 3),
        "lockstep_stats": stats,
        "kernels": kernels,
    }
    with open(out_json, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"gmean sweep speedup x{g:.2f} over batch replay "
          f"({len(kernels)} kernels); wrote {out_json}")

    if os.environ.get("REPRO_LOCKSTEP_GATE", "").strip() not in ("", "0"):
        if g < gate:
            print(f"FAIL: gmean sweep speedup x{g:.2f} below the "
                  f"x{gate:.2f} gate (scale {scale})")
            return 1
        print(f"gate passed: x{g:.2f} >= x{gate:.2f} at scale {scale} "
              f"(target x{TARGET:.1f}, see EXPERIMENTS.md)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
