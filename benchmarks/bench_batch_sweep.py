"""Batched sweep benchmark: record-once/replay-many vs jit+memfast.

Runs, per kernel, the *full sweep grid* the paper's figures are built
from - every cache design crossed with the no-failure condition and two
power-failure traces - in two tiers: the serial jit+memfast stack
(``BENCH_4``/``BENCH_5``'s fast mode, one full execution per grid point)
and the batch tier (``SimConfig(batch=True)``: record the kernel's
architectural stream once per cost family, replay it per grid point).
Results land in ``results/BENCH_6.json``.

Methodology: one warm-up pass per tier first whose RunResults are
asserted *bit-identical* grid-point-by-grid-point (the batch tier's
correctness contract, checked here before anything is timed); then
``REPS`` timed reps with the tiers interleaved, taking the best per
tier. Each rep measures the **cold sweep**: both tiers' process-global
caches (compiled jit modules, recorded streams/skeletons) are dropped
before every timed pass, so the measured quantity is what a user pays
for ``run_grid`` in a fresh process - compilation and recording
included, exactly the costs each tier trades against the other. Timing
runs serially (``jobs=1``); the pool composes with batching but would
fold scheduling noise into a throughput comparison.

The headline is wall-clock for the whole grid, not per-run latency:
batching wins precisely because grid points share the recording, so the
fair unit is the sweep.

Environment: ``REPRO_BENCH_SCALE`` scales the workloads,
``REPRO_BENCH_APPS`` selects kernels (default: the representative
8-kernel sensitivity suite, keeping CI under a few minutes),
``REPRO_BATCH_GATE`` (default off) makes the script exit non-zero when
the gmean sweep speedup is below 2x.

Usage::

    PYTHONPATH=src python benchmarks/bench_batch_sweep.py
"""

import json
import math
import os
import sys
import time

from bench_common import SENSITIVITY_APPS, bench_apps
from repro.batch.engine import clear_streams
from repro.jit.cache import clear_code_cache
from repro.sim.config import DESIGNS, SimConfig
from repro.sim.sweep import bench_scale, run_grid
from repro.workloads import build_workload

REPS = 3
GATE = 2.0
CONDITIONS = (None, "trace1", "trace2")

TIERS = (
    ("jit", SimConfig(jit=True, memfast=True)),
    ("batch", SimConfig(jit=True, memfast=True, batch=True)),
)


def _clear_tier_caches(app: str, scale: float) -> None:
    """Drop every process-global artifact either tier could reuse, so a
    timed pass pays its tier's real one-time costs (jit: module and
    suffix compiles; batch: recording + stream expansion)."""
    clear_code_cache()
    clear_streams()
    # the per-program compile memo lives on the (cached) Program object
    build_workload(app, scale).meta.pop("_jit_compiled", None)


def _sweep(app: str, scale: float, cfg: SimConfig) -> dict:
    out = {}
    for trace in CONDITIONS:
        out.update(run_grid([app], DESIGNS, trace, cfg, scale=scale,
                            jobs=1))
    return out


def time_tiers(app: str, scale: float) -> dict[str, float]:
    """Best cold-sweep wall time per tier, after the bit-identity check."""
    warm = {}
    for name, cfg in TIERS:
        _clear_tier_caches(app, scale)
        warm[name] = _sweep(app, scale, cfg)
    bad = [k for k in warm["jit"] if warm["jit"][k] != warm["batch"][k]]
    assert not bad, f"{app}: batch diverged from jit+memfast on {bad}"
    best = {name: math.inf for name, _ in TIERS}
    for _ in range(REPS):
        for name, cfg in TIERS:
            _clear_tier_caches(app, scale)
            t0 = time.perf_counter()
            _sweep(app, scale, cfg)
            best[name] = min(best[name], time.perf_counter() - t0)
    return best


def main() -> int:
    out_dir = os.path.join(os.path.dirname(__file__), os.pardir, "results")
    os.makedirs(out_dir, exist_ok=True)
    out_json = os.path.normpath(os.path.join(out_dir, "BENCH_6.json"))
    scale = bench_scale()

    kernels = {}
    ratios = []
    for app in bench_apps(default=SENSITIVITY_APPS):
        best = time_tiers(app, scale)
        ratio = best["jit"] / best["batch"]
        ratios.append(ratio)
        kernels[app] = {
            "jit_s": round(best["jit"], 6),
            "batch_s": round(best["batch"], 6),
            "speedup": round(ratio, 3),
        }
        print(f"{app:14s} jit+memfast {best['jit'] * 1e3:8.1f} ms -> "
              f"batch {best['batch'] * 1e3:8.1f} ms  x{ratio:.2f}")

    g = math.exp(sum(map(math.log, ratios)) / len(ratios))
    report = {
        "bench": "batch_sweep",
        "suite": "designs x {no-failure, trace1, trace2} per kernel",
        "designs": list(DESIGNS),
        "conditions": [c or "none" for c in CONDITIONS],
        "scale": scale,
        "reps": REPS,
        "grid_points_per_kernel": len(DESIGNS) * len(CONDITIONS),
        "gmean_sweep_speedup": round(g, 3),
        "kernels": kernels,
    }
    with open(out_json, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"gmean sweep speedup x{g:.2f} over jit+memfast "
          f"({len(kernels)} kernels); wrote {out_json}")

    if os.environ.get("REPRO_BATCH_GATE", "").strip() not in ("", "0"):
        if g < GATE:
            print(f"FAIL: gmean sweep speedup x{g:.2f} below the "
                  f"x{GATE:.1f} gate")
            return 1
        print(f"gate passed: x{g:.2f} >= x{GATE:.1f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
