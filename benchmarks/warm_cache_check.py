"""CI warm-cache check: a second process against a primed store does
zero codegen and simulates nothing it has a memo for.

Runs the same work twice, in two child interpreters sharing one store
root:

* a jit+memfast sweep with result memoization on (exercises the
  ``src`` and ``result`` artifact classes), and
* a batch+lockstep sweep (exercises ``stream`` recordings, ``skel``
  skeletons, and lockstep engine sources).

The second child must report **zero** jit compiles, zero memfast
handler renders, zero lockstep engine renders, zero recordings, zero
skeleton builds, an all-hit result memo, a clean A009 audit over its
store-served sources, and results identical to the first child's. Any
violation exits non-zero with the offending counters - this is the CI
tripwire for "the store silently stopped working" (which the perf gate
alone could miss at smoke scale).

Usage::

    PYTHONPATH=src python benchmarks/warm_cache_check.py
"""

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile

APPS = ("sha",)
MEMO_DESIGNS = ("NVSRAM(ideal)", "WL-Cache")
REPLAY_DESIGNS = ("WL-Cache", "NVSRAM(ideal)", "VCache-WT")
TRACE = "trace1"
SCALE = 0.2


def child(out_path: str) -> int:
    from repro.analysis.stats_io import result_to_dict
    from repro.batch.engine import batch_stats
    from repro.batch.stream import stream_meta_stats
    from repro.jit.cache import code_cache_stats
    from repro.lint.codegen_audit import audit_store_loads
    from repro.lockstep.codegen import engine_cache_stats
    from repro.memfast.handlers import codegen_cache_stats
    from repro.sim.config import SimConfig
    from repro.sim.sweep import run_grid
    from repro.store import store_stats

    def dump(grid):
        return {f"{w}|{d}": {"stats": result_to_dict(r,
                                                     include_periods=True),
                             "final_regs": list(r.final_regs)}
                for (w, d), r in grid.items()}

    memo_cfg = SimConfig(jit=True, memfast=True, result_cache=True)
    memo = run_grid(APPS, MEMO_DESIGNS, TRACE, scale=SCALE, jobs=1,
                    config=memo_cfg)
    replay_cfg = SimConfig(jit=True, memfast=True, batch=True,
                           lockstep=True)
    replay = run_grid(APPS, REPLAY_DESIGNS, TRACE, scale=SCALE, jobs=1,
                      config=replay_cfg)
    report = {
        "memo_grid": dump(memo),
        "replay_grid": dump(replay),
        "jit": code_cache_stats(),
        "memfast": codegen_cache_stats(),
        "lockstep": engine_cache_stats(),
        "batch": batch_stats(),
        "stream_meta": stream_meta_stats(),
        "store_events": store_stats(),
        "a009_findings": [f.render() for f in audit_store_loads()],
    }
    with open(out_path, "w") as f:
        json.dump(report, f)
    return 0


def run_child(store_dir: str, tag: str) -> dict:
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tf:
        out_path = tf.name
    env = dict(os.environ)
    env["REPRO_CACHE_DIR"] = store_dir
    env.pop("REPRO_STREAM_CACHE", None)
    src = os.path.normpath(os.path.join(os.path.dirname(__file__),
                                        os.pardir, "src"))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    try:
        proc = subprocess.run(
            [sys.executable, os.path.abspath(__file__), "--child",
             out_path], env=env, capture_output=True, text=True)
        if proc.returncode != 0:
            raise RuntimeError(f"{tag} run failed:\n{proc.stderr}")
        with open(out_path) as f:
            return json.load(f)
    finally:
        os.unlink(out_path)


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--child", metavar="OUT", default=None)
    args = parser.parse_args()
    if args.child:
        return child(args.child)

    store_dir = tempfile.mkdtemp(prefix="repro-warmcheck-")
    try:
        first = run_child(store_dir, "cold")
        second = run_child(store_dir, "warm")
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)

    failures = []

    def expect_zero(label, n):
        if n != 0:
            failures.append(f"{label} = {n} (want 0)")

    expect_zero("warm jit compiles", second["jit"]["compiles"])
    expect_zero("warm jit suffix compiles",
                second["jit"]["suffix_compiles"])
    expect_zero("warm jit trace compiles", second["jit"]["trace_compiles"])
    expect_zero("warm memfast renders", second["memfast"]["renders"])
    expect_zero("warm lockstep renders", second["lockstep"]["renders"])
    expect_zero("warm recordings", second["batch"]["recordings"])
    expect_zero("warm skeleton builds",
                second["stream_meta"]["skeleton_builds"])

    hits = second["store_events"].get("result_hits", 0)
    want = len(second["memo_grid"])
    if hits != want:
        failures.append(f"warm result_hits = {hits} (want {want})")
    if second["batch"].get("disk_hits", 0) < 1:
        failures.append("warm run never hit the recording cache")
    if second["stream_meta"]["skeleton_loads"] < 1:
        failures.append("warm run never loaded a skeleton")
    if second["a009_findings"]:
        failures.append("A009 findings on warm loads: "
                        + "; ".join(second["a009_findings"]))
    for grid in ("memo_grid", "replay_grid"):
        if first[grid] != second[grid]:
            failures.append(f"{grid}: warm results differ from cold")

    cold_work = (first["jit"]["compiles"], first["memfast"]["renders"],
                 first["lockstep"]["renders"], first["batch"]["recordings"])
    if not all(n > 0 for n in cold_work):
        failures.append(f"cold run did no work to cache "
                        f"(compiles/renders/engine renders/recordings = "
                        f"{cold_work}) - the check measured nothing")

    if failures:
        print("warm-cache check FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(f"warm-cache check passed: second process loaded everything "
          f"({second['jit']['loads']} jit loads, "
          f"{second['memfast']['loads']} memfast loads, "
          f"{second['lockstep']['loads']} engine loads, "
          f"{second['stream_meta']['skeleton_loads']} skeleton loads, "
          f"{hits} result hits; results bit-identical)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
