"""Section 6.6 statistics: reconfiguration counts, observed maxline range,
prediction accuracy, dirty lines / write-backs per power-on period, and
pipeline-stall share, on Traces 1 and 2.

Paper reference points: ~11-12 reconfigurations per run, maxline spanning
2..6, >98 % energy-source prediction accuracy, ~6 dirty lines and 2-3
write-backs per on-period, stalls <1 % of execution time.
"""

from bench_common import SENSITIVITY_APPS, print_figure
from repro.sim.sweep import run_grid


def run_sec66():
    stats = {}
    for trace in ("trace1", "trace2"):
        res = run_grid(SENSITIVITY_APPS, ("WL-Cache",), trace)
        rs = [res[(a, "WL-Cache")] for a in SENSITIVITY_APPS]
        n = len(rs)
        stats[trace] = {
            "reconfigs": sum(r.reconfig_count for r in rs) / n,
            "maxline_min": min(r.maxline_min for r in rs),
            "maxline_max": max(r.maxline_max for r in rs),
            "pred_acc": sum(r.prediction_accuracy for r in rs) / n,
            "dirty/period": sum(r.avg_dirty_per_period for r in rs) / n,
            "wb/period": sum(r.avg_writebacks_per_period for r in rs) / n,
            "stall_frac": sum(r.stall_fraction for r in rs) / n,
            "outages": sum(r.outages for r in rs) / n,
        }
    headers = ["metric", "trace1", "trace2"]
    keys = list(stats["trace1"])
    rows = [[k, round(stats["trace1"][k], 3), round(stats["trace2"][k], 3)]
            for k in keys]
    print_figure("Section 6.6: adaptive-management statistics",
                 headers, rows, "sec66_adaptation_stats")
    return stats


def check_shape(stats):
    for trace, s in stats.items():
        assert s["reconfigs"] > 0
        assert 1 <= s["maxline_min"] <= s["maxline_max"] <= 6
        # our synthetic RF fades are far more volatile interval-to-interval
        # than the paper's recorded traces, so the prediction-accuracy
        # floor is looser than their >98 % (see EXPERIMENTS.md)
        assert s["pred_acc"] >= 0.2
        assert 0 < s["dirty/period"] <= 8
        assert s["stall_frac"] < 0.05  # stalls stay a tiny share
    # adaptive WL partially compensates trace2's extra instability, so
    # only a loose ordering is asserted here (fig13a checks the strict
    # trace property on the non-adaptive baseline)
    assert stats["trace2"]["outages"] >= stats["trace1"]["outages"] * 0.8


def test_sec66_adaptation_stats(benchmark):
    stats = benchmark.pedantic(run_sec66, rounds=1, iterations=1)
    check_shape(stats)
