"""Figure 9: per-app sensitivity to maxline (2/4/6/8) and cache replacement
policy (FIFO vs LRU), static thresholds, Power Trace 1.

Paper shape: performance peaks around maxline 4-6 (too small: no locality
capture; too large: oversized checkpoint reserve), and FIFO cache
replacement beats LRU under frequent outages (cold caches + LRU bookkeeping
power, §6.5).
"""

from bench_common import bench_apps, print_figure
from repro.analysis.speedup import gmean
from repro.sim.sweep import run_grid

MAXLINES = (2, 4, 6, 8)


def run_fig9():
    apps = bench_apps()
    base = run_grid(apps, ("NVSRAM(ideal)",), "trace1")
    base_t = {a: base[(a, "NVSRAM(ideal)")].total_time_ns for a in apps}
    series: dict[tuple[str, int], dict[str, float]] = {}
    for repl in ("fifo", "lru"):
        for ml in MAXLINES:
            res = run_grid(apps, ("WL-Cache",), "trace1",
                           cache_replacement=repl, maxline=ml,
                           adaptive=False)
            series[(repl, ml)] = {
                a: base_t[a] / res[(a, "WL-Cache")].total_time_ns
                for a in apps}
    headers = (["app"] + [f"FIFO/ml{m}" for m in MAXLINES]
               + [f"LRU/ml{m}" for m in MAXLINES])
    rows = []
    for a in apps:
        rows.append([a] + [series[("fifo", m)][a] for m in MAXLINES]
                    + [series[("lru", m)][a] for m in MAXLINES])
    rows.append(["gmean"]
                + [gmean(list(series[("fifo", m)].values()))
                   for m in MAXLINES]
                + [gmean(list(series[("lru", m)].values()))
                   for m in MAXLINES])
    print_figure("Figure 9: maxline sweep x cache replacement, Trace 1",
                 headers, rows, "fig09_maxline_sweep")
    return series


def check_shape(series):
    fifo = {m: gmean(list(series[("fifo", m)].values())) for m in MAXLINES}
    lru = {m: gmean(list(series[("lru", m)].values())) for m in MAXLINES}
    # FIFO cache replacement beats LRU at every maxline under outages
    for m in MAXLINES:
        assert fifo[m] >= lru[m] * 0.995
    # mid maxline (4 or 6) is at least as good as the extremes
    best_mid = max(fifo[4], fifo[6])
    assert best_mid >= fifo[2] - 0.01
    assert best_mid >= fifo[8] - 0.01


def test_fig09_maxline_sweep(benchmark):
    series = benchmark.pedantic(run_fig9, rounds=1, iterations=1)
    check_shape(series)
