"""Figure 5: normalized speedup vs NVSRAM(ideal) under Power Trace 1.

Paper shape: WL-Cache is the best design on every app (1.09x average over
NVSRAM with the default configuration; 1.35x with adaptation, Fig. 11);
NVCache-WB ~0.3x, VCache-WT ~0.6x, ReplayCache ~0.8x.
"""

from bench_common import gmean_speedup, speedup_figure
from repro.sim.config import DESIGNS


def run_fig5():
    per_design, _ = speedup_figure(
        "trace1", "Figure 5: speedup vs NVSRAM(ideal), Power Trace 1",
        "fig05_trace1")
    return per_design


def check_shape(per_design):
    g = {d: gmean_speedup(per_design, d) for d in DESIGNS}
    assert g["WL-Cache"] > 1.0  # WL beats the baseline under outages
    assert g["WL-Cache"] > g["ReplayCache"] > g["NVCache-WB"]
    assert g["VCache-WT"] < 1.0
    assert g["NVCache-WB"] < 0.6


def test_fig05_trace1(benchmark):
    per_design = benchmark.pedantic(run_fig5, rounds=1, iterations=1)
    check_shape(per_design)
