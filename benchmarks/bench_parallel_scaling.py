"""Parallel sweep scaling: wall-clock of the same grid at 1/2/4 workers.

Demonstrates the two properties the parallel engine promises: the
multi-worker sweep returns *bit-identical* results (asserted on every
machine), and it scales near-linearly with cores - on a >=4-core host the
4-worker sweep must beat serial by at least 2x. Single-core CI shards
still run the bench (correctness + CSV) but skip the speedup assertion,
which process-spawn overhead would make meaningless there.

Run directly (``python benchmarks/bench_parallel_scaling.py``) or through
pytest like the figure benches.
"""

import os
import time

from bench_common import print_figure
from repro.sim.sweep import run_grid

APPS = ("sha", "qsort", "dijkstra", "fft", "adpcmencode", "jpegdecode")
DESIGNS = ("NVSRAM(ideal)", "VCache-WT", "WL-Cache")
JOB_COUNTS = (1, 2, 4)


def _timed_grid(jobs):
    t0 = time.perf_counter()
    results = run_grid(APPS, DESIGNS, "trace1", jobs=jobs)
    return results, time.perf_counter() - t0


def run_scaling():
    times = {}
    reference = None
    for jobs in JOB_COUNTS:
        results, dt = _timed_grid(jobs)
        times[jobs] = dt
        if reference is None:
            reference = results
        else:
            assert results == reference, (
                f"jobs={jobs} sweep diverged from the serial results")
    rows = [[f"jobs={j}", f"{times[j]:.2f}", times[1] / times[j]]
            for j in JOB_COUNTS]
    print_figure(
        f"Parallel sweep scaling ({len(APPS)} apps x {len(DESIGNS)} designs, "
        f"{os.cpu_count()} cores)",
        ["workers", "seconds", "speedup"], rows, "bench_parallel_scaling")
    return times


def check_shape(times):
    cores = os.cpu_count() or 1
    if cores >= 4:
        speedup4 = times[1] / times[4]
        assert speedup4 >= 2.0, (
            f"4-worker sweep only {speedup4:.2f}x over serial on a "
            f"{cores}-core host (need >=2x)")
    else:
        print(f"[{cores} core(s): speedup assertion skipped]")


def test_parallel_scaling(benchmark):
    times = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    check_shape(times)


if __name__ == "__main__":
    check_shape(run_scaling())
