"""Shared machinery for the per-figure benchmark harness.

Each ``bench_*.py`` regenerates one table or figure of the paper: it runs
the sweep, prints the same rows/series the paper plots, writes a CSV under
``results/``, and asserts the qualitative *shape* the paper reports (who
wins, roughly by how much, where crossovers fall). Absolute numbers differ
- the substrate is a behavioral simulator - but orderings must hold.

Environment knobs:

* ``REPRO_BENCH_SCALE`` - workload size multiplier (default 1.0).
* ``REPRO_BENCH_APPS`` - comma-separated subset of workloads (default: the
  full 23-app suite for the per-app figures; the sensitivity figures use
  ``SENSITIVITY_APPS`` to stay laptop-friendly, as EXPERIMENTS.md records).
* ``REPRO_JOBS`` - worker processes for the sweep grids (default: serial).
  Parallel results are bit-identical to serial ones, so any figure can be
  regenerated with ``REPRO_JOBS=$(nproc)``.
"""

from __future__ import annotations

import os

from repro.analysis.speedup import gmean
from repro.analysis.tables import print_figure
from repro.sim.config import DESIGNS, SimConfig
from repro.sim.sweep import run_grid, speedups_vs_baseline
from repro.workloads import ALL_WORKLOADS, MEDIABENCH, MIBENCH

#: representative subset used by the averaged sensitivity figures
SENSITIVITY_APPS = (
    "adpcmencode", "jpegdecode", "sha", "susancorners",
    "qsort", "dijkstra", "fft", "rijndael_e",
)


def bench_apps(default=ALL_WORKLOADS) -> tuple[str, ...]:
    env = os.environ.get("REPRO_BENCH_APPS")
    if env:
        return tuple(a.strip() for a in env.split(",") if a.strip())
    return tuple(default)


def speedup_figure(trace: str | None, title: str, csv_name: str,
                   apps=None, config: SimConfig | None = None,
                   designs=DESIGNS, jobs=None, **overrides):
    """Run a per-app speedup figure (Figs. 4/5/6 pattern).

    Returns ``{design: {app: speedup}}`` plus prints/persists the table.
    The grid fans out over ``jobs`` worker processes (default: the
    ``REPRO_JOBS`` env var, else serial) with bit-identical results.
    """
    apps = bench_apps() if apps is None else apps
    results = run_grid(apps, designs, trace, config, jobs=jobs, **overrides)
    sp = speedups_vs_baseline(results)
    per_design = {d: {a: sp[(a, d)] for a in apps} for d in designs}

    headers = ["app"] + [d for d in designs]
    rows = []
    for a in apps:
        rows.append([a] + [per_design[d][a] for d in designs])
    for label, suite in (("gmean(Media)", MEDIABENCH), ("gmean(Mi)", MIBENCH),
                         ("gmean(Total)", apps)):
        subset = [a for a in apps if a in suite]
        if subset:
            rows.append([label] + [gmean([per_design[d][a] for a in subset])
                                   for d in designs])
    print_figure(title, headers, rows, csv_name)
    return per_design, results


def gmean_speedup(per_design: dict[str, dict[str, float]],
                  design: str) -> float:
    return gmean(list(per_design[design].values()))
