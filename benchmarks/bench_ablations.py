"""Ablations of the paper's design choices (DESIGN.md §5).

Four studies beyond the paper's headline figures:

1. **§3.3 strawman** - WL-Cache vs a write-through cache with a CAM write
   buffer. The paper argues the buffer's critical-path probe and drain
   reserve make it inferior; we measure both designs under Trace 1.
2. **§2.3.3 NVSRAM spectrum** - full vs ideal vs practical checkpointing.
   The paper ranks ideal >= full (same reserve, cheaper flushes) and
   practical below both (NV-way hits at run time). At our scale, full's
   whole-array restore can slightly edge ideal - it reboots with every
   clean line warm - so the assertion allows a small band either way;
   WL-Cache must beat the whole spectrum.
3. **§5.4 lazy vs eager DirtyQueue cleanup** - eager search frees slots
   sooner but pays per-eviction; the paper's lazy choice should be at
   least as fast.
4. **Waterline gap** - gap 1 (the paper's default) vs 0 (no ILP slack:
   cleaning happens synchronously at maxline) and wider gaps.
"""

from bench_common import SENSITIVITY_APPS, print_figure
from repro.analysis.speedup import gmean
from repro.sim.sweep import run_grid

TRACE = "trace1"


def _gmean_vs(base_times, res, design, apps):
    return gmean([base_times[a] / res[(a, design)].total_time_ns
                  for a in apps])


def _baseline(apps):
    res = run_grid(apps, ("NVSRAM(ideal)",), TRACE)
    return {a: res[(a, "NVSRAM(ideal)")].total_time_ns for a in apps}


def run_strawman():
    apps = SENSITIVITY_APPS
    base = _baseline(apps)
    rows = []
    out = {}
    for design in ("VCache-WT", "WT+Buffer", "WL-Cache"):
        res = run_grid(apps, (design,), TRACE)
        out[design] = _gmean_vs(base, res, design, apps)
        rows.append([design, out[design]])
    print_figure("Ablation 1 (§3.3): WT + write buffer vs WL-Cache, Trace 1",
                 ["design", "speedup vs NVSRAM"], rows, "abl1_wt_buffer")
    return out


def run_nvsram_spectrum():
    apps = SENSITIVITY_APPS
    base = _baseline(apps)
    rows = []
    out = {}
    for design in ("NVSRAM(full)", "NVSRAM(ideal)", "NVSRAM(practical)",
                   "WL-Cache"):
        res = run_grid(apps, (design,), TRACE)
        out[design] = _gmean_vs(base, res, design, apps)
        rows.append([design, out[design]])
    print_figure("Ablation 2 (§2.3.3): NVSRAM checkpointing spectrum, Trace 1",
                 ["design", "speedup vs NVSRAM(ideal)"], rows,
                 "abl2_nvsram_spectrum")
    return out


def run_cleanup_policy():
    apps = SENSITIVITY_APPS
    base = _baseline(apps)
    out = {}
    for design in ("WL-Cache", "WL-Cache(eager)"):
        res = run_grid(apps, (design,), TRACE)
        out[design] = _gmean_vs(base, res, design, apps)
    rows = [[k, v] for k, v in out.items()]
    print_figure("Ablation 3 (§5.4): lazy vs eager DirtyQueue cleanup",
                 ["design", "speedup vs NVSRAM"], rows, "abl3_cleanup")
    return out


def run_waterline_gap():
    apps = SENSITIVITY_APPS
    base = _baseline(apps)
    out = {}
    for gap in (0, 1, 2, 4):
        res = run_grid(apps, ("WL-Cache",), TRACE, maxline=6,
                       waterline=6 - gap, adaptive=False)
        out[gap] = _gmean_vs(base, res, "WL-Cache", apps)
    rows = [[f"gap {g} (waterline {6 - g})", v] for g, v in out.items()]
    print_figure("Ablation 4: waterline gap (maxline 6), Trace 1",
                 ["setting", "speedup vs NVSRAM"], rows, "abl4_waterline_gap")
    return out


def test_ablation_wt_buffer(benchmark):
    out = benchmark.pedantic(run_strawman, rounds=1, iterations=1)
    # the buffer helps plain WT, but WL-Cache stays ahead (§3.3)
    assert out["WT+Buffer"] > out["VCache-WT"]
    assert out["WL-Cache"] > out["WT+Buffer"]


def test_ablation_nvsram_spectrum(benchmark):
    out = benchmark.pedantic(run_nvsram_spectrum, rounds=1, iterations=1)
    assert abs(out["NVSRAM(full)"] - out["NVSRAM(ideal)"]) < 0.08
    assert out["WL-Cache"] > out["NVSRAM(ideal)"]
    assert out["WL-Cache"] > out["NVSRAM(full)"]
    # practical pays NV-way hit costs at run time (the paper's critique)
    assert out["NVSRAM(practical)"] < out["NVSRAM(ideal)"]
    assert out["NVSRAM(practical)"] < out["WL-Cache"]


def test_ablation_cleanup_policy(benchmark):
    out = benchmark.pedantic(run_cleanup_policy, rounds=1, iterations=1)
    # lazy cleanup (the paper's choice) is at least as good as eager
    assert out["WL-Cache"] >= out["WL-Cache(eager)"] - 0.02


def test_ablation_waterline_gap(benchmark):
    out = benchmark.pedantic(run_waterline_gap, rounds=1, iterations=1)
    # gap 0 forfeits the async-write-back overlap; the default gap of 1
    # recovers it, and wider gaps give no further benefit
    assert out[1] >= out[0]
    assert abs(out[2] - out[1]) < 0.08
