"""Figure 4: normalized speedup vs NVSRAM(ideal), no power failures.

Paper shape: NVCache-WB slowest, then VCache-WT, then ReplayCache (~60 %
over WT), NVSRAM fastest with WL-Cache essentially matching it.
"""

from bench_common import gmean_speedup, speedup_figure
from repro.sim.config import DESIGNS


def run_fig4():
    per_design, _ = speedup_figure(
        None, "Figure 4: speedup vs NVSRAM(ideal), no power failure",
        "fig04_no_failure")
    return per_design


def check_shape(per_design):
    g = {d: gmean_speedup(per_design, d) for d in DESIGNS}
    assert g["NVCache-WB"] < g["VCache-WT"] < g["ReplayCache"] <= 1.0
    assert g["NVCache-WB"] < 0.7
    assert 0.55 <= g["VCache-WT"] <= 0.9
    assert 0.93 <= g["WL-Cache"] <= 1.03  # WL ~ NVSRAM without failures
    # every app individually: WL close to the baseline (its worst case is
    # scattered-store phases like fft's bit-reversal, where waterline
    # cleaning cannot keep up - see EXPERIMENTS.md)
    assert all(v > 0.85 for v in per_design["WL-Cache"].values())


def test_fig04_no_failure(benchmark):
    per_design = benchmark.pedantic(run_fig4, rounds=1, iterations=1)
    check_shape(per_design)
