"""Figure 13a: power-trace sensitivity across tr.1/tr.2/tr.3/solar/thermal,
including the dynamic-adaptation variant WL-Cache(dyn).

Paper shape: WL-Cache wins clearly on every RF trace (most on the highly
unstable tr.3); on the stable solar/thermal sources NVSRAM nearly catches
up and WL-Cache(dyn) edges past plain WL-Cache - while on RF traces the
dynamic variant's premature Vbackup raises make it *slower* than plain WL.
Outage counts must follow the stability ordering
thermal < solar < tr.1 < tr.2 < tr.3.
"""

from bench_common import SENSITIVITY_APPS, print_figure
from repro.analysis.speedup import gmean
from repro.sim.sweep import run_grid

TRACES = ("trace1", "trace2", "trace3", "solar", "thermal")
DESIGNS_13 = ("VCache-WT", "ReplayCache", "NVSRAM(ideal)", "WL-Cache")


def run_fig13a():
    apps = SENSITIVITY_APPS
    speed: dict[str, dict[str, float]] = {}
    outages: dict[str, float] = {}
    for trace in TRACES:
        res = run_grid(apps, DESIGNS_13, trace)
        dyn = run_grid(apps, ("WL-Cache",), trace, dynamic=True)
        base = {a: res[(a, "NVSRAM(ideal)")].total_time_ns for a in apps}
        row = {}
        for d in DESIGNS_13:
            row[d] = gmean([base[a] / res[(a, d)].total_time_ns
                            for a in apps])
        row["WL-Cache(dyn)"] = gmean(
            [base[a] / dyn[(a, "WL-Cache")].total_time_ns for a in apps])
        speed[trace] = row
        # outage counts from the non-adaptive baseline (a trace property;
        # WL's adaptation deliberately reduces its own outage exposure)
        outages[trace] = (sum(res[(a, "NVSRAM(ideal)")].outages
                              for a in apps) / len(apps))
    cols = list(DESIGNS_13) + ["WL-Cache(dyn)"]
    rows = [[t] + [speed[t][c] for c in cols] + [round(outages[t], 1)]
            for t in TRACES]
    print_figure("Figure 13a: speedup vs NVSRAM across power sources",
                 ["trace"] + cols + ["wl_outages"], rows,
                 "fig13a_trace_sensitivity")
    return speed, outages


def check_shape(speed, outages):
    # WL beats the baseline on every RF trace ...
    for t in ("trace1", "trace2", "trace3"):
        assert speed[t]["WL-Cache"] > 1.0
    # ... and the stable sources shrink its margin
    rf_margin = speed["trace1"]["WL-Cache"]
    assert speed["thermal"]["WL-Cache"] <= rf_margin + 0.02
    # dynamic adaptation: wins on stable sources, loses on bursty RF
    assert (speed["solar"]["WL-Cache(dyn)"]
            >= speed["solar"]["WL-Cache"] - 0.01)
    assert (speed["trace3"]["WL-Cache(dyn)"]
            <= speed["trace3"]["WL-Cache"] + 0.01)
    # outage counts follow source stability
    assert (outages["thermal"] <= outages["solar"]
            <= outages["trace1"] <= outages["trace2"] * 1.05
            <= outages["trace3"] * 1.05)


def test_fig13a_trace_sensitivity(benchmark):
    speed, outs = benchmark.pedantic(run_fig13a, rounds=1, iterations=1)
    check_shape(speed, outs)
