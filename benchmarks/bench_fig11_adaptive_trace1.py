"""Figure 11: adaptive vs static-best maxline management, Power Trace 1.

For each app: the static runs sweep maxline in {2,4,6,8} and keep the best
("Best", a per-app oracle the runtime cannot have); "Adap" is the boot-time
adaptive controller of §4. Both are shown for FIFO and LRU DirtyQueue
cleaning, normalized to NVSRAM(ideal).

Paper shape: adaptation meets or beats the static-best oracle (their
recorded traces drift enough for tracking to win outright: 1.35x vs 1.26x
on Trace 1). On our synthetic traces adaptation lands within a few percent
of the oracle - the preserved property is that the runtime reaches
near-best performance with no per-app tuning (EXPERIMENTS.md discusses the
gap). FIFO cleaning stays ahead of LRU, and adaptive WL beats the baseline.
"""

from bench_common import bench_apps, print_figure
from repro.analysis.speedup import gmean
from repro.sim.sweep import run_grid

MAXLINES = (2, 4, 6, 8)
TRACE = "trace1"
CSV = "fig11_adaptive_trace1"
TITLE = "Figure 11: adaptive vs static-best maxline, Trace 1"


def run_adaptive_figure(trace, title, csv_name):
    apps = bench_apps()
    base = run_grid(apps, ("NVSRAM(ideal)",), trace)
    base_t = {a: base[(a, "NVSRAM(ideal)")].total_time_ns for a in apps}
    out: dict[str, dict[str, float]] = {}
    for dq in ("lru", "fifo"):
        best = {a: 0.0 for a in apps}
        for ml in MAXLINES:
            res = run_grid(apps, ("WL-Cache",), trace, dq_policy=dq,
                           maxline=ml, adaptive=False)
            for a in apps:
                best[a] = max(best[a],
                              base_t[a] / res[(a, "WL-Cache")].total_time_ns)
        adap = run_grid(apps, ("WL-Cache",), trace, dq_policy=dq,
                        adaptive=True)
        out[f"{dq.upper()}(Best)"] = best
        out[f"{dq.upper()}(Adap)"] = {
            a: base_t[a] / adap[(a, "WL-Cache")].total_time_ns for a in apps}
    cols = ["LRU(Best)", "LRU(Adap)", "FIFO(Best)", "FIFO(Adap)"]
    rows = [[a] + [out[c][a] for c in cols] for a in apps]
    rows.append(["gmean"] + [gmean(list(out[c].values())) for c in cols])
    print_figure(title, ["app"] + cols, rows, csv_name)
    return {c: gmean(list(out[c].values())) for c in cols}


def check_adaptive_shape(g):
    # adaptation reaches near-oracle performance without per-app tuning
    assert g["FIFO(Adap)"] >= g["FIFO(Best)"] * 0.94
    assert g["LRU(Adap)"] >= g["LRU(Best)"] * 0.94
    # FIFO DirtyQueue cleaning ahead of LRU
    assert g["FIFO(Adap)"] >= g["LRU(Adap)"] * 0.99
    # and adaptive WL beats the NVSRAM baseline
    assert g["FIFO(Adap)"] > 1.0


def test_fig11_adaptive_trace1(benchmark):
    g = benchmark.pedantic(run_adaptive_figure, args=(TRACE, TITLE, CSV),
                           rounds=1, iterations=1)
    check_adaptive_shape(g)
