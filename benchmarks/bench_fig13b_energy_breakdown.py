"""Figure 13b: energy-consumption breakdown by component, Power Trace 1,
normalized to NVSRAM(ideal)'s total (= 100 %).

Paper shape: NVCache dominated by cache energy; VCache-WT dominated by
memory writes; WL-Cache's total lands below the baseline's (the paper
reports ~17 % lower) with a smaller cache component.
"""

from bench_common import SENSITIVITY_APPS, print_figure
from repro.analysis.energy_breakdown import CATEGORIES, normalized_breakdown
from repro.sim.sweep import run_grid

DESIGNS_13B = ("NVCache-WB", "VCache-WT", "NVSRAM(ideal)", "WL-Cache")


def run_fig13b():
    apps = SENSITIVITY_APPS
    res = run_grid(apps, DESIGNS_13B, "trace1")
    per_design = {d: [res[(a, d)] for a in apps] for d in DESIGNS_13B}
    norm = normalized_breakdown(per_design, "NVSRAM(ideal)")
    rows = []
    for d in DESIGNS_13B:
        rows.append([d] + [norm[d][c] for c in CATEGORIES]
                    + [sum(norm[d].values())])
    print_figure("Figure 13b: energy breakdown (% of NVSRAM total), Trace 1",
                 ["design"] + list(CATEGORIES) + ["total"], rows,
                 "fig13b_energy_breakdown")
    return norm


def check_shape(norm):
    totals = {d: sum(v.values()) for d, v in norm.items()}
    assert totals["NVSRAM(ideal)"] == 100.0 or abs(
        totals["NVSRAM(ideal)"] - 100.0) < 1e-6
    # WL-Cache consumes less energy than the baseline overall
    assert totals["WL-Cache"] < totals["NVSRAM(ideal)"]
    # ... with a smaller cache-energy component
    wl_cache = norm["WL-Cache"]["cache_read"] + norm["WL-Cache"]["cache_write"]
    ns_cache = (norm["NVSRAM(ideal)"]["cache_read"]
                + norm["NVSRAM(ideal)"]["cache_write"])
    assert wl_cache < ns_cache
    # NVCache burns the most cache energy; WT the most memory-write energy
    nv_cache = (norm["NVCache-WB"]["cache_read"]
                + norm["NVCache-WB"]["cache_write"])
    assert nv_cache > ns_cache
    assert (norm["VCache-WT"]["mem_write"]
            > norm["NVSRAM(ideal)"]["mem_write"])


def test_fig13b_energy_breakdown(benchmark):
    norm = benchmark.pedantic(run_fig13b, rounds=1, iterations=1)
    check_shape(norm)
