"""CI campaign smoke: a 64-point Monte-Carlo campaign run three ways.

Runs the same ``(workload x design x stochastic family x seed)`` grid
under the serial loop, the process pool, and the batch record/replay
engine, asserts the three are point-for-point bit-identical, checks the
fixed-seed summary statistics are identical across engines, and writes
the summary CSV/SVG artifacts the CI job uploads.

The golden *content* pin for the statistical pipeline lives in
``tests/test_mc_stats.py`` (exact-match against
``tests/goldens/mc_campaign_summary.json``); this smoke guards the
engine-invariance half of the contract at a size the unit tests don't
reach (>= 64 points, both kernels batch-amortized across 16 seeds
each).

Usage::

    PYTHONPATH=src REPRO_BENCH_SCALE=0.1 python benchmarks/campaign_smoke.py
"""

import json
import os
import sys
import time

from repro.mc import (CampaignSpec, campaign_to_dict, run_campaign,
                      summarize_campaign, write_report)

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.1"))

SPEC = CampaignSpec(
    workloads=("sha", "qsort"),
    designs=("WL-Cache", "NVSRAM(ideal)"),
    families=("mc-rf-home", "mc-rf-office"),
    seeds=tuple(range(8)),
    scale=SCALE,
)

BATCH_SPEC = CampaignSpec(
    workloads=SPEC.workloads, designs=SPEC.designs, families=SPEC.families,
    seeds=SPEC.seeds, scale=SPEC.scale, overrides={"batch": True})


def main() -> int:
    out_dir = os.path.normpath(
        os.path.join(os.path.dirname(__file__), os.pardir, "results"))
    os.makedirs(out_dir, exist_ok=True)
    assert SPEC.n_points >= 64, SPEC.n_points

    t0 = time.perf_counter()
    serial = run_campaign(SPEC, jobs=1)
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = run_campaign(SPEC, jobs=max(2, os.cpu_count() or 2))
    t_parallel = time.perf_counter() - t0

    sd, pd = campaign_to_dict(serial), campaign_to_dict(parallel)
    if sd != pd:
        bad = [k for k in serial if serial[k] != parallel[k]]
        print(f"FAIL: parallel campaign diverged from serial on {bad}")
        return 1

    t0 = time.perf_counter()
    batched = run_campaign(BATCH_SPEC, jobs=max(2, os.cpu_count() or 2))
    t_batch = time.perf_counter() - t0
    bd = campaign_to_dict(batched)
    if sd != bd:
        bad = [k for k in serial if serial[k] != batched[k]]
        print(f"FAIL: batched campaign diverged from serial on {bad}")
        return 1

    summaries = [summarize_campaign(pts) for pts in (serial, parallel,
                                                     batched)]
    texts = [json.dumps(s, sort_keys=True) for s in summaries]
    if len(set(texts)) != 1:
        print("FAIL: summary statistics differ across execution engines")
        return 1
    print(f"serial {t_serial:.2f}s / parallel {t_parallel:.2f}s / "
          f"batch {t_batch:.2f}s - {SPEC.n_points} points bit-identical, "
          f"summaries identical")

    prefix = os.path.join(out_dir, "campaign_smoke")
    for path in write_report(summaries[0], prefix):
        print(f"wrote {path}")
    for a in summaries[0]["speedup_aggregate"]:
        print(f"  {a['design']} / {a['family']}: gmean speedup "
              f"{a['speedup_gmean']:.3f} "
              f"[{a['ci_lo']:.3f}, {a['ci_hi']:.3f}] (n={a['n']})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
