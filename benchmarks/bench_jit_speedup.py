"""JIT speedup benchmark: guest instruction throughput, JIT on vs off.

Runs the fig04 (no-power-failure) suite single-threaded on WL-Cache twice
per kernel - interpreter fast path vs the basic-block/trace JIT - and
reports guest instructions per second plus the per-kernel and geomean
speedups. Results land in ``results/BENCH_4.json``.

Methodology: one full warm-up run per mode first (so JIT compilation,
workload build, and the decode cache are all excluded from timing), then
``REPS`` timed runs with the two modes *interleaved* (off/on/off/on...)
taking the best of each - alternation keeps slow drift in machine load
from biasing one mode, which matters far more than the number of reps.

Environment: ``REPRO_BENCH_SCALE`` scales the workloads,
``REPRO_BENCH_APPS`` selects a subset, ``REPRO_JIT_GATE`` (default off)
makes the script exit non-zero when the geomean speedup is below the
acceptance floor of 1.5x.

Usage::

    PYTHONPATH=src python benchmarks/bench_jit_speedup.py
"""

import json
import math
import os
import sys
import time

from bench_common import bench_apps
from repro.sim.config import SimConfig
from repro.sim.factory import run_one
from repro.sim.sweep import bench_scale
from repro.workloads import build_workload

DESIGN = "WL-Cache"
REPS = 5
GATE = 1.5


def time_modes(prog) -> dict[bool, tuple[float, int]]:
    """Best wall time and retired-instruction count per JIT mode."""
    configs = {jit: SimConfig(jit=jit) for jit in (False, True)}
    instret = {}
    for jit, cfg in configs.items():  # warm-up: compile + caches
        instret[jit] = run_one(prog, DESIGN, None, cfg).instructions
    best = {False: math.inf, True: math.inf}
    for _ in range(REPS):
        for jit in (False, True):
            t0 = time.perf_counter()
            run_one(prog, DESIGN, None, configs[jit])
            best[jit] = min(best[jit], time.perf_counter() - t0)
    return {jit: (best[jit], instret[jit]) for jit in (False, True)}


def main() -> int:
    out_dir = os.path.join(os.path.dirname(__file__), os.pardir, "results")
    os.makedirs(out_dir, exist_ok=True)
    out_json = os.path.normpath(os.path.join(out_dir, "BENCH_4.json"))

    kernels = {}
    ratios = []
    for app in bench_apps():
        prog = build_workload(app, bench_scale())
        modes = time_modes(prog)
        (t_off, n_off), (t_on, n_on) = modes[False], modes[True]
        assert n_on == n_off, f"{app}: retirement diverged under JIT"
        ratio = t_off / t_on
        ratios.append(ratio)
        kernels[app] = {
            "instret": n_off,
            "interp_s": round(t_off, 6),
            "jit_s": round(t_on, 6),
            "interp_ips": round(n_off / t_off),
            "jit_ips": round(n_on / t_on),
            "speedup": round(ratio, 3),
        }
        print(f"{app:14s} {n_off / t_off / 1e6:6.2f} -> "
              f"{n_on / t_on / 1e6:6.2f} Minstr/s  x{ratio:.2f}")

    gmean = math.exp(sum(map(math.log, ratios)) / len(ratios))
    report = {
        "bench": "jit_speedup",
        "design": DESIGN,
        "suite": "fig04_no_failure",
        "scale": bench_scale(),
        "reps": REPS,
        "gmean_speedup": round(gmean, 3),
        "kernels": kernels,
    }
    with open(out_json, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"gmean speedup x{gmean:.2f} ({len(kernels)} kernels); "
          f"wrote {out_json}")

    if os.environ.get("REPRO_JIT_GATE") and gmean < GATE:
        print(f"FAIL: gmean {gmean:.2f} below the {GATE}x gate")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
