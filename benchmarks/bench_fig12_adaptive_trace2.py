"""Figure 12: adaptive vs static-best maxline management, Power Trace 2.

Same methodology as Figure 11 on the less stable office trace; the paper
reports the adaptive win growing (FIFO 1.44x adaptive vs 1.3x static-best).
"""

from bench_fig11_adaptive_trace1 import check_adaptive_shape, run_adaptive_figure


def test_fig12_adaptive_trace2(benchmark):
    g = benchmark.pedantic(
        run_adaptive_figure,
        args=("trace2", "Figure 12: adaptive vs static-best maxline, Trace 2",
              "fig12_adaptive_trace2"),
        rounds=1, iterations=1)
    check_adaptive_shape(g)
