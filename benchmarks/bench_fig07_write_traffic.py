"""Figure 7: normalized NVM write-traffic increase vs NVSRAM(ideal),
Power Trace 1.

Write traffic counts words written to NVM main memory (the paper's bus
metric): demand evictions plus, for WL-Cache, waterline write-backs and
JIT-checkpoint flushes; NVSRAM's shadow checkpoints stay inside the cache
macro. Paper shape: WL-Cache *increases* write traffic, and the increase
is small enough to be paid off by the asynchronous write-back overlap.
Our magnitude exceeds the paper's 1.00-1.10x band on kernels whose working
set stays resident (the baseline then writes almost nothing to the bus
while WL keeps cleaning); EXPERIMENTS.md quantifies the deviation.
"""

from bench_common import bench_apps, print_figure
from repro.analysis.speedup import gmean
from repro.sim.config import DEFAULT_CONFIG
from repro.sim.sweep import run_grid


def run_fig7():
    apps = bench_apps()
    results = run_grid(apps, ("NVSRAM(ideal)", "WL-Cache"), "trace1")
    wpl = DEFAULT_CONFIG.geometry.words_per_line
    rows = []
    ratios = {}
    for a in apps:
        base = results[(a, "NVSRAM(ideal)")]
        wl = results[(a, "WL-Cache")]
        # bus traffic: NVSRAM's shadow checkpoints never reach main NVM;
        # WL's flushes are already included in nvm_writes
        base_traffic = base.nvm_writes
        wl_traffic = wl.nvm_writes
        ratios[a] = wl_traffic / base_traffic
        rows.append([a, base_traffic, wl_traffic, ratios[a]])
    rows.append(["gmean", "", "", gmean(list(ratios.values()))])
    print_figure(
        "Figure 7: normalized write-traffic increase (WL vs NVSRAM), Trace 1",
        ["app", "nvsram_words", "wl_words", "ratio"], rows,
        "fig07_write_traffic")
    return ratios


def check_shape(ratios):
    g = gmean(list(ratios.values()))
    # WL writes more to the bus than the baseline, by a bounded factor
    assert 1.0 <= g <= 4.5


def test_fig07_write_traffic(benchmark):
    ratios = benchmark.pedantic(run_fig7, rounds=1, iterations=1)
    check_shape(ratios)
