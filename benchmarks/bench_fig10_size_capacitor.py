"""Figure 10: (a) cache-size sweep 128 B - 4 KB and (b) capacitor-size
sweep 100 nF - 1 mF, Power Trace 1.

Paper shape: (a) the WL-vs-NVSRAM gap narrows as the cache shrinks and all
speedups grow with cache size; (b) every scheme is fastest around 1 uF and
collapses for much larger capacitors (recharge time scales with C), with
the WL/NVSRAM gap narrowing as the capacitor grows. At the smallest
capacitors NVSRAM(ideal)'s full-cache reserve no longer fits - our harness
reports DNF there (EXPERIMENTS.md discusses this deviation; the paper's
energy scale lets it limp along instead).
"""

from bench_common import SENSITIVITY_APPS, print_figure
from repro.analysis.speedup import gmean
from repro.errors import ConfigError
from repro.mem.setassoc import CacheGeometry
from repro.sim.sweep import run_grid

SIZES = (128, 256, 512, 1024, 2048, 4096)
CAPACITORS = (1e-7, 3.44e-7, 1e-6, 1e-5, 1e-4, 5e-4, 1e-3)
CAP_LABELS = ("100nF", "344nF", "1uF", "10uF", "100uF", "500uF", "1mF")
DESIGNS_10 = ("VCache-WT", "ReplayCache", "NVSRAM(ideal)", "WL-Cache")


def _gmean_times(res, design, apps):
    return gmean([res[(a, design)].total_time_ns for a in apps])


def run_fig10a():
    apps = SENSITIVITY_APPS
    out = {}
    for size in SIZES:
        assoc = 2
        geo = CacheGeometry(size_bytes=size, assoc=assoc, line_bytes=64)
        res = run_grid(apps, DESIGNS_10, "trace1", geometry=geo)
        base = _gmean_times(res, "NVSRAM(ideal)", apps)
        out[size] = {d: base / _gmean_times(res, d, apps)
                     for d in DESIGNS_10}
    rows = [[f"{s}B"] + [out[s][d] for d in DESIGNS_10] for s in SIZES]
    print_figure("Figure 10a: cache-size sweep (speedup vs same-size "
                 "NVSRAM), Trace 1", ["size"] + list(DESIGNS_10), rows,
                 "fig10a_cache_size")
    return out


def run_fig10b():
    apps = SENSITIVITY_APPS
    out = {}
    for cap, label in zip(CAPACITORS, CAP_LABELS):
        row = {}
        for d in DESIGNS_10:
            try:
                res = run_grid(apps, (d,), "trace1", capacitance_f=cap,
                               chunk_instrs=8)
                row[d] = gmean([res[(a, d)].total_time_ns
                                for a in apps]) / 1e6  # ms
            except ConfigError:
                row[d] = None  # reserve does not fit: DNF
        out[label] = row
    rows = [[label] + [(f"{v:.3f}" if v is not None else "DNF")
                       for v in row.values()]
            for label, row in out.items()]
    print_figure("Figure 10b: capacitor sweep (gmean execution time, ms), "
                 "Trace 1", ["capacitor"] + list(DESIGNS_10), rows,
                 "fig10b_capacitor")
    return out


def check_shape(a, b):
    # (a) the design gaps collapse as the cache shrinks (a 2-line cache
    # barely differentiates write policies) and WL tracks the baseline at
    # the larger sizes
    spread_small = max(a[128].values()) - min(
        v for k, v in a[128].items() if k != "NVCache-WB")
    spread_big = max(a[4096].values()) - min(
        v for k, v in a[4096].items() if k != "NVCache-WB")
    assert a[4096]["WL-Cache"] >= a[128]["WL-Cache"] - 0.15
    for size in (1024, 2048, 4096):
        assert a[size]["VCache-WT"] < a[size]["WL-Cache"]
    # (b) small capacitors beat huge ones for every design: charging energy
    # between the fixed voltage thresholds scales with C
    for d in DESIGNS_10:
        times = {lbl: row[d] for lbl, row in b.items() if row[d] is not None}
        assert times["1mF"] > 2 * times["1uF"]
        best = min(times.values())
        assert times["1uF"] <= best * 1.6
    # NVSRAM cannot guarantee consistency on the smallest buffer
    assert b["100nF"]["NVSRAM(ideal)"] is None
    assert b["100nF"]["WL-Cache"] is not None


def run_both():
    return run_fig10a(), run_fig10b()


def test_fig10_size_and_capacitor(benchmark):
    a, b = benchmark.pedantic(run_both, rounds=1, iterations=1)
    check_shape(a, b)
