"""Perf-regression gate: fresh bench headlines vs committed baselines.

The repository commits each performance benchmark's report
(``results/BENCH_*.json``) as the baseline for its headline *speedup
ratio* - the jit's gmean over the interpreter (BENCH_4), memfast's gmean
over the jit (BENCH_5), the batch tier's gmean sweep speedup over
jit+memfast (BENCH_6). CI re-runs the benchmarks at smoke scale and this
script compares the fresh headline against the committed one, bench by
bench:

    fresh_gmean >= baseline_gmean * REPRO_BENCH_TOL

Ratios (not wall-clock) are compared because they divide out the
machine: a shared runner is slower than the workstation that produced
the baseline in both numerator and denominator. They still move with
scale and scheduler noise, so the default tolerance is deliberately
loose - the gate exists to catch a tier collapsing (a refactor that
quietly disables the jit, a replay path that stops engaging), not to
police single-digit percentages. Tighten ``REPRO_BENCH_TOL`` locally
for real perf work at full scale.

Also writes a merged *perf trajectory* (every bench's baseline and
fresh headline side by side) for CI to upload as an artifact.

Usage::

    python benchmarks/check_regression.py --baseline-dir baselines \
        --current-dir results [--out results/perf_trajectory.json]

Exit codes: 0 all benches within tolerance (or no pairs found: that is
an error, exit 2 - a gate that silently checks nothing must not pass),
1 at least one regression.
"""

import argparse
import glob
import json
import os
import sys

#: bench file stem -> (headline key, short description)
HEADLINES = {
    "BENCH_4": ("gmean_speedup", "jit vs interpreter"),
    "BENCH_5": ("gmean_speedup_vs_jit", "memfast vs jit"),
    "BENCH_6": ("gmean_sweep_speedup", "batch sweep vs jit+memfast"),
    "BENCH_9": ("gmean_sweep_speedup", "lockstep columns vs batch replay"),
    "BENCH_10": ("warmstart_speedup", "warm store vs cold process"),
}

#: bench stem -> env var that, when set, makes a missing fresh report a
#: hard error (exit 2) instead of a skip: a gated bench that silently
#: produced no report must not pass CI
REQUIRED_UNDER = {
    "BENCH_9": "REPRO_LOCKSTEP_GATE",
    "BENCH_10": "REPRO_STORE_GATE",
}

DEFAULT_TOL = 0.6


def tolerance() -> float:
    raw = os.environ.get("REPRO_BENCH_TOL")
    if raw is None:
        return DEFAULT_TOL
    try:
        tol = float(raw)
    except ValueError:
        sys.exit(f"REPRO_BENCH_TOL must be a number in (0, 1+], "
                 f"got {raw!r}")
    if tol <= 0:
        sys.exit(f"REPRO_BENCH_TOL must be > 0, got {tol}")
    return tol


def headline(path: str) -> tuple[str, float] | None:
    stem = os.path.splitext(os.path.basename(path))[0]
    entry = HEADLINES.get(stem)
    if entry is None:
        return None
    with open(path) as f:
        report = json.load(f)
    key, _ = entry
    value = report.get(key)
    if not isinstance(value, (int, float)):
        sys.exit(f"{path}: headline key {key!r} missing or non-numeric")
    return stem, float(value)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline-dir", required=True,
                    help="directory holding the committed BENCH_*.json")
    ap.add_argument("--current-dir", required=True,
                    help="directory holding the freshly generated ones")
    ap.add_argument("--out", default=None,
                    help="write the merged perf trajectory JSON here")
    args = ap.parse_args()
    tol = tolerance()

    baselines = {}
    for path in sorted(glob.glob(os.path.join(args.baseline_dir,
                                              "BENCH_*.json"))):
        got = headline(path)
        if got:
            baselines[got[0]] = got[1]

    trajectory = {}
    failures = []
    checked = 0
    missing_required = []
    for stem, base in sorted(baselines.items()):
        cur_path = os.path.join(args.current_dir, f"{stem}.json")
        key, desc = HEADLINES[stem]
        if not os.path.exists(cur_path):
            gate_env = REQUIRED_UNDER.get(stem)
            if gate_env and os.environ.get(gate_env, "").strip() \
                    not in ("", "0"):
                print(f"{stem}: no fresh report at {cur_path} but "
                      f"{gate_env} is set - the gated bench never ran")
                missing_required.append(stem)
            else:
                print(f"{stem}: no fresh report at {cur_path}, skipping")
            continue
        _, cur = headline(cur_path)
        checked += 1
        floor = base * tol
        ok = cur >= floor
        trajectory[stem] = {
            "what": desc, "key": key,
            "baseline": round(base, 3), "current": round(cur, 3),
            "ratio": round(cur / base, 3), "floor": round(floor, 3),
            "ok": ok,
        }
        verdict = "ok" if ok else "REGRESSION"
        print(f"{stem} ({desc}): baseline x{base:.2f} -> fresh "
              f"x{cur:.2f} (floor x{floor:.2f}) {verdict}")
        if not ok:
            failures.append(stem)

    if args.out:
        os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
        with open(args.out, "w") as f:
            json.dump({"tolerance": tol, "benches": trajectory}, f,
                      indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.out}")

    if missing_required:
        print(f"FAIL: {', '.join(missing_required)} gated but missing "
              f"(exit 2)")
        return 2
    if checked == 0:
        print("FAIL: no baseline/current bench pairs found - the gate "
              "checked nothing")
        return 2
    if failures:
        print(f"FAIL: regression in {', '.join(failures)} "
              f"(tolerance {tol})")
        return 1
    print(f"{checked} bench(es) within tolerance {tol}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
