"""Figure 8: (a) DirtyQueue cleaning policy (DQ-FIFO vs DQ-LRU) and
(b) cache set associativity, as average WL-Cache speedup vs the default
NVSRAM(ideal) baseline.

Paper shape: (a) DQ-FIFO slightly ahead of DQ-LRU under power failures
(the LRU lookup logic burns extra energy for no miss-rate benefit);
(b) direct-mapped is clearly slowest, 2-way and 4-way nearly tied with
4-way marginally behind on the traces (extra lookup power).
"""

from dataclasses import replace

from bench_common import SENSITIVITY_APPS, print_figure
from repro.analysis.speedup import gmean
from repro.mem.setassoc import CacheGeometry
from repro.sim.config import sram_cache_params
from repro.sim.sweep import run_grid

CONDITIONS = (None, "trace1", "trace2")
LABELS = ("no failure", "trace 1", "trace 2")

_BASELINES: dict = {}


def _baseline_times(trace):
    if trace not in _BASELINES:
        res = run_grid(SENSITIVITY_APPS, ("NVSRAM(ideal)",), trace)
        _BASELINES[trace] = {a: res[(a, "NVSRAM(ideal)")].total_time_ns
                             for a in SENSITIVITY_APPS}
    return _BASELINES[trace]


def _wl_gmean(trace, **overrides) -> float:
    base = _baseline_times(trace)
    res = run_grid(SENSITIVITY_APPS, ("WL-Cache",), trace, **overrides)
    return gmean([base[a] / res[(a, "WL-Cache")].total_time_ns
                  for a in SENSITIVITY_APPS])


def run_fig8a():
    out = {}
    for trace, label in zip(CONDITIONS, LABELS):
        out[label] = {
            "DQ-FIFO": _wl_gmean(trace, dq_policy="fifo"),
            "DQ-LRU": _wl_gmean(trace, dq_policy="lru"),
        }
    rows = [[label, v["DQ-FIFO"], v["DQ-LRU"]] for label, v in out.items()]
    print_figure("Figure 8a: DirtyQueue replacement policy (WL speedup vs "
                 "NVSRAM)", ["condition", "DQ-FIFO", "DQ-LRU"], rows,
                 "fig08a_dq_policy")
    return out


def run_fig8b():
    out = {}
    for trace, label in zip(CONDITIONS, LABELS):
        row = {}
        for assoc, name in ((1, "D-Map."), (2, "2-Way"), (4, "4-Way")):
            geo = CacheGeometry(size_bytes=8192, assoc=assoc, line_bytes=64)
            # wider associativity burns more lookup energy per access
            extra = {1: 0.0, 2: 0.0, 4: 0.012}[assoc]
            params = sram_cache_params()
            params = replace(params,
                             read_energy_nj=params.read_energy_nj + extra,
                             write_energy_nj=params.write_energy_nj + extra)
            row[name] = _wl_gmean(trace, geometry=geo, sram_params=params)
        out[label] = row
    rows = [[label] + [v[k] for k in ("D-Map.", "2-Way", "4-Way")]
            for label, v in out.items()]
    print_figure("Figure 8b: cache set associativity (WL speedup vs 2-way "
                 "NVSRAM)", ["condition", "D-Map.", "2-Way", "4-Way"],
                 rows, "fig08b_associativity")
    return out


def check_shape(a, b):
    # (a) FIFO >= LRU under both power traces
    for label in ("trace 1", "trace 2"):
        assert a[label]["DQ-FIFO"] >= a[label]["DQ-LRU"] * 0.99
    # (b) direct-mapped is the slowest everywhere; 2-way ~ 4-way
    for label, row in b.items():
        assert row["D-Map."] < row["2-Way"]
        assert abs(row["4-Way"] - row["2-Way"]) < 0.12


def run_both():
    return run_fig8a(), run_fig8b()


def test_fig08_dq_policy_and_associativity(benchmark):
    a, b = benchmark.pedantic(run_both, rounds=1, iterations=1)
    check_shape(a, b)
