"""Warm-start benchmark: the persistent artifact store across processes.

Measures what the store is for - a *new process* (a campaign shard, a
re-run figure bench, a CI job) skipping codegen and simulation it has
already paid for. Each measurement is a child interpreter that runs the
same jit+memfast sweep grid with result memoization on:

* **cold** - every rep gets a fresh, empty store root: the child
  renders and compiles every source and simulates every grid point.
* **warm** - all reps share one store root, primed by an untimed
  warm-up child: the timed children load every source and memoized
  result from disk.

Before anything is timed, the warm-up child's grid is asserted
**bit-identical** (stats + final registers; memoized results are
stats-only by design) to the cold grid, and each timed warm child must
report zero renders/compiles and an all-hit result memo - a warm run
that quietly recomputes would otherwise flatter the cold side.

The headline ``warmstart_speedup`` is the median cold wall time over
the median warm wall time, wall time being the child's own measurement
around the sweep (interpreter startup and imports are identical on
both sides and excluded). Results land in ``results/BENCH_10.json``;
``REPRO_STORE_GATE`` (default off) makes the script exit non-zero when
the speedup falls below the gate - the floor guards the warm path
*existing* (a refactor that stops consulting the store shows up as
x1.0), not the exact ratio, which moves with disk and scale.

Environment: ``REPRO_BENCH_SCALE`` scales the workloads;
``REPRO_STORE_GATE`` arms the gate.

Usage::

    PYTHONPATH=src python benchmarks/bench_store_warmstart.py
"""

import argparse
import json
import os
import shutil
import statistics
import subprocess
import sys
import tempfile
import time

REPS = 3
GATE = 1.5
GATE_ENV = "REPRO_STORE_GATE"
APPS = ("sha", "qsort")
DESIGNS = ("NVSRAM(ideal)", "WL-Cache", "VCache-WT")
TRACE = "trace1"
BASE_SCALE = 0.3


def bench_scale() -> float:
    try:
        return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    except ValueError:
        return 1.0


# ---------------------------------------------------------------------------
# child: one process-lifetime measurement
# ---------------------------------------------------------------------------

def child(out_path: str) -> int:
    from repro.analysis.stats_io import result_to_dict
    from repro.jit.cache import code_cache_stats
    from repro.lockstep.codegen import engine_cache_stats
    from repro.memfast.handlers import codegen_cache_stats
    from repro.sim.config import SimConfig
    from repro.sim.sweep import run_grid
    from repro.store import store_stats

    cfg = SimConfig(jit=True, memfast=True, result_cache=True)
    scale = BASE_SCALE * bench_scale()
    t0 = time.perf_counter()
    grid = run_grid(APPS, DESIGNS, TRACE, scale=scale, jobs=1, config=cfg)
    elapsed = time.perf_counter() - t0
    report = {
        "elapsed_s": elapsed,
        "grid": {f"{w}|{d}": {"stats": result_to_dict(r,
                                                      include_periods=True),
                              "final_regs": list(r.final_regs)}
                 for (w, d), r in grid.items()},
        "store_events": store_stats(),
        "jit": code_cache_stats(),
        "memfast": codegen_cache_stats(),
        "lockstep": engine_cache_stats(),
    }
    with open(out_path, "w") as f:
        json.dump(report, f)
    return 0


def run_child(store_dir: str, tag: str) -> dict:
    """Spawn one measurement process against ``store_dir``."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tf:
        out_path = tf.name
    env = dict(os.environ)
    env["REPRO_CACHE_DIR"] = store_dir
    env.pop("REPRO_STREAM_CACHE", None)  # the legacy alias would win
    env["REPRO_RESULT_CACHE"] = "1"
    src = os.path.normpath(os.path.join(os.path.dirname(__file__),
                                        os.pardir, "src"))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    try:
        proc = subprocess.run(
            [sys.executable, os.path.abspath(__file__), "--child",
             out_path], env=env, capture_output=True, text=True)
        if proc.returncode != 0:
            raise RuntimeError(f"{tag} child failed:\n{proc.stderr}")
        with open(out_path) as f:
            return json.load(f)
    finally:
        os.unlink(out_path)


# ---------------------------------------------------------------------------
# parent: cold vs warm
# ---------------------------------------------------------------------------

def assert_warm_is_warm(rep: dict, tag: str) -> None:
    """A timed warm child must have loaded everything."""
    jit, mf = rep["jit"], rep["memfast"]
    problems = []
    for label, n in (("jit compiles", jit["compiles"]),
                     ("jit suffix compiles", jit["suffix_compiles"]),
                     ("jit trace compiles", jit["trace_compiles"]),
                     ("memfast renders", mf["renders"])):
        if n != 0:
            problems.append(f"{label}={n}")
    hits = rep["store_events"].get("result_hits", 0)
    points = len(rep["grid"])
    if hits != points:
        problems.append(f"result_hits={hits} (want {points})")
    if problems:
        raise SystemExit(f"{tag}: warm run recomputed work: "
                         + ", ".join(problems))


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--child", metavar="OUT", default=None,
                        help="internal: run one measurement, write OUT")
    args = parser.parse_args()
    if args.child:
        return child(args.child)

    out_dir = os.path.join(os.path.dirname(__file__), os.pardir, "results")
    os.makedirs(out_dir, exist_ok=True)
    out_json = os.path.normpath(os.path.join(out_dir, "BENCH_10.json"))

    cold_times = []
    cold_grid = None
    for i in range(REPS):
        store_dir = tempfile.mkdtemp(prefix="repro-cold-")
        try:
            rep = run_child(store_dir, f"cold[{i}]")
        finally:
            shutil.rmtree(store_dir, ignore_errors=True)
        cold_times.append(rep["elapsed_s"])
        if cold_grid is None:
            cold_grid = rep["grid"]
        elif rep["grid"] != cold_grid:
            raise SystemExit(f"cold[{i}]: non-deterministic grid - "
                             "cold reps disagree")
        print(f"cold[{i}]  {rep['elapsed_s'] * 1e3:8.1f} ms  "
              f"(compiles={rep['jit']['compiles']}, "
              f"renders={rep['memfast']['renders']})")

    warm_dir = tempfile.mkdtemp(prefix="repro-warm-")
    try:
        primer = run_child(warm_dir, "warm-up")
        # the correctness contract, checked before any warm timing
        if primer["grid"] != cold_grid:
            raise SystemExit("warm-up grid differs from the cold grid - "
                             "the store changed simulation results")
        warm_times = []
        for i in range(REPS):
            rep = run_child(warm_dir, f"warm[{i}]")
            assert_warm_is_warm(rep, f"warm[{i}]")
            if rep["grid"] != cold_grid:
                raise SystemExit(f"warm[{i}]: grid differs from cold - "
                                 "a memoized result is wrong")
            warm_times.append(rep["elapsed_s"])
            print(f"warm[{i}]  {rep['elapsed_s'] * 1e3:8.1f} ms  "
                  f"(loads={rep['jit']['loads']}, result_hits="
                  f"{rep['store_events'].get('result_hits', 0)})")
        warm_stats = {"jit": rep["jit"], "memfast": rep["memfast"],
                      "store_events": rep["store_events"]}
    finally:
        shutil.rmtree(warm_dir, ignore_errors=True)

    cold_med = statistics.median(cold_times)
    warm_med = statistics.median(warm_times)
    speedup = cold_med / warm_med
    scale = BASE_SCALE * bench_scale()
    report = {
        "bench": "store_warmstart",
        "apps": list(APPS),
        "designs": list(DESIGNS),
        "trace": TRACE,
        "scale": round(scale, 4),
        "reps": REPS,
        "methodology": "median over child-process sweeps; cold = fresh "
                       "store root per rep, warm = shared pre-warmed "
                       "root; warm grids asserted bit-identical to cold "
                       "before timing (see module docstring)",
        "cold_s": [round(t, 6) for t in cold_times],
        "warm_s": [round(t, 6) for t in warm_times],
        "cold_median_s": round(cold_med, 6),
        "warm_median_s": round(warm_med, 6),
        "gate": GATE,
        "gate_env": GATE_ENV,
        "warmstart_speedup": round(speedup, 3),
        "warm_process_stats": warm_stats,
    }
    with open(out_json, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"warm-start speedup x{speedup:.2f} "
          f"(cold {cold_med * 1e3:.1f} ms -> warm {warm_med * 1e3:.1f} ms);"
          f" wrote {out_json}")

    if os.environ.get(GATE_ENV, "").strip() not in ("", "0"):
        if speedup < GATE:
            print(f"FAIL: warm-start speedup x{speedup:.2f} below the "
                  f"x{GATE:.2f} gate")
            return 1
        print(f"gate passed: x{speedup:.2f} >= x{GATE:.2f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
