"""CI smoke sweep: a small grid run serial, parallel, under the JIT,
under the JIT with the memfast hit-path tier, under the batch
record/replay tier, AND under the lockstep column tier - all six
asserted bit-identical.

Exercises the full stack end to end in about a minute: workload build,
every major cache design, a real power trace with outages, the crash
consistency verifier, the process-pool engine's bit-exactness guarantee,
and the JIT's. The CI pipeline runs this with ``REPRO_BENCH_SCALE=0.1``
and uploads the CSV as a build artifact.

Usage::

    PYTHONPATH=src REPRO_BENCH_SCALE=0.1 python benchmarks/smoke_sweep.py
"""

import csv
import os
import sys
import time

from repro.sim.sweep import run_grid

APPS = ("sha", "qsort")
DESIGNS = ("NVSRAM(ideal)", "VCache-WT", "WL-Cache")
TRACE = "trace1"


def main() -> int:
    out_dir = os.path.join(os.path.dirname(__file__), os.pardir, "results")
    os.makedirs(out_dir, exist_ok=True)
    out_csv = os.path.normpath(os.path.join(out_dir, "smoke_sweep.csv"))

    t0 = time.perf_counter()
    serial = run_grid(APPS, DESIGNS, TRACE, jobs=1)
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = run_grid(APPS, DESIGNS, TRACE, jobs=max(2, os.cpu_count() or 2))
    t_parallel = time.perf_counter() - t0

    if serial != parallel:
        bad = [k for k in serial if serial[k] != parallel[k]]
        print(f"FAIL: parallel sweep diverged from serial on {bad}")
        return 1

    t0 = time.perf_counter()
    jit = run_grid(APPS, DESIGNS, TRACE, jobs=1, jit=True)
    t_jit = time.perf_counter() - t0
    if serial != jit:
        bad = [k for k in serial if serial[k] != jit[k]]
        print(f"FAIL: JIT sweep diverged from the interpreter on {bad}")
        return 1

    t0 = time.perf_counter()
    fast = run_grid(APPS, DESIGNS, TRACE, jobs=1, jit=True, memfast=True)
    t_fast = time.perf_counter() - t0
    if serial != fast:
        bad = [k for k in serial if serial[k] != fast[k]]
        print(f"FAIL: memfast sweep diverged from the interpreter on {bad}")
        return 1

    t0 = time.perf_counter()
    batched = run_grid(APPS, DESIGNS, TRACE, jobs=1, jit=True,
                       memfast=True, batch=True)
    t_batch = time.perf_counter() - t0
    if serial != batched:
        bad = [k for k in serial if serial[k] != batched[k]]
        print(f"FAIL: batched sweep diverged from the interpreter on {bad}")
        return 1

    t0 = time.perf_counter()
    lockstep = run_grid(APPS, DESIGNS, TRACE, jobs=1, jit=True,
                        memfast=True, batch=True, lockstep=True)
    t_lockstep = time.perf_counter() - t0
    if serial != lockstep:
        bad = [k for k in serial if serial[k] != lockstep[k]]
        print(f"FAIL: lockstep sweep diverged from the interpreter on {bad}")
        return 1
    from repro.lockstep.scheduler import lockstep_stats
    if lockstep_stats()["columns"] == 0:
        print("FAIL: lockstep tier never engaged in the smoke sweep")
        return 1
    print(f"serial {t_serial:.2f}s / parallel {t_parallel:.2f}s / "
          f"jit {t_jit:.2f}s / jit+memfast {t_fast:.2f}s / "
          f"batch {t_batch:.2f}s / lockstep {t_lockstep:.2f}s - "
          f"{len(serial)} runs bit-identical")

    with open(out_csv, "w", newline="") as f:
        w = csv.writer(f)
        w.writerow(["app", "design", "trace", "time_us", "outages",
                    "nvm_writes", "energy_uj"])
        for (app, design), res in serial.items():
            w.writerow([app, design, TRACE,
                        f"{res.total_time_ns / 1e3:.2f}", res.outages,
                        res.nvm_writes,
                        f"{res.energy.total_nj / 1e3:.2f}"])
    print(f"wrote {out_csv}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
