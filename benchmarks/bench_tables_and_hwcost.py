"""Table 1 (design-space comparison), Table 2 (simulation configuration),
and the §6.2 hardware-cost analysis.

Table 1 is regenerated from the *measured* behavior of each implementation
(reserve requirements, hardware additions, measured speedup class) rather
than hard-coded, so it stays honest if the designs change. The hardware
cost table reproduces the paper's CACTI-at-90nm magnitudes for the
DirtyQueue.
"""

from bench_common import print_figure
from repro.analysis.hwcost import hardware_cost_report
from repro.analysis.speedup import gmean
from repro.sim.config import SimConfig
from repro.sim.factory import build_system
from repro.sim.sweep import run_grid, speedups_vs_baseline
from repro.workloads import build_workload

APPS_T1 = ("sha", "qsort", "adpcmencode", "fft")


def run_table1():
    """Measure each design's energy-buffer requirement and speedup class."""
    prog = build_workload("sha", 0.5)
    rows = []
    rel = {}
    rescache = run_grid(APPS_T1, trace="trace1")
    sp = speedups_vs_baseline(rescache)
    designs = ("VCache-WT", "NVCache-WB", "ReplayCache", "NVSRAM(ideal)",
               "WL-Cache")
    for d in designs:
        system = build_system(prog, d, trace="trace1")
        reserve = system.reserve_nj - system.config.margin_nj()
        rel[d] = gmean([sp[(a, d)] for a in APPS_T1])
        req = ("None" if reserve < 50 else
               "Small" if reserve < 600 else "Large")
        nv_cache = "Yes" if d == "NVCache-WB" else (
            "Yes (shadow)" if d == "NVSRAM(ideal)" else "No")
        rows.append([d, req, f"{reserve:.0f} nJ", nv_cache, rel[d]])
    print_figure("Table 1: design space (measured)",
                 ["design", "energy buffer", "reserve", "NV cache",
                  "speedup (tr.1)"], rows, "table1_design_space")
    return rel


def run_table2():
    cfg = SimConfig()
    rows = list(cfg.describe())
    print_figure("Table 2: simulation configuration",
                 ["parameter", "value"], rows, "table2_config")
    return cfg


def run_hwcost():
    rows = [c.row() for c in hardware_cost_report()]
    print_figure("Section 6.2: hardware cost (CACTI-like, 90 nm)",
                 ["structure", "area mm^2", "access nJ", "leakage mW"],
                 rows, "sec62_hwcost")
    return hardware_cost_report()


def test_table1_design_space(benchmark):
    rel = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    assert rel["WL-Cache"] >= rel["ReplayCache"]
    assert rel["WL-Cache"] >= 0.95  # at or above the baseline's class
    assert rel["NVCache-WB"] == min(rel.values())


def test_table2_config(benchmark):
    cfg = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    assert cfg.geometry.size_bytes == 8192
    assert cfg.capacitance_f == 1.0e-6
    assert cfg.maxline == 6 and cfg.dq_capacity == 8


def test_sec62_hwcost(benchmark):
    report = benchmark.pedantic(run_hwcost, rounds=1, iterations=1)
    dq = report[0]
    assert dq.name == "DirtyQueue"
    assert dq.area_mm2 <= 0.005
    assert dq.access_energy_nj <= 0.001
    nv = next(c for c in report if "NV cache" in c.name)
    assert 0.05 <= dq.leakage_mw / nv.leakage_mw <= 0.15
