#!/usr/bin/env python3
"""Compare all five cache designs across power conditions (mini Fig. 4-6).

Runs a handful of benchmarks on every cache design with no failures and
under two RF traces, verifying each run's output, and prints normalized
speedups against the NVSRAM(ideal) baseline.

    python examples/compare_designs.py [app ...]
"""

import sys

from repro.analysis import format_table, gmean
from repro.sim import DESIGNS
from repro.sim.sweep import run_grid, speedups_vs_baseline

DEFAULT_APPS = ("sha", "adpcmencode", "qsort", "rijndael_e")


def main() -> None:
    apps = tuple(sys.argv[1:]) or DEFAULT_APPS
    for trace, label in ((None, "no power failure"),
                         ("trace1", "RF trace 1 (home)"),
                         ("trace2", "RF trace 2 (office)")):
        results = run_grid(apps, DESIGNS, trace)
        sp = speedups_vs_baseline(results)
        rows = [[a] + [sp[(a, d)] for d in DESIGNS] for a in apps]
        rows.append(["gmean"] + [gmean([sp[(a, d)] for a in apps])
                                 for d in DESIGNS])
        print(f"\n--- speedup vs NVSRAM(ideal), {label} ---")
        print(format_table(["app"] + list(DESIGNS), rows))
        if trace:
            outs = {d: sum(results[(a, d)].outages for a in apps)
                    for d in DESIGNS}
            print("total outages:", outs)


if __name__ == "__main__":
    main()
