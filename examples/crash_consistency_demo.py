#!/usr/bin/env python3
"""Why the protocol details matter: break WL-Cache and watch data corrupt.

Three scenarios on the same workload and power trace:

1. Correct WL-Cache - survives every outage; final NVM matches the
   failure-free oracle bit for bit.
2. A volatile write-back cache with no JIT checkpointing - the design
   energy harvesting systems cannot use (§1): every outage silently drops
   dirty lines, and the checker pinpoints the corrupted words.
3. WL-Cache without §5.3's clean-first ordering - the paper's WX=1/WX=2
   race: a store landing during an in-flight write-back is lost.

    python examples/crash_consistency_demo.py
"""

from repro import get_workload
from repro.errors import ConsistencyError
from repro.sim import SimConfig, System
from repro.energy.synthetic import make_trace
from repro.mem.nvm import NVMainMemory
from repro.verify import (BrokenWLCacheNoCleanFirst, VCacheWBNoCheckpoint,
                          check_crash_consistency)
from repro.sim.factory import run_one


def run_design(program, cls, trace, **kwargs):
    cfg = SimConfig(adaptive=False)
    nvm = NVMainMemory(program.initial_memory(), cfg.nvm)
    design = cls(nvm, cfg.geometry, cfg.cache_replacement, cfg.sram_params,
                 **kwargs)
    return System(program, design, cfg,
                  make_trace(trace) if trace else None).run()


def report(program, result, label):
    print(f"\n--- {label} ---")
    print(result.summary())
    try:
        check_crash_consistency(program, result)
        print("  consistent: final NVM equals the failure-free oracle")
    except ConsistencyError as exc:
        msg = str(exc)
        print(f"  CORRUPTED: {msg[:160]}{'...' if len(msg) > 160 else ''}")


def main() -> None:
    program = get_workload("qsort").build(1.5)

    good = run_one(program, "WL-Cache", trace="trace2")
    report(program, good, "WL-Cache (correct protocol)")

    lossy = run_design(program, VCacheWBNoCheckpoint, "trace2")
    report(program, lossy, "volatile write-back cache, no checkpointing")

    broken = run_design(program, BrokenWLCacheNoCleanFirst, "trace2",
                        maxline=2, waterline=1)
    report(program, broken, "WL-Cache missing §5.3 step 1 (clean-first)")


if __name__ == "__main__":
    main()
