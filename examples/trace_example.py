#!/usr/bin/env python3
"""Event tracing: record a run's micro-level behavior and export it.

Runs Dijkstra on WL-Cache under the RF-home power trace with the
observability layer attached (``SimConfig(trace=True)``), then:

* prints the terminal timeline summary (where the run stalled, charged,
  checkpointed);
* shows headline metrics - stall cycles by cause, DirtyQueue occupancy
  and write-back latency histograms, energy per outage;
* writes ``trace.json`` for https://ui.perfetto.dev / chrome://tracing.

Equivalent CLI: ``python -m repro trace dijkstra wl trace1``

    python examples/trace_example.py
"""

from repro import build_system, get_workload
from repro.obs import timeline_summary, write_chrome
from repro.sim.config import SimConfig


def main(out: str = "trace.json") -> None:
    program = get_workload("dijkstra").build()
    system = build_system(program, "WL-Cache", trace="trace1",
                          config=SimConfig(trace=True))
    result = system.run()

    recorder = system._trace_recorder
    print(result.summary())
    print()
    print(timeline_summary(recorder.events, result.metrics), end="")

    counters = result.metrics["counters"]
    wb_lat = result.metrics["histograms"]["wb.latency_ns"]
    print()
    print(f"stall cycles: {counters['cache.stall_cycles.ack_wait']} waiting "
          f"on ACKs, {counters['cache.stall_cycles.sync_clean']} on "
          f"synchronous cleans")
    if wb_lat["count"]:
        print(f"write-back latency: mean "
              f"{wb_lat['sum'] / wb_lat['count']:.0f} ns, "
              f"max {wb_lat['max']:.0f} ns over {wb_lat['count']} ACKs")

    write_chrome(recorder.events, out,
                 meta={"program": program.name, "design": "WL-Cache",
                       "trace": "trace1"})
    print(f"\nwrote {out} ({len(recorder.events)} events) - open it at "
          f"https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
