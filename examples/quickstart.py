#!/usr/bin/env python3
"""Quickstart: run one benchmark on WL-Cache under an RF power trace.

Builds the SHA-1 workload, simulates it on WL-Cache with the paper's
default configuration (8 KB cache, DirtyQueue of 8, maxline 6, adaptive
threshold management) under the RF-home power trace, verifies crash
consistency against the failure-free oracle, and prints the run summary.

    python examples/quickstart.py
"""

from repro import build_system, get_workload
from repro.verify import check_crash_consistency


def main() -> None:
    program = get_workload("sha").build()
    system = build_system(program, "WL-Cache", trace="trace1")
    print(f"Vbackup = {system.v_backup:.3f} V, Von = {system.v_on:.3f} V, "
          f"reserve = {system.reserve_nj:.0f} nJ "
          f"(maxline = {system.design.maxline})")

    result = system.run()

    print(result.summary())
    print(f"  power outages survived : {result.outages}")
    print(f"  power-off time         : {result.off_time_ns / 1e3:.1f} us "
          f"of {result.total_time_ns / 1e3:.1f} us total")
    print(f"  maxline range (adapted): {result.maxline_min}.."
          f"{result.maxline_max} over {result.reconfig_count} reconfigs")
    print(f"  async write-backs      : {result.async_writebacks}, "
          f"store stalls: {result.store_stall_cycles} cycles "
          f"({100 * result.stall_fraction:.2f} %)")
    print(f"  energy                 : {result.energy.total_nj / 1e3:.1f} uJ "
          f"({result.energy.as_dict()})")

    # the digest in NVM must match hashlib's, despite every power failure
    check_crash_consistency(program, result)
    print("crash consistency verified: final NVM state matches the "
          "failure-free oracle")


if __name__ == "__main__":
    main()
