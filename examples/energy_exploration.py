#!/usr/bin/env python3
"""Design-space walk: capacitor size and maxline vs performance.

Sweeps the energy buffer (Fig. 10b's axis) and WL-Cache's maxline
threshold (Fig. 9's axis) on one workload, printing how Vbackup, the
compute window, outage count, and run time respond - a feel for the
paper's central trade-off between checkpoint reserve and forward progress.

    python examples/energy_exploration.py [workload]
"""

import sys

from repro import build_system, get_workload
from repro.analysis import format_table
from repro.errors import ConfigError


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "sha"
    program = get_workload(name).build()

    rows = []
    for cap_f, label in ((1e-7, "100nF"), (3.44e-7, "344nF"), (1e-6, "1uF"),
                         (1e-5, "10uF"), (1e-4, "100uF")):
        try:
            system = build_system(program, "WL-Cache", trace="trace1",
                                  capacitance_f=cap_f, chunk_instrs=8)
            res = system.run()
            rows.append([label, system.design.maxline,
                         f"{system.v_backup:.2f}", f"{system.v_on:.2f}",
                         res.outages, f"{res.total_time_ns / 1e3:.1f}"])
        except ConfigError as exc:
            rows.append([label, "-", "-", "-", "-", f"DNF ({exc})"[:40]])
    print(f"\ncapacitor sweep ({name}, WL-Cache, trace 1)")
    print(format_table(
        ["capacitor", "maxline", "Vbackup", "Von", "outages", "time us"],
        rows))

    rows = []
    for maxline in (1, 2, 4, 6, 8):
        system = build_system(program, "WL-Cache", trace="trace1",
                              maxline=maxline, adaptive=False)
        res = system.run()
        rows.append([maxline, f"{system.reserve_nj:.0f}",
                     f"{system.v_backup:.3f}", res.outages,
                     res.async_writebacks, res.store_stall_cycles,
                     f"{res.total_time_ns / 1e3:.1f}"])
    print(f"\nmaxline sweep ({name}, 1uF, trace 1)")
    print(format_table(
        ["maxline", "reserve nJ", "Vbackup", "outages", "writebacks",
         "stall cyc", "time us"], rows))


if __name__ == "__main__":
    main()
