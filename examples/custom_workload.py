#!/usr/bin/env python3
"""Write your own workload in the builder DSL and run it intermittently.

Implements a small histogram-equalization kernel from scratch with
:class:`repro.isa.ProgramBuilder`, embeds a host-Python reference as the
correctness check, and runs it across cache designs under a power trace.

    python examples/custom_workload.py
"""

import random

from repro.isa import ProgramBuilder
from repro.sim import DESIGNS
from repro.sim.factory import run_one
from repro.verify import check_crash_consistency
from repro.workloads import verify_checks


def build_histogram_program(n_pixels: int = 4000, bins: int = 64):
    """Histogram + prefix-sum remap: a classic two-pass memory workload."""
    rnd = random.Random(1234)
    pixels = [rnd.randrange(bins) for _ in range(n_pixels)]

    b = ProgramBuilder("histeq")
    pix_addr = b.data_words(pixels, "pixels")
    hist_addr = b.space_words(bins, "histogram")
    cdf_addr = b.space_words(bins, "cdf")

    i, v, t, p = b.regs("i", "v", "t", "p")

    # pass 1: histogram
    b.li(p, pix_addr)
    with b.for_range(i, 0, n_pixels):
        b.lw(v, p, 0)
        b.addi(p, p, 4)
        b.slli(v, v, 2)
        b.addi(v, v, hist_addr)
        b.lw(t, v, 0)
        b.addi(t, t, 1)
        b.sw(t, v, 0)
    # pass 2: prefix sum into cdf
    acc = b.reg("acc")
    b.li(acc, 0)
    with b.for_range(i, 0, bins):
        b.slli(v, i, 2)
        b.addi(t, v, hist_addr)
        b.lw(t, t, 0)
        b.add(acc, acc, t)
        b.addi(v, v, cdf_addr)
        b.sw(acc, v, 0)
    b.halt()

    prog = b.build()
    # host reference
    hist = [0] * bins
    for px in pixels:
        hist[px] += 1
    cdf, running = [], 0
    for h in hist:
        running += h
        cdf.append(running)
    prog.meta["checks"] = [(hist_addr, hist), (cdf_addr, cdf)]
    return prog


def main() -> None:
    program = build_histogram_program()
    print(f"built {program.name}: {program.size} instructions")
    for design in DESIGNS:
        result = run_one(program, design, trace="trace1")
        verify_checks(program, result.final_memory)
        check_crash_consistency(program, result)
        print(f"{design:14s} {result.total_time_ns / 1e3:8.1f} us, "
              f"{result.outages:3d} outages  [verified]")


if __name__ == "__main__":
    main()
