#!/usr/bin/env python3
"""Watch the adaptive runtime retune WL-Cache as harvesting quality drifts.

Runs one workload under the office RF trace with (a) static thresholds,
(b) boot-time adaptive management (§4), and (c) dynamic adaptation on a
stable solar source, printing the maxline trajectory and per-period
statistics the paper's §6.6 reports.

    python examples/adaptive_runtime.py [workload]
"""

import sys

from repro import build_system, get_workload
from repro.verify import check_crash_consistency


def describe(result, label: str) -> None:
    print(f"\n--- {label} ---")
    print(result.summary())
    print(f"  reconfigurations: {result.reconfig_count}, "
          f"maxline range {result.maxline_min}..{result.maxline_max}, "
          f"prediction accuracy {result.prediction_accuracy:.2f}")
    print(f"  dirty lines/period (avg): {result.avg_dirty_per_period:.1f}, "
          f"write-backs/period (avg): {result.avg_writebacks_per_period:.1f}")
    ml_trace = [p.maxline for p in result.periods[:24]]
    print(f"  maxline per power-on period: {ml_trace}"
          + (" ..." if len(result.periods) > 24 else ""))


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "adpcmencode"
    program = get_workload(name).build()

    static = build_system(program, "WL-Cache", trace="trace2",
                          adaptive=False).run()
    check_crash_consistency(program, static)
    describe(static, "static maxline=6, RF trace 2")

    adaptive = build_system(program, "WL-Cache", trace="trace2").run()
    check_crash_consistency(program, adaptive)
    describe(adaptive, "adaptive (boot-time, §4), RF trace 2")

    dyn = build_system(program, "WL-Cache", trace="solar",
                       adaptive=False, dynamic=True, maxline=3).run()
    check_crash_consistency(program, dyn)
    describe(dyn, "dynamic adaptation from maxline=3, solar")
    print(f"  opportunistic maxline raises: {dyn.dyn_raises}")

    speedup = static.total_time_ns / adaptive.total_time_ns
    print(f"\nadaptive vs static on trace 2: {speedup:.3f}x")


if __name__ == "__main__":
    main()
