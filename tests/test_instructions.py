"""Typed instruction constructors validate operands."""

import pytest

from repro.errors import AssemblyError
from repro.isa import opcodes as oc
from repro.isa import instructions as ins


def test_r_type_ok():
    assert ins.r_type(oc.ADD, 1, 2, 3) == (oc.ADD, 1, 2, 3)


def test_r_type_rejects_wrong_opcode():
    with pytest.raises(AssemblyError):
        ins.r_type(oc.ADDI, 1, 2, 3)


def test_r_type_rejects_bad_register():
    with pytest.raises(AssemblyError):
        ins.r_type(oc.ADD, 32, 0, 0)
    with pytest.raises(AssemblyError):
        ins.r_type(oc.ADD, -1, 0, 0)


def test_i_type_ok_and_range():
    assert ins.i_type(oc.ADDI, 5, 6, -7) == (oc.ADDI, 5, 6, -7)
    with pytest.raises(AssemblyError):
        ins.i_type(oc.ADDI, 5, 6, 1 << 33)


def test_li():
    assert ins.li(3, 0xDEADBEEF) == (oc.LI, 3, 0xDEADBEEF, 0)


def test_load_store():
    assert ins.load(oc.LW, 1, 2, 8) == (oc.LW, 1, 2, 8)
    assert ins.store(oc.SW, 1, 2, -4) == (oc.SW, 1, 2, -4)
    with pytest.raises(AssemblyError):
        ins.load(oc.SW, 1, 2, 0)
    with pytest.raises(AssemblyError):
        ins.store(oc.LW, 1, 2, 0)


def test_branch_and_jumps():
    assert ins.branch(oc.BNE, 1, 2, 10) == (oc.BNE, 1, 2, 10)
    assert ins.jal(1, 5) == (oc.JAL, 1, 5, 0)
    assert ins.jalr(0, 1, 0) == (oc.JALR, 0, 1, 0)
    with pytest.raises(AssemblyError):
        ins.branch(oc.ADD, 1, 2, 0)


def test_sys():
    assert ins.halt() == (oc.HALT, 0, 0, 0)
    assert ins.nop() == (oc.NOP, 0, 0, 0)
