"""Shared fixtures: small programs, fast configs, direct-memsys harnesses."""

from __future__ import annotations

import os

import pytest

from repro.isa.builder import ProgramBuilder
from repro.mem.nvm import NVMainMemory
from repro.mem.setassoc import CacheGeometry
from repro.sim.config import SimConfig

# The persistent artifact store (repro.store) defaults to ~/.cache/repro
# when the environment says nothing. Tests must be hermetic - no state
# carried between runs or from the developer's cache - so default it
# OFF here; store tests opt back in with monkeypatch + tmp_path.
os.environ.setdefault("REPRO_CACHE_DIR", "off")


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens", action="store_true", default=False,
        help="rewrite the golden event traces under tests/goldens/ from "
             "the current recorder output instead of comparing")


@pytest.fixture
def update_goldens(request) -> bool:
    return request.config.getoption("--update-goldens")


@pytest.fixture
def tiny_geometry() -> CacheGeometry:
    """A 512 B, 2-way, 64 B-line cache: 4 sets, 8 lines - easy to reason
    about evictions."""
    return CacheGeometry(size_bytes=512, assoc=2, line_bytes=64)


@pytest.fixture
def fresh_nvm() -> NVMainMemory:
    return NVMainMemory([0] * (1 << 16))  # 256 KB


@pytest.fixture
def quick_config() -> SimConfig:
    """Default paper config (kept as a fixture so tests read intent)."""
    return SimConfig()


def build_store_loop(n: int = 64, stride_words: int = 16,
                     base: int = 0x2000) -> "Program":
    """A program storing i to base + i*stride (one line apart by default)."""
    b = ProgramBuilder("store_loop")
    i, addr = b.regs("i", "addr")
    b.li(addr, base)
    with b.for_range(i, 0, n):
        b.sw(i, addr, 0)
        b.add(addr, addr, stride_words * 4)
    b.halt()
    return b.build()


def build_sum_program(n: int = 100) -> "Program":
    """Sums 0..n-1 into memory word at symbol 'out'."""
    b = ProgramBuilder("sum")
    out = b.space_words(1, "out")
    acc, i = b.regs("acc", "i")
    b.li(acc, 0)
    with b.for_range(i, 0, n):
        b.add(acc, acc, i)
    b.sw_addr(acc, out)
    b.halt()
    prog = b.build()
    prog.meta["checks"] = [(out, [n * (n - 1) // 2])]
    return prog
