"""NVFF checkpoint storage and the watchdog timer."""

import pytest

from repro.errors import ReproError
from repro.runtime.nvff import NVFFStore
from repro.runtime.watchdog import WatchdogTimer


class TestNVFF:
    def test_checkpoint_restore_roundtrip(self):
        nvff = NVFFStore()
        regs = list(range(32))
        nvff.checkpoint(regs, pc=17, maxline=4, waterline=3,
                        on_times=[100, 200, 300])
        got_regs, got_pc = nvff.restore()
        assert got_regs == regs and got_pc == 17
        assert nvff.maxline == 4 and nvff.waterline == 3
        assert nvff.on_times == [200, 300]  # only the last two (§5.5)

    def test_checkpoint_copies(self):
        nvff = NVFFStore()
        regs = [0] * 32
        nvff.checkpoint(regs, 0, 1, 0, [])
        regs[5] = 99
        assert nvff.regs[5] == 0

    def test_restore_empty_raises(self):
        with pytest.raises(ValueError):
            NVFFStore().restore()


class TestWatchdog:
    def test_measures_intervals(self):
        wd = WatchdogTimer()
        wd.start(100)
        assert wd.stop(600) == 500
        wd.start(1000)
        wd.stop(1700)
        assert wd.intervals == [500, 700]
        assert wd.last_two == [500, 700]

    def test_last_two_window(self):
        wd = WatchdogTimer()
        for i, (a, b) in enumerate(((0, 10), (20, 50), (60, 100))):
            wd.start(a)
            wd.stop(b)
        assert wd.last_two == [30, 40]

    def test_double_start_raises(self):
        wd = WatchdogTimer()
        wd.start(0)
        with pytest.raises(ReproError):
            wd.start(5)

    def test_stop_without_start_raises(self):
        with pytest.raises(ReproError):
            WatchdogTimer().stop(5)

    def test_backwards_time_raises(self):
        wd = WatchdogTimer()
        wd.start(100)
        with pytest.raises(ReproError):
            wd.stop(50)
