"""The program linter: rule detection, CFG precision, suite cleanliness."""

import json

import pytest

from repro.isa import opcodes as oc
from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.lint import RULES, count_by_severity, lint_program, lint_workloads
from repro.lint.cfg import build_cfg
from repro.lint.findings import ERROR, WARNING, make_finding
from repro.lint.runner import (EXIT_CLEAN, EXIT_ERRORS, EXIT_WARNINGS,
                               exit_code, format_findings_json,
                               format_findings_text)
from repro.workloads import ALL_WORKLOADS, build_workload


def rules_hit(prog: Program) -> set[str]:
    return {f.rule for f in lint_program(prog)}


def lint_asm(text: str) -> set[str]:
    return rules_hit(assemble(text))


# ----------------------------------------------------------------------
# seeded defects: each rule must catch its textbook instance
# ----------------------------------------------------------------------
class TestSeededDefects:
    def test_uninit_read(self):
        assert "L001" in lint_asm("""
            add t2, t0, t1
            halt
        """)

    def test_dead_store(self):
        assert "L002" in lint_asm("""
            li t0, 42
            halt
        """)

    def test_unreachable_block(self):
        assert "L003" in lint_asm("""
            j end
            li t0, 1
        end:
            halt
        """)

    def test_bad_branch_target(self):
        # Program.validate() refuses this, so build the tuples directly
        prog = Program("bad", [(oc.BEQ, 0, 0, 99), (oc.HALT, 0, 0, 0)])
        assert "L004" in rules_hit(prog)

    def test_bad_jump_target(self):
        prog = Program("bad", [(oc.JAL, 0, -3, 0), (oc.HALT, 0, 0, 0)])
        assert "L004" in rules_hit(prog)

    def test_misaligned_access(self):
        assert "L005" in lint_asm("""
            li t0, 0x1002
            lw t1, 0(t0)
            halt
        """)

    def test_misaligned_through_offset(self):
        assert "L005" in lint_asm("""
            li t0, 0x1000
            sh t1, 3(t0)
            halt
        """)

    def test_out_of_bounds(self):
        hits = lint_asm(f"""
            li t0, {1 << 20}
            lw t1, 0(t0)
            halt
        """)
        assert "L006" in hits

    def test_fall_off_end(self):
        prog = Program("nohalt", [(oc.ADDI, 3, 0, 1)])
        assert "L007" in rules_hit(prog)

    def test_zero_page_access(self):
        assert "L008" in lint_asm("""
            li t0, 0x10
            lw t1, 0(t0)
            halt
        """)


# ----------------------------------------------------------------------
# precision: idioms that must NOT fire
# ----------------------------------------------------------------------
class TestNoFalsePositives:
    def test_clean_straight_line(self):
        assert lint_asm("""
            li t0, 0x1000
            li t1, 7
            sw t1, 0(t0)
            lw t2, 4(t0)
            add t2, t2, t1
            sw t2, 4(t0)
            halt
        """) == set()

    def test_x0_reads_and_writes_exempt(self):
        # j is jal zero,...; discards into zero are idiomatic
        assert lint_asm("""
            li t0, 0x1000
            add zero, t0, zero
            sw zero, 0(t0)
            halt
        """) == set()

    def test_loop_carried_value_not_dead(self):
        assert lint_asm("""
            li t0, 10
            li t1, 0x1000
        loop:
            addi t0, t0, -1
            bne t0, zero, loop
            sw t0, 0(t1)
            halt
        """) == set()

    def test_values_flow_through_calls(self):
        # t0 is defined before the call and read after: facts must travel
        # through the callee, so neither L001 nor L002 may fire
        assert lint_asm("""
            li t0, 0x1000
            call fn
            sw t1, 0(t0)
            halt
        fn:
            li t1, 5
            ret
        """) == set()

    def test_unknown_address_not_flagged(self):
        # the base register comes from memory: no constant, no L005/L006
        assert lint_asm("""
            li t0, 0x1000
            lw t1, 0(t0)
            lw t2, 0(t1)
            sw t2, 4(t0)
            halt
        """) == set()

    def test_conditional_join_loses_constness(self):
        # t0 is 0x1001 on one path and 0x1000 on the other: the join must
        # discard the constant instead of flagging either value
        assert lint_asm("""
            li t1, 1
            li t0, 0x1000
            beq t1, zero, even
            addi t0, t0, 1
        even:
            andi t0, t0, -4
            lw t2, 0(t0)
            sw t2, 4(t0)
            halt
        """) == set()


# ----------------------------------------------------------------------
# CFG construction details the rules depend on
# ----------------------------------------------------------------------
class TestCFG:
    def test_call_edges_go_through_callee(self):
        prog = assemble("""
            call fn
            halt
        fn:
            ret
        """)
        cfg = build_cfg(prog.instructions)
        assert cfg.succs[0] == [2]      # call -> callee entry only
        assert cfg.succs[2] == [1]      # ret -> the return site
        assert cfg.return_sites == [1]
        assert all(cfg.reachable)

    def test_halt_terminates_paths(self):
        prog = assemble("halt")
        cfg = build_cfg(prog.instructions)
        assert cfg.succs[0] == []
        assert cfg.falls_off_end == []

    def test_conditional_branch_at_end_falls_off(self):
        prog = Program("p", [(oc.BEQ, 0, 0, 0)])
        cfg = build_cfg(prog.instructions)
        assert cfg.falls_off_end == [0]

    def test_unreachable_marked_on_blocks(self):
        prog = assemble("""
            j end
            li t0, 1
            li t0, 2
        end:
            halt
        """)
        cfg = build_cfg(prog.instructions)
        assert [b.reachable for b in cfg.blocks] == [True, False, True]


# ----------------------------------------------------------------------
# the suite itself and the reporting plumbing
# ----------------------------------------------------------------------
class TestSuiteAndReporting:
    def test_all_suite_kernels_clean(self):
        results = lint_workloads(scale=0.2)
        dirty = {w: [f.render() for f in fs]
                 for w, fs in results.items() if fs}
        assert dirty == {}
        assert set(results) == set(ALL_WORKLOADS)

    def test_exit_codes(self):
        clean = assemble("halt")
        warn = assemble("j end\nli t0, 1\nend:\nhalt")
        err = Program("bad", [(oc.BEQ, 0, 0, 99), (oc.HALT, 0, 0, 0)])
        assert exit_code({"a": lint_program(clean)}) == EXIT_CLEAN
        assert exit_code({"a": lint_program(warn)}) == EXIT_WARNINGS
        assert exit_code({"a": lint_program(err),
                          "b": lint_program(warn)}) == EXIT_ERRORS

    def test_errors_only_ignores_warnings(self):
        # --errors-only demotes warning-carrying runs to a clean exit;
        # errors still gate
        warn = assemble("j end\nli t0, 1\nend:\nhalt")
        err = Program("bad", [(oc.BEQ, 0, 0, 99), (oc.HALT, 0, 0, 0)])
        assert exit_code({"a": lint_program(warn)},
                         errors_only=True) == EXIT_CLEAN
        assert exit_code({"a": lint_program(err)},
                         errors_only=True) == EXIT_ERRORS

    def test_text_format(self):
        results = {"p": [make_finding("L001", "p@3", "reads t0")]}
        text = format_findings_text(results)
        assert "p@3: error: [L001 uninit-read] reads t0" in text
        assert "1 programs linted, 0 clean" in text

    def test_json_format_round_trips(self):
        prog = build_workload("sha", 0.2)
        results = {"sha": lint_program(prog)}
        payload = json.loads(format_findings_json(results))
        assert payload["programs"][0]["program"] == "sha"
        assert payload["totals"] == {"error": 0, "warning": 0, "info": 0}
        assert payload["exit_code"] == EXIT_CLEAN

    def test_rule_registry_severities(self):
        assert RULES["L001"].severity == ERROR
        assert RULES["L002"].severity == WARNING
        assert len(RULES) == 14  # L001-L008 + intermittency L009-L014
        counts = count_by_severity([make_finding("L001", "x", "m"),
                                    make_finding("L003", "x", "m")])
        assert counts == {"error": 1, "warning": 1, "info": 0}

    def test_unknown_rule_rejected(self):
        with pytest.raises(KeyError):
            make_finding("L999", "x", "m")

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError, match="unknown workload"):
            lint_workloads(["nonesuch"])
