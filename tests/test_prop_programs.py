"""Property test: random straight-line arithmetic programs vs Python.

Generates random expression DAGs over u32 arithmetic, compiles them through
the builder DSL, executes on the interpreter, and compares every
intermediate value against a Python evaluation - end-to-end coverage of
the DSL -> assembler -> interpreter chain.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.core import InOrderCore
from repro.isa.builder import ProgramBuilder
from repro.verify.oracle import FunctionalMemory

U32 = 0xFFFFFFFF

OPS = ("add", "sub", "mul", "and", "or", "xor", "sll", "srl")


def py_op(op, a, b):
    if op == "add":
        return (a + b) & U32
    if op == "sub":
        return (a - b) & U32
    if op == "mul":
        return (a * b) & U32
    if op == "and":
        return a & b
    if op == "or":
        return a | b
    if op == "xor":
        return a ^ b
    if op == "sll":
        return (a << (b & 31)) & U32
    return a >> (b & 31)


exprs = st.lists(
    st.tuples(st.sampled_from(OPS),
              st.integers(0, 40),      # operand index a (mod live values)
              st.integers(0, 40)),     # operand index b
    min_size=1, max_size=30,
)
seeds = st.lists(st.integers(0, U32), min_size=2, max_size=4)


@settings(max_examples=50, deadline=None)
@given(seed_vals=seeds, ops=exprs)
def test_random_dag_matches_python(seed_vals, ops):
    b = ProgramBuilder("dag")
    out_addr = b.space_words(len(ops), "out")
    values = list(seed_vals)
    # registers: keep only a sliding window of 6 live registers; spill the
    # rest to memory so long DAGs also exercise loads/stores
    regs = [b.reg(f"v{i}") for i in range(min(6, len(seed_vals)))]
    spill = b.space_words(64, "spill")
    for i, v in enumerate(seed_vals):
        b.li(regs[i % len(regs)], v)
        b.sw_addr(regs[i % len(regs)], spill + 4 * i)

    emit_ops = {"add": b.add, "sub": b.sub, "mul": b.mul, "and": b.and_,
                "or": b.or_, "xor": b.xor, "sll": b.sll, "srl": b.srl}
    t1, t2 = b.regs("t1", "t2")
    for n, (op, ia, ib) in enumerate(ops):
        a_idx = ia % len(values)
        b_idx = ib % len(values)
        b.lw_addr(t1, spill + 4 * a_idx)
        b.lw_addr(t2, spill + 4 * b_idx)
        emit_ops[op](t1, t1, t2)
        result = py_op(op, values[a_idx], values[b_idx])
        values.append(result)
        b.sw_addr(t1, spill + 4 * (len(values) - 1))
        b.sw_addr(t1, out_addr + 4 * n)
    b.halt()

    prog = b.build()
    mem = FunctionalMemory(prog.initial_memory())
    core = InOrderCore(prog, mem)
    core.run_to_halt()
    expected = []
    vals = list(seed_vals)
    for op, ia, ib in ops:
        r = py_op(op, vals[ia % len(vals)], vals[ib % len(vals)])
        vals.append(r)
        expected.append(r)
    got = [mem.words[(out_addr >> 2) + i] for i in range(len(ops))]
    assert got == expected
