"""The crash-consistency checker must catch deliberately broken designs."""

import pytest

from repro.errors import ConsistencyError
from repro.isa.builder import ProgramBuilder
from repro.mem.nvm import NVMainMemory
from repro.sim.config import SimConfig
from repro.sim.system import System
from repro.verify.checker import check_crash_consistency, compare_states
from repro.verify.faults import (BrokenWLCacheNoCleanFirst,
                                 VCacheWBNoCheckpoint)
from repro.verify.oracle import run_oracle
from repro.workloads import build_workload


def build_faulty_system(prog, cls, trace="trace2", **design_kwargs):
    from repro.energy.synthetic import make_trace
    cfg = SimConfig(adaptive=False)
    nvm = NVMainMemory(prog.initial_memory(), cfg.nvm)
    design = cls(nvm, cfg.geometry, cfg.cache_replacement, cfg.sram_params,
                 **design_kwargs)
    return System(prog, design, cfg, make_trace(trace) if trace else None)


class TestOracle:
    def test_oracle_matches_program_checks(self):
        prog = build_workload("qsort", 0.2)
        oracle = run_oracle(prog)
        from repro.workloads import verify_checks
        verify_checks(prog, oracle.memory)

    def test_compare_states_detects_memory_diff(self):
        prog = build_workload("qsort", 0.2)
        oracle = run_oracle(prog)
        from repro.sim.factory import run_one
        res = run_one(prog, "WL-Cache", trace=None)
        res.final_memory[100] ^= 0xFF  # corrupt
        report = compare_states(res, oracle)
        assert not report.ok
        assert report.divergences[0].kind == "memory"
        with pytest.raises(ConsistencyError):
            report.raise_if_bad("corrupted")

    def test_compare_states_detects_register_diff(self):
        prog = build_workload("qsort", 0.2)
        oracle = run_oracle(prog)
        from repro.sim.factory import run_one
        res = run_one(prog, "WL-Cache", trace=None)
        res.final_regs[5] ^= 1
        report = compare_states(res, oracle)
        assert not report.ok
        assert any(d.kind == "register" for d in report.divergences)


def clean_first_race_program():
    """Deterministic trigger for the §5.3 lost-update anomaly.

    Store X=1, trip the waterline so X's write-back goes in flight, store
    X=2 while it is in flight, then keep computing past the ACK. A correct
    WL-Cache re-inserts X; the broken variant's ACK clears the dirty bit
    and the newer value is silently dropped at eviction/finalize.
    """
    b = ProgramBuilder("race")
    base = b.space_words(512, "buf")
    x, p, i = b.regs("x", "p", "i")
    b.li(p, base)
    b.li(x, 1)
    b.sw(x, p, 0)          # X = 1 (dirty, in DirtyQueue)
    b.sw(x, p, 64)         # second dirty line -> waterline trips, X cleaned
    b.li(x, 2)
    b.sw(x, p, 0)          # X = 2 while X's write-back is in flight
    with b.for_range(i, 0, 200):   # let the ACK arrive
        b.nop()
    b.halt()
    return b.build(), base


class TestBrokenWLCache:
    def test_lost_update_detected(self):
        prog, base = clean_first_race_program()
        system = build_faulty_system(
            prog, BrokenWLCacheNoCleanFirst, trace=None,
            dq_capacity=8, maxline=2, waterline=1)
        res = system.run()
        assert res.final_memory[base >> 2] == 1  # X=2 was lost
        with pytest.raises(ConsistencyError):
            check_crash_consistency(prog, res)

    def test_correct_wl_passes_same_program(self):
        from repro.sim.factory import run_one
        prog, base = clean_first_race_program()
        res = run_one(prog, "WL-Cache", trace=None,
                      maxline=2, waterline=1, adaptive=False)
        assert res.final_memory[base >> 2] == 2
        check_crash_consistency(prog, res)


class TestNoCheckpointCache:
    def test_dirty_lines_lost_across_outage(self):
        prog = build_workload("qsort", 1.5)
        system = build_faulty_system(prog, VCacheWBNoCheckpoint,
                                     trace="trace2")
        res = system.run()
        assert res.outages > 0
        with pytest.raises(ConsistencyError):
            check_crash_consistency(prog, res)

    def test_same_design_fine_without_outages(self):
        prog = build_workload("qsort", 0.3)
        system = build_faulty_system(prog, VCacheWBNoCheckpoint, trace=None)
        res = system.run()
        check_crash_consistency(prog, res)
