"""Hypothesis differential: the memfast tier is bit-identical to the
slow path under randomized access sequences.

Two freshly built copies of the same design over identically seeded NVM
run the same randomized sequence of word loads, word stores, subword
stores (SB/SH via ``store_masked``), and checkpoint-protocol calls - one
pristine, one with :func:`repro.memfast.attach_design` installed. After
every sequence the fast side is flushed (via detach) and *everything*
observable is compared exactly: per-op return values and latencies,
every :class:`MemStats` field including the energy floats, the cache
array's full line state (tag/valid/dirty/data/use_stamp/fill_stamp and
the LRU stamp), and the NVM words plus its access/energy accounting.

Geometries deliberately range over direct-mapped and 2/4-way arrays,
16/32/64-byte lines, LRU and FIFO - the handler codegen bakes each
geometry's shifts, masks, and energy constants into the source, so every
combination exercises a distinct specialization.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.nvm import NVMainMemory
from repro.mem.setassoc import CacheGeometry
from repro.memfast import attach_design, detach_design
from repro.sim.config import DESIGNS, SimConfig
from repro.sim.factory import build_design

#: byte span the address strategy covers: 4 KB, far larger than the
#: largest generated cache, so sequences mix hits, misses, and evictions
_SPAN_WORDS = 1024

_U32 = 0xFFFFFFFF

@st.composite
def geometry_st(draw):
    line_bytes = draw(st.sampled_from([16, 32, 64]))
    assoc = draw(st.sampled_from([1, 2, 4]))
    n_sets = draw(st.sampled_from([2, 4]))
    return CacheGeometry(size_bytes=line_bytes * assoc * n_sets,
                         assoc=assoc, line_bytes=line_bytes)


@st.composite
def op_st(draw):
    kind = draw(st.sampled_from(
        ["load", "load", "load", "store", "store", "store",
         "sb", "sh", "checkpoint", "power_cycle"]))
    if kind in ("checkpoint", "power_cycle"):
        return (kind,)
    addr = draw(st.integers(0, _SPAN_WORDS - 1)) * 4
    if kind == "load":
        return (kind, addr)
    value = draw(st.integers(0, _U32))
    if kind == "sb":
        addr += draw(st.integers(0, 3))
    elif kind == "sh":
        addr += draw(st.sampled_from([0, 2]))
    return (kind, addr, value)


def run_ops(m, ops):
    """Apply one op sequence to a memory system; returns the observation
    log (every return value and latency, in order)."""
    now = 0
    log = []
    for op in ops:
        kind = op[0]
        if kind == "load":
            value, lat = m.load(op[1], now)
            log.append(("L", value, lat))
        elif kind == "store":
            lat = m.store(op[1], op[2] & _U32, now)
            log.append(("S", lat))
        elif kind in ("sb", "sh"):
            addr, value = op[1], op[2]
            shift = (addr & 3) * 8
            umask = 0xFF if kind == "sb" else 0xFFFF
            lat = m.store_masked(addr & ~3, (value & umask) << shift,
                                 umask << shift, now)
            log.append(("M", lat))
        elif kind == "checkpoint":
            rep = m.flush_for_checkpoint(now)
            log.append(("C", rep))
            lat = rep.cycles
        else:  # power_cycle: loss then reboot, like System's outage path
            m.on_power_loss()
            lat = m.on_boot(False)
            log.append(("P", lat))
        now += lat
    log.append(("F", m.finalize(now)))
    return log


def array_state(m):
    return [(ln.tag, ln.valid, ln.dirty, list(ln.data),
             ln.use_stamp, ln.fill_stamp)
            for cset in m.array.sets for ln in cset], m.array._stamp


def nvm_state(nvm):
    return (nvm.words, nvm.reads, nvm.writes,
            nvm.energy_read_nj, nvm.energy_write_nj)


@settings(max_examples=25, deadline=None)
@given(design=st.sampled_from(DESIGNS), geometry=geometry_st(),
       replacement=st.sampled_from(["lru", "fifo"]),
       ops=st.lists(op_st(), min_size=1, max_size=80))
def test_fast_path_matches_slow_path(design, geometry, replacement, ops):
    cfg = SimConfig(geometry=geometry, cache_replacement=replacement)
    nvm_slow = NVMainMemory([0] * _SPAN_WORDS)
    nvm_fast = NVMainMemory([0] * _SPAN_WORDS)
    slow = build_design(design, nvm_slow, cfg)
    fast = build_design(design, nvm_fast, cfg)
    assert attach_design(fast) is not None

    slow_log = run_ops(slow, ops)
    fast_log = run_ops(fast, ops)
    assert detach_design(fast)  # flushes the accumulator

    assert fast_log == slow_log
    assert fast.stats == slow.stats  # every counter and energy float
    assert array_state(fast) == array_state(slow)
    assert nvm_state(nvm_fast) == nvm_state(nvm_slow)


@settings(max_examples=10, deadline=None)
@given(geometry=geometry_st(),
       ops=st.lists(op_st(), min_size=1, max_size=60),
       maxline=st.sampled_from([2, 4, 6]))
def test_wl_thresholds_sweep_matches(geometry, ops, maxline):
    """WL-Cache with non-default maxline/waterline: the waterline check
    is read late-bound by the fast store, so threshold sweeps must stay
    identical too."""
    cfg = SimConfig(geometry=geometry, maxline=maxline,
                    waterline=maxline - 1)
    nvm_slow = NVMainMemory([0] * _SPAN_WORDS)
    nvm_fast = NVMainMemory([0] * _SPAN_WORDS)
    slow = build_design("WL-Cache", nvm_slow, cfg)
    fast = build_design("WL-Cache", nvm_fast, cfg)
    assert attach_design(fast) is not None

    slow_log = run_ops(slow, ops)
    fast_log = run_ops(fast, ops)
    assert detach_design(fast)

    assert fast_log == slow_log
    assert fast.stats == slow.stats
    assert array_state(fast) == array_state(slow)
    assert nvm_state(nvm_fast) == nvm_state(nvm_slow)
